package ipfs_test

import (
	"context"
	"fmt"

	"repro/ipfs"
)

// ExampleNewSimNetwork demonstrates the simulated-network quickstart:
// publish from one peer, retrieve from another.
func ExampleNewSimNetwork() {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 60, Scale: 0.0005, Clean: true, Seed: 1})
	ctx := context.Background()
	alice, bob := net.Node(0), net.Node(30)

	pub, err := alice.AddAndPublish(ctx, []byte("hello decentralized web"))
	if err != nil {
		panic(err)
	}
	if err := alice.PublishPeerRecord(ctx); err != nil {
		panic(err)
	}
	data, _, err := bob.Retrieve(ctx, pub.Cid)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
	// Output: hello decentralized web
}

// ExampleSumCid shows content addressing: the CID is derived from the
// bytes, so identical content always maps to the same identifier.
func ExampleSumCid() {
	a := ipfs.SumCid([]byte("same bytes"))
	b := ipfs.SumCid([]byte("same bytes"))
	c := ipfs.SumCid([]byte("other bytes"))
	fmt.Println(a.Equal(b), a.Equal(c))
	// Output: true false
}

// ExampleNode_AddTree publishes a small website as a UnixFS directory
// and resolves a file beneath the root CID.
func ExampleNode_AddTree() {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 20, Scale: 0.0005, Clean: true, Seed: 2})
	node := net.Node(0)
	root, err := node.AddTree(map[string][]byte{
		"index.html":   []byte("<h1>home</h1>"),
		"css/site.css": []byte("body{}"),
	})
	if err != nil {
		panic(err)
	}
	page, err := node.CatPath(root, "index.html")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(page))
	// Output: <h1>home</h1>
}
