package ipfs

import (
	"math/rand"

	"repro/internal/multiaddr"
)

// multiaddrT aliases the internal multiaddr type for the facade.
type multiaddrT = multiaddr.Multiaddr

func parseMaddr(s string) (multiaddrT, error) { return multiaddr.Parse(s) }

func randFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
