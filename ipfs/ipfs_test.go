package ipfs_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/ipfs"
)

func TestSimNetworkPublishRetrieve(t *testing.T) {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 60, Scale: 0.0005, Clean: true, Seed: 3})
	if net.Len() != 60 {
		t.Fatalf("Len = %d", net.Len())
	}
	ctx := context.Background()
	alice, bob := net.Node(0), net.Node(30)
	content := bytes.Repeat([]byte("facade"), 5000)

	pub, err := alice.AddAndPublish(ctx, content)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.PublishPeerRecord(ctx); err != nil {
		t.Fatal(err)
	}
	got, res, err := bob.Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("content mismatch")
	}
	if res.Provider != alice.ID() {
		t.Error("wrong provider")
	}
}

func TestParseCidRoundTrip(t *testing.T) {
	c := ipfs.SumCid([]byte("parse me"))
	back, err := ipfs.ParseCid(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Error("round trip failed")
	}
	if _, err := ipfs.ParseCid("garbage"); err == nil {
		t.Error("garbage should not parse")
	}
}

func TestParsePeerInfo(t *testing.T) {
	node, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addrs()[0].String()
	info, err := ipfs.ParsePeerInfo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != node.ID() || len(info.Addrs) != 1 {
		t.Errorf("info = %+v", info)
	}
	if _, err := ipfs.ParsePeerInfo("/ip4/1.2.3.4/tcp/4001"); err == nil {
		t.Error("address without /p2p should fail")
	}
	if _, err := ipfs.ParsePeerInfo("junk"); err == nil {
		t.Error("junk should fail")
	}
}

func TestNewTCPNodeDeterministicSeed(t *testing.T) {
	a, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.ID() != b.ID() {
		t.Error("same seed should produce the same identity")
	}
}

func TestFacadeGateway(t *testing.T) {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 30, Scale: 0.0005, Clean: true, Seed: 4})
	gw := net.NewGateway("US", 8<<20, 11)
	data := []byte("gateway content")
	root, err := gw.Pin(data)
	if err != nil {
		t.Fatal(err)
	}
	resp := gw.Fetch(context.Background(), ipfs.GatewayRequest{Cid: root, Time: time.Now(), UserID: "t"})
	if resp.Err != nil || resp.Bytes != len(data) {
		t.Errorf("resp = %+v", resp)
	}
	stats := ipfs.SummarizeGatewayLog(gw.Log())
	if stats["IPFS node store"].Requests != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFacadeCrawler(t *testing.T) {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 50, Scale: 0.0005, Clean: true, Seed: 5})
	cr := net.NewCrawler(77)
	report := cr.Crawl(context.Background(), net.Bootstrap(2))
	if len(report.Observations) < 48 {
		t.Errorf("crawl found %d of 50", len(report.Observations))
	}
}

func TestAddNodeJoins(t *testing.T) {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 40, Scale: 0.0005, Clean: true, Seed: 6})
	joiner := net.AddNode("DE", 123)
	ctx := context.Background()
	pub, err := joiner.AddAndPublish(ctx, []byte("from the newcomer"))
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.PublishPeerRecord(ctx); err != nil {
		t.Fatal(err)
	}
	got, _, err := net.Node(10).Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from the newcomer" {
		t.Error("content mismatch")
	}
}
