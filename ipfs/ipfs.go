// Package ipfs is the public API of this reproduction of "Design and
// Evaluation of IPFS: A Storage Layer for the Decentralized Web"
// (SIGCOMM 2022). It re-exports the core node, simulated and TCP
// testnet builders, the HTTP gateway, and the measurement crawler
// behind a compact facade.
//
// Quickstart:
//
//	tn := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 100})
//	alice, bob := tn.Node(0), tn.Node(1)
//	pub, _ := alice.AddAndPublish(ctx, []byte("hello decentralized web"))
//	data, res, _ := bob.Retrieve(ctx, pub.Cid)
package ipfs

import (
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/dht"
	"repro/internal/gateway"
	"repro/internal/geo"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/testnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Re-exported core types.
type (
	// Node is an IPFS peer (see internal/core).
	Node = core.Node
	// Cid is a content identifier (§2.1).
	Cid = cid.Cid
	// PeerID identifies a peer (§2.2).
	PeerID = peer.ID
	// PeerInfo couples a PeerID with its multiaddresses.
	PeerInfo = wire.PeerInfo
	// PublishResult instruments a publication (Fig 9a–c).
	PublishResult = core.PublishResult
	// RetrieveResult instruments a retrieval (Fig 9d–f).
	RetrieveResult = core.RetrieveResult
	// Gateway is the HTTP bridge of §3.4.
	Gateway = gateway.Gateway
	// GatewayRequest is one client GET through the gateway.
	GatewayRequest = gateway.Request
	// GatewayLogEntry is one access-log line (§4.2 schema).
	GatewayLogEntry = gateway.LogEntry
	// GatewayTierStats aggregates a serving tier (Table 5).
	GatewayTierStats = gateway.TierStats
	// Crawler implements the §4.1 measurement methodology.
	Crawler = crawler.Crawler
	// Region names a geographic location for the latency model.
	Region = geo.Region
	// Router is the pluggable content-routing abstraction every node
	// publishes and retrieves through (see internal/routing).
	Router = routing.Router
	// RoutingKind selects a Router implementation in node configs.
	RoutingKind = routing.Kind
	// ProviderSeq is the streaming provider-discovery iterator
	// Router.FindProvidersStream returns.
	ProviderSeq = routing.ProviderSeq
	// ProvideManyResult instruments a batched publication
	// (Router.ProvideMany): the per-target-peer grouping and ack-ledger
	// skips a republish cycle rides on.
	ProvideManyResult = routing.ProvideManyResult
	// RepublishStats summarizes one Node.Republish cycle.
	RepublishStats = core.RepublishStats
	// Indexer is the delegated-routing aggregator node role.
	Indexer = routing.Indexer
	// IndexerSet is the shard topology of a sharded indexer fleet.
	IndexerSet = routing.IndexerSet
	// IndexerFleet couples built indexer nodes with their topology.
	IndexerFleet = testnet.IndexerFleet
	// AcceleratedRouter is the one-hop full-routing-table client.
	AcceleratedRouter = routing.AcceleratedRouter
	// BlockStore is the blockstore seam every node serves Bitswap and
	// the gateway from (see internal/block).
	BlockStore = block.Store
	// BlockPinner is the optional pinning surface of a BlockStore.
	BlockPinner = block.Pinner
	// PackStore is the pack-engine blockstore: append-only volumes, an
	// in-memory CID index, and background compaction.
	PackStore = block.PackStore
	// PackConfig tunes a PackStore.
	PackConfig = block.PackConfig
)

// Router kinds selectable via core.Config.Routing.
const (
	// RoutingDHT is the baseline iterative DHT walk.
	RoutingDHT = routing.KindDHT
	// RoutingAccelerated is the snapshot-based one-hop client.
	RoutingAccelerated = routing.KindAccelerated
	// RoutingIndexer delegates to indexer nodes with DHT fallback.
	RoutingIndexer = routing.KindIndexer
	// RoutingParallel races every configured router.
	RoutingParallel = routing.KindParallel
)

// ParseCid parses the text form of a CID.
func ParseCid(s string) (Cid, error) { return cid.Parse(s) }

// SumCid computes the CID of raw data (sha2-256, raw codec).
func SumCid(data []byte) Cid { return cid.Sum(multicodec.Raw, data) }

// SimConfig configures an in-process simulated network.
type SimConfig struct {
	// Peers is the network size (default 200).
	Peers int
	// Seed drives all randomness (default 1).
	Seed int64
	// Scale compresses simulated time; 0.001 replays 1000x faster than
	// real time (the default). Use 1 for real-time behaviour.
	Scale float64
	// Clean removes the dead/slow/broken peer classes, for examples and
	// tests that want a well-behaved network.
	Clean bool
}

// SimNetwork is a simulated IPFS network.
type SimNetwork struct {
	tn *testnet.Testnet
}

// NewSimNetwork builds a simulated network with a geo-distributed
// population and converged routing tables.
func NewSimNetwork(cfg SimConfig) *SimNetwork {
	tcfg := testnet.Config{
		N:     cfg.Peers,
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
	}
	if tcfg.Seed == 0 {
		tcfg.Seed = 1
	}
	if cfg.Clean {
		tcfg.FracDead, tcfg.FracSlow, tcfg.FracWSBroken = 1e-9, 1e-9, 1e-9
	}
	return &SimNetwork{tn: testnet.Build(tcfg)}
}

// Node returns the i-th peer.
func (s *SimNetwork) Node(i int) *Node { return s.tn.Nodes[i] }

// Len returns the network size.
func (s *SimNetwork) Len() int { return len(s.tn.Nodes) }

// LiveNodes returns the well-behaved peers.
func (s *SimNetwork) LiveNodes() []*Node { return s.tn.LiveNodes() }

// AddNode attaches a fresh, bootstrapped node in the given region.
func (s *SimNetwork) AddNode(region Region, seed int64) *Node {
	return s.tn.AddVantage(region, seed)
}

// AddNodeRouting attaches a fresh node using the given content router;
// indexers may be nil for kinds that do not use them.
func (s *SimNetwork) AddNodeRouting(region Region, seed int64, kind RoutingKind, indexers []PeerInfo) *Node {
	return s.tn.AddVantageRouting(region, seed, kind, indexers)
}

// AddIndexer attaches a delegated-routing indexer node; pass its Info
// to nodes created with RoutingIndexer or RoutingParallel.
func (s *SimNetwork) AddIndexer(region Region, seed int64) *Indexer {
	return s.tn.AddIndexer(region, seed)
}

// AddIndexerSet attaches a sharded indexer fleet — shards × replicas
// indexer nodes with gossip-wired replica groups — and returns it.
// Wire nodes to it with AddNodeSharded. The fleet consumes seeds
// seed..seed+shards×replicas-1; pick node seeds outside that range.
func (s *SimNetwork) AddIndexerSet(seed int64, shards, replicas int) *IndexerFleet {
	return s.tn.AddIndexerSet(seed, shards, replicas, 0)
}

// AddNodeSharded attaches a fresh node whose indexer router routes
// through the fleet's shard topology.
func (s *SimNetwork) AddNodeSharded(region Region, seed int64, kind RoutingKind, fleet *IndexerFleet) *Node {
	return s.tn.AddVantageSharded(region, seed, kind, fleet.Set)
}

// Testnet exposes the underlying builder for advanced use.
func (s *SimNetwork) Testnet() *testnet.Testnet { return s.tn }

// NewGateway builds an HTTP gateway in front of a fresh node in the
// given region with an nginx-style cache of cacheBytes.
func (s *SimNetwork) NewGateway(region Region, cacheBytes int64, seed int64) *Gateway {
	node := s.tn.AddVantage(region, seed)
	return gateway.New(node, cacheBytes, s.tn.Base)
}

// NewCrawler builds a §4.1 crawler attached to the network.
func (s *SimNetwork) NewCrawler(seed int64) *Crawler {
	ident := peer.MustNewIdentity(randFrom(seed))
	ep := s.tn.Net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
	sw := swarm.New(ident, ep, s.tn.Time)
	return crawler.New(sw, crawler.Config{Base: s.tn.Base, Time: s.tn.Time})
}

// Bootstrap returns bootstrap infos for joining this network.
func (s *SimNetwork) Bootstrap(n int) []PeerInfo {
	if n > len(s.tn.Nodes) {
		n = len(s.tn.Nodes)
	}
	out := make([]PeerInfo, 0, n)
	for _, node := range s.tn.Nodes[:n] {
		out = append(out, node.Info())
	}
	return out
}

// TCPNodeConfig configures a real-TCP node.
type TCPNodeConfig struct {
	// Listen is the host:port to bind (default "127.0.0.1:0").
	Listen string
	// Seed derives the identity deterministically; 0 uses crypto
	// randomness.
	Seed int64
	// Region is informational.
	Region Region
	// Client joins as a DHT client instead of a server.
	Client bool
	// Store is the node's blockstore; nil selects an in-memory store.
	// Build persistent ones with NewBlockStore.
	Store BlockStore
}

// NewBlockStore builds a blockstore by kind: "mem" (or "") is the
// in-memory store, "fs" the file-per-block flatfs store, "pack" the
// pack-engine store. dir is required for the persistent kinds.
func NewBlockStore(kind, dir string) (BlockStore, error) {
	switch kind {
	case "", "mem":
		return block.NewMemStore(), nil
	case "fs":
		if dir == "" {
			return nil, fmt.Errorf("ipfs: blockstore kind %q needs a directory", kind)
		}
		return block.NewFSStore(dir)
	case "pack":
		if dir == "" {
			return nil, fmt.Errorf("ipfs: blockstore kind %q needs a directory", kind)
		}
		return block.NewPackStore(dir, block.PackConfig{})
	default:
		return nil, fmt.Errorf("ipfs: unknown blockstore kind %q (want mem, fs or pack)", kind)
	}
}

// NewTCPNode starts a node on a real TCP listener — the cmd/ipfs-node
// path and the way to build multi-process local testnets.
func NewTCPNode(cfg TCPNodeConfig) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	var ident peer.Identity
	var err error
	if cfg.Seed != 0 {
		ident = peer.MustNewIdentity(randFrom(cfg.Seed))
	} else if ident, err = peer.NewIdentity(nil); err != nil {
		return nil, fmt.Errorf("ipfs: %w", err)
	}
	ep, err := transport.ListenTCP(ident, cfg.Listen)
	if err != nil {
		return nil, err
	}
	mode := dht.ModeServer
	if cfg.Client {
		mode = dht.ModeClient
	}
	return core.New(ident, ep, core.Config{Mode: mode, Region: cfg.Region, Store: cfg.Store}), nil
}

// NewTCPGateway builds an HTTP gateway over a TCP node.
func NewTCPGateway(node *Node, cacheBytes int64) *Gateway {
	return gateway.New(node, cacheBytes, simtime.Realtime)
}

// ParsePeerInfo parses "peerID@/ip4/../tcp/../p2p/.." or a bare
// multiaddress with a /p2p component into bootstrap info.
func ParsePeerInfo(s string) (PeerInfo, error) {
	m, err := parseMaddr(s)
	if err != nil {
		return PeerInfo{}, err
	}
	idStr, ok := m.PeerID()
	if !ok {
		return PeerInfo{}, fmt.Errorf("ipfs: address %q has no /p2p component", s)
	}
	id, err := peer.ParseID(idStr)
	if err != nil {
		return PeerInfo{}, err
	}
	return PeerInfo{ID: id, Addrs: []multiaddrT{m}}, nil
}

// SummarizeGatewayLog aggregates an access log into per-tier request
// counts, traffic and median latency (Table 5).
func SummarizeGatewayLog(log []GatewayLogEntry) map[string]GatewayTierStats {
	out := make(map[string]GatewayTierStats)
	for tier, s := range gateway.Summarize(log) {
		out[tier.String()] = s
	}
	return out
}

// DefaultReplication is the paper's k = 20.
const DefaultReplication = 20

// DefaultBitswapTimeout is the 1 s opportunistic timeout.
const DefaultBitswapTimeout = time.Second
