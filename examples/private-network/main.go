// Private network: a five-node IPFS network over real TCP sockets on
// localhost — the §2 protocol stack (identify handshake with PeerID
// verification, DHT bootstrap, provider records, Bitswap) end to end,
// plus IPNS mutable naming (§3.3).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"repro/ipfs"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Start five nodes on ephemeral localhost ports.
	nodes := make([]*ipfs.Node, 5)
	for i := range nodes {
		n, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Seed: int64(i + 1), Region: "US"})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		fmt.Printf("node %d: %s %s\n", i, n.ID().Short(), n.Addrs()[0])
	}

	// Everyone bootstraps off node 0 (the §2.2 join procedure).
	boot := []ipfs.PeerInfo{nodes[0].Info()}
	for _, n := range nodes[1:] {
		if err := n.Bootstrap(ctx, boot); err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
	}
	for _, n := range nodes[1:] {
		nodes[0].DHT().Seed(n.Info())
	}

	// Node 1 publishes a document and its peer record.
	doc := bytes.Repeat([]byte("private swarm document v1\n"), 2000)
	pub, err := nodes[1].AddAndPublish(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := nodes[1].PublishPeerRecord(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode 1 published %s (%d records stored)\n", pub.Cid, pub.StoreOK)

	// Node 4 retrieves it over real TCP.
	data, res, err := nodes[4].Retrieve(ctx, pub.Cid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 4 retrieved %d bytes from %s in %v\n", len(data), res.Provider.Short(), res.Total.Round(time.Millisecond))

	// IPNS: node 1 points its mutable name at the document, then
	// updates it; node 3 resolves both versions (§3.3).
	if err := nodes[1].PublishIPNS(ctx, pub.Cid); err != nil {
		log.Fatal(err)
	}
	got, err := nodes[3].ResolveIPNS(ctx, nodes[1].ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIPNS /ipns/%s -> %s\n", nodes[1].ID().Short(), got)

	v2, err := nodes[1].Add(bytes.Repeat([]byte("private swarm document v2\n"), 2000))
	if err != nil {
		log.Fatal(err)
	}
	if err := nodes[1].PublishIPNS(ctx, v2); err != nil {
		log.Fatal(err)
	}
	got2, err := nodes[3].ResolveIPNS(ctx, nodes[1].ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update      -> %s\n", got2)
	if got2.Equal(got) {
		fmt.Println("(resolver saw the previous version; records propagate on the republish cycle)")
	} else {
		fmt.Println("mutable name updated while the immutable CIDs stayed verifiable")
	}
}
