// Measurement: run the paper's §4.1 crawler methodology against a
// churning simulated network — repeated k-bucket crawls classifying
// peers as dialable or undialable (the Figure 4a series), plus the
// AutoNAT client/server decision for a NAT'd joiner (§2.3).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ipfs"
)

func main() {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 300, Scale: 0.0005, Clean: true})
	ctx := context.Background()

	cr := net.NewCrawler(1234)
	boot := net.Bootstrap(4)

	fmt.Println("== crawl epoch 1: everyone online ==")
	r1 := cr.Crawl(ctx, boot)
	fmt.Printf("discovered=%d dialable=%d undialable=%d (%.1fs simulated)\n",
		len(r1.Observations), r1.Dialable(), r1.Undialable(), r1.Duration.Seconds())

	// A third of the network churns out; their routing-table entries
	// linger, exactly the stale entries Fig 4a counts as undialable.
	tn := net.Testnet()
	for i := 100; i < 200; i++ {
		tn.Net.SetOnline(tn.Nodes[i].ID(), false)
	}
	fmt.Println("\n== crawl epoch 2: 100 peers departed ==")
	r2 := cr.Crawl(ctx, boot)
	fmt.Printf("discovered=%d dialable=%d undialable=%d\n",
		len(r2.Observations), r2.Dialable(), r2.Undialable())
	fmt.Printf("undialable fraction: %.1f%% (the paper finds 45.5%% of IPs never reachable)\n",
		100*float64(r2.Undialable())/float64(len(r2.Observations)))

	// AutoNAT: a new NAT'd peer joins, asks its neighbours to dial
	// back, and stays a DHT client (§2.3).
	fmt.Println("\n== AutoNAT (§2.3) ==")
	natted := tn.Net // direct simnet access for the NAT'd endpoint
	_ = natted
	joiner := net.AddNode("DE", 555)
	mode := joiner.CheckNATAndSetMode(ctx)
	fmt.Printf("publicly reachable joiner decided: mode=%v (0=server, 1=client)\n", mode)
	if len(r2.Observations) == 0 {
		log.Fatal("crawl found nothing")
	}
}
