// NFT gateway: the §3.4 / §6.3 scenario that motivates the paper's
// gateway design. NFT images are pinned into a gateway's node store
// (as the Web3/NFT Storage initiatives do), a video file lives only on
// a remote peer, and a browser-style client fetches both through
// GET /ipfs/{CID} — showing the three serving tiers of Table 5.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ipfs"
)

func main() {
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 80, Scale: 0.001, Clean: true})
	ctx := context.Background()

	// The gateway runs in the US, like the sampled ipfs.io instance.
	gw := net.NewGateway("US", 64<<20, 99)

	// Pin three NFT images into the gateway's node store.
	rng := rand.New(rand.NewSource(7))
	var nfts []ipfs.Cid
	for i := 0; i < 3; i++ {
		img := make([]byte, 300_000+rng.Intn(400_000))
		rng.Read(img)
		c, err := gw.Pin(img)
		if err != nil {
			log.Fatal(err)
		}
		nfts = append(nfts, c)
		fmt.Printf("pinned NFT #%d -> /ipfs/%s (%d bytes)\n", i+1, c, len(img))
	}

	// A creator elsewhere publishes a video through the regular DHT.
	creator := net.Node(42)
	video := bytes.Repeat([]byte{0xA7}, 900_000)
	pub, err := creator.AddAndPublish(ctx, video)
	if err != nil {
		log.Fatal(err)
	}
	if err := creator.PublishPeerRecord(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("creator published video -> /ipfs/%s\n\n", pub.Cid)

	// Browser clients hit the gateway.
	fetch := func(label string, c ipfs.Cid) {
		resp := gw.Fetch(ctx, ipfs.GatewayRequest{Cid: c, Time: time.Now(), Country: "US", UserID: "browser-1"})
		if resp.Err != nil {
			log.Fatalf("%s: %v", label, resp.Err)
		}
		fmt.Printf("%-28s tier=%-15s latency=%8.3fs bytes=%d\n",
			label, resp.Tier, resp.Latency.Seconds(), resp.Bytes)
	}

	fetch("NFT #1 (first request)", nfts[0])  // node store, ~8ms
	fetch("NFT #1 (second request)", nfts[0]) // nginx cache, 0s
	fetch("NFT #2", nfts[1])
	fetch("video (remote, cold)", pub.Cid) // full P2P retrieval, seconds
	fetch("video (now cached)", pub.Cid)   // nginx cache

	// Summarize like Table 5.
	fmt.Println("\n== access-log summary (Table 5 shape) ==")
	stats := ipfs.SummarizeGatewayLog(gw.Log())
	for _, tier := range []string{"nginx cache", "IPFS node store", "Non Cached"} {
		if s, ok := stats[tier]; ok {
			fmt.Printf("%-16s requests=%d median=%0.3fs\n", tier, s.Requests, s.MedianLatency.Seconds())
		}
	}
}
