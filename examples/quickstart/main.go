// Quickstart: spin up a simulated IPFS network, publish a file from
// one peer and retrieve it from another, printing the per-phase
// breakdown the paper measures (Figure 3 / Figure 9).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/ipfs"
)

func main() {
	// A 100-peer simulated network replaying 1000x faster than real
	// time, without pathological peers.
	net := ipfs.NewSimNetwork(ipfs.SimConfig{Peers: 100, Scale: 0.001, Clean: true})
	alice := net.Node(0)
	bob := net.Node(55)
	ctx := context.Background()

	content := bytes.Repeat([]byte("Hello, Decentralized Web! "), 40_000) // ~1 MB

	// Step 1 (Fig 3): import locally — chunk, build the Merkle DAG,
	// derive the root CID.
	root, err := alice.Add(content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== CID anatomy (Figure 1) ==")
	fmt.Print(root.Explain())

	// Steps 2–3: walk the DHT for the 20 closest peers and store
	// provider records with them.
	pub, err := alice.Publish(ctx, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== publication (§3.1) ==")
	fmt.Printf("DHT walk:   %.2fs (found the %d closest peers)\n", pub.WalkDuration.Seconds(), pub.StoreAttempts)
	fmt.Printf("RPC batch:  %.2fs (%d/%d provider records stored)\n", pub.BatchDuration.Seconds(), pub.StoreOK, pub.StoreAttempts)
	fmt.Printf("total:      %.2fs (simulated)\n", pub.TotalDuration.Seconds())

	// Alice also publishes her peer record so others can map her
	// PeerID to an address.
	if err := alice.PublishPeerRecord(ctx); err != nil {
		log.Fatal(err)
	}

	// Steps 4–6: Bob retrieves — opportunistic Bitswap, DHT walks,
	// connect, fetch, verify.
	data, res, err := bob.Retrieve(ctx, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== retrieval (§3.2) ==")
	fmt.Printf("bitswap phase:  %.2fs (hit=%v)\n", res.BitswapPhase.Seconds(), res.BitswapHit)
	fmt.Printf("provider walk:  %.2fs\n", res.ProviderWalk.Seconds())
	fmt.Printf("peer walk:      %.2fs (address book used: %v)\n", res.PeerWalk.Seconds(), res.UsedBook)
	fmt.Printf("connect:        %.2fs\n", res.Dial.Seconds())
	fmt.Printf("fetch:          %.2fs (%d bytes from %s)\n", res.Fetch.Seconds(), res.Bytes, res.Provider.Short())
	fmt.Printf("total:          %.2fs — stretch vs HTTPS: %.1fx (Eq 2)\n", res.Total.Seconds(), res.Stretch())

	if !bytes.Equal(data, content) {
		log.Fatal("content mismatch!")
	}
	fmt.Println("\ncontent verified: CID self-certification held end to end")
}
