package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// benchEvent renders one `go test -json` output event carrying a
// benchmark result line.
func benchEvent(line string) string {
	return `{"Time":"2026-01-01T00:00:00Z","Action":"output","Package":"repro","Output":"` + line + `\n"}`
}

func resultLine(total, dhtRepub, ixRepub, ttfp float64) string {
	n := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	return strings.Join([]string{
		"BenchmarkSessionRoutingUnderChurn-8", "1", "1031247604", "ns/op",
		n(total), "rpc-total",
		n(dhtRepub), "dht-republish-rpcs-per-cycle",
		n(ixRepub), "indexer-republish-rpcs-per-cycle",
		n(ttfp), "dht-time-to-first-provider-s",
	}, " \\t ")
}

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchJSON(t *testing.T) {
	input := strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		benchEvent("goos: linux"),
		benchEvent(resultLine(1084, 60, 4, 7.369)),
		benchEvent("BenchmarkCidSum-8 \\t 4096 \\t 284559 ns/op \\t 921.18 MB/s"),
		`{"Action":"pass","Package":"repro"}`,
	}, "\n")
	got, err := parseBenchJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if v := got[metricKey{"BenchmarkSessionRoutingUnderChurn", "rpc-total"}]; v != 1084 {
		t.Errorf("rpc-total = %v, want 1084", v)
	}
	if v := got[metricKey{"BenchmarkSessionRoutingUnderChurn", "dht-time-to-first-provider-s"}]; v != 7.369 {
		t.Errorf("ttfp = %v, want 7.369", v)
	}
	// The -cpus suffix must be stripped, wall-clock ns/op kept but
	// keyed so the gate never selects it.
	if v := got[metricKey{"BenchmarkCidSum", "MB/s"}]; v != 921.18 {
		t.Errorf("MB/s = %v, want 921.18", v)
	}
}

// TestParseFragmentedJSONEvents pins the shape `go test -json` really
// emits: the benchmark result split across output events, the name in
// the Test field and never at the start of the metric line.
func TestParseFragmentedJSONEvents(t *testing.T) {
	input := strings.Join([]string{
		`{"Action":"output","Test":"BenchmarkSessionRoutingUnderChurn","Output":"BenchmarkSessionRoutingUnderChurn\n"}`,
		`{"Action":"output","Test":"BenchmarkSessionRoutingUnderChurn","Output":"BenchmarkSessionRoutingUnderChurn  \t"}`,
		`{"Action":"output","Test":"BenchmarkSessionRoutingUnderChurn","Output":"       1\t1010333483 ns/op\t        60.00 dht-republish-rpcs-per-cycle\t         7.640 dht-time-to-first-provider-s\t      1084 rpc-total\n"}`,
		`{"Action":"pass","Test":"BenchmarkSessionRoutingUnderChurn"}`,
	}, "\n")
	got, err := parseBenchJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if v := got[metricKey{"BenchmarkSessionRoutingUnderChurn", "rpc-total"}]; v != 1084 {
		t.Errorf("rpc-total = %v, want 1084", v)
	}
	if v := got[metricKey{"BenchmarkSessionRoutingUnderChurn", "dht-republish-rpcs-per-cycle"}]; v != 60 {
		t.Errorf("dht-republish-rpcs-per-cycle = %v, want 60", v)
	}
}

// TestGatePassesOnRealBranch is the no-regression path: a current run
// within tolerance of the baseline (including small seeded drift in
// both directions) passes.
func TestGatePassesOnRealBranch(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(resultLine(1084, 60, 4, 7.369)))
	cur := writeBench(t, "cur.json", benchEvent(resultLine(1150, 58, 5, 7.9)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("gate failed without a regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "rpc-total") {
		t.Errorf("report does not list the gated metrics:\n%s", out.String())
	}
}

// TestGateFailsOnInjectedRegression injects a +50% rpc-total blowup
// and a doubled time-to-first-provider: the gate must fail and name
// the regressed metrics.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(resultLine(1084, 60, 4, 7.369)))
	cur := writeBench(t, "cur.json", benchEvent(resultLine(1626, 60, 4, 15.2)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("gate passed an injected regression:\n%s", out.String())
	}
	for _, want := range []string{"FAIL", "rpc-total", "dht-time-to-first-provider-s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	// The untouched metrics still report ok.
	if !strings.Contains(out.String(), "ok   BenchmarkSessionRoutingUnderChurn/dht-republish-rpcs-per-cycle") {
		t.Errorf("non-regressed metric not reported ok:\n%s", out.String())
	}
}

// TestGateFailsOnMissingHeadlineMetric: deleting a gated metric from
// the bench output must not silently disable its gate.
func TestGateFailsOnMissingHeadlineMetric(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(resultLine(1084, 60, 4, 7.369)))
	cur := writeBench(t, "cur.json",
		benchEvent("BenchmarkSessionRoutingUnderChurn-8 \\t 1 \\t 1031247604 ns/op \\t 1084 rpc-total"))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("gate passed with headline metrics missing from the current run")
	}
	if !strings.Contains(out.String(), "metric missing") {
		t.Errorf("report does not call out the missing metric:\n%s", out.String())
	}
}

// TestErrorWhenNoHeadlineMetricInBaseline: a benchmark rename plus a
// baseline refresh must not leave the gate green while gating nothing.
func TestErrorWhenNoHeadlineMetricInBaseline(t *testing.T) {
	base := writeBench(t, "base.json",
		benchEvent("BenchmarkRenamedEverything-8 \\t 1 \\t 1031247604 ns/op \\t 1084 rpc-total"))
	cur := writeBench(t, "cur.json",
		benchEvent("BenchmarkRenamedEverything-8 \\t 1 \\t 1031247604 ns/op \\t 1084 rpc-total"))
	var out strings.Builder
	if _, err := run(base, cur, 0.35, 2, &out); err == nil {
		t.Fatal("gate accepted a baseline with none of the headline metrics")
	}
}

// lossLine renders a BenchmarkLossDegradation result with the given
// loss30-hit-rate, the gate's one higher-is-better headline metric.
func lossLine(hit30 float64) string {
	n := strconv.FormatFloat(hit30, 'f', -1, 64)
	return strings.Join([]string{
		"BenchmarkLossDegradation-8", "1", "31247604 ns/op",
		"0.95 loss0-hit-rate", n, "loss30-hit-rate", "403 rpc-dropped-total",
	}, " \\t ")
}

// TestGateFailsOnHitRateDrop: loss30-hit-rate gates the opposite
// direction — a hit rate that falls beyond both bounds is the
// regression, and one that rises never is.
func TestGateFailsOnHitRateDrop(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(lossLine(0.25)))
	cur := writeBench(t, "cur.json", benchEvent(lossLine(0.05)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("gate passed a collapsed loss-sweep hit rate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkLossDegradation/loss30-hit-rate") {
		t.Errorf("report does not name the dropped hit rate:\n%s", out.String())
	}
	// An improved hit rate would trip a lower-is-better bound; the
	// Higher direction must wave it through.
	cur2 := writeBench(t, "cur2.json", benchEvent(lossLine(0.60)))
	out.Reset()
	if ok, _ = run(base, cur2, 0.35, 2, &out); !ok {
		t.Fatalf("gate failed an improved hit rate:\n%s", out.String())
	}
}

// TestHitRateSlackAbsorbsSmallDip: a dip inside either bound (relative
// tolerance or the 0.1 absolute slack) is seeded drift, not a
// regression.
func TestHitRateSlackAbsorbsSmallDip(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(lossLine(0.25)))
	cur := writeBench(t, "cur.json", benchEvent(lossLine(0.18)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("gate tripped on a dip inside the slack:\n%s", out.String())
	}
}

// packLine renders a BenchmarkPackStoreServe result with the given
// random-Get p99 and put throughput — the two pack-engine headline
// metrics, gating opposite directions.
func packLine(p99us, putMbps float64) string {
	n := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	return strings.Join([]string{
		"BenchmarkPackStoreServe-8", "1", "7355811461 ns/op",
		n(p99us), "pack-get-p99-us", "2.1 pack-get-p50-us",
		n(putMbps), "pack-put-mbps", "48 fs-get-p99-us",
	}, " \\t ")
}

// TestGateFailsOnPackRegression: the pack gates trip in their own
// directions — a p99 blowup (reads degraded to scans) and a collapsed
// put throughput (fsync on the hot path) each fail independently.
func TestGateFailsOnPackRegression(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(packLine(10, 60)))
	// p99 x100: way past both the relative bound and the 200 µs slack.
	cur := writeBench(t, "cur.json", benchEvent(packLine(1000, 60)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("gate passed a pack read-latency blowup:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkPackStoreServe/pack-get-p99-us") {
		t.Errorf("report does not name the regressed p99:\n%s", out.String())
	}
	// Throughput dropping to a trickle trips the higher-is-better gate.
	cur2 := writeBench(t, "cur2.json", benchEvent(packLine(10, 3)))
	out.Reset()
	if ok, _ = run(base, cur2, 0.35, 2, &out); ok {
		t.Fatalf("gate passed a put-throughput collapse:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkPackStoreServe/pack-put-mbps") {
		t.Errorf("report does not name the collapsed throughput:\n%s", out.String())
	}
	// CI-runner spread inside the slacks passes in both directions.
	cur3 := writeBench(t, "cur3.json", benchEvent(packLine(150, 45)))
	out.Reset()
	if ok, _ = run(base, cur3, 0.35, 2, &out); !ok {
		t.Fatalf("gate tripped on runner noise inside the slacks:\n%s", out.String())
	}
}

// TestAbsoluteSlackOnTinyMetrics: near-zero metrics (4 republish RPCs
// per cycle) may drift by a request or two without tripping the
// relative bound.
func TestAbsoluteSlackOnTinyMetrics(t *testing.T) {
	base := writeBench(t, "base.json", benchEvent(resultLine(1084, 60, 2, 7.369)))
	// +100% relative on the indexer republish cost, but only +2 absolute.
	cur := writeBench(t, "cur.json", benchEvent(resultLine(1084, 60, 4, 7.369)))
	var out strings.Builder
	ok, err := run(base, cur, 0.35, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("absolute slack did not absorb a 2-RPC drift:\n%s", out.String())
	}
	// One more request and it is a real regression.
	cur2 := writeBench(t, "cur2.json", benchEvent(resultLine(1084, 60, 5, 7.369)))
	out.Reset()
	if ok, _ = run(base, cur2, 0.35, 2, &out); ok {
		t.Fatalf("gate passed a tiny-metric regression beyond both bounds:\n%s", out.String())
	}
}
