// Command benchdiff is the CI bench regression gate: it compares the
// headline simulated metrics of a `go test -json -bench` run against a
// committed baseline and exits non-zero when a metric regressed beyond
// the tolerance.
//
//	benchdiff [-tol 0.35] [-abs 2] BENCH_BASELINE.json BENCH_PR.json
//
// Only metrics the simulator fully determines (RPC budgets, simulated
// seconds) are gated — wall-clock ns/op is machine noise and ignored.
// Gated metrics are lower-is-better by default; entries marked Higher
// (the loss-sweep hit rate) gate the opposite direction. Small seeded
// scheduling drift is absorbed by the relative tolerance plus an
// absolute slack, so the gate trips on real cost growth (or real
// resilience loss), not on walk-goroutine jitter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// headline lists the gated benchmark/metric pairs: the network-wide
// RPC total, the batched-republish cost per cycle, the streaming
// time-to-first-provider, and the wall clock a paper-scale (20k-peer)
// event-driven churn scenario costs — the headline fields the bench
// job uploads. scenario-wall-ms is the one wall-clock metric gated on
// purpose: the discrete-event engine's whole claim is that simulated
// hours cost seconds, so a regression back toward sweep costs must
// trip the gate (the relative tolerance absorbs runner noise).
var headline = []gatedMetric{
	{Key: metricKey{"BenchmarkSessionRoutingUnderChurn", "rpc-total"}},
	{Key: metricKey{"BenchmarkSessionRoutingUnderChurn", "dht-republish-rpcs-per-cycle"}},
	{Key: metricKey{"BenchmarkSessionRoutingUnderChurn", "indexer-republish-rpcs-per-cycle"}},
	{Key: metricKey{"BenchmarkSessionRoutingUnderChurn", "dht-time-to-first-provider-s"}},
	{Key: metricKey{"BenchmarkSessionRoutingUnderChurn", "discover-p99-s"}},
	// Wall clock varies with runner hardware: a 10 s absolute slack on
	// top of the relative bound keeps machine-speed spread from
	// tripping the gate, while a slide back toward per-tick sweep costs
	// (minutes at 20k peers) still fails it.
	{Key: metricKey{"BenchmarkScenario20kChurnEventDriven", "scenario-wall-ms"}, Slack: 10_000},
	// Degradation headline: the routers' averaged hit rate at the loss
	// sweep's 30% endpoint is higher-is-better — a change that erodes
	// loss resilience must trip the gate even when the lossless metrics
	// hold. The run is seeded and event-driven, so the 0.1 slack only
	// covers genuinely tiny baselines, not noise.
	{Key: metricKey{"BenchmarkLossDegradation", "loss30-hit-rate"}, Higher: true, Slack: 0.1},
	// Pack blockstore headline: random-Get tail latency over a million
	// blocks and sequential put throughput. Both run on shared CI disks,
	// so generous absolute slacks (µs of scheduler jitter on the p99,
	// MB/s of throughput spread) sit under the relative bound; a real
	// slide — an index regression pushing reads to scans, or fsync on
	// the put path — blows through both.
	{Key: metricKey{"BenchmarkPackStoreServe", "pack-get-p99-us"}, Slack: 200},
	{Key: metricKey{"BenchmarkPackStoreServe", "pack-put-mbps"}, Higher: true, Slack: 20},
	// Gateway-fleet headline: the flash-crowd scenario is seeded and
	// event-driven, so all three metrics are simulator-determined. The
	// steady-phase p99 TTFB gates the full retrieval cascade (the viral
	// phase's p99 is cache-dominated); the hit rate and the origin RPC
	// amplification gate the fleet's whole claim — absorbing a 100x
	// burst without herding the origin. Amp's absolute slack covers its
	// tiny baseline (sub-1x): a slide past ~1.3x means the shared tier
	// stopped absorbing the burst.
	{Key: metricKey{"BenchmarkGatewayFleetFlashCrowd", "fleet-p99-ttfb-ms"}, Slack: 100},
	{Key: metricKey{"BenchmarkGatewayFleetFlashCrowd", "fleet-cache-hit-rate"}, Higher: true, Slack: 0.02},
	{Key: metricKey{"BenchmarkGatewayFleetFlashCrowd", "fleet-origin-rpc-amp"}, Slack: 0.5},
}

// gatedMetric is one headline entry; Slack, when non-zero, replaces
// the global -abs slack for that metric. Higher flips the gate
// direction: the metric regresses by falling below the baseline
// instead of rising above it.
type gatedMetric struct {
	Key    metricKey
	Slack  float64
	Higher bool
}

type metricKey struct {
	Bench string
	Unit  string
}

func (k metricKey) String() string { return k.Bench + "/" + k.Unit }

// parseBenchJSON extracts per-benchmark metrics from a `go test -json`
// stream. The stream fragments one benchmark's result across several
// output events (the name announcement, then the counts-and-metrics
// tail) with the benchmark named by the event's Test field, so output
// is accumulated per Test and tokenized at the end; plain-text result
// lines (`BenchmarkName-8  N  <value unit>...`) are parsed directly.
func parseBenchJSON(r io.Reader) (map[metricKey]float64, error) {
	metrics := make(map[metricKey]float64)
	perTest := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Action string
			Test   string
			Output string
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain-text bench output interleaved in the file.
			ev.Output = string(line)
		}
		if ev.Action != "" && ev.Action != "output" {
			continue
		}
		if strings.HasPrefix(ev.Test, "Benchmark") {
			b := perTest[ev.Test]
			if b == nil {
				b = &strings.Builder{}
				perTest[ev.Test] = b
			}
			b.WriteString(ev.Output)
			b.WriteByte(' ')
			continue
		}
		if out := strings.TrimSpace(ev.Output); strings.HasPrefix(out, "Benchmark") {
			fields := strings.Fields(out)
			parseMetricTokens(fields[0], fields[1:], metrics)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for test, b := range perTest {
		parseMetricTokens(test, strings.Fields(b.String()), metrics)
	}
	return metrics, nil
}

// parseMetricTokens folds a tokenized benchmark result into metrics:
// every (number, unit) token pair is one metric; lone numbers (the
// iteration count) and words (the echoed name) are skipped. The -cpus
// suffix is stripped from the benchmark name.
func parseMetricTokens(name string, tokens []string, metrics map[metricKey]float64) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 0; i+1 < len(tokens); {
		v, err := strconv.ParseFloat(tokens[i], 64)
		if err != nil {
			i++
			continue
		}
		if _, err := strconv.ParseFloat(tokens[i+1], 64); err == nil {
			i++ // two numbers in a row: the first is an iteration count
			continue
		}
		metrics[metricKey{name, tokens[i+1]}] = v
		i += 2
	}
}

// verdict is one gated metric's comparison outcome.
type verdict struct {
	Key        metricKey
	Base, Cur  float64
	Missing    bool
	Regression bool
}

// compare gates the headline metrics: for lower-is-better metrics a
// regression is a current value above base*(1+tol) AND above base+abs;
// Higher metrics mirror both bounds (below base*(1-tol) AND below
// base-abs). The double bound keeps tiny absolute drifts on near-zero
// metrics from tripping the relative check. A headline metric present
// in the baseline but missing from the current run also fails (a
// silently-deleted metric must not disable its own gate).
func compare(base, cur map[metricKey]float64, tol, abs float64) (verdicts []verdict, ok bool) {
	ok = true
	for _, g := range headline {
		k := g.Key
		slack := abs
		if g.Slack > 0 {
			slack = g.Slack
		}
		b, inBase := base[k]
		if !inBase {
			continue // baseline predates the metric; nothing to gate yet
		}
		c, inCur := cur[k]
		v := verdict{Key: k, Base: b, Cur: c}
		regressed := c > b*(1+tol) && c > b+slack
		if g.Higher {
			regressed = c < b*(1-tol) && c < b-slack
		}
		if !inCur {
			v.Missing = true
			ok = false
		} else if regressed {
			v.Regression = true
			ok = false
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, ok
}

func report(w io.Writer, verdicts []verdict, tol float64) {
	for _, v := range verdicts {
		switch {
		case v.Missing:
			fmt.Fprintf(w, "FAIL %-70s baseline %.3f, metric missing from current run\n", v.Key, v.Base)
		case v.Regression:
			fmt.Fprintf(w, "FAIL %-70s %.3f -> %.3f (%+.1f%%, tolerance %.0f%%)\n",
				v.Key, v.Base, v.Cur, 100*(v.Cur-v.Base)/v.Base, 100*tol)
		default:
			fmt.Fprintf(w, "ok   %-70s %.3f -> %.3f\n", v.Key, v.Base, v.Cur)
		}
	}
}

func run(baselinePath, currentPath string, tol, abs float64, w io.Writer) (bool, error) {
	parse := func(path string) (map[metricKey]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBenchJSON(f)
	}
	base, err := parse(baselinePath)
	if err != nil {
		return false, err
	}
	cur, err := parse(currentPath)
	if err != nil {
		return false, err
	}
	if len(base) == 0 {
		return false, fmt.Errorf("no benchmark metrics in baseline %s", baselinePath)
	}
	verdicts, ok := compare(base, cur, tol, abs)
	if len(verdicts) == 0 {
		// A benchmark/metric rename plus a baseline refresh would
		// otherwise leave the gate green while gating nothing.
		return false, fmt.Errorf("none of the headline metrics exist in baseline %s — update the headline list in cmd/benchdiff", baselinePath)
	}
	report(w, verdicts, tol)
	return ok, nil
}

func main() {
	tol := flag.Float64("tol", 0.35, "relative regression tolerance (0.35 = +35%)")
	abs := flag.Float64("abs", 2, "absolute slack added on top of the relative bound")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-abs f] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	ok, err := run(flag.Arg(0), flag.Arg(1), *tol, *abs, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchdiff: headline metrics regressed against the baseline")
		os.Exit(1)
	}
}
