// Command ipfs-bench runs the §4.3 / §6 performance experiments (the
// six-region publish/retrieve protocol) and prints Tables 1 and 4 plus
// the Figure 9/10 series.
//
// Usage:
//
//	ipfs-bench -iters 20 -network 1000 -size 524288
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		network = flag.Int("network", 600, "simulated network size")
		iters   = flag.Int("iters", 8, "publications per region")
		size    = flag.Int("size", 512*1024, "object size in bytes (paper: 0.5 MB)")
		scale   = flag.Float64("scale", 0.002, "time compression")
		seed    = flag.Int64("seed", 42, "random seed")
		points  = flag.Int("points", 20, "CDF points")
		figs    = flag.Bool("figs", false, "print Figure 9/10 CDF series")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "network=%d iterations=%d object=%dB scale=%g\n", *network, *iters, *size, *scale)
	start := time.Now()
	res := experiments.RunPerformance(experiments.PerfConfig{
		NetworkSize:     *network,
		IterationsPer:   *iters,
		ObjectSizeBytes: *size,
		Scale:           *scale,
		Seed:            *seed,
	})
	fmt.Fprintf(os.Stderr, "completed in %v wall time\n\n", time.Since(start))

	fmt.Println(res.Table1())
	fmt.Println()
	fmt.Println(res.Table4())
	fmt.Println()
	fmt.Println("== headline comparison with the paper ==")
	fmt.Println(res.Summary())
	if *figs {
		fmt.Println(res.Fig9(*points))
		fmt.Println(res.Fig10(*points))
	}
}
