// Command ipfs-node runs one IPFS node on real TCP — a minimal kubo
// work-alike for local testnets.
//
// Usage:
//
//	# terminal 1: a bootstrap daemon
//	ipfs-node -listen 127.0.0.1:4001 -seed 1 daemon
//
//	# terminal 2: add and publish a file through a second node
//	ipfs-node -listen 127.0.0.1:4002 -seed 2 \
//	    -bootstrap /ip4/127.0.0.1/tcp/4001/p2p/<peerID> add ./file.bin
//
//	# terminal 3: retrieve it
//	ipfs-node -listen 127.0.0.1:4003 -seed 3 \
//	    -bootstrap /ip4/127.0.0.1/tcp/4001/p2p/<peerID> get <CID> out.bin
//
// Subcommands: daemon | id | add <file> | get <cid> [out] | explain <cid>
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/ipfs"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		seed      = flag.Int64("seed", 0, "identity seed (0 = random)")
		bootstrap = flag.String("bootstrap", "", "comma-separated bootstrap multiaddrs (/ip4/../tcp/../p2p/..)")
		client    = flag.Bool("client", false, "join as a DHT client (unreachable peers)")
		timeout   = flag.Duration("timeout", 60*time.Second, "operation timeout")
		debugHTTP = flag.String("debug-http", "", "daemon-mode introspection listen address (/healthz, /debug/metrics, /debug/trace/last)")
		storeKind = flag.String("blockstore", "mem", "blockstore backend: mem | fs | pack")
		storeDir  = flag.String("blockstore-dir", "", "directory for the fs/pack blockstores")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ipfs-node [flags] daemon|id|add <file>|get <cid> [out]|explain <cid>")
		os.Exit(2)
	}

	store, err := ipfs.NewBlockStore(*storeKind, *storeDir)
	if err != nil {
		fatal(err)
	}
	node, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Listen: *listen, Seed: *seed, Client: *client, Region: "US", Store: store})
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *bootstrap != "" {
		var infos []ipfs.PeerInfo
		for _, s := range strings.Split(*bootstrap, ",") {
			info, err := ipfs.ParsePeerInfo(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bootstrap %q: %w", s, err))
			}
			infos = append(infos, info)
		}
		if err := node.Bootstrap(ctx, infos); err != nil {
			fmt.Fprintf(os.Stderr, "bootstrap: %v (continuing)\n", err)
		}
		if err := node.PublishPeerRecord(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "peer record: %v (continuing)\n", err)
		}
	}

	switch args[0] {
	case "id":
		fmt.Println("PeerID:", node.ID())
		for _, a := range node.Addrs() {
			fmt.Println("Listening:", a)
		}

	case "daemon":
		fmt.Println("PeerID:", node.ID())
		for _, a := range node.Addrs() {
			fmt.Println("Listening:", a)
		}
		var srv *http.Server
		if *debugHTTP != "" {
			mux := http.NewServeMux()
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "ok\n")
			})
			mux.Handle("/debug/", telemetry.Handler(node.Telemetry()))
			srv = &http.Server{Addr: *debugHTTP, Handler: mux}
			go func() {
				if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "debug http: %v\n", err)
				}
			}()
			fmt.Printf("introspection on http://%s/debug/metrics\n", *debugHTTP)
		}
		fmt.Println("daemon running; ^C to stop")
		sctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-sctx.Done()
		if srv != nil {
			shctx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancelShutdown()
			srv.Shutdown(shctx)
		}

	case "add":
		if len(args) < 2 {
			fatal(fmt.Errorf("add requires a file"))
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			fatal(err)
		}
		pub, err := node.AddAndPublish(ctx, data)
		if err != nil {
			fatal(err)
		}
		fmt.Println("added", pub.Cid)
		fmt.Printf("provider records stored on %d/%d peers (walk %.2fs, batch %.2fs)\n",
			pub.StoreOK, pub.StoreAttempts, pub.WalkDuration.Seconds(), pub.BatchDuration.Seconds())

	case "get":
		if len(args) < 2 {
			fatal(fmt.Errorf("get requires a CID"))
		}
		c, err := ipfs.ParseCid(args[1])
		if err != nil {
			fatal(err)
		}
		data, res, err := node.Retrieve(ctx, c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("retrieved %d bytes from %s in %.2fs (discover %.2fs, fetch %.2fs, stretch %.1f)\n",
			len(data), res.Provider.Short(), res.Total.Seconds(), res.Discover().Seconds(),
			res.Fetch.Seconds(), res.Stretch())
		if len(args) >= 3 {
			if err := os.WriteFile(args[2], data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", args[2])
		}

	case "explain":
		if len(args) < 2 {
			fatal(fmt.Errorf("explain requires a CID"))
		}
		c, err := ipfs.ParseCid(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Print(c.Explain())

	default:
		fatal(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
