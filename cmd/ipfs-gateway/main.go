// Command ipfs-gateway runs an HTTP gateway (§3.4) in front of a TCP
// node: GET /ipfs/{CID} serves content from the nginx-style cache, the
// local pinned store, or the P2P network.
//
// With -fleet N (N > 1) it instead serves through a gateway fleet:
// N local nodes behind one HTTP listener, requests placed on a
// consistent-hash ring by CID, a fleet-shared object cache between the
// per-instance caches and the P2P origin, and per-instance admission
// control that sheds overload with 503 + Retry-After.
//
// Usage:
//
//	ipfs-gateway -http 127.0.0.1:8080 \
//	    -bootstrap /ip4/127.0.0.1/tcp/4001/p2p/<peerID> \
//	    -pin ./website.html
//	ipfs-gateway -fleet 4 -fleet-shared-mb 512 -fleet-max-inflight 64
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

import (
	"repro/internal/gwfleet"
	"repro/internal/telemetry"
	"repro/ipfs"
)

func main() {
	var (
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP listen address")
		listen    = flag.String("listen", "127.0.0.1:0", "P2P TCP listen address")
		seed      = flag.Int64("seed", 0, "identity seed (0 = random)")
		bootstrap = flag.String("bootstrap", "", "comma-separated bootstrap multiaddrs")
		cacheMB   = flag.Int64("cache-mb", 256, "nginx-style LRU cache size in MiB (per instance in fleet mode)")
		pins      = flag.String("pin", "", "comma-separated files to pin into the node store")
		storeKind = flag.String("blockstore", "mem", "blockstore backend: mem | fs | pack")
		storeDir  = flag.String("blockstore-dir", "", "directory for the fs/pack blockstores")

		fleetN      = flag.Int("fleet", 1, "gateway fleet size; >1 serves through consistent-hash placement, a shared cache tier and load shedding")
		sharedMB    = flag.Int64("fleet-shared-mb", 256, "fleet-shared object cache size in MiB")
		maxInflight = flag.Int("fleet-max-inflight", 32, "per-instance inflight bound before requests queue")
		queueHigh   = flag.Int("fleet-queue-high", 16, "queue depth at which an instance latches into shedding (503 + Retry-After)")
		queueLow    = flag.Int("fleet-queue-low", 4, "queue depth at which a shedding instance resumes admission")
		negTTL      = flag.Duration("fleet-negative-ttl", time.Minute, "how long a known-missing CID is answered 404 without re-asking the origin")
		retryAfter  = flag.Duration("fleet-retry-after", time.Second, "Retry-After hint attached to shed responses")
	)
	flag.Parse()

	store, err := ipfs.NewBlockStore(*storeKind, *storeDir)
	if err != nil {
		fatal(err)
	}
	node, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Listen: *listen, Seed: *seed, Region: "US", Store: store})
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var boot []ipfs.PeerInfo
	if *bootstrap != "" {
		for _, s := range strings.Split(*bootstrap, ",") {
			info, err := ipfs.ParsePeerInfo(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			boot = append(boot, info)
		}
		if err := node.Bootstrap(ctx, boot); err != nil {
			fmt.Fprintf(os.Stderr, "bootstrap: %v (continuing)\n", err)
		}
	}

	// The HTTP face: a single gateway, or a fleet of them behind the
	// consistent-hash ring.
	var content http.Handler
	var pin func(data []byte) (fmt.Stringer, error)
	if *fleetN > 1 {
		nodes := []*ipfs.Node{node}
		for i := 1; i < *fleetN; i++ {
			var s int64
			if *seed != 0 {
				s = *seed + int64(i)
			}
			n, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Seed: s, Region: "US"})
			if err != nil {
				fatal(err)
			}
			defer n.Close()
			// Every instance joins the cluster through the primary node
			// (plus any external bootstrap peers).
			if err := n.Bootstrap(ctx, append([]ipfs.PeerInfo{node.Info()}, boot...)); err != nil {
				fmt.Fprintf(os.Stderr, "fleet instance %d bootstrap: %v (continuing)\n", i, err)
			}
			nodes = append(nodes, n)
		}
		fleet := gwfleet.New(nodes, gwfleet.Config{
			LocalCacheBytes:  *cacheMB << 20,
			SharedCacheBytes: *sharedMB << 20,
			NegativeTTL:      *negTTL,
			MaxInflight:      *maxInflight,
			QueueHigh:        *queueHigh,
			QueueLow:         *queueLow,
			RetryAfter:       *retryAfter,
			Registry:         node.Telemetry().Registry(),
		})
		content = fleet
		pin = func(data []byte) (fmt.Stringer, error) { return fleet.Gateway(0).Pin(data) }
		fmt.Printf("fleet of %d gateway instances, shared cache %d MiB\n", fleet.Size(), *sharedMB)
	} else {
		gw := ipfs.NewTCPGateway(node, *cacheMB<<20)
		content = gw
		pin = func(data []byte) (fmt.Stringer, error) { return gw.Pin(data) }
	}

	if *pins != "" {
		for _, f := range strings.Split(*pins, ",") {
			data, err := os.ReadFile(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			c, err := pin(data)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pinned %s -> /ipfs/%s\n", f, c)
		}
	}

	fmt.Println("gateway PeerID:", node.ID())
	for _, a := range node.Addrs() {
		fmt.Println("P2P listening:", a)
	}
	fmt.Printf("HTTP gateway on http://%s/ipfs/{CID}\n", *httpAddr)
	fmt.Printf("introspection on http://%s/debug/metrics and /debug/trace/last\n", *httpAddr)

	mux := http.NewServeMux()
	mux.Handle("/", content)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/", telemetry.Handler(node.Telemetry()))

	srv := &http.Server{Addr: *httpAddr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	sctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-sctx.Done():
	}
	// In-flight gateway requests get a grace window to finish; the node
	// closes afterwards via the deferred Close.
	fmt.Println("shutting down...")
	shctx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
