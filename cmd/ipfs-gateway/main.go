// Command ipfs-gateway runs an HTTP gateway (§3.4) in front of a TCP
// node: GET /ipfs/{CID} serves content from the nginx-style cache, the
// local pinned store, or the P2P network.
//
// Usage:
//
//	ipfs-gateway -http 127.0.0.1:8080 \
//	    -bootstrap /ip4/127.0.0.1/tcp/4001/p2p/<peerID> \
//	    -pin ./website.html
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

import (
	"repro/internal/telemetry"
	"repro/ipfs"
)

func main() {
	var (
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP listen address")
		listen    = flag.String("listen", "127.0.0.1:0", "P2P TCP listen address")
		seed      = flag.Int64("seed", 0, "identity seed (0 = random)")
		bootstrap = flag.String("bootstrap", "", "comma-separated bootstrap multiaddrs")
		cacheMB   = flag.Int64("cache-mb", 256, "nginx-style LRU cache size in MiB")
		pins      = flag.String("pin", "", "comma-separated files to pin into the node store")
		storeKind = flag.String("blockstore", "mem", "blockstore backend: mem | fs | pack")
		storeDir  = flag.String("blockstore-dir", "", "directory for the fs/pack blockstores")
	)
	flag.Parse()

	store, err := ipfs.NewBlockStore(*storeKind, *storeDir)
	if err != nil {
		fatal(err)
	}
	node, err := ipfs.NewTCPNode(ipfs.TCPNodeConfig{Listen: *listen, Seed: *seed, Region: "US", Store: store})
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if *bootstrap != "" {
		var infos []ipfs.PeerInfo
		for _, s := range strings.Split(*bootstrap, ",") {
			info, err := ipfs.ParsePeerInfo(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			infos = append(infos, info)
		}
		if err := node.Bootstrap(ctx, infos); err != nil {
			fmt.Fprintf(os.Stderr, "bootstrap: %v (continuing)\n", err)
		}
	}

	gw := ipfs.NewTCPGateway(node, *cacheMB<<20)
	if *pins != "" {
		for _, f := range strings.Split(*pins, ",") {
			data, err := os.ReadFile(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			c, err := gw.Pin(data)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pinned %s -> /ipfs/%s\n", f, c)
		}
	}

	fmt.Println("gateway PeerID:", node.ID())
	for _, a := range node.Addrs() {
		fmt.Println("P2P listening:", a)
	}
	fmt.Printf("HTTP gateway on http://%s/ipfs/{CID}\n", *httpAddr)
	fmt.Printf("introspection on http://%s/debug/metrics and /debug/trace/last\n", *httpAddr)

	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/", telemetry.Handler(node.Telemetry()))

	srv := &http.Server{Addr: *httpAddr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	sctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-sctx.Done():
	}
	// In-flight gateway requests get a grace window to finish; the node
	// closes afterwards via the deferred Close.
	fmt.Println("shutting down...")
	shctx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
