// Command ipfs-crawler runs the §4.1 measurement methodology against a
// simulated network: repeated k-bucket crawls with churn between
// epochs, printing the Fig 4a time series and a dialability summary.
//
// Usage:
//
//	ipfs-crawler -network 2000 -epochs 12 -interval 30m
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		network  = flag.Int("network", 1000, "simulated network size to crawl")
		pop      = flag.Int("population", 20000, "population size for the statistical analyses")
		epochs   = flag.Int("epochs", 12, "number of crawls")
		interval = flag.Duration("interval", 30*time.Minute, "simulated time between crawls (§4.1: 30m)")
		seed     = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	res := experiments.RunDeployment(experiments.DeployConfig{
		PopulationSize:   *pop,
		CrawlNetworkSize: *network,
		CrawlEpochs:      *epochs,
		CrawlInterval:    *interval,
		Seed:             *seed,
	})
	fmt.Println(res.Fig4a())
	fmt.Println(res.Fig5())
	fmt.Println()
	fmt.Println(res.Table2())
	fmt.Println()
	fmt.Println(res.Table3())
	fmt.Println()
	fmt.Println(res.Fig8(20))
}
