// Command ipfs-experiments regenerates every table and figure of the
// paper's evaluation (§5–§6) against the simulated network.
//
// Usage:
//
//	ipfs-experiments -run all
//	ipfs-experiments -run table4 -iters 20 -network 1000
//	ipfs-experiments -run fig8
//	ipfs-experiments -run ablations
//	ipfs-experiments -run routing -network 300 -churn-amplitude 2 -window 12h
//	ipfs-experiments -run routing -event-driven -loss-sweep 0,0.1,0.2,0.3 -window 8h
//	ipfs-experiments -run routing -event-driven -partition-regions us-west-1,US -partition-at 3h -heal-at 5h
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/geo"
)

func main() {
	var (
		run = flag.String("run", "all", "experiment id: all, table1, table2, table3, table4, table5, fig4a, fig4b, fig5, fig6, fig7a, fig7b, fig7c, fig7d, fig8, fig9, fig10, fig11, ablations, routing, gwfleet")
		// Deliberately not named -churn: that flag used to mean
		// "offline fraction", and a stale invocation must fail loudly
		// rather than silently select a different churn intensity.
		churn    = flag.Float64("churn-amplitude", 1, "churn-timeline amplitude for the routing comparison (1 = the paper's Fig 8 model, >1 churns harder, e.g. 0.01 for effectively none)")
		window   = flag.Duration("window", 0, "simulated window the routing churn timeline covers (0 selects the 24h default)")
		ticks    = flag.Int("ticks", 0, "retrieval ticks across the routing window (0 selects the default)")
		shards   = flag.Int("indexer-shards", 1, "indexer keyspace shards for the routing comparison (>1 with -indexer-replicas builds a gossiping fleet)")
		reps     = flag.Int("indexer-replicas", 1, "replicas per indexer shard")
		outage   = flag.Duration("indexer-outage-at", 0, "offset at which each shard's primary indexer goes offline for the rest of the window (0 = no outage)")
		linkLoss = flag.Float64("link-loss", 0, "network-wide per-transit loss probability for the routing comparison (each lost transit costs the drop timeout)")
		lossSwp  = flag.String("loss-sweep", "", "comma-separated loss rates (e.g. 0,0.1,0.2,0.3): one retrieval tick per entry, raising the loss rate to that entry just before the tick; overrides -ticks")
		extraLat = flag.Duration("link-extra-latency", 0, "fixed extra latency every transit pays (Pumba-style delay injection)")
		linkJit  = flag.Duration("link-jitter", 0, "per-transit jitter bound on top of -link-extra-latency (deterministic under -event-driven lockstep)")
		partRegs = flag.String("partition-regions", "", "comma-separated region codes (e.g. us-west-1,US) cut off from the rest of the network at -partition-at")
		partAt   = flag.Duration("partition-at", 0, "offset at which the -partition-regions split starts (0 = no partition)")
		healAt   = flag.Duration("heal-at", 0, "offset at which the partition heals (0 = never)")
		reachMix = flag.Bool("reachability-mix", false, "build the network with the population's sampled NAT status (Fig 7's mix: ~1/3 of peers online but refusing inbound dials)")
		eventDrv = flag.Bool("event-driven", false, "run the routing comparison on the discrete-event scheduler: virtual time jumps between events, so paper-scale populations (-network 20000) replay a full churn window in seconds")
		workers  = flag.Int("workers", 1, "concurrent event dispatch in -event-driven mode (1 = deterministic lockstep)")
		network  = flag.Int("network", 600, "simulated network size for performance runs")
		iters    = flag.Int("iters", 8, "publications per region")
		pop      = flag.Int("population", 20000, "population size for deployment analyses")
		scale    = flag.Float64("scale", 0.002, "time compression (real seconds per simulated second)")
		seed     = flag.Int64("seed", 42, "random seed")
		points   = flag.Int("points", 20, "CDF points per series")
		traceOut = flag.String("trace-out", "", "write the routing comparison's retrieval trace spans as JSONL to this file")
		fleetGWs = flag.Int("fleet-gateways", 4, "gateway instances in the flash-crowd fleet scenario")
		fleetMul = flag.Float64("fleet-multiplier", 100, "viral CID's arrival-rate multiple of the steady rate in the flash-crowd scenario")
		fleetDir = flag.String("fleet-origin-dir", "", "back the flash-crowd origin host with a pack-engine blockstore rooted here (empty = in-memory)")
	)
	flag.Parse()

	ids := strings.Split(*run, ",")
	want := func(prefix ...string) bool {
		for _, id := range ids {
			id = strings.TrimSpace(id)
			if id == "all" {
				return true
			}
			for _, p := range prefix {
				if id == p {
					return true
				}
			}
		}
		return false
	}

	needPerf := want("table1", "table4", "fig9", "fig10")
	needDeploy := want("table2", "table3", "fig4a", "fig5", "fig7a", "fig7b", "fig7c", "fig7d", "fig8")
	needGateway := want("table5", "fig4b", "fig6", "fig11")
	needAblations := want("ablations")
	needRouting := want("routing")
	needFleet := want("gwfleet")

	if !needPerf && !needDeploy && !needGateway && !needAblations && !needRouting && !needFleet {
		fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}

	if needPerf {
		fmt.Fprintln(os.Stderr, "running §4.3 performance experiment...")
		res := experiments.RunPerformance(experiments.PerfConfig{
			NetworkSize: *network, IterationsPer: *iters, Scale: *scale, Seed: *seed,
		})
		if want("table1") {
			fmt.Println(res.Table1())
			fmt.Println()
		}
		if want("table4") {
			fmt.Println(res.Table4())
			fmt.Println()
		}
		if want("fig9") {
			fmt.Println(res.Fig9(*points))
		}
		if want("fig10") {
			fmt.Println(res.Fig10(*points))
		}
		fmt.Println("== headline comparison ==")
		fmt.Println(res.Summary())
	}

	if needDeploy {
		fmt.Fprintln(os.Stderr, "running §5 deployment analyses...")
		res := experiments.RunDeployment(experiments.DeployConfig{
			PopulationSize: *pop, Seed: *seed,
		})
		if want("fig4a") {
			fmt.Println(res.Fig4a())
		}
		if want("fig5") {
			fmt.Println(res.Fig5())
			fmt.Println()
		}
		if want("table2") {
			fmt.Println(res.Table2())
			fmt.Println()
		}
		if want("table3") {
			fmt.Println(res.Table3())
			fmt.Println()
		}
		if want("fig7a") {
			fmt.Println(res.Fig7a())
		}
		if want("fig7b") {
			fmt.Println(res.Fig7b())
		}
		if want("fig7c") {
			fmt.Println(res.Fig7c())
		}
		if want("fig7d") {
			fmt.Println(res.Fig7d())
		}
		if want("fig8") {
			fmt.Println(res.Fig8(*points))
		}
	}

	if needGateway {
		fmt.Fprintln(os.Stderr, "running §6.3 gateway experiment...")
		res := experiments.RunGateway(experiments.GatewayConfig{Seed: *seed})
		if want("table5") {
			fmt.Println(res.Table5())
			fmt.Println()
		}
		if want("fig4b") {
			fmt.Println(res.Fig4b())
		}
		if want("fig6") {
			fmt.Println(res.Fig6())
			fmt.Println()
		}
		if want("fig11") {
			fmt.Println(res.Fig11a(*points))
			fmt.Println(res.Fig11b())
		}
	}

	if needRouting {
		fmt.Fprintln(os.Stderr, "running content-routing comparison under the churn timeline...")
		var sweep []float64
		if *lossSwp != "" {
			for _, s := range strings.Split(*lossSwp, ",") {
				rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil || rate < 0 || rate > 1 {
					fmt.Fprintf(os.Stderr, "-loss-sweep: %q is not a loss rate in [0, 1]\n", s)
					os.Exit(2)
				}
				sweep = append(sweep, rate)
			}
		}
		var partition []geo.Region
		if *partRegs != "" {
			for _, s := range strings.Split(*partRegs, ",") {
				partition = append(partition, geo.Region(strings.TrimSpace(s)))
			}
		}
		faulted := *linkLoss > 0 || len(sweep) > 0 || *extraLat > 0 || *linkJit > 0 ||
			(*partAt > 0 && len(partition) > 0) || *reachMix
		res := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: *network, Objects: *iters, ChurnAmplitude: *churn,
			Window: *window, Ticks: *ticks,
			IndexerShards: *shards, IndexerReplicas: *reps, IndexerOutageAt: *outage,
			LinkLoss: *linkLoss, LossSweep: sweep,
			LinkExtraLatency: *extraLat, LinkJitter: *linkJit,
			PartitionRegions: partition, PartitionAt: *partAt, HealAt: *healAt,
			ReachabilityMix: *reachMix,
			EventDriven:     *eventDrv, Workers: *workers,
			Scale: *scale, Seed: *seed,
		})
		if *eventDrv {
			fmt.Fprintf(os.Stderr, "event-driven run: %d events dispatched, %d stalls\n", res.SchedEvents, res.SchedStalls)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
			for _, tr := range res.Traces {
				if err := tr.WriteJSONL(f); err != nil {
					fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
					os.Exit(1)
				}
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace span trees to %s\n", len(res.Traces), *traceOut)
		}
		fmt.Println(res.Table())
		fmt.Println()
		fmt.Println(res.TimeSeries())
		fmt.Println()
		if faulted {
			fmt.Println(res.DegradationTable())
			fmt.Println()
		}
		fmt.Println(res.BudgetReport())
		fmt.Println("== headline comparison ==")
		fmt.Println(res.Summary())
		fmt.Println("(WANT-HAVEs counts per-session Bitswap messages: one-hop routers feed")
		fmt.Println(" sessions known providers and skip the opportunistic broadcast; the")
		fmt.Println(" Routed column is how many retrievals took that path. The time series")
		fmt.Println(" tracks the same run per phase: timeline liveness, snapshot staleness,")
		fmt.Println(" indexer record coverage, and the RPC budget spent by category.)")
	}

	if needFleet {
		fmt.Fprintln(os.Stderr, "running viral-CID flash crowd against the gateway fleet...")
		res := experiments.RunFleetScenario(experiments.FleetScenarioConfig{
			Gateways:   *fleetGWs,
			Multiplier: *fleetMul,
			OriginDir:  *fleetDir,
			Workers:    *workers,
			Seed:       *seed,
		})
		fmt.Fprintf(os.Stderr, "event-driven run: %d events dispatched, %d stalls\n", res.SchedEvents, res.SchedStalls)
		fmt.Println(res.Report())
	}

	if needAblations {
		fmt.Fprintln(os.Stderr, "running design-choice ablations...")
		acfg := experiments.AblationConfig{Seed: *seed, Scale: *scale}
		reps := experiments.RunReplicationSweep(acfg, nil, 0)
		alphas := experiments.RunAlphaSweep(acfg, nil)
		disc := experiments.RunParallelDiscovery(acfg)
		cs := experiments.RunClientServerSplit(acfg)
		caches := experiments.RunGatewayCacheSweep(acfg, nil)
		fmt.Println(experiments.RenderAblations(reps, alphas, disc, cs, caches))
	}
}
