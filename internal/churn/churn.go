// Package churn models peer session behaviour (§5.3, Figure 8): peers
// arrive and depart; session lengths are short (87.6 % under 8 h, only
// 2.5 % beyond 24 h) with strong regional differences (median uptime in
// Hong Kong is 24.2 min, more than double that in Germany). The package
// generates per-peer online/offline timelines with a diurnal component
// and implements the paper's adaptive uptime-probing schedule (§4.1).
package churn

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
)

// Median session uptimes per region, anchored on the published numbers
// (HK 24.2 min; DE more than double that) and interpolated for the
// remaining regions.
var regionMedians = map[geo.Region]time.Duration{
	"HK": time.Duration(24.2 * float64(time.Minute)),
	"DE": 52 * time.Minute,
	"CN": 28 * time.Minute,
	"US": 42 * time.Minute,
	"BR": 30 * time.Minute,
	"TW": 33 * time.Minute,
	"FR": 45 * time.Minute,
	"KR": 35 * time.Minute,
}

// DefaultMedian is used for regions without a published anchor.
const DefaultMedian = 38 * time.Minute

// sessionSigma is the lognormal shape parameter, chosen so that ~87.6 %
// of sessions fall under 8 h when the median is ~35 min.
const sessionSigma = 2.35

// Model samples session and gap lengths.
type Model struct {
	rng *rand.Rand
}

// NewModel creates a churn model with the given seed.
func NewModel(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed))}
}

// MedianFor returns the session median for a region.
func MedianFor(r geo.Region) time.Duration {
	if m, ok := regionMedians[r]; ok {
		return m
	}
	return DefaultMedian
}

// SampleSession draws a session length for a peer in region r:
// lognormal around the regional median, truncated to [30 s, 7 d].
func (m *Model) SampleSession(r geo.Region) time.Duration {
	median := MedianFor(r)
	mu := math.Log(median.Seconds())
	x := math.Exp(mu + sessionSigma*m.rng.NormFloat64())
	d := time.Duration(x * float64(time.Second))
	if d < 30*time.Second {
		d = 30 * time.Second
	}
	if d > 7*24*time.Hour {
		d = 7 * 24 * time.Hour
	}
	return d
}

// SampleGap draws an offline gap, exponentially distributed with a
// 1 h mean (chosen so the instantaneous dialable fraction of crawls
// approximates Fig 4a's ~50 %), modulated by the diurnal cycle: peers
// return faster during their local daytime. at is the wall-clock time
// the gap begins; longitude shifts the local peak.
func (m *Model) SampleGap(r geo.Region, at time.Time) time.Duration {
	mean := time.Hour
	gap := time.Duration(m.rng.ExpFloat64() * float64(mean))
	// Diurnal factor in [0.6, 1.4]: shortest gaps when local time ~15h.
	localHour := float64(at.UTC().Hour()) + longitudeHourOffset(r)
	factor := 1 + 0.4*math.Cos(2*math.Pi*(localHour-15)/24)
	gap = time.Duration(float64(gap) / factor)
	if gap < time.Minute {
		gap = time.Minute
	}
	return gap
}

// longitudeHourOffset approximates a region's timezone offset in hours.
func longitudeHourOffset(r geo.Region) float64 {
	switch r {
	case "US", "CA":
		return -6
	case "BR":
		return -3
	case "DE", "FR", "NL", "GB", "PL", "IT":
		return 1
	case "RU", "UA":
		return 3
	case "IN":
		return 5.5
	case "CN", "TW", "HK", "SG":
		return 8
	case "KR", "JP":
		return 9
	case "AU":
		return 10
	}
	return 0
}

// Interval is one continuous online period.
type Interval struct {
	Start, End time.Time
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// PeerTimeline is a peer's full online/offline history over the
// simulated window.
type PeerTimeline struct {
	Index    int
	Region   geo.Region
	Sessions []Interval
}

// OnlineAt reports whether the peer is online at t.
func (pt *PeerTimeline) OnlineAt(t time.Time) bool {
	i := sort.Search(len(pt.Sessions), func(i int) bool {
		return pt.Sessions[i].End.After(t)
	})
	return i < len(pt.Sessions) && pt.Sessions[i].Contains(t)
}

// NextTransition returns the peer's next online/offline boundary
// strictly after t — a session start if the peer is offline at t, its
// current session's end otherwise — or ok=false when the timeline holds
// no further transitions. The event-driven scenario engine chains one
// scheduler event per transition off this instead of polling OnlineAt
// every tick.
func (pt *PeerTimeline) NextTransition(t time.Time) (next time.Time, ok bool) {
	i := sort.Search(len(pt.Sessions), func(i int) bool {
		return pt.Sessions[i].End.After(t)
	})
	if i >= len(pt.Sessions) {
		return time.Time{}, false
	}
	if pt.Sessions[i].Start.After(t) {
		return pt.Sessions[i].Start, true
	}
	return pt.Sessions[i].End, true
}

// Timeline holds the histories of a whole population.
type Timeline struct {
	Start, End time.Time
	Peers      []PeerTimeline
}

// TimelineConfig tunes timeline generation.
type TimelineConfig struct {
	Start    time.Time
	Duration time.Duration
	Seed     int64
	// Amplitude scales churn intensity for the defaulting (neither
	// reliable nor unreachable) population: session lengths divide by it
	// and offline gaps multiply by it, so 1 (or 0) reproduces the
	// paper's Fig 8 model, >1 churns harder — shorter sessions, longer
	// absences — and <1 is calmer. The churn-scenario experiments sweep
	// it to stress stale-snapshot fallback paths.
	Amplitude float64
	// NATSessions gives undialable peers ordinary churned sessions
	// instead of keeping them permanently absent: the peer is online and
	// originates traffic, it just cannot accept inbound dials (Fig 7's
	// NAT'd cohort). The simulator's transport enforces the
	// unreachability; this flag only controls liveness. Off by default
	// to preserve the legacy Fig 7b population model.
	NATSessions bool
}

// GenerateTimeline builds timelines for the population: reliable peers
// stay online essentially the whole window; unreachable peers never
// come online; everyone else alternates sampled sessions and gaps.
func GenerateTimeline(pop *geo.Population, cfg TimelineConfig) *Timeline {
	model := NewModel(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	amp := cfg.Amplitude
	if amp <= 0 {
		amp = 1
	}
	end := cfg.Start.Add(cfg.Duration)
	tl := &Timeline{Start: cfg.Start, End: end}
	for _, p := range pop.Peers {
		pt := PeerTimeline{Index: p.Index, Region: p.Country}
		switch {
		case !p.Dialable && !cfg.NATSessions:
			// Never reachable: no sessions (Fig 7b population).
		case p.Reliable:
			// >90 % uptime: one long session with a brief outage.
			gapStart := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
			gapLen := time.Duration(float64(cfg.Duration) * 0.03)
			if gapStart.Add(gapLen).After(end) {
				gapStart = end.Add(-gapLen)
			}
			pt.Sessions = append(pt.Sessions,
				Interval{Start: cfg.Start, End: gapStart},
				Interval{Start: gapStart.Add(gapLen), End: end})
		default:
			// Random phase: the peer may start mid-session or offline.
			t := cfg.Start.Add(-time.Duration(rng.Int63n(int64(4 * time.Hour))))
			online := rng.Float64() < 0.7
			for t.Before(end) {
				if online {
					dur := time.Duration(float64(model.SampleSession(p.Country)) / amp)
					iv := Interval{Start: t, End: t.Add(dur)}
					if iv.End.After(end) {
						iv.End = end
					}
					if iv.End.After(cfg.Start) {
						if iv.Start.Before(cfg.Start) {
							iv.Start = cfg.Start
						}
						pt.Sessions = append(pt.Sessions, iv)
					}
					t = t.Add(dur)
				} else {
					t = t.Add(time.Duration(float64(model.SampleGap(p.Country, t)) * amp))
				}
				online = !online
			}
		}
		tl.Peers = append(tl.Peers, pt)
	}
	return tl
}

// Observation is one measured session for the Fig 8 analysis.
type Observation struct {
	Region geo.Region
	Uptime time.Duration
}

// SessionObservations returns the sessions that started in the first
// half of the window — the paper's long-session handling, which
// minimizes bias toward short sessions (§5.3).
func (tl *Timeline) SessionObservations() []Observation {
	half := tl.Start.Add(tl.End.Sub(tl.Start) / 2)
	var out []Observation
	for _, pt := range tl.Peers {
		for _, s := range pt.Sessions {
			if s.Start.Before(half) && !s.Start.Before(tl.Start) {
				out = append(out, Observation{Region: pt.Region, Uptime: s.Duration()})
			}
		}
	}
	return out
}

// OnlineCount returns how many peers are online at t.
func (tl *Timeline) OnlineCount(t time.Time) int {
	n := 0
	for i := range tl.Peers {
		if tl.Peers[i].OnlineAt(t) {
			n++
		}
	}
	return n
}

// UptimeFraction returns the fraction of the window peer i was online.
func (tl *Timeline) UptimeFraction(i int) float64 {
	var online time.Duration
	for _, s := range tl.Peers[i].Sessions {
		online += s.Duration()
	}
	return online.Seconds() / tl.End.Sub(tl.Start).Seconds()
}

// Prober answers "was peer i online at time t": the uptime probing
// harness runs against it.
type Prober interface {
	OnlineAt(i int, t time.Time) bool
}

// TimelineProber adapts a Timeline to the Prober interface.
type TimelineProber struct{ TL *Timeline }

// OnlineAt implements Prober.
func (p TimelineProber) OnlineAt(i int, t time.Time) bool {
	return p.TL.Peers[i].OnlineAt(t)
}

// Probe limits from §4.1: "an interval of 0.5x the observed uptime,
// starting at a minimum of 30 seconds and ending at a maximum of 15
// minutes".
const (
	MinProbeInterval = 30 * time.Second
	MaxProbeInterval = 15 * time.Minute
)

// NextProbeInterval implements the adaptive schedule.
func NextProbeInterval(observedUptime time.Duration) time.Duration {
	iv := observedUptime / 2
	if iv < MinProbeInterval {
		iv = MinProbeInterval
	}
	if iv > MaxProbeInterval {
		iv = MaxProbeInterval
	}
	return iv
}

// MeasureSessions probes peer i over the window and reconstructs its
// observed sessions, as the crawler's uptime tracker does. It returns
// observed session lengths.
func MeasureSessions(p Prober, i int, start, end time.Time) []time.Duration {
	var out []time.Duration
	t := start
	var sessionStart time.Time
	inSession := false
	var observedUptime time.Duration
	for t.Before(end) {
		online := p.OnlineAt(i, t)
		switch {
		case online && !inSession:
			inSession = true
			sessionStart = t
			observedUptime = 0
		case online && inSession:
			observedUptime = t.Sub(sessionStart)
		case !online && inSession:
			inSession = false
			out = append(out, t.Sub(sessionStart))
			observedUptime = 0
		}
		if inSession {
			t = t.Add(NextProbeInterval(observedUptime))
		} else {
			t = t.Add(MinProbeInterval)
		}
	}
	if inSession {
		out = append(out, end.Sub(sessionStart))
	}
	return out
}
