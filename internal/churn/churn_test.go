package churn

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/stats"
)

var start = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func TestSampleSessionBounds(t *testing.T) {
	m := NewModel(1)
	for i := 0; i < 1000; i++ {
		d := m.SampleSession("US")
		if d < 30*time.Second || d > 7*24*time.Hour {
			t.Fatalf("session %v out of bounds", d)
		}
	}
}

func TestSessionDistributionMatchesPaper(t *testing.T) {
	// §5.3: "87.6 % of sessions under 8 hours and only 2.5 % of
	// sessions exceeding 24 hours".
	m := NewModel(2)
	s := stats.NewSample()
	regions := []geo.Region{"US", "CN", "DE", "HK", "BR", "TW"}
	for i := 0; i < 20000; i++ {
		s.AddDuration(m.SampleSession(regions[i%len(regions)]))
	}
	under8h := s.FractionBelow((8 * time.Hour).Seconds())
	over24h := 1 - s.FractionBelow((24 * time.Hour).Seconds())
	if under8h < 0.82 || under8h > 0.93 {
		t.Errorf("under 8h = %.3f, want ~0.876", under8h)
	}
	if over24h < 0.01 || over24h > 0.06 {
		t.Errorf("over 24h = %.3f, want ~0.025", over24h)
	}
}

func TestRegionalMedianOrdering(t *testing.T) {
	// HK sessions are about half as long as DE sessions (§5.3).
	m := NewModel(3)
	hk, de := stats.NewSample(), stats.NewSample()
	for i := 0; i < 20000; i++ {
		hk.AddDuration(m.SampleSession("HK"))
		de.AddDuration(m.SampleSession("DE"))
	}
	if hk.Median() >= de.Median() {
		t.Errorf("median HK (%.0fs) should be < DE (%.0fs)", hk.Median(), de.Median())
	}
	ratio := de.Median() / hk.Median()
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("DE/HK median ratio = %.2f, want ~2", ratio)
	}
}

func TestMedianFor(t *testing.T) {
	if MedianFor("HK") != time.Duration(24.2*float64(time.Minute)) {
		t.Error("HK median should match the paper")
	}
	if MedianFor("ZZ") != DefaultMedian {
		t.Error("unknown region should use the default")
	}
}

func TestGenerateTimelineClasses(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(2000))
	tl := GenerateTimeline(pop, TimelineConfig{Start: start, Duration: 24 * time.Hour, Seed: 4})
	if len(tl.Peers) != 2000 {
		t.Fatalf("timelines = %d", len(tl.Peers))
	}
	for i, p := range pop.Peers {
		up := tl.UptimeFraction(i)
		switch {
		case !p.Dialable && up != 0:
			t.Fatalf("unreachable peer %d has uptime %.2f", i, up)
		case p.Reliable && up < 0.9:
			t.Fatalf("reliable peer %d has uptime %.2f, want > 0.9", i, up)
		case up < 0 || up > 1.0001:
			t.Fatalf("uptime fraction %v out of range", up)
		}
	}
}

func TestTimelineOnlineAtConsistency(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(200))
	tl := GenerateTimeline(pop, TimelineConfig{Start: start, Duration: 12 * time.Hour, Seed: 5})
	for i := range tl.Peers {
		for _, s := range tl.Peers[i].Sessions {
			mid := s.Start.Add(s.Duration() / 2)
			if s.Duration() > 0 && !tl.Peers[i].OnlineAt(mid) {
				t.Fatalf("peer %d should be online mid-session", i)
			}
			if tl.Peers[i].OnlineAt(s.End.Add(time.Nanosecond)) && len(tl.Peers[i].Sessions) == 1 {
				t.Fatalf("peer %d online after its only session", i)
			}
		}
	}
}

func TestOnlineCountVaries(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(1500))
	tl := GenerateTimeline(pop, TimelineConfig{Start: start, Duration: 24 * time.Hour, Seed: 6})
	minC, maxC := 1<<30, 0
	for h := 0; h < 24; h++ {
		c := tl.OnlineCount(start.Add(time.Duration(h) * time.Hour))
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC == 0 {
		t.Error("network should never be empty")
	}
	if maxC == minC {
		t.Error("online count should vary over the day (Fig 4a periodicity)")
	}
}

func TestSessionObservationsFirstHalfOnly(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(300))
	tl := GenerateTimeline(pop, TimelineConfig{Start: start, Duration: 24 * time.Hour, Seed: 7})
	obs := tl.SessionObservations()
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	for _, o := range obs {
		if o.Uptime <= 0 {
			t.Fatal("non-positive uptime observation")
		}
	}
}

func TestNextProbeInterval(t *testing.T) {
	cases := []struct {
		uptime time.Duration
		want   time.Duration
	}{
		{0, MinProbeInterval},
		{30 * time.Second, MinProbeInterval},
		{2 * time.Minute, time.Minute},
		{10 * time.Minute, 5 * time.Minute},
		{2 * time.Hour, MaxProbeInterval},
	}
	for _, c := range cases {
		if got := NextProbeInterval(c.uptime); got != c.want {
			t.Errorf("NextProbeInterval(%v) = %v, want %v", c.uptime, got, c.want)
		}
	}
}

func TestMeasureSessionsApproximatesTruth(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(50))
	tl := GenerateTimeline(pop, TimelineConfig{Start: start, Duration: 12 * time.Hour, Seed: 8})
	prober := TimelineProber{TL: tl}
	for i := range tl.Peers {
		truth := tl.Peers[i].Sessions
		measured := MeasureSessions(prober, i, tl.Start, tl.End)
		// Sessions longer than 2x the min probe interval must be seen.
		long := 0
		for _, s := range truth {
			if s.Duration() > 2*MinProbeInterval {
				long++
			}
		}
		if long > 0 && len(measured) == 0 {
			t.Fatalf("peer %d: %d long sessions, none measured", i, long)
		}
	}
}

// TestTimelineAmplitude checks the churn amplitude lever: a harder
// amplitude must shrink the population's aggregate online fraction
// (shorter sessions, longer gaps), and amplitude 1 must match the
// default model exactly.
func TestTimelineAmplitude(t *testing.T) {
	pop := geo.GeneratePopulation(geo.DefaultPopulationConfig(600))
	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	base := TimelineConfig{Start: start, Duration: 24 * time.Hour, Seed: 11}

	uptime := func(tl *Timeline) float64 {
		var sum float64
		for i := range tl.Peers {
			sum += tl.UptimeFraction(i)
		}
		return sum / float64(len(tl.Peers))
	}
	cfg1 := base
	cfg1.Amplitude = 1
	deflt := uptime(GenerateTimeline(pop, base))
	amp1 := uptime(GenerateTimeline(pop, cfg1))
	if deflt != amp1 {
		t.Errorf("amplitude 1 (%f) must reproduce the default model (%f)", amp1, deflt)
	}
	cfgHard := base
	cfgHard.Amplitude = 6
	hard := uptime(GenerateTimeline(pop, cfgHard))
	cfgCalm := base
	cfgCalm.Amplitude = 0.25
	calm := uptime(GenerateTimeline(pop, cfgCalm))
	if !(calm > deflt && deflt > hard) {
		t.Errorf("uptime fractions not ordered: calm %.3f > default %.3f > hard %.3f", calm, deflt, hard)
	}
	if hard > deflt*0.75 {
		t.Errorf("amplitude 6 barely moved uptime: %.3f vs default %.3f", hard, deflt)
	}
}
