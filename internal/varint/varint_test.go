package varint

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 256, 16383, 16384, 1<<32 - 1, 1 << 62, math.MaxInt64}
	for _, v := range cases {
		enc := Encode(v)
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%d): %v", v, err)
		}
		if got != v || n != len(enc) {
			t.Errorf("Decode(Encode(%d)) = %d (n=%d), want %d (n=%d)", v, got, n, v, len(enc))
		}
		if n != Len(v) {
			t.Errorf("Len(%d) = %d, want %d", v, Len(v), n)
		}
	}
}

func TestDecodeRejectsNonMinimal(t *testing.T) {
	// 0x80 0x00 is a non-minimal encoding of 0.
	if _, _, err := Decode([]byte{0x80, 0x00}); err != ErrNotMinimal {
		t.Errorf("non-minimal zero: err = %v, want ErrNotMinimal", err)
	}
	// 0xff 0x00 is a non-minimal encoding of 127.
	if _, _, err := Decode([]byte{0xff, 0x00}); err != ErrNotMinimal {
		t.Errorf("non-minimal 127: err = %v, want ErrNotMinimal", err)
	}
}

func TestDecodeRejectsTooLong(t *testing.T) {
	// A run of continuation bytes trips the overflow check at the ninth
	// byte, before the length check can fire.
	buf := bytes.Repeat([]byte{0xff}, 10)
	if _, _, err := Decode(buf); err != ErrOverflow && err != ErrMaxLenExceed {
		t.Errorf("10-byte varint: err = %v, want ErrOverflow or ErrMaxLenExceed", err)
	}
}

func TestDecodeRejectsOverflow(t *testing.T) {
	// Nine bytes where the ninth has the high bits set beyond 63 bits.
	buf := append(bytes.Repeat([]byte{0xff}, 8), 0x80)
	if _, _, err := Decode(buf); err != ErrOverflow {
		t.Errorf("overflow: err = %v, want ErrOverflow", err)
	}
}

func TestDecodeUnderflow(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrUnderflow {
		t.Errorf("empty: err = %v, want ErrUnderflow", err)
	}
	if _, _, err := Decode([]byte{0x80}); err != ErrUnderflow {
		t.Errorf("truncated: err = %v, want ErrUnderflow", err)
	}
}

func TestReadUvarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 300, 1 << 40} {
		r := bytes.NewReader(Encode(v))
		got, err := ReadUvarint(r)
		if err != nil {
			t.Fatalf("ReadUvarint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("ReadUvarint = %d, want %d", got, v)
		}
	}
}

func TestReadUvarintTruncated(t *testing.T) {
	r := bytes.NewReader([]byte{0x80})
	if _, err := ReadUvarint(r); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated stream: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= math.MaxInt64 // spec limits varints to 63 bits
		got, n, err := Decode(Encode(v))
		return err == nil && got == v && n == Len(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAppendMatchesEncode(t *testing.T) {
	f := func(prefix []byte, v uint64) bool {
		v &= math.MaxInt64
		out := Append(append([]byte(nil), prefix...), v)
		return bytes.Equal(out[:len(prefix)], prefix) && bytes.Equal(out[len(prefix):], Encode(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
