// Package varint implements the unsigned varint encoding used throughout
// the multiformats family (multihash, CID, multiaddr, wire framing).
//
// The encoding is the LEB128-style base-128 encoding also used by Go's
// encoding/binary Uvarint, restricted — per the multiformats spec — to
// minimal encodings of at most 9 bytes (63 bits of payload).
package varint

import (
	"errors"
	"io"
)

// MaxLen is the maximum number of bytes a spec-compliant varint may occupy.
const MaxLen = 9

// Errors returned by the decoding functions.
var (
	ErrOverflow     = errors.New("varint: value overflows 63 bits")
	ErrUnderflow    = errors.New("varint: buffer too small")
	ErrNotMinimal   = errors.New("varint: encoding is not minimal")
	ErrMaxLenExceed = errors.New("varint: encoding exceeds 9 bytes")
)

// Len returns the number of bytes required to encode v.
func Len(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Append appends the varint encoding of v to dst and returns the
// extended slice.
func Append(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Encode returns the varint encoding of v as a fresh slice.
func Encode(v uint64) []byte {
	return Append(make([]byte, 0, Len(v)), v)
}

// Decode reads a varint from the start of buf. It returns the value and
// the number of bytes consumed. Non-minimal encodings, encodings longer
// than MaxLen bytes and values above 2^63-1 are rejected.
func Decode(buf []byte) (uint64, int, error) {
	var (
		v     uint64
		shift uint
	)
	for i, b := range buf {
		if i >= MaxLen {
			return 0, 0, ErrMaxLenExceed
		}
		if i == MaxLen-1 && b > 0x7f {
			return 0, 0, ErrOverflow
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if b == 0 && i > 0 {
				return 0, 0, ErrNotMinimal
			}
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrUnderflow
}

// ReadUvarint reads a varint from r one byte at a time, enforcing the
// same minimality and range rules as Decode.
func ReadUvarint(r io.ByteReader) (uint64, error) {
	var (
		v     uint64
		shift uint
	)
	for i := 0; ; i++ {
		if i >= MaxLen {
			return 0, ErrMaxLenExceed
		}
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == MaxLen-1 && b > 0x7f {
			return 0, ErrOverflow
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if b == 0 && i > 0 {
				return 0, ErrNotMinimal
			}
			return v, nil
		}
		shift += 7
	}
}
