package multihash

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"

	"repro/internal/multicodec"
)

func TestSumSHA256Framing(t *testing.T) {
	data := []byte("merkle-dag")
	mh := SumSHA256(data)
	// Figure 1: sha2-256 code 0x12, length 0x20, then the digest.
	if mh[0] != 0x12 {
		t.Errorf("function code = 0x%x, want 0x12", mh[0])
	}
	if mh[1] != 0x20 {
		t.Errorf("length = 0x%x, want 0x20 (32 bytes)", mh[1])
	}
	want := sha256.Sum256(data)
	if !bytes.Equal(mh[2:], want[:]) {
		t.Error("digest mismatch with crypto/sha256")
	}
}

func TestDecode(t *testing.T) {
	mh := SumSHA256([]byte("x"))
	dec, err := Decode(mh)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Code != multicodec.SHA2_256 || dec.Length != 32 || len(dec.Digest) != 32 {
		t.Errorf("Decode = %+v", dec)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty multihash should fail")
	}
	if _, err := Decode([]byte{0x12}); err == nil {
		t.Error("missing length should fail")
	}
	if _, err := Decode([]byte{0x12, 0x20, 0xab}); err == nil {
		t.Error("short digest should fail")
	}
	mh := SumSHA256([]byte("x"))
	if _, err := Decode(append(mh, 0x00)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestSumUnknownFunction(t *testing.T) {
	if _, err := Sum(multicodec.Code(0x9999), []byte("x")); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestIdentityHash(t *testing.T) {
	data := []byte("tiny")
	mh, err := Sum(multicodec.IdentityHash, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(mh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Digest, data) {
		t.Errorf("identity digest = %q, want %q", dec.Digest, data)
	}
	if !Verify(mh, data) {
		t.Error("identity multihash should verify")
	}
}

func TestVerifySelfCertification(t *testing.T) {
	data := []byte("the content cannot be altered without modifying its CID")
	mh := SumSHA256(data)
	if !Verify(mh, data) {
		t.Error("Verify should accept matching content")
	}
	tampered := append([]byte(nil), data...)
	tampered[0] ^= 1
	if Verify(mh, tampered) {
		t.Error("Verify should reject tampered content")
	}
	if Verify(Multihash{0x12, 0x01, 0xab}, data) {
		t.Error("Verify should reject digest with wrong length for sha2-256")
	}
}

func TestSHA512(t *testing.T) {
	mh, err := Sum(multicodec.SHA2_512, []byte("long hash"))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(mh)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Length != 64 {
		t.Errorf("sha2-512 length = %d, want 64", dec.Length)
	}
}

func TestQuickSumVerify(t *testing.T) {
	f := func(data []byte) bool {
		return Verify(SumSHA256(data), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinctInputsDistinctHashes(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !Equal(SumSHA256(a), SumSHA256(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
