// Package multihash implements self-describing hash digests (§2.1,
// Figure 1). A multihash is <hash-func-code varint><digest-length
// varint><digest>, so readers can verify content without out-of-band
// agreement on the hash function. The network default is sha2-256 with
// 32-byte digests.
package multihash

import (
	"bytes"
	"crypto/sha256"
	"crypto/sha512"
	"errors"
	"fmt"

	"repro/internal/multicodec"
	"repro/internal/varint"
)

// Multihash is a validated, binary-encoded multihash.
type Multihash []byte

// Errors returned by this package.
var (
	ErrUnknownFunction = errors.New("multihash: unknown hash function")
	ErrInvalidLength   = errors.New("multihash: digest length mismatch")
	ErrTooShort        = errors.New("multihash: buffer too short")
)

// Sum computes the multihash of data with the given hash function code.
// The supported codes are SHA2_256 (the network default), SHA2_512 and
// IdentityHash (which embeds data directly and is used for small inline
// objects).
func Sum(code multicodec.Code, data []byte) (Multihash, error) {
	var digest []byte
	switch code {
	case multicodec.SHA2_256:
		d := sha256.Sum256(data)
		digest = d[:]
	case multicodec.SHA2_512:
		d := sha512.Sum512(data)
		digest = d[:]
	case multicodec.IdentityHash:
		digest = data
	default:
		return nil, fmt.Errorf("%w: 0x%x", ErrUnknownFunction, uint64(code))
	}
	return FromDigest(code, digest), nil
}

// SumSHA256 computes the default sha2-256 multihash of data.
func SumSHA256(data []byte) Multihash {
	mh, _ := Sum(multicodec.SHA2_256, data)
	return mh
}

// FromDigest wraps an already-computed digest in multihash framing.
func FromDigest(code multicodec.Code, digest []byte) Multihash {
	buf := varint.Encode(uint64(code))
	buf = varint.Append(buf, uint64(len(digest)))
	return append(buf, digest...)
}

// Decoded is the parsed form of a multihash.
type Decoded struct {
	Code   multicodec.Code // hash function
	Length int             // digest length in bytes
	Digest []byte          // the raw digest
}

// Decode parses and validates a binary multihash.
func Decode(mh []byte) (Decoded, error) {
	code, n, err := varint.Decode(mh)
	if err != nil {
		return Decoded{}, fmt.Errorf("multihash: reading code: %w", err)
	}
	length, m, err := varint.Decode(mh[n:])
	if err != nil {
		return Decoded{}, fmt.Errorf("multihash: reading length: %w", err)
	}
	digest := mh[n+m:]
	if uint64(len(digest)) != length {
		return Decoded{}, fmt.Errorf("%w: header says %d, have %d bytes", ErrInvalidLength, length, len(digest))
	}
	return Decoded{Code: multicodec.Code(code), Length: int(length), Digest: digest}, nil
}

// Validate reports whether mh is a well-formed multihash.
func Validate(mh []byte) error {
	_, err := Decode(mh)
	return err
}

// Verify reports whether mh is the multihash of data, enabling the
// self-certification property of §2.1 ("content cannot be altered
// without modifying its CID").
func Verify(mh Multihash, data []byte) bool {
	dec, err := Decode(mh)
	if err != nil {
		return false
	}
	want, err := Sum(dec.Code, data)
	if err != nil {
		return false
	}
	return bytes.Equal(mh, want)
}

// Equal reports whether two multihashes are byte-identical.
func Equal(a, b Multihash) bool { return bytes.Equal(a, b) }

// String renders the multihash as hex for debugging.
func (m Multihash) String() string { return fmt.Sprintf("%x", []byte(m)) }
