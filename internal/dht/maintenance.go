package dht

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/kbucket"
)

// Refresh performs random-key lookups to repopulate the routing table:
// one self-lookup plus nKeys walks toward uniformly random keys. Each
// walk adds every responsive peer it meets to the table and evicts the
// dead entries it trips over, the standard Kademlia bucket-refresh
// maintenance. It returns the table size afterwards.
func (d *DHT) Refresh(ctx context.Context, nKeys int, seed int64) int {
	if nKeys <= 0 {
		nKeys = 3
	}
	// Self-lookup first: densifies our own neighbourhood, which record
	// storage correctness depends on.
	selfKey := []byte(d.ident.ID)
	d.WalkClosest(ctx, kbucket.KeyForBytes(selfKey), selfKey)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nKeys; i++ {
		var key [32]byte
		rng.Read(key[:])
		d.WalkClosest(ctx, kbucket.KeyForBytes(key[:]), key[:])
		if ctx.Err() != nil {
			break
		}
	}
	return d.table.Len()
}

// StartMaintenance runs the periodic housekeeping loop: bucket
// refreshes and provider-record garbage collection (expired records
// are dropped so the node never serves stale mappings, §3.1). interval
// is simulated time; <= 0 selects 1 h. The loop is a self-rearming
// timer on the node's time source, so under the event scheduler each
// cycle is one queue event and the node sleeps between cycles.
func (d *DHT) StartMaintenance(ctx context.Context, interval time.Duration, seed int64) {
	if interval <= 0 {
		interval = time.Hour
	}
	var cycle func(context.Context)
	i := int64(0)
	cycle = func(cctx context.Context) {
		d.Refresh(cctx, 2, seed+i)
		d.providers.GC()
		i++
		if cctx.Err() == nil {
			d.cfg.Time.AfterFunc(cctx, interval, cycle)
		}
	}
	d.cfg.Time.AfterFunc(ctx, interval, cycle)
}
