package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/record"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Errors returned by DHT operations.
var (
	ErrNoProviders = errors.New("dht: no providers found")
	ErrNoPeerRec   = errors.New("dht: peer record not found")
	ErrNoIPNSRec   = errors.New("dht: ipns record not found")
)

// storeRPCTimeout bounds one provider-record store RPC. It exceeds the
// 45 s websocket handshake timeout so the Figure 9c spike structure is
// produced by the transports, not clipped by us.
const storeRPCTimeout = 60 * time.Second

// ProvideResult instruments one content publication (Figure 3 steps
// 2–3, measured in Figures 9a–c). Durations are in simulated time.
type ProvideResult struct {
	WalkDuration  time.Duration // DHT walk to find the k closest peers (Fig 9b)
	BatchDuration time.Duration // concurrent ADD_PROVIDER RPC batch (Fig 9c)
	TotalDuration time.Duration // overall publication (Fig 9a)
	Walk          WalkInfo
	StoreAttempts int
	StoreOK       int
	// StoreTargets is the batch's target set (the k closest peers, the
	// snapshot neighbourhood, or the indexer set) and AckedTargets the
	// subset that acknowledged the store — the per-target detail the
	// republish ack ledger records so the next cycle can batch records
	// per peer instead of re-walking per CID.
	StoreTargets []wire.PeerInfo
	AckedTargets []wire.PeerInfo
}

// Provide publishes a provider record for c: walk to the k closest
// peers, then push the record to each with concurrent fire-and-forget
// RPCs (§3.1).
func (d *DHT) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	var res ProvideResult
	src := d.cfg.Time
	start := src.Stamp()
	key := c.Bytes()
	target := kbucket.KeyForBytes(key)

	closest, winfo, err := d.WalkClosest(ctx, target, key)
	res.Walk = winfo
	res.WalkDuration = winfo.Duration
	if err != nil {
		return res, err
	}
	if len(closest) == 0 {
		return res, fmt.Errorf("dht: provide %s: no peers to store on", c)
	}

	provInfo := wire.PeerInfo{ID: d.ident.ID}
	if !d.cfg.OmitProviderAddrs {
		provInfo.Addrs = d.sw.Addrs()
	}
	req := wire.Message{
		Type:      wire.TAddProvider,
		Key:       key,
		Providers: []wire.PeerInfo{provInfo},
	}

	batchStart := src.Stamp()
	res.StoreTargets = closest
	g := simtime.NewGroup(src)
	var mu sync.Mutex
	for _, info := range closest {
		info := info
		res.StoreAttempts++
		g.Go(ctx, func(gctx context.Context) {
			rctx, cancel := src.WithTimeout(gctx, storeRPCTimeout)
			defer cancel()
			r := req
			r.Peers = d.selfInfo()
			resp, err := d.sw.Request(rctx, info.ID, info.Addrs, r)
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				res.StoreOK++
				res.AckedTargets = append(res.AckedTargets, info)
				mu.Unlock()
			}
		})
	}
	g.Wait(ctx)
	res.BatchDuration = src.Since(batchStart)
	res.TotalDuration = src.Since(start)
	if res.StoreOK == 0 {
		return res, fmt.Errorf("dht: provide %s: all %d store RPCs failed", c, res.StoreAttempts)
	}
	return res, nil
}

// FindProviders walks the DHT for provider records of c, terminating at
// the first record-holding response (§3.2: the retrieval walk ends
// "after the discovery of a single record-hosting node").
func (d *DHT) FindProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, WalkInfo, error) {
	key := c.Bytes()
	target := kbucket.KeyForBytes(key)
	_, final, info := d.walk(ctx, target,
		func() wire.Message { return wire.Message{Type: wire.TGetProviders, Key: key} },
		func(resp wire.Message) bool { return len(resp.Providers) > 0 })
	if final == nil {
		if err := ctx.Err(); err != nil {
			return nil, info, err
		}
		return nil, info, ErrNoProviders
	}
	providers := make([]wire.PeerInfo, 0, len(final.Providers))
	for _, p := range final.Providers {
		if addrs, ok := d.sw.Book().Get(p.ID); ok && len(p.Addrs) == 0 {
			p.Addrs = addrs
		}
		providers = append(providers, p)
	}
	return providers, info, nil
}

// FindProvidersStream walks the DHT for provider records of c, calling
// emit with each record-carrying response's providers as it arrives.
// emit returning false stops the walk (returning false on the first
// batch reproduces the §3.2 single-response termination exactly);
// returning true keeps the walk going toward convergence, so later
// responses become fail-over candidates instead of being discarded.
func (d *DHT) FindProvidersStream(ctx context.Context, c cid.Cid, emit func([]wire.PeerInfo) bool) WalkInfo {
	key := c.Bytes()
	target := kbucket.KeyForBytes(key)
	_, _, info := d.walk(ctx, target,
		func() wire.Message { return wire.Message{Type: wire.TGetProviders, Key: key} },
		func(resp wire.Message) bool {
			if len(resp.Providers) == 0 {
				return false
			}
			providers := make([]wire.PeerInfo, 0, len(resp.Providers))
			for _, p := range resp.Providers {
				if addrs, ok := d.sw.Book().Get(p.ID); ok && len(p.Addrs) == 0 {
					p.Addrs = addrs
				}
				providers = append(providers, p)
			}
			return !emit(providers)
		})
	return info
}

// FindPeer resolves a PeerID to its signed peer record via a second DHT
// walk — the Peer Discovery phase of §3.2.
func (d *DHT) FindPeer(ctx context.Context, id peer.ID) (wire.PeerInfo, WalkInfo, error) {
	key := []byte(id)
	target := kbucket.KeyForBytes(key)
	_, final, info := d.walk(ctx, target,
		func() wire.Message { return wire.Message{Type: wire.TGetPeerRecord, Key: key} },
		func(resp wire.Message) bool { return resp.PeerRec != nil })
	if final == nil || final.PeerRec == nil {
		if err := ctx.Err(); err != nil {
			return wire.PeerInfo{}, info, err
		}
		return wire.PeerInfo{}, info, ErrNoPeerRec
	}
	rec := final.PeerRec
	if err := rec.Verify(); err != nil {
		return wire.PeerInfo{}, info, fmt.Errorf("dht: find peer %s: %w", id.Short(), err)
	}
	if rec.ID != id {
		return wire.PeerInfo{}, info, fmt.Errorf("dht: find peer: record for wrong peer %s", rec.ID.Short())
	}
	d.sw.Book().Add(id, rec.Addrs)
	return wire.PeerInfo{ID: id, Addrs: rec.Addrs}, info, nil
}

// PublishPeerRecord signs and stores the local peer record on the k
// closest peers to our PeerID — "publication of the peer record follows
// the same CID-to-PeerID procedure" (§3.1).
func (d *DHT) PublishPeerRecord(ctx context.Context) (ProvideResult, error) {
	var res ProvideResult
	src := d.cfg.Time
	start := src.Stamp()
	key := []byte(d.ident.ID)
	target := kbucket.KeyForBytes(key)
	closest, winfo, err := d.WalkClosest(ctx, target, key)
	res.Walk = winfo
	res.WalkDuration = winfo.Duration
	if err != nil {
		return res, err
	}
	rec := record.NewPeerRecord(d.ident, d.sw.Addrs(), d.nextSeq(), d.cfg.Now())

	batchStart := src.Stamp()
	g := simtime.NewGroup(src)
	var mu sync.Mutex
	for _, info := range closest {
		info := info
		res.StoreAttempts++
		g.Go(ctx, func(gctx context.Context) {
			rctx, cancel := src.WithTimeout(gctx, storeRPCTimeout)
			defer cancel()
			resp, err := d.sw.Request(rctx, info.ID, info.Addrs, wire.Message{
				Type:    wire.TPutPeerRecord,
				Key:     key,
				PeerRec: &rec,
				Peers:   d.selfInfo(),
			})
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				res.StoreOK++
				mu.Unlock()
			}
		})
	}
	g.Wait(ctx)
	res.BatchDuration = src.Since(batchStart)
	res.TotalDuration = src.Since(start)
	if res.StoreOK == 0 && res.StoreAttempts > 0 {
		return res, fmt.Errorf("dht: peer record: all %d store RPCs failed", res.StoreAttempts)
	}
	return res, nil
}

// PutIPNS stores an IPNS record (an opaque signed payload, §3.3) on the
// k closest peers to key.
func (d *DHT) PutIPNS(ctx context.Context, key []byte, data []byte) (int, error) {
	target := kbucket.KeyForBytes(key)
	closest, _, err := d.WalkClosest(ctx, target, key)
	if err != nil {
		return 0, err
	}
	src := d.cfg.Time
	g := simtime.NewGroup(src)
	var mu sync.Mutex
	ok := 0
	for _, info := range closest {
		info := info
		g.Go(ctx, func(gctx context.Context) {
			rctx, cancel := src.WithTimeout(gctx, storeRPCTimeout)
			defer cancel()
			resp, err := d.sw.Request(rctx, info.ID, info.Addrs, wire.Message{
				Type:     wire.TPutIPNS,
				Key:      key,
				IPNSData: data,
				Peers:    d.selfInfo(),
			})
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				ok++
				mu.Unlock()
			}
		})
	}
	g.Wait(ctx)
	if ok == 0 {
		return 0, fmt.Errorf("dht: put ipns: all stores failed")
	}
	return ok, nil
}

// GetIPNS retrieves an IPNS record for key, returning the first
// validator-accepted payload encountered during the walk.
func (d *DHT) GetIPNS(ctx context.Context, key []byte) ([]byte, error) {
	target := kbucket.KeyForBytes(key)
	_, final, _ := d.walk(ctx, target,
		func() wire.Message { return wire.Message{Type: wire.TGetIPNS, Key: key} },
		func(resp wire.Message) bool {
			if len(resp.IPNSData) == 0 {
				return false
			}
			if d.validator != nil && d.validator(key, resp.IPNSData) != nil {
				return false
			}
			return true
		})
	if final == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrNoIPNSRec
	}
	return final.IPNSData, nil
}
