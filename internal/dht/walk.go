package dht

import (
	"context"
	"sort"
	"strconv"
	"time"

	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// WalkInfo summarizes one DHT walk (§3.2: "multi-round iterative
// lookups"), in simulated time.
type WalkInfo struct {
	Duration time.Duration // total walk time
	Queried  int           // peers successfully queried
	Failed   int           // peers that timed out or refused
	Launched int           // RPCs issued, including ones abandoned at early stop
	Depth    int           // longest discovery chain from the seeds
}

type candState int

const (
	stateCandidate candState = iota
	stateInflight
	stateDone
	stateFailed
)

type candidate struct {
	info  wire.PeerInfo
	state candState
	depth int
}

type queryResult struct {
	id   peer.ID
	resp wire.Message
	err  error
}

// maxWalkQueries caps runaway walks.
const maxWalkQueries = 128

// walk runs the iterative α-parallel lookup toward target. mkReq builds
// the RPC to send; stop inspects each successful response and returns
// true to terminate early (e.g. a provider record was found, §3.2). It
// returns the k closest candidates seen — including unresponsive ones,
// which is what makes the publication RPC batch hit dial timeouts
// (Fig 9c) — the stopping response if any, and walk statistics.
func (d *DHT) walk(ctx context.Context, target kbucket.Key, mkReq func() wire.Message, stop func(wire.Message) bool) ([]wire.PeerInfo, *wire.Message, WalkInfo) {
	// The walk is one trace phase: query RPCs attach as events via the
	// derived contexts, and every completed query adds a "hop" event.
	ctx, wsp := telemetry.StartSpan(ctx, "dht-walk")
	src := d.cfg.Time
	start := src.Stamp()
	cands := make(map[peer.ID]*candidate)

	addCandidate := func(info wire.PeerInfo, depth int) {
		if info.ID == d.ident.ID {
			return
		}
		if c, ok := cands[info.ID]; ok {
			if len(info.Addrs) > 0 && len(c.info.Addrs) == 0 {
				c.info.Addrs = info.Addrs
			}
			return
		}
		cands[info.ID] = &candidate{info: info, depth: depth}
	}

	// Seed with the k closest peers from our own routing table.
	for _, id := range d.table.NearestPeers(target, d.cfg.K) {
		info := wire.PeerInfo{ID: id}
		if addrs, ok := d.sw.Book().Get(id); ok {
			info.Addrs = addrs
		}
		addCandidate(info, 0)
	}

	// closestUnqueried returns the unqueried candidate nearest target.
	closestUnqueried := func() *candidate {
		var best *candidate
		var bestDist kbucket.Key
		for _, c := range cands {
			if c.state != stateCandidate {
				continue
			}
			dist := kbucket.XOR(kbucket.KeyForPeer(c.info.ID), target)
			if best == nil || kbucket.Less(dist, bestDist) {
				best, bestDist = c, dist
			}
		}
		return best
	}

	// converged reports whether the k closest non-failed candidates
	// have all been queried.
	converged := func() bool {
		type distCand struct {
			c    *candidate
			dist kbucket.Key
		}
		var live []distCand
		for _, c := range cands {
			if c.state == stateFailed {
				continue
			}
			live = append(live, distCand{c, kbucket.XOR(kbucket.KeyForPeer(c.info.ID), target)})
		}
		sort.Slice(live, func(i, j int) bool { return kbucket.Less(live[i].dist, live[j].dist) })
		if len(live) > d.cfg.K {
			live = live[:d.cfg.K]
		}
		for _, dc := range live {
			if dc.c.state != stateDone {
				return false
			}
		}
		return len(live) > 0
	}

	// Buffered to the query cap so responders never block: a query
	// goroutine deposits its result and exits even when the coordinator
	// has already moved on (early stop, convergence).
	results := make(chan queryResult, maxWalkQueries)
	walkCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var info WalkInfo
	defer func() {
		wsp.Annotate("queried", strconv.Itoa(info.Queried))
		wsp.Annotate("failed", strconv.Itoa(info.Failed))
		wsp.Annotate("depth", strconv.Itoa(info.Depth))
		wsp.End()
	}()
	inflight := 0
	launched := 0

	launch := func() {
		for inflight < d.cfg.Alpha && launched < maxWalkQueries {
			c := closestUnqueried()
			if c == nil {
				return
			}
			c.state = stateInflight
			inflight++
			launched++
			// Snapshot the candidate's info on this goroutine: the main
			// loop keeps mutating candidates (addCandidate backfills
			// Addrs on responses), and the query goroutine must not read
			// the shared struct concurrently.
			pi := c.info
			src.Go(walkCtx, func(gctx context.Context) {
				qctx, qcancel := src.WithTimeout(gctx, d.cfg.QueryTimeout)
				defer qcancel()
				req := mkReq()
				req.Peers = d.selfInfo()
				resp, err := d.sw.Request(qctx, pi.ID, pi.Addrs, req)
				results <- queryResult{id: pi.ID, resp: resp, err: err}
			})
		}
	}

	var final *wire.Message
	launch()
	for inflight > 0 {
		res, ok := simtime.Recv(ctx, src, results)
		if !ok {
			info.Duration = src.Since(start)
			info.Launched = launched
			return d.closestSeen(cands, target), final, info
		}
		inflight--
		c := cands[res.id]
		if res.err != nil || res.resp.Type == wire.TError {
			c.state = stateFailed
			info.Failed++
			d.table.Remove(res.id)
			wsp.Event("hop", telemetry.A("peer", res.id.String()), telemetry.A("ok", "false"))
		} else {
			c.state = stateDone
			info.Queried++
			d.table.Add(res.id)
			wsp.Event("hop", telemetry.A("peer", res.id.String()), telemetry.A("ok", "true"),
				telemetry.A("depth", strconv.Itoa(c.depth+1)))
			if c.depth+1 > info.Depth {
				info.Depth = c.depth + 1
			}
			for _, pi := range res.resp.Peers {
				if len(pi.Addrs) > 0 {
					d.sw.Book().Add(pi.ID, pi.Addrs)
				}
				addCandidate(pi, c.depth+1)
			}
			if stop != nil && stop(res.resp) {
				final = &res.resp
				break
			}
			if converged() {
				break
			}
		}
		launch()
	}
	cancel()
	info.Duration = src.Since(start)
	info.Launched = launched
	return d.closestSeen(cands, target), final, info
}

// closestSeen returns the k closest candidates observed during the
// walk, regardless of whether they answered.
func (d *DHT) closestSeen(cands map[peer.ID]*candidate, target kbucket.Key) []wire.PeerInfo {
	infos := make([]wire.PeerInfo, 0, len(cands))
	ids := make([]peer.ID, 0, len(cands))
	for id := range cands {
		ids = append(ids, id)
	}
	kbucket.SortByDistance(ids, target)
	if len(ids) > d.cfg.K {
		ids = ids[:d.cfg.K]
	}
	for _, id := range ids {
		infos = append(infos, cands[id].info)
	}
	return infos
}

// WalkClosest finds the k closest peers to a key with FIND_NODE
// queries — step 2 of Figure 3.
func (d *DHT) WalkClosest(ctx context.Context, target kbucket.Key, keyBytes []byte) ([]wire.PeerInfo, WalkInfo, error) {
	closest, _, info := d.walk(ctx, target,
		func() wire.Message { return wire.Message{Type: wire.TFindNode, Key: keyBytes} },
		nil)
	if err := ctx.Err(); err != nil {
		return closest, info, err
	}
	return closest, info, nil
}
