package dht

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/geo"
	"repro/internal/kbucket"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// testNet is a miniature seeded DHT network over the simulator.
type testNet struct {
	net   *simnet.Network
	nodes []*DHT
}

// buildNet creates n DHT servers with fully seeded routing tables.
// classFn may mark some peers with a behaviour class.
func buildNet(t *testing.T, n int, classFn func(i int) simnet.Class) *testNet {
	t.Helper()
	base := simtime.New(0.0005)
	net := simnet.New(simnet.Config{Base: base, Seed: 7})
	cfg := Config{Base: base, QueryTimeout: 10 * time.Second}
	rng := rand.New(rand.NewSource(99))

	tn := &testNet{net: net}
	infos := make([]wire.PeerInfo, n)
	regions := []geo.Region{"US", "CN", "DE", "FR", geo.EuCentral1, geo.UsWest1}
	for i := 0; i < n; i++ {
		ident := peer.MustNewIdentity(rng)
		class := simnet.Normal
		if classFn != nil {
			class = classFn(i)
		}
		ep := net.AddNode(ident.ID, simnet.NodeOpts{
			Region:   regions[i%len(regions)],
			Dialable: true,
			Class:    class,
		})
		sw := swarm.New(ident, ep, simtime.NewBaseSource(base, nil))
		d := New(ident, sw, ModeServer, cfg)
		ep.SetHandler(d.HandleMessage)
		tn.nodes = append(tn.nodes, d)
		infos[i] = wire.PeerInfo{ID: ident.ID, Addrs: ep.Addrs()}
	}
	// Seed every node's routing table with every other peer, modelling
	// a converged long-running network.
	for _, d := range tn.nodes {
		for _, info := range infos {
			d.Seed(info)
		}
	}
	return tn
}

func TestHandleFindNodeReturnsClosest(t *testing.T) {
	tn := buildNet(t, 30, nil)
	d := tn.nodes[0]
	key := []byte("some-target-key")
	resp := d.HandleMessage(context.Background(), tn.nodes[1].ident.ID, wire.Message{Type: wire.TFindNode, Key: key})
	if resp.Type != wire.TNodes {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Peers) == 0 || len(resp.Peers) > d.cfg.K {
		t.Fatalf("returned %d peers", len(resp.Peers))
	}
	// Responses must be sorted by XOR distance to the key.
	target := kbucket.KeyForBytes(key)
	for i := 1; i < len(resp.Peers); i++ {
		if kbucket.Closer(resp.Peers[i].ID, resp.Peers[i-1].ID, target) {
			t.Fatal("closestInfos not sorted by distance")
		}
	}
}

func TestClientRefusesToServe(t *testing.T) {
	tn := buildNet(t, 5, nil)
	d := tn.nodes[0]
	d.SetMode(ModeClient)
	resp := d.HandleMessage(context.Background(), tn.nodes[1].ident.ID, wire.Message{Type: wire.TFindNode, Key: []byte("k")})
	if resp.Type != wire.TError {
		t.Errorf("client served a request: %+v", resp)
	}
	if d.Mode() != ModeClient {
		t.Error("mode not set")
	}
}

func TestProvideStoresOnClosestPeers(t *testing.T) {
	tn := buildNet(t, 40, nil)
	publisher := tn.nodes[0]
	c := cid.Sum(multicodec.Raw, []byte("published content"))

	res, err := publisher.Provide(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreOK == 0 || res.StoreAttempts == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.WalkDuration <= 0 || res.TotalDuration < res.WalkDuration {
		t.Errorf("durations: walk=%v total=%v", res.WalkDuration, res.TotalDuration)
	}

	// The record must land on (most of) the k XOR-closest nodes.
	target := kbucket.KeyForBytes(c.Bytes())
	ids := make([]peer.ID, len(tn.nodes))
	byID := make(map[peer.ID]*DHT)
	for i, d := range tn.nodes {
		ids[i] = d.ident.ID
		byID[d.ident.ID] = d
	}
	kbucket.SortByDistance(ids, target)
	stored := 0
	for _, id := range ids[:20] {
		if byID[id] == publisher {
			continue
		}
		for _, pr := range byID[id].Providers().Get(c) {
			if pr.Provider == publisher.ident.ID {
				stored++
			}
		}
	}
	if stored < 15 {
		t.Errorf("record stored on %d of the 20 closest, want >= 15", stored)
	}
}

func TestFindProvidersAfterProvide(t *testing.T) {
	tn := buildNet(t, 40, nil)
	publisher, requester := tn.nodes[0], tn.nodes[25]
	c := cid.Sum(multicodec.Raw, []byte("retrievable content"))
	if _, err := publisher.Provide(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	provs, info, err := requester.FindProviders(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range provs {
		if p.ID == publisher.ident.ID {
			found = true
		}
	}
	if !found {
		t.Error("publisher not among providers")
	}
	if info.Duration <= 0 {
		t.Error("walk duration not recorded")
	}
}

func TestFindProvidersUnknownCid(t *testing.T) {
	tn := buildNet(t, 20, nil)
	c := cid.Sum(multicodec.Raw, []byte("never published"))
	_, _, err := tn.nodes[3].FindProviders(context.Background(), c)
	if err != ErrNoProviders {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}

func TestPublishAndFindPeerRecord(t *testing.T) {
	tn := buildNet(t, 40, nil)
	publisher, requester := tn.nodes[2], tn.nodes[30]
	if _, err := publisher.PublishPeerRecord(context.Background()); err != nil {
		t.Fatal(err)
	}
	info, walk, err := requester.FindPeer(context.Background(), publisher.ident.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != publisher.ident.ID || len(info.Addrs) == 0 {
		t.Errorf("FindPeer = %+v", info)
	}
	if walk.Queried == 0 {
		t.Error("walk statistics missing")
	}
	// The requester's address book should now know the publisher (§3.2).
	if _, ok := requester.Swarm().Book().Get(publisher.ident.ID); !ok {
		t.Error("address book not updated after FindPeer")
	}
}

func TestFindPeerUnknown(t *testing.T) {
	tn := buildNet(t, 15, nil)
	ghost := peer.MustNewIdentity(rand.New(rand.NewSource(12345)))
	if _, _, err := tn.nodes[0].FindPeer(context.Background(), ghost.ID); err != ErrNoPeerRec {
		t.Errorf("err = %v, want ErrNoPeerRec", err)
	}
}

func TestWalkToleratesDeadPeers(t *testing.T) {
	// A quarter of the network is dead: walks must still converge and
	// report failures.
	tn := buildNet(t, 40, func(i int) simnet.Class {
		if i%4 == 3 {
			return simnet.DeadDial
		}
		return simnet.Normal
	})
	c := cid.Sum(multicodec.Raw, []byte("content in a flaky network"))
	publisher := tn.nodes[0]
	res, err := publisher.Provide(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walk.Failed == 0 {
		t.Error("expected some failed queries with 25% dead peers")
	}
	// Retrieval still works from another live node.
	provs, _, err := tn.nodes[1].FindProviders(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) == 0 {
		t.Error("no providers found")
	}
}

func TestDeadPeersLengthenPublication(t *testing.T) {
	clean := buildNet(t, 30, nil)
	dirty := buildNet(t, 30, func(i int) simnet.Class {
		if i%3 == 2 {
			return simnet.DeadDial
		}
		return simnet.Normal
	})
	c := cid.Sum(multicodec.Raw, []byte("timing probe"))
	resClean, err := clean.nodes[0].Provide(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	resDirty, err := dirty.nodes[0].Provide(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if resDirty.TotalDuration <= resClean.TotalDuration {
		t.Errorf("dead peers should slow publication: clean=%v dirty=%v",
			resClean.TotalDuration, resDirty.TotalDuration)
	}
}

func TestIPNSPutGet(t *testing.T) {
	tn := buildNet(t, 30, nil)
	key := []byte("ipns-key-1")
	payload := []byte("signed-ipns-record")
	for _, d := range tn.nodes {
		d.SetIPNSValidator(func(k, data []byte) error { return nil })
	}
	n, err := tn.nodes[0].PutIPNS(context.Background(), key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("stored on zero peers")
	}
	got, err := tn.nodes[17].GetIPNS(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("GetIPNS = %q", got)
	}
}

func TestIPNSValidatorRejects(t *testing.T) {
	tn := buildNet(t, 10, nil)
	reject := func(k, data []byte) error { return context.DeadlineExceeded }
	d := tn.nodes[0]
	d.SetIPNSValidator(reject)
	resp := d.HandleMessage(context.Background(), tn.nodes[1].ident.ID, wire.Message{
		Type: wire.TPutIPNS, Key: []byte("k"), IPNSData: []byte("bad"),
	})
	if resp.Type != wire.TError {
		t.Errorf("invalid record accepted: %+v", resp)
	}
}

func TestGetIPNSMissing(t *testing.T) {
	tn := buildNet(t, 10, nil)
	if _, err := tn.nodes[0].GetIPNS(context.Background(), []byte("nope")); err != ErrNoIPNSRec {
		t.Errorf("err = %v, want ErrNoIPNSRec", err)
	}
}

func TestBootstrapPopulatesTable(t *testing.T) {
	tn := buildNet(t, 25, nil)
	base := tn.net.Base()
	ident := peer.MustNewIdentity(rand.New(rand.NewSource(4242)))
	ep := tn.net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
	sw := swarm.New(ident, ep, simtime.NewBaseSource(base, nil))
	d := New(ident, sw, ModeServer, Config{Base: base})
	ep.SetHandler(d.HandleMessage)

	boot := []wire.PeerInfo{
		{ID: tn.nodes[0].ident.ID, Addrs: tn.nodes[0].Swarm().Addrs()},
		{ID: tn.nodes[1].ident.ID, Addrs: tn.nodes[1].Swarm().Addrs()},
	}
	if err := d.Bootstrap(context.Background(), boot); err != nil {
		t.Fatal(err)
	}
	if d.Table().Len() < 10 {
		t.Errorf("table has %d peers after bootstrap, want >= 10", d.Table().Len())
	}
}

func TestCrawlRPC(t *testing.T) {
	tn := buildNet(t, 20, nil)
	d := tn.nodes[0]
	resp := d.HandleMessage(context.Background(), tn.nodes[1].ident.ID, wire.Message{Type: wire.TCrawl})
	if resp.Type != wire.TNodes {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Peers) != d.Table().Len() {
		t.Errorf("crawl returned %d peers, table has %d", len(resp.Peers), d.Table().Len())
	}
}

func TestHandleMessageErrors(t *testing.T) {
	tn := buildNet(t, 5, nil)
	d := tn.nodes[0]
	from := tn.nodes[1].ident.ID
	ctx := context.Background()
	for _, req := range []wire.Message{
		{Type: wire.TAddProvider, Key: []byte("bad-cid")},
		{Type: wire.TAddProvider, Key: cid.Sum(multicodec.Raw, []byte("x")).Bytes()}, // no provider
		{Type: wire.TGetProviders, Key: []byte("bad-cid")},
		{Type: wire.TPutPeerRecord},
		{Type: wire.Type(200)},
	} {
		if resp := d.HandleMessage(ctx, from, req); resp.Type != wire.TError {
			t.Errorf("req %s should error, got %+v", req.Type, resp)
		}
	}
}

func TestRequesterLearnedByResponder(t *testing.T) {
	tn := buildNet(t, 10, nil)
	newcomer := peer.MustNewIdentity(rand.New(rand.NewSource(777)))
	ep := tn.net.AddNode(newcomer.ID, simnet.NodeOpts{Region: "US", Dialable: true})
	sw := swarm.New(newcomer, ep, simtime.NewBaseSource(tn.net.Base(), nil))
	d := New(newcomer, sw, ModeServer, Config{Base: tn.net.Base()})
	ep.SetHandler(d.HandleMessage)

	responder := tn.nodes[0]
	resp := responder.HandleMessage(context.Background(), newcomer.ID, wire.Message{
		Type:  wire.TFindNode,
		Key:   []byte("k"),
		Peers: []wire.PeerInfo{{ID: newcomer.ID, Addrs: ep.Addrs()}},
	})
	if resp.Type != wire.TNodes {
		t.Fatal(resp.ErrMsg)
	}
	if !responder.Table().Contains(newcomer.ID) {
		t.Error("responder should learn server requesters (§2.3)")
	}
}
