package dht

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

func TestRefreshPopulatesSparseTable(t *testing.T) {
	tn := buildNet(t, 40, nil)
	// A newcomer knowing only two bootstrap peers.
	ident := peer.MustNewIdentity(rand.New(rand.NewSource(31337)))
	ep := tn.net.AddNode(ident.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: true})
	sw := swarm.New(ident, ep, simtime.NewBaseSource(tn.net.Base(), nil))
	d := New(ident, sw, ModeServer, Config{Base: tn.net.Base()})
	ep.SetHandler(d.HandleMessage)
	for _, b := range tn.nodes[:2] {
		d.Seed(wire.PeerInfo{ID: b.ident.ID, Addrs: b.Swarm().Addrs()})
	}
	before := d.Table().Len()
	after := d.Refresh(context.Background(), 4, 1)
	if after <= before {
		t.Errorf("Refresh did not grow the table: %d -> %d", before, after)
	}
	if after < 20 {
		t.Errorf("table after refresh = %d, want a healthy fraction of the 40-peer network", after)
	}
}

func TestRefreshEvictsDeadEntries(t *testing.T) {
	tn := buildNet(t, 30, func(i int) simnet.Class {
		if i >= 20 {
			return simnet.DeadDial
		}
		return simnet.Normal
	})
	d := tn.nodes[0]
	if !d.Table().Contains(tn.nodes[25].ident.ID) {
		t.Skip("dead peer not in table for this seed")
	}
	d.Refresh(context.Background(), 6, 2)
	// Dead peers the walks touched must be gone.
	removed := 0
	for i := 20; i < 30; i++ {
		if !d.Table().Contains(tn.nodes[i].ident.ID) {
			removed++
		}
	}
	if removed == 0 {
		t.Error("Refresh evicted no dead entries")
	}
}

func TestStartMaintenanceLoopRuns(t *testing.T) {
	tn := buildNet(t, 20, nil)
	d := tn.nodes[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 10 simulated seconds at scale 0.0005 = 5ms real per tick.
	d.StartMaintenance(ctx, 10*time.Second, 7)
	time.Sleep(60 * time.Millisecond)
	cancel()
	if d.Table().Len() == 0 {
		t.Error("maintenance emptied the table")
	}
}
