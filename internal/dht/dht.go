// Package dht implements the Kademlia-based distributed hash table of
// §2.3 and its publication/retrieval walks (§3.1–3.2): 256-bit SHA256
// keys, k = 20 replication, α = 3 iterative parallel lookups, provider
// and peer records with 12 h republish / 24 h expiry, the DHT
// client/server distinction, and the measurement hooks the evaluation
// uses (per-phase durations, crawl RPC).
package dht

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cid"
	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/record"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// Mode distinguishes DHT servers (publicly reachable, store and serve
// records) from DHT clients (request-only, never in routing tables).
type Mode int

// Participation modes (§2.3).
const (
	ModeServer Mode = iota
	ModeClient
)

// Config tunes protocol parameters; zero values select the paper's
// defaults.
type Config struct {
	K            int           // replication factor / bucket size (20)
	Alpha        int           // lookup concurrency (3)
	QueryTimeout time.Duration // per-RPC budget during walks (10 s)
	RecordTTL    time.Duration // provider/peer record expiry (24 h)
	Base         simtime.Base  // time compression (legacy; folded into Time)
	Now          func() time.Time
	// Time is the unified time surface: walks sleep, time out and
	// measure through it. When nil it is derived from Base/Now, so
	// legacy callers keep their real-scaled behaviour; scenario runs
	// pass the event scheduler and the whole DHT becomes event-driven.
	Time simtime.Source
	// OmitProviderAddrs publishes provider records without our
	// multiaddresses, forcing requestors through the second (peer
	// discovery) walk. The §4.3 experiments enable it to model the
	// address-book eviction a 20k-peer network causes, so Figure 9e's
	// two-walk structure is exercised.
	OmitProviderAddrs bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = kbucket.DefaultK
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.RecordTTL <= 0 {
		c.RecordTTL = record.DefaultExpireInterval
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, c.Now)
	}
	return c
}

// IPNSValidator validates an opaque IPNS record payload for a key; the
// ipns package supplies the implementation.
type IPNSValidator func(key []byte, data []byte) error

// DHT is one peer's view of the distributed hash table.
type DHT struct {
	cfg   Config
	ident peer.Identity
	sw    *swarm.Swarm
	table *kbucket.Table
	mode  atomic.Int32 // holds a Mode; AutoNAT flips it while RPCs are in flight

	providers *record.ProviderStore
	peerRecs  *record.PeerStore

	ipnsMu    sync.RWMutex
	ipns      map[string][]byte
	validator IPNSValidator

	seqMu sync.Mutex
	seq   uint64
}

// New creates a DHT participant in the given mode.
func New(ident peer.Identity, sw *swarm.Swarm, mode Mode, cfg Config) *DHT {
	cfg = cfg.withDefaults()
	d := &DHT{
		cfg:       cfg,
		ident:     ident,
		sw:        sw,
		table:     kbucket.NewTable(ident.ID, cfg.K),
		providers: record.NewProviderStore(cfg.RecordTTL, cfg.Now),
		peerRecs:  record.NewPeerStore(cfg.RecordTTL, cfg.Now),
		ipns:      make(map[string][]byte),
	}
	d.mode.Store(int32(mode))
	return d
}

// Mode returns the participation mode.
func (d *DHT) Mode() Mode { return Mode(d.mode.Load()) }

// SetMode changes the participation mode (after an AutoNAT check).
func (d *DHT) SetMode(m Mode) { d.mode.Store(int32(m)) }

// Table exposes the routing table (the crawler and testnet builder use
// it).
func (d *DHT) Table() *kbucket.Table { return d.table }

// Swarm returns the underlying swarm.
func (d *DHT) Swarm() *swarm.Swarm { return d.sw }

// Base returns the DHT's simulated-time base.
func (d *DHT) Base() simtime.Base { return d.cfg.Base }

// Time returns the DHT's unified time source.
func (d *DHT) Time() simtime.Source { return d.cfg.Time }

// Clock returns the DHT's wall clock (the movable simulated clock in
// scenario runs).
func (d *DHT) Clock() func() time.Time { return d.cfg.Now }

// SetIPNSValidator installs the validator for PUT_IPNS payloads.
func (d *DHT) SetIPNSValidator(v IPNSValidator) { d.validator = v }

// Providers exposes the local provider-record store.
func (d *DHT) Providers() *record.ProviderStore { return d.providers }

// Seed inserts a peer into the routing table and address book without
// dialing; the testnet builder uses it to model a long-running network.
func (d *DHT) Seed(info wire.PeerInfo) {
	d.table.Add(info.ID)
	d.sw.Book().Add(info.ID, info.Addrs)
}

// selfInfo is attached to outbound requests when we are a server so
// responders can learn about us.
func (d *DHT) selfInfo() []wire.PeerInfo {
	if d.Mode() != ModeServer {
		return nil
	}
	return []wire.PeerInfo{{ID: d.ident.ID, Addrs: d.sw.Addrs()}}
}

// nextSeq increments the local peer-record sequence number.
func (d *DHT) nextSeq() uint64 {
	d.seqMu.Lock()
	defer d.seqMu.Unlock()
	d.seq++
	return d.seq
}

// HandleMessage serves one inbound DHT RPC. The node's dispatcher calls
// it for DHT message types. Clients refuse to serve (§2.3: "DHT clients
// only request records or content but do not store or provide any").
func (d *DHT) HandleMessage(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
	if d.Mode() != ModeServer {
		return wire.ErrorMessage("peer is a DHT client")
	}
	// Learn about the requester if it identified itself as a server.
	if len(req.Peers) > 0 && req.Peers[0].ID == from {
		d.table.Add(from)
		d.sw.Book().Add(from, req.Peers[0].Addrs)
	}

	switch req.Type {
	case wire.TPing:
		return wire.Message{Type: wire.TAck}

	case wire.TFindNode:
		return wire.Message{Type: wire.TNodes, Peers: d.closestInfos(req.Key)}

	case wire.TAddProvider:
		// One RPC may carry a whole record batch (Key plus Keys) — the
		// multi-record shape batched republish groups per target peer.
		if len(req.Providers) == 0 {
			return wire.ErrorMessage("no provider supplied")
		}
		prov := req.Providers[0]
		stored := 0
		for _, key := range req.AllKeys() {
			c, err := cid.FromBytes(key)
			if err != nil {
				return wire.ErrorMessage("bad cid: %v", err)
			}
			d.providers.Add(record.ProviderRecord{Cid: c, Provider: prov.ID, Published: d.cfg.Now()})
			stored++
		}
		if stored == 0 {
			return wire.ErrorMessage("no record keys supplied")
		}
		if len(prov.Addrs) > 0 {
			d.sw.Book().Add(prov.ID, prov.Addrs)
		}
		return wire.Message{Type: wire.TAck}

	case wire.TGetProviders:
		c, err := cid.FromBytes(req.Key)
		if err != nil {
			return wire.ErrorMessage("bad cid: %v", err)
		}
		resp := wire.Message{Type: wire.TProviders, Peers: d.closestInfos(req.Key)}
		for _, pr := range d.providers.Get(c) {
			// "together with the peer's Multiaddress (if they have
			// it)" — §3.2.
			info := wire.PeerInfo{ID: pr.Provider}
			if addrs, ok := d.sw.Book().Get(pr.Provider); ok {
				info.Addrs = addrs
			}
			resp.Providers = append(resp.Providers, info)
		}
		return resp

	case wire.TPutPeerRecord:
		if req.PeerRec == nil {
			return wire.ErrorMessage("no record supplied")
		}
		if err := d.peerRecs.Put(*req.PeerRec); err != nil {
			return wire.ErrorMessage("rejected: %v", err)
		}
		return wire.Message{Type: wire.TAck}

	case wire.TGetPeerRecord:
		rec, err := d.peerRecs.Get(peer.ID(req.Key))
		resp := wire.Message{Type: wire.TPeerRecordResp, Peers: d.closestInfos(req.Key)}
		if err == nil {
			resp.PeerRec = &rec
		}
		return resp

	case wire.TPutIPNS:
		if d.validator != nil {
			if err := d.validator(req.Key, req.IPNSData); err != nil {
				return wire.ErrorMessage("invalid ipns record: %v", err)
			}
		}
		d.ipnsMu.Lock()
		d.ipns[string(req.Key)] = append([]byte(nil), req.IPNSData...)
		d.ipnsMu.Unlock()
		return wire.Message{Type: wire.TAck}

	case wire.TGetIPNS:
		d.ipnsMu.RLock()
		data := d.ipns[string(req.Key)]
		d.ipnsMu.RUnlock()
		resp := wire.Message{Type: wire.TIPNSResp, Peers: d.closestInfos(req.Key)}
		if len(data) > 0 {
			resp.IPNSData = data
		}
		return resp

	case wire.TCrawl:
		// Measurement RPC: enumerate our k-buckets (§4.1).
		var infos []wire.PeerInfo
		for _, id := range d.table.AllPeers() {
			info := wire.PeerInfo{ID: id}
			if addrs, ok := d.sw.Book().Get(id); ok {
				info.Addrs = addrs
			}
			infos = append(infos, info)
		}
		return wire.Message{Type: wire.TNodes, Peers: infos}
	}
	return wire.ErrorMessage("unhandled dht message %s", req.Type)
}

// closestInfos returns the k closest known peers to key, with
// addresses when the address book has them.
func (d *DHT) closestInfos(key []byte) []wire.PeerInfo {
	ids := d.table.NearestPeers(kbucket.KeyForBytes(key), d.cfg.K)
	infos := make([]wire.PeerInfo, 0, len(ids))
	for _, id := range ids {
		info := wire.PeerInfo{ID: id}
		if addrs, ok := d.sw.Book().Get(id); ok {
			info.Addrs = addrs
		}
		infos = append(infos, info)
	}
	return infos
}

// Bootstrap connects to the given peers and performs a self-lookup to
// populate the routing table, the join procedure of §2.2.
func (d *DHT) Bootstrap(ctx context.Context, bootstrap []wire.PeerInfo) error {
	for _, info := range bootstrap {
		if _, _, err := d.sw.Connect(ctx, info.ID, info.Addrs); err != nil {
			continue
		}
		d.table.Add(info.ID)
		d.sw.Book().Add(info.ID, info.Addrs)
	}
	_, _, err := d.WalkClosest(ctx, kbucket.KeyForPeer(d.ident.ID), []byte(d.ident.ID))
	return err
}
