// Package wire defines the request/response messages exchanged between
// peers — the DHT RPCs of §3.1–3.2 and the Bitswap messages
// (WANT-HAVE / HAVE / WANT-BLOCK / BLOCK) — together with a compact
// varint-framed binary codec used by the TCP transport.
package wire

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/record"
	"repro/internal/varint"
)

// Type enumerates message kinds.
type Type uint8

// Requests.
const (
	TPing          Type = iota + 1
	TFindNode           // DHT: return k closest peers to Key
	TAddProvider        // DHT: store a provider record for Key (CID bytes)
	TGetProviders       // DHT: return providers of Key plus closer peers
	TPutPeerRecord      // DHT: store a signed peer record
	TGetPeerRecord      // DHT: fetch the peer record for Key (PeerID bytes)
	TPutIPNS            // DHT: store an IPNS record under Key
	TGetIPNS            // DHT: fetch the IPNS record under Key
	TWantHave           // Bitswap: does the peer have block Key?
	TWantBlock          // Bitswap: send block Key
	TIdentify           // exchange listen addresses after connecting
	TCrawl              // measurement: dump the peer's k-bucket contents (§4.1)
	TDialBack           // AutoNAT: ask the peer to dial us back (§2.3)
	TRelayReserve       // circuit relay: reserve a forwarding slot at the relay
	TRelay              // circuit relay: forward the inner message (BlockData) to Key's peer
	TGossip             // indexer: anti-entropy push of provider records inside a replica group
)

// Responses.
const (
	TAck Type = iota + 64
	TNodes
	TProviders
	TPeerRecordResp
	TIPNSResp
	THave
	TDontHave
	TBlock
	TError
)

// PeerInfo couples a PeerID with known multiaddresses, the unit the
// DHT returns from lookups.
type PeerInfo struct {
	ID    peer.ID
	Addrs []multiaddr.Multiaddr
}

// Message is the single wire message type; unused fields stay zero.
type Message struct {
	Type      Type
	Key       []byte             // DHT key / binary CID / PeerID
	Keys      [][]byte           // additional record keys of a batched ADD_PROVIDER
	Peers     []PeerInfo         // closer peers (TNodes) or identify addresses
	Providers []PeerInfo         // provider peers (TProviders)
	PeerRec   *record.PeerRecord // signed peer record payload
	IPNSData  []byte             // opaque serialized IPNS record
	BlockData []byte             // block payload (TBlock)
	ErrMsg    string             // error detail (TError)
	Records   []ProviderEntry    // replicated provider records (TGossip)
}

// ProviderEntry is one replicated provider record inside a TGossip
// push: the binary CID, the provider, and the record's original publish
// instant — carried so a replicated copy expires exactly when the
// original does instead of restarting its TTL at the receiving replica.
type ProviderEntry struct {
	Key       []byte // binary CID
	Provider  PeerInfo
	Published time.Time
}

// AllKeys returns the primary key plus the batch tail, skipping empty
// entries — the full record-key list of a (possibly batched)
// ADD_PROVIDER.
func (m Message) AllKeys() [][]byte {
	if len(m.Keys) == 0 {
		if len(m.Key) == 0 {
			return nil
		}
		return [][]byte{m.Key}
	}
	out := make([][]byte, 0, 1+len(m.Keys))
	if len(m.Key) > 0 {
		out = append(out, m.Key)
	}
	return append(out, m.Keys...)
}

// Errors returned by the codec.
var (
	ErrTooLarge  = errors.New("wire: message exceeds size limit")
	ErrMalformed = errors.New("wire: malformed message")
)

// MaxMessageSize bounds a single message (a block of 256 KiB plus
// generous framing headroom).
const MaxMessageSize = 1 << 20

// String names the message type for logs.
func (t Type) String() string {
	switch t {
	case TPing:
		return "PING"
	case TFindNode:
		return "FIND_NODE"
	case TAddProvider:
		return "ADD_PROVIDER"
	case TGetProviders:
		return "GET_PROVIDERS"
	case TPutPeerRecord:
		return "PUT_PEER_RECORD"
	case TGetPeerRecord:
		return "GET_PEER_RECORD"
	case TPutIPNS:
		return "PUT_IPNS"
	case TGetIPNS:
		return "GET_IPNS"
	case TWantHave:
		return "WANT_HAVE"
	case TWantBlock:
		return "WANT_BLOCK"
	case TIdentify:
		return "IDENTIFY"
	case TCrawl:
		return "CRAWL"
	case TDialBack:
		return "DIAL_BACK"
	case TRelayReserve:
		return "RELAY_RESERVE"
	case TRelay:
		return "RELAY"
	case TGossip:
		return "GOSSIP"
	case TAck:
		return "ACK"
	case TNodes:
		return "NODES"
	case TProviders:
		return "PROVIDERS"
	case TPeerRecordResp:
		return "PEER_RECORD"
	case TIPNSResp:
		return "IPNS"
	case THave:
		return "HAVE"
	case TDontHave:
		return "DONT_HAVE"
	case TBlock:
		return "BLOCK"
	case TError:
		return "ERROR"
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// ErrorMessage builds a TError response.
func ErrorMessage(format string, args ...interface{}) Message {
	return Message{Type: TError, ErrMsg: fmt.Sprintf(format, args...)}
}

// appendBytes writes a varint length followed by the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = varint.Append(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendPeerInfos(dst []byte, infos []PeerInfo) []byte {
	dst = varint.Append(dst, uint64(len(infos)))
	for _, pi := range infos {
		dst = appendBytes(dst, []byte(pi.ID))
		dst = varint.Append(dst, uint64(len(pi.Addrs)))
		for _, a := range pi.Addrs {
			dst = appendBytes(dst, a.Bytes())
		}
	}
	return dst
}

// Marshal encodes the message body (without outer framing).
func (m Message) Marshal() []byte {
	out := []byte{byte(m.Type)}
	out = appendBytes(out, m.Key)
	out = appendPeerInfos(out, m.Peers)
	out = appendPeerInfos(out, m.Providers)
	if m.PeerRec != nil {
		out = append(out, 1)
		out = appendBytes(out, []byte(m.PeerRec.ID))
		out = varint.Append(out, m.PeerRec.Seq)
		out = appendBytes(out, m.PeerRec.PublicKey)
		out = appendBytes(out, m.PeerRec.Signature)
		out = varint.Append(out, uint64(len(m.PeerRec.Addrs)))
		for _, a := range m.PeerRec.Addrs {
			out = appendBytes(out, a.Bytes())
		}
		out = varint.Append(out, uint64(m.PeerRec.Published.UnixNano()))
	} else {
		out = append(out, 0)
	}
	out = appendBytes(out, m.IPNSData)
	out = appendBytes(out, m.BlockData)
	out = appendBytes(out, []byte(m.ErrMsg))
	out = varint.Append(out, uint64(len(m.Keys)))
	for _, k := range m.Keys {
		out = appendBytes(out, k)
	}
	out = varint.Append(out, uint64(len(m.Records)))
	for _, r := range m.Records {
		out = appendBytes(out, r.Key)
		out = appendPeerInfos(out, []PeerInfo{r.Provider})
		out = varint.Append(out, uint64(r.Published.UnixNano()))
	}
	return out
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) bytes() ([]byte, error) {
	n, used, err := varint.Decode(r.buf[r.pos:])
	if err != nil {
		return nil, err
	}
	r.pos += used
	if uint64(len(r.buf)-r.pos) < n {
		return nil, ErrMalformed
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *reader) uvarint() (uint64, error) {
	n, used, err := varint.Decode(r.buf[r.pos:])
	if err != nil {
		return 0, err
	}
	r.pos += used
	return n, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrMalformed
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) peerInfos() ([]PeerInfo, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, ErrMalformed
	}
	out := make([]PeerInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		idb, err := r.bytes()
		if err != nil {
			return nil, err
		}
		na, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if na > 1024 {
			return nil, ErrMalformed
		}
		pi := PeerInfo{ID: peer.ID(idb)}
		for j := uint64(0); j < na; j++ {
			ab, err := r.bytes()
			if err != nil {
				return nil, err
			}
			a, err := multiaddr.FromBytes(ab)
			if err != nil {
				return nil, err
			}
			pi.Addrs = append(pi.Addrs, a)
		}
		out = append(out, pi)
	}
	return out, nil
}

// Unmarshal decodes a message body.
func Unmarshal(buf []byte) (Message, error) {
	if len(buf) == 0 {
		return Message{}, ErrMalformed
	}
	r := &reader{buf: buf}
	tb, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	m := Message{Type: Type(tb)}
	if m.Key, err = r.bytes(); err != nil {
		return Message{}, fmt.Errorf("%w: key: %v", ErrMalformed, err)
	}
	if len(m.Key) == 0 {
		m.Key = nil
	}
	if m.Peers, err = r.peerInfos(); err != nil {
		return Message{}, fmt.Errorf("%w: peers: %v", ErrMalformed, err)
	}
	if m.Providers, err = r.peerInfos(); err != nil {
		return Message{}, fmt.Errorf("%w: providers: %v", ErrMalformed, err)
	}
	flag, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	if flag == 1 {
		var rec record.PeerRecord
		idb, err := r.bytes()
		if err != nil {
			return Message{}, fmt.Errorf("%w: rec id: %v", ErrMalformed, err)
		}
		rec.ID = peer.ID(idb)
		if rec.Seq, err = r.uvarint(); err != nil {
			return Message{}, fmt.Errorf("%w: rec seq: %v", ErrMalformed, err)
		}
		pk, err := r.bytes()
		if err != nil {
			return Message{}, fmt.Errorf("%w: rec key: %v", ErrMalformed, err)
		}
		rec.PublicKey = ed25519.PublicKey(append([]byte(nil), pk...))
		sig, err := r.bytes()
		if err != nil {
			return Message{}, fmt.Errorf("%w: rec sig: %v", ErrMalformed, err)
		}
		rec.Signature = append([]byte(nil), sig...)
		na, err := r.uvarint()
		if err != nil {
			return Message{}, err
		}
		if na > 1024 {
			return Message{}, ErrMalformed
		}
		for j := uint64(0); j < na; j++ {
			ab, err := r.bytes()
			if err != nil {
				return Message{}, err
			}
			a, err := multiaddr.FromBytes(ab)
			if err != nil {
				return Message{}, err
			}
			rec.Addrs = append(rec.Addrs, a)
		}
		ns, err := r.uvarint()
		if err != nil {
			return Message{}, err
		}
		rec.Published = time.Unix(0, int64(ns))
		m.PeerRec = &rec
	}
	if m.IPNSData, err = r.bytes(); err != nil {
		return Message{}, fmt.Errorf("%w: ipns: %v", ErrMalformed, err)
	}
	if len(m.IPNSData) == 0 {
		m.IPNSData = nil
	}
	if m.BlockData, err = r.bytes(); err != nil {
		return Message{}, fmt.Errorf("%w: block: %v", ErrMalformed, err)
	}
	if len(m.BlockData) == 0 {
		m.BlockData = nil
	}
	eb, err := r.bytes()
	if err != nil {
		return Message{}, fmt.Errorf("%w: err: %v", ErrMalformed, err)
	}
	m.ErrMsg = string(eb)
	nk, err := r.uvarint()
	if err != nil {
		return Message{}, fmt.Errorf("%w: keys: %v", ErrMalformed, err)
	}
	if nk > 4096 {
		return Message{}, ErrMalformed
	}
	for i := uint64(0); i < nk; i++ {
		kb, err := r.bytes()
		if err != nil {
			return Message{}, fmt.Errorf("%w: keys: %v", ErrMalformed, err)
		}
		m.Keys = append(m.Keys, kb)
	}
	nr, err := r.uvarint()
	if err != nil {
		return Message{}, fmt.Errorf("%w: records: %v", ErrMalformed, err)
	}
	if nr > 4096 {
		return Message{}, ErrMalformed
	}
	for i := uint64(0); i < nr; i++ {
		var e ProviderEntry
		if e.Key, err = r.bytes(); err != nil {
			return Message{}, fmt.Errorf("%w: record key: %v", ErrMalformed, err)
		}
		infos, err := r.peerInfos()
		if err != nil || len(infos) != 1 {
			return Message{}, fmt.Errorf("%w: record provider: %v", ErrMalformed, err)
		}
		e.Provider = infos[0]
		ns, err := r.uvarint()
		if err != nil {
			return Message{}, fmt.Errorf("%w: record published: %v", ErrMalformed, err)
		}
		e.Published = time.Unix(0, int64(ns))
		m.Records = append(m.Records, e)
	}
	return m, nil
}

// WriteFrame writes a length-prefixed message to w.
func WriteFrame(w io.Writer, m Message) error {
	body := m.Marshal()
	if len(body) > MaxMessageSize {
		return ErrTooLarge
	}
	frame := varint.Append(make([]byte, 0, len(body)+5), uint64(len(body)))
	frame = append(frame, body...)
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.ByteReader) (Message, error) {
	n, err := varint.ReadUvarint(r)
	if err != nil {
		return Message{}, err
	}
	if n > MaxMessageSize {
		return Message{}, ErrTooLarge
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Message{}, err
		}
		buf[i] = b
	}
	return Unmarshal(buf)
}
