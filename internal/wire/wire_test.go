package wire

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/record"
)

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func sampleMessage() Message {
	p1 := testIdentity(1)
	p2 := testIdentity(2)
	rec := record.NewPeerRecord(p1,
		[]multiaddr.Multiaddr{multiaddr.MustParse("/ip4/1.2.3.4/tcp/4001")},
		7, time.Unix(0, 1_600_000_000_000_000_000))
	return Message{
		Type: TProviders,
		Key:  []byte{0x01, 0x55, 0x12, 0x02, 0xaa, 0xbb},
		Keys: [][]byte{{0x01, 0x55, 0x12, 0x02, 0xcc}, {0x01, 0x55, 0x12, 0x02, 0xdd}},
		Peers: []PeerInfo{
			{ID: p1.ID, Addrs: []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/1.2.3.4/tcp/4001")}},
			{ID: p2.ID},
		},
		Providers: []PeerInfo{{ID: p2.ID, Addrs: []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/5.6.7.8/tcp/4002/p2p/" + p2.ID.String())}}},
		PeerRec:   &rec,
		IPNSData:  []byte("ipns-bytes"),
		BlockData: []byte("block-bytes"),
		ErrMsg:    "",
		Records: []ProviderEntry{
			{Key: []byte{0x01, 0x55, 0x12, 0x02, 0xee}, Provider: PeerInfo{ID: p1.ID},
				Published: time.Unix(0, 1_600_000_100_000_000_000)},
		},
	}
}

func messagesEqual(a, b Message) bool {
	if a.Type != b.Type || !bytes.Equal(a.Key, b.Key) || a.ErrMsg != b.ErrMsg {
		return false
	}
	if !bytes.Equal(a.IPNSData, b.IPNSData) || !bytes.Equal(a.BlockData, b.BlockData) {
		return false
	}
	if len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if !bytes.Equal(a.Keys[i], b.Keys[i]) {
			return false
		}
	}
	if len(a.Peers) != len(b.Peers) || len(a.Providers) != len(b.Providers) {
		return false
	}
	eqInfos := func(x, y []PeerInfo) bool {
		for i := range x {
			if x[i].ID != y[i].ID || len(x[i].Addrs) != len(y[i].Addrs) {
				return false
			}
			for j := range x[i].Addrs {
				if !x[i].Addrs[j].Equal(y[i].Addrs[j]) {
					return false
				}
			}
		}
		return true
	}
	if !eqInfos(a.Peers, b.Peers) || !eqInfos(a.Providers, b.Providers) {
		return false
	}
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if !bytes.Equal(ra.Key, rb.Key) || !ra.Published.Equal(rb.Published) {
			return false
		}
		if !eqInfos([]PeerInfo{ra.Provider}, []PeerInfo{rb.Provider}) {
			return false
		}
	}
	if (a.PeerRec == nil) != (b.PeerRec == nil) {
		return false
	}
	if a.PeerRec != nil {
		ra, rb := a.PeerRec, b.PeerRec
		if ra.ID != rb.ID || ra.Seq != rb.Seq || !ra.Published.Equal(rb.Published) {
			return false
		}
		if !reflect.DeepEqual([]byte(ra.PublicKey), []byte(rb.PublicKey)) || !bytes.Equal(ra.Signature, rb.Signature) {
			return false
		}
	}
	return true
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := sampleMessage()
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, back) {
		t.Errorf("round trip mismatch:\n  in:  %+v\n  out: %+v", m, back)
	}
	// The embedded signed record must still verify after the trip.
	if err := back.PeerRec.Verify(); err != nil {
		t.Errorf("peer record signature broken by codec: %v", err)
	}
}

func TestMinimalMessage(t *testing.T) {
	m := Message{Type: TPing}
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TPing || back.Key != nil || back.PeerRec != nil || len(back.Peers) != 0 {
		t.Errorf("minimal round trip = %+v", back)
	}
}

func TestErrorMessage(t *testing.T) {
	m := ErrorMessage("no record for %s", "abc")
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TError || back.ErrMsg != "no record for abc" {
		t.Errorf("error round trip = %+v", back)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	m := sampleMessage().Marshal()
	for _, cut := range []int{1, 3, len(m) / 2, len(m) - 1} {
		if _, err := Unmarshal(m[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{sampleMessage(), {Type: TPing}, ErrorMessage("x")}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := Message{Type: TBlock, BlockData: make([]byte, MaxMessageSize+1)}
	if err := WriteFrame(&bytes.Buffer{}, big); err != ErrTooLarge {
		t.Errorf("oversized write: %v, want ErrTooLarge", err)
	}
	// A frame header claiming a huge size must be rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadFrame(bufio.NewReader(&buf)); err != ErrTooLarge {
		t.Errorf("oversized read: %v, want ErrTooLarge", err)
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []Type{TPing, TFindNode, TAddProvider, TGetProviders, TWantHave, TWantBlock, TBlock, TError, TCrawl, TIdentify} {
		if s := tt.String(); s == "" || s[0] == 'T' && len(s) > 5 && s[:5] == "TYPE(" {
			t.Errorf("missing String for %d: %q", tt, s)
		}
	}
	if Type(250).String() != "TYPE(250)" {
		t.Error("unknown type should fall back")
	}
}

func TestQuickRoundTripKeyAndBlock(t *testing.T) {
	f := func(key, blockData []byte, errMsg string, ty uint8) bool {
		m := Message{Type: Type(ty), Key: key, BlockData: blockData, ErrMsg: errMsg}
		back, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		keyOK := bytes.Equal(back.Key, key) || (len(key) == 0 && back.Key == nil)
		blockOK := bytes.Equal(back.BlockData, blockData) || (len(blockData) == 0 && back.BlockData == nil)
		return keyOK && blockOK && back.ErrMsg == errMsg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBatchedKeysRoundTrip pins the multi-record ADD_PROVIDER shape:
// the Keys batch survives the codec and AllKeys flattens the primary
// key plus the tail.
func TestBatchedKeysRoundTrip(t *testing.T) {
	m := Message{
		Type: TAddProvider,
		Key:  []byte{0x01},
		Keys: [][]byte{{0x02}, {0x03}},
	}
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	all := back.AllKeys()
	if len(all) != 3 || !bytes.Equal(all[0], []byte{0x01}) || !bytes.Equal(all[2], []byte{0x03}) {
		t.Fatalf("AllKeys after round trip = %v", all)
	}
	// Keys without a primary key flatten to the tail alone.
	if got := (Message{Keys: [][]byte{{0x07}}}).AllKeys(); len(got) != 1 || !bytes.Equal(got[0], []byte{0x07}) {
		t.Errorf("tail-only AllKeys = %v", got)
	}
	if (Message{}).AllKeys() != nil {
		t.Error("empty message should have no keys")
	}
}

// TestGossipRecordsRoundTrip pins the anti-entropy push shape: a
// TGossip record batch survives the codec with provider addresses and
// the original publish instants intact (TTL agreement between replicas
// depends on the timestamp riding along).
func TestGossipRecordsRoundTrip(t *testing.T) {
	p := testIdentity(4)
	m := Message{
		Type: TGossip,
		Records: []ProviderEntry{
			{Key: []byte{0x01, 0x55, 0x12, 0x02, 0x01},
				Provider:  PeerInfo{ID: p.ID, Addrs: []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/9.9.9.9/tcp/4001")}},
				Published: time.Unix(0, 1_700_000_000_000_000_000)},
			{Key: []byte{0x01, 0x55, 0x12, 0x02, 0x02},
				Provider:  PeerInfo{ID: p.ID},
				Published: time.Unix(0, 1_700_000_001_000_000_000)},
		},
	}
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, back) {
		t.Errorf("gossip round trip mismatch:\n  in:  %+v\n  out: %+v", m, back)
	}
	if len(back.Records) != 2 || !back.Records[0].Published.Equal(m.Records[0].Published) {
		t.Errorf("record timestamps not preserved: %+v", back.Records)
	}
	if len(back.Records[0].Provider.Addrs) != 1 {
		t.Error("provider addresses dropped by codec")
	}
}
