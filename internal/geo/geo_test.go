package geo

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDistanceProperties(t *testing.T) {
	if d := Distance(EuCentral1, EuCentral1); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if Distance(EuCentral1, UsWest1) != Distance(UsWest1, EuCentral1) {
		t.Error("distance must be symmetric")
	}
	// Frankfurt to N. California is roughly 9000 km.
	d := Distance(EuCentral1, UsWest1)
	if d < 8000 || d > 10000 {
		t.Errorf("Frankfurt-California distance = %.0f km", d)
	}
}

func TestRTTOrdering(t *testing.T) {
	// Frankfurt (eu_central_1) should be much closer to France than to
	// Sydney — this drives the regional latency differences of Table 4.
	near := RTT(EuCentral1, "FR")
	far := RTT(EuCentral1, ApSoutheast2)
	if near >= far {
		t.Errorf("RTT(eu,FR)=%v should be < RTT(eu,sydney)=%v", near, far)
	}
	if base := RTT(EuCentral1, EuCentral1); base <= 0 || base > 20*time.Millisecond {
		t.Errorf("self RTT = %v", base)
	}
}

func TestUnknownRegionFallsBack(t *testing.T) {
	if Known("XX") {
		t.Error("XX should be unknown")
	}
	// Unknown regions fall back to US coordinates rather than panicking.
	if d := Distance("XX", "US"); d != 0 {
		t.Errorf("fallback distance = %v", d)
	}
}

func TestCountrySharesSum(t *testing.T) {
	var sum float64
	for _, s := range CountryShares {
		sum += s.Share
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("country shares sum to %v", sum)
	}
}

func TestSampleCountryDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make(map[Region]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[SampleCountry(rng)]++
	}
	// US should be ~28.5 %, CN ~24.2 % (Fig 5).
	us := float64(counts["US"]) / n
	cn := float64(counts["CN"]) / n
	if math.Abs(us-0.285) > 0.02 {
		t.Errorf("US share = %.3f, want ~0.285", us)
	}
	if math.Abs(cn-0.242) > 0.02 {
		t.Errorf("CN share = %.3f, want ~0.242", cn)
	}
	if us < cn {
		t.Error("US should dominate over CN")
	}
}

func TestASModelConcentration(t *testing.T) {
	m := NewASModel()
	if got := m.TopShare(10); math.Abs(got-0.649) > 0.02 {
		t.Errorf("top-10 AS share = %.3f, want ~0.649 (§5.2)", got)
	}
	top100 := m.TopShare(100)
	if top100 < 0.85 || top100 > 0.95 {
		t.Errorf("top-100 AS share = %.3f, want ~0.906", top100)
	}
	if got := m.TopShare(NumASes); math.Abs(got-1) > 1e-6 {
		t.Errorf("total share = %v", got)
	}
	if len(m.Infos()) != NumASes {
		t.Errorf("AS count = %d, want %d", len(m.Infos()), NumASes)
	}
	// Table 2's #1: CHINANET with 18.9 %.
	if m.Infos()[0].Share != 0.189 || m.Infos()[0].ASN != 4134 {
		t.Errorf("rank-1 AS = %+v", m.Infos()[0])
	}
}

func TestASModelSampleMatchesShares(t *testing.T) {
	m := NewASModel()
	rng := rand.New(rand.NewSource(2))
	counts := make(map[int]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[m.Sample(rng).Rank]++
	}
	if got := float64(counts[1]) / n; math.Abs(got-0.189) > 0.01 {
		t.Errorf("rank-1 sampled share = %.3f, want ~0.189", got)
	}
}

func TestGeneratePopulationMarginals(t *testing.T) {
	pop := GeneratePopulation(DefaultPopulationConfig(20000))
	if len(pop.Peers) != 20000 {
		t.Fatalf("population size = %d", len(pop.Peers))
	}
	// Cloud share should be ~2.3 % (Table 3 headline).
	if cs := pop.CloudShare(); cs > 0.04 || cs < 0.01 {
		t.Errorf("cloud share = %.4f, want ~0.023", cs)
	}
	// Unreachable fraction ~33 %.
	unreachable := 0
	for _, p := range pop.Peers {
		if !p.Dialable {
			unreachable++
		}
	}
	fu := float64(unreachable) / float64(len(pop.Peers))
	if math.Abs(fu-0.331) > 0.03 {
		t.Errorf("unreachable fraction = %.3f, want ~0.331", fu)
	}
	// Reliable fraction ~1.4 %.
	reliable := 0
	for _, p := range pop.Peers {
		if p.Reliable {
			reliable++
		}
	}
	fr := float64(reliable) / float64(len(pop.Peers))
	if fr < 0.005 || fr > 0.03 {
		t.Errorf("reliable fraction = %.4f, want ~0.014", fr)
	}
}

func TestPopulationPeerIDClustering(t *testing.T) {
	pop := GeneratePopulation(DefaultPopulationConfig(20000))
	perIP := pop.PeersPerIP()
	singles, maxPeers := 0, 0
	for _, n := range perIP {
		if n == 1 {
			singles++
		}
		if n > maxPeers {
			maxPeers = n
		}
	}
	frac := float64(singles) / float64(len(perIP))
	// "The majority (92.3 %) of IP addresses host a single PeerID."
	if frac < 0.85 || frac > 0.97 {
		t.Errorf("singleton-IP fraction = %.3f, want ~0.923", frac)
	}
	// And a heavy tail exists (Fig 7c).
	if maxPeers < 20 {
		t.Errorf("max peers per IP = %d, expected a super-host tail", maxPeers)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := GeneratePopulation(DefaultPopulationConfig(500))
	b := GeneratePopulation(DefaultPopulationConfig(500))
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			t.Fatal("population generation must be deterministic for a fixed seed")
		}
	}
}

func TestIPsPerASRank(t *testing.T) {
	pop := GeneratePopulation(DefaultPopulationConfig(10000))
	byRank := pop.IPsPerASRank()
	if len(byRank) == 0 {
		t.Fatal("no AS ranks")
	}
	// Rank 1 should hold more IPs than a mid-tail rank.
	if byRank[1] <= byRank[500] {
		t.Errorf("rank 1 IPs = %d, rank 500 IPs = %d; want concentration", byRank[1], byRank[500])
	}
}

func TestGatewayUserSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make(map[Region]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleGatewayUserCountry(rng)]++
	}
	us := float64(counts["US"]) / n
	if math.Abs(us-0.504) > 0.02 {
		t.Errorf("gateway US share = %.3f, want ~0.504 (Fig 6)", us)
	}
}
