package geo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ASInfo describes one autonomous system of the model.
type ASInfo struct {
	ASN   int
	Rank  int // CAIDA-style rank: 1 = largest
	Name  string
	Share float64 // fraction of all peer IP addresses
}

// Named top ASes from Table 2 with their published IP shares, plus
// modelled shares for ranks 6–10 chosen so the top 10 hold 64.9 % of
// IPs (§5.2).
var topASes = []ASInfo{
	{4134, 1, "CHINANET-BACKBONE, CN", 0.189},
	{4837, 2, "CHINA169-BACKBONE, CN", 0.128},
	{4760, 3, "HKTIMS-AP HKT Limited, HK", 0.096},
	{26599, 4, "TELEFONICA BRASIL S.A, BR", 0.069},
	{3462, 5, "HINET, TW", 0.053},
	{7922, 6, "COMCAST-7922, US", 0.029},
	{3320, 7, "DTAG, DE", 0.025},
	{4766, 8, "KIXS-AS-KR, KR", 0.022},
	{3215, 9, "FT Orange, FR", 0.020},
	{7018, 10, "ATT-INTERNET4, US", 0.018},
}

// NumASes is the total number of ASes the paper observed peers in.
const NumASes = 2715

// CloudProvider pairs a provider name with its share of all IPs
// (Table 3). The total cloud share is <2.3 %.
type CloudProvider struct {
	Name  string
	Share float64
}

// CloudProviders reproduces Table 3's top providers.
var CloudProviders = []CloudProvider{
	{"Contabo GmbH", 0.0044},
	{"Amazon AWS", 0.0039},
	{"Microsoft Azure", 0.0033},
	{"Digital Ocean", 0.0018},
	{"Hetzner Online", 0.0013},
	{"GZ Systems", 0.0008},
	{"OVH", 0.0007},
	{"Google Cloud", 0.0006},
	{"Tencent Cloud", 0.0006},
	{"Choopa, LLC. Cloud", 0.0005},
	{"Other Cloud Providers", 0.0050},
}

// ASModel holds the fitted AS share distribution.
type ASModel struct {
	infos []ASInfo // sorted by rank
	cum   []float64
}

// NewASModel builds the AS distribution: the named top-10 ASes keep
// their Table 2 shares; the remaining mass follows a Zipf tail with
// exponent 1.5 over ranks 11..2715, which reproduces the paper's
// "top 100 contain 90.6 %" concentration.
func NewASModel() *ASModel {
	m := &ASModel{}
	var used float64
	for _, a := range topASes {
		m.infos = append(m.infos, a)
		used += a.Share
	}
	rest := 1 - used
	var zipfSum float64
	for r := 11; r <= NumASes; r++ {
		zipfSum += math.Pow(float64(r), -1.5)
	}
	for r := 11; r <= NumASes; r++ {
		share := rest * math.Pow(float64(r), -1.5) / zipfSum
		m.infos = append(m.infos, ASInfo{
			ASN:   60000 + r,
			Rank:  r,
			Name:  fmt.Sprintf("AS-RANK-%d", r),
			Share: share,
		})
	}
	m.cum = make([]float64, len(m.infos))
	var c float64
	for i, a := range m.infos {
		c += a.Share
		m.cum[i] = c
	}
	return m
}

// Sample draws an AS according to the share distribution.
func (m *ASModel) Sample(rng *rand.Rand) ASInfo {
	x := rng.Float64() * m.cum[len(m.cum)-1]
	i := sort.SearchFloat64s(m.cum, x)
	if i >= len(m.infos) {
		i = len(m.infos) - 1
	}
	return m.infos[i]
}

// TopShare returns the combined share of the top n ASes.
func (m *ASModel) TopShare(n int) float64 {
	if n > len(m.infos) {
		n = len(m.infos)
	}
	var s float64
	for _, a := range m.infos[:n] {
		s += a.Share
	}
	return s
}

// Infos returns the AS table sorted by rank.
func (m *ASModel) Infos() []ASInfo { return m.infos }

// Peer is one synthetic member of the network population, carrying the
// attributes §5 analyses: geography, AS, cloud tag, dialability and
// reliability class, and the IP it shares with co-hosted peers.
type Peer struct {
	Index    int
	Country  Region
	AS       ASInfo
	Cloud    string // "" when not cloud-hosted (>97.7 % of peers)
	IP       string
	Dialable bool // reachable at least once (54.5 % of IPs)
	Reliable bool // >90 % uptime (1.4 % of peers)
}

// PopulationConfig tunes the synthetic population.
type PopulationConfig struct {
	N               int
	Seed            int64
	FracUnreachable float64 // peers never reachable (paper: ~1/3)
	FracReliable    float64 // peers with >90 % uptime (paper: 1.4 %)
	FracSingletonIP float64 // IPs hosting exactly one PeerID (92.3 %)
	NumSuperHosts   int     // IPs hosting very many PeerIDs (Fig 7c tail)
	SuperHostPeers  int     // peers per super host
}

// DefaultPopulationConfig mirrors the published marginals at the given
// scale.
func DefaultPopulationConfig(n int) PopulationConfig {
	return PopulationConfig{
		N:               n,
		Seed:            1,
		FracUnreachable: 0.331,
		FracReliable:    0.014,
		FracSingletonIP: 0.923,
		NumSuperHosts:   max(1, n/2000),
		SuperHostPeers:  max(20, n/300),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Population is a generated peer population plus its models.
type Population struct {
	Peers []Peer
	AS    *ASModel
}

// sampleCountry draws a country from the share table.
func sampleCountry(rng *rand.Rand, shares []CountryShare) Region {
	x := rng.Float64()
	var c float64
	for _, s := range shares {
		c += s.Share
		if x < c {
			return s.Country
		}
	}
	return shares[len(shares)-1].Country
}

// SampleCountry draws a peer-hosting country (Fig 5 distribution).
func SampleCountry(rng *rand.Rand) Region { return sampleCountry(rng, CountryShares) }

// SampleGatewayUserCountry draws a gateway-user country (Fig 6).
func SampleGatewayUserCountry(rng *rand.Rand) Region {
	return sampleCountry(rng, GatewayUserShares)
}

// GeneratePopulation builds a synthetic peer population with the
// configured marginals.
func GeneratePopulation(cfg PopulationConfig) *Population {
	rng := rand.New(rand.NewSource(cfg.Seed))
	asModel := NewASModel()
	pop := &Population{AS: asModel}

	var cloudCum []float64
	var cloudTotal float64
	for _, p := range CloudProviders {
		cloudTotal += p.Share
		cloudCum = append(cloudCum, cloudTotal)
	}

	ipCounter := 0
	newIP := func(as ASInfo) string {
		ipCounter++
		return fmt.Sprintf("%d.%d.%d.%d", 1+as.Rank%223, (ipCounter>>16)&255, (ipCounter>>8)&255, ipCounter&255)
	}

	i := 0
	// Super hosts first: a handful of IPs each hosting many PeerIDs —
	// the "top 10 IP addresses host almost 66k distinct PeerIDs"
	// concern of §5.1.
	for h := 0; h < cfg.NumSuperHosts && i < cfg.N; h++ {
		country := SampleCountry(rng)
		as := asModel.Sample(rng)
		ip := newIP(as)
		for j := 0; j < cfg.SuperHostPeers && i < cfg.N; j++ {
			pop.Peers = append(pop.Peers, Peer{
				Index: i, Country: country, AS: as, IP: ip,
				Dialable: rng.Float64() > cfg.FracUnreachable,
			})
			i++
		}
	}
	// Remaining peers: mostly singleton IPs, occasionally small shared
	// hosts.
	for i < cfg.N {
		country := SampleCountry(rng)
		as := asModel.Sample(rng)
		cloud := ""
		if x := rng.Float64(); x < cloudTotal {
			idx := sort.SearchFloat64s(cloudCum, x)
			if idx >= len(CloudProviders) {
				idx = len(CloudProviders) - 1
			}
			cloud = CloudProviders[idx].Name
		}
		ip := newIP(as)
		n := 1
		if rng.Float64() > cfg.FracSingletonIP {
			n = 2 + rng.Intn(6) // small multi-peer host
		}
		for j := 0; j < n && i < cfg.N; j++ {
			p := Peer{
				Index: i, Country: country, AS: as, Cloud: cloud, IP: ip,
				Dialable: rng.Float64() > cfg.FracUnreachable,
			}
			if p.Dialable && rng.Float64() < cfg.FracReliable/(1-cfg.FracUnreachable) {
				p.Reliable = true
			}
			pop.Peers = append(pop.Peers, p)
			i++
		}
	}
	return pop
}

// CountryCounts aggregates peers per country.
func (p *Population) CountryCounts() map[Region]int {
	out := make(map[Region]int)
	for _, peer := range p.Peers {
		out[peer.Country]++
	}
	return out
}

// PeersPerIP returns the PeerID count of each distinct IP (Fig 7c).
func (p *Population) PeersPerIP() map[string]int {
	out := make(map[string]int)
	for _, peer := range p.Peers {
		out[peer.IP]++
	}
	return out
}

// IPsPerASRank returns IP counts keyed by AS rank (Fig 7d).
func (p *Population) IPsPerASRank() map[int]int {
	seen := make(map[string]int) // ip -> rank
	for _, peer := range p.Peers {
		seen[peer.IP] = peer.AS.Rank
	}
	out := make(map[int]int)
	for _, rank := range seen {
		out[rank]++
	}
	return out
}

// CloudShare returns the fraction of peers hosted on any cloud
// provider (Table 3's headline: <2.3 %).
func (p *Population) CloudShare() float64 {
	n := 0
	for _, peer := range p.Peers {
		if peer.Cloud != "" {
			n++
		}
	}
	return float64(n) / float64(len(p.Peers))
}
