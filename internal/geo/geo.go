// Package geo models the geography of the IPFS deployment: region
// coordinates and a speed-of-light latency model for the simulator, and
// a statistical population model fitted to the paper's published
// marginals (Fig 5 country shares, Table 2 AS concentration, Table 3
// cloud share, Fig 7c PeerID-per-IP clustering). The population model
// stands in for the GeoLite2 + CAIDA AS Rank + Udger datasets.
package geo

import (
	"fmt"
	"math"
	"time"
)

// Region names a geographic location: either an AWS measurement region
// or a country where peers are hosted.
type Region string

// AWS regions used by the §4.3 performance experiments.
const (
	AfSouth1     Region = "af_south_1"     // Cape Town
	ApSoutheast2 Region = "ap_southeast_2" // Sydney
	EuCentral1   Region = "eu_central_1"   // Frankfurt
	MeSouth1     Region = "me_south_1"     // Bahrain
	SaEast1      Region = "sa_east_1"      // São Paulo
	UsWest1      Region = "us_west_1"      // N. California
)

// AWSRegions lists the six measurement vantage points in the order the
// paper's Table 1 uses.
var AWSRegions = []Region{AfSouth1, ApSoutheast2, EuCentral1, MeSouth1, SaEast1, UsWest1}

// coord is a latitude/longitude pair in degrees.
type coord struct{ lat, lon float64 }

var coords = map[Region]coord{
	AfSouth1:     {-33.9, 18.4},
	ApSoutheast2: {-33.9, 151.2},
	EuCentral1:   {50.1, 8.7},
	MeSouth1:     {26.2, 50.6},
	SaEast1:      {-23.6, -46.6},
	UsWest1:      {37.4, -122.0},

	// Peer-hosting countries (ISO 3166-1 alpha-2), placed at a
	// population-weighted central point.
	"US": {39.8, -98.6},
	"CN": {34.7, 104.2},
	"FR": {46.6, 2.5},
	"TW": {23.7, 121.0},
	"KR": {36.5, 127.9},
	"DE": {51.2, 10.4},
	"HK": {22.3, 114.2},
	"BR": {-14.2, -51.9},
	"UA": {48.4, 31.2},
	"RU": {55.8, 37.6},
	"GB": {52.4, -1.5},
	"NL": {52.1, 5.3},
	"CA": {56.1, -106.3},
	"SG": {1.35, 103.8},
	"JP": {36.2, 138.3},
	"PL": {51.9, 19.1},
	"IN": {20.6, 79.0},
	"AU": {-25.3, 133.8},
	"ZA": {-30.6, 22.9},
	"IT": {41.9, 12.6},
}

// Known reports whether the region has coordinates.
func Known(r Region) bool {
	_, ok := coords[r]
	return ok
}

// Distance returns the great-circle distance between two regions in km.
func Distance(a, b Region) float64 {
	ca, ok := coords[a]
	if !ok {
		ca = coords["US"]
	}
	cb, ok := coords[b]
	if !ok {
		cb = coords["US"]
	}
	const earthRadiusKm = 6371
	la1, lo1 := ca.lat*math.Pi/180, ca.lon*math.Pi/180
	la2, lo2 := cb.lat*math.Pi/180, cb.lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) + math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// RTT estimates the round-trip time between regions: a base overhead
// plus propagation at ~2/3 c with a path-stretch factor of 1.6 for
// terrestrial routing, the standard internet delay-space approximation.
func RTT(a, b Region) time.Duration {
	const (
		base       = 4 * time.Millisecond
		kmPerMsRTT = 100.0 // ~ (2/3 c / 1.6 stretch) / 2 directions
	)
	d := Distance(a, b)
	return base + time.Duration(d/kmPerMsRTT*float64(time.Millisecond))
}

// CountryShare is one country's fraction of the peer population
// (Fig 5 / §5.1).
type CountryShare struct {
	Country Region
	Share   float64
}

// CountryShares reproduces the published geographic distribution:
// "The US (28.5%) and China (24.2%) dominate the share of peers,
// followed by France (8.3%), Taiwan (7.2%) and South Korea (6.7%)."
// The remainder is spread over further countries observed in the
// dataset, normalized to 1.
var CountryShares = []CountryShare{
	{"US", 0.285}, {"CN", 0.242}, {"FR", 0.083}, {"TW", 0.072}, {"KR", 0.067},
	{"DE", 0.045}, {"HK", 0.038}, {"BR", 0.026}, {"GB", 0.020}, {"NL", 0.018},
	{"CA", 0.016}, {"SG", 0.014}, {"JP", 0.014}, {"RU", 0.012}, {"UA", 0.010},
	{"PL", 0.009}, {"IN", 0.008}, {"AU", 0.007}, {"ZA", 0.007}, {"IT", 0.007},
}

// GatewayUserShares reproduces Fig 6: requests to the US gateway come
// from "the US (50.4%), followed by China (31.9%), Hong Kong (6.6%),
// Canada (4.6%) and Japan (1.7%)", remainder spread thin.
var GatewayUserShares = []CountryShare{
	{"US", 0.504}, {"CN", 0.319}, {"HK", 0.066}, {"CA", 0.046}, {"JP", 0.017},
	{"GB", 0.012}, {"DE", 0.010}, {"FR", 0.008}, {"KR", 0.007}, {"SG", 0.005},
	{"BR", 0.004}, {"NL", 0.002},
}

// validateShares panics at init if a share table is not normalized.
func validateShares(name string, shares []CountryShare) {
	var sum float64
	for _, s := range shares {
		sum += s.Share
	}
	if math.Abs(sum-1) > 0.01 {
		panic(fmt.Sprintf("geo: %s shares sum to %.4f", name, sum))
	}
}

func init() {
	validateShares("country", CountryShares)
	validateShares("gateway user", GatewayUserShares)
}
