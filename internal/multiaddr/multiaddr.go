// Package multiaddr implements Multiaddresses (§2.2, Figure 2):
// self-describing, human-readable, hierarchically-separated sequences of
// protocol choices that describe an endpoint, e.g.
//
//	/ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14...
//
// The extensible path syntax lets nodes know in advance whether they
// share a transport with a remote peer, and supports relaying by
// prefixing peer addresses (/p2p-circuit).
package multiaddr

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/multibase"
	"repro/internal/varint"
)

// Protocol codes, from the canonical multiaddr protocol table.
const (
	CodeIP4        = 4
	CodeTCP        = 6
	CodeDNS4       = 54
	CodeIP6        = 41
	CodeUDP        = 273
	CodeQUIC       = 460
	CodeWS         = 477
	CodeP2P        = 421
	CodeP2PCircuit = 290
)

// Component is one protocol segment of a multiaddress.
type Component struct {
	Code  int    // protocol code
	Name  string // protocol name as it appears in the path
	Value string // textual value ("" for value-less protocols like ws)
}

// Multiaddr is a parsed multiaddress: an ordered list of components.
type Multiaddr struct {
	comps []Component
}

// ErrInvalid is returned for malformed multiaddresses.
var ErrInvalid = errors.New("multiaddr: invalid")

type protoSpec struct {
	code     int
	hasValue bool
	validate func(string) error
}

var protocols = map[string]protoSpec{
	"ip4": {CodeIP4, true, func(v string) error {
		ip := net.ParseIP(v)
		if ip == nil || ip.To4() == nil {
			return fmt.Errorf("bad ip4 %q", v)
		}
		return nil
	}},
	"ip6": {CodeIP6, true, func(v string) error {
		ip := net.ParseIP(v)
		if ip == nil || ip.To4() != nil {
			return fmt.Errorf("bad ip6 %q", v)
		}
		return nil
	}},
	"dns4": {CodeDNS4, true, func(v string) error {
		if v == "" {
			return fmt.Errorf("empty dns4 name")
		}
		return nil
	}},
	"tcp":  {CodeTCP, true, validatePort},
	"udp":  {CodeUDP, true, validatePort},
	"quic": {CodeQUIC, false, nil},
	"ws":   {CodeWS, false, nil},
	"p2p": {CodeP2P, true, func(v string) error {
		if v == "" {
			return fmt.Errorf("empty p2p id")
		}
		return nil
	}},
	"p2p-circuit": {CodeP2PCircuit, false, nil},
}

var codeToName = func() map[int]string {
	m := make(map[int]string, len(protocols))
	for name, spec := range protocols {
		m[spec.code] = name
	}
	return m
}()

func validatePort(v string) error {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n > 65535 {
		return fmt.Errorf("bad port %q", v)
	}
	return nil
}

// Parse parses the text form of a multiaddress.
func Parse(s string) (Multiaddr, error) {
	if s == "" || s[0] != '/' {
		return Multiaddr{}, fmt.Errorf("%w: must begin with '/': %q", ErrInvalid, s)
	}
	parts := strings.Split(s[1:], "/")
	var m Multiaddr
	for i := 0; i < len(parts); i++ {
		name := parts[i]
		spec, ok := protocols[name]
		if !ok {
			return Multiaddr{}, fmt.Errorf("%w: unknown protocol %q", ErrInvalid, name)
		}
		var value string
		if spec.hasValue {
			i++
			if i >= len(parts) {
				return Multiaddr{}, fmt.Errorf("%w: protocol %q requires a value", ErrInvalid, name)
			}
			value = parts[i]
			if spec.validate != nil {
				if err := spec.validate(value); err != nil {
					return Multiaddr{}, fmt.Errorf("%w: %v", ErrInvalid, err)
				}
			}
		}
		m.comps = append(m.comps, Component{Code: spec.code, Name: name, Value: value})
	}
	if len(m.comps) == 0 {
		return Multiaddr{}, fmt.Errorf("%w: empty", ErrInvalid)
	}
	return m, nil
}

// MustParse is Parse for literals in tests and examples; it panics on error.
func MustParse(s string) Multiaddr {
	m, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the canonical text form.
func (m Multiaddr) String() string {
	var b strings.Builder
	for _, c := range m.comps {
		b.WriteByte('/')
		b.WriteString(c.Name)
		if protocols[c.Name].hasValue {
			b.WriteByte('/')
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

// Components returns a copy of the component list.
func (m Multiaddr) Components() []Component {
	return append([]Component(nil), m.comps...)
}

// Defined reports whether the multiaddress has at least one component.
func (m Multiaddr) Defined() bool { return len(m.comps) > 0 }

// Equal reports whether two multiaddresses are identical.
func (m Multiaddr) Equal(o Multiaddr) bool { return m.String() == o.String() }

// Value returns the value of the first component with the given
// protocol name, and whether it was present.
func (m Multiaddr) Value(name string) (string, bool) {
	for _, c := range m.comps {
		if c.Name == name {
			return c.Value, true
		}
	}
	return "", false
}

// Has reports whether the address contains the given protocol.
func (m Multiaddr) Has(name string) bool {
	_, ok := m.Value(name)
	return ok
}

// PeerID returns the trailing /p2p/<id> component value, if any.
func (m Multiaddr) PeerID() (string, bool) { return m.Value("p2p") }

// Encapsulate appends o's components to m, e.g. turning
// /ip4/1.2.3.4/tcp/3333 into /ip4/1.2.3.4/tcp/3333/p2p/Qm....
func (m Multiaddr) Encapsulate(o Multiaddr) Multiaddr {
	return Multiaddr{comps: append(append([]Component(nil), m.comps...), o.comps...)}
}

// Decapsulate removes the suffix beginning at the first occurrence of
// o's leading protocol; it returns m unchanged if o does not occur.
func (m Multiaddr) Decapsulate(o Multiaddr) Multiaddr {
	if len(o.comps) == 0 {
		return m
	}
	for i, c := range m.comps {
		if c.Code == o.comps[0].Code && c.Value == o.comps[0].Value {
			return Multiaddr{comps: append([]Component(nil), m.comps[:i]...)}
		}
	}
	return m
}

// Relay builds a relayed address: relay's address, /p2p-circuit, then
// the target /p2p component — the prefixing construct §2.2 describes for
// proxying messages to peers that cannot be contacted directly.
func Relay(relay Multiaddr, targetPeer string) Multiaddr {
	circuit := Multiaddr{comps: []Component{{Code: CodeP2PCircuit, Name: "p2p-circuit"}}}
	target := Multiaddr{comps: []Component{{Code: CodeP2P, Name: "p2p", Value: targetPeer}}}
	return relay.Encapsulate(circuit).Encapsulate(target)
}

// IsRelay reports whether the address routes through a relay.
func (m Multiaddr) IsRelay() bool { return m.Has("p2p-circuit") }

// DialInfo extracts the network ("tcp") and host:port a dialer should
// use, if the address has an IP/TCP (or DNS4/TCP) prefix.
func (m Multiaddr) DialInfo() (network, hostport string, err error) {
	var host, port string
	for _, c := range m.comps {
		switch c.Code {
		case CodeIP4, CodeIP6, CodeDNS4:
			host = c.Value
		case CodeTCP:
			port = c.Value
		}
	}
	if host == "" || port == "" {
		return "", "", fmt.Errorf("%w: no dialable ip/tcp component in %s", ErrInvalid, m)
	}
	return "tcp", net.JoinHostPort(host, port), nil
}

// Bytes returns the binary form: for each component a varint protocol
// code, then for valued protocols a varint length and the value bytes.
func (m Multiaddr) Bytes() []byte {
	var out []byte
	for _, c := range m.comps {
		out = varint.Append(out, uint64(c.Code))
		if protocols[c.Name].hasValue {
			out = varint.Append(out, uint64(len(c.Value)))
			out = append(out, c.Value...)
		}
	}
	return out
}

// FromBytes parses the binary form produced by Bytes.
func FromBytes(raw []byte) (Multiaddr, error) {
	var m Multiaddr
	for len(raw) > 0 {
		code, n, err := varint.Decode(raw)
		if err != nil {
			return Multiaddr{}, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		raw = raw[n:]
		name, ok := codeToName[int(code)]
		if !ok {
			return Multiaddr{}, fmt.Errorf("%w: unknown protocol code %d", ErrInvalid, code)
		}
		var value string
		if protocols[name].hasValue {
			l, n, err := varint.Decode(raw)
			if err != nil {
				return Multiaddr{}, fmt.Errorf("%w: %v", ErrInvalid, err)
			}
			raw = raw[n:]
			if uint64(len(raw)) < l {
				return Multiaddr{}, fmt.Errorf("%w: truncated value", ErrInvalid)
			}
			value = string(raw[:l])
			raw = raw[l:]
		}
		m.comps = append(m.comps, Component{Code: int(code), Name: name, Value: value})
	}
	if len(m.comps) == 0 {
		return Multiaddr{}, fmt.Errorf("%w: empty", ErrInvalid)
	}
	return m, nil
}

// ForPeer builds the canonical /ip4/<ip>/tcp/<port>/p2p/<peerID> address
// of Figure 2.
func ForPeer(ip string, port int, peerID string) Multiaddr {
	return MustParse(fmt.Sprintf("/ip4/%s/tcp/%d/p2p/%s", ip, port, peerID))
}

// Multibase renders the binary form in the given multibase, used when
// embedding addresses in records.
func (m Multiaddr) Multibase(e multibase.Encoding) string {
	return multibase.MustEncode(e, m.Bytes())
}
