package multiaddr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFigure2(t *testing.T) {
	// The paper's Figure 2 example.
	m, err := Parse("/ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "/ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14" {
		t.Errorf("String() = %q", got)
	}
	if v, _ := m.Value("ip4"); v != "1.2.3.4" {
		t.Errorf("ip4 = %q", v)
	}
	if v, _ := m.Value("tcp"); v != "3333" {
		t.Errorf("tcp = %q", v)
	}
	if id, ok := m.PeerID(); !ok || id != "QmZyWQ14" {
		t.Errorf("PeerID = %q, %v", id, ok)
	}
}

func TestParseVariants(t *testing.T) {
	valid := []string{
		"/ip4/127.0.0.1/tcp/4001",
		"/ip6/::1/tcp/4001",
		"/ip4/10.0.0.1/udp/4001/quic",
		"/dns4/example.com/tcp/443/ws",
		"/p2p/QmAbC",
	}
	for _, s := range valid {
		m, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	invalid := []string{
		"",
		"ip4/1.2.3.4",
		"/",
		"/ip4",
		"/ip4/999.0.0.1/tcp/80",
		"/ip4/1.2.3.4/tcp/99999",
		"/ip4/::1/tcp/80",
		"/ip6/1.2.3.4/tcp/80",
		"/bogus/1",
		"/tcp/-1",
	}
	for _, s := range invalid {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	base := MustParse("/ip4/1.2.3.4/tcp/3333")
	p2p := MustParse("/p2p/QmTarget")
	full := base.Encapsulate(p2p)
	if full.String() != "/ip4/1.2.3.4/tcp/3333/p2p/QmTarget" {
		t.Errorf("Encapsulate = %s", full)
	}
	back := full.Decapsulate(p2p)
	if !back.Equal(base) {
		t.Errorf("Decapsulate = %s, want %s", back, base)
	}
	// Decapsulating something absent is a no-op.
	if got := base.Decapsulate(MustParse("/p2p/QmOther")); !got.Equal(base) {
		t.Errorf("absent Decapsulate = %s", got)
	}
}

func TestRelayPrefixing(t *testing.T) {
	relay := MustParse("/ip4/9.9.9.9/tcp/4001/p2p/QmRelay")
	m := Relay(relay, "QmBrowserNode")
	want := "/ip4/9.9.9.9/tcp/4001/p2p/QmRelay/p2p-circuit/p2p/QmBrowserNode"
	if m.String() != want {
		t.Errorf("Relay = %s, want %s", m, want)
	}
	if !m.IsRelay() {
		t.Error("IsRelay should be true")
	}
	if relay.IsRelay() {
		t.Error("plain address should not be a relay")
	}
}

func TestDialInfo(t *testing.T) {
	m := MustParse("/ip4/127.0.0.1/tcp/4001/p2p/QmX")
	network, hostport, err := m.DialInfo()
	if err != nil {
		t.Fatal(err)
	}
	if network != "tcp" || hostport != "127.0.0.1:4001" {
		t.Errorf("DialInfo = %s %s", network, hostport)
	}
	if _, _, err := MustParse("/p2p/QmX").DialInfo(); err == nil {
		t.Error("p2p-only address should not be dialable")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, s := range []string{
		"/ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14",
		"/ip4/10.0.0.1/udp/4001/quic",
		"/dns4/gateway.ipfs.io/tcp/443/ws",
	} {
		m := MustParse(s)
		back, err := FromBytes(m.Bytes())
		if err != nil {
			t.Fatalf("FromBytes(%s): %v", s, err)
		}
		if !back.Equal(m) {
			t.Errorf("binary round trip %q -> %q", s, back)
		}
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes(nil); err == nil {
		t.Error("empty binary should fail")
	}
	if _, err := FromBytes([]byte{0xff, 0xff, 0x01}); err == nil {
		t.Error("unknown code should fail")
	}
	m := MustParse("/p2p/QmX")
	raw := m.Bytes()
	if _, err := FromBytes(raw[:len(raw)-2]); err == nil {
		t.Error("truncated value should fail")
	}
}

func TestForPeer(t *testing.T) {
	m := ForPeer("192.168.1.7", 4001, "QmPeer")
	if !strings.HasSuffix(m.String(), "/p2p/QmPeer") {
		t.Errorf("ForPeer = %s", m)
	}
}

func TestQuickForPeerRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8, port uint16, idSeed uint8) bool {
		ip := MustParse("/ip4/" + ipStr(a, b, c, d) + "/tcp/" + itoa(int(port)))
		back, err := FromBytes(ip.Bytes())
		return err == nil && back.Equal(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func ipStr(a, b, c, d uint8) string {
	return itoa(int(a)) + "." + itoa(int(b)) + "." + itoa(int(c)) + "." + itoa(int(d))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
