package crawler_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/crawler"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/testnet"
	"repro/internal/wire"
)

func buildCrawler(tn *testnet.Testnet, seed int64) *crawler.Crawler {
	ident := peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
	ep := tn.Net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
	sw := swarm.New(ident, ep, simtime.NewBaseSource(tn.Base, nil))
	return crawler.New(sw, crawler.Config{Base: tn.Base, Workers: 64})
}

func TestCrawlDiscoversWholeNetwork(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 120, Seed: 21, Scale: 0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	c := buildCrawler(tn, 500)
	boot := []wire.PeerInfo{tn.Nodes[0].Info(), tn.Nodes[1].Info()}
	report := c.Crawl(context.Background(), boot)

	if len(report.Observations) < 118 {
		t.Errorf("discovered %d of 120 peers", len(report.Observations))
	}
	if report.Dialable() < 115 {
		t.Errorf("dialable = %d, want nearly all in a clean network", report.Dialable())
	}
	if report.Duration <= 0 {
		t.Error("no crawl duration")
	}
}

func TestCrawlClassifiesUndialable(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 100, Seed: 22, Scale: 0.0004,
		FracDead: 0.30, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	c := buildCrawler(tn, 501)
	boot := []wire.PeerInfo{tn.Nodes[0].Info()}
	// Find a live bootstrap peer.
	for i, cl := range tn.Classes {
		if cl == simnet.Normal {
			boot = []wire.PeerInfo{tn.Nodes[i].Info()}
			break
		}
	}
	report := c.Crawl(context.Background(), boot)
	dead := 0
	for _, cl := range tn.Classes {
		if cl == simnet.DeadDial {
			dead++
		}
	}
	if report.Undialable() == 0 {
		t.Fatal("no undialable peers recorded despite dead population")
	}
	// All discovered dead peers must be classified undialable; the
	// crawler finds them in k-buckets but cannot connect (Fig 4a).
	got := report.Undialable()
	if got < dead*5/10 {
		t.Errorf("undialable = %d, dead population = %d", got, dead)
	}
	// Observations carry connection durations for dialable peers, and
	// most dialable peers return their k-buckets (a few crawl RPCs may
	// time out when the host machine is slow, e.g. under -race).
	withBuckets, dialableCount := 0, 0
	for _, o := range report.Observations {
		if o.Dialable && o.ConnectDur <= 0 {
			t.Fatal("dialable observation missing connect duration")
		}
		if o.Dialable {
			dialableCount++
			if o.BucketSize > 0 {
				withBuckets++
			}
		}
	}
	if withBuckets < dialableCount*2/3 {
		t.Errorf("only %d of %d dialable peers returned bucket entries", withBuckets, dialableCount)
	}
}

func TestCrawlFromDeadBootstrapFindsNothing(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 30, Seed: 23, Scale: 0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	c := buildCrawler(tn, 502)
	ghost := peer.MustNewIdentity(rand.New(rand.NewSource(999)))
	report := c.Crawl(context.Background(), []wire.PeerInfo{{ID: ghost.ID}})
	if len(report.Observations) != 1 || report.Dialable() != 0 {
		t.Errorf("observations = %d, dialable = %d", len(report.Observations), report.Dialable())
	}
}

func TestRepeatedCrawlsSeeChurn(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 80, Seed: 24, Scale: 0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	c := buildCrawler(tn, 503)
	boot := []wire.PeerInfo{tn.Nodes[0].Info(), tn.Nodes[1].Info()}

	r1 := c.Crawl(context.Background(), boot)
	// Take a third of the network offline.
	for i := 10; i < 35; i++ {
		tn.Net.SetOnline(tn.Nodes[i].ID(), false)
	}
	r2 := c.Crawl(context.Background(), boot)
	if r2.Dialable() >= r1.Dialable() {
		t.Errorf("dialable should drop after churn: %d -> %d", r1.Dialable(), r2.Dialable())
	}
	// The departed peers are still discovered in k-buckets, just
	// undialable — exactly the Fig 4a undialable fraction.
	if r2.Undialable() <= r1.Undialable() {
		t.Errorf("undialable should rise after churn: %d -> %d", r1.Undialable(), r2.Undialable())
	}
}
