// Package crawler implements the Peer-dataset methodology of §4.1: a
// crawler recursively asks peers for all entries in their k-buckets,
// starting from the bootstrap peers, until it finds no new entries. It
// records, per peer, whether a connection could be established
// (dialable vs undialable, Fig 4a) together with connection and crawl
// durations.
package crawler

import (
	"context"
	"sync"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Observation is what one crawl learned about one peer.
type Observation struct {
	ID         peer.ID
	Addrs      []multiaddr.Multiaddr
	Dialable   bool
	ConnectDur time.Duration // simulated dial+negotiate time
	CrawlDur   time.Duration // simulated k-bucket enumeration time
	BucketSize int           // peers returned from its k-buckets
}

// Report is the outcome of one crawl.
type Report struct {
	Observations map[peer.ID]*Observation
	Duration     time.Duration // simulated end-to-end crawl time
}

// Dialable counts peers we connected to.
func (r *Report) Dialable() int {
	n := 0
	for _, o := range r.Observations {
		if o.Dialable {
			n++
		}
	}
	return n
}

// Undialable counts peers we discovered but could not connect to.
func (r *Report) Undialable() int { return len(r.Observations) - r.Dialable() }

// Config tunes the crawler.
type Config struct {
	// Workers bounds concurrent dials (the real crawler is massively
	// parallel; default 64).
	Workers int
	// ConnectTimeout bounds one dial attempt (default 8 s: above the
	// TCP dial timeout, below the websocket handshake timeout — the
	// crawler gives up on those, as the nebula crawler does).
	ConnectTimeout time.Duration
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Time is the unified time surface; nil derives it from Base.
	Time simtime.Source
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 8 * time.Second
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, nil)
	}
	return c
}

// Crawler walks the DHT enumerating k-buckets.
type Crawler struct {
	cfg Config
	sw  *swarm.Swarm
}

// New creates a crawler over the given swarm (the crawler is itself a
// peer with an endpoint on the network).
func New(sw *swarm.Swarm, cfg Config) *Crawler {
	return &Crawler{cfg: cfg.withDefaults(), sw: sw}
}

// Crawl runs one full network crawl from the bootstrap peers: a
// breadth-first enumeration with bounded concurrency that terminates
// when no undiscovered peers remain.
func (c *Crawler) Crawl(ctx context.Context, bootstrap []wire.PeerInfo) *Report {
	src := c.cfg.Time
	start := src.Stamp()
	// Crawl traffic — snapshot refreshes included — lands under the
	// refresh budget category in the simulator's network-wide report.
	ctx = transport.WithRPCCategory(ctx, transport.CatRefresh)
	report := &Report{Observations: make(map[peer.ID]*Observation)}

	var mu sync.Mutex
	g := simtime.NewGroup(src)
	// The worker bound is a prefilled token channel: acquiring is a
	// receive (instrumented under the scheduler via Recv) and releasing
	// a deposit into the freed capacity, which never blocks — the shape
	// every leased goroutine needs for quiescence detection to be sound.
	sem := make(chan struct{}, c.cfg.Workers)
	for i := 0; i < c.cfg.Workers; i++ {
		sem <- struct{}{}
	}
	var enqueue func(info wire.PeerInfo)
	enqueue = func(info wire.PeerInfo) {
		mu.Lock()
		if info.ID == c.sw.Local() {
			mu.Unlock()
			return
		}
		if _, seen := report.Observations[info.ID]; seen {
			mu.Unlock()
			return
		}
		report.Observations[info.ID] = &Observation{ID: info.ID, Addrs: info.Addrs}
		mu.Unlock()

		g.Go(ctx, func(gctx context.Context) {
			if _, ok := simtime.Recv(gctx, src, sem); !ok {
				return
			}
			defer func() { sem <- struct{}{} }()
			c.visit(gctx, info, report, &mu, enqueue)
		})
	}

	for _, b := range bootstrap {
		enqueue(b)
	}
	g.Wait(ctx)
	report.Duration = src.Since(start)
	return report
}

// visit dials one peer, enumerates its k-buckets, and feeds newly
// discovered peers back into the crawl.
func (c *Crawler) visit(ctx context.Context, info wire.PeerInfo, report *Report, mu *sync.Mutex, enqueue func(wire.PeerInfo)) {
	src := c.cfg.Time
	dctx, cancel := src.WithTimeout(ctx, c.cfg.ConnectTimeout)
	defer cancel()

	connStart := src.Stamp()
	conn, _, err := c.sw.Connect(dctx, info.ID, info.Addrs)
	connDur := src.Since(connStart)

	mu.Lock()
	obs := report.Observations[info.ID]
	obs.ConnectDur = connDur
	mu.Unlock()
	if err != nil {
		return
	}

	crawlStart := src.Stamp()
	resp, err := conn.Request(dctx, wire.Message{Type: wire.TCrawl})
	crawlDur := src.Since(crawlStart)
	// Free the connection immediately: a crawl touches every peer in
	// the network and must not hold thousands of connections open.
	c.sw.Disconnect(info.ID)

	mu.Lock()
	obs.Dialable = true
	obs.CrawlDur = crawlDur
	if err == nil && resp.Type == wire.TNodes {
		obs.BucketSize = len(resp.Peers)
	}
	mu.Unlock()
	if err != nil || resp.Type != wire.TNodes {
		return
	}
	for _, pi := range resp.Peers {
		enqueue(pi)
	}
}
