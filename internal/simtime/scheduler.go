package simtime

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSchedulerClosed is returned from waits that were parked when the
// scheduler's Run loop exited (a leaked background goroutine observing
// the shutdown) and from waits attempted after it.
var ErrSchedulerClosed = errors.New("simtime: scheduler closed")

// Event priorities: at equal timestamps, liveness transitions apply
// before timer wakes (a peer churning offline at t is offline for a
// phase scheduled at t, matching the half-open churn intervals), and
// both before ordinary wakes. Ties within a priority break by sequence
// number, so a seeded run replays bit-for-bit.
const (
	prioTransition = iota // churn/liveness flips and other world state
	prioTimer             // sleeps, timeouts, AfterFunc callbacks
)

// event is one entry on the queue. fn runs on the dispatcher goroutine
// with the virtual clock already set to at; it must not block. Events
// that need to block (AfterFunc callbacks) wrap a tracked spawn.
type event struct {
	at      time.Time
	prio    int
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap position, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// waiter is a goroutine parked in Await. The dispatcher polls ready at
// quiescence, in registration order, and wakes the first that reports
// true by closing ch (after taking over its lease, so virtual time
// cannot advance underneath the wake).
type waiter struct {
	ready   func() bool
	ch      chan struct{}
	tracked bool
	err     error // set before wake when the scheduler is closing
}

// Scheduler is the discrete-event Source: one priority queue of
// timestamped events over a movable clock. Goroutines on the simulated
// workload path are leased — the dispatcher counts how many are
// runnable — and virtual time jumps to the next event only when every
// leased goroutine is parked in Sleep/Await. Seeded runs are
// bit-for-bit reproducible at Workers=1 (the default): ties break by
// sequence number and exactly one waiter wakes per quiescent instant.
//
// Build one with NewScheduler, drive it with Run, and hand it to
// configs as their simtime.Source.
type Scheduler struct {
	clock *Clock

	// Workers bounds how many ready events/waiters are dispatched per
	// quiescent instant. 1 (default) is deterministic lockstep; larger
	// values dispatch same-instant work concurrently — the -race
	// stress mode — at the cost of tie-order stability.
	workers int

	mu       sync.Mutex
	events   eventHeap
	seq      uint64
	waiters  []*waiter
	active   int
	kick     chan struct{}
	running  bool
	closed   bool
	closeCh  chan struct{}
	stalls   atomic.Int64
	grace    time.Duration
	dispatch atomic.Int64 // events fired, for tests/introspection
}

// SchedulerOpts tunes a Scheduler.
type SchedulerOpts struct {
	// Workers bounds concurrent dispatch of same-instant work;
	// 0 or 1 selects deterministic lockstep.
	Workers int
	// Grace is the real-time fallback the dispatcher waits before
	// re-polling when no tracked goroutine signals progress (an
	// uninstrumented wait somewhere). Each firing counts a stall;
	// deterministic tests assert Stalls() == 0. Default 2ms.
	Grace time.Duration
}

// NewScheduler builds a discrete-event scheduler over the given movable
// clock (shared with callers that read record timestamps off it).
func NewScheduler(clock *Clock, opts SchedulerOpts) *Scheduler {
	if clock == nil {
		clock = NewClock(time.Unix(0, 0))
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Grace <= 0 {
		opts.Grace = 2 * time.Millisecond
	}
	return &Scheduler{
		clock:   clock,
		workers: opts.Workers,
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		grace:   opts.Grace,
	}
}

// Clock returns the underlying movable clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Stalls reports how many times the dispatcher had to fall back to the
// real-time grace timer because no tracked goroutine signalled
// progress. A deterministic run keeps this at zero; a non-zero count
// means some wait on the workload path is not instrumented.
func (s *Scheduler) Stalls() int64 { return s.stalls.Load() }

// Dispatched reports how many queue events have fired.
func (s *Scheduler) Dispatched() int64 { return s.dispatch.Load() }

// --- Source implementation ---

func (s *Scheduler) Now() time.Time                   { return s.clock.Now() }
func (s *Scheduler) Stamp() time.Time                 { return s.clock.Now() }
func (s *Scheduler) Since(t0 time.Time) time.Duration { return s.clock.Now().Sub(t0) }

// leaseKey marks a context whose goroutine is leased to the scheduler.
type leaseKey struct{}

func withLease(ctx context.Context) context.Context {
	if ctx.Value(leaseKey{}) != nil {
		return ctx
	}
	return context.WithValue(ctx, leaseKey{}, true)
}

func leased(ctx context.Context) bool { return ctx.Value(leaseKey{}) != nil }

// Go runs fn on a new goroutine leased to the scheduler: virtual time
// cannot advance while it is runnable.
//
// At Workers = 1 the spawn is lockstep: the child is registered as a
// ready waiter from the parent's goroutine — so sequence numbers follow
// program order, not goroutine-scheduling order — and starts only when
// the dispatcher hands it the floor. At most one leased goroutine is
// ever runnable, which is what makes seeded runs bit-for-bit
// reproducible. With Workers > 1 children start immediately and run
// concurrently (the -race stress mode).
func (s *Scheduler) Go(ctx context.Context, fn func(context.Context)) {
	ctx = withLease(ctx)
	if s.workers == 1 {
		w := &waiter{ready: func() bool { return true }, ch: make(chan struct{}), tracked: true}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.waiters = append(s.waiters, w)
		s.mu.Unlock()
		select {
		case s.kick <- struct{}{}:
		default:
		}
		go func() {
			<-w.ch // the dispatcher granted our lease
			if w.err != nil {
				return
			}
			defer s.release()
			fn(ctx)
		}()
		return
	}
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	go func() {
		defer s.release()
		fn(ctx)
	}()
}

// release gives up one lease and kicks the dispatcher if the system
// went quiescent.
func (s *Scheduler) release() {
	s.mu.Lock()
	s.active--
	quiescent := s.active == 0
	s.mu.Unlock()
	if quiescent {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// Await parks the calling goroutine until cond() reports true or ctx is
// done, releasing its lease so virtual time can advance meanwhile. The
// dispatcher evaluates cond only at quiescent instants, so cond must be
// a cheap, lock-free read (channel lengths, atomics, ctx.Err). Spurious
// wakes are possible when several goroutines contend for one condition;
// loop around Await if the guarded action can fail.
func (s *Scheduler) Await(ctx context.Context, cond func() bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	if cond() {
		s.mu.Unlock()
		return nil
	}
	w := &waiter{
		ready:   func() bool { return ctx.Err() != nil || cond() },
		ch:      make(chan struct{}),
		tracked: leased(ctx),
	}
	s.waiters = append(s.waiters, w)
	if w.tracked {
		s.active--
	}
	quiescent := s.active == 0
	s.mu.Unlock()
	if quiescent {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	<-w.ch
	if w.err != nil {
		return w.err
	}
	return ctx.Err()
}

// Sleep parks for the simulated duration d; the wake is an event on the
// queue, so the virtual clock jumps straight to it once everything else
// at earlier instants has run.
func (s *Scheduler) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	return s.sleepUntil(ctx, s.clock.Now().Add(d))
}

// SleepUntil parks until the virtual clock reaches t (immediately if it
// already has).
func (s *Scheduler) SleepUntil(ctx context.Context, t time.Time) error {
	if !s.clock.Now().Before(t) {
		return ctx.Err()
	}
	return s.sleepUntil(ctx, t)
}

func (s *Scheduler) sleepUntil(ctx context.Context, t time.Time) error {
	var fired atomic.Bool
	tm := s.at(t, prioTimer, func() { fired.Store(true) })
	err := s.Await(ctx, fired.Load)
	tm.Stop()
	return err
}

// At schedules fn to run on the dispatcher goroutine at virtual instant
// t (or the current instant, if t is in the past). fn must not block:
// it is for cheap world-state flips — churn transitions, timeout
// cancellations. Use AfterFunc for callbacks that do simulated work.
func (s *Scheduler) At(t time.Time, fn func()) *Timer {
	return s.at(t, prioTransition, fn)
}

func (s *Scheduler) at(t time.Time, prio int, fn func()) *Timer {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &Timer{}
	}
	if now := s.clock.Now(); t.Before(now) {
		t = now // never schedule into the past: the clock only moves forward
	}
	s.seq++
	ev := &event{at: t, prio: prio, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	s.mu.Unlock()
	// Wake an idle dispatcher: scheduling from an untracked goroutine
	// (or before any lease exists) must still get the queue moving.
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return &Timer{stop: func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ev.stopped || ev.index < 0 {
			return false
		}
		ev.stopped = true
		heap.Remove(&s.events, ev.index)
		return true
	}}
}

// AfterFunc arranges for fn to run after the simulated duration d on
// its own leased goroutine (it may sleep, spawn, and issue RPCs),
// unless ctx is done first or the timer is stopped.
func (s *Scheduler) AfterFunc(ctx context.Context, d time.Duration, fn func(context.Context)) *Timer {
	cctx := withLease(ctx)
	var tm *Timer
	tm = s.at(s.clock.Now().Add(d), prioTimer, func() {
		if cctx.Err() != nil {
			return
		}
		// Dispatcher context: hand the callback a lease and run it on
		// its own goroutine — the "worker pool" execution of a ready
		// event. The dispatcher returns to waiting for quiescence.
		s.mu.Lock()
		s.active++
		s.mu.Unlock()
		go func() {
			defer s.release()
			fn(cctx)
		}()
	})
	return tm
}

// WithTimeout derives a context cancelled at a virtual deadline: the
// expiry is an event on the queue, not a real timer, so a 60 s RPC
// timeout costs nothing unless virtual time actually reaches it.
func (s *Scheduler) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	c := &deadlineCtx{parent: ctx, deadline: s.clock.Now().Add(d), done: make(chan struct{})}
	c.stopParent = context.AfterFunc(ctx, func() { c.cancel(ctx.Err()) })
	tm := s.at(c.deadline, prioTimer, func() { c.cancel(context.DeadlineExceeded) })
	cancel := func() {
		tm.Stop()
		c.cancel(context.Canceled)
	}
	return c, cancel
}

// deadlineCtx is a context with a virtual-time deadline. Its Done
// channel closes when the deadline event fires, the CancelFunc runs, or
// the parent ends (propagated via context.AfterFunc).
type deadlineCtx struct {
	parent     context.Context
	deadline   time.Time
	stopParent func() bool

	mu   sync.Mutex
	done chan struct{}
	err  error
}

func (c *deadlineCtx) Deadline() (time.Time, bool) {
	if pd, ok := c.parent.Deadline(); ok && pd.Before(c.deadline) {
		return pd, true
	}
	return c.deadline, true
}

func (c *deadlineCtx) Done() <-chan struct{} { return c.done }

func (c *deadlineCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.parent.Err()
}

func (c *deadlineCtx) Value(key any) any { return c.parent.Value(key) }

func (c *deadlineCtx) cancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
	if c.stopParent != nil {
		c.stopParent()
	}
}

// --- dispatcher ---

// Run executes root on a leased goroutine and drives the event queue
// from the calling goroutine until root has returned and every leased
// goroutine has finished or parked on a future it no longer holds.
// Events left in the queue afterwards (periodic background timers) are
// discarded; parked waiters are woken with ErrSchedulerClosed so
// background goroutines unwind. The scheduler cannot be reused after
// Run returns.
func (s *Scheduler) Run(ctx context.Context, root func(context.Context)) error {
	s.mu.Lock()
	if s.running || s.closed {
		s.mu.Unlock()
		return errors.New("simtime: scheduler already running or closed")
	}
	s.running = true
	s.active++
	s.mu.Unlock()

	var rootDone atomic.Bool
	go func() {
		defer func() {
			rootDone.Store(true)
			s.release()
		}()
		root(withLease(ctx))
	}()

	graceTimer := time.NewTimer(s.grace)
	defer graceTimer.Stop()
	for {
		if err := ctx.Err(); err != nil {
			s.close()
			return err
		}
		s.mu.Lock()
		if s.active > 0 {
			s.mu.Unlock()
			// Leased goroutines are runnable: wait for the system to
			// go quiescent. The grace timer is only a safety net for
			// untracked progress; it does not count as a stall while
			// real work is running.
			if !graceTimer.Stop() {
				select {
				case <-graceTimer.C:
				default:
				}
			}
			graceTimer.Reset(s.grace)
			select {
			case <-s.kick:
			case <-graceTimer.C:
			case <-ctx.Done():
			}
			continue
		}
		if s.stepLocked() { // unlocks s.mu
			continue
		}
		// No ready waiter, no event fired: either we are done, or
		// progress depends on something untracked.
		s.mu.Lock()
		done := rootDone.Load() && s.active == 0 && len(s.waiters) == 0
		idle := s.active == 0 && s.events.Len() == 0
		s.mu.Unlock()
		if done {
			s.close()
			return nil
		}
		if idle && rootDone.Load() {
			// Root finished but waiters are parked with an empty
			// queue: they depend on untracked progress that will never
			// come. Close and let them unwind.
			s.close()
			return nil
		}
		s.stalls.Add(1)
		select {
		case <-s.kick:
		case <-time.After(s.grace):
		case <-ctx.Done():
		}
	}
}

// stepLocked performs one quiescent-instant dispatch round: wake up to
// Workers ready waiters (in registration order), or — when none are
// ready — pop the earliest event batch and fire it. Called with s.mu
// held; always unlocks. Reports whether any progress was made.
func (s *Scheduler) stepLocked() bool {
	// Ready waiters first: a wake at the current instant precedes any
	// clock advance.
	woken := 0
	for i := 0; i < len(s.waiters) && woken < s.workers; i++ {
		w := s.waiters[i]
		if !w.ready() {
			continue
		}
		s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
		i--
		if w.tracked {
			s.active++ // lease handoff before the wake
		}
		close(w.ch)
		woken++
	}
	if woken > 0 {
		s.mu.Unlock()
		return true
	}
	if s.events.Len() == 0 {
		s.mu.Unlock()
		return false
	}
	// Fire the earliest instant: all transition-priority events at that
	// timestamp (cheap, inline, mutually commutative), plus up to
	// Workers timer events.
	at := s.events[0].at
	s.clock.Set(at)
	var fired int
	var batch []*event
	for s.events.Len() > 0 && s.events[0].at.Equal(at) {
		if s.events[0].prio == prioTimer && fired >= s.workers {
			break
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.prio == prioTimer {
			fired++
		}
		batch = append(batch, ev)
	}
	s.mu.Unlock()
	for _, ev := range batch {
		s.dispatch.Add(1)
		ev.fn()
	}
	return true
}

// close marks the scheduler finished and wakes every parked waiter with
// ErrSchedulerClosed.
func (s *Scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.running = false
	waiters := s.waiters
	s.waiters = nil
	s.events = nil
	s.mu.Unlock()
	close(s.closeCh)
	for _, w := range waiters {
		w.err = ErrSchedulerClosed
		close(w.ch)
	}
}
