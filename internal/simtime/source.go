package simtime

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Source is the single time surface the simulator and the real
// binaries share: a simulated wall clock for record timestamps and TTL
// math, a measurement pair (Stamp/Since), and the waiting primitives
// (Sleep, timeouts, timers, spawns). Two implementations exist:
//
//   - BaseSource pairs the legacy real-scaled Base with an optional
//     movable Clock — sleeps burn scaled real time, measurements
//     convert elapsed real time back to simulated time. cmd/ipfs-node
//     and the gateway run on BaseSource{B: Realtime}.
//   - Scheduler (scheduler.go) is the discrete-event implementation:
//     sleeps park on a priority queue and virtual time jumps between
//     events, so a 24 h scenario over 20k peers replays in seconds.
//
// Callers that used to take both a Base and a *Clock take one Source.
type Source interface {
	// Now returns the current simulated wall-clock instant — the clock
	// records, TTLs and churn timelines are expressed in.
	Now() time.Time
	// Stamp returns an opaque start instant for duration measurement;
	// Since converts it to the simulated time elapsed. Under a
	// Scheduler both live on the virtual clock; under BaseSource the
	// stamp is real time and Since rescales it.
	Stamp() time.Time
	Since(t0 time.Time) time.Duration

	// Sleep pauses the calling goroutine for the simulated duration d,
	// or until ctx is done.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context cancelled after the simulated
	// duration d. The returned CancelFunc must be called to release the
	// timer (both implementations are leak-free under an abandoned
	// deadline, unlike the removed Base.After).
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// AfterFunc arranges for fn to run after the simulated duration d,
	// unless ctx is done first or the returned timer is stopped. fn
	// runs on its own goroutine and may itself sleep and spawn.
	AfterFunc(ctx context.Context, d time.Duration, fn func(context.Context)) *Timer
	// Go runs fn on a new goroutine. Under a Scheduler the goroutine is
	// registered with the dispatcher so virtual time cannot advance
	// while it is runnable; every goroutine spawned on a simulated
	// workload path must go through this (a plain `go` is invisible to
	// the scheduler and lets virtual time run ahead of it).
	Go(ctx context.Context, fn func(context.Context))
}

// Timer is a cancellable pending callback. Stop reports whether it was
// cancelled before firing; stopping an already-fired or already-stopped
// timer is a harmless no-op returning false.
type Timer struct {
	stop func() bool
}

// Stop cancels the timer if it has not fired yet.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// BaseSource adapts the legacy pair (real-scaled Base + optional
// movable Clock) to the Source interface. The zero Base is promoted to
// Realtime so `BaseSource{}` behaves like the old defaults.
type BaseSource struct {
	B Base
	// Clock, when non-nil, supplies Now; otherwise the real wall clock
	// does (the cmd binaries' real-time adapter).
	Clock *Clock
}

// NewBaseSource builds a Source from the legacy (Base, now func) pair
// most configs carried. A nil now falls back to the real wall clock.
func NewBaseSource(b Base, now func() time.Time) Source {
	if b == (Base{}) {
		b = Realtime
	}
	if now == nil {
		return BaseSource{B: b}
	}
	return fnSource{BaseSource{B: b}, now}
}

func (s BaseSource) base() Base {
	if s.B == (Base{}) {
		return Realtime
	}
	return s.B
}

func (s BaseSource) Now() time.Time {
	if s.Clock != nil {
		return s.Clock.Now()
	}
	return time.Now()
}

func (s BaseSource) Stamp() time.Time                 { return time.Now() }
func (s BaseSource) Since(t0 time.Time) time.Duration { return s.base().SimSince(t0) }
func (s BaseSource) Sleep(ctx context.Context, d time.Duration) error {
	return s.base().Sleep(ctx, d)
}

func (s BaseSource) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return s.base().WithTimeout(ctx, d)
}

func (s BaseSource) AfterFunc(ctx context.Context, d time.Duration, fn func(context.Context)) *Timer {
	t := time.AfterFunc(s.base().Real(d), func() {
		if ctx.Err() == nil {
			fn(ctx)
		}
	})
	return &Timer{stop: t.Stop}
}

func (s BaseSource) Go(ctx context.Context, fn func(context.Context)) { go fn(ctx) }

// fnSource is BaseSource with an arbitrary now func (a *Clock method or
// a test stub) instead of a Clock pointer.
type fnSource struct {
	BaseSource
	now func() time.Time
}

func (s fnSource) Now() time.Time { return s.now() }

// SchedulerOf returns the Scheduler behind a Source, or nil when the
// source is real-scaled. Blocking sites use it to pick between the
// instrumented wait (Await) and the plain channel select.
func SchedulerOf(src Source) *Scheduler {
	s, _ := src.(*Scheduler)
	return s
}

// Recv receives one value from ch, honouring ctx. Under a Scheduler the
// wait is instrumented (the dispatcher advances virtual time while the
// receiver is parked); otherwise it is a plain select. ok is false when
// ctx ended the wait.
func Recv[T any](ctx context.Context, src Source, ch <-chan T) (v T, ok bool) {
	if s := SchedulerOf(src); s != nil {
		for {
			if err := s.Await(ctx, func() bool { return len(ch) > 0 }); err != nil {
				return v, false
			}
			select {
			case v = <-ch:
				return v, true
			default:
				// Another receiver drained it between wake and recv;
				// park again.
			}
		}
	}
	select {
	case v = <-ch:
		return v, true
	case <-ctx.Done():
		return v, false
	}
}

// AwaitClosed waits until ch (a close-only broadcast channel) is
// closed, honouring ctx. Returns ctx.Err() if ctx ended the wait.
func AwaitClosed(ctx context.Context, src Source, ch <-chan struct{}) error {
	closed := func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	if s := SchedulerOf(src); s != nil {
		if err := s.Await(ctx, closed); err != nil {
			return err
		}
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Group is a WaitGroup whose Wait is instrumented under a Scheduler:
// while the waiter is parked the dispatcher keeps advancing virtual
// time, so fan-out/fan-in code (store fan-outs, crawl workers) can run
// on the event queue. The zero value is NOT usable; use NewGroup.
type Group struct {
	src Source
	n   atomic.Int64
	wg  sync.WaitGroup
}

// NewGroup creates a Group over src.
func NewGroup(src Source) *Group { return &Group{src: src} }

// Go runs fn on a new tracked goroutine counted by the group.
func (g *Group) Go(ctx context.Context, fn func(context.Context)) {
	g.Add(1)
	g.src.Go(ctx, func(ctx context.Context) {
		defer g.Done()
		fn(ctx)
	})
}

// Add registers n pending goroutines (call before spawning, as with
// sync.WaitGroup).
func (g *Group) Add(n int) {
	g.n.Add(int64(n))
	g.wg.Add(n)
}

// Done marks one goroutine finished.
func (g *Group) Done() {
	g.n.Add(-1)
	g.wg.Done()
}

// Idle reports whether no goroutines are pending — usable inside a
// composite Scheduler.Await condition.
func (g *Group) Idle() bool { return g.n.Load() == 0 }

// Wait blocks until all registered goroutines finished. The context
// only bounds the wait under a Scheduler; the real-time path matches
// sync.WaitGroup semantics (the fan-outs it replaces always joined all
// workers, whose RPCs carry their own timeouts).
func (g *Group) Wait(ctx context.Context) {
	if s := SchedulerOf(g.src); s != nil {
		// Ignore ctx cancellation as a wake-up: the workers observe the
		// same ctx and unwind promptly, and joining them keeps the
		// counting invariants simple. The detached wrapper keeps the
		// goroutine's lease marker while dropping cancellation.
		for !g.Idle() {
			if err := s.Await(detachedCtx{ctx}, g.Idle); err != nil {
				return // scheduler shut down underneath us
			}
		}
		return
	}
	g.wg.Wait()
}

// Detach returns a context keeping ctx's values — in particular the
// scheduler lease marker — while dropping its deadline and
// cancellation. Coordinators that must drain every worker outcome
// regardless of cancellation (workers observe the same ctx and unwind
// promptly, depositing into buffered channels) wait under a detached
// context so the drain stays instrumented without racing the cancel.
func Detach(ctx context.Context) context.Context { return detachedCtx{ctx} }

// detachedCtx keeps a context's values (in particular the scheduler
// lease marker) while dropping its deadline and cancellation.
type detachedCtx struct{ parent context.Context }

func (d detachedCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (d detachedCtx) Done() <-chan struct{}       { return nil }
func (d detachedCtx) Err() error                  { return nil }
func (d detachedCtx) Value(key any) any           { return d.parent.Value(key) }
