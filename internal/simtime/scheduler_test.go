package simtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

// run drives root on a fresh scheduler and fails the test on a
// dispatcher error or a non-zero stall count (a stall means some wait
// escaped instrumentation — determinism is gone).
func run(t *testing.T, opts SchedulerOpts, root func(ctx context.Context, s *Scheduler)) *Scheduler {
	t.Helper()
	s := NewScheduler(NewClock(epoch), opts)
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background(), func(ctx context.Context) { root(ctx, s) }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("scheduler run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler run did not finish")
	}
	if n := s.Stalls(); n != 0 {
		t.Fatalf("dispatcher stalled %d times: uninstrumented wait on the workload path", n)
	}
	return s
}

// TestSchedulerEventOrdering pins the queue discipline: events fire in
// timestamp order, same-instant events in scheduling (sequence) order,
// and virtual time jumps to each event instead of sleeping through the
// gaps (hours of virtual time, milliseconds of wall clock).
func TestSchedulerEventOrdering(t *testing.T) {
	wallStart := time.Now()
	var mu sync.Mutex
	var got []string
	s := run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		log := func(tag string) func() {
			return func() { mu.Lock(); got = append(got, tag); mu.Unlock() }
		}
		s.At(epoch.Add(2*time.Hour), log("b"))
		s.At(epoch.Add(1*time.Hour), log("a"))
		s.At(epoch.Add(2*time.Hour), log("c")) // same instant as b: seq order
		s.At(epoch.Add(26*time.Hour), log("d"))
		if err := s.Sleep(ctx, 27*time.Hour); err != nil {
			t.Errorf("sleep: %v", err)
		}
		if now := s.Now(); !now.Equal(epoch.Add(27 * time.Hour)) {
			t.Errorf("virtual clock at %v, want %v", now, epoch.Add(27*time.Hour))
		}
	})
	want := "[a b c d]"
	if fmt.Sprint(got) != want {
		t.Fatalf("event order %v, want %v", got, want)
	}
	if wall := time.Since(wallStart); wall > 5*time.Second {
		t.Fatalf("27 virtual hours took %v of wall clock; the scheduler is sleeping for real", wall)
	}
	if s.Now() != s.Stamp() {
		t.Fatalf("Stamp/Now disagree")
	}
}

// TestSchedulerTransitionPriority pins that world-state transitions
// (At) fire before timer wakes at the same instant: a peer going
// offline at t is observed offline by work scheduled at t.
func TestSchedulerTransitionPriority(t *testing.T) {
	var offline atomic.Bool
	target := epoch.Add(time.Hour)
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		// Sleep wake (prioTimer) is scheduled first, transition second;
		// priority must still order the transition ahead of the wake.
		wake := make(chan struct{})
		s.Go(ctx, func(ctx context.Context) {
			s.SleepUntil(ctx, target)
			if !offline.Load() {
				t.Error("timer wake at t ran before the transition at t")
			}
			close(wake)
		})
		s.Sleep(ctx, time.Minute) // let the sleeper park first
		s.At(target, func() { offline.Store(true) })
		AwaitClosed(ctx, s, wake)
	})
}

// TestSchedulerTimerCancel covers the cancellable-timer satellite: a
// stopped At/AfterFunc never fires, Stop reports whether it won, and a
// context cancelled before expiry suppresses the callback.
func TestSchedulerTimerCancel(t *testing.T) {
	var fired int32
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		tm := s.At(s.Now().Add(time.Hour), func() { atomic.AddInt32(&fired, 1) })
		if !tm.Stop() {
			t.Error("Stop on a pending timer reported false")
		}
		if tm.Stop() {
			t.Error("second Stop reported true")
		}

		cctx, cancel := context.WithCancel(ctx)
		s.AfterFunc(cctx, 30*time.Minute, func(context.Context) { atomic.AddInt32(&fired, 1) })
		cancel()

		kept := s.AfterFunc(ctx, 45*time.Minute, func(context.Context) { atomic.AddInt32(&fired, 1) })
		s.Sleep(ctx, 2*time.Hour)
		if kept.Stop() {
			t.Error("Stop after firing reported true")
		}
	})
	if n := atomic.LoadInt32(&fired); n != 1 {
		t.Fatalf("fired %d callbacks, want exactly the un-cancelled one", n)
	}
}

// TestSchedulerVirtualTimeout pins WithTimeout semantics on the virtual
// clock: expiry yields DeadlineExceeded exactly at the deadline, an
// early cancel stops the queue event, and a parked Sleep observes the
// expiry.
func TestSchedulerVirtualTimeout(t *testing.T) {
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		tctx, cancel := s.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := s.Sleep(tctx, time.Minute); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("sleep across deadline: err %v, want DeadlineExceeded", err)
		}
		if now := s.Now(); !now.Equal(epoch.Add(10 * time.Second)) {
			t.Errorf("woke at %v, want the 10s deadline instant", now)
		}
		if d, ok := tctx.Deadline(); !ok || !d.Equal(epoch.Add(10*time.Second)) {
			t.Errorf("Deadline() = %v, %v", d, ok)
		}

		// Cancelled before expiry: the deadline event must not fire or
		// leak; sleeping past the would-be deadline succeeds.
		c2, cancel2 := s.WithTimeout(ctx, time.Second)
		cancel2()
		if c2.Err() == nil {
			t.Error("cancelled timeout ctx has nil Err")
		}
		if err := s.Sleep(ctx, 5*time.Second); err != nil {
			t.Errorf("sleep after cancelled timeout: %v", err)
		}
	})
}

// TestSchedulerAwaitWake covers the Await/condition protocol: a waiter
// parked on a condition wakes when a later event makes it true, and
// virtual time advanced to exactly that event.
func TestSchedulerAwaitWake(t *testing.T) {
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		var ready atomic.Bool
		s.At(epoch.Add(3*time.Hour), func() { ready.Store(true) })
		if err := s.Await(ctx, ready.Load); err != nil {
			t.Errorf("await: %v", err)
		}
		if now := s.Now(); !now.Equal(epoch.Add(3 * time.Hour)) {
			t.Errorf("await woke at %v, want the event instant", now)
		}
	})
}

// TestSchedulerGroupFanOut pins the Group fan-out/fan-in shape every
// store fan-out uses: workers sleeping different virtual durations all
// join, and the coordinator resumes at the latest wake.
func TestSchedulerGroupFanOut(t *testing.T) {
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		g := NewGroup(s)
		var woke int32
		for i := 1; i <= 8; i++ {
			d := time.Duration(i) * time.Minute
			g.Go(ctx, func(ctx context.Context) {
				s.Sleep(ctx, d)
				atomic.AddInt32(&woke, 1)
			})
		}
		g.Wait(ctx)
		if woke != 8 {
			t.Errorf("joined with %d/8 workers done", woke)
		}
		if now := s.Now(); !now.Equal(epoch.Add(8 * time.Minute)) {
			t.Errorf("coordinator resumed at %v, want the slowest worker's wake", now)
		}
	})
}

// TestSchedulerRecv pins the instrumented channel receive: the consumer
// parks, virtual time advances to the producer's send instant, and the
// values arrive in virtual-time order.
func TestSchedulerRecv(t *testing.T) {
	run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
		ch := make(chan int, 4)
		s.Go(ctx, func(ctx context.Context) {
			for i := 1; i <= 3; i++ {
				s.Sleep(ctx, time.Duration(i)*time.Second)
				ch <- i
			}
		})
		for want := 1; want <= 3; want++ {
			v, ok := Recv(ctx, Source(s), ch)
			if !ok || v != want {
				t.Fatalf("recv %d: got %d ok=%v", want, v, ok)
			}
		}
	})
}

// TestSchedulerConcurrentWake exercises Workers > 1: several sleepers
// share one deadline and must all wake at that instant, concurrently,
// without losing a lease or corrupting the clock (run under -race).
func TestSchedulerConcurrentWake(t *testing.T) {
	const sleepers = 32
	var woke int32
	run(t, SchedulerOpts{Workers: 4}, func(ctx context.Context, s *Scheduler) {
		g := NewGroup(s)
		for i := 0; i < sleepers; i++ {
			g.Go(ctx, func(ctx context.Context) {
				if err := s.Sleep(ctx, time.Hour); err != nil {
					t.Errorf("sleep: %v", err)
				}
				if now := s.Now(); !now.Equal(epoch.Add(time.Hour)) {
					t.Errorf("woke at %v", now)
				}
				atomic.AddInt32(&woke, 1)
			})
		}
		g.Wait(ctx)
	})
	if woke != sleepers {
		t.Fatalf("woke %d/%d sleepers", woke, sleepers)
	}
}

// TestSchedulerWorkerPoolStress is the -race stress test for the
// dispatcher and worker pool: a few hundred leased goroutines hammer
// sleeps, awaits, timers and nested spawns at overlapping virtual
// instants with Workers = 8.
func TestSchedulerWorkerPoolStress(t *testing.T) {
	const tasks = 200
	var completed int32
	run(t, SchedulerOpts{Workers: 8}, func(ctx context.Context, s *Scheduler) {
		g := NewGroup(s)
		for i := 0; i < tasks; i++ {
			i := i
			g.Go(ctx, func(ctx context.Context) {
				// Deterministic per-task mix of primitives; many tasks
				// collide on the same instants on purpose.
				d := time.Duration(i%7+1) * time.Second
				s.Sleep(ctx, d)
				var tick atomic.Bool
				tm := s.At(s.Now().Add(time.Duration(i%3)*time.Second), func() { tick.Store(true) })
				if i%5 == 0 {
					tm.Stop()
				} else {
					s.Await(ctx, tick.Load)
				}
				if i%4 == 0 {
					tctx, cancel := s.WithTimeout(ctx, time.Millisecond)
					s.Sleep(tctx, time.Second)
					cancel()
				}
				inner := NewGroup(s)
				for j := 0; j < 3; j++ {
					j := j
					inner.Go(ctx, func(ctx context.Context) {
						s.Sleep(ctx, time.Duration(j+1)*time.Second)
					})
				}
				inner.Wait(ctx)
				atomic.AddInt32(&completed, 1)
			})
		}
		g.Wait(ctx)
	})
	if completed != tasks {
		t.Fatalf("completed %d/%d tasks", completed, tasks)
	}
}

// TestSchedulerDeterministicReplay runs the same seeded task mix twice
// at Workers = 1 and requires identical wake traces — the bit-for-bit
// reproducibility the tie-breaking sequence numbers exist for.
func TestSchedulerDeterministicReplay(t *testing.T) {
	trace := func() string {
		var mu sync.Mutex
		var log []string
		run(t, SchedulerOpts{}, func(ctx context.Context, s *Scheduler) {
			g := NewGroup(s)
			for i := 0; i < 20; i++ {
				i := i
				g.Go(ctx, func(ctx context.Context) {
					s.Sleep(ctx, time.Duration((i*37)%11+1)*time.Second)
					mu.Lock()
					log = append(log, fmt.Sprintf("%d@%s", i, s.Now().Sub(epoch)))
					mu.Unlock()
					s.Sleep(ctx, time.Duration(i%5+1)*time.Second)
					mu.Lock()
					log = append(log, fmt.Sprintf("%d'@%s", i, s.Now().Sub(epoch)))
					mu.Unlock()
				})
			}
			g.Wait(ctx)
		})
		return fmt.Sprint(log)
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("two seeded runs diverged:\n%s\n%s", a, b)
	}
}

// TestSchedulerCloseUnwindsWaiters pins shutdown hygiene: background
// waiters still parked when Run finishes are woken with
// ErrSchedulerClosed instead of leaking.
func TestSchedulerCloseUnwindsWaiters(t *testing.T) {
	unwound := make(chan error, 1)
	s := NewScheduler(NewClock(epoch), SchedulerOpts{})
	err := s.Run(context.Background(), func(ctx context.Context) {
		// An untracked background goroutine parks on a condition nobody
		// will ever satisfy (tracked would hold the run open forever).
		started := make(chan struct{})
		go func() {
			close(started)
			unwound <- s.Await(context.Background(), func() bool { return false })
		}()
		<-started
		s.Sleep(ctx, time.Second)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	select {
	case werr := <-unwound:
		if !errors.Is(werr, ErrSchedulerClosed) {
			t.Fatalf("waiter unwound with %v, want ErrSchedulerClosed", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background waiter leaked past Run")
	}
	if err := s.Sleep(context.Background(), time.Second); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("sleep on closed scheduler: %v", err)
	}
}
