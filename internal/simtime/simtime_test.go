package simtime

import (
	"context"
	"testing"
	"time"
)

func TestRealSimConversion(t *testing.T) {
	b := New(0.01)
	if got := b.Real(10 * time.Second); got != 100*time.Millisecond {
		t.Errorf("Real = %v", got)
	}
	if got := b.Sim(100 * time.Millisecond); got != 10*time.Second {
		t.Errorf("Sim = %v", got)
	}
}

func TestZeroAndNegativeScaleFallsBack(t *testing.T) {
	if New(0).Scale() != 1 {
		t.Error("scale 0 should fall back to 1")
	}
	if New(-2).Scale() != 1 {
		t.Error("negative scale should fall back to 1")
	}
	var zero Base
	if zero.Scale() != 1 {
		t.Error("zero value should behave as realtime")
	}
	if Realtime.Real(time.Second) != time.Second {
		t.Error("Realtime must be the identity")
	}
}

func TestSleepPrecisionShort(t *testing.T) {
	b := New(0.001)
	// 200 simulated ms at scale 0.001 = 200µs real: spin path.
	start := time.Now()
	if err := b.Sleep(context.Background(), 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	real := time.Since(start)
	if real < 150*time.Microsecond || real > 1500*time.Microsecond {
		t.Errorf("short sleep took %v real, want ~200µs", real)
	}
}

func TestSleepCancellation(t *testing.T) {
	b := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := b.Sleep(ctx, 10*time.Second)
	if err == nil {
		t.Fatal("cancelled sleep should return an error")
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not interrupt the sleep")
	}
}

func TestSleepZero(t *testing.T) {
	if err := Realtime.Sleep(context.Background(), 0); err != nil {
		t.Errorf("zero sleep: %v", err)
	}
}

func TestSimSince(t *testing.T) {
	b := New(0.001)
	start := time.Now()
	if err := b.Sleep(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	sim := b.SimSince(start)
	if sim < 800*time.Millisecond || sim > 3*time.Second {
		t.Errorf("SimSince = %v, want ~1s", sim)
	}
}

func TestWithTimeout(t *testing.T) {
	b := New(0.001)
	ctx, cancel := b.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if until := time.Until(dl); until > 100*time.Millisecond {
		t.Errorf("deadline %v away, want ~60ms", until)
	}
}

// TestClock exercises the movable simulated wall clock.
func TestClock(t *testing.T) {
	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	if got := c.Advance(6 * time.Hour); !got.Equal(start.Add(6 * time.Hour)) {
		t.Errorf("Advance returned %v", got)
	}
	if !c.Now().Equal(start.Add(6 * time.Hour)) {
		t.Errorf("Now after Advance = %v", c.Now())
	}
	c.Set(start.Add(24 * time.Hour))
	if !c.Now().Equal(start.Add(24 * time.Hour)) {
		t.Errorf("Now after Set = %v", c.Now())
	}
	// Concurrent readers/writers must be race-clean (run with -race).
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			c.Advance(time.Second)
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		_ = c.Now()
	}
	<-done
}
