// Package simtime provides the time base that lets simulated
// experiments replay in compressed wall-clock time. All protocol
// timeouts and modeled latencies are expressed in simulated time; a
// Base with Scale < 1 shrinks them for execution and measurement
// results are converted back with Sim.
//
// Source (source.go) is the unified time API everything above the
// transport programs against: wall-clock reads for timestamps and TTL
// math, Stamp/Since measurement, and the waiting primitives (Sleep,
// WithTimeout, AfterFunc, tracked Go spawns). BaseSource implements it
// over real scaled time; Scheduler (scheduler.go) implements it as a
// discrete-event engine where sleeps park on a priority queue and
// virtual time jumps between events — paper-scale populations replay
// hours of simulated time in seconds, deterministically at Workers=1.
// Code written against Source runs unchanged on either.
package simtime

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// spinThreshold is the real duration below which Sleep busy-waits
// instead of using a timer: Go timers have ~1 ms granularity, which
// would otherwise swamp sub-millisecond scaled latencies and distort
// simulated measurements.
const spinThreshold = 2 * time.Millisecond

// Base converts between simulated and real durations. The zero value is
// unusable; use Realtime or New.
type Base struct {
	scale float64 // real = sim * scale
}

// Realtime is the identity base used outside simulations.
var Realtime = Base{scale: 1}

// New returns a base that compresses simulated time by the given factor
// (0 < scale <= 1 typically; scale 0.01 runs 100x faster than real).
func New(scale float64) Base {
	if scale <= 0 {
		scale = 1
	}
	return Base{scale: scale}
}

// Scale returns the compression factor.
func (b Base) Scale() float64 {
	if b.scale == 0 {
		return 1
	}
	return b.scale
}

// Real converts a simulated duration to the real duration to wait.
func (b Base) Real(sim time.Duration) time.Duration {
	return time.Duration(float64(sim) * b.Scale())
}

// Sim converts an elapsed real duration back to simulated time.
func (b Base) Sim(real time.Duration) time.Duration {
	return time.Duration(float64(real) / b.Scale())
}

// Sleep pauses for the scaled equivalent of sim, or until ctx is done.
// Short scaled durations busy-wait for precision (see spinThreshold).
func (b Base) Sleep(ctx context.Context, sim time.Duration) error {
	real := b.Real(sim)
	if real <= 0 {
		return ctx.Err()
	}
	if real < spinThreshold {
		deadline := time.Now().Add(real)
		for i := 0; time.Now().Before(deadline); i++ {
			if i%64 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			runtime.Gosched()
		}
		return nil
	}
	t := time.NewTimer(real)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AfterFunc runs fn after the scaled equivalent of sim on its own
// goroutine and returns the underlying timer so callers can Stop it.
// It replaces the removed After: the channel variant leaked its real
// timer whenever the caller abandoned the channel (a cancelled
// republish loop parked a timer for the rest of the process), whereas
// this handle is cancellable. Periodic loops should prefer
// Source.AfterFunc, which also covers the discrete-event scheduler.
func (b Base) AfterFunc(sim time.Duration, fn func()) *time.Timer {
	return time.AfterFunc(b.Real(sim), fn)
}

// SimSince returns the simulated time elapsed since the real instant t0.
func (b Base) SimSince(t0 time.Time) time.Duration {
	return b.Sim(time.Since(t0))
}

// WithTimeout derives a context whose deadline is the scaled equivalent
// of the simulated duration.
func (b Base) WithTimeout(ctx context.Context, sim time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, b.Real(sim))
}

// Clock is a movable simulated wall clock. Scenario engines set or
// advance it between workload phases so record timestamps, TTL expiry
// and churn-timeline liveness all observe the same simulated instant;
// pass its Now method wherever a `func() time.Time` clock is expected.
// It is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock creates a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set jumps the clock to t. Scenario engines only move it forward, but
// the clock itself does not enforce monotonicity.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d and returns the new instant.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Jitter derives a deterministic offset in [0, interval) from seed —
// typically a PeerID plus a cycle name. Periodic background cycles
// (the 12 h republish, snapshot refresh crawls) delay their first tick
// by it, so a fleet of nodes started together spreads its cycles
// across the interval instead of thundering-herding the same ticks.
func Jitter(seed string, interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	// FNV-1a over the seed; no dependency on hash/fnv needed for the
	// 64-bit variant.
	h := uint64(14695981039346656037)
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	return time.Duration(h % uint64(interval))
}
