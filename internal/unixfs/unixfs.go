// Package unixfs layers files and directories over the Merkle DAG, the
// way gateway URLs address content beneath a root CID:
// /ipfs/{CID}/path/to/file. Directories are DAG nodes whose named
// links point at entries; files are the anonymous balanced DAGs built
// by internal/merkledag.
package unixfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/merkledag"
	"repro/internal/multicodec"
)

// dirMarker tags a DAG node as a directory.
var dirMarker = []byte("unixfs:dir")

// Errors returned by this package.
var (
	ErrNotDirectory = errors.New("unixfs: not a directory")
	ErrNotFound     = errors.New("unixfs: path not found")
	ErrBadName      = errors.New("unixfs: invalid entry name")
)

// Entry is one directory member.
type Entry struct {
	Name string
	Cid  cid.Cid
	Size uint64
}

// IsDirectory reports whether a decoded DAG node is a directory.
func IsDirectory(n *merkledag.Node) bool {
	return len(n.Data) == len(dirMarker) && string(n.Data) == string(dirMarker)
}

// MakeDirectory stores a directory node linking the given entries and
// returns its CID. Entry names must be non-empty, slash-free and
// unique; entries are sorted so identical directories share a CID
// (the de-duplication property of §2.1).
func MakeDirectory(store block.Store, entries []Entry) (cid.Cid, error) {
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.Name == "" || strings.ContainsAny(e.Name, "/\x00") {
			return cid.Cid{}, fmt.Errorf("%w: %q", ErrBadName, e.Name)
		}
		if seen[e.Name] {
			return cid.Cid{}, fmt.Errorf("%w: duplicate %q", ErrBadName, e.Name)
		}
		seen[e.Name] = true
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	n := &merkledag.Node{Data: append([]byte(nil), dirMarker...)}
	for _, e := range sorted {
		n.Links = append(n.Links, merkledag.Link{Cid: e.Cid, Size: e.Size, Name: e.Name})
	}
	blk := block.New(multicodec.DagPB, n.Encode())
	if err := store.Put(blk); err != nil {
		return cid.Cid{}, err
	}
	return blk.Cid(), nil
}

// List returns a directory's entries in name order.
func List(f merkledag.Fetcher, dir cid.Cid) ([]Entry, error) {
	n, err := fetchNode(f, dir)
	if err != nil {
		return nil, err
	}
	if !IsDirectory(n) {
		return nil, ErrNotDirectory
	}
	out := make([]Entry, 0, len(n.Links))
	for _, l := range n.Links {
		out = append(out, Entry{Name: l.Name, Cid: l.Cid, Size: l.Size})
	}
	return out, nil
}

// Resolve walks a slash-separated path from root and returns the CID it
// names. An empty path (or "/") resolves to root itself.
func Resolve(f merkledag.Fetcher, root cid.Cid, path string) (cid.Cid, error) {
	cur := root
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			continue
		}
		n, err := fetchNode(f, cur)
		if err != nil {
			return cid.Cid{}, err
		}
		if !IsDirectory(n) {
			return cid.Cid{}, fmt.Errorf("%w: %q is not a directory", ErrNotDirectory, seg)
		}
		found := false
		for _, l := range n.Links {
			if l.Name == seg {
				cur = l.Cid
				found = true
				break
			}
		}
		if !found {
			return cid.Cid{}, fmt.Errorf("%w: %q", ErrNotFound, seg)
		}
	}
	return cur, nil
}

// ReadFile resolves path under root and reassembles the file content.
func ReadFile(f merkledag.Fetcher, root cid.Cid, path string) ([]byte, error) {
	c, err := Resolve(f, root, path)
	if err != nil {
		return nil, err
	}
	n, err := fetchNode(f, c)
	if err != nil {
		return nil, err
	}
	if IsDirectory(n) {
		return nil, fmt.Errorf("%w: %q is a directory", ErrNotDirectory, path)
	}
	return merkledag.Assemble(f, c)
}

// AddTree imports a map of path -> content as a directory tree rooted
// at a single CID; intermediate directories are created as needed.
func AddTree(store block.Store, b *merkledag.Builder, files map[string][]byte) (cid.Cid, error) {
	type dirNode struct {
		files map[string]Entry
		dirs  map[string]*dirNode
	}
	newDir := func() *dirNode {
		return &dirNode{files: map[string]Entry{}, dirs: map[string]*dirNode{}}
	}
	root := newDir()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		segs := strings.Split(strings.Trim(name, "/"), "/")
		cur := root
		for _, seg := range segs[:len(segs)-1] {
			if seg == "" {
				return cid.Cid{}, fmt.Errorf("%w: empty segment in %q", ErrBadName, name)
			}
			next := cur.dirs[seg]
			if next == nil {
				next = newDir()
				cur.dirs[seg] = next
			}
			cur = next
		}
		leaf := segs[len(segs)-1]
		c, err := b.Add(files[name])
		if err != nil {
			return cid.Cid{}, err
		}
		cur.files[leaf] = Entry{Name: leaf, Cid: c, Size: uint64(len(files[name]))}
	}
	var build func(d *dirNode) (cid.Cid, uint64, error)
	build = func(d *dirNode) (cid.Cid, uint64, error) {
		var entries []Entry
		var total uint64
		for _, e := range d.files {
			entries = append(entries, e)
			total += e.Size
		}
		for name, sub := range d.dirs {
			c, size, err := build(sub)
			if err != nil {
				return cid.Cid{}, 0, err
			}
			entries = append(entries, Entry{Name: name, Cid: c, Size: size})
			total += size
		}
		c, err := MakeDirectory(store, entries)
		return c, total, err
	}
	c, _, err := build(root)
	return c, err
}

func fetchNode(f merkledag.Fetcher, c cid.Cid) (*merkledag.Node, error) {
	blk, err := f.Get(c)
	if err != nil {
		return nil, err
	}
	return merkledag.DecodeNode(blk.Data())
}
