package unixfs

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/merkledag"
)

func setup() (*block.MemStore, *merkledag.Builder) {
	store := block.NewMemStore()
	return store, merkledag.NewBuilder(store, 1024, 8)
}

func TestMakeDirectoryAndList(t *testing.T) {
	store, b := setup()
	a, err := b.Add([]byte("file a"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Add([]byte("file c"))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := MakeDirectory(store, []Entry{
		{Name: "c.txt", Cid: c, Size: 6},
		{Name: "a.txt", Cid: a, Size: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := List(store, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a.txt" || entries[1].Name != "c.txt" {
		t.Errorf("entries = %+v (must be name-sorted)", entries)
	}
}

func TestMakeDirectoryValidation(t *testing.T) {
	store, b := setup()
	f, _ := b.Add([]byte("x"))
	cases := [][]Entry{
		{{Name: "", Cid: f}},
		{{Name: "a/b", Cid: f}},
		{{Name: "dup", Cid: f}, {Name: "dup", Cid: f}},
	}
	for i, entries := range cases {
		if _, err := MakeDirectory(store, entries); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDirectoryDeduplication(t *testing.T) {
	store, b := setup()
	f, _ := b.Add([]byte("same"))
	d1, err := MakeDirectory(store, []Entry{{Name: "x", Cid: f, Size: 4}, {Name: "y", Cid: f, Size: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Different insertion order, same logical directory.
	d2, err := MakeDirectory(store, []Entry{{Name: "y", Cid: f, Size: 4}, {Name: "x", Cid: f, Size: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Error("identical directories must share a CID")
	}
}

func TestAddTreeAndResolve(t *testing.T) {
	store, b := setup()
	files := map[string][]byte{
		"index.html":         []byte("<html>home</html>"),
		"img/logo.png":       bytes.Repeat([]byte{0x89}, 3000),
		"img/icons/star.png": []byte("star"),
		"docs/readme.md":     []byte("# readme"),
	}
	root, err := AddTree(store, b, files)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range files {
		got, err := ReadFile(store, root, path)
		if err != nil {
			t.Fatalf("ReadFile(%q): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("ReadFile(%q) mismatch", path)
		}
	}
	// Leading/trailing slashes are tolerated.
	if _, err := ReadFile(store, root, "/img/logo.png"); err != nil {
		t.Errorf("leading slash: %v", err)
	}
	// Root resolves to itself.
	self, err := Resolve(store, root, "")
	if err != nil || !self.Equal(root) {
		t.Errorf("empty path resolve = %v, %v", self, err)
	}
}

func TestResolveErrors(t *testing.T) {
	store, b := setup()
	root, err := AddTree(store, b, map[string][]byte{"a/b.txt": []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(store, root, "a/missing.txt"); err == nil {
		t.Error("missing entry should fail")
	}
	if _, err := Resolve(store, root, "a/b.txt/deeper"); err == nil {
		t.Error("descending into a file should fail")
	}
	if _, err := ReadFile(store, root, "a"); err == nil {
		t.Error("reading a directory should fail")
	}
	if _, err := List(store, root); err != nil {
		t.Errorf("List(root): %v", err)
	}
	fileCid, _ := b.Add([]byte("plain"))
	if _, err := List(store, fileCid); err == nil {
		t.Error("List on a file should fail")
	}
}

func TestDirectoryNestedSizes(t *testing.T) {
	store, b := setup()
	root, err := AddTree(store, b, map[string][]byte{
		"a/one": make([]byte, 100),
		"a/two": make([]byte, 50),
		"top":   make([]byte, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := List(store, root)
	if err != nil {
		t.Fatal(err)
	}
	var aSize uint64
	for _, e := range entries {
		if e.Name == "a" {
			aSize = e.Size
		}
	}
	if aSize != 150 {
		t.Errorf("directory cumulative size = %d, want 150", aSize)
	}
}

func TestIsDirectoryDistinguishesFiles(t *testing.T) {
	store, b := setup()
	f, _ := b.Add([]byte("unixfs:dir")) // content that looks like the marker
	blk, _ := store.Get(f)
	n, err := merkledag.DecodeNode(blk.Data())
	if err != nil {
		t.Fatal(err)
	}
	// A leaf whose *content* is the marker IS indistinguishable at this
	// layer by data alone — but file leaves produced by the builder are
	// exactly that. Directories built by MakeDirectory always carry
	// links or an empty entry list plus the marker; here we simply
	// document that Resolve treats it as a directory with no entries.
	if IsDirectory(n) {
		if _, err := Resolve(store, f, "x"); err == nil {
			t.Error("empty 'directory' should resolve nothing")
		}
	}
}
