package cid

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/multibase"
	"repro/internal/multicodec"
	"repro/internal/multihash"
)

func TestSumAndParseRoundTrip(t *testing.T) {
	c := Sum(multicodec.Raw, []byte("hello ipfs"))
	s := c.String()
	if !strings.HasPrefix(s, "b") {
		t.Errorf("CIDv1 string should be base32 'b'-prefixed, got %q", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Errorf("Parse(String()) = %s, want %s", back, c)
	}
}

func TestFigure1Layout(t *testing.T) {
	// Figure 1: v1 || dag-pb (0x70) || sha2-256 (0x12) || len 32 || digest.
	c := Sum(multicodec.DagPB, []byte("figure one"))
	raw := c.Bytes()
	if raw[0] != 0x01 {
		t.Errorf("version byte = 0x%x, want 0x01", raw[0])
	}
	if raw[1] != 0x70 {
		t.Errorf("codec byte = 0x%x, want 0x70 (dag-pb)", raw[1])
	}
	if raw[2] != 0x12 || raw[3] != 0x20 {
		t.Errorf("multihash header = 0x%x 0x%x, want 0x12 0x20", raw[2], raw[3])
	}
	if len(raw) != 4+32 {
		t.Errorf("total length = %d, want 36", len(raw))
	}
}

func TestV0(t *testing.T) {
	c := SumV0([]byte("old style"))
	s := c.String()
	if !strings.HasPrefix(s, "Qm") || len(s) != 46 {
		t.Errorf("CIDv0 string = %q, want Qm... of length 46", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Error("v0 round trip failed")
	}
	if back.Version() != V0 || back.Codec() != multicodec.DagPB {
		t.Errorf("v0 parsed as version=%d codec=%v", back.Version(), back.Codec())
	}
}

func TestV0ToV1(t *testing.T) {
	v0 := SumV0([]byte("upgrade me"))
	v1 := v0.ToV1()
	if v1.Version() != V1 {
		t.Fatal("ToV1 did not upgrade")
	}
	if !multihash.Equal(v0.Hash(), v1.Hash()) {
		t.Error("ToV1 changed the multihash")
	}
	if !v1.ToV1().Equal(v1) {
		t.Error("ToV1 on v1 should be identity")
	}
}

func TestV0Constraint(t *testing.T) {
	mh, _ := multihash.Sum(multicodec.SHA2_512, []byte("x"))
	if _, err := New(V0, multicodec.DagPB, mh); err == nil {
		t.Error("v0 with sha2-512 should fail")
	}
	if _, err := New(V0, multicodec.Raw, multihash.SumSHA256([]byte("x"))); err == nil {
		t.Error("v0 with raw codec should fail")
	}
}

func TestVerifySelfCertification(t *testing.T) {
	data := []byte("self certifying")
	c := Sum(multicodec.Raw, data)
	if !c.Verify(data) {
		t.Error("Verify should accept original data")
	}
	if c.Verify([]byte("self certifying!")) {
		t.Error("Verify should reject altered data")
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "b", "zzz", "Qm000000000000000000000000000000000000000000", "b?not-base32"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestFromBytesRejectsBadVersion(t *testing.T) {
	raw := append([]byte{0x02, 0x55}, multihash.SumSHA256([]byte("x"))...)
	if _, err := FromBytes(raw); err == nil {
		t.Error("version 2 should be rejected")
	}
}

func TestEncodeBases(t *testing.T) {
	c := Sum(multicodec.Raw, []byte("bases"))
	for _, e := range []multibase.Encoding{multibase.Base32, multibase.Base58BTC, multibase.Base16, multibase.Base64URL} {
		s, err := c.Encode(e)
		if err != nil {
			t.Fatalf("Encode(%s): %v", e.Name(), err)
		}
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%s form): %v", e.Name(), err)
		}
		if !back.Equal(c) {
			t.Errorf("%s round trip failed", e.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Sum(multicodec.Raw, []byte("same"))
	b := Sum(multicodec.Raw, []byte("same"))
	if !a.Equal(b) {
		t.Error("same content must produce the same CID")
	}
	cDiff := Sum(multicodec.DagPB, []byte("same"))
	if a.Equal(cDiff) {
		t.Error("different codec must change the CID")
	}
}

func TestExplainMentionsFields(t *testing.T) {
	out := Sum(multicodec.DagPB, []byte("explain")).Explain()
	for _, want := range []string{"version:", "dag-pb", "sha2-256", "32 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain() missing %q:\n%s", want, out)
		}
	}
}

func TestQuickRoundTripBinary(t *testing.T) {
	f := func(data []byte) bool {
		c := Sum(multicodec.Raw, data)
		back, err := FromBytes(c.Bytes())
		return err == nil && back.Equal(c) && back.Verify(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := Sum(multicodec.DagPB, data)
		back, err := Parse(c.String())
		return err == nil && back.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortKeyDistinct(t *testing.T) {
	a := Sum(multicodec.Raw, []byte("a"))
	b := Sum(multicodec.Raw, []byte("b"))
	if bytes.Equal(a.SortKey(), b.SortKey()) {
		t.Error("distinct CIDs must have distinct sort keys")
	}
	if Less(a, b) == Less(b, a) {
		t.Error("Less must totally order distinct CIDs")
	}
}
