// Package cid implements Content Identifiers (§2.1, Figure 1), the base
// primitive that decouples a name for content from its storage location.
//
// A CIDv1 is <multibase prefix>(<cid-version varint> <multicodec varint>
// <multihash>). A CIDv0 is the bare base58btc encoding of a sha2-256
// multihash (it always starts with "Qm").
package cid

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/multibase"
	"repro/internal/multicodec"
	"repro/internal/multihash"
	"repro/internal/varint"
)

// Version is a CID version number. Two exist: v0 and v1.
type Version uint64

// Supported CID versions.
const (
	V0 Version = 0
	V1 Version = 1
)

// Cid is an immutable content identifier. The zero value is invalid;
// use New, Sum or Parse.
type Cid struct {
	version Version
	codec   multicodec.Code
	hash    multihash.Multihash
	// str caches the binary form: for v1 <version><codec><multihash>,
	// for v0 the bare multihash.
	str string
}

// Errors returned by this package.
var (
	ErrInvalid      = errors.New("cid: invalid")
	ErrV0Constraint = errors.New("cid: v0 requires dag-pb sha2-256")
)

// New builds a CID from parts. V0 CIDs are constrained to dag-pb +
// sha2-256 as on the live network.
func New(v Version, codec multicodec.Code, mh multihash.Multihash) (Cid, error) {
	if err := multihash.Validate(mh); err != nil {
		return Cid{}, err
	}
	switch v {
	case V0:
		dec, _ := multihash.Decode(mh)
		if codec != multicodec.DagPB || dec.Code != multicodec.SHA2_256 || dec.Length != 32 {
			return Cid{}, ErrV0Constraint
		}
		return Cid{version: V0, codec: multicodec.DagPB, hash: mh, str: string(mh)}, nil
	case V1:
		buf := varint.Encode(uint64(V1))
		buf = varint.Append(buf, uint64(codec))
		buf = append(buf, mh...)
		return Cid{version: V1, codec: codec, hash: mh, str: string(buf)}, nil
	}
	return Cid{}, fmt.Errorf("%w: version %d", ErrInvalid, v)
}

// Sum builds the CIDv1 of data under the given codec using the default
// sha2-256 multihash, the operation performed when content is imported
// (§3.1 step 1).
func Sum(codec multicodec.Code, data []byte) Cid {
	c, err := New(V1, codec, multihash.SumSHA256(data))
	if err != nil {
		panic(err) // unreachable: inputs are well-formed by construction
	}
	return c
}

// SumV0 builds a CIDv0 of data (dag-pb, sha2-256).
func SumV0(data []byte) Cid {
	c, err := New(V0, multicodec.DagPB, multihash.SumSHA256(data))
	if err != nil {
		panic(err)
	}
	return c
}

// Defined reports whether c holds a parsed CID (as opposed to the zero
// value).
func (c Cid) Defined() bool { return c.str != "" }

// Version returns the CID version.
func (c Cid) Version() Version { return c.version }

// Codec returns the content codec.
func (c Cid) Codec() multicodec.Code { return c.codec }

// Hash returns the multihash component.
func (c Cid) Hash() multihash.Multihash { return c.hash }

// Bytes returns the binary CID (for v0, the bare multihash).
func (c Cid) Bytes() []byte { return []byte(c.str) }

// Equal reports whether two CIDs are identical.
func (c Cid) Equal(o Cid) bool { return c.str == o.str }

// Key returns a string form usable as a map key.
func (c Cid) Key() string { return c.str }

// String renders the canonical text form: base58btc for v0, base32
// multibase for v1 (the "bafy..." strings of Figure 1).
func (c Cid) String() string {
	switch c.version {
	case V0:
		return multibase.MustEncode(multibase.Base58BTC, []byte(c.str))[1:] // v0 has no multibase prefix
	default:
		return multibase.MustEncode(multibase.Base32, []byte(c.str))
	}
}

// Encode renders the CID in the requested multibase (v1 only).
func (c Cid) Encode(base multibase.Encoding) (string, error) {
	if c.version == V0 {
		if base != multibase.Base58BTC {
			return "", fmt.Errorf("cid: v0 is always base58btc")
		}
		return c.String(), nil
	}
	return multibase.Encode(base, []byte(c.str))
}

// ToV1 returns the CIDv1 equivalent of a CIDv0 (same multihash, dag-pb).
func (c Cid) ToV1() Cid {
	if c.version == V1 {
		return c
	}
	v1, _ := New(V1, multicodec.DagPB, c.hash)
	return v1
}

// Verify reports whether data hashes to this CID — the self-verification
// step every retrieving peer performs (§3.1).
func (c Cid) Verify(data []byte) bool {
	return multihash.Verify(c.hash, data)
}

// Parse decodes a CID from its text form. "Qm..." strings parse as v0;
// anything else must be a valid multibase-wrapped v1.
func Parse(s string) (Cid, error) {
	if len(s) == 46 && strings.HasPrefix(s, "Qm") {
		_, raw, err := multibase.Decode("z" + s)
		if err != nil {
			return Cid{}, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		return FromBytesV0(raw)
	}
	_, raw, err := multibase.Decode(s)
	if err != nil {
		return Cid{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return FromBytes(raw)
}

// FromBytes decodes a binary CIDv1 (or a bare multihash, which is
// interpreted as v0).
func FromBytes(raw []byte) (Cid, error) {
	if len(raw) == 34 && raw[0] == 0x12 && raw[1] == 0x20 {
		return FromBytesV0(raw)
	}
	v, n, err := varint.Decode(raw)
	if err != nil {
		return Cid{}, fmt.Errorf("%w: version: %v", ErrInvalid, err)
	}
	if Version(v) != V1 {
		return Cid{}, fmt.Errorf("%w: unsupported version %d", ErrInvalid, v)
	}
	codec, m, err := varint.Decode(raw[n:])
	if err != nil {
		return Cid{}, fmt.Errorf("%w: codec: %v", ErrInvalid, err)
	}
	mh := raw[n+m:]
	if err := multihash.Validate(mh); err != nil {
		return Cid{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	c := Cid{
		version: V1,
		codec:   multicodec.Code(codec),
		hash:    append(multihash.Multihash(nil), mh...),
	}
	c.str = string(raw)
	return c, nil
}

// FromBytesV0 decodes a bare sha2-256 multihash as a CIDv0.
func FromBytesV0(raw []byte) (Cid, error) {
	mh := append(multihash.Multihash(nil), raw...)
	return New(V0, multicodec.DagPB, mh)
}

// Less orders CIDs by their binary form (useful for deterministic
// iteration in tests and the DHT).
func Less(a, b Cid) bool { return a.str < b.str }

// SortKey returns the binary form used for DHT indexing: CIDs and
// PeerIDs "reside in a common 256-bit key space by using the SHA256
// hashes of their binary representations as indexing keys" (§2.3).
func (c Cid) SortKey() []byte { return []byte(c.str) }

// Explain returns a human-readable field breakdown mirroring Figure 1,
// used by the quickstart example and cmd/ipfs-node.
func (c Cid) Explain() string {
	var b bytes.Buffer
	dec, _ := multihash.Decode(c.hash)
	fmt.Fprintf(&b, "CID %s\n", c.String())
	fmt.Fprintf(&b, "  version:   %d\n", c.version)
	fmt.Fprintf(&b, "  codec:     %s (0x%x)\n", c.codec, uint64(c.codec))
	fmt.Fprintf(&b, "  hash func: %s (0x%x)\n", dec.Code, uint64(dec.Code))
	fmt.Fprintf(&b, "  hash len:  %d bytes\n", dec.Length)
	fmt.Fprintf(&b, "  digest:    %x\n", dec.Digest)
	return b.String()
}
