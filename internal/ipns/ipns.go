// Package ipns implements the InterPlanetary Name System of §3.3:
// mutable pointers published under the hash of the publisher's public
// key. An IPNS record maps that immutable name to a (mutable) content
// CID, signed by the corresponding private key and sequenced so newer
// versions supersede older ones.
package ipns

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/varint"
)

// DefaultValidity is how long a record remains valid after signing.
const DefaultValidity = 24 * time.Hour

// Record is a signed, sequenced name→CID mapping.
type Record struct {
	Value      cid.Cid // the CID the name currently points to
	Seq        uint64
	ValidUntil time.Time
	PublicKey  ed25519.PublicKey
	Signature  []byte
}

// Errors returned by this package.
var (
	ErrMalformed    = errors.New("ipns: malformed record")
	ErrBadSignature = errors.New("ipns: bad signature")
	ErrWrongName    = errors.New("ipns: record does not belong to name")
	ErrExpired      = errors.New("ipns: record expired")
)

// Name returns the DHT key for a publisher's IPNS records: derived from
// the PeerID (the hash of the public key, §3.3).
func Name(id peer.ID) []byte {
	return append([]byte("/ipns/"), []byte(id)...)
}

// signable returns the byte string covered by the signature.
func signable(value cid.Cid, seq uint64, validUntil time.Time) []byte {
	out := []byte("ipns-record:")
	out = appendBytes(out, value.Bytes())
	out = varint.Append(out, seq)
	out = varint.Append(out, uint64(validUntil.UnixNano()))
	return out
}

// NewRecord creates and signs a record pointing the identity's name at
// value. validity <= 0 selects the 24 h default.
func NewRecord(ident peer.Identity, value cid.Cid, seq uint64, now time.Time, validity time.Duration) Record {
	if validity <= 0 {
		validity = DefaultValidity
	}
	// Varints carry at most 63 bits; sequence numbers are counters and
	// never approach that in practice.
	seq &= 1<<63 - 1
	until := now.Add(validity)
	return Record{
		Value:      value,
		Seq:        seq,
		ValidUntil: until,
		PublicKey:  ident.Public,
		Signature:  ident.Sign(signable(value, seq, until)),
	}
}

// Validate checks that the record is well-signed, belongs to name, and
// has not expired at time now.
func (r Record) Validate(name []byte, now time.Time) error {
	if len(r.PublicKey) != ed25519.PublicKeySize {
		return ErrMalformed
	}
	owner := peer.IDFromPublicKey(r.PublicKey)
	if string(Name(owner)) != string(name) {
		return ErrWrongName
	}
	if err := peer.Verify(owner, r.PublicKey, signable(r.Value, r.Seq, r.ValidUntil), r.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if now.After(r.ValidUntil) {
		return ErrExpired
	}
	return nil
}

// Marshal encodes the record for DHT storage.
func (r Record) Marshal() []byte {
	out := appendBytes(nil, r.Value.Bytes())
	out = varint.Append(out, r.Seq)
	out = varint.Append(out, uint64(r.ValidUntil.UnixNano()))
	out = appendBytes(out, r.PublicKey)
	out = appendBytes(out, r.Signature)
	return out
}

// Unmarshal decodes a record.
func Unmarshal(data []byte) (Record, error) {
	var r Record
	cb, rest, err := readBytes(data)
	if err != nil {
		return r, fmt.Errorf("%w: value: %v", ErrMalformed, err)
	}
	if r.Value, err = cid.FromBytes(cb); err != nil {
		return r, fmt.Errorf("%w: cid: %v", ErrMalformed, err)
	}
	seq, n, err := varint.Decode(rest)
	if err != nil {
		return r, fmt.Errorf("%w: seq: %v", ErrMalformed, err)
	}
	r.Seq = seq
	rest = rest[n:]
	ts, n, err := varint.Decode(rest)
	if err != nil {
		return r, fmt.Errorf("%w: validity: %v", ErrMalformed, err)
	}
	r.ValidUntil = time.Unix(0, int64(ts))
	rest = rest[n:]
	pk, rest, err := readBytes(rest)
	if err != nil {
		return r, fmt.Errorf("%w: key: %v", ErrMalformed, err)
	}
	r.PublicKey = ed25519.PublicKey(append([]byte(nil), pk...))
	sig, rest, err := readBytes(rest)
	if err != nil {
		return r, fmt.Errorf("%w: sig: %v", ErrMalformed, err)
	}
	r.Signature = append([]byte(nil), sig...)
	if len(rest) != 0 {
		return r, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return r, nil
}

// ValidatorFor returns a DHT validator callback that accepts only
// well-formed, correctly-signed, unexpired records for the name they
// are stored under.
func ValidatorFor(now func() time.Time) func(key, data []byte) error {
	if now == nil {
		now = time.Now
	}
	return func(key, data []byte) error {
		r, err := Unmarshal(data)
		if err != nil {
			return err
		}
		return r.Validate(key, now())
	}
}

func appendBytes(dst, b []byte) []byte {
	dst = varint.Append(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	n, used, err := varint.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	data = data[used:]
	if uint64(len(data)) < n {
		return nil, nil, errors.New("truncated")
	}
	return data[:n], data[n:], nil
}
