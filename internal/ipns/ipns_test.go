package ipns

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cid"
	"repro/internal/multicodec"
	"repro/internal/peer"
)

var epoch = time.Date(2022, 1, 2, 0, 0, 0, 0, time.UTC)

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func TestRecordRoundTrip(t *testing.T) {
	ident := testIdentity(1)
	v := cid.Sum(multicodec.DagPB, []byte("website v1"))
	r := NewRecord(ident, v, 3, epoch, 0)
	back, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Value.Equal(v) || back.Seq != 3 {
		t.Errorf("round trip = %+v", back)
	}
	if err := back.Validate(Name(ident.ID), epoch.Add(time.Hour)); err != nil {
		t.Errorf("Validate after round trip: %v", err)
	}
}

func TestValidateRejectsWrongName(t *testing.T) {
	ident, other := testIdentity(1), testIdentity(2)
	r := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("x")), 1, epoch, 0)
	if err := r.Validate(Name(other.ID), epoch); err != ErrWrongName {
		t.Errorf("err = %v, want ErrWrongName", err)
	}
}

func TestValidateRejectsTamperedValue(t *testing.T) {
	ident := testIdentity(3)
	r := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("v1")), 1, epoch, 0)
	r.Value = cid.Sum(multicodec.Raw, []byte("evil"))
	if err := r.Validate(Name(ident.ID), epoch); err == nil {
		t.Error("tampered value should fail validation")
	}
}

func TestValidateRejectsExpired(t *testing.T) {
	ident := testIdentity(4)
	r := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("x")), 1, epoch, time.Hour)
	if err := r.Validate(Name(ident.ID), epoch.Add(2*time.Hour)); err != ErrExpired {
		t.Errorf("err = %v, want ErrExpired", err)
	}
}

func TestValidateRejectsGarbageKey(t *testing.T) {
	r := Record{}
	if err := r.Validate([]byte("name"), epoch); err != ErrMalformed {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	ident := testIdentity(5)
	good := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("x")), 1, epoch, 0).Marshal()
	for _, cut := range []int{0, 1, 5, len(good) / 2, len(good) - 1} {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	if _, err := Unmarshal(append(good, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestValidatorFor(t *testing.T) {
	ident := testIdentity(6)
	now := epoch
	validator := ValidatorFor(func() time.Time { return now })
	r := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("site")), 1, epoch, time.Hour)
	if err := validator(Name(ident.ID), r.Marshal()); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if err := validator(Name(testIdentity(7).ID), r.Marshal()); err == nil {
		t.Error("record under wrong name accepted")
	}
	now = epoch.Add(2 * time.Hour)
	if err := validator(Name(ident.ID), r.Marshal()); err == nil {
		t.Error("expired record accepted")
	}
	if err := validator(Name(ident.ID), []byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestMutabilityViaSequence(t *testing.T) {
	// The §3.3 workflow: the name stays fixed while the value changes.
	ident := testIdentity(8)
	name := Name(ident.ID)
	v1 := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("v1")), 1, epoch, 0)
	v2 := NewRecord(ident, cid.Sum(multicodec.Raw, []byte("v2")), 2, epoch, 0)
	if err := v1.Validate(name, epoch); err != nil {
		t.Fatal(err)
	}
	if err := v2.Validate(name, epoch); err != nil {
		t.Fatal(err)
	}
	if v2.Seq <= v1.Seq {
		t.Error("newer records must carry higher sequence numbers")
	}
	if v1.Value.Equal(v2.Value) {
		t.Error("values should differ across updates")
	}
}

func TestQuickRoundTripValidate(t *testing.T) {
	ident := testIdentity(9)
	f := func(content []byte, seq uint64) bool {
		seq &= 1<<63 - 1 // spec limits varints to 63 bits
		r := NewRecord(ident, cid.Sum(multicodec.Raw, content), seq, epoch, 0)
		back, err := Unmarshal(r.Marshal())
		if err != nil {
			return false
		}
		return back.Validate(Name(ident.ID), epoch) == nil && back.Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
