// Package peer implements peer identity (§2.2): every peer is
// identified by a PeerID, the multihash of its public key. The PeerID is
// used when establishing a secure channel to verify that the key
// securing the channel is the key that identifies the peer.
package peer

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/multibase"
	"repro/internal/multicodec"
	"repro/internal/multihash"
)

// ID is a PeerID: the multihash of the peer's public key, stored as a
// string so it can key maps.
type ID string

// Identity is a peer's key pair plus its derived ID.
type Identity struct {
	ID      ID
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Errors returned by this package.
var (
	ErrBadSignature = errors.New("peer: bad signature")
	ErrKeyMismatch  = errors.New("peer: public key does not match PeerID")
)

// NewIdentity generates a fresh ed25519 identity using the provided
// randomness source. Passing a seeded *rand.Rand makes network
// populations reproducible; pass nil for crypto-quality randomness.
func NewIdentity(rng *rand.Rand) (Identity, error) {
	var (
		pub  ed25519.PublicKey
		priv ed25519.PrivateKey
		err  error
	)
	if rng == nil {
		pub, priv, err = ed25519.GenerateKey(nil)
	} else {
		pub, priv, err = ed25519.GenerateKey(rngReader{rng})
	}
	if err != nil {
		return Identity{}, fmt.Errorf("peer: generating key: %w", err)
	}
	return Identity{ID: IDFromPublicKey(pub), Public: pub, private: priv}, nil
}

// MustNewIdentity is NewIdentity for tests; it panics on error.
func MustNewIdentity(rng *rand.Rand) Identity {
	id, err := NewIdentity(rng)
	if err != nil {
		panic(err)
	}
	return id
}

type rngReader struct{ r *rand.Rand }

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.r.Intn(256))
	}
	return len(p), nil
}

// IDFromPublicKey derives the PeerID: the sha2-256 multihash of the
// public key bytes.
func IDFromPublicKey(pub ed25519.PublicKey) ID {
	return ID(multihash.SumSHA256(pub))
}

// Sign signs msg with the identity's private key.
func (id Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.private, msg)
}

// Verify checks that sig over msg was produced by the holder of pub,
// and that pub is the key identified by expected.
func Verify(expected ID, pub ed25519.PublicKey, msg, sig []byte) error {
	if IDFromPublicKey(pub) != expected {
		return ErrKeyMismatch
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Multihash returns the ID's underlying multihash bytes.
func (id ID) Multihash() multihash.Multihash { return multihash.Multihash(id) }

// DHTKey returns the 256-bit key under which this peer is indexed in the
// DHT: the SHA256 of its binary representation (§2.3).
func (id ID) DHTKey() []byte {
	mh := multihash.SumSHA256([]byte(id))
	dec, _ := multihash.Decode(mh)
	return dec.Digest
}

// String renders the ID in base58btc, the familiar "Qm..."-style form.
func (id ID) String() string {
	if id == "" {
		return "<nil-peer>"
	}
	return multibase.MustEncode(multibase.Base58BTC, []byte(id))[1:]
}

// Short returns a truncated form for logs.
func (id ID) Short() string {
	s := id.String()
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

// ParseID decodes the base58btc text form of a PeerID.
func ParseID(s string) (ID, error) {
	_, raw, err := multibase.Decode("z" + s)
	if err != nil {
		return "", fmt.Errorf("peer: parsing id: %w", err)
	}
	if err := multihash.Validate(raw); err != nil {
		return "", fmt.Errorf("peer: id is not a multihash: %w", err)
	}
	return ID(raw), nil
}

// IPNSKeyCid returns the CID form of the peer's public key hash used by
// IPNS ("the CID of the publisher's public key", §3.3). It uses the
// libp2p-key codec.
func (id ID) IPNSKeyCid() multicodec.Code { return multicodec.Libp2pKey }
