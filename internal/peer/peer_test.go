package peer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityDeterministicWithSeed(t *testing.T) {
	a := MustNewIdentity(rand.New(rand.NewSource(7)))
	b := MustNewIdentity(rand.New(rand.NewSource(7)))
	if a.ID != b.ID {
		t.Error("same seed should yield the same identity")
	}
	c := MustNewIdentity(rand.New(rand.NewSource(8)))
	if a.ID == c.ID {
		t.Error("different seeds should yield different identities")
	}
}

func TestIDFromPublicKey(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(1)))
	if IDFromPublicKey(id.Public) != id.ID {
		t.Error("ID must be the multihash of the public key")
	}
}

func TestSignVerify(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(2)))
	msg := []byte("provider record")
	sig := id.Sign(msg)
	if err := Verify(id.ID, id.Public, msg, sig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Tampered message.
	if err := Verify(id.ID, id.Public, []byte("other"), sig); err != ErrBadSignature {
		t.Errorf("tampered msg: err = %v, want ErrBadSignature", err)
	}
	// Wrong key for the claimed ID: channel security check of §2.2.
	other := MustNewIdentity(rand.New(rand.NewSource(3)))
	if err := Verify(id.ID, other.Public, msg, other.Sign(msg)); err != ErrKeyMismatch {
		t.Errorf("impostor key: err = %v, want ErrKeyMismatch", err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(4)))
	s := id.ID.String()
	back, err := ParseID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id.ID {
		t.Errorf("ParseID(String()) = %s, want %s", back, id.ID)
	}
}

func TestParseIDErrors(t *testing.T) {
	if _, err := ParseID("not!base58"); err == nil {
		t.Error("invalid base58 should fail")
	}
	if _, err := ParseID("111"); err == nil {
		t.Error("non-multihash should fail")
	}
}

func TestDHTKey(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(5)))
	k := id.ID.DHTKey()
	if len(k) != 32 {
		t.Errorf("DHT key length = %d, want 32 (256-bit keyspace)", len(k))
	}
	other := MustNewIdentity(rand.New(rand.NewSource(6)))
	k2 := other.ID.DHTKey()
	same := true
	for i := range k {
		if k[i] != k2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct peers must map to distinct DHT keys")
	}
}

func TestShort(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(9)))
	if len(id.ID.Short()) != 8 {
		t.Errorf("Short() = %q", id.ID.Short())
	}
	if ID("").String() != "<nil-peer>" {
		t.Error("zero ID should print a placeholder")
	}
}

func TestQuickSignVerify(t *testing.T) {
	id := MustNewIdentity(rand.New(rand.NewSource(10)))
	f := func(msg []byte) bool {
		return Verify(id.ID, id.Public, msg, id.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
