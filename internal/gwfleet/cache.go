package gwfleet

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SharedCache is the fleet-wide cache tier every gateway instance
// consults between its own nginx cache and the P2P origin. It holds
// three maps with distinct jobs:
//
//   - objects: a byte-bounded LRU over assembled responses, so a fetch
//     paid by one instance serves the whole fleet;
//   - providers: provider records learned by past retrievals, with a
//     TTL, so repeat retrievals skip the routing lookup entirely (the
//     lookup half of origin RPC amplification);
//   - negative: CIDs the origin definitively failed to resolve, with a
//     TTL, so a flood of requests for missing content costs the fleet
//     exactly one origin lookup per TTL window. A publish for the CID
//     invalidates the entry immediately (Invalidate).
//
// All methods are safe for concurrent use; expiry is judged against the
// simulated clock so event-driven scenarios age entries correctly.
type SharedCache struct {
	src simtime.Source

	objects *byteLRU

	mu        sync.Mutex
	negative  map[string]time.Time // CID key -> expiry
	providers map[string]provEntry // CID key -> providers + expiry

	negTTL  time.Duration
	provTTL time.Duration

	objHits, objMisses *telemetry.Counter
	negHits            *telemetry.Counter
	provHits           *telemetry.Counter
}

type provEntry struct {
	infos  []wire.PeerInfo
	expiry time.Time
}

// NewSharedCache builds the shared tier. Zero TTLs select the defaults
// (negative 1 min, providers 10 min); reg may be nil for an unmetered
// cache.
func NewSharedCache(capacityBytes int64, negTTL, provTTL time.Duration, src simtime.Source, reg *telemetry.Registry) *SharedCache {
	if src == nil {
		src = simtime.BaseSource{}
	}
	if negTTL <= 0 {
		negTTL = time.Minute
	}
	if provTTL <= 0 {
		provTTL = 10 * time.Minute
	}
	return &SharedCache{
		src:       src,
		objects:   newByteLRU(capacityBytes),
		negative:  make(map[string]time.Time),
		providers: make(map[string]provEntry),
		negTTL:    negTTL,
		provTTL:   provTTL,
		objHits:   reg.Counter("gwfleet_shared_object", "result", "hit"),
		objMisses: reg.Counter("gwfleet_shared_object", "result", "miss"),
		negHits:   reg.Counter("gwfleet_negative_hits"),
		provHits:  reg.Counter("gwfleet_provider_hits"),
	}
}

// GetObject returns the cached assembled response for key, if any.
func (c *SharedCache) GetObject(key string) ([]byte, bool) {
	data, ok := c.objects.get(key)
	if ok {
		c.objHits.Inc()
	} else {
		c.objMisses.Inc()
	}
	return data, ok
}

// PutObject caches an assembled response.
func (c *SharedCache) PutObject(key string, data []byte) { c.objects.put(key, data) }

// ObjectBytes returns the current object-cache occupancy.
func (c *SharedCache) ObjectBytes() int64 { return c.objects.usedBytes() }

// KnownMissing reports whether c is inside a negative-cache window:
// the origin failed to resolve it recently and no publish has
// invalidated the entry since.
func (c *SharedCache) KnownMissing(root cid.Cid) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.negative[root.Key()]
	if !ok {
		return false
	}
	if c.src.Now().After(exp) {
		delete(c.negative, root.Key())
		return false
	}
	c.negHits.Inc()
	return true
}

// NoteMissing records a definitive origin miss for root, opening a
// negative-cache window of the configured TTL.
func (c *SharedCache) NoteMissing(root cid.Cid) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.negative[root.Key()] = c.src.Now().Add(c.negTTL)
}

// Invalidate drops the negative entry for root — called when the fleet
// learns the content now exists (a publish or a pin), so availability
// is not delayed by a stale window.
func (c *SharedCache) Invalidate(root cid.Cid) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.negative, root.Key())
}

// Providers returns unexpired cached provider records for root.
func (c *SharedCache) Providers(root cid.Cid) []wire.PeerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.providers[root.Key()]
	if !ok {
		return nil
	}
	if c.src.Now().After(e.expiry) {
		delete(c.providers, root.Key())
		return nil
	}
	c.provHits.Inc()
	return e.infos
}

// PutProviders caches provider records learned from a lookup or a
// successful retrieval.
func (c *SharedCache) PutProviders(root cid.Cid, infos []wire.PeerInfo) {
	if len(infos) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.providers[root.Key()] = provEntry{
		infos:  append([]wire.PeerInfo(nil), infos...),
		expiry: c.src.Now().Add(c.provTTL),
	}
}

// sweepLocked drops expired negative/provider entries once the maps
// grow past a bound, keeping memory proportional to the live set.
func (c *SharedCache) sweepLocked() {
	const sweepAt = 4096
	if len(c.negative)+len(c.providers) < sweepAt {
		return
	}
	now := c.src.Now()
	for k, exp := range c.negative {
		if now.After(exp) {
			delete(c.negative, k)
		}
	}
	for k, e := range c.providers {
		if now.After(e.expiry) {
			delete(c.providers, k)
		}
	}
}

// byteLRU is a byte-bounded LRU over opaque values, the same shape as
// the gateway's per-instance nginx cache but shared fleet-wide.
type byteLRU struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	order   *list.List // front = most recently used; values are string keys
	entries map[string]*lruVal
}

type lruVal struct {
	data []byte
	elem *list.Element
}

func newByteLRU(capBytes int64) *byteLRU {
	return &byteLRU{cap: capBytes, order: list.New(), entries: make(map[string]*lruVal)}
}

func (c *byteLRU) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e.elem)
	return e.data, true
}

func (c *byteLRU) put(key string, data []byte) {
	if int64(len(data)) > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		return
	}
	for c.used+int64(len(data)) > c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		k := oldest.Value.(string)
		c.used -= int64(len(c.entries[k].data))
		delete(c.entries, k)
		c.order.Remove(oldest)
	}
	c.entries[key] = &lruVal{data: data, elem: c.order.PushFront(key)}
	c.used += int64(len(data))
}

func (c *byteLRU) usedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
