// Package gwfleet scales the single HTTP gateway of §3.4 to a fleet:
// consistent-hash request placement over N gateway instances (Ring), a
// fleet-shared cache tier between the per-instance nginx caches and
// the P2P origin (SharedCache: assembled objects, provider records,
// and negative entries for known-missing CIDs), and admission control
// that sheds excess load with 503 + Retry-After instead of letting a
// flash crowd melt the origin. All fleet metrics report through the
// internal/telemetry registry; the viral-CID scenario in
// internal/experiments measures the fleet against the paper's Table 5
// gateway tiers at 100x steady-state load.
package gwfleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cid"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SharedCacheLatency models the intra-fleet hop to the shared cache
// tier: one LAN round trip, far below the node-store tier's 8 ms.
const SharedCacheLatency = 2 * time.Millisecond

// ErrKnownMissing marks a request answered from the negative cache:
// the origin definitively failed for this CID inside the current TTL
// window, so the fleet fails fast without another origin lookup.
var ErrKnownMissing = errors.New("gwfleet: CID known missing (negative cache)")

// ErrShed marks a request rejected by admission control.
var ErrShed = errors.New("gwfleet: shed (fleet over capacity)")

// Config tunes a Fleet.
type Config struct {
	// VNodes is the virtual-node count per instance on the placement
	// ring (default DefaultVNodes).
	VNodes int
	// Spill is how many ring successors a request may overflow to when
	// the owning instance is shedding (default 1; 0 disables spill).
	Spill int
	// LocalCacheBytes bounds each instance's nginx cache (default 64 MiB).
	LocalCacheBytes int64
	// SharedCacheBytes bounds the fleet-shared object cache (default 256 MiB).
	SharedCacheBytes int64
	// NegativeTTL bounds how long a known-missing CID is refused without
	// consulting the origin (default 1 min).
	NegativeTTL time.Duration
	// ProviderTTL bounds the shared provider-record cache (default 10 min).
	ProviderTTL time.Duration
	// MaxInflight is the per-instance concurrent-request bound; requests
	// beyond it count as queued (default 32).
	MaxInflight int
	// QueueHigh and QueueLow are the queue-depth watermarks: shedding
	// starts when an instance's queue depth reaches QueueHigh and stops
	// once it drains to QueueLow (defaults 16 / 4).
	QueueHigh, QueueLow int
	// RetryAfter is the advisory client backoff attached to shed
	// responses (default 1 s).
	RetryAfter time.Duration
	// Time is the unified time surface (the event scheduler in
	// simulated scenarios). Nil selects real time.
	Time simtime.Source
	// Registry receives the fleet metrics; nil leaves them unmetered.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Spill == 0 {
		c.Spill = 1
	}
	if c.Spill < 0 {
		c.Spill = 0
	}
	if c.LocalCacheBytes <= 0 {
		c.LocalCacheBytes = 64 << 20
	}
	if c.SharedCacheBytes <= 0 {
		c.SharedCacheBytes = 256 << 20
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = time.Minute
	}
	if c.ProviderTTL <= 0 {
		c.ProviderTTL = 10 * time.Minute
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 16
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 4
	}
	if c.QueueLow >= c.QueueHigh {
		c.QueueLow = c.QueueHigh / 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Time == nil {
		c.Time = simtime.BaseSource{}
	}
	return c
}

// Response is the fleet-level serving outcome: the underlying gateway
// response plus which instance served, whether the request spilled past
// a shedding owner, and the shed verdict.
type Response struct {
	gateway.Response
	// GW is the instance that served (or, when Shed, the owner that
	// rejected last).
	GW int
	// SharedHit marks a response served from the fleet-shared object
	// cache.
	SharedHit bool
	// NegativeHit marks a fail-fast from the negative cache (Err is
	// ErrKnownMissing).
	NegativeHit bool
	// Spilled marks a response served by a ring successor because the
	// owner was shedding.
	Spilled bool
	// Shed marks a rejected request: every candidate instance was over
	// its watermarks. HTTP callers get 503 with Retry-After.
	Shed bool
	// RetryAfter is the advisory backoff attached when Shed.
	RetryAfter time.Duration
	// Data is the assembled object for successful responses.
	Data []byte
}

// instance is one gateway plus its admission-control state.
type instance struct {
	gw       *gateway.Gateway
	node     *core.Node
	inflight atomic.Int64
	shedding atomic.Bool

	requests *telemetry.Counter
	shed     *telemetry.Counter
}

// Fleet is a consistent-hash gateway fleet over N instances sharing
// one cache tier.
type Fleet struct {
	cfg    Config
	src    simtime.Source
	ring   *Ring
	insts  []*instance
	shared *SharedCache

	tierHits map[gateway.Tier]*telemetry.Counter
	negCtr   *telemetry.Counter
	spillCtr *telemetry.Counter
	shedCtr  *telemetry.Counter
	ttfbHist *telemetry.Hist

	// deterministic scenario-facing tallies (the registry mirrors them)
	nReq, nShed, nSpill, nNeg     atomic.Int64
	nLocal, nShared, nStore, nNet atomic.Int64
	nNetFail                      atomic.Int64

	ttfbMu sync.Mutex
	ttfb   *stats.Sample
}

// New builds a fleet over the given gateway nodes: each node gets a
// gateway instance with its own nginx cache, its content router is
// wrapped with the fleet's shared provider cache, and the placement
// ring spans all instances.
func New(nodes []*core.Node, cfg Config) *Fleet {
	if len(nodes) == 0 {
		panic("gwfleet: fleet over zero nodes")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	shared := NewSharedCache(cfg.SharedCacheBytes, cfg.NegativeTTL, cfg.ProviderTTL, cfg.Time, reg)
	f := &Fleet{
		cfg:    cfg,
		src:    cfg.Time,
		ring:   NewRing(len(nodes), cfg.VNodes),
		shared: shared,
		tierHits: map[gateway.Tier]*telemetry.Counter{
			gateway.TierNginx:     reg.Counter("gwfleet_served", "tier", "nginx"),
			gateway.TierNodeStore: reg.Counter("gwfleet_served", "tier", "nodestore"),
			gateway.TierShared:    reg.Counter("gwfleet_served", "tier", "shared"),
			gateway.TierNetwork:   reg.Counter("gwfleet_served", "tier", "origin"),
		},
		negCtr:   reg.Counter("gwfleet_served", "tier", "negative"),
		spillCtr: reg.Counter("gwfleet_spills"),
		shedCtr:  reg.Counter("gwfleet_shed_total"),
		ttfbHist: reg.Histogram("gwfleet_ttfb_seconds", 0.25),
		ttfb:     stats.NewSample(),
	}
	reg.Gauge("gwfleet_gateways").Set(float64(len(nodes)))
	for i, n := range nodes {
		n.SetRouter(NewCachingRouter(n.Router(), shared))
		f.insts = append(f.insts, &instance{
			gw:       gateway.NewWithSource(n, cfg.LocalCacheBytes, cfg.Time),
			node:     n,
			requests: reg.Counter("gwfleet_requests", "gw", fmt.Sprint(i)),
			shed:     reg.Counter("gwfleet_shed", "gw", fmt.Sprint(i)),
		})
	}
	return f
}

// Size returns the instance count.
func (f *Fleet) Size() int { return len(f.insts) }

// Ring exposes the placement ring.
func (f *Fleet) Ring() *Ring { return f.ring }

// Shared exposes the fleet cache tier.
func (f *Fleet) Shared() *SharedCache { return f.shared }

// Gateway returns instance i's gateway (its access log feeds the Table
// 5 style summaries).
func (f *Fleet) Gateway(i int) *gateway.Gateway { return f.insts[i].gw }

// Node returns instance i's backing node.
func (f *Fleet) Node(i int) *core.Node { return f.insts[i].node }

// InvalidateNegative drops any negative-cache window for root — wired
// to publish events so fresh content is immediately retrievable.
func (f *Fleet) InvalidateNegative(root cid.Cid) { f.shared.Invalidate(root) }

// Fetch serves one request: the CID's ring owner first, spilling to up
// to Config.Spill ring successors while the owner sheds, rejecting with
// Shed when every candidate is over its watermarks.
func (f *Fleet) Fetch(ctx context.Context, req gateway.Request) Response {
	f.nReq.Add(1)
	key := gateway.CacheKey(req)
	candidates := f.ring.Successors(key, 1+f.cfg.Spill)
	for hop, gwIdx := range candidates {
		inst := f.insts[gwIdx]
		release, ok := f.admit(inst)
		if !ok {
			inst.shed.Inc()
			continue
		}
		resp := f.serve(ctx, inst, gwIdx, req, key)
		release()
		resp.Spilled = hop > 0
		if resp.Spilled {
			f.nSpill.Add(1)
			f.spillCtr.Inc()
		}
		f.record(resp)
		return resp
	}
	f.nShed.Add(1)
	f.shedCtr.Inc()
	resp := Response{
		Response:   gateway.Response{Err: ErrShed},
		GW:         candidates[0],
		Shed:       true,
		RetryAfter: f.cfg.RetryAfter,
	}
	return resp
}

// admit applies the per-instance admission control: requests beyond
// MaxInflight count as queue depth; depth >= QueueHigh turns shedding
// on, and it stays on (hysteresis) until depth drains to QueueLow.
func (f *Fleet) admit(inst *instance) (release func(), ok bool) {
	n := inst.inflight.Add(1)
	queued := n - int64(f.cfg.MaxInflight)
	switch {
	case queued >= int64(f.cfg.QueueHigh):
		inst.shedding.Store(true)
	case queued <= int64(f.cfg.QueueLow):
		inst.shedding.Store(false)
	}
	if queued > 0 && inst.shedding.Load() {
		inst.inflight.Add(-1)
		return nil, false
	}
	return func() { inst.inflight.Add(-1) }, true
}

// serve runs the tier cascade on one admitted instance: local nginx +
// node store, then the fleet-shared object cache, then the negative
// cache, then the P2P origin (filling the shared tiers on the way
// back).
func (f *Fleet) serve(ctx context.Context, inst *instance, gwIdx int, req gateway.Request, key string) Response {
	inst.requests.Inc()

	if resp, data, ok := inst.gw.FetchLocal(req); ok {
		// The cache tiers' modelled latencies (0 nginx, 8 ms node store)
		// are slept, not just reported, so fleet TTFB measured on the
		// simulated clock matches the tier model and cache hits hold
		// their admission slot for their true duration.
		f.src.Sleep(ctx, resp.Latency)
		return Response{Response: resp, GW: gwIdx, Data: data}
	}

	if data, ok := f.shared.GetObject(key); ok {
		f.src.Sleep(ctx, SharedCacheLatency)
		resp := inst.gw.Inject(req, gateway.TierShared, SharedCacheLatency, data)
		return Response{Response: resp, GW: gwIdx, SharedHit: true, Data: data}
	}

	if f.shared.KnownMissing(req.Cid) {
		f.nNeg.Add(1)
		f.negCtr.Inc()
		return Response{
			Response:    gateway.Response{Tier: gateway.TierNetwork, Err: ErrKnownMissing},
			GW:          gwIdx,
			NegativeHit: true,
		}
	}

	resp, data := inst.gw.FetchData(ctx, req)
	if resp.Err != nil {
		// Only a root-level origin failure is a definitive miss worth a
		// negative window; a bad sub-path under a resolvable root is the
		// client's problem, not the content's absence.
		if req.Path == "" {
			f.shared.NoteMissing(req.Cid)
		}
		return Response{Response: resp, GW: gwIdx}
	}
	f.shared.PutObject(key, data)
	return Response{Response: resp, GW: gwIdx, Data: data}
}

// record tallies a served (non-shed) response.
func (f *Fleet) record(resp Response) {
	if resp.NegativeHit {
		return // tallied at serve time under its own tier
	}
	switch {
	case resp.SharedHit:
		f.nShared.Add(1)
	case resp.Tier == gateway.TierNginx:
		f.nLocal.Add(1)
	case resp.Tier == gateway.TierNodeStore:
		f.nStore.Add(1)
	case resp.Tier == gateway.TierNetwork && resp.Err == nil:
		f.nNet.Add(1)
	default:
		f.nNetFail.Add(1)
	}
	if ctr := f.tierHits[effectiveTier(resp)]; ctr != nil && resp.Err == nil {
		ctr.Inc()
	}
	if resp.Err == nil {
		f.ttfbHist.ObserveDuration(resp.Latency)
		f.ttfbMu.Lock()
		f.ttfb.AddDuration(resp.Latency)
		f.ttfbMu.Unlock()
	}
}

func effectiveTier(resp Response) gateway.Tier {
	if resp.SharedHit {
		return gateway.TierShared
	}
	return resp.Tier
}

// Stats is a point-in-time tally of fleet behaviour.
type Stats struct {
	Requests     int64 // all Fetch calls
	Shed         int64 // rejected by admission control
	Spilled      int64 // served by a ring successor
	LocalHits    int64 // per-instance nginx hits
	SharedHits   int64 // fleet shared-cache hits
	NodeStore    int64 // pinned node-store hits
	OriginFetch  int64 // successful P2P retrievals
	OriginFail   int64 // failed P2P retrievals
	NegativeHits int64 // fail-fasts from the negative cache
}

// Sub returns the tally delta since prev — scenario phases bracket
// their workload with Stats calls to report per-phase behaviour.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Requests:     s.Requests - prev.Requests,
		Shed:         s.Shed - prev.Shed,
		Spilled:      s.Spilled - prev.Spilled,
		LocalHits:    s.LocalHits - prev.LocalHits,
		SharedHits:   s.SharedHits - prev.SharedHits,
		NodeStore:    s.NodeStore - prev.NodeStore,
		OriginFetch:  s.OriginFetch - prev.OriginFetch,
		OriginFail:   s.OriginFail - prev.OriginFail,
		NegativeHits: s.NegativeHits - prev.NegativeHits,
	}
}

// Served counts requests answered with content.
func (s Stats) Served() int64 { return s.LocalHits + s.SharedHits + s.NodeStore + s.OriginFetch }

// CacheHitRate is the fraction of content-answered requests that never
// touched the P2P origin — the fleet-level Table 5 "cached" share.
func (s Stats) CacheHitRate() float64 {
	served := s.Served()
	if served == 0 {
		return 0
	}
	return float64(served-s.OriginFetch) / float64(served)
}

// Stats returns the current tallies.
func (f *Fleet) Stats() Stats {
	return Stats{
		Requests:     f.nReq.Load(),
		Shed:         f.nShed.Load(),
		Spilled:      f.nSpill.Load(),
		LocalHits:    f.nLocal.Load(),
		SharedHits:   f.nShared.Load(),
		NodeStore:    f.nStore.Load(),
		OriginFetch:  f.nNet.Load(),
		OriginFail:   f.nNetFail.Load(),
		NegativeHits: f.nNeg.Load(),
	}
}

// TTFBPercentile returns the given percentile of serving latency
// across all successful responses, in seconds.
func (f *Fleet) TTFBPercentile(p float64) float64 {
	f.ttfbMu.Lock()
	defer f.ttfbMu.Unlock()
	return f.ttfb.Percentile(p)
}

// ServeHTTP implements the fleet's public HTTP face — the same
// GET /ipfs/{CID}[/path] surface as a single gateway, with shed
// requests answered 503 + Retry-After.
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	full := strings.TrimPrefix(r.URL.Path, "/ipfs/")
	if full == r.URL.Path || full == "" {
		http.Error(w, "usage: GET /ipfs/{CID}[/path]", http.StatusBadRequest)
		return
	}
	cidPart, subPath := full, ""
	if i := strings.IndexByte(full, '/'); i >= 0 {
		cidPart, subPath = full[:i], strings.Trim(full[i+1:], "/")
	}
	c, err := cid.Parse(cidPart)
	if err != nil {
		http.Error(w, fmt.Sprintf("invalid CID: %v", err), http.StatusBadRequest)
		return
	}
	resp := f.Fetch(r.Context(), gateway.Request{
		Cid:      c,
		Path:     subPath,
		Time:     f.src.Now(),
		Referrer: r.Referer(),
		UserID:   r.RemoteAddr + "|" + r.UserAgent(),
	})
	switch {
	case resp.Shed:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(resp.RetryAfter.Seconds()+0.5)))
		http.Error(w, "fleet over capacity, retry later", http.StatusServiceUnavailable)
	case resp.Err != nil:
		http.Error(w, fmt.Sprintf("not found: %v", resp.Err), http.StatusNotFound)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Ipfs-Gateway-Tier", effectiveTier(resp).String())
		w.Header().Set("X-Ipfs-Fleet-Gw", fmt.Sprint(resp.GW))
		w.Write(resp.Data)
	}
}
