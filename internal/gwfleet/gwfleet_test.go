package gwfleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/wire"
)

func TestRingPlacement(t *testing.T) {
	const nodes, keys = 8, 20000
	r := NewRing(nodes, 0)

	counts := make([]int, nodes)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		n := r.Place(key)
		if n < 0 || n >= nodes {
			t.Fatalf("Place(%q) = %d, out of range", key, n)
		}
		if again := r.Place(key); again != n {
			t.Fatalf("Place(%q) not deterministic: %d then %d", key, n, again)
		}
		counts[n]++
	}
	// 128 virtual nodes keep the split far from degenerate: every node
	// should own a meaningful share of a uniform keyspace.
	for n, c := range counts {
		if share := float64(c) / keys; share < 0.05 {
			t.Errorf("node %d owns %.1f%% of keys; ring is badly unbalanced", n, 100*share)
		}
	}

	c := cid.SumV0([]byte("some content"))
	if r.PlaceCid(c) != r.Place(c.Key()) {
		t.Error("PlaceCid disagrees with Place on the CID key")
	}

	succ := r.Successors("spill-key", 3)
	if len(succ) != 3 {
		t.Fatalf("Successors returned %d nodes, want 3", len(succ))
	}
	if succ[0] != r.Place("spill-key") {
		t.Error("Successors[0] is not the owner")
	}
	seen := map[int]bool{}
	for _, n := range succ {
		if seen[n] {
			t.Errorf("Successors returned node %d twice", n)
		}
		seen[n] = true
	}
	if got := NewRing(2, 16).Successors("k", 5); len(got) != 2 {
		t.Errorf("Successors capped at ring size: got %d nodes from a 2-ring, want 2", len(got))
	}
}

func TestAdmissionHysteresis(t *testing.T) {
	f := &Fleet{cfg: Config{MaxInflight: 2, QueueHigh: 3, QueueLow: 1}.withDefaults()}
	inst := &instance{}

	// Fill to MaxInflight + QueueHigh - 1: everything admitted.
	var releases []func()
	for i := 0; i < 4; i++ {
		release, ok := f.admit(inst)
		if !ok {
			t.Fatalf("request %d rejected below the high watermark", i)
		}
		releases = append(releases, release)
	}
	// Queue depth reaches QueueHigh: shedding latches.
	if _, ok := f.admit(inst); ok {
		t.Fatal("request admitted at the high watermark; want shed")
	}
	// Hysteresis: one release leaves the queue between the watermarks,
	// so the instance keeps shedding.
	releases[0]()
	if _, ok := f.admit(inst); ok {
		t.Fatal("request admitted while still above the low watermark; want shed")
	}
	// Drain to QueueLow: shedding clears and admission resumes.
	releases[1]()
	if _, ok := f.admit(inst); !ok {
		t.Fatal("request rejected after draining to the low watermark")
	}
}

func TestSharedCacheTTLs(t *testing.T) {
	clock := simtime.NewClock(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
	src := simtime.NewBaseSource(simtime.Base{}, clock.Now)
	c := NewSharedCache(1<<20, time.Minute, 10*time.Minute, src, nil)
	root := cid.SumV0([]byte("missing"))

	if c.KnownMissing(root) {
		t.Fatal("fresh cache reports the CID missing")
	}
	c.NoteMissing(root)
	if !c.KnownMissing(root) {
		t.Fatal("NoteMissing did not open a negative window")
	}
	clock.Advance(59 * time.Second)
	if !c.KnownMissing(root) {
		t.Fatal("negative window closed before its TTL")
	}
	clock.Advance(2 * time.Second)
	if c.KnownMissing(root) {
		t.Fatal("negative window survived past its TTL")
	}

	// A publish invalidates the window immediately, not at TTL expiry.
	c.NoteMissing(root)
	c.Invalidate(root)
	if c.KnownMissing(root) {
		t.Fatal("Invalidate did not close the negative window")
	}

	// Provider records expire on their own, longer TTL.
	infos := []wire.PeerInfo{{}}
	c.PutProviders(root, infos)
	if got := c.Providers(root); len(got) != 1 {
		t.Fatalf("Providers = %d records, want 1", len(got))
	}
	clock.Advance(10*time.Minute + time.Second)
	if got := c.Providers(root); got != nil {
		t.Fatalf("provider record survived past its TTL: %v", got)
	}
}

func TestByteLRUEviction(t *testing.T) {
	lru := newByteLRU(1000)
	lru.put("a", make([]byte, 400))
	lru.put("b", make([]byte, 400))
	if _, ok := lru.get("a"); !ok { // refresh a: b becomes the eviction victim
		t.Fatal("a missing before capacity pressure")
	}
	lru.put("c", make([]byte, 400))
	if _, ok := lru.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := lru.get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if used := lru.usedBytes(); used > 1000 {
		t.Errorf("used %d bytes, capacity 1000", used)
	}
	// Oversized objects are refused outright, not cached.
	lru.put("huge", make([]byte, 2000))
	if _, ok := lru.get("huge"); ok {
		t.Error("object larger than the whole cache was admitted")
	}
}

// TestServeHTTPShed drives the HTTP face of admission control: with
// every candidate instance saturated, the fleet answers 503 with a
// Retry-After hint instead of queueing without bound.
func TestServeHTTPShed(t *testing.T) {
	cfg := Config{MaxInflight: 1, QueueHigh: 1, RetryAfter: 2 * time.Second}.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		src:    cfg.Time,
		ring:   NewRing(2, 16),
		insts:  []*instance{{}, {}},
		shared: NewSharedCache(1<<20, 0, 0, cfg.Time, nil),
		ttfb:   stats.NewSample(),
	}
	// Saturate both instances past the high watermark and latch them.
	for _, inst := range f.insts {
		inst.inflight.Store(int64(cfg.MaxInflight + cfg.QueueHigh))
		inst.shedding.Store(true)
	}

	c := cid.SumV0([]byte("hot content"))
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ipfs/"+c.String(), nil))

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusServiceUnavailable)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	if st := f.Stats(); st.Shed != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v, want 1 request / 1 shed", st)
	}
}
