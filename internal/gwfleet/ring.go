package gwfleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cid"
)

// Ring is a consistent-hash ring placing CIDs onto gateway instances.
// Each instance projects VNodes virtual points onto a 64-bit circle
// (SHA-256 of "name#replica", the same construction every participant
// computes independently), and a CID lands on the first point at or
// clockwise-after its own hash. Virtual nodes smooth the per-instance
// load to within a few percent of uniform, and adding or removing one
// instance only remaps the keys between its points and their
// predecessors — the swift/auklet ring property that lets a fleet
// resize without a global cache flush.
type Ring struct {
	points []ringPoint // sorted ascending by hash
	n      int         // distinct instances
}

type ringPoint struct {
	hash uint64
	node int
}

// DefaultVNodes is the virtual-node count per instance when NewRing is
// given zero: enough to keep max/mean instance load under ~1.1 for
// small fleets.
const DefaultVNodes = 128

// NewRing builds a ring over n instances (named by index) with vnodes
// virtual points each.
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		panic("gwfleet: ring over zero instances")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("gw-%d#%d", node, v))
			r.points = append(r.points, ringPoint{hash: h, node: node})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the instance count.
func (r *Ring) Nodes() int { return r.n }

// Place returns the owning instance for key.
func (r *Ring) Place(key string) int {
	return r.points[r.search(hash64(key))].node
}

// PlaceCid returns the owning instance for a CID.
func (r *Ring) PlaceCid(c cid.Cid) int { return r.Place(c.Key()) }

// Successors returns up to n distinct instances in ring order starting
// at key's owner — the owner first, then the spill-over targets an
// overloaded owner sheds toward (they hold no local cache entry for the
// key but share the fleet cache tier).
func (r *Ring) Successors(key string, n int) []int {
	if n > r.n {
		n = r.n
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	i := r.search(hash64(key))
	for len(out) < n {
		p := r.points[i%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
		i++
	}
	return out
}

// search finds the index of the first point with hash >= h, wrapping to
// 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hash64 maps a key onto the ring circle via the first 8 bytes of its
// SHA-256 — stable across processes, unlike Go's seeded map hash.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
