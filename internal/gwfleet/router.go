package gwfleet

import (
	"context"

	"repro/internal/cid"
	"repro/internal/routing"
	"repro/internal/wire"
)

// CachingRouter wraps a gateway node's content router with the fleet's
// shared provider cache: discovery consults the cache first (a hit
// costs zero routing RPCs fleet-wide), misses delegate to the inner
// router and deposit what the lookup learned, and publishes invalidate
// the negative cache so freshly published content is immediately
// retrievable. Every gateway instance in a Fleet shares one cache, so
// a provider learned by one instance's retrieval serves them all —
// this is what keeps the routing half of origin RPC amplification
// sub-linear under a flash crowd.
type CachingRouter struct {
	inner  routing.Router
	shared *SharedCache
}

var _ routing.Router = (*CachingRouter)(nil)

// NewCachingRouter wraps inner with the fleet's shared provider cache.
func NewCachingRouter(inner routing.Router, shared *SharedCache) *CachingRouter {
	return &CachingRouter{inner: inner, shared: shared}
}

// Name implements routing.Router.
func (r *CachingRouter) Name() string { return "fleet-cached+" + r.inner.Name() }

// Provide implements routing.Router, invalidating any negative-cache
// window for c: the content provably exists now.
func (r *CachingRouter) Provide(ctx context.Context, c cid.Cid) (routing.ProvideResult, error) {
	r.shared.Invalidate(c)
	return r.inner.Provide(ctx, c)
}

// ProvideMany implements routing.Router with the same invalidation.
func (r *CachingRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (routing.ProvideManyResult, error) {
	for _, c := range cids {
		r.shared.Invalidate(c)
	}
	return r.inner.ProvideMany(ctx, cids)
}

// FindProvidersStream implements routing.Router: a provider-cache hit
// yields the cached records as a single batch without any RPC; a miss
// streams from the inner router while teeing every yielded batch into
// the cache.
func (r *CachingRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	if cached := r.shared.Providers(c); len(cached) > 0 {
		return routing.LazyStream(func() ([]wire.PeerInfo, routing.LookupInfo, error) {
			return cached, routing.LookupInfo{}, nil
		})
	}
	seq, st := r.inner.FindProvidersStream(ctx, c)
	tee := func(yield func([]wire.PeerInfo) bool) {
		var learned []wire.PeerInfo
		seq(func(batch []wire.PeerInfo) bool {
			learned = append(learned, batch...)
			return yield(batch)
		})
		if len(learned) > 0 {
			r.shared.PutProviders(c, learned)
		}
	}
	return tee, st
}

// SessionPeers implements routing.Router: cached providers answer for
// free; misses delegate and cache the inner router's answer.
func (r *CachingRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	if cached := r.shared.Providers(c); len(cached) > 0 {
		if len(cached) > n {
			cached = cached[:n]
		}
		return cached, 0, nil
	}
	infos, rpcs, err := r.inner.SessionPeers(ctx, c, n)
	if err == nil {
		r.shared.PutProviders(c, infos)
	}
	return infos, rpcs, err
}

// WantBroadcast implements routing.Router by delegating: the broadcast
// policy belongs to the underlying discovery stack.
func (r *CachingRouter) WantBroadcast() bool { return r.inner.WantBroadcast() }
