package multibase

import (
	"bytes"
	"testing"
	"testing/quick"
)

var allEncodings = []Encoding{Identity, Base16, Base32, Base32Up, Base58BTC, Base64, Base64URL}

func TestRoundTripAllEncodings(t *testing.T) {
	payloads := [][]byte{
		nil,
		{0},
		{0, 0, 1},
		[]byte("hello multibase"),
		bytes.Repeat([]byte{0xff}, 40),
	}
	for _, e := range allEncodings {
		for _, p := range payloads {
			s, err := Encode(e, p)
			if err != nil {
				t.Fatalf("%s: Encode: %v", e.Name(), err)
			}
			ge, gp, err := Decode(s)
			if err != nil {
				t.Fatalf("%s: Decode(%q): %v", e.Name(), s, err)
			}
			if ge != e {
				t.Errorf("%s: decoded encoding = %s", e.Name(), ge.Name())
			}
			if !bytes.Equal(gp, p) && !(len(gp) == 0 && len(p) == 0) {
				t.Errorf("%s: round trip %x -> %x", e.Name(), p, gp)
			}
		}
	}
}

func TestBase58KnownVectors(t *testing.T) {
	// Vectors from the Bitcoin base58 test suite.
	cases := []struct {
		hexIn string
		want  string
	}{
		{"", ""},
		{"61", "2g"},
		{"626262", "a3gV"},
		{"636363", "aPEr"},
		{"00010966776006953d5567439e5e39f86a0d273beed61967f6", "16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM"},
	}
	for _, c := range cases {
		in := make([]byte, len(c.hexIn)/2)
		for i := 0; i < len(in); i++ {
			var b byte
			for j := 0; j < 2; j++ {
				ch := c.hexIn[i*2+j]
				switch {
				case ch >= '0' && ch <= '9':
					b = b<<4 | (ch - '0')
				case ch >= 'a' && ch <= 'f':
					b = b<<4 | (ch - 'a' + 10)
				}
			}
			in[i] = b
		}
		if got := base58Encode(in); got != c.want {
			t.Errorf("base58Encode(%s) = %q, want %q", c.hexIn, got, c.want)
		}
		back, err := base58Decode(c.want)
		if err != nil {
			t.Fatalf("base58Decode(%q): %v", c.want, err)
		}
		if !bytes.Equal(back, in) {
			t.Errorf("base58Decode(%q) = %x, want %x", c.want, back, in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(""); err == nil {
		t.Error("Decode(\"\") should fail")
	}
	if _, _, err := Decode("?abc"); err == nil {
		t.Error("unknown prefix should fail")
	}
	if _, _, err := Decode("z0OIl"); err == nil {
		t.Error("invalid base58 characters should fail")
	}
	if _, _, err := Decode("fzz"); err == nil {
		t.Error("invalid hex should fail")
	}
}

func TestBase32MatchesPaperStyle(t *testing.T) {
	// CIDv1 strings must be lowercase base32 with a 'b' prefix.
	s := MustEncode(Base32, []byte{1, 0x70, 0x12, 0x20})
	if s[0] != 'b' {
		t.Errorf("prefix = %q, want 'b'", s[0])
	}
	for _, r := range s[1:] {
		if r >= 'A' && r <= 'Z' {
			t.Errorf("base32 output contains uppercase: %q", s)
		}
	}
}

func TestQuickBase58RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := base58Decode(base58Encode(data))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(out) == 0
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAllRoundTrip(t *testing.T) {
	f := func(data []byte, pick uint8) bool {
		e := allEncodings[int(pick)%len(allEncodings)]
		s, err := Encode(e, data)
		if err != nil {
			return false
		}
		_, out, err := Decode(s)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(out) == 0
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
