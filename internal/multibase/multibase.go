// Package multibase implements the self-describing base-encoding scheme
// used by CIDs (§2.1, Figure 1 of the paper). A multibase string is a
// single prefix character identifying the encoding followed by the
// encoded payload. The paper's example CID uses base32 ("b").
package multibase

import (
	"encoding/base32"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"math/big"
	"strings"
)

// Encoding identifies a supported multibase encoding by its prefix rune.
type Encoding rune

// Supported encodings. The live network supports 24; we implement the
// ones IPFS actually emits plus hex for debugging.
const (
	Identity  Encoding = '\x00' // raw binary passthrough
	Base16    Encoding = 'f'    // lowercase hex
	Base32    Encoding = 'b'    // RFC4648 lowercase, no padding (CIDv1 default)
	Base32Up  Encoding = 'B'    // RFC4648 uppercase, no padding
	Base58BTC Encoding = 'z'    // Bitcoin alphabet (CIDv0, PeerIDs)
	Base64    Encoding = 'm'    // RFC4648, no padding
	Base64URL Encoding = 'u'    // RFC4648 URL-safe, no padding
)

var (
	base32Lower = base32.StdEncoding.WithPadding(base32.NoPadding)
	base32Upper = base32.StdEncoding.WithPadding(base32.NoPadding)
	base64Std   = base64.StdEncoding.WithPadding(base64.NoPadding)
	base64URL   = base64.URLEncoding.WithPadding(base64.NoPadding)
)

const btcAlphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var btcIndex = func() [256]int8 {
	var idx [256]int8
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < len(btcAlphabet); i++ {
		idx[btcAlphabet[i]] = int8(i)
	}
	return idx
}()

// Name returns the canonical multibase name of the encoding.
func (e Encoding) Name() string {
	switch e {
	case Identity:
		return "identity"
	case Base16:
		return "base16"
	case Base32:
		return "base32"
	case Base32Up:
		return "base32upper"
	case Base58BTC:
		return "base58btc"
	case Base64:
		return "base64"
	case Base64URL:
		return "base64url"
	}
	return fmt.Sprintf("unknown(%q)", rune(e))
}

// Encode encodes data with the given encoding, including the prefix rune.
func Encode(e Encoding, data []byte) (string, error) {
	switch e {
	case Identity:
		return "\x00" + string(data), nil
	case Base16:
		return "f" + hex.EncodeToString(data), nil
	case Base32:
		return "b" + strings.ToLower(base32Lower.EncodeToString(data)), nil
	case Base32Up:
		return "B" + base32Upper.EncodeToString(data), nil
	case Base58BTC:
		return "z" + base58Encode(data), nil
	case Base64:
		return "m" + base64Std.EncodeToString(data), nil
	case Base64URL:
		return "u" + base64URL.EncodeToString(data), nil
	}
	return "", fmt.Errorf("multibase: unsupported encoding %q", rune(e))
}

// MustEncode is Encode for known-good encodings; it panics on error.
func MustEncode(e Encoding, data []byte) string {
	s, err := Encode(e, data)
	if err != nil {
		panic(err)
	}
	return s
}

// Decode parses a multibase string, returning the encoding indicated by
// its prefix and the decoded payload.
func Decode(s string) (Encoding, []byte, error) {
	if len(s) == 0 {
		return 0, nil, fmt.Errorf("multibase: empty string")
	}
	e := Encoding(s[0])
	rest := s[1:]
	switch e {
	case Identity:
		return e, []byte(rest), nil
	case Base16:
		b, err := hex.DecodeString(rest)
		return e, b, wrapErr(err)
	case Base32:
		b, err := base32Lower.DecodeString(strings.ToUpper(rest))
		return e, b, wrapErr(err)
	case Base32Up:
		b, err := base32Upper.DecodeString(rest)
		return e, b, wrapErr(err)
	case Base58BTC:
		b, err := base58Decode(rest)
		return e, b, wrapErr(err)
	case Base64:
		b, err := base64Std.DecodeString(rest)
		return e, b, wrapErr(err)
	case Base64URL:
		b, err := base64URL.DecodeString(rest)
		return e, b, wrapErr(err)
	}
	return 0, nil, fmt.Errorf("multibase: unknown prefix %q", s[0])
}

func wrapErr(err error) error {
	if err != nil {
		return fmt.Errorf("multibase: %w", err)
	}
	return nil
}

func base58Encode(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	// Count leading zero bytes: they map to leading '1' characters.
	zeros := 0
	for zeros < len(data) && data[zeros] == 0 {
		zeros++
	}
	x := new(big.Int).SetBytes(data)
	radix := big.NewInt(58)
	mod := new(big.Int)
	var out []byte
	for x.Sign() > 0 {
		x.DivMod(x, radix, mod)
		out = append(out, btcAlphabet[mod.Int64()])
	}
	for i := 0; i < zeros; i++ {
		out = append(out, '1')
	}
	// Reverse.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return string(out)
}

func base58Decode(s string) ([]byte, error) {
	if len(s) == 0 {
		return nil, nil
	}
	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}
	x := new(big.Int)
	radix := big.NewInt(58)
	for i := zeros; i < len(s); i++ {
		d := btcIndex[s[i]]
		if d < 0 {
			return nil, fmt.Errorf("invalid base58 character %q", s[i])
		}
		x.Mul(x, radix)
		x.Add(x, big.NewInt(int64(d)))
	}
	body := x.Bytes()
	out := make([]byte, zeros+len(body))
	copy(out[zeros:], body)
	return out, nil
}
