package multicodec

import "testing"

func TestCanonicalCodes(t *testing.T) {
	// Codes from the canonical multicodec table; Figure 1 shows dag-pb
	// (0x70) and sha2-256 (0x12).
	cases := []struct {
		code Code
		want uint64
	}{
		{Raw, 0x55},
		{DagPB, 0x70},
		{DagCBOR, 0x71},
		{Libp2pKey, 0x72},
		{SHA2_256, 0x12},
		{SHA2_512, 0x13},
		{Identity, 0x00},
	}
	for _, c := range cases {
		if uint64(c.code) != c.want {
			t.Errorf("%s = 0x%x, want 0x%x", c.code, uint64(c.code), c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := map[Code]string{
		Raw:      "raw",
		DagPB:    "dag-pb",
		SHA2_256: "sha2-256",
		Identity: "identity",
	}
	for code, want := range cases {
		if got := code.String(); got != want {
			t.Errorf("String(0x%x) = %q, want %q", uint64(code), got, want)
		}
	}
	if got := Code(0xbeef).String(); got != "multicodec(0xbeef)" {
		t.Errorf("unknown code String = %q", got)
	}
}

func TestKnownCodec(t *testing.T) {
	for _, c := range []Code{Raw, DagPB, DagCBOR, Libp2pKey, Identity} {
		if !KnownCodec(c) {
			t.Errorf("KnownCodec(%s) = false", c)
		}
	}
	if KnownCodec(Code(0x9999)) {
		t.Error("KnownCodec(0x9999) = true")
	}
}
