// Package multicodec holds the subset of the multicodec table used by
// this implementation. A multicodec code is a varint identifier that
// tells a consumer how the addressed bytes are encoded (§2.1, Figure 1:
// "Multicodec identifier — protobuf, json, cbor, etc.").
package multicodec

import "fmt"

// Code is a multicodec identifier.
type Code uint64

// Codec and multihash codes from the canonical multicodec table.
const (
	Identity  Code = 0x00
	Raw       Code = 0x55 // raw binary
	DagPB     Code = 0x70 // MerkleDAG protobuf (the paper's Fig 1 example)
	DagCBOR   Code = 0x71
	Libp2pKey Code = 0x72 // public key addressed content (IPNS)

	// Multihash function codes (they share the same table).
	IdentityHash Code = 0x00
	SHA2_256     Code = 0x12
	SHA2_512     Code = 0x13
)

var names = map[Code]string{
	Raw:       "raw",
	DagPB:     "dag-pb",
	DagCBOR:   "dag-cbor",
	Libp2pKey: "libp2p-key",
	SHA2_256:  "sha2-256",
	SHA2_512:  "sha2-512",
}

// String returns the canonical name of the code. Identity (0x00) is
// ambiguous between the codec and multihash tables; it prints as
// "identity".
func (c Code) String() string {
	if c == Identity {
		return "identity"
	}
	if n, ok := names[c]; ok {
		return n
	}
	return fmt.Sprintf("multicodec(0x%x)", uint64(c))
}

// KnownCodec reports whether c is a content codec this implementation
// can interpret.
func KnownCodec(c Code) bool {
	switch c {
	case Raw, DagPB, DagCBOR, Libp2pKey, Identity:
		return true
	}
	return false
}
