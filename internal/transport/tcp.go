package transport

import (
	"bufio"
	"context"
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TCPEndpoint is a real transport over net.TCP for local testnets and
// the cmd/ binaries. Connections perform a mutual challenge-response
// handshake so each side verifies that the remote holds the private key
// matching its claimed PeerID (§2.2: "the PeerID is used to verify that
// the public key used to secure the channel is the same as the one used
// to identify the peer").
type TCPEndpoint struct {
	ident peer.Identity
	ln    net.Listener
	addr  multiaddr.Multiaddr

	mu      sync.RWMutex
	handler Handler
	closed  bool
	conns   map[net.Conn]struct{}

	wg sync.WaitGroup
}

// ListenTCP starts a TCP endpoint on hostport (e.g. "127.0.0.1:0").
func ListenTCP(ident peer.Identity, hostport string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	tcpAddr := ln.Addr().(*net.TCPAddr)
	ep := &TCPEndpoint{
		ident: ident,
		ln:    ln,
		addr:  multiaddr.ForPeer(tcpAddr.IP.String(), tcpAddr.Port, ident.ID.String()),
		conns: make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// LocalPeer implements Endpoint.
func (e *TCPEndpoint) LocalPeer() peer.ID { return e.ident.ID }

// Addrs implements Endpoint.
func (e *TCPEndpoint) Addrs() []multiaddr.Multiaddr {
	return []multiaddr.Multiaddr{e.addr}
}

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// track registers an accepted connection for shutdown; it returns false
// if the endpoint is already closed.
func (e *TCPEndpoint) track(c net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.conns[c] = struct{}{}
	return true
}

func (e *TCPEndpoint) untrack(c net.Conn) {
	e.mu.Lock()
	delete(e.conns, c)
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(c)
		}()
	}
}

// handshake messages use the wire.Message container: Key carries the
// challenge nonce, IPNSData the public key, BlockData the signature
// over the peer's own nonce response.

func newNonce() []byte {
	// The nonce needs only to be unpredictable per handshake.
	buf := make([]byte, 16)
	rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(rand.Uint64()))).Read(buf)
	return buf
}

// serveConn performs the listener half of the handshake, then serves
// request frames until the peer disconnects.
func (e *TCPEndpoint) serveConn(c net.Conn) {
	defer c.Close()
	if !e.track(c) {
		return
	}
	defer e.untrack(c)
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	// 1. Receive the dialer's hello with its challenge.
	hello, err := wire.ReadFrame(r)
	if err != nil || hello.Type != wire.TIdentify || len(hello.Peers) == 0 {
		return
	}
	dialerID := hello.Peers[0].ID
	challenge := hello.Key

	// 2. Answer with our identity proof and our own challenge.
	myNonce := newNonce()
	resp := wire.Message{
		Type:      wire.TIdentify,
		Key:       myNonce,
		Peers:     []wire.PeerInfo{{ID: e.ident.ID, Addrs: e.Addrs()}},
		IPNSData:  e.ident.Public,
		BlockData: e.ident.Sign(challenge),
	}
	if err := wire.WriteFrame(w, resp); err != nil || w.Flush() != nil {
		return
	}

	// 3. Verify the dialer's proof.
	proof, err := wire.ReadFrame(r)
	if err != nil || proof.Type != wire.TIdentify {
		return
	}
	if peer.Verify(dialerID, ed25519.PublicKey(proof.IPNSData), myNonce, proof.BlockData) != nil {
		return
	}

	// Serve requests.
	for {
		req, err := wire.ReadFrame(r)
		if err != nil {
			return
		}
		e.mu.RLock()
		h := e.handler
		e.mu.RUnlock()
		var out wire.Message
		if h == nil {
			out = wire.ErrorMessage("no handler installed")
		} else {
			out = h(context.Background(), dialerID, req)
		}
		if err := wire.WriteFrame(w, out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Dial implements Endpoint.
func (e *TCPEndpoint) Dial(ctx context.Context, target peer.ID, addrs []multiaddr.Multiaddr) (Conn, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	var lastErr error = ErrPeerUnreachable
	for _, a := range addrs {
		network, hostport, err := a.DialInfo()
		if err != nil {
			lastErr = err
			continue
		}
		var d net.Dialer
		nc, err := d.DialContext(ctx, network, hostport)
		if err != nil {
			lastErr = fmt.Errorf("%w: %v", ErrDialTimeout, err)
			continue
		}
		conn, err := e.handshakeOut(nc, target)
		if err != nil {
			nc.Close()
			lastErr = err
			continue
		}
		return conn, nil
	}
	return nil, lastErr
}

// handshakeOut performs the dialer half of the handshake.
func (e *TCPEndpoint) handshakeOut(nc net.Conn, target peer.ID) (Conn, error) {
	r := bufio.NewReader(nc)
	w := bufio.NewWriter(nc)
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	defer nc.SetDeadline(time.Time{})

	challenge := newNonce()
	hello := wire.Message{
		Type:  wire.TIdentify,
		Key:   challenge,
		Peers: []wire.PeerInfo{{ID: e.ident.ID, Addrs: e.Addrs()}},
	}
	if err := wire.WriteFrame(w, hello); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	resp, err := wire.ReadFrame(r)
	if err != nil || resp.Type != wire.TIdentify || len(resp.Peers) == 0 {
		return nil, ErrHandshakeTimeout
	}
	remoteID := resp.Peers[0].ID
	if target != "" && remoteID != target {
		return nil, ErrIdentityMismatch
	}
	if peer.Verify(remoteID, ed25519.PublicKey(resp.IPNSData), challenge, resp.BlockData) != nil {
		return nil, ErrIdentityMismatch
	}

	proof := wire.Message{
		Type:      wire.TIdentify,
		IPNSData:  e.ident.Public,
		BlockData: e.ident.Sign(resp.Key),
	}
	if err := wire.WriteFrame(w, proof); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return &tcpConn{nc: nc, r: r, w: w, remote: remoteID}, nil
}

// tcpConn is a dialer-side connection; RPCs are serialized per
// connection (the swarm keeps one connection per peer, and concurrent
// walks query distinct peers).
type tcpConn struct {
	nc     net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	remote peer.ID

	mu     sync.Mutex
	closed bool
}

func (c *tcpConn) RemotePeer() peer.ID { return c.remote }

func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

func (c *tcpConn) Request(ctx context.Context, req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.Message{}, ErrClosed
	}
	// On the real transport the measured wall latency IS the simulated
	// latency (the TCP path runs at simtime.Realtime).
	start := time.Now()
	cat := CategorizeRPC(ctx, req.Type)
	record := func(err error) {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		telemetry.RPC(ctx, req.Type.String(), string(cat), c.remote.String(), time.Since(start), errStr)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(dl)
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.w, req); err != nil {
		record(err)
		return wire.Message{}, err
	}
	if err := c.w.Flush(); err != nil {
		record(err)
		return wire.Message{}, err
	}
	resp, err := wire.ReadFrame(c.r)
	if err != nil {
		record(err)
		return wire.Message{}, err
	}
	record(nil)
	return resp, nil
}
