// Package transport defines the message-oriented transport abstraction
// shared by the in-process network simulator and the real TCP
// transport. Peers exchange request/response wire messages over
// connections whose remote identity is verified against the expected
// PeerID (§2.2).
package transport

import (
	"context"
	"errors"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/wire"
)

// Handler serves inbound requests. It runs once per request and returns
// the response message.
type Handler func(ctx context.Context, from peer.ID, req wire.Message) wire.Message

// Conn is an established, identity-verified connection to a remote peer.
type Conn interface {
	// RemotePeer returns the verified identity of the other end.
	RemotePeer() peer.ID
	// Request performs one RPC. It honours ctx cancellation.
	Request(ctx context.Context, req wire.Message) (wire.Message, error)
	// Close releases the connection.
	Close() error
}

// Endpoint is a peer's attachment to a network (simulated or TCP).
type Endpoint interface {
	// LocalPeer returns the local identity.
	LocalPeer() peer.ID
	// Addrs returns the listen multiaddresses other peers can dial.
	Addrs() []multiaddr.Multiaddr
	// SetHandler installs the inbound request handler. It must be called
	// before the endpoint serves traffic.
	SetHandler(Handler)
	// Dial connects to the peer expected to be target at one of addrs.
	// The connection fails if the remote identity does not match.
	Dial(ctx context.Context, target peer.ID, addrs []multiaddr.Multiaddr) (Conn, error)
	// Close shuts the endpoint down.
	Close() error
}

// RPCCategory labels the network activity one request belongs to, for
// the simulator's network-wide RPC budget report. Callers that launch a
// whole tree of RPCs for one background duty (a republish cycle, a
// snapshot refresh crawl) attach the category to the context so every
// request underneath is attributed to that duty rather than to the
// foreground lookup traffic it would otherwise be mistaken for.
type RPCCategory string

// Budget categories. Untagged requests are classified by message type:
// Bitswap wants, provider-record stores, and routing queries map to
// CatWant, CatPublish and CatLookup respectively.
const (
	CatLookup    RPCCategory = "lookup"    // provider/peer lookups and session consults
	CatPublish   RPCCategory = "publish"   // first-time provider-record publication
	CatRepublish RPCCategory = "republish" // the 12 h record refresh cycle
	CatRefresh   RPCCategory = "refresh"   // snapshot / routing-table refresh crawls
	CatWant      RPCCategory = "want"      // Bitswap WANT-HAVE / WANT-BLOCK traffic
	CatGossip    RPCCategory = "gossip"    // inter-indexer anti-entropy replication
	CatOther     RPCCategory = "other"     // identify, NAT, relay, ...
)

// CategoryForType classifies an untagged request by message type:
// Bitswap wants, provider-record stores, routing queries, crawls and
// indexer gossip each map to their duty's category; the connection
// machinery (identify, NAT dial-backs, relays) stays CatOther. Both
// transports and the telemetry attribution tests share this single
// mapping, so a new message type that should not pollute CatOther has
// exactly one place to be added.
func CategoryForType(t wire.Type) RPCCategory {
	switch t {
	case wire.TWantHave, wire.TWantBlock:
		return CatWant
	case wire.TAddProvider:
		return CatPublish
	case wire.TFindNode, wire.TGetProviders, wire.TGetPeerRecord,
		wire.TPutPeerRecord, wire.TGetIPNS, wire.TPutIPNS:
		return CatLookup
	case wire.TCrawl:
		return CatRefresh
	case wire.TGossip:
		return CatGossip
	}
	return CatOther
}

// CategorizeRPC attributes one request: an explicit context tag wins
// (so a republish cycle's walk and store RPCs all land under
// "republish"), untagged requests classify by message type.
func CategorizeRPC(ctx context.Context, t wire.Type) RPCCategory {
	if cat := RPCCategoryOf(ctx); cat != "" {
		return cat
	}
	return CategoryForType(t)
}

// rpcCategoryKey carries an RPCCategory on the context.
type rpcCategoryKey struct{}

// WithRPCCategory tags the context so every RPC issued under it is
// attributed to cat in the simulator's budget report.
func WithRPCCategory(ctx context.Context, cat RPCCategory) context.Context {
	return context.WithValue(ctx, rpcCategoryKey{}, cat)
}

// RPCCategoryOf returns the category the context carries, or "" when
// untagged (the transport then classifies by message type).
func RPCCategoryOf(ctx context.Context) RPCCategory {
	v, _ := ctx.Value(rpcCategoryKey{}).(RPCCategory)
	return v
}

// freshDialKey marks dials that must not reuse NAT mappings.
type freshDialKey struct{}

// WithFreshDial marks the context so the dial behaves as if coming
// from a previously unseen address — AutoNAT dial-backs use it, since
// their purpose is to test general reachability rather than an
// existing NAT mapping (§2.3).
func WithFreshDial(ctx context.Context) context.Context {
	return context.WithValue(ctx, freshDialKey{}, true)
}

// IsFreshDial reports whether the context carries the fresh-dial mark.
func IsFreshDial(ctx context.Context) bool {
	v, _ := ctx.Value(freshDialKey{}).(bool)
	return v
}

// Common transport errors.
var (
	ErrPeerUnreachable  = errors.New("transport: peer unreachable")
	ErrDialTimeout      = errors.New("transport: dial timed out")
	ErrHandshakeTimeout = errors.New("transport: handshake timed out")
	ErrIdentityMismatch = errors.New("transport: remote identity mismatch")
	ErrClosed           = errors.New("transport: closed")
	// ErrMessageDropped reports a request lost to link faults (the
	// simulator's loss model): the caller waited out its loss-detection
	// timeout and no response arrived. Distinct from ErrPeerUnreachable —
	// the remote is alive, the link ate the message — so budget and
	// telemetry attribution can separate lossy links from dead peers.
	ErrMessageDropped = errors.New("transport: message dropped")
	// ErrPartitioned reports traffic that crossed a scheduled regional
	// partition: nothing is delivered in either direction until the
	// partition heals.
	ErrPartitioned = errors.New("transport: link partitioned")
)
