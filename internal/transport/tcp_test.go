package transport_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/wire"
)

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func newTCPPair(t *testing.T) (*transport.TCPEndpoint, *transport.TCPEndpoint) {
	t.Helper()
	a, err := transport.ListenTCP(testIdentity(1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.ListenTCP(testIdentity(2), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPDialRequest(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(func(_ context.Context, from peer.ID, req wire.Message) wire.Message {
		if from != a.LocalPeer() {
			return wire.ErrorMessage("wrong dialer identity")
		}
		return wire.Message{Type: wire.TAck, BlockData: req.Key}
	})
	conn, err := a.Dial(context.Background(), b.LocalPeer(), b.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.RemotePeer() != b.LocalPeer() {
		t.Error("remote peer mismatch")
	}
	resp, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing, Key: []byte("echo")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TAck || !bytes.Equal(resp.BlockData, []byte("echo")) {
		t.Errorf("resp = %+v", resp)
	}
}

func TestTCPIdentityMismatch(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(func(_ context.Context, _ peer.ID, _ wire.Message) wire.Message {
		return wire.Message{Type: wire.TAck}
	})
	impostor := testIdentity(99).ID
	if _, err := a.Dial(context.Background(), impostor, b.Addrs()); err != transport.ErrIdentityMismatch {
		t.Errorf("err = %v, want ErrIdentityMismatch", err)
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	a, _ := newTCPPair(t)
	ghost := testIdentity(50)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// No addresses at all.
	if _, err := a.Dial(ctx, ghost.ID, nil); err == nil {
		t.Error("dialing with no addresses should fail")
	}
	// A dead port.
	dead := multiaddr.ForPeer("127.0.0.1", 1, ghost.ID.String())
	if _, err := a.Dial(ctx, ghost.ID, []multiaddr.Multiaddr{dead}); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

func TestTCPSequentialRequests(t *testing.T) {
	a, b := newTCPPair(t)
	var served int
	var mu sync.Mutex
	b.SetHandler(func(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
		mu.Lock()
		served++
		mu.Unlock()
		return wire.Message{Type: wire.TAck, Key: req.Key}
	})
	conn, err := a.Dial(context.Background(), b.LocalPeer(), b.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing, Key: []byte{byte(i)}})
			if err != nil || resp.Key[0] != byte(i) {
				t.Errorf("request %d: %v %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	if served != 20 {
		t.Errorf("served = %d", served)
	}
}

func TestTCPLargeBlock(t *testing.T) {
	a, b := newTCPPair(t)
	big := bytes.Repeat([]byte{0xEE}, 512*1024)
	b.SetHandler(func(_ context.Context, _ peer.ID, _ wire.Message) wire.Message {
		return wire.Message{Type: wire.TBlock, BlockData: big}
	})
	conn, err := a.Dial(context.Background(), b.LocalPeer(), b.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Request(context.Background(), wire.Message{Type: wire.TWantBlock})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.BlockData, big) {
		t.Error("large block corrupted in transit")
	}
}

func TestTCPClosedEndpointDial(t *testing.T) {
	a, b := newTCPPair(t)
	a.Close()
	if _, err := a.Dial(context.Background(), b.LocalPeer(), b.Addrs()); err != transport.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestTCPFullNodeNetwork runs a five-node IPFS network over real TCP on
// localhost: bootstrap, publish, retrieve — the cmd/ipfs-node path.
func TestTCPFullNodeNetwork(t *testing.T) {
	const n = 5
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		ident := testIdentity(int64(100 + i))
		ep, err := transport.ListenTCP(ident, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = core.New(ident, ep, core.Config{Mode: dht.ModeServer, Region: "US"})
		t.Cleanup(func() { nodes[i].Close() })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Everyone bootstraps off node 0.
	boot := []wire.PeerInfo{nodes[0].Info()}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(ctx, boot); err != nil {
			t.Fatalf("bootstrap node %d: %v", i, err)
		}
	}
	// Let node 0 learn the others too.
	for i := 1; i < n; i++ {
		nodes[0].DHT().Seed(nodes[i].Info())
	}

	data := bytes.Repeat([]byte("tcp network content "), 2000)
	pub, err := nodes[1].AddAndPublish(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].PublishPeerRecord(ctx); err != nil {
		t.Fatal(err)
	}
	got, res, err := nodes[4].Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch over TCP")
	}
	if res.Provider != nodes[1].ID() {
		t.Errorf("provider = %s", res.Provider.Short())
	}
}
