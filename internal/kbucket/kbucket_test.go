package kbucket

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/peer"
)

func newPeers(n int, seed int64) []peer.ID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]peer.ID, n)
	for i := range out {
		out[i] = peer.MustNewIdentity(rng).ID
	}
	return out
}

func TestXORProperties(t *testing.T) {
	f := func(a, b [32]byte) bool {
		ka, kb := Key(a), Key(b)
		// Symmetry and identity.
		if XOR(ka, kb) != XOR(kb, ka) {
			return false
		}
		return XOR(ka, ka) == Key{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := Key{}
	b := Key{}
	if CommonPrefixLen(a, b) != 256 {
		t.Error("identical keys should share 256 bits")
	}
	b[0] = 0x80
	if got := CommonPrefixLen(a, b); got != 0 {
		t.Errorf("first-bit difference: cpl = %d", got)
	}
	b[0] = 0x01
	if got := CommonPrefixLen(a, b); got != 7 {
		t.Errorf("eighth-bit difference: cpl = %d", got)
	}
	b[0] = 0
	b[5] = 0x10
	if got := CommonPrefixLen(a, b); got != 5*8+3 {
		t.Errorf("cpl = %d, want 43", got)
	}
}

func TestAddAndContains(t *testing.T) {
	peers := newPeers(10, 1)
	table := NewTable(peers[0], 20)
	for _, p := range peers[1:] {
		if !table.Add(p) {
			t.Errorf("Add(%s) rejected", p.Short())
		}
	}
	if table.Len() != 9 {
		t.Errorf("Len = %d, want 9", table.Len())
	}
	for _, p := range peers[1:] {
		if !table.Contains(p) {
			t.Errorf("Contains(%s) = false", p.Short())
		}
	}
	if table.Add(peers[0]) {
		t.Error("table must not add the local peer")
	}
	if table.Contains(peers[0]) {
		t.Error("local peer must not appear")
	}
}

func TestAddIdempotent(t *testing.T) {
	peers := newPeers(3, 2)
	table := NewTable(peers[0], 20)
	table.Add(peers[1])
	table.Add(peers[1])
	if table.Len() != 1 {
		t.Errorf("duplicate Add should not grow the table: %d", table.Len())
	}
}

func TestBucketCapacity(t *testing.T) {
	// With k=2, each bucket holds at most 2 peers.
	peers := newPeers(200, 3)
	table := NewTable(peers[0], 2)
	for _, p := range peers[1:] {
		table.Add(p)
	}
	for cpl, size := range table.BucketSizes() {
		if size > 2 {
			t.Errorf("bucket %d has %d entries, cap 2", cpl, size)
		}
	}
}

func TestRemove(t *testing.T) {
	peers := newPeers(5, 4)
	table := NewTable(peers[0], 20)
	for _, p := range peers[1:] {
		table.Add(p)
	}
	table.Remove(peers[2])
	if table.Contains(peers[2]) {
		t.Error("Remove failed")
	}
	if table.Len() != 3 {
		t.Errorf("Len = %d, want 3", table.Len())
	}
	table.Remove(peers[2]) // removing twice is a no-op
}

func TestNearestPeersOrdering(t *testing.T) {
	peers := newPeers(60, 5)
	table := NewTable(peers[0], 20)
	for _, p := range peers[1:] {
		table.Add(p)
	}
	target := KeyForBytes([]byte("some cid"))
	nearest := table.NearestPeers(target, 10)
	if len(nearest) != 10 {
		t.Fatalf("NearestPeers returned %d", len(nearest))
	}
	for i := 1; i < len(nearest); i++ {
		if Closer(nearest[i], nearest[i-1], target) {
			t.Errorf("NearestPeers not sorted at %d", i)
		}
	}
	// Verify against a brute-force answer over the table's contents.
	all := table.AllPeers()
	SortByDistance(all, target)
	for i := 0; i < 10; i++ {
		if all[i] != nearest[i] {
			t.Errorf("NearestPeers[%d] = %s, brute force = %s", i, nearest[i].Short(), all[i].Short())
		}
	}
}

func TestNearestPeersFewerThanCount(t *testing.T) {
	peers := newPeers(4, 6)
	table := NewTable(peers[0], 20)
	for _, p := range peers[1:] {
		table.Add(p)
	}
	if got := table.NearestPeers(KeyForPeer(peers[1]), 50); len(got) != 3 {
		t.Errorf("NearestPeers = %d peers, want 3", len(got))
	}
}

func TestKeySpaceSharedBetweenCidsAndPeers(t *testing.T) {
	// §2.3: CIDs and PeerIDs are indexed by the SHA256 of their binary
	// representation, so both map into the same 256-bit key space.
	id := newPeers(1, 7)[0]
	if KeyForPeer(id) != KeyForBytes([]byte(id)) {
		t.Error("peer keys must be the SHA256 of the binary PeerID")
	}
}

func TestQuickNearestIsGlobalMinimum(t *testing.T) {
	peers := newPeers(40, 8)
	table := NewTable(peers[0], 20)
	for _, p := range peers[1:] {
		table.Add(p)
	}
	f := func(seed [8]byte) bool {
		target := KeyForBytes(seed[:])
		nearest := table.NearestPeers(target, 1)
		if len(nearest) != 1 {
			return false
		}
		for _, p := range table.AllPeers() {
			if Closer(p, nearest[0], target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDefaultK(t *testing.T) {
	table := NewTable(newPeers(1, 9)[0], 0)
	if table.K() != DefaultK {
		t.Errorf("K = %d, want %d", table.K(), DefaultK)
	}
}
