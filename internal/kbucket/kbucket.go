// Package kbucket implements the Kademlia routing table of §2.3: the
// 256-bit SHA256 key space is split into i = 256 buckets of k = 20
// nodes each, ordered by XOR distance from the local peer.
package kbucket

import (
	"bytes"
	"crypto/sha256"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/peer"
)

// Defaults from §2.3.
const (
	DefaultK   = 20  // bucket size / replication factor
	NumBuckets = 256 // one per bit of the SHA256 key space
	KeyLen     = 32  // bytes
)

// Key is a 256-bit DHT key.
type Key [KeyLen]byte

// KeyForPeer derives the DHT key of a peer: SHA256 of its binary PeerID.
func KeyForPeer(id peer.ID) Key {
	return sha256.Sum256([]byte(id))
}

// KeyForBytes derives the DHT key for arbitrary bytes (e.g. a binary
// CID): CIDs and PeerIDs share the key space via SHA256 (§2.3).
func KeyForBytes(b []byte) Key {
	return sha256.Sum256(b)
}

// XOR returns the Kademlia distance between two keys.
func XOR(a, b Key) Key {
	var out Key
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Less reports whether distance a is smaller than distance b.
func Less(a, b Key) bool { return bytes.Compare(a[:], b[:]) < 0 }

// CommonPrefixLen returns the number of leading bits a and b share,
// which selects the bucket index.
func CommonPrefixLen(a, b Key) int {
	for i := 0; i < KeyLen; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return NumBuckets
}

// Entry is one routing-table slot.
type Entry struct {
	ID peer.ID
}

// Table is a thread-safe Kademlia routing table.
type Table struct {
	mu      sync.RWMutex
	self    Key
	selfID  peer.ID
	k       int
	buckets [NumBuckets][]Entry // index = common prefix length; LRU order, front = oldest
}

// NewTable creates a routing table for the local peer. k <= 0 selects
// the default of 20.
func NewTable(self peer.ID, k int) *Table {
	if k <= 0 {
		k = DefaultK
	}
	return &Table{self: KeyForPeer(self), selfID: self, k: k}
}

// K returns the bucket size.
func (t *Table) K() int { return t.k }

func (t *Table) bucketIndex(key Key) int {
	cpl := CommonPrefixLen(t.self, key)
	if cpl >= NumBuckets {
		cpl = NumBuckets - 1
	}
	return cpl
}

// Add inserts a peer, returning true if it was added or refreshed.
// Full buckets reject newcomers (plain Kademlia keeps long-lived peers,
// which §5.3's churn analysis motivates). The local peer is never added.
func (t *Table) Add(id peer.ID) bool {
	if id == t.selfID {
		return false
	}
	key := KeyForPeer(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.bucketIndex(key)
	bucket := t.buckets[idx]
	for i, e := range bucket {
		if e.ID == id {
			// Move to back: most recently seen.
			t.buckets[idx] = append(append(bucket[:i:i], bucket[i+1:]...), e)
			return true
		}
	}
	if len(bucket) >= t.k {
		return false
	}
	t.buckets[idx] = append(bucket, Entry{ID: id})
	return true
}

// Remove deletes a peer (e.g. after a failed dial).
func (t *Table) Remove(id peer.ID) {
	key := KeyForPeer(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.bucketIndex(key)
	bucket := t.buckets[idx]
	for i, e := range bucket {
		if e.ID == id {
			t.buckets[idx] = append(bucket[:i:i], bucket[i+1:]...)
			return
		}
	}
}

// Contains reports whether id is in the table.
func (t *Table) Contains(id peer.ID) bool {
	key := KeyForPeer(id)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.buckets[t.bucketIndex(key)] {
		if e.ID == id {
			return true
		}
	}
	return false
}

// Len returns the total number of peers in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// NearestPeers returns up to count peers closest to key by XOR
// distance, closest first.
func (t *Table) NearestPeers(key Key, count int) []peer.ID {
	t.mu.RLock()
	all := make([]peer.ID, 0, 64)
	for _, b := range t.buckets {
		for _, e := range b {
			all = append(all, e.ID)
		}
	}
	t.mu.RUnlock()
	SortByDistance(all, key)
	if len(all) > count {
		all = all[:count]
	}
	return all
}

// AllPeers returns every peer in the table. The crawler uses this to
// enumerate k-buckets (§4.1).
func (t *Table) AllPeers() []peer.ID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var all []peer.ID
	for _, b := range t.buckets {
		for _, e := range b {
			all = append(all, e.ID)
		}
	}
	return all
}

// BucketSizes returns the occupancy of each non-empty bucket keyed by
// common-prefix length, for diagnostics.
func (t *Table) BucketSizes() map[int]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[int]int)
	for i, b := range t.buckets {
		if len(b) > 0 {
			out[i] = len(b)
		}
	}
	return out
}

// SortByDistance sorts ids in place by XOR distance from key.
func SortByDistance(ids []peer.ID, key Key) {
	sort.Slice(ids, func(i, j int) bool {
		return Less(XOR(KeyForPeer(ids[i]), key), XOR(KeyForPeer(ids[j]), key))
	})
}

// Closer reports whether a is strictly closer to key than b.
func Closer(a, b peer.ID, key Key) bool {
	return Less(XOR(KeyForPeer(a), key), XOR(KeyForPeer(b), key))
}
