package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/multicodec"
	"repro/internal/testnet"
)

var day = time.Date(2022, 1, 2, 0, 0, 0, 0, time.UTC)

// buildGateway returns a gateway whose node sits in a small clean
// testnet, plus a publisher node holding network-only content.
func buildGateway(t *testing.T, cacheBytes int64) (*Gateway, *testnet.Testnet) {
	t.Helper()
	tn := testnet.Build(testnet.Config{
		N: 30, Seed: 31, Scale: 0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	gwNode := tn.AddVantage("US", 777)
	return New(gwNode, cacheBytes, tn.Base), tn
}

func TestFetchFromNodeStoreThenNginx(t *testing.T) {
	g, _ := buildGateway(t, 1<<20)
	data := bytes.Repeat([]byte("pinned nft "), 500)
	root, err := g.Pin(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First hit: node store (pinned content), ~8ms latency.
	r1 := g.Fetch(ctx, Request{Cid: root, Time: day, Country: "US", UserID: "u1"})
	if r1.Tier != TierNodeStore || r1.Err != nil {
		t.Fatalf("first fetch = %+v", r1)
	}
	if r1.Latency != NodeStoreLatency {
		t.Errorf("node store latency = %v", r1.Latency)
	}
	if r1.Bytes != len(data) {
		t.Errorf("bytes = %d", r1.Bytes)
	}

	// Second hit: nginx cache with zero delay (§6.3).
	r2 := g.Fetch(ctx, Request{Cid: root, Time: day.Add(time.Minute), Country: "US", UserID: "u2"})
	if r2.Tier != TierNginx || r2.Latency != 0 {
		t.Errorf("second fetch = %+v", r2)
	}
}

func TestFetchFromNetwork(t *testing.T) {
	g, tn := buildGateway(t, 1<<20)
	publisher := tn.Nodes[0]
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x5A}, 32*1024)
	pub, err := publisher.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	publisher.PublishPeerRecord(ctx)

	r := g.Fetch(ctx, Request{Cid: pub.Cid, Time: day, Country: "CN", UserID: "u3"})
	if r.Tier != TierNetwork || r.Err != nil {
		t.Fatalf("network fetch = %+v", r)
	}
	if r.Latency < 500*time.Millisecond {
		t.Errorf("network latency = %v, suspiciously fast", r.Latency)
	}
	// Now cached: next request is an nginx hit.
	r2 := g.Fetch(ctx, Request{Cid: pub.Cid, Time: day, Country: "CN", UserID: "u4"})
	if r2.Tier != TierNginx {
		t.Errorf("second fetch tier = %v", r2.Tier)
	}
}

func TestFetchMissingContent(t *testing.T) {
	g, _ := buildGateway(t, 1<<20)
	missing := cid.Sum(multicodec.Raw, []byte("404"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r := g.Fetch(ctx, Request{Cid: missing, Time: day, UserID: "u5"})
	if r.Err == nil {
		t.Error("missing content should error")
	}
	log := g.Log()
	if len(log) != 1 || !log[0].Err() {
		t.Errorf("log = %+v", log)
	}
}

func TestCacheEviction(t *testing.T) {
	g, _ := buildGateway(t, 40*1024) // small nginx cache
	ctx := context.Background()
	a := bytes.Repeat([]byte{1}, 30*1024)
	b := bytes.Repeat([]byte{2}, 30*1024)
	ra, err := g.Pin(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := g.Pin(b)
	if err != nil {
		t.Fatal(err)
	}
	g.Fetch(ctx, Request{Cid: ra, Time: day})
	g.Fetch(ctx, Request{Cid: rb, Time: day}) // evicts a from nginx
	r := g.Fetch(ctx, Request{Cid: ra, Time: day})
	if r.Tier != TierNodeStore {
		t.Errorf("evicted object should come from the node store, got %v", r.Tier)
	}
}

func TestSummarize(t *testing.T) {
	g, _ := buildGateway(t, 1<<20)
	root, err := g.Pin([]byte("summary content"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		g.Fetch(ctx, Request{Cid: root, Time: day})
	}
	stats := Summarize(g.Log())
	if stats[TierNodeStore].Requests != 1 || stats[TierNginx].Requests != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats[TierNginx].MedianLatency != 0 {
		t.Error("nginx median latency should be 0")
	}
	if stats[TierNodeStore].MedianLatency != NodeStoreLatency {
		t.Error("node store median latency should be 8ms")
	}
	if stats[TierNginx].Bytes != 4*int64(len("summary content")) {
		t.Errorf("nginx bytes = %d", stats[TierNginx].Bytes)
	}
}

func TestServeHTTP(t *testing.T) {
	g, _ := buildGateway(t, 1<<20)
	data := []byte("hello over http")
	root, err := g.Pin(data)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ipfs/" + root.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, data) {
		t.Error("body mismatch")
	}

	// Error paths.
	if r, _ := http.Get(srv.URL + "/ipfs/not-a-cid"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cid status = %d", r.StatusCode)
	}
	if r, _ := http.Get(srv.URL + "/other"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad path status = %d", r.StatusCode)
	}
	if r, _ := http.Post(srv.URL+"/ipfs/x", "", nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", r.StatusCode)
	}
}

func TestServeHTTPWithPath(t *testing.T) {
	g, _ := buildGateway(t, 1<<20)
	node := g.Node()
	root, err := node.AddTree(map[string][]byte{
		"index.html":   []byte("<h1>gateway site</h1>"),
		"img/logo.png": bytes.Repeat([]byte{0x89}, 512),
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Pinner().Pin(root)
	srv := httptest.NewServer(g)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ipfs/" + root.String() + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "<h1>gateway site</h1>" {
		t.Errorf("status=%d body=%q", resp.StatusCode, body)
	}
	// Nested path.
	resp, err = http.Get(srv.URL + "/ipfs/" + root.String() + "/img/logo.png")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 512 {
		t.Errorf("logo bytes = %d", len(body))
	}
	// Missing path -> 404.
	resp, _ = http.Get(srv.URL + "/ipfs/" + root.String() + "/nope.txt")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing path status = %d", resp.StatusCode)
	}
	// Path requests are cached separately per (cid, path).
	r2 := g.Fetch(context.Background(), Request{Cid: root, Path: "index.html", Time: day})
	if r2.Tier != TierNginx {
		t.Errorf("second path fetch tier = %v, want nginx", r2.Tier)
	}
}

func TestObjectCacheOversized(t *testing.T) {
	c := newObjectCache(10)
	c.put("big", make([]byte, 100))
	if _, ok := c.get("big"); ok {
		t.Error("oversized object should not be cached")
	}
}
