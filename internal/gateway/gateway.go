// Package gateway implements the HTTP entry point of §3.4: a bridge
// between plain HTTP clients and the P2P network. Each gateway runs two
// forms of content storage — an nginx-style LRU web cache consulted
// first, and the IPFS node store holding pinned content (the Web3/NFT
// Storage uploads) — falling through to a full P2P retrieval otherwise.
// Requests are access-logged with the fields the §4.2 dataset carries.
package gateway

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/merkledag"
	"repro/internal/simtime"
)

// Tier identifies which storage layer served a request (Table 5).
type Tier int

// Serving tiers.
const (
	TierNginx     Tier = iota // default nginx web cache (latency ~0)
	TierNodeStore             // gateway's local IPFS node store (pinned content)
	TierNetwork               // full P2P retrieval
	TierShared                // fleet-shared cache tier (internal/gwfleet)
)

// String names the tier as Table 5 does.
func (t Tier) String() string {
	switch t {
	case TierNginx:
		return "nginx cache"
	case TierNodeStore:
		return "IPFS node store"
	case TierNetwork:
		return "Non Cached"
	case TierShared:
		return "fleet shared cache"
	}
	return "unknown"
}

// NodeStoreLatency models serving from the gateway's local IPFS node:
// Table 5 reports a consistent 8 ms median, below 24 ms.
const NodeStoreLatency = 8 * time.Millisecond

// Request is one client GET.
type Request struct {
	Cid      cid.Cid
	Path     string     // optional UnixFS path beneath the root CID
	Time     time.Time  // request timestamp (drives Fig 11b binning)
	Country  geo.Region // Maxmind-style geolocated client country
	Referrer string     // HTTP referrer, "" for direct access
	UserID   string     // IP+user-agent aggregation key (§4.2)
}

// Response is the serving outcome.
type Response struct {
	Tier    Tier
	Latency time.Duration // simulated retrieval delay
	Bytes   int
	Err     error
}

// LogEntry is one access-log line (the §4.2 dataset schema).
type LogEntry struct {
	Time     time.Time
	UserID   string
	Country  geo.Region
	Cid      cid.Cid
	Referrer string
	Bytes    int
	Latency  time.Duration
	Tier     Tier
}

// Gateway bridges HTTP to a core node.
type Gateway struct {
	node  *core.Node
	src   simtime.Source
	cache *objectCache

	mu  sync.Mutex
	log []LogEntry
}

// New creates a gateway in front of node with an nginx cache bounded to
// cacheBytes. The legacy Base is wrapped into a real-scaled Source;
// simulated deployments should prefer NewWithSource with the testnet's
// unified time surface so request timestamps and latencies stay on the
// simulated clock.
func New(node *core.Node, cacheBytes int64, base simtime.Base) *Gateway {
	return NewWithSource(node, cacheBytes, simtime.NewBaseSource(base, nil))
}

// NewWithSource creates a gateway whose timestamps and measurements run
// on the given time source (the event scheduler in fleet scenarios).
func NewWithSource(node *core.Node, cacheBytes int64, src simtime.Source) *Gateway {
	if src == nil {
		src = simtime.BaseSource{}
	}
	return &Gateway{node: node, src: src, cache: newObjectCache(cacheBytes)}
}

// Node returns the backing node (the "DHT server" half of the bridge).
func (g *Gateway) Node() *core.Node { return g.node }

// Pin imports content into the gateway's node store and pins it, as the
// Web3/NFT Storage initiatives do (§3.4). Returns the root CID.
func (g *Gateway) Pin(data []byte) (cid.Cid, error) {
	root, err := g.node.Add(data)
	if err != nil {
		return cid.Cid{}, err
	}
	g.node.Pinner().Pin(root)
	return root, nil
}

// cacheKey identifies a (root, path) response in the nginx cache.
func cacheKey(req Request) string { return req.Cid.Key() + "\x00" + req.Path }

// Fetch serves one request through the tier cascade.
func (g *Gateway) Fetch(ctx context.Context, req Request) Response {
	resp, _ := g.FetchData(ctx, req)
	return resp
}

// FetchData serves one request through the tier cascade and also
// returns the assembled bytes, so fleet-level caches can deposit the
// response without racing the per-instance cache's eviction.
func (g *Gateway) FetchData(ctx context.Context, req Request) (Response, []byte) {
	if resp, data, ok := g.FetchLocal(req); ok {
		return resp, data
	}
	return g.fetchNetwork(ctx, req)
}

// FetchLocal tries only the instance-local tiers — the nginx web cache
// and the node store — reporting ok=false on a miss instead of falling
// through to the network. Fleet instances use it so the shared cache
// tier slots between the local tiers and the P2P origin.
func (g *Gateway) FetchLocal(req Request) (Response, []byte, bool) {
	// Tier 1: nginx web cache. Hits have a retrieval delay of 0 (§6.3).
	if data, ok := g.cache.get(cacheKey(req)); ok {
		resp := Response{Tier: TierNginx, Latency: 0, Bytes: len(data)}
		g.append(req, resp)
		return resp, data, true
	}

	// Tier 2: the gateway's own IPFS node store (pinned content),
	// "resulting consistently in a delay below 24 ms".
	if data, err := g.assembleLocal(req); err == nil {
		resp := Response{Tier: TierNodeStore, Latency: NodeStoreLatency, Bytes: len(data)}
		g.cache.put(cacheKey(req), data)
		g.append(req, resp)
		return resp, data, true
	}
	return Response{}, nil, false
}

// fetchNetwork is the final tier of the cascade.
func (g *Gateway) fetchNetwork(ctx context.Context, req Request) (Response, []byte) {
	var resp Response
	// Tier 3: full P2P retrieval through the co-located node. The root
	// DAG is fetched, then the path (if any) resolved locally.
	_, rres, err := g.node.Retrieve(ctx, req.Cid)
	if err != nil {
		resp = Response{Tier: TierNetwork, Latency: rres.Total, Err: err}
		g.append(req, resp)
		return resp, nil
	}
	data, err := g.assembleLocal(req)
	if err != nil {
		resp = Response{Tier: TierNetwork, Latency: rres.Total, Err: err}
		g.append(req, resp)
		return resp, nil
	}
	resp = Response{Tier: TierNetwork, Latency: rres.Total, Bytes: len(data)}
	g.cache.put(cacheKey(req), data)
	g.append(req, resp)
	return resp, data
}

// Inject deposits an externally fetched response into the gateway's
// nginx cache and logs it under the given tier — how a fleet's shared
// cache tier warms the owning instance without a duplicate retrieval.
func (g *Gateway) Inject(req Request, tier Tier, latency time.Duration, data []byte) Response {
	g.cache.put(cacheKey(req), data)
	resp := Response{Tier: tier, Latency: latency, Bytes: len(data)}
	g.append(req, resp)
	return resp
}

// CacheKey exposes the (root, path) cache key so fleet-shared caches
// index exactly as the per-instance cache does.
func CacheKey(req Request) string { return cacheKey(req) }

// assembleLocal serves a request from the node store alone: the raw
// DAG for path-less requests, or the file beneath the UnixFS path.
func (g *Gateway) assembleLocal(req Request) ([]byte, error) {
	if req.Path == "" {
		return merkledag.Assemble(g.node.Store(), req.Cid)
	}
	return g.node.CatPath(req.Cid, req.Path)
}

func (g *Gateway) append(req Request, resp Response) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.log = append(g.log, LogEntry{
		Time:     req.Time,
		UserID:   req.UserID,
		Country:  req.Country,
		Cid:      req.Cid,
		Referrer: req.Referrer,
		Bytes:    resp.Bytes,
		Latency:  resp.Latency,
		Tier:     resp.Tier,
	})
}

// Log returns a copy of the access log.
func (g *Gateway) Log() []LogEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]LogEntry(nil), g.log...)
}

// ServeHTTP implements the public HTTP face:
// GET /ipfs/{CID} (§3.4).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	full := strings.TrimPrefix(r.URL.Path, "/ipfs/")
	if full == r.URL.Path || full == "" {
		http.Error(w, "usage: GET /ipfs/{CID}[/path]", http.StatusBadRequest)
		return
	}
	cidPart, subPath := full, ""
	if i := strings.IndexByte(full, '/'); i >= 0 {
		cidPart, subPath = full[:i], strings.Trim(full[i+1:], "/")
	}
	c, err := cid.Parse(cidPart)
	if err != nil {
		http.Error(w, fmt.Sprintf("invalid CID: %v", err), http.StatusBadRequest)
		return
	}
	req := Request{
		Cid:      c,
		Path:     subPath,
		Time:     g.src.Now(),
		Referrer: r.Referer(),
		UserID:   r.RemoteAddr + "|" + r.UserAgent(),
	}
	resp, data := g.FetchData(r.Context(), req)
	if resp.Err != nil {
		http.Error(w, fmt.Sprintf("not found: %v", resp.Err), http.StatusNotFound)
		return
	}
	if data == nil {
		// Large objects may already have been evicted; refetch locally.
		if data, err = g.assembleLocal(req); err != nil {
			http.Error(w, "cache race", http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ipfs-Gateway-Tier", resp.Tier.String())
	w.Write(data)
}

// objectCache is a byte-bounded LRU over assembled objects, keyed by
// CID — the "default nginx web cache, with a Least Recently Used
// replacement strategy" (§3.4).
type objectCache struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	order   *list.List
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	data []byte
	elem *list.Element
}

func newObjectCache(capBytes int64) *objectCache {
	return &objectCache{cap: capBytes, order: list.New(), entries: make(map[string]*cacheEntry)}
}

func (c *objectCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e.elem)
	return e.data, true
}

func (c *objectCache) put(key string, data []byte) {
	if int64(len(data)) > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		return
	}
	for c.used+int64(len(data)) > c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		k := oldest.Value.(string)
		c.used -= int64(len(c.entries[k].data))
		delete(c.entries, k)
		c.order.Remove(oldest)
	}
	c.entries[key] = &cacheEntry{data: data, elem: c.order.PushFront(key)}
	c.used += int64(len(data))
}

// TierStats aggregates the access log into the Table 5 summary.
type TierStats struct {
	Requests      int
	Bytes         int64
	MedianLatency time.Duration
}

// Summarize computes per-tier request share, traffic share and median
// latency from a log.
func Summarize(log []LogEntry) map[Tier]TierStats {
	latencies := map[Tier][]time.Duration{}
	out := map[Tier]TierStats{}
	for _, e := range log {
		if e.Err() {
			continue
		}
		s := out[e.Tier]
		s.Requests++
		s.Bytes += int64(e.Bytes)
		out[e.Tier] = s
		latencies[e.Tier] = append(latencies[e.Tier], e.Latency)
	}
	for tier, ls := range latencies {
		s := out[tier]
		s.MedianLatency = medianDuration(ls)
		out[tier] = s
	}
	return out
}

// Err reports whether the entry recorded a failed fetch.
func (e LogEntry) Err() bool { return e.Bytes == 0 && e.Tier == TierNetwork }

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
