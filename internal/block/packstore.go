package block

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cid"
	"repro/internal/telemetry"
)

// PackStore is a pack-engine blockstore in the bitcask/auklet style:
// blocks append sequentially to large volume files under per-record
// headers, an in-memory index maps cid -> (volume, offset, len), and
// Delete only writes a tombstone — background compaction rewrites
// volumes whose dead-byte ratio crosses a threshold. Compared to the
// file-per-block FSStore this turns a million small blocks into a
// handful of large files: one pread per Get, no inode churn, and put
// durability amortized by group fsync on a flush interval.
//
// On-disk record layout (big-endian), identical for volumes and the
// records compaction rewrites:
//
//	magic   uint32  0x504b424c ("PKBL")
//	kind    byte    1 = put, 2 = tombstone
//	cidLen  uint16
//	dataLen uint32  0 for tombstones
//	crc     uint32  CRC-32C over cid || data
//	cid     []byte
//	data    []byte
//
// The index is rebuilt by replaying volume headers in id order on open;
// a torn tail record (crash mid-append) fails its length or checksum
// check and the active volume is truncated back to the last whole
// record.
type PackStore struct {
	cfg PackConfig
	dir string
	reg atomic.Pointer[telemetry.Registry]

	// mu guards the index, the volumes map and the pin set. Readers
	// hold it (shared) across the pread, so the compactor — which takes
	// it exclusively before dropping a volume from the map — can never
	// close a file under an in-flight read.
	mu       sync.RWMutex
	index    map[string]packLoc
	volumes  map[int]*packVolume
	pins     map[string]struct{}
	activeID int

	// wmu serializes appends, rotation and the index mutations that
	// follow an append. Lock order: wmu before mu, always.
	wmu    sync.Mutex
	active *packVolume
	dirty  bool

	cmu sync.Mutex // one compaction at a time

	stop      chan struct{}
	kick      chan struct{}
	bg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// PackConfig tunes a PackStore; zero values select the defaults.
type PackConfig struct {
	// VolumeSizeCap rotates to a fresh volume file once the active one
	// would exceed this many bytes (default 256 MiB).
	VolumeSizeCap int64
	// FlushInterval is the group-commit period: appended records are
	// fsynced together at this cadence instead of per Put (default
	// 100 ms). A crash can lose at most the last interval's puts; the
	// torn-tail scan makes that loss clean rather than corrupting.
	FlushInterval time.Duration
	// CompactThreshold is the dead-byte ratio at which a sealed volume
	// becomes a compaction candidate (default 0.5).
	CompactThreshold float64
	// DisableBackground skips the flush/compaction goroutine; tests
	// drive Flush and CompactNow directly for determinism.
	DisableBackground bool
}

func (c PackConfig) withDefaults() PackConfig {
	if c.VolumeSizeCap <= 0 {
		c.VolumeSizeCap = 256 << 20
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 0.5
	}
	return c
}

const (
	packMagic     = 0x504b424c // "PKBL"
	packHeaderLen = 15
	recPut        = byte(1)
	recTombstone  = byte(2)

	// Scan sanity bounds: a header whose lengths exceed these is a torn
	// or corrupt tail, not a record.
	packMaxCidLen  = 4096
	packMaxDataLen = 1 << 30
)

var packCRC = crc32.MakeTable(crc32.Castagnoli)

// packLoc locates one live block: volume id, payload offset, payload
// length. The cid length is recoverable from the index key (the key is
// the cid's raw bytes), so record sizes need not be stored.
type packLoc struct {
	vol int
	off int64
	n   int32
}

type packVolume struct {
	id   int
	path string
	f    *os.File
	size atomic.Int64 // accounted bytes; append offset for the active volume
	dead atomic.Int64 // bytes of overwritten/deleted records + tombstones
	// tombs remembers which keys this volume tombstones, so compaction
	// can re-write a still-needed tombstone before dropping the file.
	tombs map[string]struct{}
	// stale remembers which keys have a dead put record in this volume
	// (overwritten, deleted, or a compaction copy that lost a race). A
	// tombstone is only worth carrying while some other volume holds a
	// stale put for its key — otherwise a reopen has nothing to
	// resurrect and the tombstone can be dropped, which is what lets
	// compaction terminate instead of shuttling tombstones between
	// volumes forever.
	stale map[string]struct{}
}

// Interface checks.
var (
	_ Store  = (*PackStore)(nil)
	_ Pinner = (*PackStore)(nil)
)

// NewPackStore opens (creating if needed) a pack store rooted at dir,
// rebuilding the index from the volume files found there.
func NewPackStore(dir string, cfg PackConfig) (*PackStore, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("block: packstore: %w", err)
	}
	s := &PackStore{
		cfg:     cfg,
		dir:     dir,
		index:   make(map[string]packLoc),
		volumes: make(map[int]*packVolume),
		pins:    make(map[string]struct{}),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
	if err := s.open(); err != nil {
		return nil, err
	}
	if !cfg.DisableBackground {
		s.bg.Add(1)
		go s.background()
	}
	return s, nil
}

func packVolumePath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("pack-%06d.vol", id))
}

func (s *PackStore) openVolume(id int) (*packVolume, error) {
	path := packVolumePath(s.dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("block: packstore: %w", err)
	}
	return &packVolume{
		id:    id,
		path:  path,
		f:     f,
		tombs: make(map[string]struct{}),
		stale: make(map[string]struct{}),
	}, nil
}

// open replays every volume in id order. The highest-numbered volume
// becomes the active one and is truncated past its last whole record;
// garbage tails in sealed volumes are only counted as dead bytes.
func (s *PackStore) open() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "pack-*.vol"))
	if err != nil {
		return fmt.Errorf("block: packstore: %w", err)
	}
	var ids []int
	for _, p := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(p), "pack-%06d.vol", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i, id := range ids {
		v, err := s.openVolume(id)
		if err != nil {
			return err
		}
		s.volumes[id] = v
		valid := s.scanVolume(v)
		st, err := v.f.Stat()
		if err != nil {
			return fmt.Errorf("block: packstore: %w", err)
		}
		if i == len(ids)-1 {
			if st.Size() > valid {
				if err := v.f.Truncate(valid); err != nil {
					return fmt.Errorf("block: packstore: %w", err)
				}
			}
			s.active, s.activeID = v, id
		} else if st.Size() > valid {
			v.size.Store(st.Size())
			v.dead.Add(st.Size() - valid)
		}
	}
	if s.active == nil {
		v, err := s.openVolume(0)
		if err != nil {
			return err
		}
		s.volumes[0] = v
		s.active, s.activeID = v, 0
	}
	return nil
}

// scanVolume replays v's records into the index, stopping at the first
// record that fails a header sanity check or its checksum, and returns
// the length of the valid prefix.
func (s *PackStore) scanVolume(v *packVolume) int64 {
	var off int64
	hdr := make([]byte, packHeaderLen)
	for {
		if _, err := v.f.ReadAt(hdr, off); err != nil {
			break
		}
		magic := binary.BigEndian.Uint32(hdr[0:4])
		kind := hdr[4]
		cidLen := int(binary.BigEndian.Uint16(hdr[5:7]))
		dataLen := int(binary.BigEndian.Uint32(hdr[7:11]))
		sum := binary.BigEndian.Uint32(hdr[11:15])
		if magic != packMagic || (kind != recPut && kind != recTombstone) ||
			cidLen == 0 || cidLen > packMaxCidLen || dataLen > packMaxDataLen ||
			(kind == recTombstone && dataLen != 0) {
			break
		}
		payload := make([]byte, cidLen+dataLen)
		if _, err := v.f.ReadAt(payload, off+packHeaderLen); err != nil {
			break
		}
		if crc32.Checksum(payload, packCRC) != sum {
			break
		}
		c, err := cid.FromBytes(payload[:cidLen])
		if err != nil {
			break
		}
		key := c.Key()
		recLen := int64(packHeaderLen + cidLen + dataLen)
		switch kind {
		case recPut:
			if old, ok := s.index[key]; ok {
				ov := s.volumes[old.vol]
				ov.dead.Add(packRecLen(key, old.n))
				ov.stale[key] = struct{}{}
			}
			s.index[key] = packLoc{vol: v.id, off: off + packHeaderLen + int64(cidLen), n: int32(dataLen)}
			delete(v.tombs, key) // a re-put supersedes this volume's tombstone
		case recTombstone:
			if old, ok := s.index[key]; ok {
				ov := s.volumes[old.vol]
				ov.dead.Add(packRecLen(key, old.n))
				ov.stale[key] = struct{}{}
				delete(s.index, key)
			}
			v.dead.Add(recLen) // the tombstone itself is dead weight
			v.tombs[key] = struct{}{}
		}
		off += recLen
	}
	v.size.Store(off)
	return off
}

// packRecLen is the on-disk size of a record whose index key (= cid
// bytes) is key and whose payload is dataLen bytes.
func packRecLen(key string, dataLen int32) int64 {
	return int64(packHeaderLen + len(key) + int(dataLen))
}

func encodeRecord(kind byte, cidB, data []byte) []byte {
	buf := make([]byte, packHeaderLen+len(cidB)+len(data))
	binary.BigEndian.PutUint32(buf[0:4], packMagic)
	buf[4] = kind
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(cidB)))
	binary.BigEndian.PutUint32(buf[7:11], uint32(len(data)))
	copy(buf[packHeaderLen:], cidB)
	copy(buf[packHeaderLen+len(cidB):], data)
	binary.BigEndian.PutUint32(buf[11:15], crc32.Checksum(buf[packHeaderLen:], packCRC))
	return buf
}

// appendLocked appends rec to the active volume, rotating first when
// it would overflow the size cap. Caller holds wmu.
func (s *PackStore) appendLocked(rec []byte) (*packVolume, int64, error) {
	v := s.active
	if sz := v.size.Load(); sz > 0 && sz+int64(len(rec)) > s.cfg.VolumeSizeCap {
		nv, err := s.rotateLocked()
		if err != nil {
			return nil, 0, err
		}
		v = nv
	}
	off := v.size.Load()
	if _, err := v.f.WriteAt(rec, off); err != nil {
		return nil, 0, fmt.Errorf("block: packstore: %w", err)
	}
	v.size.Add(int64(len(rec)))
	s.dirty = true
	return v, off, nil
}

// rotateLocked seals the active volume (fsyncing it durably) and opens
// the next one. Caller holds wmu.
func (s *PackStore) rotateLocked() (*packVolume, error) {
	if err := s.active.f.Sync(); err != nil {
		return nil, fmt.Errorf("block: packstore: %w", err)
	}
	s.dirty = false
	v, err := s.openVolume(s.activeID + 1)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.volumes[v.id] = v
	s.activeID = v.id
	s.mu.Unlock()
	s.active = v
	return v, nil
}

// Put implements Store. Content addressing makes Put of an already
// stored CID a no-op: the same CID certifies the same bytes.
func (s *PackStore) Put(b Block) error {
	if !b.cid.Defined() {
		return fmt.Errorf("block: undefined CID")
	}
	if !b.cid.Verify(b.data) {
		return ErrHashMismatch
	}
	key := b.cid.Key()
	s.wmu.Lock()
	s.mu.RLock()
	_, exists := s.index[key]
	s.mu.RUnlock()
	if exists {
		s.wmu.Unlock()
		return nil
	}
	v, off, err := s.appendLocked(encodeRecord(recPut, b.cid.Bytes(), b.data))
	if err != nil {
		s.wmu.Unlock()
		return err
	}
	s.mu.Lock()
	s.index[key] = packLoc{vol: v.id, off: off + packHeaderLen + int64(len(key)), n: int32(len(b.data))}
	s.mu.Unlock()
	s.wmu.Unlock()
	s.reg.Load().Counter("blockstore_puts", "store", "pack").Inc()
	s.publishGauges()
	return nil
}

// Get implements Store: one pread under the shared lock, then
// self-certification so on-disk corruption surfaces as an error.
func (s *PackStore) Get(c cid.Cid) (Block, error) {
	start := time.Now()
	s.mu.RLock()
	loc, ok := s.index[c.Key()]
	if !ok {
		s.mu.RUnlock()
		return Block{}, ErrNotFound
	}
	v := s.volumes[loc.vol]
	if v == nil {
		s.mu.RUnlock()
		return Block{}, fmt.Errorf("block: packstore: %s: volume %d missing", c, loc.vol)
	}
	data := make([]byte, loc.n)
	_, err := v.f.ReadAt(data, loc.off)
	s.mu.RUnlock()
	if err != nil {
		return Block{}, fmt.Errorf("block: packstore: read %s: %w", c, err)
	}
	blk, err := NewWithCid(c, data)
	if err != nil {
		return Block{}, fmt.Errorf("block: packstore: %s corrupt on disk: %w", c, err)
	}
	reg := s.reg.Load()
	reg.Counter("blockstore_gets", "store", "pack").Inc()
	reg.Histogram("pack_read_seconds", 0.0005).ObserveDuration(time.Since(start))
	return blk, nil
}

// Has implements Store.
func (s *PackStore) Has(c cid.Cid) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[c.Key()]
	return ok
}

// Delete implements Store. It appends a tombstone and drops the index
// entry; the record's bytes are reclaimed later by compaction. Pinned
// blocks are not deleted.
func (s *PackStore) Delete(c cid.Cid) {
	key := c.Key()
	s.wmu.Lock()
	s.mu.RLock()
	_, ok := s.index[key]
	_, pinned := s.pins[key]
	s.mu.RUnlock()
	if !ok || pinned {
		s.wmu.Unlock()
		return
	}
	v, _, err := s.appendLocked(encodeRecord(recTombstone, c.Bytes(), nil))
	if err != nil {
		// Keep the index entry: without a durable tombstone the block
		// would resurrect on reopen anyway.
		s.wmu.Unlock()
		return
	}
	s.mu.Lock()
	// Re-read the loc: the compactor may have moved it since the check
	// above (Put/Delete themselves serialize on wmu).
	loc := s.index[key]
	if ov := s.volumes[loc.vol]; ov != nil {
		ov.dead.Add(packRecLen(key, loc.n))
		ov.stale[key] = struct{}{}
	}
	delete(s.index, key)
	v.dead.Add(packRecLen(key, 0))
	v.tombs[key] = struct{}{}
	s.mu.Unlock()
	s.wmu.Unlock()
	s.reg.Load().Counter("blockstore_deletes", "store", "pack").Inc()
	s.publishGauges()
	s.kickCompaction()
}

// Len implements Store.
func (s *PackStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Pin marks a block as pinned; pinned blocks refuse Delete.
func (s *PackStore) Pin(c cid.Cid) {
	s.mu.Lock()
	s.pins[c.Key()] = struct{}{}
	s.mu.Unlock()
}

// Unpin removes a pin.
func (s *PackStore) Unpin(c cid.Cid) {
	s.mu.Lock()
	delete(s.pins, c.Key())
	s.mu.Unlock()
}

// Pinned reports whether c is pinned.
func (s *PackStore) Pinned(c cid.Cid) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pins[c.Key()]
	return ok
}

// Flush fsyncs unsynced appends on the active volume — the group
// commit the background loop runs every FlushInterval.
func (s *PackStore) Flush() error {
	s.wmu.Lock()
	f, dirty := s.active.f, s.dirty
	s.dirty = false
	s.wmu.Unlock()
	if !dirty {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("block: packstore: %w", err)
	}
	return nil
}

func (s *PackStore) kickCompaction() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// tombstoneNeeded reports whether a tombstone for key must be carried
// forward when its volume (exclude) is dropped: the key is not live and
// some other volume still holds a stale put record a reopen would
// otherwise replay. Caller holds mu (shared suffices).
func (s *PackStore) tombstoneNeeded(key string, exclude int) bool {
	if _, live := s.index[key]; live {
		return false // a rewrite after the re-put record would kill it
	}
	for id, w := range s.volumes {
		if id == exclude {
			continue
		}
		if _, ok := w.stale[key]; ok {
			return true
		}
	}
	return false
}

// compactCandidate picks the sealed volume with the worst reclaimable
// ratio at or past the threshold, or nil. Dead bytes belonging to
// still-needed tombstones are not reclaimable — compaction would just
// rewrite them into the active volume — so a volume of nothing but
// needed tombstones is not a candidate; it becomes one when the stale
// puts its tombstones mask are compacted away themselves.
func (s *PackStore) compactCandidate() *packVolume {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *packVolume
	var bestRatio float64
	for id, v := range s.volumes {
		if id == s.activeID {
			continue // still being appended to
		}
		size := v.size.Load()
		if size == 0 {
			continue
		}
		reclaim := v.dead.Load()
		for key := range v.tombs {
			if s.tombstoneNeeded(key, v.id) {
				reclaim -= packRecLen(key, 0)
			}
		}
		if ratio := float64(reclaim) / float64(size); ratio >= s.cfg.CompactThreshold && ratio > bestRatio {
			best, bestRatio = v, ratio
		}
	}
	return best
}

// CompactNow synchronously compacts until no sealed volume crosses the
// dead-ratio threshold. The background loop calls it when Delete kicks
// it; tests call it directly for determinism.
func (s *PackStore) CompactNow() error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for {
		v := s.compactCandidate()
		if v == nil {
			return nil
		}
		if err := s.compactVolume(v); err != nil {
			return err
		}
	}
}

// compactVolume moves v's live records to the active volume, rewrites
// any of v's tombstones that still mask an older put, then removes the
// volume file. Readers are never blocked for the duration: they hold
// mu shared across their preads, and the file is closed only after the
// index no longer references the volume.
func (s *PackStore) compactVolume(v *packVolume) error {
	type liveRec struct {
		key string
		loc packLoc
	}
	var live []liveRec
	tombs := make([]string, 0, len(v.tombs))
	s.mu.RLock()
	for key, loc := range s.index {
		if loc.vol == v.id {
			live = append(live, liveRec{key, loc})
		}
	}
	for key := range v.tombs {
		tombs = append(tombs, key)
	}
	s.mu.RUnlock()
	sort.Slice(live, func(i, j int) bool { return live[i].loc.off < live[j].loc.off })
	sort.Strings(tombs)

	for _, r := range live {
		s.mu.RLock()
		loc, ok := s.index[r.key]
		if !ok || loc != r.loc {
			s.mu.RUnlock()
			continue // deleted or already moved
		}
		data := make([]byte, loc.n)
		_, err := v.f.ReadAt(data, loc.off)
		s.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("block: packstore: compact %s: %w", v.path, err)
		}
		rec := encodeRecord(recPut, []byte(r.key), data)
		s.wmu.Lock()
		nv, off, err := s.appendLocked(rec)
		if err != nil {
			s.wmu.Unlock()
			return err
		}
		s.mu.Lock()
		if cur, ok := s.index[r.key]; ok && cur == r.loc {
			s.index[r.key] = packLoc{vol: nv.id, off: off + packHeaderLen + int64(len(r.key)), n: loc.n}
			v.dead.Add(packRecLen(r.key, loc.n))
		} else {
			// Deleted while we copied: the fresh copy is born dead, and
			// it is a stale put the delete's tombstone must keep masking.
			nv.dead.Add(int64(len(rec)))
			nv.stale[r.key] = struct{}{}
		}
		s.mu.Unlock()
		s.wmu.Unlock()
	}

	// A tombstone must outlive its volume while another volume still
	// holds a stale put for its key — dropping it would let a reopen
	// replay that put and resurrect deleted data. If the key is live
	// again, or no stale put survives anywhere, the tombstone is
	// dropped (a rewrite after a re-put record would kill the live
	// block; an unmasked tombstone is pure dead weight). Checking under
	// wmu keeps a concurrent re-put from interleaving between check and
	// append.
	for _, key := range tombs {
		s.wmu.Lock()
		s.mu.RLock()
		needed := s.tombstoneNeeded(key, v.id)
		s.mu.RUnlock()
		if !needed {
			s.wmu.Unlock()
			continue
		}
		rec := encodeRecord(recTombstone, []byte(key), nil)
		nv, _, err := s.appendLocked(rec)
		if err != nil {
			s.wmu.Unlock()
			return err
		}
		s.mu.Lock()
		nv.dead.Add(int64(len(rec)))
		nv.tombs[key] = struct{}{}
		s.mu.Unlock()
		s.wmu.Unlock()
	}

	// The moved records must be durable before the only other copy of
	// them disappears with the volume file.
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.volumes, v.id)
	s.mu.Unlock()
	v.f.Close()
	rmErr := os.Remove(v.path)
	s.reg.Load().Counter("pack_compactions", "store", "pack").Inc()
	s.publishGauges()
	if rmErr != nil {
		return fmt.Errorf("block: packstore: %w", rmErr)
	}
	return nil
}

func (s *PackStore) background() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Flush()
		case <-s.kick:
			s.CompactNow()
		}
	}
}

// Close stops the background worker, flushes the active volume and
// closes every volume file. The store must not be used after Close.
func (s *PackStore) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.bg.Wait()
		s.closeErr = s.Flush()
		s.mu.Lock()
		for _, v := range s.volumes {
			v.f.Close()
		}
		s.mu.Unlock()
	})
	return s.closeErr
}

// SetMetrics points the store at a telemetry registry so /debug/metrics
// shows storage health; core.Node wires this automatically. All
// reporting is a no-op until set.
func (s *PackStore) SetMetrics(reg *telemetry.Registry) {
	s.reg.Store(reg)
	s.publishGauges()
}

func (s *PackStore) publishGauges() {
	reg := s.reg.Load()
	if reg == nil {
		return
	}
	live, dead, n := s.usage()
	reg.Gauge("pack_live_bytes").Set(float64(live))
	reg.Gauge("pack_dead_bytes").Set(float64(dead))
	reg.Gauge("pack_volumes").Set(float64(n))
}

func (s *PackStore) usage() (live, dead int64, volumes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.volumes {
		sz, dd := v.size.Load(), v.dead.Load()
		live += sz - dd
		dead += dd
	}
	return live, dead, len(s.volumes)
}

// LiveBytes returns the bytes of live (indexed) records across volumes.
func (s *PackStore) LiveBytes() int64 { live, _, _ := s.usage(); return live }

// DeadBytes returns the bytes awaiting compaction: overwritten or
// deleted records, tombstones, and torn tails in sealed volumes.
func (s *PackStore) DeadBytes() int64 { _, dead, _ := s.usage(); return dead }

// VolumeCount returns the number of volume files.
func (s *PackStore) VolumeCount() int { _, _, n := s.usage(); return n }
