package block

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cid"
	"repro/internal/multicodec"
)

// TestStoreConformance runs the same behavioural suite over every
// Store implementation, so a new backend (PackStore) cannot drift from
// the semantics the node, Bitswap and the gateway rely on.
func TestStoreConformance(t *testing.T) {
	backends := []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"fs", func(t *testing.T) Store {
			s, err := NewFSStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"pack", func(t *testing.T) Store {
			s, err := NewPackStore(t.TempDir(), PackConfig{DisableBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, be.mk(t)) })
			t.Run("NotFound", func(t *testing.T) { testNotFound(t, be.mk(t)) })
			t.Run("RejectsMismatch", func(t *testing.T) { testRejectsMismatch(t, be.mk(t)) })
			t.Run("RejectsUndefinedCid", func(t *testing.T) { testRejectsUndefined(t, be.mk(t)) })
			t.Run("PutIdempotent", func(t *testing.T) { testPutIdempotent(t, be.mk(t)) })
			t.Run("DeleteThenReput", func(t *testing.T) { testDeleteThenReput(t, be.mk(t)) })
			t.Run("EmptyBlock", func(t *testing.T) { testEmptyBlock(t, be.mk(t)) })
		})
	}
}

func testRoundTrip(t *testing.T, s Store) {
	var blocks []Block
	for i := 0; i < 20; i++ {
		b := New(multicodec.Raw, []byte(fmt.Sprintf("block-%d", i)))
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(blocks) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(blocks))
	}
	for _, want := range blocks {
		if !s.Has(want.Cid()) {
			t.Fatalf("Has(%s) = false after Put", want.Cid())
		}
		got, err := s.Get(want.Cid())
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Data()) != string(want.Data()) {
			t.Fatalf("Get(%s) = %q, want %q", want.Cid(), got.Data(), want.Data())
		}
		if got.Cid().Key() != want.Cid().Key() {
			t.Fatalf("Get returned cid %s, want %s", got.Cid(), want.Cid())
		}
	}
	victim := blocks[7]
	s.Delete(victim.Cid())
	if s.Has(victim.Cid()) {
		t.Fatal("Has true after Delete")
	}
	if _, err := s.Get(victim.Cid()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if s.Len() != len(blocks)-1 {
		t.Fatalf("Len after Delete = %d", s.Len())
	}
}

func testNotFound(t *testing.T, s Store) {
	c := cid.Sum(multicodec.Raw, []byte("never stored"))
	if _, err := s.Get(c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if s.Has(c) {
		t.Fatal("Has = true for missing block")
	}
	s.Delete(c) // deleting a missing block is a no-op, not a panic
}

func testRejectsMismatch(t *testing.T, s Store) {
	c := cid.Sum(multicodec.Raw, []byte("real"))
	if err := s.Put(Block{cid: c, data: []byte("fake")}); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("Put mismatched = %v, want ErrHashMismatch", err)
	}
	if s.Len() != 0 {
		t.Fatal("mismatched block was stored")
	}
}

func testRejectsUndefined(t *testing.T, s Store) {
	if err := s.Put(Block{data: []byte("no cid")}); err == nil {
		t.Fatal("Put with undefined CID succeeded")
	}
}

func testPutIdempotent(t *testing.T, s Store) {
	b := New(multicodec.Raw, []byte("same bytes"))
	for i := 0; i < 3; i++ {
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len after re-Put = %d, want 1", s.Len())
	}
}

func testDeleteThenReput(t *testing.T, s Store) {
	b := New(multicodec.Raw, []byte("comes back"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	s.Delete(b.Cid())
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(b.Cid())
	if err != nil {
		t.Fatalf("Get after delete+reput: %v", err)
	}
	if string(got.Data()) != "comes back" {
		t.Fatalf("data = %q", got.Data())
	}
}

func testEmptyBlock(t *testing.T, s Store) {
	b := New(multicodec.Raw, nil)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(b.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Fatalf("Size = %d, want 0", got.Size())
	}
}
