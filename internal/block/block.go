// Package block provides content-addressed blocks and blockstores. A
// block is an immutable (CID, bytes) pair; stores verify on insertion so
// everything read back is self-certified (§2.1).
//
// Four Store implementations cover the deployment spectrum:
//
//   - MemStore: unbounded in-memory map, the simulator default.
//   - LRUStore: bounded in-memory store with least-recently-used
//     eviction — the edge-cache tier of a gateway fleet.
//   - FSStore (fsstore.go): file-per-block flatfs layout.
//   - PackStore (packstore.go): the pack-engine store — append-only
//     pack volumes, an in-memory CID index rebuilt from volume scans,
//     and background compaction reclaiming deleted space.
package block

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cid"
	"repro/internal/multicodec"
)

// Block is an immutable content-addressed chunk of data.
type Block struct {
	cid  cid.Cid
	data []byte
}

// Errors returned by blockstores.
var (
	ErrNotFound     = errors.New("block: not found")
	ErrHashMismatch = errors.New("block: data does not match CID")
)

// New creates a block from data under the given codec, computing its CID.
func New(codec multicodec.Code, data []byte) Block {
	d := append([]byte(nil), data...)
	return Block{cid: cid.Sum(codec, d), data: d}
}

// NewWithCid wraps data with a caller-supplied CID, verifying the pair.
func NewWithCid(c cid.Cid, data []byte) (Block, error) {
	if !c.Verify(data) {
		return Block{}, ErrHashMismatch
	}
	return Block{cid: c, data: append([]byte(nil), data...)}, nil
}

// Cid returns the block's content identifier.
func (b Block) Cid() cid.Cid { return b.cid }

// Data returns the block payload. Callers must not modify it.
func (b Block) Data() []byte { return b.data }

// Size returns the payload length in bytes.
func (b Block) Size() int { return len(b.data) }

// Store is the interface all blockstores implement.
type Store interface {
	// Put stores a block. Implementations verify CID/data consistency.
	Put(Block) error
	// Get returns the block for c or ErrNotFound.
	Get(c cid.Cid) (Block, error)
	// Has reports whether c is stored.
	Has(c cid.Cid) bool
	// Delete removes c if present.
	Delete(c cid.Cid)
	// Len returns the number of stored blocks.
	Len() int
}

// Pinner is the optional pinning surface of a Store. Pinned blocks
// refuse Delete and survive Clear — the "persistently available"
// gateway content of §3.4. MemStore and PackStore implement it;
// callers that only hold a Store obtain it via core.Node.Pinner, which
// degrades to a no-op for stores without pin support.
type Pinner interface {
	Pin(c cid.Cid)
	Unpin(c cid.Cid)
	Pinned(c cid.Cid) bool
}

// Clearer is the optional bulk-reset surface of a Store, used by
// experiment harnesses to drop unpinned content between iterations.
type Clearer interface {
	Clear()
}

// Interface checks.
var (
	_ Store   = (*MemStore)(nil)
	_ Pinner  = (*MemStore)(nil)
	_ Clearer = (*MemStore)(nil)
	_ Store   = (*FSStore)(nil)
	_ Store   = (*LRUStore)(nil)
)

// MemStore is a thread-safe in-memory blockstore with optional pinning.
// Pinned blocks survive GC and represent the "IPFS node store" content
// manually uploaded to gateways (§3.4).
type MemStore struct {
	mu     sync.RWMutex
	blocks map[string]Block
	pins   map[string]bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: make(map[string]Block), pins: make(map[string]bool)}
}

// Put implements Store.
func (s *MemStore) Put(b Block) error {
	if !b.cid.Defined() {
		return fmt.Errorf("block: undefined CID")
	}
	if !b.cid.Verify(b.data) {
		return ErrHashMismatch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[b.cid.Key()] = b
	return nil
}

// Get implements Store.
func (s *MemStore) Get(c cid.Cid) (Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[c.Key()]
	if !ok {
		return Block{}, ErrNotFound
	}
	return b, nil
}

// Has implements Store.
func (s *MemStore) Has(c cid.Cid) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[c.Key()]
	return ok
}

// Delete implements Store. Pinned blocks are not deleted.
func (s *MemStore) Delete(c cid.Cid) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[c.Key()] {
		return
	}
	delete(s.blocks, c.Key())
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Clear removes all unpinned blocks, used by experiment harnesses to
// reset a node between iterations.
func (s *MemStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.blocks {
		if !s.pins[key] {
			delete(s.blocks, key)
		}
	}
}

// Pin marks a block as pinned ("persistently available", §3.4).
func (s *MemStore) Pin(c cid.Cid) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[c.Key()] = true
}

// Unpin removes a pin.
func (s *MemStore) Unpin(c cid.Cid) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pins, c.Key())
}

// Pinned reports whether c is pinned.
func (s *MemStore) Pinned(c cid.Cid) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pins[c.Key()]
}

// TotalBytes returns the sum of stored block sizes.
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blocks {
		n += int64(len(b.data))
	}
	return n
}

// LRUStore is a bounded blockstore with least-recently-used eviction —
// the replacement strategy of the gateway's nginx web cache (§3.4).
type LRUStore struct {
	mu       sync.Mutex
	capacity int64 // bytes
	used     int64
	order    *list.List // front = most recently used; values are string keys
	entries  map[string]*lruEntry
}

type lruEntry struct {
	block Block
	elem  *list.Element
}

// NewLRUStore returns an LRU store bounded to capacityBytes.
func NewLRUStore(capacityBytes int64) *LRUStore {
	return &LRUStore{
		capacity: capacityBytes,
		order:    list.New(),
		entries:  make(map[string]*lruEntry),
	}
}

// Put implements Store, evicting least-recently-used blocks as needed.
// Blocks larger than the capacity are not cached.
func (s *LRUStore) Put(b Block) error {
	if !b.cid.Verify(b.data) {
		return ErrHashMismatch
	}
	if int64(b.Size()) > s.capacity {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := b.cid.Key()
	if e, ok := s.entries[key]; ok {
		s.order.MoveToFront(e.elem)
		return nil
	}
	for s.used+int64(b.Size()) > s.capacity {
		s.evictOldest()
	}
	elem := s.order.PushFront(key)
	s.entries[key] = &lruEntry{block: b, elem: elem}
	s.used += int64(b.Size())
	return nil
}

func (s *LRUStore) evictOldest() {
	back := s.order.Back()
	if back == nil {
		return
	}
	key := back.Value.(string)
	s.order.Remove(back)
	if e, ok := s.entries[key]; ok {
		s.used -= int64(e.block.Size())
		delete(s.entries, key)
	}
}

// Get implements Store and refreshes recency.
func (s *LRUStore) Get(c cid.Cid) (Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[c.Key()]
	if !ok {
		return Block{}, ErrNotFound
	}
	s.order.MoveToFront(e.elem)
	return e.block, nil
}

// Has implements Store without refreshing recency.
func (s *LRUStore) Has(c cid.Cid) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[c.Key()]
	return ok
}

// Delete implements Store.
func (s *LRUStore) Delete(c cid.Cid) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[c.Key()]; ok {
		s.order.Remove(e.elem)
		s.used -= int64(e.block.Size())
		delete(s.entries, c.Key())
	}
}

// Len implements Store.
func (s *LRUStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// UsedBytes returns the current cache occupancy.
func (s *LRUStore) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
