package block

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cid"
	"repro/internal/multicodec"
)

func TestNewAndVerify(t *testing.T) {
	b := New(multicodec.Raw, []byte("block data"))
	if !b.Cid().Verify(b.Data()) {
		t.Error("block CID must verify its data")
	}
	if b.Size() != 10 {
		t.Errorf("Size = %d", b.Size())
	}
}

func TestNewWithCidRejectsMismatch(t *testing.T) {
	c := cid.Sum(multicodec.Raw, []byte("real"))
	if _, err := NewWithCid(c, []byte("fake")); err != ErrHashMismatch {
		t.Errorf("err = %v, want ErrHashMismatch", err)
	}
	if _, err := NewWithCid(c, []byte("real")); err != nil {
		t.Errorf("matching data: %v", err)
	}
}

func TestMemStoreCRUD(t *testing.T) {
	s := NewMemStore()
	b := New(multicodec.Raw, []byte("x"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if !s.Has(b.Cid()) || s.Len() != 1 {
		t.Error("Put did not store")
	}
	got, err := s.Get(b.Cid())
	if err != nil || !got.Cid().Equal(b.Cid()) {
		t.Errorf("Get = %v, %v", got.Cid(), err)
	}
	s.Delete(b.Cid())
	if s.Has(b.Cid()) {
		t.Error("Delete did not remove")
	}
	if _, err := s.Get(b.Cid()); err != ErrNotFound {
		t.Errorf("Get after delete: %v, want ErrNotFound", err)
	}
}

func TestMemStoreRejectsCorruptBlock(t *testing.T) {
	s := NewMemStore()
	bad := Block{cid: cid.Sum(multicodec.Raw, []byte("a")), data: []byte("b")}
	if err := s.Put(bad); err != ErrHashMismatch {
		t.Errorf("Put corrupt block: %v, want ErrHashMismatch", err)
	}
	if err := s.Put(Block{}); err == nil {
		t.Error("Put zero block should fail")
	}
}

func TestMemStorePinning(t *testing.T) {
	s := NewMemStore()
	b := New(multicodec.Raw, []byte("pinned"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	s.Pin(b.Cid())
	if !s.Pinned(b.Cid()) {
		t.Error("Pinned should be true")
	}
	s.Delete(b.Cid())
	if !s.Has(b.Cid()) {
		t.Error("pinned blocks must survive Delete")
	}
	s.Unpin(b.Cid())
	s.Delete(b.Cid())
	if s.Has(b.Cid()) {
		t.Error("unpinned block should be deletable")
	}
}

func TestMemStoreTotalBytes(t *testing.T) {
	s := NewMemStore()
	s.Put(New(multicodec.Raw, make([]byte, 100)))
	s.Put(New(multicodec.Raw, make([]byte, 28)))
	if s.TotalBytes() != 128 {
		t.Errorf("TotalBytes = %d, want 128", s.TotalBytes())
	}
}

func TestLRUStoreEviction(t *testing.T) {
	s := NewLRUStore(250)
	var blocks []Block
	for i := 0; i < 3; i++ {
		b := New(multicodec.Raw, []byte(fmt.Sprintf("block-%d-%s", i, string(make([]byte, 90)))))
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 250 with ~98-byte blocks: the first block must be evicted.
	if s.Has(blocks[0].Cid()) {
		t.Error("oldest block should have been evicted")
	}
	if !s.Has(blocks[1].Cid()) || !s.Has(blocks[2].Cid()) {
		t.Error("recent blocks should remain")
	}
	if s.UsedBytes() > 250 {
		t.Errorf("UsedBytes = %d exceeds capacity", s.UsedBytes())
	}
}

func TestLRUStoreRecency(t *testing.T) {
	s := NewLRUStore(250)
	a := New(multicodec.Raw, make([]byte, 98))
	b := New(multicodec.Raw, append(make([]byte, 97), 1))
	c := New(multicodec.Raw, append(make([]byte, 97), 2))
	s.Put(a)
	s.Put(b)
	// Touch a so b becomes the eviction candidate.
	if _, err := s.Get(a.Cid()); err != nil {
		t.Fatal(err)
	}
	s.Put(c)
	if !s.Has(a.Cid()) {
		t.Error("recently-used block was evicted")
	}
	if s.Has(b.Cid()) {
		t.Error("least-recently-used block should have been evicted")
	}
}

func TestLRUStoreOversized(t *testing.T) {
	s := NewLRUStore(10)
	big := New(multicodec.Raw, make([]byte, 100))
	if err := s.Put(big); err != nil {
		t.Fatal(err)
	}
	if s.Has(big.Cid()) {
		t.Error("oversized blocks should not be cached")
	}
}

func TestLRUStoreDelete(t *testing.T) {
	s := NewLRUStore(1000)
	b := New(multicodec.Raw, []byte("bye"))
	s.Put(b)
	s.Delete(b.Cid())
	if s.Has(b.Cid()) || s.UsedBytes() != 0 || s.Len() != 0 {
		t.Error("Delete did not fully remove the entry")
	}
}

func TestLRUStoreDuplicatePut(t *testing.T) {
	s := NewLRUStore(1000)
	b := New(multicodec.Raw, []byte("dup"))
	s.Put(b)
	s.Put(b)
	if s.Len() != 1 || s.UsedBytes() != int64(b.Size()) {
		t.Errorf("duplicate Put: len=%d used=%d", s.Len(), s.UsedBytes())
	}
}

func TestQuickStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	f := func(data []byte) bool {
		b := New(multicodec.Raw, data)
		if err := s.Put(b); err != nil {
			return false
		}
		got, err := s.Get(b.Cid())
		return err == nil && string(got.Data()) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLRUNeverExceedsCapacity(t *testing.T) {
	s := NewLRUStore(500)
	f := func(data []byte) bool {
		s.Put(New(multicodec.Raw, data))
		return s.UsedBytes() <= 500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
