package block

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/cid"
	"repro/internal/multibase"
)

// FSStore is a filesystem-backed blockstore in the flatfs layout kubo
// uses: blocks live in two-character shard directories keyed by the
// tail of the base32 CID, one file per block. It verifies on Put and
// on Get, so on-disk corruption is detected by self-certification.
//
// The store is lock-free: Put writes to a uniquely named temp file and
// renames it into place, so readers only ever observe a whole block
// file, and the filesystem itself orders concurrent same-CID renames
// (all of which carry identical bytes — the CID certifies them).
type FSStore struct {
	root string
	tmpN atomic.Uint64 // unique temp-file suffixes for concurrent Puts
}

// NewFSStore opens (creating if needed) a store rooted at dir and
// sweeps any *.tmp files a crashed writer left behind.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("block: fsstore: %w", err)
	}
	// Leftover temp files are half-written blocks from a crash between
	// write and rename; they are invisible to Get and safe to drop.
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(filepath.Base(path), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
	return &FSStore{root: dir}, nil
}

// shardPath maps a CID to its shard directory and file path.
func (s *FSStore) shardPath(c cid.Cid) (dir, file string) {
	name := strings.ToUpper(multibase.MustEncode(multibase.Base32, c.Bytes())[1:])
	shard := name[len(name)-3 : len(name)-1] // next-to-last two chars, flatfs-style
	return filepath.Join(s.root, shard), filepath.Join(s.root, shard, name+".data")
}

// Put implements Store.
func (s *FSStore) Put(b Block) error {
	if !b.Cid().Defined() {
		return fmt.Errorf("block: undefined CID")
	}
	if !b.Cid().Verify(b.Data()) {
		return ErrHashMismatch
	}
	dir, file := s.shardPath(b.Cid())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("block: fsstore: %w", err)
	}
	// Write-then-rename for atomicity against concurrent readers; the
	// counter suffix keeps concurrent Puts of the same CID from
	// clobbering each other's temp file mid-write.
	tmp := fmt.Sprintf("%s.tmp%d", file, s.tmpN.Add(1))
	if err := os.WriteFile(tmp, b.Data(), 0o644); err != nil {
		return fmt.Errorf("block: fsstore: %w", err)
	}
	return os.Rename(tmp, file)
}

// Get implements Store, verifying the block against its CID so on-disk
// corruption surfaces as an error rather than bad data.
func (s *FSStore) Get(c cid.Cid) (Block, error) {
	_, file := s.shardPath(c)
	data, err := os.ReadFile(file)
	if err != nil {
		if os.IsNotExist(err) {
			return Block{}, ErrNotFound
		}
		return Block{}, fmt.Errorf("block: fsstore: %w", err)
	}
	blk, err := NewWithCid(c, data)
	if err != nil {
		return Block{}, fmt.Errorf("block: fsstore: %s corrupt on disk: %w", c, err)
	}
	return blk, nil
}

// Has implements Store.
func (s *FSStore) Has(c cid.Cid) bool {
	_, file := s.shardPath(c)
	_, err := os.Stat(file)
	return err == nil
}

// Delete implements Store.
func (s *FSStore) Delete(c cid.Cid) {
	_, file := s.shardPath(c)
	os.Remove(file)
}

// Len implements Store by walking the shard directories.
func (s *FSStore) Len() int {
	n := 0
	filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".data") {
			n++
		}
		return nil
	})
	return n
}
