package block

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/multicodec"
)

func newFSStore(t *testing.T) *FSStore {
	t.Helper()
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFSStoreCRUD(t *testing.T) {
	s := newFSStore(t)
	b := New(multicodec.Raw, []byte("persistent block"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if !s.Has(b.Cid()) || s.Len() != 1 {
		t.Error("Put did not persist")
	}
	got, err := s.Get(b.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), b.Data()) {
		t.Error("data mismatch")
	}
	s.Delete(b.Cid())
	if s.Has(b.Cid()) {
		t.Error("Delete failed")
	}
	if _, err := s.Get(b.Cid()); err != ErrNotFound {
		t.Errorf("Get after delete = %v", err)
	}
}

func TestFSStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := New(multicodec.Raw, []byte("durable"))
	if err := s1.Put(b); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(b.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), b.Data()) {
		t.Error("block lost across reopen")
	}
}

func TestFSStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := New(multicodec.Raw, []byte("to be corrupted"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the on-disk file.
	var file string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".data") {
			file = path
		}
		return nil
	})
	if file == "" {
		t.Fatal("block file not found")
	}
	if err := os.WriteFile(file, []byte("corrupted!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Cid()); err == nil {
		t.Error("corrupted block served without error")
	}
}

func TestFSStoreRejectsBadBlock(t *testing.T) {
	s := newFSStore(t)
	if err := s.Put(Block{}); err == nil {
		t.Error("zero block accepted")
	}
}

// TestFSStoreSweepsTmpFilesOnOpen: a crash between write and rename
// leaves a .tmp file; reopening the store must remove it.
func TestFSStoreSweepsTmpFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := New(multicodec.Raw, []byte("kept"))
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	shardDir, file := s.shardPath(b.Cid())
	stray := filepath.Join(shardDir, filepath.Base(file)+".tmp3")
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFSStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray tmp file survived reopen: %v", err)
	}
	if !s.Has(b.Cid()) {
		t.Error("real block removed by the tmp sweep")
	}
}

// TestFSStoreConcurrentAccess: with no global lock, concurrent Put
// (including same-CID races), Get and Delete must stay safe — run
// under -race in CI.
func TestFSStoreConcurrentAccess(t *testing.T) {
	s := newFSStore(t)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				// Shared key space: every worker touches block i%10.
				b := New(multicodec.Raw, []byte{byte(i % 10)})
				if err := s.Put(b); err != nil {
					done <- err
					return
				}
				if got, err := s.Get(b.Cid()); err == nil && !bytes.Equal(got.Data(), b.Data()) {
					done <- ErrHashMismatch
					return
				}
				if w == 0 && i%7 == 0 {
					s.Delete(b.Cid())
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// No temp files may remain after the dust settles.
	filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(filepath.Base(path), ".tmp") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}

func TestFSStoreSharding(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(New(multicodec.Raw, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	// More than one shard directory should exist.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Errorf("expected multiple shard directories, got %d", len(entries))
	}
	if s.Len() != 20 {
		t.Errorf("Len = %d", s.Len())
	}
}
