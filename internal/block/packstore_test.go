package block

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/multicodec"
	"repro/internal/telemetry"
)

func newPackStore(t *testing.T, dir string, cfg PackConfig) *PackStore {
	t.Helper()
	cfg.DisableBackground = true
	s, err := NewPackStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func packBlock(i int) Block {
	return New(multicodec.Raw, []byte(fmt.Sprintf("pack-block-%04d-%s", i, "xxxxxxxxxxxxxxxx")))
}

func volumeFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "pack-*.vol"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestPackStoreReopenRebuildsIndex: the index is purely in-memory, so
// everything must come back from the volume-header scan.
func TestPackStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{})
	var blocks []Block
	for i := 0; i < 50; i++ {
		b := packBlock(i)
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	deleted := blocks[3]
	s.Delete(deleted.Cid())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := newPackStore(t, dir, PackConfig{})
	if r.Len() != len(blocks)-1 {
		t.Fatalf("Len after reopen = %d, want %d", r.Len(), len(blocks)-1)
	}
	if r.Has(deleted.Cid()) {
		t.Fatal("tombstoned block resurrected on reopen")
	}
	for i, b := range blocks {
		if i == 3 {
			continue
		}
		got, err := r.Get(b.Cid())
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if string(got.Data()) != string(b.Data()) {
			t.Fatalf("block %d data mismatch", i)
		}
	}
}

// TestPackStoreCrashRecoveryTornTail simulates a crash mid-append:
// truncating the active volume inside the last record must lose only
// that record, and the reopened store must keep appending cleanly.
func TestPackStoreCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{})
	var blocks []Block
	for i := 0; i < 20; i++ {
		b := packBlock(i)
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	vols := volumeFiles(t, dir)
	if len(vols) != 1 {
		t.Fatalf("volumes = %d, want 1", len(vols))
	}
	st, err := os.Stat(vols[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the final record: its header survives but
	// the payload is short, which must read as a torn tail.
	if err := os.Truncate(vols[0], st.Size()-7); err != nil {
		t.Fatal(err)
	}

	r := newPackStore(t, dir, PackConfig{})
	last := blocks[len(blocks)-1]
	if r.Has(last.Cid()) {
		t.Fatal("torn tail record survived the scan")
	}
	if r.Len() != len(blocks)-1 {
		t.Fatalf("Len = %d, want %d", r.Len(), len(blocks)-1)
	}
	for _, b := range blocks[:len(blocks)-1] {
		if _, err := r.Get(b.Cid()); err != nil {
			t.Fatalf("pre-tear block lost: %v", err)
		}
	}
	// The truncated tail must not poison subsequent appends.
	nb := packBlock(999)
	if err := r.Put(nb); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := newPackStore(t, dir, PackConfig{})
	if _, err := r2.Get(nb.Cid()); err != nil {
		t.Fatalf("post-recovery append lost: %v", err)
	}
	if _, err := r2.Get(last.Cid()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record = %v, want ErrNotFound", err)
	}
}

// TestPackStoreGarbageTailTolerated: random garbage appended to the
// active volume (a torn header rather than a torn payload) is skipped.
func TestPackStoreGarbageTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{})
	b := packBlock(1)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(volumeFiles(t, dir)[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not a record header at all")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := newPackStore(t, dir, PackConfig{})
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if _, err := r.Get(b.Cid()); err != nil {
		t.Fatal(err)
	}
}

// TestPackStoreRotation: puts past the volume size cap must spill into
// new volume files, all of them readable.
func TestPackStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{VolumeSizeCap: 512})
	var blocks []Block
	for i := 0; i < 40; i++ {
		b := packBlock(i)
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(volumeFiles(t, dir)); n < 3 {
		t.Fatalf("volume files = %d, want >= 3 with a 512-byte cap", n)
	}
	for _, b := range blocks {
		if _, err := s.Get(b.Cid()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPackStoreCompactionReclaims: deleting most blocks must make the
// early volumes compactable; compaction keeps every live block
// readable, reclaims the dead bytes and removes volume files.
func TestPackStoreCompactionReclaims(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{VolumeSizeCap: 1024, CompactThreshold: 0.3})
	var blocks []Block
	for i := 0; i < 100; i++ {
		b := packBlock(i)
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	volsBefore := len(volumeFiles(t, dir))
	// Delete three of every four blocks.
	var live []Block
	for i, b := range blocks {
		if i%4 == 0 {
			live = append(live, b)
			continue
		}
		s.Delete(b.Cid())
	}
	deadBefore := s.DeadBytes()
	if deadBefore == 0 {
		t.Fatal("deletes recorded no dead bytes")
	}
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if got := s.DeadBytes(); got >= deadBefore {
		t.Fatalf("dead bytes not reclaimed: %d -> %d", deadBefore, got)
	}
	if volsAfter := len(volumeFiles(t, dir)); volsAfter >= volsBefore {
		t.Fatalf("volume files not removed: %d -> %d", volsBefore, volsAfter)
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
	for _, b := range live {
		got, err := s.Get(b.Cid())
		if err != nil {
			t.Fatalf("live block lost by compaction: %v", err)
		}
		if string(got.Data()) != string(b.Data()) {
			t.Fatal("live block corrupted by compaction")
		}
	}
	// The compacted state must also survive a reopen (moved records and
	// rewritten tombstones replay correctly).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPackStore(t, dir, PackConfig{})
	if r.Len() != len(live) {
		t.Fatalf("Len after reopen = %d, want %d", r.Len(), len(live))
	}
	for _, b := range live {
		if _, err := r.Get(b.Cid()); err != nil {
			t.Fatalf("live block lost across reopen: %v", err)
		}
	}
}

// TestPackStoreCompactionPreservesTombstones: compacting the volume
// that holds a tombstone while an older volume still holds the put
// record must rewrite the tombstone — otherwise a reopen would replay
// the stale put and resurrect deleted data.
func TestPackStoreCompactionPreservesTombstones(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{VolumeSizeCap: 400, CompactThreshold: 0.9})
	victim := packBlock(0)
	if err := s.Put(victim); err != nil {
		t.Fatal(err)
	}
	// Fill volume 0 past the cap so the tombstone lands in a later one.
	var fillers []Block
	for i := 1; i < 30; i++ {
		b := packBlock(i)
		fillers = append(fillers, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(victim.Cid())
	tombVol := s.activeID // the tombstone is in the current active volume
	// Roll the active volume forward so the tombstone's volume seals.
	for i := 30; i < 60; i++ {
		if err := s.Put(packBlock(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.activeID == tombVol {
		t.Fatalf("tombstone volume %d never sealed", tombVol)
	}
	// Make the tombstone's volume maximally dead so it compacts first,
	// while volume 0 (holding victim's put record) stays below the 0.9
	// threshold and survives.
	for _, b := range fillers {
		if loc, ok := s.index[b.cid.Key()]; ok && loc.vol == tombVol {
			s.Delete(b.Cid())
		}
	}
	if err := s.compactVolume(s.volumes[tombVol]); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.volumes[0]; !ok {
		t.Fatal("test premise broken: volume 0 was compacted away")
	}
	if s.Has(victim.Cid()) {
		t.Fatal("victim live before reopen")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPackStore(t, dir, PackConfig{})
	if r.Has(victim.Cid()) {
		t.Fatal("deleted block resurrected: tombstone dropped by compaction")
	}
}

// TestPackStoreDeleteThenReputSurvivesCompactionAndReopen: a re-put
// key must drop its obsolete tombstone during compaction rather than
// have the rewrite kill the live block.
func TestPackStoreDeleteThenReputSurvivesCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{VolumeSizeCap: 400, CompactThreshold: 0.2})
	b := packBlock(0)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	s.Delete(b.Cid())
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// Seal the volume holding put+tombstone+reput, then compact it.
	for i := 1; i < 40; i++ {
		if err := s.Put(packBlock(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Cid()); err != nil {
		t.Fatalf("re-put block lost after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPackStore(t, dir, PackConfig{})
	if _, err := r.Get(b.Cid()); err != nil {
		t.Fatalf("re-put block lost after reopen: %v", err)
	}
}

// TestPackStorePinBlocksDelete mirrors MemStore's pin semantics.
func TestPackStorePinBlocksDelete(t *testing.T) {
	s := newPackStore(t, t.TempDir(), PackConfig{})
	b := packBlock(0)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	s.Pin(b.Cid())
	if !s.Pinned(b.Cid()) {
		t.Fatal("Pinned = false after Pin")
	}
	s.Delete(b.Cid())
	if !s.Has(b.Cid()) {
		t.Fatal("pinned block deleted")
	}
	s.Unpin(b.Cid())
	s.Delete(b.Cid())
	if s.Has(b.Cid()) {
		t.Fatal("unpinned block survived Delete")
	}
}

// TestPackStoreDetectsCorruption: flipping payload bytes on disk must
// surface as an error from Get (self-certification), not bad data.
func TestPackStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{})
	b := packBlock(0)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload (the tail of the only record).
	vol := volumeFiles(t, dir)[0]
	raw, err := os.ReadFile(vol)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(vol, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Cid()); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on corrupt record = %v, want corruption error", err)
	}
}

// TestPackStoreMetrics: a wired registry sees put/get counters, the
// read-latency histogram and the live/dead gauges.
func TestPackStoreMetrics(t *testing.T) {
	s := newPackStore(t, t.TempDir(), PackConfig{})
	reg := telemetry.NewRegistry()
	s.SetMetrics(reg)
	b := packBlock(0)
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Cid()); err != nil {
		t.Fatal(err)
	}
	s.Delete(packBlock(1).Cid()) // miss: no counter, no panic
	snap := reg.Snapshot()
	if snap.Counters["blockstore_puts{store=pack}"] != 1 {
		t.Errorf("puts counter = %v", snap.Counters["blockstore_puts{store=pack}"])
	}
	if snap.Counters["blockstore_gets{store=pack}"] != 1 {
		t.Errorf("gets counter = %v", snap.Counters["blockstore_gets{store=pack}"])
	}
	if snap.Latencies["pack_read_seconds"].Count != 1 {
		t.Errorf("read histogram count = %d", snap.Latencies["pack_read_seconds"].Count)
	}
	if snap.Gauges["pack_live_bytes"] <= 0 {
		t.Errorf("live bytes gauge = %v", snap.Gauges["pack_live_bytes"])
	}
	if snap.Gauges["pack_volumes"] != 1 {
		t.Errorf("volumes gauge = %v", snap.Gauges["pack_volumes"])
	}
}

// TestPackStoreConcurrentStress hammers Put/Get/Delete from many
// goroutines while a compactor loops, under small volumes so rotation
// and compaction happen constantly. Run with -race in CI; the
// invariant checked throughout is that a Get never returns wrong data
// and the final index matches a sequential replay.
func TestPackStoreConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	s := newPackStore(t, dir, PackConfig{VolumeSizeCap: 2048, CompactThreshold: 0.3})
	const workers = 4
	const perWorker = 300
	var wg sync.WaitGroup
	stopCompact := make(chan struct{})
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for {
			select {
			case <-stopCompact:
				return
			default:
				if err := s.CompactNow(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				// Overlapping key space across workers: concurrent
				// same-CID puts and deletes are part of the test.
				b := packBlock(rng.Intn(100))
				switch rng.Intn(4) {
				case 0, 1:
					if err := s.Put(b); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 2:
					got, err := s.Get(b.Cid())
					if err == nil && string(got.Data()) != string(b.Data()) {
						t.Error("get returned wrong data")
						return
					}
					if err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("get: %v", err)
						return
					}
				case 3:
					s.Delete(b.Cid())
				}
			}
		}(w)
	}
	// Stop the compactor only after the workers are done.
	wg.Wait()
	close(stopCompact)
	<-compactDone

	// Whatever survived must read back correctly and survive a reopen.
	liveBefore := s.Len()
	for i := 0; i < 100; i++ {
		b := packBlock(i)
		got, err := s.Get(b.Cid())
		if err == nil && string(got.Data()) != string(b.Data()) {
			t.Fatal("corrupt block after stress")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPackStore(t, dir, PackConfig{})
	if r.Len() != liveBefore {
		t.Fatalf("reopen Len = %d, want %d", r.Len(), liveBefore)
	}
}

// TestPackStoreBackgroundLoop exercises the non-test path: the flush
// ticker and the Delete-kicked compaction goroutine.
func TestPackStoreBackgroundLoop(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPackStore(dir, PackConfig{
		VolumeSizeCap:    1024,
		FlushInterval:    time.Millisecond,
		CompactThreshold: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var blocks []Block
	for i := 0; i < 60; i++ {
		b := packBlock(i)
		blocks = append(blocks, b)
		if err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range blocks[:45] {
		s.Delete(b.Cid())
	}
	// Close waits for the worker, flushes and settles everything.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := newPackStore(t, dir, PackConfig{})
	if r.Len() != 15 {
		t.Fatalf("Len = %d, want 15", r.Len())
	}
	for _, b := range blocks[45:] {
		if _, err := r.Get(b.Cid()); err != nil {
			t.Fatal(err)
		}
	}
}
