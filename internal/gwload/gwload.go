// Package gwload generates synthetic gateway workloads matching the
// §4.2 dataset's published marginals: a diurnal arrival curve (Fig 4b),
// the user-country mix of a US gateway (Fig 6), log-normal object sizes
// with a 664.59 KB median and 79.1 % above 100 KB (Fig 11a), Zipf
// popularity, and the referrer mix of §6.3 (51.8 % third-party
// referred, concentrated on ~72 semi-popular sites).
package gwload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
)

// Object is one catalog entry.
type Object struct {
	Index  int
	Size   int  // bytes
	Pinned bool // uploaded via the Web3/NFT storage initiatives
}

// Catalog is the content universe requests draw from, rank-ordered by
// popularity (index 0 = most popular).
type Catalog struct {
	Objects []Object
	zipfCum []float64
}

// CatalogConfig tunes catalog generation.
type CatalogConfig struct {
	NumObjects int
	Seed       int64
	// ZipfS is the popularity skew exponent (default 1.05).
	ZipfS float64
	// PinnedFraction is the fraction of objects pinned into the
	// gateway's node store, biased toward popular objects — NFT
	// content is both pinned and hot (§6.3).
	PinnedFraction float64
	// MedianSize and SizeSigma shape the log-normal size distribution
	// (defaults: 664.59 KB median, sigma fitted so 79.1 % > 100 KB).
	MedianSize int
	SizeSigma  float64
	// MaxSize caps object sizes to keep simulations tractable.
	MaxSize int
}

func (c CatalogConfig) withDefaults() CatalogConfig {
	if c.NumObjects <= 0 {
		c.NumObjects = 1000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.05
	}
	if c.PinnedFraction == 0 {
		c.PinnedFraction = 0.72
	}
	if c.MedianSize <= 0 {
		c.MedianSize = 664_590 // 664.59 KB (Fig 11a)
	}
	if c.SizeSigma == 0 {
		// P(size > 100 KB) = 0.791 with median 664.59 KB:
		// z = ln(664.59/100)/sigma = 0.81 => sigma ≈ 2.34.
		c.SizeSigma = 2.34
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 8 << 20
	}
	return c
}

// NewCatalog builds a catalog.
func NewCatalog(cfg CatalogConfig) *Catalog {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{}
	for i := 0; i < cfg.NumObjects; i++ {
		size := int(math.Exp(math.Log(float64(cfg.MedianSize)) + cfg.SizeSigma*rng.NormFloat64()))
		if size < 64 {
			size = 64
		}
		if size > cfg.MaxSize {
			size = cfg.MaxSize
		}
		// Pinning is popularity-biased: the probability decays with
		// rank so hot NFT content is mostly pinned while a tail of
		// community content is not.
		rankFrac := float64(i) / float64(cfg.NumObjects)
		pinned := rng.Float64() < cfg.PinnedFraction*(1.1-0.45*rankFrac)
		cat.Objects = append(cat.Objects, Object{Index: i, Size: size, Pinned: pinned})
	}
	cat.zipfCum = make([]float64, cfg.NumObjects)
	var sum float64
	for i := 0; i < cfg.NumObjects; i++ {
		sum += math.Pow(float64(i+1), -cfg.ZipfS)
		cat.zipfCum[i] = sum
	}
	return cat
}

// SampleObject draws an object index by Zipf popularity.
func (c *Catalog) SampleObject(rng *rand.Rand) int {
	x := rng.Float64() * c.zipfCum[len(c.zipfCum)-1]
	i := sort.SearchFloat64s(c.zipfCum, x)
	if i >= len(c.Objects) {
		i = len(c.Objects) - 1
	}
	return i
}

// Request is one generated gateway request.
type Request struct {
	Time     time.Time
	Object   int // catalog index
	Country  geo.Region
	UserID   string
	Referrer string
}

// TraceConfig tunes request-trace generation.
type TraceConfig struct {
	NumRequests int
	NumUsers    int
	Day         time.Time // start of the 24 h window
	Seed        int64
	// ReferredFraction is the share of traffic arriving via third-party
	// websites (§6.3: 51.8 %).
	ReferredFraction float64
	// NumReferrerSites is the size of the semi-popular referrer pool
	// (§6.3: 72 sites carry 70.6 % of referred traffic).
	NumReferrerSites int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.NumRequests <= 0 {
		c.NumRequests = 10000
	}
	if c.NumUsers <= 0 {
		c.NumUsers = c.NumRequests / 70 // §4.2: 101k users / 7.1M requests
		if c.NumUsers < 1 {
			c.NumUsers = 1
		}
	}
	if c.Day.IsZero() {
		c.Day = time.Date(2022, 1, 2, 0, 0, 0, 0, time.UTC)
	}
	if c.ReferredFraction == 0 {
		c.ReferredFraction = 0.518
	}
	if c.NumReferrerSites <= 0 {
		c.NumReferrerSites = 72
	}
	return c
}

// diurnalWeight is the arrival intensity by UTC hour for a US-west
// gateway: two broad peaks reflecting the gateway-timezone and
// China-timezone user populations (Fig 4b's two curves).
func diurnalWeight(hour float64) float64 {
	// Peak around 19h UTC (US daytime) and a secondary around 6h UTC
	// (China daytime).
	us := math.Exp(-sq(angularDist(hour, 19)) / (2 * 4.0 * 4.0))
	cn := 0.75 * math.Exp(-sq(angularDist(hour, 6))/(2*3.5*3.5))
	return 0.22 + us + cn
}

func sq(x float64) float64 { return x * x }

// angularDist is the circular distance between hours on a 24 h clock.
func angularDist(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 24)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// GenerateTrace produces a time-ordered request trace over one day.
func GenerateTrace(cat *Catalog, cfg TraceConfig) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-assign users to countries so one user's requests geolocate
	// consistently (§4.2 aggregates users by IP+agent).
	userCountry := make([]geo.Region, cfg.NumUsers)
	for i := range userCountry {
		userCountry[i] = geo.SampleGatewayUserCountry(rng)
	}

	// Build the hourly intensity CDF.
	var hourCum [24]float64
	var sum float64
	for h := 0; h < 24; h++ {
		sum += diurnalWeight(float64(h))
		hourCum[h] = sum
	}

	reqs := make([]Request, cfg.NumRequests)
	for i := range reqs {
		x := rng.Float64() * sum
		h := sort.SearchFloat64s(hourCum[:], x)
		if h >= 24 {
			h = 23
		}
		ts := cfg.Day.Add(time.Duration(h) * time.Hour).
			Add(time.Duration(rng.Int63n(int64(time.Hour))))
		user := rng.Intn(cfg.NumUsers)
		ref := ""
		if rng.Float64() < cfg.ReferredFraction {
			// 70.6 % of referred traffic comes from the semi-popular
			// pool; the rest from a long random tail.
			if rng.Float64() < 0.706 {
				ref = fmt.Sprintf("https://site-%02d.example", rng.Intn(cfg.NumReferrerSites))
			} else {
				ref = fmt.Sprintf("https://longtail-%05d.example", rng.Intn(50000))
			}
		}
		reqs[i] = Request{
			Time:     ts,
			Object:   cat.SampleObject(rng),
			Country:  userCountry[user],
			UserID:   fmt.Sprintf("user-%06d", user),
			Referrer: ref,
		}
	}
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].Time.Before(reqs[b].Time) })
	return reqs
}
