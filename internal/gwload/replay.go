package gwload

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// FlashCrowdConfig tunes flash-crowd trace generation: a steady
// Zipf-popularity request stream with a burst window during which one
// viral object arrives at BurstMultiplier times the steady rate — the
// "NFT drop" overload shape the gateway fleet's admission control and
// shared cache tier exist for.
type FlashCrowdConfig struct {
	// Start anchors the trace timestamps (scenario window start).
	Start time.Time
	// Duration is the full trace span (default 30 min).
	Duration time.Duration
	// SteadyRPS is the steady-state arrival rate (default 1/s).
	SteadyRPS float64
	// BurstStart/BurstDuration bound the viral window (defaults: one
	// third into the trace, lasting one third of it).
	BurstStart    time.Duration
	BurstDuration time.Duration
	// BurstMultiplier scales the viral object's arrival rate relative to
	// the whole steady stream (default 100 — the scenario's 100x).
	BurstMultiplier float64
	// ViralObject is the catalog index that goes viral (default: the
	// most popular unpinned object, falling back to index 0).
	ViralObject int
	// NumUsers sizes the requesting population (default: enough for one
	// request per user at steady state, 100x distinct users in a burst).
	NumUsers int
	Seed     int64
}

func (c FlashCrowdConfig) withDefaults() FlashCrowdConfig {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Minute
	}
	if c.SteadyRPS <= 0 {
		c.SteadyRPS = 1
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = c.Duration / 3
	}
	if c.BurstStart <= 0 {
		c.BurstStart = c.Duration / 3
	}
	if c.BurstMultiplier <= 0 {
		c.BurstMultiplier = 100
	}
	if c.NumUsers <= 0 {
		c.NumUsers = int(c.SteadyRPS*c.Duration.Seconds()) + 1
	}
	return c
}

// ViralObject picks the flash-crowd target for a catalog: the least
// popular unpinned object — a fresh mint nobody has requested yet, so
// the burst's first request pays a full P2P retrieval with every cache
// tier cold, the way a real NFT drop arrives.
func ViralObject(cat *Catalog) int {
	for i := len(cat.Objects) - 1; i >= 0; i-- {
		if !cat.Objects[i].Pinned {
			return cat.Objects[i].Index
		}
	}
	return len(cat.Objects) - 1
}

// GenerateFlashCrowd produces a time-ordered trace: steady Zipf
// arrivals at SteadyRPS across the whole span, plus the viral object at
// (BurstMultiplier-1) x the steady rate inside the burst window, from
// a wide pool of distinct users (a flash crowd is new users, not one
// user retrying). Arrivals are evenly spaced, keeping event-driven
// replays deterministic.
func GenerateFlashCrowd(cat *Catalog, cfg FlashCrowdConfig) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	userCountry := make([]geo.Region, cfg.NumUsers)
	for i := range userCountry {
		userCountry[i] = geo.SampleGatewayUserCountry(rng)
	}

	var reqs []Request
	steadyN := int(cfg.SteadyRPS * cfg.Duration.Seconds())
	for i := 0; i < steadyN; i++ {
		ts := cfg.Start.Add(time.Duration(float64(i) / cfg.SteadyRPS * float64(time.Second)))
		user := rng.Intn(cfg.NumUsers)
		reqs = append(reqs, Request{
			Time:    ts,
			Object:  cat.SampleObject(rng),
			Country: userCountry[user],
			UserID:  fmt.Sprintf("user-%06d", user),
		})
	}

	burstRate := cfg.SteadyRPS * (cfg.BurstMultiplier - 1)
	burstN := int(burstRate * cfg.BurstDuration.Seconds())
	for i := 0; i < burstN; i++ {
		ts := cfg.Start.Add(cfg.BurstStart).
			Add(time.Duration(float64(i) / burstRate * float64(time.Second)))
		// Flash-crowd users are overwhelmingly new: draw from a 10x wider
		// synthetic pool so the crowd is distinct users, not retries.
		user := cfg.NumUsers + rng.Intn(10*cfg.NumUsers)
		reqs = append(reqs, Request{
			Time:    ts,
			Object:  cfg.ViralObject,
			Country: geo.SampleGatewayUserCountry(rng),
			UserID:  fmt.Sprintf("user-%06d", user),
			// The viral path is always referred traffic (§6.3's
			// third-party embeds are how content goes viral).
			Referrer: "https://viral.example",
		})
	}
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Time.Before(reqs[b].Time) })
	return reqs
}

// ReplayStats aggregates one replay: sim-accurate time-to-first-byte
// per completed request plus outcome counts.
type ReplayStats struct {
	mu       sync.Mutex
	ttfb     *stats.Sample
	requests int
	failures int
}

// TTFB returns the sim-accurate time-to-first-byte sample, in seconds.
func (s *ReplayStats) TTFB() *stats.Sample { return s.ttfb }

// Requests returns how many requests the replay dispatched.
func (s *ReplayStats) Requests() int { return s.requests }

// Failures returns how many requests reported an error (including
// shed rejections — the caller's do func decides what is an error).
func (s *ReplayStats) Failures() int { return s.failures }

// Replay dispatches a trace against a target at the trace's own
// arrival instants, on the simulated clock: the caller's goroutine
// sleeps to each request's offset through src, each request runs on a
// src.Go goroutine so arrivals overlap (that concurrency is what
// drives fleet admission control), and TTFB is measured with
// src.Stamp/src.Since — simulated durations, never wall clock, so
// event-driven scenarios report sim-accurate latencies. The do func
// serves one request (a gateway or fleet Fetch) and reports failure.
// Replay returns once every dispatched request completed.
func Replay(ctx context.Context, src simtime.Source, reqs []Request, do func(ctx context.Context, r Request) error) *ReplayStats {
	if src == nil {
		src = simtime.BaseSource{}
	}
	rs := &ReplayStats{ttfb: stats.NewSample()}
	g := simtime.NewGroup(src)
	for _, r := range reqs {
		if wait := r.Time.Sub(src.Now()); wait > 0 {
			if src.Sleep(ctx, wait) != nil {
				break
			}
		}
		req := r
		rs.requests++
		g.Go(ctx, func(ctx context.Context) {
			t0 := src.Stamp()
			err := do(ctx, req)
			d := src.Since(t0)
			rs.mu.Lock()
			if err != nil {
				// Shed and failed requests are counted, not timed: a
				// fast 503 would drag the TTFB percentiles toward zero.
				rs.failures++
			} else {
				rs.ttfb.Add(d.Seconds())
			}
			rs.mu.Unlock()
		})
	}
	g.Wait(ctx)
	return rs
}
