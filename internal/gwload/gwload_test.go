package gwload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestCatalogSizeDistribution(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 20000, Seed: 1, MaxSize: 1 << 30})
	s := stats.NewSample()
	for _, o := range cat.Objects {
		s.Add(float64(o.Size))
	}
	// Median ~664.59 KB (Fig 11a).
	med := s.Median()
	if med < 450_000 || med > 950_000 {
		t.Errorf("median size = %.0f, want ~664590", med)
	}
	// 79.1 % above 100 KB.
	above := 1 - s.FractionBelow(100_000)
	if math.Abs(above-0.791) > 0.05 {
		t.Errorf("fraction above 100KB = %.3f, want ~0.791", above)
	}
}

func TestCatalogSizeCaps(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 5000, Seed: 2, MaxSize: 1 << 20})
	for _, o := range cat.Objects {
		if o.Size > 1<<20 || o.Size < 64 {
			t.Fatalf("size %d out of caps", o.Size)
		}
	}
}

func TestZipfPopularity(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 1000, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[cat.SampleObject(rng)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Errorf("popularity not decreasing: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// The head should dominate: top-10 objects get a sizeable share.
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	if frac := float64(top10) / n; frac < 0.2 {
		t.Errorf("top-10 share = %.3f, want skewed head", frac)
	}
}

func TestPinningBiasedTowardPopular(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 10000, Seed: 5})
	headPinned, tailPinned := 0, 0
	for _, o := range cat.Objects[:1000] {
		if o.Pinned {
			headPinned++
		}
	}
	for _, o := range cat.Objects[9000:] {
		if o.Pinned {
			tailPinned++
		}
	}
	if headPinned <= tailPinned {
		t.Errorf("pinning should favour popular objects: head=%d tail=%d", headPinned, tailPinned)
	}
}

func TestGenerateTraceOrderedAndWithinDay(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 100, Seed: 6})
	day := time.Date(2022, 1, 2, 0, 0, 0, 0, time.UTC)
	reqs := GenerateTrace(cat, TraceConfig{NumRequests: 5000, Day: day, Seed: 7})
	if len(reqs) != 5000 {
		t.Fatalf("requests = %d", len(reqs))
	}
	for i, r := range reqs {
		if i > 0 && r.Time.Before(reqs[i-1].Time) {
			t.Fatal("trace not time-ordered")
		}
		if r.Time.Before(day) || !r.Time.Before(day.Add(24*time.Hour)) {
			t.Fatalf("timestamp %v outside the day", r.Time)
		}
	}
}

func TestTraceUserGeoMix(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 100, Seed: 8})
	reqs := GenerateTrace(cat, TraceConfig{NumRequests: 30000, Seed: 9})
	counts := map[string]int{}
	for _, r := range reqs {
		counts[string(r.Country)]++
	}
	us := float64(counts["US"]) / float64(len(reqs))
	cn := float64(counts["CN"]) / float64(len(reqs))
	// Fig 6: US 50.4 %, CN 31.9 % — user-level assignment adds variance.
	if us < 0.40 || us > 0.62 {
		t.Errorf("US share = %.3f, want ~0.504", us)
	}
	if cn < 0.22 || cn > 0.42 {
		t.Errorf("CN share = %.3f, want ~0.319", cn)
	}
}

func TestTraceDiurnalVariation(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 100, Seed: 10})
	reqs := GenerateTrace(cat, TraceConfig{NumRequests: 50000, Seed: 11})
	var byHour [24]int
	for _, r := range reqs {
		byHour[r.Time.UTC().Hour()]++
	}
	min, max := byHour[0], byHour[0]
	for _, c := range byHour {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) < 1.5*float64(min) {
		t.Errorf("diurnal variation too flat: min=%d max=%d (Fig 4b)", min, max)
	}
}

func TestTraceReferrerMix(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 100, Seed: 12})
	reqs := GenerateTrace(cat, TraceConfig{NumRequests: 40000, Seed: 13})
	referred, semiPopular := 0, 0
	for _, r := range reqs {
		if r.Referrer != "" {
			referred++
			if len(r.Referrer) > 8 && r.Referrer[:12] == "https://site" {
				semiPopular++
			}
		}
	}
	refFrac := float64(referred) / float64(len(reqs))
	if math.Abs(refFrac-0.518) > 0.03 {
		t.Errorf("referred fraction = %.3f, want ~0.518", refFrac)
	}
	semiFrac := float64(semiPopular) / float64(referred)
	if math.Abs(semiFrac-0.706) > 0.03 {
		t.Errorf("semi-popular referred fraction = %.3f, want ~0.706", semiFrac)
	}
}

func TestTraceUsersConsistentCountry(t *testing.T) {
	cat := NewCatalog(CatalogConfig{NumObjects: 50, Seed: 14})
	reqs := GenerateTrace(cat, TraceConfig{NumRequests: 10000, NumUsers: 50, Seed: 15})
	seen := map[string]string{}
	for _, r := range reqs {
		if prev, ok := seen[r.UserID]; ok && prev != string(r.Country) {
			t.Fatalf("user %s changed country %s -> %s", r.UserID, prev, r.Country)
		}
		seen[r.UserID] = string(r.Country)
	}
}
