package routing

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/record"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Indexer is the delegated-routing aggregator node role: a single peer
// holding a large provider-record store that publishers push to and
// requestors query directly over the existing wire/swarm fabric —
// content discovery in one RPC instead of a DHT walk. It is not a DHT
// participant; it only ever speaks ADD_PROVIDER / GET_PROVIDERS (plus
// PING and IDENTIFY).
type Indexer struct {
	ident     peer.Identity
	sw        *swarm.Swarm
	providers *record.ProviderStore
	now       func() time.Time
}

// IndexerConfig tunes an indexer node.
type IndexerConfig struct {
	// RecordTTL expires provider records (default 24 h, as the DHT's).
	RecordTTL time.Duration
	// Base compresses simulated time.
	Base simtime.Base
	// Now supplies the clock for record expiry.
	Now func() time.Time
}

// NewIndexer assembles an indexer node over the endpoint and installs
// its message handler.
func NewIndexer(ident peer.Identity, ep transport.Endpoint, cfg IndexerConfig) *Indexer {
	if cfg.Base == (simtime.Base{}) {
		cfg.Base = simtime.Realtime
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ix := &Indexer{
		ident:     ident,
		sw:        swarm.New(ident, ep, cfg.Base),
		providers: record.NewProviderStore(cfg.RecordTTL, cfg.Now),
		now:       cfg.Now,
	}
	ep.SetHandler(ix.handle)
	return ix
}

// ID returns the indexer's PeerID.
func (ix *Indexer) ID() peer.ID { return ix.ident.ID }

// Info returns the indexer's PeerInfo for client configuration.
func (ix *Indexer) Info() wire.PeerInfo {
	return wire.PeerInfo{ID: ix.ident.ID, Addrs: ix.sw.Addrs()}
}

// Len returns how many provider records the indexer holds.
func (ix *Indexer) Len() int { return ix.providers.Len() }

// HasProvider reports whether the indexer currently holds at least one
// unexpired provider record for c — the health probe churn-scenario
// runners sample per tick without spending an RPC.
func (ix *Indexer) HasProvider(c cid.Cid) bool {
	return len(ix.providers.Get(c)) > 0
}

// GC drops expired records, returning how many were removed.
func (ix *Indexer) GC() int { return ix.providers.GC() }

// Close shuts the indexer down.
func (ix *Indexer) Close() error { return ix.sw.Close() }

// handle serves the indexer's two-RPC protocol.
func (ix *Indexer) handle(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
	switch req.Type {
	case wire.TPing:
		return wire.Message{Type: wire.TAck}

	case wire.TIdentify:
		return wire.Message{Type: wire.TNodes, Peers: []wire.PeerInfo{ix.Info()}}

	case wire.TAddProvider:
		// A bulk announce carries a whole record batch (Key plus Keys) in
		// one RPC — how ProvideMany refreshes every record at this
		// indexer for the cost of a single request.
		if len(req.Providers) == 0 {
			return wire.ErrorMessage("no provider supplied")
		}
		prov := req.Providers[0]
		stored := 0
		for _, key := range req.AllKeys() {
			c, err := cid.FromBytes(key)
			if err != nil {
				return wire.ErrorMessage("bad cid: %v", err)
			}
			ix.providers.Add(record.ProviderRecord{Cid: c, Provider: prov.ID, Published: ix.now()})
			stored++
		}
		if stored == 0 {
			return wire.ErrorMessage("no record keys supplied")
		}
		if len(prov.Addrs) > 0 {
			ix.sw.Book().Add(prov.ID, prov.Addrs)
		}
		return wire.Message{Type: wire.TAck}

	case wire.TGetProviders:
		c, err := cid.FromBytes(req.Key)
		if err != nil {
			return wire.ErrorMessage("bad cid: %v", err)
		}
		resp := wire.Message{Type: wire.TProviders}
		for _, pr := range ix.providers.Get(c) {
			info := wire.PeerInfo{ID: pr.Provider}
			if addrs, ok := ix.sw.Book().Get(pr.Provider); ok {
				info.Addrs = addrs
			}
			resp.Providers = append(resp.Providers, info)
		}
		return resp
	}
	return wire.ErrorMessage("indexer: unhandled message %s", req.Type)
}

// IndexerRouterConfig tunes the delegated-routing client.
type IndexerRouterConfig struct {
	// RPCTimeout bounds one indexer RPC (default 10 s).
	RPCTimeout time.Duration
	// Base compresses simulated time.
	Base simtime.Base
	// Now supplies the wall clock for the ack ledger (default time.Now;
	// simulations pass their movable clock).
	Now func() time.Time
}

func (c IndexerRouterConfig) withDefaults() IndexerRouterConfig {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// IndexerRouter is the delegated-routing client: it publishes provider
// records to every configured indexer and answers lookups from the
// first indexer that knows the key, falling back to the DHT on a miss
// (the production deployment's behaviour — the indexer accelerates the
// common case, the DHT stays authoritative).
type IndexerRouter struct {
	cfg      IndexerRouterConfig
	sw       *swarm.Swarm
	fallback Router // nil disables fallback (tests)
	ledger   *Ledger

	mu       sync.RWMutex
	indexers []wire.PeerInfo
}

// NewIndexerRouter creates a client talking to the given indexers.
func NewIndexerRouter(sw *swarm.Swarm, indexers []wire.PeerInfo, fallback Router, cfg IndexerRouterConfig) *IndexerRouter {
	cfg = cfg.withDefaults()
	return &IndexerRouter{
		cfg:      cfg,
		sw:       sw,
		fallback: fallback,
		ledger:   NewLedger(cfg.Now),
		indexers: append([]wire.PeerInfo(nil), indexers...),
	}
}

// Name implements Router.
func (r *IndexerRouter) Name() string { return string(KindIndexer) }

// Ledger exposes the republish ack ledger.
func (r *IndexerRouter) Ledger() *Ledger { return r.ledger }

// SetIndexers replaces the indexer set (e.g. after discovery).
func (r *IndexerRouter) SetIndexers(indexers []wire.PeerInfo) {
	r.mu.Lock()
	r.indexers = append([]wire.PeerInfo(nil), indexers...)
	r.mu.Unlock()
}

func (r *IndexerRouter) targets() []wire.PeerInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.PeerInfo(nil), r.indexers...)
}

// Provide implements Router: push the record to every indexer in one
// hop each. If no indexer accepts it, fall back to the DHT walk so the
// record is never lost.
func (r *IndexerRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	var res ProvideResult
	start := time.Now()
	targets := r.targets()
	if len(targets) == 0 {
		if r.fallback != nil {
			return r.fallback.Provide(ctx, c)
		}
		return res, fmt.Errorf("routing: indexer provide %s: no indexers configured", c)
	}
	req := wire.Message{
		Type:      wire.TAddProvider,
		Key:       c.Bytes(),
		Providers: []wire.PeerInfo{{ID: r.sw.Local(), Addrs: r.sw.Addrs()}},
	}
	var acked []wire.PeerInfo
	res.StoreTargets = targets
	res.StoreAttempts, acked = storeBatch(ctx, r.sw, r.cfg.Base, r.cfg.RPCTimeout, targets, req)
	res.StoreOK = len(acked)
	res.AckedTargets = acked
	for _, t := range acked {
		r.ledger.Confirm(t, c.Key())
	}
	res.BatchDuration = r.cfg.Base.SimSince(start)
	res.TotalDuration = res.BatchDuration
	if res.StoreOK == 0 {
		return provideFallback(ctx, r.fallback, c, res,
			fmt.Errorf("routing: indexer provide %s: all %d indexer stores failed", c, res.StoreAttempts))
	}
	return res, nil
}

// ProvideMany implements Router: one bulk announce per configured
// indexer — the whole batch's record keys ride a single multi-record
// ADD_PROVIDER RPC — with ack-ledger skips, and a fallback retry for
// the batch when no indexer accepted it.
func (r *IndexerRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	targets := r.targets()
	if len(targets) == 0 {
		if r.fallback != nil {
			return r.fallback.ProvideMany(ctx, cids)
		}
		return ProvideManyResult{CIDs: len(cids)}, fmt.Errorf("routing: indexer provide batch of %d: no indexers configured", len(cids))
	}
	res, provided := provideManyGrouped(ctx, r.sw, r.cfg.Base, r.cfg.RPCTimeout, r.ledger, cids,
		func(cid.Cid) []wire.PeerInfo { return targets })
	return provideManyFallback(ctx, r.fallback, res, unprovided(cids, provided))
}

// FindProvidersStream implements Router: ask each indexer in turn and
// yield the first non-empty answer, chaining into the DHT fallback's
// stream on a miss with the indexer RPCs included in the reported
// message count.
func (r *IndexerRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	return streamWithFallback(ctx, r.direct, r.fallback, c)
}

// SessionPeers implements Router: one RPC to the first indexer that
// knows the key, without the DHT fallback — a session candidate miss
// leaves the caller on the broadcast/walk path.
func (r *IndexerRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	return sessionFromDirect(ctx, r.direct, c, n)
}

// WantBroadcast implements Router: the indexer names the providers
// directly, so the opportunistic broadcast is skipped.
func (r *IndexerRouter) WantBroadcast() bool { return false }

// direct queries the configured indexers in turn, returning
// ErrNoProviders when every indexer misses or is unreachable.
func (r *IndexerRouter) direct(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	var info LookupInfo
	start := time.Now()
	key := c.Bytes()
	for _, ix := range r.targets() {
		if ctx.Err() != nil {
			break
		}
		rctx, cancel := r.cfg.Base.WithTimeout(ctx, r.cfg.RPCTimeout)
		resp, err := r.sw.Request(rctx, ix.ID, ix.Addrs, wire.Message{Type: wire.TGetProviders, Key: key})
		cancel()
		if err != nil || resp.Type != wire.TProviders {
			info.Failed++
			continue
		}
		info.Queried++
		if len(resp.Providers) > 0 {
			info.Duration = r.cfg.Base.SimSince(start)
			info.Depth = 1
			return fillAddrs(r.sw, resp.Providers), info, nil
		}
	}
	info.Duration = r.cfg.Base.SimSince(start)
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	return nil, info, ErrNoProviders
}
