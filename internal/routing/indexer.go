package routing

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/record"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Indexer is the delegated-routing aggregator node role: a peer
// holding a large provider-record store that publishers push to and
// requestors query directly over the existing wire/swarm fabric —
// content discovery in one RPC instead of a DHT walk. It is not a DHT
// participant; it speaks ADD_PROVIDER / GET_PROVIDERS (plus PING and
// IDENTIFY), and — when it serves a shard inside an IndexerSet — the
// GOSSIP anti-entropy push that replicates records across its replica
// group.
type Indexer struct {
	ident     peer.Identity
	sw        *swarm.Swarm
	providers *record.ProviderStore
	now       func() time.Time
	src       simtime.Source
	ttl       time.Duration
	timeout   time.Duration
	gossip    *Ledger // per-group-peer ack dedup for anti-entropy rounds
	tel       *telemetry.Recorder

	mu    sync.RWMutex
	group []wire.PeerInfo // replica-group neighbours (self excluded)
}

// IndexerConfig tunes an indexer node.
type IndexerConfig struct {
	// RecordTTL expires provider records (default 24 h, as the DHT's).
	RecordTTL time.Duration
	// RPCTimeout bounds one gossip RPC (default 10 s).
	RPCTimeout time.Duration
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Now supplies the clock for record expiry.
	Now func() time.Time
	// Time is the unified time surface; nil derives it from Base/Now.
	Time simtime.Source
}

// NewIndexer assembles an indexer node over the endpoint and installs
// its message handler.
func NewIndexer(ident peer.Identity, ep transport.Endpoint, cfg IndexerConfig) *Indexer {
	if cfg.Base == (simtime.Base{}) {
		cfg.Base = simtime.Realtime
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RecordTTL <= 0 {
		cfg.RecordTTL = record.DefaultExpireInterval
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.Time == nil {
		cfg.Time = simtime.NewBaseSource(cfg.Base, cfg.Now)
	}
	ix := &Indexer{
		ident:     ident,
		sw:        swarm.New(ident, ep, cfg.Time),
		providers: record.NewProviderStore(cfg.RecordTTL, cfg.Now),
		now:       cfg.Now,
		src:       cfg.Time,
		ttl:       cfg.RecordTTL,
		timeout:   cfg.RPCTimeout,
		gossip:    NewAckLedger(cfg.Now),
		tel:       telemetry.NewRecorder(cfg.Time),
	}
	ep.SetHandler(ix.handle)
	return ix
}

// ID returns the indexer's PeerID.
func (ix *Indexer) ID() peer.ID { return ix.ident.ID }

// Info returns the indexer's PeerInfo for client configuration.
func (ix *Indexer) Info() wire.PeerInfo {
	return wire.PeerInfo{ID: ix.ident.ID, Addrs: ix.sw.Addrs()}
}

// Len returns how many provider records the indexer holds.
func (ix *Indexer) Len() int { return ix.providers.Len() }

// HasProvider reports whether the indexer currently holds at least one
// unexpired provider record for c — the health probe churn-scenario
// runners sample per tick without spending an RPC.
func (ix *Indexer) HasProvider(c cid.Cid) bool {
	return len(ix.providers.Get(c)) > 0
}

// GC drops expired records, returning how many were removed. The
// churn-scenario engine calls it every tick so the store stays bounded
// by the records published within one TTL window.
func (ix *Indexer) GC() int { return ix.providers.GC() }

// Close shuts the indexer down.
func (ix *Indexer) Close() error { return ix.sw.Close() }

// SetReplicaGroup installs the indexer's gossip neighbours: the other
// members of its shard's replica group. Self entries are dropped.
func (ix *Indexer) SetReplicaGroup(peers []wire.PeerInfo) {
	var group []wire.PeerInfo
	for _, pi := range peers {
		if pi.ID != ix.ident.ID {
			group = append(group, pi)
		}
	}
	ix.mu.Lock()
	ix.group = group
	ix.mu.Unlock()
}

// ReplicaGroup returns the configured gossip neighbours.
func (ix *Indexer) ReplicaGroup() []wire.PeerInfo {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]wire.PeerInfo(nil), ix.group...)
}

// GossipLedgerLen returns how many acks the gossip dedup ledger holds
// (bounded-memory tests).
func (ix *Indexer) GossipLedgerLen() int { return ix.gossip.Len() }

// Telemetry exposes the indexer's recorder (gossip round counters).
func (ix *Indexer) Telemetry() *telemetry.Recorder { return ix.tel }

// GossipStats instruments one anti-entropy round.
type GossipStats struct {
	Peers   int // group peers pushed to this round
	RPCs    int // GOSSIP RPCs issued
	Acked   int // RPCs acknowledged
	Records int // record copies pushed (pre-dedup records × peers)
}

// gossipBatchMax bounds one GOSSIP message to the codec's record cap.
const gossipBatchMax = 2048

// Gossip runs one anti-entropy round: every unexpired provider record
// not yet confirmed at a group peer this cycle is pushed to it in
// batched GOSSIP RPCs, and acks land in the indexer's ledger so the
// next round skips them while the ack is fresh (cycle-scoped dedup —
// the same Ledger the republish path uses). Records carry their
// original publish instant, so a replicated copy expires with the
// original. RPCs are tagged with the gossip budget category.
func (ix *Indexer) Gossip(ctx context.Context) GossipStats {
	var st GossipStats
	group := ix.ReplicaGroup()
	if len(group) == 0 {
		return st
	}
	ctx = transport.WithRPCCategory(ctx, transport.CatGossip)
	// Acks past the freshness bound can never suppress a push again;
	// dropping them keeps the dedup ledger bounded by one freshness
	// window of live records, like the store GC bounds the records.
	ix.gossip.PruneStale()
	recs := ix.providers.Records()
	for _, target := range group {
		if ctx.Err() != nil {
			break
		}
		var entries []wire.ProviderEntry
		var keys []string
		for _, r := range recs {
			if ix.gossip.Fresh(target.ID, r.Cid.Key()) {
				continue
			}
			e := wire.ProviderEntry{Key: r.Cid.Bytes(), Provider: wire.PeerInfo{ID: r.Provider}, Published: r.Published}
			if addrs, ok := ix.sw.Book().Get(r.Provider); ok {
				e.Provider.Addrs = addrs
			}
			entries = append(entries, e)
			keys = append(keys, r.Cid.Key())
		}
		if len(entries) == 0 {
			continue
		}
		st.Peers++
		for off := 0; off < len(entries); off += gossipBatchMax {
			end := off + gossipBatchMax
			if end > len(entries) {
				end = len(entries)
			}
			st.RPCs++
			st.Records += end - off
			rctx, cancel := ix.src.WithTimeout(ctx, ix.timeout)
			resp, err := ix.sw.Request(rctx, target.ID, target.Addrs, wire.Message{Type: wire.TGossip, Records: entries[off:end]})
			cancel()
			if err != nil || resp.Type != wire.TAck {
				continue
			}
			st.Acked++
			ix.gossip.Confirm(target, keys[off:end]...)
		}
	}
	reg := ix.tel.Registry()
	reg.Counter("gossip_rounds").Inc()
	reg.Counter("gossip_rpcs").Add(float64(st.RPCs))
	reg.Counter("gossip_acked").Add(float64(st.Acked))
	reg.Counter("gossip_records").Add(float64(st.Records))
	return st
}

// handle serves the indexer's two-RPC protocol.
func (ix *Indexer) handle(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
	switch req.Type {
	case wire.TPing:
		return wire.Message{Type: wire.TAck}

	case wire.TIdentify:
		return wire.Message{Type: wire.TNodes, Peers: []wire.PeerInfo{ix.Info()}}

	case wire.TAddProvider:
		// A bulk announce carries a whole record batch (Key plus Keys) in
		// one RPC — how ProvideMany refreshes every record at this
		// indexer for the cost of a single request.
		if len(req.Providers) == 0 {
			return wire.ErrorMessage("no provider supplied")
		}
		prov := req.Providers[0]
		stored := 0
		for _, key := range req.AllKeys() {
			c, err := cid.FromBytes(key)
			if err != nil {
				return wire.ErrorMessage("bad cid: %v", err)
			}
			ix.providers.Add(record.ProviderRecord{Cid: c, Provider: prov.ID, Published: ix.now()})
			stored++
		}
		if stored == 0 {
			return wire.ErrorMessage("no record keys supplied")
		}
		if len(prov.Addrs) > 0 {
			ix.sw.Book().Add(prov.ID, prov.Addrs)
		}
		return wire.Message{Type: wire.TAck}

	case wire.TGossip:
		// Anti-entropy push from a replica-group peer: adopt each record
		// with its original publish instant — never refreshed — so the
		// copy expires exactly when the original does, and never let an
		// older copy roll back a record we refreshed since. Confirming
		// the sender in our own gossip ledger suppresses the echo: we
		// will not push the same records straight back this cycle.
		now := ix.now()
		for _, e := range req.Records {
			c, err := cid.FromBytes(e.Key)
			if err != nil {
				return wire.ErrorMessage("bad record cid: %v", err)
			}
			rec := record.ProviderRecord{Cid: c, Provider: e.Provider.ID, Published: e.Published}
			if rec.Expired(now, ix.ttl) {
				continue
			}
			newer := true
			for _, have := range ix.providers.Get(c) {
				if have.Provider == e.Provider.ID && !have.Published.Before(e.Published) {
					newer = false
					break
				}
			}
			if newer {
				ix.providers.Add(rec)
			}
			if len(e.Provider.Addrs) > 0 {
				ix.sw.Book().Add(e.Provider.ID, e.Provider.Addrs)
			}
			ix.gossip.Confirm(wire.PeerInfo{ID: from}, c.Key())
		}
		return wire.Message{Type: wire.TAck}

	case wire.TGetProviders:
		c, err := cid.FromBytes(req.Key)
		if err != nil {
			return wire.ErrorMessage("bad cid: %v", err)
		}
		resp := wire.Message{Type: wire.TProviders}
		for _, pr := range ix.providers.Get(c) {
			info := wire.PeerInfo{ID: pr.Provider}
			if addrs, ok := ix.sw.Book().Get(pr.Provider); ok {
				info.Addrs = addrs
			}
			resp.Providers = append(resp.Providers, info)
		}
		return resp
	}
	return wire.ErrorMessage("indexer: unhandled message %s", req.Type)
}

// IndexerRouterConfig tunes the delegated-routing client.
type IndexerRouterConfig struct {
	// RPCTimeout bounds one indexer RPC (default 10 s).
	RPCTimeout time.Duration
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Now supplies the wall clock for the ack ledger (default time.Now;
	// simulations pass their movable clock).
	Now func() time.Time
	// Time is the unified time surface; nil derives it from Base/Now.
	Time simtime.Source
}

func (c IndexerRouterConfig) withDefaults() IndexerRouterConfig {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, c.Now)
	}
	return c
}

// IndexerRouter is the delegated-routing client. Against a flat
// indexer list it publishes provider records to every indexer and
// answers lookups from the first indexer that knows the key; against a
// sharded IndexerSet it routes each CID to its shard's replica group —
// publications land on every replica, lookups run down the replica
// list (fail-over past offline owners) with provider batches merged
// across replicas. Misses fall back to the DHT either way (the
// production deployment's behaviour — the indexer accelerates the
// common case, the DHT stays authoritative).
type IndexerRouter struct {
	cfg      IndexerRouterConfig
	sw       *swarm.Swarm
	fallback Router // nil disables fallback (tests)
	ledger   *Ledger

	mu       sync.RWMutex
	indexers []wire.PeerInfo
	set      *IndexerSet // non-nil selects sharded routing
}

// NewIndexerRouter creates a client talking to the given indexers.
func NewIndexerRouter(sw *swarm.Swarm, indexers []wire.PeerInfo, fallback Router, cfg IndexerRouterConfig) *IndexerRouter {
	cfg = cfg.withDefaults()
	return &IndexerRouter{
		cfg:      cfg,
		sw:       sw,
		fallback: fallback,
		ledger:   NewLedger(cfg.Now),
		indexers: append([]wire.PeerInfo(nil), indexers...),
	}
}

// Name implements Router.
func (r *IndexerRouter) Name() string { return string(KindIndexer) }

// Ledger exposes the republish ack ledger.
func (r *IndexerRouter) Ledger() *Ledger { return r.ledger }

// SetIndexers replaces the indexer set (e.g. after discovery).
func (r *IndexerRouter) SetIndexers(indexers []wire.PeerInfo) {
	r.mu.Lock()
	r.indexers = append([]wire.PeerInfo(nil), indexers...)
	r.mu.Unlock()
}

// SetIndexerSet installs a shard topology: every Provide / lookup is
// routed to the owning shard's replica group instead of the flat list.
// Passing nil reverts to flat routing.
func (r *IndexerRouter) SetIndexerSet(set *IndexerSet) {
	r.mu.Lock()
	r.set = set
	r.mu.Unlock()
}

func (r *IndexerRouter) shardSet() *IndexerSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.set
}

func (r *IndexerRouter) targets() []wire.PeerInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.set != nil {
		return r.set.All()
	}
	return append([]wire.PeerInfo(nil), r.indexers...)
}

// targetsFor returns the indexers responsible for c: the owning
// shard's replica group under a sharded topology, every configured
// indexer otherwise. A shardless set owns nothing — callers fall
// through to their fallback.
func (r *IndexerRouter) targetsFor(c cid.Cid) []wire.PeerInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.set != nil {
		sh := r.set.ShardOf(c)
		if sh < 0 {
			return nil
		}
		return r.set.Replicas(sh)
	}
	return append([]wire.PeerInfo(nil), r.indexers...)
}

// Provide implements Router: push the record to every indexer
// responsible for c — the whole flat list, or the owning shard's
// replica group — in one hop each. Replicas that are offline simply
// miss the push; the group's gossip repairs them later. If no indexer
// accepts it, fall back to the DHT walk so the record is never lost.
func (r *IndexerRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	var res ProvideResult
	start := r.cfg.Time.Stamp()
	targets := r.targetsFor(c)
	if len(targets) == 0 {
		if r.fallback != nil {
			return r.fallback.Provide(ctx, c)
		}
		return res, fmt.Errorf("routing: indexer provide %s: no indexers configured", c)
	}
	req := wire.Message{
		Type:      wire.TAddProvider,
		Key:       c.Bytes(),
		Providers: []wire.PeerInfo{{ID: r.sw.Local(), Addrs: r.sw.Addrs()}},
	}
	var acked []wire.PeerInfo
	res.StoreTargets = targets
	res.StoreAttempts, acked = storeBatch(ctx, r.sw, r.cfg.Time, r.cfg.RPCTimeout, targets, req)
	res.StoreOK = len(acked)
	res.AckedTargets = acked
	for _, t := range acked {
		r.ledger.Confirm(t, c.Key())
	}
	res.BatchDuration = r.cfg.Time.Since(start)
	res.TotalDuration = res.BatchDuration
	if res.StoreOK == 0 {
		return provideFallback(ctx, r.fallback, c, res,
			fmt.Errorf("routing: indexer provide %s: all %d indexer stores failed", c, res.StoreAttempts))
	}
	return res, nil
}

// ProvideMany implements Router: one bulk announce per responsible
// indexer — under a sharded topology the batch is split per shard and
// each replica receives only its shard's record keys in a single
// multi-record ADD_PROVIDER RPC — with ack-ledger skips, and a
// fallback retry for the CIDs no indexer accepted.
func (r *IndexerRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	if len(r.targets()) == 0 {
		if r.fallback != nil {
			return r.fallback.ProvideMany(ctx, cids)
		}
		return ProvideManyResult{CIDs: len(cids)}, fmt.Errorf("routing: indexer provide batch of %d: no indexers configured", len(cids))
	}
	res, provided := provideManyGrouped(ctx, r.sw, r.cfg.Time, r.cfg.RPCTimeout, r.ledger, cids, r.targetsFor)
	return provideManyFallback(ctx, r.fallback, res, unprovided(cids, provided))
}

// FindProvidersStream implements Router: ask the indexers responsible
// for c in replica order, yielding each replica's provider batch as it
// arrives (deduplicated across replicas, so a consumer that keeps the
// stream open merges the whole replica group's knowledge). An offline
// shard owner just costs one failed RPC before the next replica
// answers — the fail-over path under churn. A full miss chains into
// the DHT fallback's stream with the indexer RPCs included in the
// reported message count.
func (r *IndexerRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		if sessionMissed(ctx, c) {
			streamFallback(ctx, r.fallback, c, LookupInfo{}, yield, st)
			return
		}
		var info LookupInfo
		start := r.cfg.Time.Stamp()
		key := c.Bytes()
		seen := make(map[peer.ID]bool)
		yielded := false
		for _, ix := range r.targetsFor(c) {
			if ctx.Err() != nil {
				break
			}
			rctx, cancel := r.cfg.Time.WithTimeout(ctx, r.cfg.RPCTimeout)
			resp, err := r.sw.Request(rctx, ix.ID, ix.Addrs, wire.Message{Type: wire.TGetProviders, Key: key})
			cancel()
			if err != nil || resp.Type != wire.TProviders {
				info.Failed++
				telemetry.SpanFrom(ctx).Event("replica-failover", telemetry.A("indexer", ix.ID.String()))
				continue
			}
			info.Queried++
			batch := dedupProviders(seen, fillAddrs(r.sw, resp.Providers))
			if len(batch) == 0 {
				continue
			}
			info.Depth = 1
			yielded = true
			if !yield(batch) {
				break
			}
		}
		info.Duration = r.cfg.Time.Since(start)
		if yielded {
			st.set(info, nil)
			return
		}
		if err := ctx.Err(); err != nil {
			st.set(info, err)
			return
		}
		streamFallback(ctx, r.fallback, c, info, yield, st)
	}
	return seq, st
}

// SessionPeers implements Router: one RPC to the first indexer that
// knows the key, without the DHT fallback — a session candidate miss
// leaves the caller on the broadcast/walk path.
func (r *IndexerRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	return sessionFromDirect(ctx, r.direct, c, n)
}

// WantBroadcast implements Router: the indexer names the providers
// directly, so the opportunistic broadcast is skipped.
func (r *IndexerRouter) WantBroadcast() bool { return false }

// direct queries the indexers responsible for c in turn — replica
// order under a sharded topology, so a dead primary costs one failed
// RPC before the next replica answers — returning ErrNoProviders when
// every responsible indexer misses or is unreachable.
func (r *IndexerRouter) direct(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	var info LookupInfo
	ctx, sp := telemetry.StartSpan(ctx, "indexer-direct")
	defer func() {
		sp.Annotate("queried", strconv.Itoa(info.Queried))
		sp.Annotate("failed", strconv.Itoa(info.Failed))
		sp.End()
	}()
	start := r.cfg.Time.Stamp()
	key := c.Bytes()
	for _, ix := range r.targetsFor(c) {
		if ctx.Err() != nil {
			break
		}
		rctx, cancel := r.cfg.Time.WithTimeout(ctx, r.cfg.RPCTimeout)
		resp, err := r.sw.Request(rctx, ix.ID, ix.Addrs, wire.Message{Type: wire.TGetProviders, Key: key})
		cancel()
		if err != nil || resp.Type != wire.TProviders {
			info.Failed++
			sp.Event("replica-failover", telemetry.A("indexer", ix.ID.String()))
			continue
		}
		info.Queried++
		if len(resp.Providers) > 0 {
			info.Duration = r.cfg.Time.Since(start)
			info.Depth = 1
			return fillAddrs(r.sw, resp.Providers), info, nil
		}
	}
	info.Duration = r.cfg.Time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	return nil, info, ErrNoProviders
}
