package routing

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/crawler"
	"repro/internal/kbucket"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// AcceleratedConfig tunes the full-routing-table client.
type AcceleratedConfig struct {
	// K is the replication factor / direct-query breadth (default 20).
	K int
	// Parallelism bounds concurrent direct lookup RPCs (default 3,
	// matching the walk's α so message counts compare fairly).
	Parallelism int
	// RPCTimeout bounds one direct RPC (default 10 s).
	RPCTimeout time.Duration
	// CrawlWorkers bounds the snapshot crawl's concurrency (default 64).
	CrawlWorkers int
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Now supplies the wall clock for the ack ledger (default time.Now;
	// simulations pass their movable clock).
	Now func() time.Time
	// Time is the unified time surface; nil derives it from Base/Now.
	Time simtime.Source
}

func (c AcceleratedConfig) withDefaults() AcceleratedConfig {
	if c.K <= 0 {
		c.K = kbucket.DefaultK
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 3
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.CrawlWorkers <= 0 {
		c.CrawlWorkers = 64
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, c.Now)
	}
	return c
}

// snapEntry is one peer in the network snapshot with its precomputed
// keyspace position.
type snapEntry struct {
	info wire.PeerInfo
	key  kbucket.Key
}

// AcceleratedRouter is the accelerated DHT client: it periodically
// crawls the whole network into a snapshot and then serves provides and
// lookups in a single hop against the K peers closest to the key,
// skipping the multi-hop walk the paper identifies as the dominant
// delay (§6.1–6.2). A stale snapshot degrades gracefully: dead entries
// are skipped, and when every direct path fails the router falls back
// to the iterative walk.
type AcceleratedRouter struct {
	cfg      AcceleratedConfig
	sw       *swarm.Swarm
	fallback Router // nil disables fallback (tests); usually a DHTRouter
	ledger   *Ledger

	mu   sync.RWMutex
	snap []snapEntry
}

// NewAccelerated creates an accelerated client over the swarm. fallback
// handles keys the snapshot cannot serve; pass nil to fail instead.
func NewAccelerated(sw *swarm.Swarm, fallback Router, cfg AcceleratedConfig) *AcceleratedRouter {
	cfg = cfg.withDefaults()
	return &AcceleratedRouter{cfg: cfg, sw: sw, fallback: fallback, ledger: NewLedger(cfg.Now)}
}

// Name implements Router.
func (r *AcceleratedRouter) Name() string { return string(KindAccelerated) }

// Ledger exposes the republish ack ledger.
func (r *AcceleratedRouter) Ledger() *Ledger { return r.ledger }

// Refresh crawls the network from the bootstrap peers and replaces the
// snapshot with every dialable peer found. It returns the snapshot
// size.
func (r *AcceleratedRouter) Refresh(ctx context.Context, bootstrap []wire.PeerInfo) (int, error) {
	cr := crawler.New(r.sw, crawler.Config{
		Workers:        r.cfg.CrawlWorkers,
		Base:           r.cfg.Base,
		Time:           r.cfg.Time,
		ConnectTimeout: r.cfg.RPCTimeout,
	})
	rep := cr.Crawl(ctx, bootstrap)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var snap []snapEntry
	for _, obs := range rep.Observations {
		if !obs.Dialable || len(obs.Addrs) == 0 || obs.ID == r.sw.Local() {
			continue
		}
		snap = append(snap, snapEntry{
			info: wire.PeerInfo{ID: obs.ID, Addrs: obs.Addrs},
			key:  kbucket.KeyForPeer(obs.ID),
		})
	}
	if len(snap) == 0 {
		return 0, fmt.Errorf("routing: accelerated refresh: crawl from %d bootstrap peers found no dialable peers", len(bootstrap))
	}
	r.mu.Lock()
	r.snap = snap
	r.mu.Unlock()
	return len(snap), nil
}

// StartRefresher re-crawls on the given simulated interval until ctx is
// cancelled. bootstrap supplies fresh seeds per round (the caller's
// routing table contents, typically). The first crawl is delayed by a
// per-peer deterministic jitter so a fleet of clients started together
// does not thundering-herd the network on the same ticks. The loop is
// a self-rearming timer on the router's time source: cancellable,
// leak-free (the old time.After variant leaked a real timer per jitter
// wait), and a single queue event per cycle under the event scheduler.
func (r *AcceleratedRouter) StartRefresher(ctx context.Context, interval time.Duration, bootstrap func() []wire.PeerInfo) {
	if interval <= 0 {
		interval = time.Hour
	}
	jitter := simtime.Jitter(string(r.sw.Local())+"#refresh", interval)
	var cycle func(context.Context)
	cycle = func(cctx context.Context) {
		r.Refresh(cctx, bootstrap())
		if cctx.Err() == nil {
			r.cfg.Time.AfterFunc(cctx, interval, cycle)
		}
	}
	r.cfg.Time.AfterFunc(ctx, jitter+interval, cycle)
}

// SetSnapshot installs a snapshot directly — testnet builders use it to
// model an already-converged client without paying for a crawl.
func (r *AcceleratedRouter) SetSnapshot(infos []wire.PeerInfo) {
	snap := make([]snapEntry, 0, len(infos))
	for _, info := range infos {
		if info.ID == r.sw.Local() {
			continue
		}
		snap = append(snap, snapEntry{info: info, key: kbucket.KeyForPeer(info.ID)})
	}
	r.mu.Lock()
	r.snap = snap
	r.mu.Unlock()
}

// SnapshotSize returns how many peers the current snapshot holds.
func (r *AcceleratedRouter) SnapshotSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.snap)
}

// Snapshot returns the peers the current snapshot holds. Health probes
// compare it against live network state to measure how stale the
// one-hop view has become under churn.
func (r *AcceleratedRouter) Snapshot() []wire.PeerInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]wire.PeerInfo, len(r.snap))
	for i, e := range r.snap {
		out[i] = e.info
	}
	return out
}

// closest returns the K snapshot peers nearest the key. It uses the
// keyspace positions precomputed at snapshot time and a bounded
// insertion (O(n·log K), no full copy or sort) — at the 20k-peer
// snapshots the accelerated client exists for, re-hashing or fully
// sorting per lookup would dominate the hot path.
func (r *AcceleratedRouter) closest(key []byte) []wire.PeerInfo {
	target := kbucket.KeyForBytes(key)
	type cand struct {
		dist kbucket.Key
		info wire.PeerInfo
	}
	r.mu.RLock()
	best := make([]cand, 0, r.cfg.K) // ascending by distance
	for _, e := range r.snap {
		d := kbucket.XOR(e.key, target)
		if len(best) == r.cfg.K && !kbucket.Less(d, best[len(best)-1].dist) {
			continue
		}
		i := sort.Search(len(best), func(j int) bool { return kbucket.Less(d, best[j].dist) })
		if len(best) < r.cfg.K {
			best = append(best, cand{})
		}
		copy(best[i+1:], best[i:])
		best[i] = cand{dist: d, info: e.info}
	}
	r.mu.RUnlock()
	out := make([]wire.PeerInfo, 0, len(best))
	for _, b := range best {
		out = append(out, b.info)
	}
	return out
}

// Provide implements Router: store the provider record directly on the
// K snapshot peers closest to the key — no walk, so WalkDuration stays
// zero. All targets failing (a fully stale neighbourhood) falls back to
// the iterative walk.
func (r *AcceleratedRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	var res ProvideResult
	start := r.cfg.Time.Stamp()
	key := c.Bytes()
	closest := r.closest(key)
	if len(closest) == 0 {
		if r.fallback != nil {
			return r.fallback.Provide(ctx, c)
		}
		return res, fmt.Errorf("routing: accelerated provide %s: empty snapshot", c)
	}

	req := wire.Message{
		Type:      wire.TAddProvider,
		Key:       key,
		Providers: []wire.PeerInfo{{ID: r.sw.Local(), Addrs: r.sw.Addrs()}},
	}
	var acked []wire.PeerInfo
	res.StoreTargets = closest
	res.StoreAttempts, acked = storeBatch(ctx, r.sw, r.cfg.Time, r.cfg.RPCTimeout, closest, req)
	res.StoreOK = len(acked)
	res.AckedTargets = acked
	for _, t := range acked {
		r.ledger.Confirm(t, c.Key())
	}
	res.BatchDuration = r.cfg.Time.Since(start)
	res.TotalDuration = res.BatchDuration
	if res.StoreOK == 0 {
		return provideFallback(ctx, r.fallback, c, res,
			fmt.Errorf("routing: accelerated provide %s: all %d direct stores failed", c, res.StoreAttempts))
	}
	return res, nil
}

// ProvideMany implements Router: batch the CIDs against the snapshot's
// K-closest sets — group by target peer, one multi-record RPC per
// distinct peer, ack-ledger skips — and retry CIDs the snapshot could
// not land anywhere through the fallback walk.
func (r *AcceleratedRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	if r.SnapshotSize() == 0 {
		if r.fallback != nil {
			return r.fallback.ProvideMany(ctx, cids)
		}
		return ProvideManyResult{CIDs: len(cids)}, fmt.Errorf("routing: accelerated provide batch of %d: empty snapshot", len(cids))
	}
	res, provided := provideManyGrouped(ctx, r.sw, r.cfg.Time, r.cfg.RPCTimeout, r.ledger, cids,
		func(c cid.Cid) []wire.PeerInfo { return r.closest(c.Bytes()) })
	return provideManyFallback(ctx, r.fallback, res, unprovided(cids, provided))
}

// FindProvidersStream implements Router: the one-hop snapshot lookup,
// yielding the winning response's providers, chained into the fallback
// walk's stream when the snapshot neighbourhood is exhausted.
func (r *AcceleratedRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	return streamWithFallback(ctx, r.direct, r.fallback, c)
}

// SessionPeers implements Router: the same one-hop snapshot lookup as
// FindProviders, without the walk fallback — a session candidate miss
// costs Bitswap nothing but the direct RPCs, and the caller decides
// whether to broadcast or walk next.
func (r *AcceleratedRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	return sessionFromDirect(ctx, r.direct, c, n)
}

// WantBroadcast implements Router: the snapshot names the record
// holders directly, so the opportunistic broadcast is skipped.
func (r *AcceleratedRouter) WantBroadcast() bool { return false }

// direct runs the one-hop lookup against the snapshot neighbourhood,
// returning ErrNoProviders when the neighbourhood is exhausted without
// a provider-carrying response.
func (r *AcceleratedRouter) direct(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	var info LookupInfo
	ctx, sp := telemetry.StartSpan(ctx, "accel-direct")
	defer func() {
		sp.Annotate("queried", strconv.Itoa(info.Queried))
		sp.Annotate("failed", strconv.Itoa(info.Failed))
		sp.End()
	}()
	src := r.cfg.Time
	start := src.Stamp()
	key := c.Bytes()
	closest := r.closest(key)

	type result struct {
		resp wire.Message
		err  error
	}
	// The snapshot tells us exactly which peers a one-hop provide
	// stored on, so the closest peer alone answers the common case: the
	// first wave is a single RPC, widening to Parallelism only when the
	// neighbourhood turns out stale.
	waveSize := 1
	for len(closest) > 0 && ctx.Err() == nil {
		wave := closest
		if len(wave) > waveSize {
			wave = wave[:waveSize]
		}
		closest = closest[len(wave):]
		waveSize = r.cfg.Parallelism

		ch := make(chan result, len(wave))
		wctx, cancel := context.WithCancel(ctx)
		for _, pi := range wave {
			pi := pi
			src.Go(wctx, func(gctx context.Context) {
				rctx, rcancel := src.WithTimeout(gctx, r.cfg.RPCTimeout)
				defer rcancel()
				resp, err := r.sw.Request(rctx, pi.ID, pi.Addrs, wire.Message{Type: wire.TGetProviders, Key: key})
				ch <- result{resp: resp, err: err}
			})
		}
		var winner *wire.Message
		// Every wave member deposits exactly once (the channel is
		// buffered to the wave), so the drain runs detached from ctx:
		// cancelled members unwind fast and still get counted.
		for i := 0; i < len(wave); i++ {
			res, ok := simtime.Recv(simtime.Detach(ctx), src, ch)
			if !ok {
				break
			}
			if res.err != nil || res.resp.Type == wire.TError {
				info.Failed++
				continue
			}
			info.Queried++
			if winner == nil && len(res.resp.Providers) > 0 {
				winner = &res.resp
				// Cancel the rest of the wave; drain continues so the
				// goroutines can exit.
				cancel()
			}
		}
		cancel()
		if winner != nil {
			info.Duration = src.Since(start)
			info.Depth = 1
			return fillAddrs(r.sw, winner.Providers), info, nil
		}
	}
	info.Duration = src.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	return nil, info, ErrNoProviders
}
