package routing

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// DefaultAckFreshness bounds how old an ack may be and still suppress
// a re-push — conservatively far below every record TTL in the system
// (24 h provider records, shrunken test TTLs of a few hours), so a
// skipped re-push can never let a record expire.
const DefaultAckFreshness = time.Hour

// Ledger is a router's republish ack ledger. It remembers, per target
// peer, which CIDs the peer acknowledged — in which republish cycle
// and when — plus each CID's last known target set. ProvideMany
// consults it to (a) skip (target, CID) pairs already confirmed this
// cycle — a record published minutes before the republish tick is not
// pushed again — and (b) reuse the walk-derived target sets, so a
// steady-state republish cycle costs one multi-record RPC per distinct
// target peer and zero walks. An ack only counts as fresh while it is
// both from the current cycle and younger than the freshness bound:
// record TTLs must keep being reset, so a six-hour-old publish is
// re-pushed even though no cycle boundary passed. core.Node.Republish
// advances the cycle when it finishes, expiring the cycle's acks
// together.
type Ledger struct {
	mu       sync.Mutex
	cycle    uint64
	now      func() time.Time
	freshFor time.Duration
	acksOnly bool                // skip target-set bookkeeping (gossip dedup ledgers)
	acks     map[string]ackStamp // target|cidKey -> last ack
	targets  map[string][]wire.PeerInfo
}

type ackStamp struct {
	cycle uint64 // cycle+1 at ack time; zero value means "never"
	at    time.Time
}

// NewLedger creates an empty ack ledger. now supplies the clock for
// ack freshness (nil selects time.Now; simulations pass their movable
// clock).
func NewLedger(now func() time.Time) *Ledger {
	if now == nil {
		now = time.Now
	}
	return &Ledger{
		now:      now,
		freshFor: DefaultAckFreshness,
		acks:     make(map[string]ackStamp),
		targets:  make(map[string][]wire.PeerInfo),
	}
}

// NewAckLedger creates a ledger that records acks only — no per-CID
// target sets. The gossip dedup path never replays target sets, and
// without Advance calls the targets map would otherwise grow with
// every CID ever gossiped; pair it with PruneStale to keep the acks
// bounded by one freshness window.
func NewAckLedger(now func() time.Time) *Ledger {
	l := NewLedger(now)
	l.acksOnly = true
	return l
}

// PruneStale drops acks older than the freshness bound — they can
// never test Fresh again on the clock axis, so holding them only
// leaks memory. Cycle-expired acks are left for Advance, which
// resets the whole map.
func (l *Ledger) PruneStale() {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	for k, stamp := range l.acks {
		if now.Sub(stamp.at) > l.freshFor {
			delete(l.acks, k)
		}
	}
}

func ackKey(target peer.ID, cidKey string) string {
	return string(target) + "|" + cidKey
}

// Advance starts a new republish cycle: every ack recorded so far
// becomes stale, so the next ProvideMany re-pushes it. Stale acks are
// dropped outright — they can never test fresh again — bounding the
// ledger to one cycle's worth of acks plus the per-CID target sets.
func (l *Ledger) Advance() {
	l.mu.Lock()
	l.cycle++
	l.acks = make(map[string]ackStamp)
	l.mu.Unlock()
}

// Confirm records that target acknowledged records for the given CID
// keys in the current cycle, and remembers it in each CID's target set.
func (l *Ledger) Confirm(target wire.PeerInfo, cidKeys ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	stamp := ackStamp{cycle: l.cycle + 1, at: l.now()}
	for _, k := range cidKeys {
		l.acks[ackKey(target.ID, k)] = stamp
		if l.acksOnly {
			continue
		}
		found := false
		for _, t := range l.targets[k] {
			if t.ID == target.ID {
				found = true
				break
			}
		}
		if !found {
			l.targets[k] = append(l.targets[k], target)
		}
	}
}

// Fresh reports whether target acknowledged cidKey in the current
// cycle, recently enough that skipping the re-push cannot endanger the
// record's TTL.
func (l *Ledger) Fresh(target peer.ID, cidKey string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	stamp := l.acks[ackKey(target, cidKey)]
	return stamp.cycle == l.cycle+1 && l.now().Sub(stamp.at) <= l.freshFor
}

// Len returns how many acks the ledger currently holds (bounded-memory
// tests).
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acks)
}

// SetTargets remembers a CID's computed target set (a walk's k closest
// peers), replacing any previous set.
func (l *Ledger) SetTargets(cidKey string, targets []wire.PeerInfo) {
	l.mu.Lock()
	l.targets[cidKey] = append([]wire.PeerInfo(nil), targets...)
	l.mu.Unlock()
}

// Targets returns a CID's last known target set (peers that acked a
// store, or the last walk's closest set), or nil when unknown.
func (l *Ledger) Targets(cidKey string) []wire.PeerInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]wire.PeerInfo(nil), l.targets[cidKey]...)
}

// ledgered is implemented by routers owning an ack ledger.
type ledgered interface {
	Ledger() *Ledger
}

// AdvanceCycle starts a new republish cycle on every ack ledger in the
// router stack (a ParallelRouter's members each own one).
// core.Node.Republish calls it after each cycle's ProvideMany, so acks
// recorded during the cycle — including first-time publishes since the
// previous cycle — expire together.
func AdvanceCycle(r Router) {
	switch v := r.(type) {
	case ledgered:
		v.Ledger().Advance()
	case *ParallelRouter:
		for _, m := range v.Members() {
			AdvanceCycle(m)
		}
	}
}

// batchSend is one multi-record store RPC: every not-yet-confirmed CID
// whose target set includes this peer.
type batchSend struct {
	target  wire.PeerInfo
	keys    [][]byte
	cidKeys []string
}

// batchPlan groups a CID batch by target peer.
type batchPlan struct {
	sends   []*batchSend
	targets int // distinct target peers (including fully-skipped ones)
	skipped int // targets skipped entirely: every record fresh this cycle
	// fresh marks CIDs with at least one ledger-fresh record — already
	// provided this cycle even if every send for them is skipped.
	fresh map[string]bool
}

// planBatch groups (cid, target-set) pairs by target peer, dropping
// pairs the ledger confirmed this cycle.
func planBatch(ledger *Ledger, cids []cid.Cid, targetsOf func(c cid.Cid) []wire.PeerInfo) *batchPlan {
	plan := &batchPlan{fresh: make(map[string]bool)}
	byTarget := make(map[peer.ID]*batchSend)
	touched := make(map[peer.ID]bool)
	for _, c := range cids {
		key := c.Key()
		for _, t := range targetsOf(c) {
			touched[t.ID] = true
			if ledger.Fresh(t.ID, key) {
				plan.fresh[key] = true
				continue
			}
			bs := byTarget[t.ID]
			if bs == nil {
				bs = &batchSend{target: t}
				byTarget[t.ID] = bs
				plan.sends = append(plan.sends, bs)
			}
			bs.keys = append(bs.keys, c.Bytes())
			bs.cidKeys = append(bs.cidKeys, key)
		}
	}
	plan.targets = len(touched)
	plan.skipped = plan.targets - len(plan.sends)
	return plan
}

// runBatch executes a batch plan: one concurrent multi-record
// ADD_PROVIDER RPC per target, recording acks in the ledger. It
// returns the RPC/ack counts and the set of CID keys with at least one
// acknowledged record.
func runBatch(ctx context.Context, sw *swarm.Swarm, src simtime.Source, timeout time.Duration, ledger *Ledger, plan *batchPlan) (rpcs, acked int, provided map[string]bool) {
	provided = make(map[string]bool)
	self := wire.PeerInfo{ID: sw.Local(), Addrs: sw.Addrs()}
	g := simtime.NewGroup(src)
	var mu sync.Mutex
	for _, bs := range plan.sends {
		bs := bs
		rpcs++
		g.Go(ctx, func(gctx context.Context) {
			req := wire.Message{
				Type:      wire.TAddProvider,
				Key:       bs.keys[0],
				Keys:      bs.keys[1:],
				Providers: []wire.PeerInfo{self},
			}
			rctx, cancel := src.WithTimeout(gctx, timeout)
			defer cancel()
			resp, err := sw.Request(rctx, bs.target.ID, bs.target.Addrs, req)
			if err != nil || resp.Type != wire.TAck {
				return
			}
			ledger.Confirm(bs.target, bs.cidKeys...)
			mu.Lock()
			acked++
			for _, k := range bs.cidKeys {
				provided[k] = true
			}
			mu.Unlock()
		})
	}
	g.Wait(ctx)
	return rpcs, acked, provided
}

// provideManyGrouped is the shared ProvideMany body: plan the batch
// against the ledger, run it, and fold ledger-fresh CIDs into the
// provided count. targetsOf supplies each CID's target set (walk
// result, snapshot neighbourhood, or indexer set).
func provideManyGrouped(ctx context.Context, sw *swarm.Swarm, src simtime.Source, timeout time.Duration, ledger *Ledger, cids []cid.Cid, targetsOf func(c cid.Cid) []wire.PeerInfo) (ProvideManyResult, map[string]bool) {
	start := src.Stamp()
	var res ProvideManyResult
	res.CIDs = len(cids)
	plan := planBatch(ledger, cids, targetsOf)
	rpcs, acked, provided := runBatch(ctx, sw, src, timeout, ledger, plan)
	for k := range plan.fresh {
		provided[k] = true
	}
	res.Targets = plan.targets
	res.StoreRPCs = rpcs
	res.SkippedTargets = plan.skipped
	res.Acked = acked
	for _, c := range cids {
		if provided[c.Key()] {
			res.Provided++
		}
	}
	res.Duration = src.Since(start)
	return res, provided
}

// unprovided returns the CIDs the batch failed to land a single record
// for — the subset a fallback router retries.
func unprovided(cids []cid.Cid, provided map[string]bool) []cid.Cid {
	var out []cid.Cid
	for _, c := range cids {
		if !provided[c.Key()] {
			out = append(out, c)
		}
	}
	return out
}

// provideManyFallback retries a batch's failed CIDs through the
// fallback router, merging the fallback's cost into res. The provided
// count stays consistent: the fallback's successes are added on top.
func provideManyFallback(ctx context.Context, fallback Router, res ProvideManyResult, failed []cid.Cid) (ProvideManyResult, error) {
	if len(failed) == 0 {
		return res, nil
	}
	if fallback == nil || ctx.Err() != nil {
		if res.Provided == 0 && res.CIDs > 0 {
			err := ctx.Err()
			if err == nil {
				err = fmt.Errorf("routing: provide batch of %d: no records stored", res.CIDs)
			}
			return res, err
		}
		return res, nil
	}
	fres, err := fallback.ProvideMany(ctx, failed)
	res = res.merge(fres)
	res.Provided += fres.Provided
	if res.Provided == 0 && res.CIDs > 0 && err != nil {
		return res, err
	}
	return res, nil
}
