package routing

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/wire"
)

// DHTRouter adapts the iterative DHT walk of internal/dht to the Router
// interface — today's deployed behaviour, kept as the baseline every
// alternative is measured against.
type DHTRouter struct {
	d      *dht.DHT
	ledger *Ledger
}

// NewDHT wraps a DHT participant as a Router.
func NewDHT(d *dht.DHT) *DHTRouter { return &DHTRouter{d: d, ledger: NewLedger(d.Clock())} }

// Name implements Router.
func (r *DHTRouter) Name() string { return string(KindDHT) }

// DHT exposes the wrapped DHT.
func (r *DHTRouter) DHT() *dht.DHT { return r.d }

// Ledger exposes the republish ack ledger.
func (r *DHTRouter) Ledger() *Ledger { return r.ledger }

// Provide implements Router via the walk-then-store of §3.1, recording
// the walk's target set and the acked stores in the ack ledger so the
// next republish cycle can batch records per peer without re-walking.
func (r *DHTRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	res, err := r.d.Provide(ctx, c)
	if len(res.StoreTargets) > 0 {
		r.ledger.SetTargets(c.Key(), res.StoreTargets)
	}
	for _, t := range res.AckedTargets {
		r.ledger.Confirm(t, c.Key())
	}
	return res, err
}

// ProvideMany implements Router: reuse each CID's remembered target
// set (walking only for CIDs never published through this router),
// group the batch by target peer, and send one multi-record
// ADD_PROVIDER RPC per distinct target — the O(CIDs × walk) republish
// collapsed to O(distinct target peers).
func (r *DHTRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	src := r.d.Time()
	start := src.Stamp()
	walks := 0
	var walkInfo LookupInfo
	targetsOf := func(c cid.Cid) []wire.PeerInfo {
		key := c.Key()
		if targets := r.ledger.Targets(key); len(targets) > 0 {
			return targets
		}
		if ctx.Err() != nil {
			return nil
		}
		closest, winfo, err := r.d.WalkClosest(ctx, kbucket.KeyForBytes(c.Bytes()), c.Bytes())
		walks++
		walkInfo = mergeLookup(walkInfo, winfo)
		if err != nil || len(closest) == 0 {
			return nil
		}
		r.ledger.SetTargets(key, closest)
		return closest
	}
	res, provided := provideManyGrouped(ctx, r.d.Swarm(), src, storeTimeout, r.ledger, cids, targetsOf)
	res.Walks = walks
	res.Walk = walkInfo
	// Re-walk CIDs whose remembered target set failed to ack a single
	// record — the §3.1 point of republish is reassigning records when
	// holders churn away, so a dead target set must not pin a CID to
	// unreachable peers forever. Provide walks fresh and overwrites the
	// ledger's target set with the currently-live k closest.
	for _, c := range unprovided(cids, provided) {
		if ctx.Err() != nil {
			break
		}
		pres, err := r.Provide(ctx, c)
		res.Walks++
		res.Walk = mergeLookup(res.Walk, pres.Walk)
		res.StoreRPCs += pres.StoreAttempts
		res.Acked += pres.StoreOK
		if err == nil {
			res.Provided++
		}
	}
	res.Duration = src.Since(start)
	if res.Provided == 0 && res.CIDs > 0 {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, fmt.Errorf("routing: dht provide batch of %d: no records stored", res.CIDs)
	}
	return res, nil
}

// storeTimeout bounds one multi-record store RPC, matching the DHT's
// single-record store budget.
const storeTimeout = 60 * time.Second

// FindProvidersStream implements Router: the iterative walk of §3.2,
// yielding each record-carrying response's providers as it arrives.
// The consumer stopping at the first batch reproduces the deployed
// terminate-on-first-record behaviour; draining further turns later
// responses into fail-over candidates.
func (r *DHTRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		emitted := false
		seen := make(map[peer.ID]bool)
		info := r.d.FindProvidersStream(ctx, c, func(batch []wire.PeerInfo) bool {
			batch = dedupProviders(seen, batch)
			if len(batch) == 0 {
				return true // all duplicates; keep walking
			}
			emitted = true
			return yield(batch)
		})
		var err error
		if !emitted {
			if err = ctx.Err(); err == nil {
				err = ErrNoProviders
			}
		}
		st.set(info, err)
	}
	return seq, st
}

// SessionPeers implements Router. The walk-based client has no provider
// knowledge short of the multi-hop lookup, so it declines: Bitswap
// keeps today's opportunistic broadcast and the walk stays the
// FindProviders fallback.
func (r *DHTRouter) SessionPeers(context.Context, cid.Cid, int) ([]wire.PeerInfo, int, error) {
	return nil, 0, ErrNoSessionPeers
}

// WantBroadcast implements Router: the deployed client broadcasts.
func (r *DHTRouter) WantBroadcast() bool { return true }
