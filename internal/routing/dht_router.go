package routing

import (
	"context"

	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/wire"
)

// DHTRouter adapts the iterative DHT walk of internal/dht to the Router
// interface — today's deployed behaviour, kept as the baseline every
// alternative is measured against.
type DHTRouter struct {
	d *dht.DHT
}

// NewDHT wraps a DHT participant as a Router.
func NewDHT(d *dht.DHT) *DHTRouter { return &DHTRouter{d: d} }

// Name implements Router.
func (r *DHTRouter) Name() string { return string(KindDHT) }

// DHT exposes the wrapped DHT.
func (r *DHTRouter) DHT() *dht.DHT { return r.d }

// Provide implements Router via the walk-then-store of §3.1.
func (r *DHTRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	return r.d.Provide(ctx, c)
}

// FindProviders implements Router via the iterative walk of §3.2.
func (r *DHTRouter) FindProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	return r.d.FindProviders(ctx, c)
}

// SessionPeers implements Router. The walk-based client has no provider
// knowledge short of the multi-hop lookup, so it declines: Bitswap
// keeps today's opportunistic broadcast and the walk stays the
// FindProviders fallback.
func (r *DHTRouter) SessionPeers(context.Context, cid.Cid, int) ([]wire.PeerInfo, int, error) {
	return nil, 0, ErrNoSessionPeers
}

// WantBroadcast implements Router: the deployed client broadcasts.
func (r *DHTRouter) WantBroadcast() bool { return true }
