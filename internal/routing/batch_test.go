package routing_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/testnet"
	"repro/internal/wire"
)

func batchCids(n int, tag string) []cid.Cid {
	out := make([]cid.Cid, n)
	for i := range out {
		out[i] = testCid(tag + string(rune('a'+i)))
	}
	return out
}

// TestProvideManyOneRPCPerDistinctTarget is the batched-publication
// contract: a CID batch whose members share target peers issues
// exactly one multi-record ADD_PROVIDER RPC per distinct target,
// asserted against the simulator's request counter.
func TestProvideManyOneRPCPerDistinctTarget(t *testing.T) {
	tn := buildCleanNet(t, 60, 71)
	ctx := context.Background()
	cids := batchCids(5, "batched content ")

	cases := []struct {
		name    string
		build   func(t *testing.T) routing.Router
		targets int // distinct target peers the whole batch lands on
	}{
		{
			// A snapshot smaller than K: every CID's K-closest set is the
			// whole snapshot, so 5 CIDs share the same 8 targets.
			name: "accelerated",
			build: func(t *testing.T) routing.Router {
				node := tn.AddVantage("DE", 720)
				r := routing.NewAccelerated(node.Swarm(), nil, routing.AcceleratedConfig{Base: tn.Base})
				var infos []wire.PeerInfo
				for _, n := range tn.Nodes[:8] {
					infos = append(infos, n.Info())
				}
				r.SetSnapshot(infos)
				return r
			},
			targets: 8,
		},
		{
			// Two indexers: the whole batch rides one bulk announce per
			// indexer.
			name: "indexer",
			build: func(t *testing.T) routing.Router {
				node := tn.AddVantage("US", 721)
				indexers := []wire.PeerInfo{
					tn.AddIndexer("US", 722).Info(),
					tn.AddIndexer("DE", 723).Info(),
				}
				return routing.NewIndexerRouter(node.Swarm(), indexers, nil,
					routing.IndexerRouterConfig{Base: tn.Base})
			},
			targets: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.build(t)
			before, _, _ := tn.Net.Stats()
			res, err := r.ProvideMany(ctx, cids)
			if err != nil {
				t.Fatalf("ProvideMany: %v", err)
			}
			after, _, _ := tn.Net.Stats()
			if res.Targets != tc.targets {
				t.Errorf("Targets = %d, want %d", res.Targets, tc.targets)
			}
			if res.StoreRPCs != tc.targets {
				t.Errorf("StoreRPCs = %d, want exactly one per distinct target (%d)", res.StoreRPCs, tc.targets)
			}
			if got := int(after - before); got != tc.targets {
				t.Errorf("network saw %d requests, want %d (one multi-record RPC per target)", got, tc.targets)
			}
			if res.Provided != len(cids) {
				t.Errorf("Provided = %d, want %d", res.Provided, len(cids))
			}
			if res.Walks != 0 {
				t.Errorf("Walks = %d, want 0 for one-hop batching", res.Walks)
			}
		})
	}
}

// TestProvideManyAckLedgerSkipsConfirmedTargets pins the ack ledger's
// cycle semantics: records confirmed by Provide earlier in the cycle
// are skipped by the republish batch (zero RPCs), and re-pushed once
// the cycle advances.
func TestProvideManyAckLedgerSkipsConfirmedTargets(t *testing.T) {
	tn := buildCleanNet(t, 60, 73)
	ctx := context.Background()
	node := tn.AddVantage("DE", 730)
	r := routing.NewAccelerated(node.Swarm(), nil, routing.AcceleratedConfig{Base: tn.Base})
	var infos []wire.PeerInfo
	for _, n := range tn.Nodes[:6] {
		infos = append(infos, n.Info())
	}
	r.SetSnapshot(infos)
	cids := batchCids(3, "ledger content ")

	for _, c := range cids {
		if _, err := r.Provide(ctx, c); err != nil {
			t.Fatalf("Provide: %v", err)
		}
	}

	// Same cycle: everything is ledger-fresh, the batch sends nothing.
	before, _, _ := tn.Net.Stats()
	res, err := r.ProvideMany(ctx, cids)
	if err != nil {
		t.Fatalf("ProvideMany (fresh): %v", err)
	}
	after, _, _ := tn.Net.Stats()
	if res.StoreRPCs != 0 || after != before {
		t.Errorf("fresh batch sent %d RPCs (network saw %d), want 0 — the acks were confirmed this cycle", res.StoreRPCs, after-before)
	}
	if res.SkippedTargets != res.Targets || res.Targets != 6 {
		t.Errorf("skipped %d of %d targets, want all 6", res.SkippedTargets, res.Targets)
	}
	if res.Provided != len(cids) {
		t.Errorf("Provided = %d, want %d (fresh records count as provided)", res.Provided, len(cids))
	}

	// Next cycle: the acks are stale, every target is re-pushed once.
	routing.AdvanceCycle(r)
	before, _, _ = tn.Net.Stats()
	res, err = r.ProvideMany(ctx, cids)
	if err != nil {
		t.Fatalf("ProvideMany (next cycle): %v", err)
	}
	after, _, _ = tn.Net.Stats()
	if res.StoreRPCs != 6 || int(after-before) != 6 {
		t.Errorf("next-cycle batch sent %d RPCs (network saw %d), want 6 — one per distinct target", res.StoreRPCs, after-before)
	}
	if res.SkippedTargets != 0 {
		t.Errorf("SkippedTargets = %d, want 0 after the cycle advanced", res.SkippedTargets)
	}
}

// TestLedgerFreshnessExpiresWithClock pins the TTL-safety bound: an
// ack from hours ago must not suppress a re-push even within one
// cycle, or a skipped republish could let records expire.
func TestLedgerFreshnessExpiresWithClock(t *testing.T) {
	clock := simtime.NewClock(testnet.DefaultEpoch)
	l := routing.NewLedger(clock.Now)
	target := wire.PeerInfo{ID: "peer-1"}
	l.Confirm(target, "cid-1")
	if !l.Fresh(target.ID, "cid-1") {
		t.Fatal("just-confirmed ack not fresh")
	}
	clock.Advance(30 * time.Minute)
	if !l.Fresh(target.ID, "cid-1") {
		t.Error("30m-old ack should still be fresh (bound is 1h)")
	}
	clock.Advance(time.Hour)
	if l.Fresh(target.ID, "cid-1") {
		t.Error("90m-old ack must be stale: skipping its re-push endangers record TTLs")
	}
	// A fresh ack from a previous cycle is stale too.
	l.Confirm(target, "cid-2")
	l.Advance()
	if l.Fresh(target.ID, "cid-2") {
		t.Error("previous-cycle ack must be stale after Advance")
	}
}

// TestJitterDesynchronizesCycles pins the StartRepublisher /
// StartRefresher jitter helper: deterministic per seed, bounded by the
// interval, and spread across distinct peers.
func TestJitterDesynchronizesCycles(t *testing.T) {
	interval := 12 * time.Hour
	seen := make(map[time.Duration]bool)
	for _, seed := range []string{"peer-a#republish", "peer-b#republish", "peer-c#republish", "peer-d#republish"} {
		j := simtime.Jitter(seed, interval)
		if j < 0 || j >= interval {
			t.Fatalf("Jitter(%q) = %v, want within [0, %v)", seed, j, interval)
		}
		if j != simtime.Jitter(seed, interval) {
			t.Fatalf("Jitter(%q) not deterministic", seed)
		}
		seen[j] = true
	}
	if len(seen) < 3 {
		t.Errorf("4 peers landed on %d distinct jitters, want a spread", len(seen))
	}
	if simtime.Jitter("x", 0) != 0 {
		t.Error("zero interval must yield zero jitter")
	}
}

// TestProvideManyRewalksDeadRememberedTargets pins the durability half
// of the DHT batch path: a CID whose remembered target set has churned
// away entirely is re-walked to the currently-live k closest peers
// instead of being pinned to dead targets forever.
func TestProvideManyRewalksDeadRememberedTargets(t *testing.T) {
	tn := buildCleanNet(t, 50, 75)
	ctx := context.Background()
	node := tn.AddVantage("DE", 750)
	r := routing.NewDHT(node.DHT())
	c := testCid("repinned content")

	// The ledger remembers a target set that has since gone offline.
	dead := []wire.PeerInfo{tn.Nodes[2].Info(), tn.Nodes[3].Info()}
	for _, d := range dead {
		tn.Net.SetOnline(d.ID, false)
	}
	r.Ledger().SetTargets(c.Key(), dead)

	res, err := r.ProvideMany(ctx, []cid.Cid{c})
	if err != nil {
		t.Fatalf("ProvideMany: %v", err)
	}
	if res.Walks == 0 {
		t.Error("dead remembered targets did not trigger a re-walk")
	}
	if res.Provided != 1 {
		t.Fatalf("Provided = %d, want the record reassigned to live peers", res.Provided)
	}
	// The re-walk refreshed the ledger: the remembered set is no longer
	// the dead pair, and the record resolves from another node while the
	// dead peers stay offline.
	targets := r.Ledger().Targets(c.Key())
	if len(targets) == 2 && targets[0].ID == dead[0].ID && targets[1].ID == dead[1].ID {
		t.Error("ledger still remembers the dead target set")
	}
	provs, _, err := routing.FindProviders(ctx, routing.NewDHT(tn.Nodes[1].DHT()), c)
	if err != nil || len(provs) == 0 {
		t.Fatalf("providers after re-walk: %v %v", provs, err)
	}
}
