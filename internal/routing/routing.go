// Package routing abstracts content routing behind a pluggable Router
// interface. The paper shows that multi-hop DHT walks dominate both
// publication delay (§6.1, Fig 9a–c) and retrieval delay (§6.2) and
// proposes running alternative discovery paths in parallel as the main
// optimization lever; production IPFS answered with the accelerated
// DHT client and delegated indexer nodes. This package provides all of
// them over the same message fabric so they can be compared and
// ablated:
//
//   - DHTRouter: the baseline iterative walk of internal/dht.
//   - AcceleratedRouter: a full-routing-table client that snapshots
//     the network with internal/crawler and then provides/looks up in
//     one hop against the K closest peers.
//   - IndexerRouter: a delegated-routing client publishing to and
//     querying indexer aggregator nodes, falling back to the DHT.
//   - ParallelRouter: a composite racing member routers, returning the
//     first success and cancelling the losers (§6.2's "parallel
//     discovery" generalized beyond Bitswap).
package routing

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// Kind selects a Router implementation in core.Config.
type Kind string

// Available router kinds.
const (
	// KindDHT is the baseline iterative DHT walk (the deployed client).
	KindDHT Kind = "dht"
	// KindAccelerated is the one-hop full-routing-table client.
	KindAccelerated Kind = "accelerated"
	// KindIndexer delegates to indexer nodes with DHT fallback.
	KindIndexer Kind = "indexer"
	// KindParallel races every configured router.
	KindParallel Kind = "parallel"
)

// ProvideResult aliases the DHT's publication instrumentation so every
// router reports the phase breakdown core.PublishResult expects. One-hop
// routers leave the walk fields zero — that is the saving they exist to
// demonstrate.
type ProvideResult = dht.ProvideResult

// LookupInfo aliases the DHT's walk statistics; non-walking routers fill
// Queried/Failed with their direct RPC counts so message accounting
// stays comparable across implementations.
type LookupInfo = dht.WalkInfo

// Router is the content-routing abstraction core.Node publishes and
// retrieves through. Besides the provider-record operations of §3.1–3.2
// it carries the session-facing surface Bitswap consults: SessionPeers
// supplies candidate holders without paying a multi-hop walk, and
// WantBroadcast is the policy deciding whether the opportunistic
// WANT-HAVE broadcast still runs for sessions routed through this
// router.
type Router interface {
	// Name identifies the implementation in experiment output.
	Name() string
	// Provide publishes a provider record for c.
	Provide(ctx context.Context, c cid.Cid) (ProvideResult, error)
	// FindProviders locates peers holding c. Implementations return as
	// soon as one record-holding response arrives (§3.2).
	FindProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error)
	// SessionPeers returns up to n candidate peers believed to hold c
	// without paying a multi-hop walk, plus the routing RPCs spent
	// learning them. Routers with no cheap provider knowledge (the
	// baseline walk) return ErrNoSessionPeers, keeping Bitswap on its
	// opportunistic broadcast.
	SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error)
	// WantBroadcast reports whether Bitswap's opportunistic WANT-HAVE
	// broadcast should still run alongside routed session candidates.
	// One-hop routers answer false — they know the providers, so the
	// broadcast is pure waste (§3.2) — while the walk-based baseline
	// and composites containing it answer true.
	WantBroadcast() bool
}

// ErrNoProviders is returned when a lookup exhausts every path without
// finding a provider record; it wraps the DHT sentinel so callers
// checking errors.Is(err, dht.ErrNoProviders) keep working.
var ErrNoProviders = dht.ErrNoProviders

// ErrNoSessionPeers is returned by SessionPeers when a router has no
// cheap provider knowledge for the key; the caller falls back to the
// opportunistic broadcast (and ultimately the FindProviders walk).
var ErrNoSessionPeers = errors.New("routing: no session peers known")

// capPeers bounds a candidate list to n entries (n <= 0 means all).
func capPeers(peers []wire.PeerInfo, n int) []wire.PeerInfo {
	if n > 0 && len(peers) > n {
		return peers[:n]
	}
	return peers
}

// sessionMissKey marks a context whose Bitswap session consult already
// probed the router's direct path for a CID and missed.
type sessionMissKey struct{}

// WithSessionMiss hands a SessionPeers consult miss forward: a
// FindProviders call under the returned context skips the one-hop
// direct probe for c — the consult moments earlier asked the same
// snapshot/indexer neighbourhood and got nothing — and goes straight
// to the fallback walk, saving a duplicate RPC wave per
// unpublished-content retrieval.
func WithSessionMiss(ctx context.Context, c cid.Cid) context.Context {
	return context.WithValue(ctx, sessionMissKey{}, c.Key())
}

// sessionMissed reports whether the context records a consult miss for c.
func sessionMissed(ctx context.Context, c cid.Cid) bool {
	k, _ := ctx.Value(sessionMissKey{}).(string)
	return k != "" && k == c.Key()
}

// directFn is a router's one-hop lookup (snapshot neighbourhood or
// indexer query), returning ErrNoProviders on a miss.
type directFn func(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error)

// findWithFallback is the shared direct-then-fallback FindProviders
// control flow of the one-hop routers: try the direct path, return on
// success or context error, otherwise walk the fallback with the
// wasted direct RPCs merged into the reported cost. A session-consult
// miss recorded on the context skips the direct probe entirely — those
// RPCs went out (and were charged) during the consult.
func findWithFallback(ctx context.Context, direct directFn, fallback Router, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	if sessionMissed(ctx, c) {
		if fallback != nil {
			return fallback.FindProviders(ctx, c)
		}
		return nil, LookupInfo{}, ErrNoProviders
	}
	providers, info, err := direct(ctx, c)
	if err == nil || ctx.Err() != nil {
		return providers, info, err
	}
	if fallback != nil {
		providers, finfo, err := fallback.FindProviders(ctx, c)
		return providers, mergeLookup(info, finfo), err
	}
	return nil, info, ErrNoProviders
}

// sessionFromDirect is the shared SessionPeers body of the one-hop
// routers: the direct lookup capped to n candidates, with a miss
// mapped to ErrNoSessionPeers so the caller keeps its broadcast/walk
// fallback.
func sessionFromDirect(ctx context.Context, direct directFn, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	providers, info, err := direct(ctx, c)
	if err != nil {
		return nil, LookupMessages(info), ErrNoSessionPeers
	}
	return capPeers(providers, n), LookupMessages(info), nil
}

// LookupMessages counts the routing RPCs one lookup issued. Walk-based
// lookups report every launched query (including ones abandoned at
// early stop); one-hop routers fill Queried/Failed directly.
func LookupMessages(info LookupInfo) int {
	return max(info.Launched, info.Queried+info.Failed)
}

// ProvideMessages counts the routing RPCs one publication issued: the
// walk queries plus the record-store batch.
func ProvideMessages(res ProvideResult) int {
	return LookupMessages(res.Walk) + res.StoreAttempts
}

// mergeLookup accumulates a fallback path's statistics onto the direct
// path's, so a miss-then-fallback lookup reports its full message cost.
func mergeLookup(direct, fallback LookupInfo) LookupInfo {
	return LookupInfo{
		Duration: direct.Duration + fallback.Duration,
		Queried:  direct.Queried + fallback.Queried,
		Failed:   direct.Failed + fallback.Failed,
		Launched: LookupMessages(direct) + LookupMessages(fallback),
		Depth:    max(direct.Depth, fallback.Depth),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// storeBatch pushes req to every target with concurrent fire-and-forget
// RPCs — the §3.1 record-store fan-out the one-hop routers share.
func storeBatch(ctx context.Context, sw *swarm.Swarm, base simtime.Base, timeout time.Duration, targets []wire.PeerInfo, req wire.Message) (attempts, acked int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, info := range targets {
		info := info
		wg.Add(1)
		attempts++
		go func() {
			defer wg.Done()
			rctx, cancel := base.WithTimeout(ctx, timeout)
			defer cancel()
			resp, err := sw.Request(rctx, info.ID, info.Addrs, req)
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				acked++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return attempts, acked
}

// provideFallback routes a fully-failed one-hop batch through the
// fallback router, charging the wasted direct RPCs onto the fallback's
// result so the reported cost covers both paths.
func provideFallback(ctx context.Context, fallback Router, c cid.Cid, direct ProvideResult, directErr error) (ProvideResult, error) {
	if fallback == nil || ctx.Err() != nil {
		return direct, directErr
	}
	fres, err := fallback.Provide(ctx, c)
	fres.StoreAttempts += direct.StoreAttempts
	fres.TotalDuration += direct.TotalDuration
	return fres, err
}

// fillAddrs backfills provider addresses from the local address book —
// §3.2's "check whether they already have an address" shortcut.
func fillAddrs(sw *swarm.Swarm, providers []wire.PeerInfo) []wire.PeerInfo {
	out := make([]wire.PeerInfo, 0, len(providers))
	for _, p := range providers {
		if addrs, ok := sw.Book().Get(p.ID); ok && len(p.Addrs) == 0 {
			p.Addrs = addrs
		}
		out = append(out, p)
	}
	return out
}
