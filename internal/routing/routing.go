// Package routing abstracts content routing behind a pluggable Router
// interface. The paper shows that multi-hop DHT walks dominate both
// publication delay (§6.1, Fig 9a–c) and retrieval delay (§6.2) and
// proposes running alternative discovery paths in parallel as the main
// optimization lever; production IPFS answered with the accelerated
// DHT client and delegated indexer nodes. This package provides all of
// them over the same message fabric so they can be compared and
// ablated:
//
//   - DHTRouter: the baseline iterative walk of internal/dht.
//   - AcceleratedRouter: a full-routing-table client that snapshots
//     the network with internal/crawler and then provides/looks up in
//     one hop against the K closest peers.
//   - IndexerRouter: a delegated-routing client publishing to and
//     querying indexer aggregator nodes, falling back to the DHT.
//   - ParallelRouter: a composite racing member routers, returning the
//     first success and cancelling the losers (§6.2's "parallel
//     discovery" generalized beyond Bitswap).
//
// The Router API has two surfaces. Publication is batch-first:
// Provide publishes one record, ProvideMany publishes a whole batch
// grouped by target peer (one multi-record ADD_PROVIDER RPC per peer)
// with a per-cycle ack Ledger, so a republish cycle costs O(distinct
// target peers) instead of O(CIDs × walk). Discovery is stream-first:
// FindProvidersStream yields providers as lookup responses arrive, so
// a retrieval can hand the first provider to Bitswap immediately while
// later ones become fail-over candidates; the package-level
// FindProviders adapter keeps the legacy blocking slice shape.
package routing

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Kind selects a Router implementation in core.Config.
type Kind string

// Available router kinds.
const (
	// KindDHT is the baseline iterative DHT walk (the deployed client).
	KindDHT Kind = "dht"
	// KindAccelerated is the one-hop full-routing-table client.
	KindAccelerated Kind = "accelerated"
	// KindIndexer delegates to indexer nodes with DHT fallback.
	KindIndexer Kind = "indexer"
	// KindParallel races every configured router.
	KindParallel Kind = "parallel"
)

// ProvideResult aliases the DHT's publication instrumentation so every
// router reports the phase breakdown core.PublishResult expects. One-hop
// routers leave the walk fields zero — that is the saving they exist to
// demonstrate.
type ProvideResult = dht.ProvideResult

// LookupInfo aliases the DHT's walk statistics; non-walking routers fill
// Queried/Failed with their direct RPC counts so message accounting
// stays comparable across implementations.
type LookupInfo = dht.WalkInfo

// ProviderSeq is a push iterator over provider batches: one yield per
// record-carrying lookup response, in arrival order. yield returning
// false stops the underlying lookup. The sequence runs synchronously
// inside the call — run it on its own goroutine to consume the first
// batch while the lookup keeps producing fail-over candidates.
type ProviderSeq func(yield func([]wire.PeerInfo) bool)

// StreamInfo carries a streaming lookup's statistics and terminal
// error; both are final once the ProviderSeq invocation returns (it is
// safe to read them from another goroutine after that).
type StreamInfo struct {
	mu   sync.Mutex
	info LookupInfo
	err  error
}

func (s *StreamInfo) set(info LookupInfo, err error) {
	s.mu.Lock()
	s.info, s.err = info, err
	s.mu.Unlock()
}

// Info returns the lookup statistics accumulated by the stream.
func (s *StreamInfo) Info() LookupInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// Err returns the lookup's terminal error: nil when at least one
// provider batch was yielded, ErrNoProviders on an exhausted lookup, or
// the context error.
func (s *StreamInfo) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ProvideManyResult instruments one batched publication: a whole CID
// batch grouped by target peer and pushed with one multi-record
// ADD_PROVIDER RPC per distinct target, minus the targets the ack
// ledger already confirmed this cycle.
type ProvideManyResult struct {
	CIDs     int // batch size
	Provided int // CIDs with >= 1 record confirmed (acked or ledger-fresh) this cycle
	Targets  int // distinct target peers the batch grouped onto
	// StoreRPCs counts the multi-record store RPCs issued — at most one
	// per distinct target, the bound that makes republish O(targets).
	StoreRPCs int
	// SkippedTargets counts targets skipped entirely because the ack
	// ledger had every one of their records confirmed this cycle.
	SkippedTargets int
	Acked          int // store RPCs acknowledged
	// Walks counts full WalkClosest lookups paid for CIDs with no
	// remembered target set (first publication through this router).
	Walks    int
	Walk     LookupInfo // aggregate cost of those walks
	Duration time.Duration
}

// Msgs counts the routing RPCs the batch issued: walk queries plus
// store RPCs.
func (r ProvideManyResult) Msgs() int {
	return LookupMessages(r.Walk) + r.StoreRPCs
}

// merge folds another batch result (a fallback's, or a parallel
// member's) into r.
func (r ProvideManyResult) merge(o ProvideManyResult) ProvideManyResult {
	r.Targets += o.Targets
	r.StoreRPCs += o.StoreRPCs
	r.SkippedTargets += o.SkippedTargets
	r.Acked += o.Acked
	r.Walks += o.Walks
	r.Walk = mergeLookup(r.Walk, o.Walk)
	if o.Duration > r.Duration {
		r.Duration = o.Duration
	}
	return r
}

// Router is the content-routing abstraction core.Node publishes and
// retrieves through, in two surfaces. Publication: Provide pushes one
// provider record, ProvideMany pushes a batch with per-target-peer
// grouping and ack-ledger skips (the §3.1 fan-out amortized across a
// republish cycle). Discovery: FindProvidersStream yields providers as
// responses arrive (§3.2 without the wait for complete results), and
// SessionPeers/WantBroadcast are the session surface Bitswap consults.
type Router interface {
	// Name identifies the implementation in experiment output.
	Name() string
	// Provide publishes a provider record for c.
	Provide(ctx context.Context, c cid.Cid) (ProvideResult, error)
	// ProvideMany publishes records for a whole CID batch, grouping the
	// batch by target peer: one multi-record ADD_PROVIDER RPC per
	// distinct target, skipping targets whose records the ack ledger
	// already confirmed this cycle. It returns an error only when the
	// whole batch failed to land a single record.
	ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error)
	// FindProvidersStream starts a provider lookup for c and returns an
	// iterator yielding provider batches as responses arrive, plus the
	// accessor for the lookup's statistics and terminal error (valid
	// once the iterator returns). Implementations end the stream when
	// their lookup is exhausted or the consumer's yield returns false.
	FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo)
	// SessionPeers returns up to n candidate peers believed to hold c
	// without paying a multi-hop walk, plus the routing RPCs spent
	// learning them. Routers with no cheap provider knowledge (the
	// baseline walk) return ErrNoSessionPeers, keeping Bitswap on its
	// opportunistic broadcast.
	SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error)
	// WantBroadcast reports whether Bitswap's opportunistic WANT-HAVE
	// broadcast should still run alongside routed session candidates.
	// One-hop routers answer false — they know the providers, so the
	// broadcast is pure waste (§3.2) — while the walk-based baseline
	// and composites containing it answer true.
	WantBroadcast() bool
}

// FindProviders adapts the streaming surface to the legacy blocking
// shape: it stops the stream at the first provider-carrying response
// and returns that batch — exactly the §3.2 "terminate on the first
// record-hosting node" semantics (and message cost) the one-shot API
// had.
func FindProviders(ctx context.Context, r Router, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	seq, st := r.FindProvidersStream(ctx, c)
	var out []wire.PeerInfo
	seq(func(batch []wire.PeerInfo) bool {
		out = append(out, batch...)
		return false
	})
	if len(out) > 0 {
		return out, st.Info(), nil
	}
	err := st.Err()
	if err == nil {
		err = ErrNoProviders
	}
	return nil, st.Info(), err
}

// LazyStream adapts a blocking slice-returning lookup to the streaming
// surface: the lookup runs when the sequence is invoked and its result
// is yielded as a single batch. Custom Router implementations built on
// one-shot lookups use it to satisfy FindProvidersStream.
func LazyStream(lookup func() ([]wire.PeerInfo, LookupInfo, error)) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		providers, info, err := lookup()
		if err == nil && len(providers) == 0 {
			err = ErrNoProviders
		}
		st.set(info, err)
		if err == nil {
			yield(providers)
		}
	}
	return seq, st
}

// ErrNoProviders is returned when a lookup exhausts every path without
// finding a provider record; it wraps the DHT sentinel so callers
// checking errors.Is(err, dht.ErrNoProviders) keep working.
var ErrNoProviders = dht.ErrNoProviders

// ErrNoSessionPeers is returned by SessionPeers when a router has no
// cheap provider knowledge for the key; the caller falls back to the
// opportunistic broadcast (and ultimately the FindProviders walk).
var ErrNoSessionPeers = errors.New("routing: no session peers known")

// capPeers bounds a candidate list to n entries (n <= 0 means all).
func capPeers(peers []wire.PeerInfo, n int) []wire.PeerInfo {
	if n > 0 && len(peers) > n {
		return peers[:n]
	}
	return peers
}

// sessionMissKey marks a context whose Bitswap session consult already
// probed the router's direct path for a CID and missed.
type sessionMissKey struct{}

// WithSessionMiss hands a SessionPeers consult miss forward: a
// FindProvidersStream call under the returned context skips the
// one-hop direct probe for c — the consult moments earlier asked the
// same snapshot/indexer neighbourhood and got nothing — and goes
// straight to the fallback walk, saving a duplicate RPC wave per
// unpublished-content retrieval.
func WithSessionMiss(ctx context.Context, c cid.Cid) context.Context {
	return context.WithValue(ctx, sessionMissKey{}, c.Key())
}

// sessionMissed reports whether the context records a consult miss for c.
func sessionMissed(ctx context.Context, c cid.Cid) bool {
	k, _ := ctx.Value(sessionMissKey{}).(string)
	return k != "" && k == c.Key()
}

// directFn is a router's one-hop lookup (snapshot neighbourhood or
// indexer query), returning ErrNoProviders on a miss.
type directFn func(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error)

// streamWithFallback is the shared direct-then-fallback streaming
// control flow of the one-hop routers: yield the direct path's batch,
// or chain into the fallback router's stream with the wasted direct
// RPCs merged into the reported cost. A session-consult miss recorded
// on the context skips the direct probe entirely — those RPCs went out
// (and were charged) during the consult.
func streamWithFallback(ctx context.Context, direct directFn, fallback Router, c cid.Cid) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		if sessionMissed(ctx, c) {
			streamFallback(ctx, fallback, c, LookupInfo{}, yield, st)
			return
		}
		providers, info, err := direct(ctx, c)
		if err == nil {
			st.set(info, nil)
			yield(providers)
			return
		}
		if ctx.Err() != nil {
			st.set(info, err)
			return
		}
		streamFallback(ctx, fallback, c, info, yield, st)
	}
	return seq, st
}

// streamFallback runs the fallback router's provider stream, charging
// the wasted direct-path cost onto the reported statistics. A nil
// fallback ends the stream with ErrNoProviders.
func streamFallback(ctx context.Context, fallback Router, c cid.Cid, direct LookupInfo, yield func([]wire.PeerInfo) bool, st *StreamInfo) {
	if fallback == nil {
		err := ctx.Err()
		if err == nil {
			err = ErrNoProviders
		}
		st.set(direct, err)
		return
	}
	// Mark the hand-off on the trace: everything the fallback does from
	// here attributes to the same parent span.
	telemetry.SpanFrom(ctx).Event("fallback", telemetry.A("to", fallback.Name()))
	seq, fst := fallback.FindProvidersStream(ctx, c)
	seq(yield)
	st.set(mergeLookup(direct, fst.Info()), fst.Err())
}

// sessionFromDirect is the shared SessionPeers body of the one-hop
// routers: the direct lookup capped to n candidates, with a miss
// mapped to ErrNoSessionPeers so the caller keeps its broadcast/walk
// fallback.
func sessionFromDirect(ctx context.Context, direct directFn, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	providers, info, err := direct(ctx, c)
	if err != nil {
		return nil, LookupMessages(info), ErrNoSessionPeers
	}
	return capPeers(providers, n), LookupMessages(info), nil
}

// LookupMessages counts the routing RPCs one lookup issued. Walk-based
// lookups report every launched query (including ones abandoned at
// early stop); one-hop routers fill Queried/Failed directly.
func LookupMessages(info LookupInfo) int {
	return max(info.Launched, info.Queried+info.Failed)
}

// ProvideMessages counts the routing RPCs one publication issued: the
// walk queries plus the record-store batch.
func ProvideMessages(res ProvideResult) int {
	return LookupMessages(res.Walk) + res.StoreAttempts
}

// mergeLookup accumulates a fallback path's statistics onto the direct
// path's, so a miss-then-fallback lookup reports its full message cost.
func mergeLookup(direct, fallback LookupInfo) LookupInfo {
	return LookupInfo{
		Duration: direct.Duration + fallback.Duration,
		Queried:  direct.Queried + fallback.Queried,
		Failed:   direct.Failed + fallback.Failed,
		Launched: LookupMessages(direct) + LookupMessages(fallback),
		Depth:    max(direct.Depth, fallback.Depth),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// storeBatch pushes req to every target with concurrent fire-and-forget
// RPCs — the §3.1 record-store fan-out the one-hop routers share — and
// returns the targets that acknowledged.
func storeBatch(ctx context.Context, sw *swarm.Swarm, src simtime.Source, timeout time.Duration, targets []wire.PeerInfo, req wire.Message) (attempts int, ackedTargets []wire.PeerInfo) {
	g := simtime.NewGroup(src)
	var mu sync.Mutex
	for _, info := range targets {
		info := info
		attempts++
		g.Go(ctx, func(gctx context.Context) {
			rctx, cancel := src.WithTimeout(gctx, timeout)
			defer cancel()
			resp, err := sw.Request(rctx, info.ID, info.Addrs, req)
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				ackedTargets = append(ackedTargets, info)
				mu.Unlock()
			}
		})
	}
	g.Wait(ctx)
	return attempts, ackedTargets
}

// provideFallback routes a fully-failed one-hop batch through the
// fallback router, charging the wasted direct RPCs onto the fallback's
// result so the reported cost covers both paths.
func provideFallback(ctx context.Context, fallback Router, c cid.Cid, direct ProvideResult, directErr error) (ProvideResult, error) {
	if fallback == nil || ctx.Err() != nil {
		return direct, directErr
	}
	fres, err := fallback.Provide(ctx, c)
	fres.StoreAttempts += direct.StoreAttempts
	fres.TotalDuration += direct.TotalDuration
	return fres, err
}

// fillAddrs backfills provider addresses from the local address book —
// §3.2's "check whether they already have an address" shortcut.
func fillAddrs(sw *swarm.Swarm, providers []wire.PeerInfo) []wire.PeerInfo {
	out := make([]wire.PeerInfo, 0, len(providers))
	for _, p := range providers {
		if addrs, ok := sw.Book().Get(p.ID); ok && len(p.Addrs) == 0 {
			p.Addrs = addrs
		}
		out = append(out, p)
	}
	return out
}

// dedupProviders filters a batch down to peers not yet seen this
// stream, so merged or multi-response streams yield each provider once.
func dedupProviders(seen map[peer.ID]bool, batch []wire.PeerInfo) []wire.PeerInfo {
	out := batch[:0:len(batch)]
	for _, p := range batch {
		if seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		out = append(out, p)
	}
	return out
}
