// Package routing abstracts content routing behind a pluggable Router
// interface. The paper shows that multi-hop DHT walks dominate both
// publication delay (§6.1, Fig 9a–c) and retrieval delay (§6.2) and
// proposes running alternative discovery paths in parallel as the main
// optimization lever; production IPFS answered with the accelerated
// DHT client and delegated indexer nodes. This package provides all of
// them over the same message fabric so they can be compared and
// ablated:
//
//   - DHTRouter: the baseline iterative walk of internal/dht.
//   - AcceleratedRouter: a full-routing-table client that snapshots
//     the network with internal/crawler and then provides/looks up in
//     one hop against the K closest peers.
//   - IndexerRouter: a delegated-routing client publishing to and
//     querying indexer aggregator nodes, falling back to the DHT.
//   - ParallelRouter: a composite racing member routers, returning the
//     first success and cancelling the losers (§6.2's "parallel
//     discovery" generalized beyond Bitswap).
package routing

import (
	"context"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// Kind selects a Router implementation in core.Config.
type Kind string

// Available router kinds.
const (
	// KindDHT is the baseline iterative DHT walk (the deployed client).
	KindDHT Kind = "dht"
	// KindAccelerated is the one-hop full-routing-table client.
	KindAccelerated Kind = "accelerated"
	// KindIndexer delegates to indexer nodes with DHT fallback.
	KindIndexer Kind = "indexer"
	// KindParallel races every configured router.
	KindParallel Kind = "parallel"
)

// ProvideResult aliases the DHT's publication instrumentation so every
// router reports the phase breakdown core.PublishResult expects. One-hop
// routers leave the walk fields zero — that is the saving they exist to
// demonstrate.
type ProvideResult = dht.ProvideResult

// LookupInfo aliases the DHT's walk statistics; non-walking routers fill
// Queried/Failed with their direct RPC counts so message accounting
// stays comparable across implementations.
type LookupInfo = dht.WalkInfo

// Router is the content-routing abstraction core.Node publishes and
// retrieves through.
type Router interface {
	// Name identifies the implementation in experiment output.
	Name() string
	// Provide publishes a provider record for c.
	Provide(ctx context.Context, c cid.Cid) (ProvideResult, error)
	// FindProviders locates peers holding c. Implementations return as
	// soon as one record-holding response arrives (§3.2).
	FindProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error)
}

// ErrNoProviders is returned when a lookup exhausts every path without
// finding a provider record; it wraps the DHT sentinel so callers
// checking errors.Is(err, dht.ErrNoProviders) keep working.
var ErrNoProviders = dht.ErrNoProviders

// LookupMessages counts the routing RPCs one lookup issued. Walk-based
// lookups report every launched query (including ones abandoned at
// early stop); one-hop routers fill Queried/Failed directly.
func LookupMessages(info LookupInfo) int {
	return max(info.Launched, info.Queried+info.Failed)
}

// ProvideMessages counts the routing RPCs one publication issued: the
// walk queries plus the record-store batch.
func ProvideMessages(res ProvideResult) int {
	return LookupMessages(res.Walk) + res.StoreAttempts
}

// mergeLookup accumulates a fallback path's statistics onto the direct
// path's, so a miss-then-fallback lookup reports its full message cost.
func mergeLookup(direct, fallback LookupInfo) LookupInfo {
	return LookupInfo{
		Duration: direct.Duration + fallback.Duration,
		Queried:  direct.Queried + fallback.Queried,
		Failed:   direct.Failed + fallback.Failed,
		Launched: LookupMessages(direct) + LookupMessages(fallback),
		Depth:    max(direct.Depth, fallback.Depth),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// storeBatch pushes req to every target with concurrent fire-and-forget
// RPCs — the §3.1 record-store fan-out the one-hop routers share.
func storeBatch(ctx context.Context, sw *swarm.Swarm, base simtime.Base, timeout time.Duration, targets []wire.PeerInfo, req wire.Message) (attempts, acked int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, info := range targets {
		info := info
		wg.Add(1)
		attempts++
		go func() {
			defer wg.Done()
			rctx, cancel := base.WithTimeout(ctx, timeout)
			defer cancel()
			resp, err := sw.Request(rctx, info.ID, info.Addrs, req)
			if err == nil && resp.Type == wire.TAck {
				mu.Lock()
				acked++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return attempts, acked
}

// provideFallback routes a fully-failed one-hop batch through the
// fallback router, charging the wasted direct RPCs onto the fallback's
// result so the reported cost covers both paths.
func provideFallback(ctx context.Context, fallback Router, c cid.Cid, direct ProvideResult, directErr error) (ProvideResult, error) {
	if fallback == nil || ctx.Err() != nil {
		return direct, directErr
	}
	fres, err := fallback.Provide(ctx, c)
	fres.StoreAttempts += direct.StoreAttempts
	fres.TotalDuration += direct.TotalDuration
	return fres, err
}

// fillAddrs backfills provider addresses from the local address book —
// §3.2's "check whether they already have an address" shortcut.
func fillAddrs(sw *swarm.Swarm, providers []wire.PeerInfo) []wire.PeerInfo {
	out := make([]wire.PeerInfo, 0, len(providers))
	for _, p := range providers {
		if addrs, ok := sw.Book().Get(p.ID); ok && len(p.Addrs) == 0 {
			p.Addrs = addrs
		}
		out = append(out, p)
	}
	return out
}
