package routing_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/wire"
)

// detachedRouter shields its inner router from race cancellation
// (context.WithoutCancel), so a "losing" member deterministically
// completes its RPCs — the accounting tests need the loser's cost to
// actually hit the network.
type detachedRouter struct{ inner routing.Router }

func (d detachedRouter) Name() string { return d.inner.Name() }

func (d detachedRouter) Provide(ctx context.Context, c cid.Cid) (routing.ProvideResult, error) {
	return d.inner.Provide(context.WithoutCancel(ctx), c)
}

func (d detachedRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (routing.ProvideManyResult, error) {
	return d.inner.ProvideMany(context.WithoutCancel(ctx), cids)
}

func (d detachedRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	return d.inner.FindProvidersStream(context.WithoutCancel(ctx), c)
}

func (d detachedRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	return d.inner.SessionPeers(context.WithoutCancel(ctx), c, n)
}

func (d detachedRouter) WantBroadcast() bool { return d.inner.WantBroadcast() }

// TestParallelRaceChargesLosersAgainstBudget is the regression test
// for raced-RPC under-counting: the message totals a ParallelRouter
// reports — for the winner path and the all-fail path, lookup and
// publication alike — must match what the simulated network actually
// saw in simnet's budget.
func TestParallelRaceChargesLosersAgainstBudget(t *testing.T) {
	tn := buildCleanNet(t, 40, 81)
	ctx := context.Background()

	// Two single-indexer routers: every operation costs exactly one RPC
	// per member, so the totals are deterministic. The second member is
	// detached so losing the race cannot suppress its RPC.
	ixHit := tn.AddIndexer("US", 810)
	ixMiss := tn.AddIndexer("DE", 811)
	node := tn.AddVantage("US", 812)
	mkRouter := func(ix wire.PeerInfo) routing.Router {
		return routing.NewIndexerRouter(node.Swarm(), []wire.PeerInfo{ix}, nil,
			routing.IndexerRouterConfig{Base: tn.Base})
	}
	hit := mkRouter(ixHit.Info())
	miss := detachedRouter{inner: mkRouter(ixMiss.Info())}

	c := testCid("raced content")
	publisher := tn.AddVantage("DE", 813)
	pubR := routing.NewIndexerRouter(publisher.Swarm(), []wire.PeerInfo{ixHit.Info()}, nil,
		routing.IndexerRouterConfig{Base: tn.Base})
	if _, err := pubR.Provide(ctx, c); err != nil {
		t.Fatalf("seed provide: %v", err)
	}

	r := routing.NewParallel(hit, miss)

	// Winner path: the hit member answers in one RPC, the cancelled
	// loser's RPC must still be charged and must equal the budget.
	before := tn.Net.Budget()
	_, info, err := routing.FindProviders(ctx, r, c)
	if err != nil {
		t.Fatalf("FindProviders: %v", err)
	}
	spent := tn.Net.Budget().Sub(before).Requests
	if got := routing.LookupMessages(info); int64(got) != spent {
		t.Errorf("race reported %d lookup msgs, network saw %d — losers under-counted", got, spent)
	}
	if spent != 2 {
		t.Errorf("network saw %d requests, want 2 (winner + detached loser)", spent)
	}

	// All-fail path: both members miss; the reported cost must still
	// cover every raced RPC instead of vanishing with the error.
	missCid := testCid("never published")
	before = tn.Net.Budget()
	_, info, err = routing.FindProviders(ctx, r, missCid)
	if !errors.Is(err, routing.ErrNoProviders) {
		t.Fatalf("miss err = %v, want ErrNoProviders", err)
	}
	spent = tn.Net.Budget().Sub(before).Requests
	if got := routing.LookupMessages(info); int64(got) != spent || spent != 2 {
		t.Errorf("all-fail race reported %d msgs, network saw %d, want 2", got, spent)
	}

	// Provide winner path: both members store one record each; the
	// drained loser's store is charged.
	pc := testCid("raced publication")
	before = tn.Net.Budget()
	res, err := r.Provide(ctx, pc)
	if err != nil {
		t.Fatalf("Provide: %v", err)
	}
	spent = tn.Net.Budget().Sub(before).Requests
	if got := routing.ProvideMessages(res); int64(got) != spent || spent != 2 {
		t.Errorf("raced provide reported %d msgs, network saw %d, want 2", got, spent)
	}
}

// TestParallelProvideAllFailKeepsCost pins the all-fail Provide
// accounting fix: when every raced member fails, the RPCs they spent
// still appear in the returned result.
func TestParallelProvideAllFailKeepsCost(t *testing.T) {
	failCost := routing.ProvideResult{StoreAttempts: 2, Walk: routing.LookupInfo{Queried: 3}}
	a := &fakeRouter{name: "a", delay: time.Millisecond, err: errors.New("a down"), provideRes: failCost}
	b := &fakeRouter{name: "b", delay: 2 * time.Millisecond, err: errors.New("b down"), provideRes: failCost}
	res, err := routing.NewParallel(a, b).Provide(context.Background(), testCid("x"))
	if err == nil {
		t.Fatal("want error when every member fails")
	}
	if got := routing.ProvideMessages(res); got != 2*routing.ProvideMessages(failCost) {
		t.Errorf("all-fail provide reports %d msgs, want %d (both members' spend)",
			got, 2*routing.ProvideMessages(failCost))
	}
}

// TestParallelStreamKeepsLosersPartialResults is the streaming-merge
// contract: draining the composite stream past the winner's batch
// yields the slower members' providers too, instead of discarding them
// with the cancelled losers.
func TestParallelStreamKeepsLosersPartialResults(t *testing.T) {
	fast := &fakeRouter{name: "fast", delay: time.Millisecond, provider: peer.ID("winner")}
	slow := &fakeRouter{name: "slow", delay: 20 * time.Millisecond, provider: peer.ID("straggler")}
	r := routing.NewParallel(fast, slow)

	seq, st := r.FindProvidersStream(context.Background(), testCid("merge"))
	var got []peer.ID
	seq(func(batch []wire.PeerInfo) bool {
		for _, p := range batch {
			got = append(got, p.ID)
		}
		return true // keep draining: the straggler's result must arrive
	})
	if err := st.Err(); err != nil {
		t.Fatalf("stream err = %v", err)
	}
	if len(got) != 2 || got[0] != peer.ID("winner") || got[1] != peer.ID("straggler") {
		t.Fatalf("streamed providers = %v, want winner then straggler", got)
	}
	if msgs := routing.LookupMessages(st.Info()); msgs < 2 {
		t.Errorf("aggregated stream reports %d msgs, want both members charged", msgs)
	}

	// Stopping at the first batch cancels the straggler instead.
	slow2 := &fakeRouter{name: "slow2", delay: time.Minute, provider: peer.ID("late")}
	seq, _ = routing.NewParallel(fast, slow2).FindProvidersStream(context.Background(), testCid("merge2"))
	start := time.Now()
	seq(func([]wire.PeerInfo) bool { return false })
	if time.Since(start) > 5*time.Second {
		t.Fatal("stopping the stream did not cancel the slow member")
	}
	if !slow2.cancelled.Load() {
		t.Error("slow member not cancelled after the consumer stopped")
	}
}
