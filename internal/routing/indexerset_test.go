package routing_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/testnet"
	"repro/internal/wire"
)

// TestIndexerSetPartition pins the shard map's contract: every CID
// lands in exactly one shard, the partition is deterministic across
// independently-built sets (publishers and getters must agree with no
// coordination), a multi-shard split actually uses more than one
// shard, and Group returns a member's replica neighbours minus itself.
func TestIndexerSetPartition(t *testing.T) {
	groups := [][]wire.PeerInfo{
		{{ID: peer.ID("a1")}, {ID: peer.ID("a2")}},
		{{ID: peer.ID("b1")}, {ID: peer.ID("b2")}},
		{{ID: peer.ID("c1")}},
	}
	set := routing.NewIndexerSet(groups)
	other := routing.NewIndexerSet(groups)
	if set.Shards() != 3 {
		t.Fatalf("Shards = %d, want 3", set.Shards())
	}
	used := make(map[int]int)
	for i := 0; i < 200; i++ {
		c := testCid(fmt.Sprintf("partition probe %d", i))
		sh := set.ShardOf(c)
		if sh < 0 || sh >= set.Shards() {
			t.Fatalf("ShardOf out of range: %d", sh)
		}
		if got := other.ShardOf(c); got != sh {
			t.Fatalf("independently built set disagrees: %d vs %d", got, sh)
		}
		used[sh]++
	}
	if len(used) != 3 {
		t.Errorf("200 CIDs hit only shards %v, want all 3 used", used)
	}
	if got := set.All(); len(got) != 5 {
		t.Errorf("All() returned %d indexers, want 5", len(got))
	}
	group := set.Group(peer.ID("a2"))
	if len(group) != 1 || group[0].ID != peer.ID("a1") {
		t.Errorf("Group(a2) = %v, want just a1", group)
	}
	if set.Group(peer.ID("zz")) != nil {
		t.Error("Group of a non-member should be nil")
	}
}

// shardedHarness is a two-shard, two-replica indexer deployment on a
// bare simnet plus a publisher/getter swarm pair.
type shardedHarness struct {
	net    *simnet.Network
	base   simtime.Base
	clock  *simtime.Clock
	set    *routing.IndexerSet
	groups [][]*routing.Indexer
	pubSw  *swarm.Swarm
	getSw  *swarm.Swarm
}

func newShardedHarness(t *testing.T, shards, replicas int, ttl time.Duration) *shardedHarness {
	t.Helper()
	h := &shardedHarness{
		base:  simtime.New(0.0005),
		clock: simtime.NewClock(testnet.DefaultEpoch),
	}
	h.net = simnet.New(simnet.Config{Base: h.base, Seed: 3})
	rng := rand.New(rand.NewSource(17))
	newSwarm := func() *swarm.Swarm {
		ident := peer.MustNewIdentity(rng)
		ep := h.net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
		return swarm.New(ident, ep, simtime.NewBaseSource(h.base, nil))
	}
	infoGroups := make([][]wire.PeerInfo, shards)
	for s := 0; s < shards; s++ {
		var group []*routing.Indexer
		for i := 0; i < replicas; i++ {
			ident := peer.MustNewIdentity(rng)
			ep := h.net.AddNode(ident.ID, simnet.NodeOpts{Region: "US", Dialable: true})
			ix := routing.NewIndexer(ident, ep, routing.IndexerConfig{
				Base: h.base, RecordTTL: ttl, Now: h.clock.Now,
			})
			group = append(group, ix)
			infoGroups[s] = append(infoGroups[s], ix.Info())
		}
		h.groups = append(h.groups, group)
	}
	h.set = routing.NewIndexerSet(infoGroups)
	for s, group := range h.groups {
		for _, ix := range group {
			ix.SetReplicaGroup(infoGroups[s])
		}
	}
	h.pubSw, h.getSw = newSwarm(), newSwarm()
	return h
}

func (h *shardedHarness) router(sw *swarm.Swarm, fallback routing.Router) *routing.IndexerRouter {
	r := routing.NewIndexerRouter(sw, nil, fallback, routing.IndexerRouterConfig{Base: h.base, Now: h.clock.Now})
	r.SetIndexerSet(h.set)
	return r
}

// holders returns which indexers hold a record for c, as shard/replica
// coordinates.
func (h *shardedHarness) holders(c cid.Cid) map[string]bool {
	out := make(map[string]bool)
	for s, group := range h.groups {
		for i, ix := range group {
			if ix.HasProvider(c) {
				out[fmt.Sprintf("%d/%d", s, i)] = true
			}
		}
	}
	return out
}

// TestShardedProvideLandsOnOwningShardOnly asserts the publication
// contract of the sharded router: a record lands on every replica of
// its owning shard and on no other shard, and the batched ProvideMany
// splits a mixed batch per shard the same way.
func TestShardedProvideLandsOnOwningShardOnly(t *testing.T) {
	h := newShardedHarness(t, 2, 2, 0)
	ctx := context.Background()
	pub := h.router(h.pubSw, nil)

	cids := batchCids(6, "sharded provide ")
	for _, c := range cids {
		if _, err := pub.Provide(ctx, c); err != nil {
			t.Fatalf("Provide: %v", err)
		}
	}
	for _, c := range cids {
		sh := h.set.ShardOf(c)
		want := map[string]bool{
			fmt.Sprintf("%d/0", sh): true,
			fmt.Sprintf("%d/1", sh): true,
		}
		got := h.holders(c)
		if len(got) != 2 || !got[fmt.Sprintf("%d/0", sh)] || !got[fmt.Sprintf("%d/1", sh)] {
			t.Errorf("cid in shard %d held by %v, want exactly %v", sh, got, want)
		}
	}

	// A fresh router (empty ledger) batching the same CIDs: one bulk
	// RPC per replica of each shard that owns part of the batch.
	pub2 := h.router(h.pubSw, nil)
	res, err := pub2.ProvideMany(ctx, cids)
	if err != nil {
		t.Fatalf("ProvideMany: %v", err)
	}
	shardsUsed := make(map[int]bool)
	for _, c := range cids {
		shardsUsed[h.set.ShardOf(c)] = true
	}
	wantRPCs := 2 * len(shardsUsed) // replicas × shards touched
	if res.StoreRPCs != wantRPCs || res.Provided != len(cids) {
		t.Errorf("ProvideMany = %+v, want %d store RPCs and %d provided", res, wantRPCs, len(cids))
	}
}

// TestGossipRepairsReplicaAndRespectsTTL covers the anti-entropy path:
// a replica offline during publication converges back to its group via
// gossip, the replicated copy keeps the original publish instant (so
// it expires with the original), a second round is deduplicated by the
// gossip ledger, and a record past its TTL is not resurrected.
func TestGossipRepairsReplicaAndRespectsTTL(t *testing.T) {
	ttl := 4 * time.Hour
	h := newShardedHarness(t, 1, 2, ttl)
	ctx := context.Background()
	pub := h.router(h.pubSw, nil)
	primary, replica := h.groups[0][0], h.groups[0][1]

	// The replica misses the publish window.
	h.net.SetOnline(replica.ID(), false)
	c := testCid("gossip repaired content")
	if _, err := pub.Provide(ctx, c); err != nil {
		t.Fatalf("Provide with one replica down: %v", err)
	}
	if !primary.HasProvider(c) || replica.HasProvider(c) {
		t.Fatal("record placement before gossip is wrong")
	}

	// Back online: one anti-entropy round repairs it.
	h.net.SetOnline(replica.ID(), true)
	st := primary.Gossip(ctx)
	if st.RPCs == 0 || st.Acked == 0 || st.Records == 0 {
		t.Fatalf("gossip round pushed nothing: %+v", st)
	}
	if !replica.HasProvider(c) {
		t.Fatal("replica not repaired by gossip")
	}

	// The ledger suppresses an immediate re-push.
	if st2 := primary.Gossip(ctx); st2.RPCs != 0 {
		t.Errorf("second round re-pushed despite fresh acks: %+v", st2)
	}

	// The copy expires with the original: advance past the TTL measured
	// from the original publish, not from the gossip arrival.
	h.clock.Set(h.clock.Now().Add(ttl + time.Hour))
	if replica.HasProvider(c) || primary.HasProvider(c) {
		t.Error("records outlived the original TTL")
	}
	// And an expired record is not resurrected by a later round.
	if st3 := primary.Gossip(ctx); st3.Records != 0 {
		t.Errorf("gossip pushed expired records: %+v", st3)
	}
	replica.GC()
	if got := replica.Len(); got != 0 {
		t.Errorf("replica still holds %d records after GC", got)
	}
}

// TestShardFailoverExtraRPCsPinned is the fail-over cost contract: a
// shard's primary going offline mid-window costs the lookup exactly
// one extra (failed) hop before the surviving replica answers, pinned
// against the simulator's budget — requests only reach the replica,
// the dead primary shows up as a failed dial.
func TestShardFailoverExtraRPCsPinned(t *testing.T) {
	cases := []struct {
		name          string
		primaryDown   bool
		wantMsgs      int   // routing RPCs the lookup reports
		wantRequests  int64 // requests the network actually carried
		wantDialFails int64
	}{
		{name: "primary online", primaryDown: false, wantMsgs: 1, wantRequests: 1, wantDialFails: 0},
		{name: "primary offline", primaryDown: true, wantMsgs: 2, wantRequests: 1, wantDialFails: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newShardedHarness(t, 1, 2, 0)
			ctx := context.Background()
			pub, get := h.router(h.pubSw, nil), h.router(h.getSw, nil)

			c := testCid("failover content")
			if _, err := pub.Provide(ctx, c); err != nil {
				t.Fatalf("Provide: %v", err)
			}
			if tc.primaryDown {
				h.net.SetOnline(h.groups[0][0].ID(), false)
			}
			before := h.net.Budget()
			providers, info, err := routing.FindProviders(ctx, get, c)
			if err != nil {
				t.Fatalf("FindProviders: %v", err)
			}
			if len(providers) == 0 || providers[0].ID != h.pubSw.Local() {
				t.Fatalf("providers = %v, want the publisher via a live replica", providers)
			}
			if got := routing.LookupMessages(info); got != tc.wantMsgs {
				t.Errorf("lookup reports %d RPCs, want %d", got, tc.wantMsgs)
			}
			d := h.net.Budget().Sub(before)
			if d.Requests != tc.wantRequests || d.DialFailures != tc.wantDialFails {
				t.Errorf("budget delta = %d requests / %d failed dials, want %d / %d",
					d.Requests, d.DialFailures, tc.wantRequests, tc.wantDialFails)
			}
		})
	}
}

// TestEmptyIndexerSetFallsThrough: a shardless topology owns nothing —
// routing must fall through to the configured fallback instead of
// panicking on the shard lookup.
func TestEmptyIndexerSetFallsThrough(t *testing.T) {
	set := routing.NewIndexerSet(nil)
	if set.Shards() != 0 || set.ShardOf(testCid("anything")) != -1 {
		t.Fatalf("empty set: shards=%d shard=%d, want 0 and -1", set.Shards(), set.ShardOf(testCid("anything")))
	}
	h := newShardedHarness(t, 1, 1, 0)
	fb := &countingRouter{inner: &fakeRouter{name: "fb", provider: peer.ID("via-fallback"), delay: time.Millisecond}}
	r := routing.NewIndexerRouter(h.getSw, nil, fb, routing.IndexerRouterConfig{Base: h.base})
	r.SetIndexerSet(set)

	providers, _, err := routing.FindProviders(context.Background(), r, testCid("unowned"))
	if err != nil || len(providers) == 0 || providers[0].ID != peer.ID("via-fallback") {
		t.Fatalf("lookup = %v, %v; want the fallback's provider", providers, err)
	}
	if _, err := r.Provide(context.Background(), testCid("unowned")); err != nil {
		t.Fatalf("Provide did not fall through: %v", err)
	}
}

// TestGossipLedgerStaysBounded: the gossip dedup ledger prunes acks
// past the freshness bound and records no target sets, so a sustained
// stream of unique CIDs cannot grow it without bound — the same
// guarantee the tick GC gives the ProviderStore.
func TestGossipLedgerStaysBounded(t *testing.T) {
	ttl := 2 * time.Hour
	h := newShardedHarness(t, 1, 2, ttl)
	ctx := context.Background()
	pub := h.router(h.pubSw, nil)
	primary := h.groups[0][0]

	const perRound, rounds = 10, 12
	for round := 0; round < rounds; round++ {
		for j := 0; j < perRound; j++ {
			c := testCid(fmt.Sprintf("ledger bound %d/%d", round, j))
			if _, err := pub.Provide(ctx, c); err != nil {
				t.Fatalf("Provide: %v", err)
			}
		}
		primary.GC()
		primary.Gossip(ctx)
		h.clock.Set(h.clock.Now().Add(time.Hour))
	}
	// Live records span the TTL window (three rounds' worth at one
	// round per hour) and acks survive one freshness window on top;
	// the ledger must sit in that constant envelope instead of
	// retaining all rounds × perRound acks.
	if got := primary.GossipLedgerLen(); got > 5*perRound {
		t.Errorf("gossip ledger holds %d acks after %d publishes, want <= %d",
			got, rounds*perRound, 5*perRound)
	}
}

// TestShardedStreamMergesReplicas asserts a consumer that keeps the
// stream open receives the union of the replica group's knowledge,
// deduplicated: two replicas with overlapping provider sets yield each
// provider once.
func TestShardedStreamMergesReplicas(t *testing.T) {
	h := newShardedHarness(t, 1, 2, 0)
	ctx := context.Background()
	c := testCid("merged stream content")

	// Publish from two different swarms, the second reaching only the
	// second replica — the replicas now hold overlapping sets.
	pub := h.router(h.pubSw, nil)
	if _, err := pub.Provide(ctx, c); err != nil {
		t.Fatalf("Provide: %v", err)
	}
	h.net.SetOnline(h.groups[0][0].ID(), false)
	pub2 := h.router(h.getSw, nil)
	if _, err := pub2.Provide(ctx, c); err != nil {
		t.Fatalf("second Provide: %v", err)
	}
	h.net.SetOnline(h.groups[0][0].ID(), true)

	// A third swarm consumes the full stream.
	rng := rand.New(rand.NewSource(99))
	ident := peer.MustNewIdentity(rng)
	ep := h.net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
	sw := swarm.New(ident, ep, simtime.NewBaseSource(h.base, nil))
	get := h.router(sw, nil)

	seq, st := get.FindProvidersStream(ctx, c)
	seen := make(map[peer.ID]int)
	batches := 0
	seq(func(batch []wire.PeerInfo) bool {
		batches++
		for _, p := range batch {
			seen[p.ID]++
		}
		return true
	})
	if st.Err() != nil {
		t.Fatalf("stream error: %v", st.Err())
	}
	if len(seen) != 2 {
		t.Fatalf("merged stream saw providers %v, want both publishers", seen)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("provider %s yielded %d times, want deduplicated", id.Short(), n)
		}
	}
	if batches != 2 {
		t.Errorf("stream yielded %d batches, want one per answering replica", batches)
	}
	if st.Info().Queried != 2 {
		t.Errorf("stream queried %d replicas, want 2", st.Info().Queried)
	}
}
