package routing

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cid"
	"repro/internal/wire"
)

// ParallelRouter races its member routers and returns the first
// success, cancelling the losers — the paper's §6.2 "running DHT
// lookups in parallel to Bitswap could be superior" generalized to
// arbitrary discovery paths (walk vs one-hop snapshot vs indexer). It
// trades extra requests for latency, exactly the trade-off the paper
// frames.
type ParallelRouter struct {
	members []Router
}

// NewParallel builds a composite over the members; at least one is
// required.
func NewParallel(members ...Router) *ParallelRouter {
	return &ParallelRouter{members: members}
}

// Name implements Router, naming the members raced.
func (r *ParallelRouter) Name() string {
	names := make([]string, len(r.members))
	for i, m := range r.members {
		names[i] = m.Name()
	}
	return string(KindParallel) + "(" + strings.Join(names, "+") + ")"
}

// Members exposes the raced routers.
func (r *ParallelRouter) Members() []Router { return r.members }

// Provide implements Router: every member publishes concurrently and
// the first success wins, with the losers cancelled. Because the
// members push records to disjoint places (DHT neighbourhood, snapshot
// neighbourhood, indexer store), the winner alone satisfies the §3.1
// contract; the extra replicas the losers managed before cancellation
// are a bonus, never a correctness requirement.
func (r *ParallelRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	if len(r.members) == 0 {
		return ProvideResult{}, fmt.Errorf("routing: parallel provide %s: no members", c)
	}
	type outcome struct {
		res ProvideResult
		err error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		m := m
		go func() {
			res, err := m.Provide(pctx, c)
			ch <- outcome{res: res, err: err}
		}()
	}
	var firstErr error
	loserMsgs := 0
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		if o.err == nil {
			cancel()
			// Drain the cancelled losers (they return promptly once the
			// context falls) and charge the RPCs they managed to launch,
			// so the race's extra-requests-for-latency trade-off shows
			// up in the message accounting.
			for j := i + 1; j < len(r.members); j++ {
				lo := <-ch
				loserMsgs += ProvideMessages(lo.res)
			}
			o.res.Walk.Launched = LookupMessages(o.res.Walk) + loserMsgs
			return o.res, nil
		}
		loserMsgs += ProvideMessages(o.res)
		if firstErr == nil {
			firstErr = o.err
		}
	}
	return ProvideResult{}, firstErr
}

// SessionPeers implements Router: members race their cheap candidate
// lookups and the first non-empty answer wins, with losers cancelled
// and their RPCs charged onto the reported message count. Members with
// no session knowledge (the walk baseline) decline instantly, so the
// race degenerates to the one-hop members.
func (r *ParallelRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	if len(r.members) == 0 {
		return nil, 0, fmt.Errorf("routing: parallel session peers %s: no members", c)
	}
	type outcome struct {
		peers []wire.PeerInfo
		msgs  int
		err   error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		m := m
		go func() {
			peers, msgs, err := m.SessionPeers(pctx, c, n)
			ch <- outcome{peers: peers, msgs: msgs, err: err}
		}()
	}
	msgs := 0
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		msgs += o.msgs
		if o.err == nil && len(o.peers) > 0 {
			cancel()
			// Drain the cancelled losers and charge their RPCs.
			for j := i + 1; j < len(r.members); j++ {
				msgs += (<-ch).msgs
			}
			return o.peers, msgs, nil
		}
	}
	return nil, msgs, ErrNoSessionPeers
}

// WantBroadcast implements Router: the composite broadcasts when any
// member would — racing the broadcast against the routed candidates is
// exactly the extra-requests-for-latency trade the parallel router
// makes.
func (r *ParallelRouter) WantBroadcast() bool {
	for _, m := range r.members {
		if m.WantBroadcast() {
			return true
		}
	}
	return false
}

// FindProviders implements Router: members race and the first
// provider-carrying response wins; losers are cancelled.
func (r *ParallelRouter) FindProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, LookupInfo, error) {
	if len(r.members) == 0 {
		return nil, LookupInfo{}, fmt.Errorf("routing: parallel find %s: no members", c)
	}
	type outcome struct {
		providers []wire.PeerInfo
		info      LookupInfo
		err       error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		m := m
		go func() {
			providers, info, err := m.FindProviders(pctx, c)
			ch <- outcome{providers: providers, info: info, err: err}
		}()
	}
	var firstErr error
	var lastInfo LookupInfo
	var maxDur time.Duration
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		if o.info.Duration > maxDur {
			maxDur = o.info.Duration
		}
		if o.err == nil && len(o.providers) > 0 {
			cancel()
			// Drain the cancelled losers and charge the RPCs they
			// launched before losing; the winner's duration and depth
			// are kept — the race costs messages, not time.
			loserMsgs := LookupMessages(lastInfo)
			for j := i + 1; j < len(r.members); j++ {
				lo := <-ch
				loserMsgs += LookupMessages(lo.info)
			}
			o.info.Launched = LookupMessages(o.info) + loserMsgs
			return o.providers, o.info, nil
		}
		lastInfo = mergeLookup(lastInfo, o.info)
		if firstErr == nil && o.err != nil {
			firstErr = o.err
		}
	}
	if firstErr == nil {
		firstErr = ErrNoProviders
	}
	// Members raced concurrently, so the combined duration is the
	// slowest member's, not mergeLookup's sequential sum.
	lastInfo.Duration = maxDur
	return nil, lastInfo, firstErr
}
