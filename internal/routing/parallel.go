package routing

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ParallelRouter races its member routers and returns the first
// success, cancelling the losers — the paper's §6.2 "running DHT
// lookups in parallel to Bitswap could be superior" generalized to
// arbitrary discovery paths (walk vs one-hop snapshot vs indexer). It
// trades extra requests for latency, exactly the trade-off the paper
// frames.
type ParallelRouter struct {
	members []Router
	src     simtime.Source
}

// NewParallel builds a composite over the members; at least one is
// required.
func NewParallel(members ...Router) *ParallelRouter {
	return &ParallelRouter{members: members, src: simtime.NewBaseSource(simtime.Realtime, nil)}
}

// WithTime installs the composite's time source (the event scheduler in
// scenario runs) and returns the router for chaining. The member races
// spawn and join through it so virtual time cannot run ahead of a racer.
func (r *ParallelRouter) WithTime(src simtime.Source) *ParallelRouter {
	if src != nil {
		r.src = src
	}
	return r
}

// Name implements Router, naming the members raced.
func (r *ParallelRouter) Name() string {
	names := make([]string, len(r.members))
	for i, m := range r.members {
		names[i] = m.Name()
	}
	return string(KindParallel) + "(" + strings.Join(names, "+") + ")"
}

// Members exposes the raced routers.
func (r *ParallelRouter) Members() []Router { return r.members }

// Provide implements Router: every member publishes concurrently and
// the first success wins, with the losers cancelled. Because the
// members push records to disjoint places (DHT neighbourhood, snapshot
// neighbourhood, indexer store), the winner alone satisfies the §3.1
// contract; the extra replicas the losers managed before cancellation
// are a bonus, never a correctness requirement. Every member's RPCs —
// winners, cancelled losers, and outright failures — are charged onto
// the returned result so the race's extra-requests-for-latency
// trade-off shows up in the message accounting even when the whole
// race fails.
func (r *ParallelRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	if len(r.members) == 0 {
		return ProvideResult{}, fmt.Errorf("routing: parallel provide %s: no members", c)
	}
	type outcome struct {
		res ProvideResult
		err error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		// The race spans open serially here (deterministic IDs) and are
		// closed by the racers themselves — cancelled losers included.
		mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
		m := m
		r.src.Go(mctx, func(gctx context.Context) {
			defer sp.End()
			res, err := m.Provide(gctx, c)
			ch <- outcome{res: res, err: err}
		})
	}
	// Every racer deposits exactly once into the buffered channel, so
	// the collect loop drains detached from ctx — cancelled losers
	// unwind promptly and still get their RPCs charged.
	var firstErr error
	loserMsgs := 0
	for i := 0; i < len(r.members); i++ {
		o, ok := simtime.Recv(simtime.Detach(ctx), r.src, ch)
		if !ok {
			break
		}
		if o.err == nil {
			cancel()
			// Drain the cancelled losers (they return promptly once the
			// context falls) and charge the RPCs they managed to launch.
			for j := i + 1; j < len(r.members); j++ {
				lo, ok := simtime.Recv(simtime.Detach(ctx), r.src, ch)
				if !ok {
					break
				}
				loserMsgs += ProvideMessages(lo.res)
			}
			o.res.Walk.Launched = LookupMessages(o.res.Walk) + loserMsgs
			return o.res, nil
		}
		loserMsgs += ProvideMessages(o.res)
		if firstErr == nil {
			firstErr = o.err
		}
	}
	// Every member failed: the race's RPCs still went out, so they are
	// returned in the result rather than vanishing from the accounting.
	return ProvideResult{Walk: LookupInfo{Launched: loserMsgs}}, firstErr
}

// ProvideMany implements Router: the batch fans out to every member
// concurrently — records must be refreshed in each member's disjoint
// record store (DHT neighbourhood, snapshot neighbourhood, indexer),
// so a republish cannot race-and-cancel the way Provide does without
// letting the losers' replicas decay. The aggregated result sums every
// member's RPCs; Provided is the best member's count (a CID is
// reachable if any member landed it).
func (r *ParallelRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	if len(r.members) == 0 {
		return ProvideManyResult{}, fmt.Errorf("routing: parallel provide batch of %d: no members", len(cids))
	}
	type outcome struct {
		res ProvideManyResult
		err error
	}
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		mctx, sp := telemetry.StartSpan(ctx, "race:"+m.Name())
		m := m
		r.src.Go(mctx, func(gctx context.Context) {
			defer sp.End()
			res, err := m.ProvideMany(gctx, cids)
			ch <- outcome{res: res, err: err}
		})
	}
	res := ProvideManyResult{CIDs: len(cids)}
	var firstErr error
	ok := false
	for i := 0; i < len(r.members); i++ {
		o, got := simtime.Recv(simtime.Detach(ctx), r.src, ch)
		if !got {
			break
		}
		res = res.merge(o.res)
		if o.res.Provided > res.Provided {
			res.Provided = o.res.Provided
		}
		if o.err == nil {
			ok = true
		} else if firstErr == nil {
			firstErr = o.err
		}
	}
	if !ok {
		return res, firstErr
	}
	return res, nil
}

// SessionPeers implements Router: members race their cheap candidate
// lookups and the first non-empty answer wins, with losers cancelled
// and their RPCs charged onto the reported message count. Members with
// no session knowledge (the walk baseline) decline instantly, so the
// race degenerates to the one-hop members.
func (r *ParallelRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	if len(r.members) == 0 {
		return nil, 0, fmt.Errorf("routing: parallel session peers %s: no members", c)
	}
	type outcome struct {
		peers []wire.PeerInfo
		msgs  int
		err   error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
		m := m
		r.src.Go(mctx, func(gctx context.Context) {
			defer sp.End()
			peers, msgs, err := m.SessionPeers(gctx, c, n)
			ch <- outcome{peers: peers, msgs: msgs, err: err}
		})
	}
	msgs := 0
	for i := 0; i < len(r.members); i++ {
		o, ok := simtime.Recv(simtime.Detach(ctx), r.src, ch)
		if !ok {
			break
		}
		msgs += o.msgs
		if o.err == nil && len(o.peers) > 0 {
			cancel()
			// Drain the cancelled losers and charge their RPCs.
			for j := i + 1; j < len(r.members); j++ {
				lo, ok := simtime.Recv(simtime.Detach(ctx), r.src, ch)
				if !ok {
					break
				}
				msgs += lo.msgs
			}
			return o.peers, msgs, nil
		}
	}
	return nil, msgs, ErrNoSessionPeers
}

// WantBroadcast implements Router: the composite broadcasts when any
// member would — racing the broadcast against the routed candidates is
// exactly the extra-requests-for-latency trade the parallel router
// makes.
func (r *ParallelRouter) WantBroadcast() bool {
	for _, m := range r.members {
		if m.WantBroadcast() {
			return true
		}
	}
	return false
}

// FindProvidersStream implements Router by merging the member streams:
// every member's lookup runs concurrently and each provider batch is
// yielded (deduplicated) in arrival order — the first batch from any
// member is the race winner, and slower members' partial results
// become fail-over candidates instead of being discarded with the
// losers. The aggregated statistics charge every member's RPCs,
// cancelled losers included.
func (r *ParallelRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		if len(r.members) == 0 {
			st.set(LookupInfo{}, fmt.Errorf("routing: parallel find %s: no members", c))
			return
		}
		pctx, cancel := context.WithCancel(ctx)
		defer cancel()
		if s := simtime.SchedulerOf(r.src); s != nil {
			r.streamScheduled(pctx, cancel, s, c, yield, st)
			return
		}
		batches := make(chan []wire.PeerInfo)
		done := make(chan *StreamInfo, len(r.members))
		for _, m := range r.members {
			mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
			mseq, mst := m.FindProvidersStream(mctx, c)
			go func() {
				defer sp.End()
				mseq(func(batch []wire.PeerInfo) bool {
					select {
					case batches <- batch:
						return true
					case <-pctx.Done():
						return false
					}
				})
				done <- mst
			}()
		}
		seen := make(map[peer.ID]bool)
		emitted, stopped := false, false
		finished := 0
		var agg LookupInfo
		var maxDur time.Duration
		var firstErr error
		for finished < len(r.members) {
			select {
			case b := <-batches:
				b = dedupProviders(seen, b)
				if len(b) == 0 || stopped {
					continue
				}
				emitted = true
				if !yield(b) {
					stopped = true
					cancel()
				}
			case mst := <-done:
				finished++
				info := mst.Info()
				if info.Duration > maxDur {
					maxDur = info.Duration
				}
				agg = mergeLookup(agg, info)
				if err := mst.Err(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		// Members ran concurrently, so the combined duration is the
		// slowest member's, not mergeLookup's sequential sum; the race
		// costs messages, not time.
		agg.Duration = maxDur
		var err error
		if !emitted {
			if err = firstErr; err == nil {
				err = ErrNoProviders
			}
		}
		st.set(agg, err)
	}
	return seq, st
}

// streamScheduled is FindProvidersStream's event-driven merge: member
// streams deposit batches into a mutex-guarded queue — producers never
// block, which keeps the scheduler's quiescence detection sound — and
// the single consumer parks on the scheduler until a batch or a member
// completion is available. Arrival order is the event order, so seeded
// runs replay the same merge.
func (r *ParallelRouter) streamScheduled(pctx context.Context, cancel context.CancelFunc, s *simtime.Scheduler, c cid.Cid, yield func([]wire.PeerInfo) bool, st *StreamInfo) {
	var mu sync.Mutex
	var pending [][]wire.PeerInfo
	done := make(chan *StreamInfo, len(r.members))
	for _, m := range r.members {
		mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
		m := m
		r.src.Go(mctx, func(gctx context.Context) {
			defer sp.End()
			mseq, mst := m.FindProvidersStream(gctx, c)
			mseq(func(batch []wire.PeerInfo) bool {
				if gctx.Err() != nil {
					return false
				}
				mu.Lock()
				pending = append(pending, batch)
				mu.Unlock()
				return true
			})
			done <- mst
		})
	}
	queued := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(pending)
	}
	pop := func() ([]wire.PeerInfo, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(pending) == 0 {
			return nil, false
		}
		b := pending[0]
		pending = pending[1:]
		return b, true
	}
	seen := make(map[peer.ID]bool)
	emitted, stopped := false, false
	drain := func() {
		for {
			b, ok := pop()
			if !ok {
				return
			}
			b = dedupProviders(seen, b)
			if len(b) == 0 || stopped {
				continue
			}
			emitted = true
			if !yield(b) {
				stopped = true
				cancel()
			}
		}
	}
	finished := 0
	var agg LookupInfo
	var maxDur time.Duration
	var firstErr error
	// The consumer must join every member (their infos carry the RPC
	// accounting), so the wait runs detached from pctx: cancelled
	// members unwind promptly and deposit into the buffered done channel.
	dctx := simtime.Detach(pctx)
	for finished < len(r.members) {
		if err := s.Await(dctx, func() bool { return queued() > 0 || len(done) > 0 }); err != nil {
			break // scheduler shut down underneath us
		}
		drain()
		for len(done) > 0 {
			mst := <-done
			finished++
			info := mst.Info()
			if info.Duration > maxDur {
				maxDur = info.Duration
			}
			agg = mergeLookup(agg, info)
			if err := mst.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	drain() // batches deposited between the last wake and the last join
	// Members ran concurrently, so the combined duration is the slowest
	// member's, not mergeLookup's sequential sum.
	agg.Duration = maxDur
	var err error
	if !emitted {
		if err = firstErr; err == nil {
			err = ErrNoProviders
		}
	}
	st.set(agg, err)
}
