package routing

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ParallelRouter races its member routers and returns the first
// success, cancelling the losers — the paper's §6.2 "running DHT
// lookups in parallel to Bitswap could be superior" generalized to
// arbitrary discovery paths (walk vs one-hop snapshot vs indexer). It
// trades extra requests for latency, exactly the trade-off the paper
// frames.
type ParallelRouter struct {
	members []Router
}

// NewParallel builds a composite over the members; at least one is
// required.
func NewParallel(members ...Router) *ParallelRouter {
	return &ParallelRouter{members: members}
}

// Name implements Router, naming the members raced.
func (r *ParallelRouter) Name() string {
	names := make([]string, len(r.members))
	for i, m := range r.members {
		names[i] = m.Name()
	}
	return string(KindParallel) + "(" + strings.Join(names, "+") + ")"
}

// Members exposes the raced routers.
func (r *ParallelRouter) Members() []Router { return r.members }

// Provide implements Router: every member publishes concurrently and
// the first success wins, with the losers cancelled. Because the
// members push records to disjoint places (DHT neighbourhood, snapshot
// neighbourhood, indexer store), the winner alone satisfies the §3.1
// contract; the extra replicas the losers managed before cancellation
// are a bonus, never a correctness requirement. Every member's RPCs —
// winners, cancelled losers, and outright failures — are charged onto
// the returned result so the race's extra-requests-for-latency
// trade-off shows up in the message accounting even when the whole
// race fails.
func (r *ParallelRouter) Provide(ctx context.Context, c cid.Cid) (ProvideResult, error) {
	if len(r.members) == 0 {
		return ProvideResult{}, fmt.Errorf("routing: parallel provide %s: no members", c)
	}
	type outcome struct {
		res ProvideResult
		err error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		// The race spans open serially here (deterministic IDs) and are
		// closed by the racers themselves — cancelled losers included.
		mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
		m := m
		go func() {
			defer sp.End()
			res, err := m.Provide(mctx, c)
			ch <- outcome{res: res, err: err}
		}()
	}
	var firstErr error
	loserMsgs := 0
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		if o.err == nil {
			cancel()
			// Drain the cancelled losers (they return promptly once the
			// context falls) and charge the RPCs they managed to launch.
			for j := i + 1; j < len(r.members); j++ {
				lo := <-ch
				loserMsgs += ProvideMessages(lo.res)
			}
			o.res.Walk.Launched = LookupMessages(o.res.Walk) + loserMsgs
			return o.res, nil
		}
		loserMsgs += ProvideMessages(o.res)
		if firstErr == nil {
			firstErr = o.err
		}
	}
	// Every member failed: the race's RPCs still went out, so they are
	// returned in the result rather than vanishing from the accounting.
	return ProvideResult{Walk: LookupInfo{Launched: loserMsgs}}, firstErr
}

// ProvideMany implements Router: the batch fans out to every member
// concurrently — records must be refreshed in each member's disjoint
// record store (DHT neighbourhood, snapshot neighbourhood, indexer),
// so a republish cannot race-and-cancel the way Provide does without
// letting the losers' replicas decay. The aggregated result sums every
// member's RPCs; Provided is the best member's count (a CID is
// reachable if any member landed it).
func (r *ParallelRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (ProvideManyResult, error) {
	if len(r.members) == 0 {
		return ProvideManyResult{}, fmt.Errorf("routing: parallel provide batch of %d: no members", len(cids))
	}
	type outcome struct {
		res ProvideManyResult
		err error
	}
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		mctx, sp := telemetry.StartSpan(ctx, "race:"+m.Name())
		m := m
		go func() {
			defer sp.End()
			res, err := m.ProvideMany(mctx, cids)
			ch <- outcome{res: res, err: err}
		}()
	}
	res := ProvideManyResult{CIDs: len(cids)}
	var firstErr error
	ok := false
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		res = res.merge(o.res)
		if o.res.Provided > res.Provided {
			res.Provided = o.res.Provided
		}
		if o.err == nil {
			ok = true
		} else if firstErr == nil {
			firstErr = o.err
		}
	}
	if !ok {
		return res, firstErr
	}
	return res, nil
}

// SessionPeers implements Router: members race their cheap candidate
// lookups and the first non-empty answer wins, with losers cancelled
// and their RPCs charged onto the reported message count. Members with
// no session knowledge (the walk baseline) decline instantly, so the
// race degenerates to the one-hop members.
func (r *ParallelRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	if len(r.members) == 0 {
		return nil, 0, fmt.Errorf("routing: parallel session peers %s: no members", c)
	}
	type outcome struct {
		peers []wire.PeerInfo
		msgs  int
		err   error
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(r.members))
	for _, m := range r.members {
		mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
		m := m
		go func() {
			defer sp.End()
			peers, msgs, err := m.SessionPeers(mctx, c, n)
			ch <- outcome{peers: peers, msgs: msgs, err: err}
		}()
	}
	msgs := 0
	for i := 0; i < len(r.members); i++ {
		o := <-ch
		msgs += o.msgs
		if o.err == nil && len(o.peers) > 0 {
			cancel()
			// Drain the cancelled losers and charge their RPCs.
			for j := i + 1; j < len(r.members); j++ {
				msgs += (<-ch).msgs
			}
			return o.peers, msgs, nil
		}
	}
	return nil, msgs, ErrNoSessionPeers
}

// WantBroadcast implements Router: the composite broadcasts when any
// member would — racing the broadcast against the routed candidates is
// exactly the extra-requests-for-latency trade the parallel router
// makes.
func (r *ParallelRouter) WantBroadcast() bool {
	for _, m := range r.members {
		if m.WantBroadcast() {
			return true
		}
	}
	return false
}

// FindProvidersStream implements Router by merging the member streams:
// every member's lookup runs concurrently and each provider batch is
// yielded (deduplicated) in arrival order — the first batch from any
// member is the race winner, and slower members' partial results
// become fail-over candidates instead of being discarded with the
// losers. The aggregated statistics charge every member's RPCs,
// cancelled losers included.
func (r *ParallelRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (ProviderSeq, *StreamInfo) {
	st := &StreamInfo{}
	seq := func(yield func([]wire.PeerInfo) bool) {
		if len(r.members) == 0 {
			st.set(LookupInfo{}, fmt.Errorf("routing: parallel find %s: no members", c))
			return
		}
		pctx, cancel := context.WithCancel(ctx)
		defer cancel()
		batches := make(chan []wire.PeerInfo)
		done := make(chan *StreamInfo, len(r.members))
		for _, m := range r.members {
			mctx, sp := telemetry.StartSpan(pctx, "race:"+m.Name())
			mseq, mst := m.FindProvidersStream(mctx, c)
			go func() {
				defer sp.End()
				mseq(func(batch []wire.PeerInfo) bool {
					select {
					case batches <- batch:
						return true
					case <-pctx.Done():
						return false
					}
				})
				done <- mst
			}()
		}
		seen := make(map[peer.ID]bool)
		emitted, stopped := false, false
		finished := 0
		var agg LookupInfo
		var maxDur time.Duration
		var firstErr error
		for finished < len(r.members) {
			select {
			case b := <-batches:
				b = dedupProviders(seen, b)
				if len(b) == 0 || stopped {
					continue
				}
				emitted = true
				if !yield(b) {
					stopped = true
					cancel()
				}
			case mst := <-done:
				finished++
				info := mst.Info()
				if info.Duration > maxDur {
					maxDur = info.Duration
				}
				agg = mergeLookup(agg, info)
				if err := mst.Err(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		// Members ran concurrently, so the combined duration is the
		// slowest member's, not mergeLookup's sequential sum; the race
		// costs messages, not time.
		agg.Duration = maxDur
		var err error
		if !emitted {
			if err = firstErr; err == nil {
				err = ErrNoProviders
			}
		}
		st.set(agg, err)
	}
	return seq, st
}
