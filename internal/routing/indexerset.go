package routing

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/cid"
	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/wire"
)

// IndexerSet is the shard topology of a delegated-routing indexer
// deployment: the CID keyspace is partitioned by XOR distance over R
// shards — a CID belongs to the shard whose anchor key is closest —
// and each shard is served by a replica group of indexer nodes. The
// IndexerRouter routes publications and lookups to a CID's shard
// owners (fail-over runs down the replica list), and the shard's
// replicas gossip provider records among themselves so a replica that
// missed a publish window converges back to its group.
type IndexerSet struct {
	anchors []kbucket.Key
	groups  [][]wire.PeerInfo
	all     []wire.PeerInfo
}

// ShardAnchor derives shard i's keyspace anchor. Anchors are plain
// SHA256 of a shard label, so every participant — publishers, getters
// and the indexers themselves — computes the identical partition with
// no coordination.
func ShardAnchor(i int) kbucket.Key {
	return sha256.Sum256([]byte(fmt.Sprintf("indexer-shard-%d", i)))
}

// NewIndexerSet builds the topology from one replica group per shard
// (R = len(groups)). Empty groups are allowed — the shard simply has
// no owners and routes fall through to the DHT fallback.
func NewIndexerSet(groups [][]wire.PeerInfo) *IndexerSet {
	s := &IndexerSet{}
	for i, g := range groups {
		s.anchors = append(s.anchors, ShardAnchor(i))
		s.groups = append(s.groups, append([]wire.PeerInfo(nil), g...))
		s.all = append(s.all, g...)
	}
	return s
}

// Shards returns the shard count R.
func (s *IndexerSet) Shards() int { return len(s.groups) }

// ShardOfKey maps a DHT key to its owning shard: the anchor at minimal
// XOR distance. A set with no shards returns -1 (no owner).
func (s *IndexerSet) ShardOfKey(k kbucket.Key) int {
	if len(s.anchors) == 0 {
		return -1
	}
	best := 0
	bestDist := kbucket.XOR(k, s.anchors[0])
	for i := 1; i < len(s.anchors); i++ {
		if d := kbucket.XOR(k, s.anchors[i]); kbucket.Less(d, bestDist) {
			best, bestDist = i, d
		}
	}
	return best
}

// ShardOf maps a CID to its owning shard.
func (s *IndexerSet) ShardOf(c cid.Cid) int {
	return s.ShardOfKey(kbucket.KeyForBytes(c.Bytes()))
}

// Replicas returns shard i's replica group, primary first.
func (s *IndexerSet) Replicas(i int) []wire.PeerInfo {
	return append([]wire.PeerInfo(nil), s.groups[i]...)
}

// All returns every indexer in the set, shard-major.
func (s *IndexerSet) All() []wire.PeerInfo {
	return append([]wire.PeerInfo(nil), s.all...)
}

// Group returns the replica group serving peer id's shard minus id
// itself — the gossip neighbours of one indexer — or nil when id is
// not in the set.
func (s *IndexerSet) Group(id peer.ID) []wire.PeerInfo {
	for _, g := range s.groups {
		for _, pi := range g {
			if pi.ID == id {
				var out []wire.PeerInfo
				for _, other := range g {
					if other.ID != id {
						out = append(out, other)
					}
				}
				return out
			}
		}
	}
	return nil
}
