package routing_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/testnet"
	"repro/internal/wire"
)

// fakeRouter scripts a Router for composite tests: it waits delay (or a
// cancelled context), then returns its canned outcome.
type fakeRouter struct {
	name      string
	delay     time.Duration
	err       error
	provider  peer.ID
	broadcast bool
	// provideRes is what a failing Provide still spent — the accounting
	// tests assert it survives an all-fail race.
	provideRes routing.ProvideResult
	cancelled  atomic.Bool
	calls      atomic.Int32
	sessions   atomic.Int32
}

func (f *fakeRouter) Name() string { return f.name }

func (f *fakeRouter) wait(ctx context.Context) error {
	f.calls.Add(1)
	select {
	case <-time.After(f.delay):
		return f.err
	case <-ctx.Done():
		f.cancelled.Store(true)
		return ctx.Err()
	}
}

func (f *fakeRouter) Provide(ctx context.Context, c cid.Cid) (routing.ProvideResult, error) {
	if err := f.wait(ctx); err != nil {
		return f.provideRes, err
	}
	return routing.ProvideResult{StoreAttempts: 1, StoreOK: 1}, nil
}

func (f *fakeRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (routing.ProvideManyResult, error) {
	if err := f.wait(ctx); err != nil {
		return routing.ProvideManyResult{CIDs: len(cids)}, err
	}
	return routing.ProvideManyResult{
		CIDs: len(cids), Provided: len(cids), Targets: 1, StoreRPCs: 1, Acked: 1,
	}, nil
}

func (f *fakeRouter) findProviders(ctx context.Context, c cid.Cid) ([]wire.PeerInfo, routing.LookupInfo, error) {
	if err := f.wait(ctx); err != nil {
		return nil, routing.LookupInfo{}, err
	}
	return []wire.PeerInfo{{ID: f.provider}}, routing.LookupInfo{Queried: 1}, nil
}

func (f *fakeRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	return routing.LazyStream(func() ([]wire.PeerInfo, routing.LookupInfo, error) {
		return f.findProviders(ctx, c)
	})
}

func (f *fakeRouter) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	f.sessions.Add(1)
	if err := f.wait(ctx); err != nil {
		return nil, 0, err
	}
	if f.provider == "" {
		return nil, 0, routing.ErrNoSessionPeers
	}
	return []wire.PeerInfo{{ID: f.provider}}, 1, nil
}

func (f *fakeRouter) WantBroadcast() bool { return f.broadcast }

func testCid(s string) cid.Cid { return cid.Sum(multicodec.Raw, []byte(s)) }

func TestParallelFirstWinnerCancelsLosers(t *testing.T) {
	fast := &fakeRouter{name: "fast", delay: time.Millisecond, provider: peer.ID("winner")}
	slow := &fakeRouter{name: "slow", delay: time.Minute, provider: peer.ID("loser")}
	r := routing.NewParallel(fast, slow)

	providers, info, err := routing.FindProviders(context.Background(), r, testCid("race"))
	if err != nil {
		t.Fatalf("FindProviders: %v", err)
	}
	if len(providers) != 1 || providers[0].ID != peer.ID("winner") {
		t.Fatalf("providers = %v, want the fast member's", providers)
	}
	if info.Queried != 1 {
		t.Errorf("winner lookup info not propagated: %+v", info)
	}
	// The slow member must observe cancellation rather than run out its
	// full delay.
	deadline := time.After(2 * time.Second)
	for !slow.cancelled.Load() {
		select {
		case <-deadline:
			t.Fatal("slow member was not cancelled after the fast one won")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestParallelProvideFirstSuccessWins(t *testing.T) {
	failing := &fakeRouter{name: "failing", delay: time.Millisecond, err: errors.New("boom")}
	ok := &fakeRouter{name: "ok", delay: 5 * time.Millisecond}
	res, err := routing.NewParallel(failing, ok).Provide(context.Background(), testCid("pub"))
	if err != nil {
		t.Fatalf("Provide: %v", err)
	}
	if res.StoreOK != 1 {
		t.Errorf("StoreOK = %d, want the succeeding member's result", res.StoreOK)
	}
}

func TestParallelAllFailReturnsFirstError(t *testing.T) {
	e1 := errors.New("first")
	a := &fakeRouter{name: "a", delay: time.Millisecond, err: e1}
	b := &fakeRouter{name: "b", delay: 2 * time.Millisecond, err: errors.New("second")}
	if _, err := routing.NewParallel(a, b).Provide(context.Background(), testCid("x")); !errors.Is(err, e1) {
		t.Errorf("err = %v, want first member's error", err)
	}
	if _, _, err := routing.FindProviders(context.Background(), routing.NewParallel(a, b), testCid("x")); err == nil {
		t.Error("FindProviders should fail when every member fails")
	}
}

// countingRouter wraps a Router and counts calls, so fallback use is
// observable.
type countingRouter struct {
	inner    routing.Router
	provides atomic.Int32
	finds    atomic.Int32
	sessions atomic.Int32
}

func (c *countingRouter) Name() string { return c.inner.Name() }

func (c *countingRouter) Provide(ctx context.Context, id cid.Cid) (routing.ProvideResult, error) {
	c.provides.Add(1)
	return c.inner.Provide(ctx, id)
}

func (c *countingRouter) ProvideMany(ctx context.Context, cids []cid.Cid) (routing.ProvideManyResult, error) {
	c.provides.Add(1)
	return c.inner.ProvideMany(ctx, cids)
}

func (c *countingRouter) FindProvidersStream(ctx context.Context, id cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	c.finds.Add(1)
	return c.inner.FindProvidersStream(ctx, id)
}

func (c *countingRouter) SessionPeers(ctx context.Context, id cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	c.sessions.Add(1)
	return c.inner.SessionPeers(ctx, id, n)
}

func (c *countingRouter) WantBroadcast() bool { return c.inner.WantBroadcast() }

func TestIndexerRoundTrip(t *testing.T) {
	base := simtime.New(0.0005)
	net := simnet.New(simnet.Config{Base: base, Seed: 3})
	rng := rand.New(rand.NewSource(9))

	newSwarm := func() *swarm.Swarm {
		ident := peer.MustNewIdentity(rng)
		ep := net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
		return swarm.New(ident, ep, simtime.NewBaseSource(base, nil))
	}
	ixIdent := peer.MustNewIdentity(rng)
	ixEp := net.AddNode(ixIdent.ID, simnet.NodeOpts{Region: "US", Dialable: true})
	ix := routing.NewIndexer(ixIdent, ixEp, routing.IndexerConfig{Base: base})

	pubSw, getSw := newSwarm(), newSwarm()
	cfg := routing.IndexerRouterConfig{Base: base}
	pub := routing.NewIndexerRouter(pubSw, []wire.PeerInfo{ix.Info()}, nil, cfg)
	// The getter's fallback must never fire on a hit.
	fb := &countingRouter{inner: &fakeRouter{name: "fb", err: errors.New("unused")}}
	get := routing.NewIndexerRouter(getSw, []wire.PeerInfo{ix.Info()}, fb, cfg)

	c := testCid("indexed content")
	ctx := context.Background()
	res, err := pub.Provide(ctx, c)
	if err != nil {
		t.Fatalf("Provide: %v", err)
	}
	if res.StoreOK != 1 || res.Walk.Queried != 0 {
		t.Errorf("provide result = %+v, want one direct store and no walk", res)
	}
	if ix.Len() != 1 {
		t.Fatalf("indexer holds %d records, want 1", ix.Len())
	}

	providers, info, err := routing.FindProviders(ctx, get, c)
	if err != nil {
		t.Fatalf("FindProviders: %v", err)
	}
	if len(providers) == 0 || providers[0].ID != pubSw.Local() {
		t.Fatalf("providers = %v, want the publisher", providers)
	}
	if len(providers[0].Addrs) == 0 {
		t.Error("provider addrs missing: the indexer should return its address book entry")
	}
	if got := routing.LookupMessages(info); got != 1 {
		t.Errorf("lookup used %d messages, want exactly 1 (one-hop)", got)
	}
	if fb.finds.Load() != 0 {
		t.Error("fallback consulted despite an indexer hit")
	}
}

func buildCleanNet(t *testing.T, n int, seed int64) *testnet.Testnet {
	t.Helper()
	return testnet.Build(testnet.Config{
		N: n, Seed: seed, Scale: 0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
}

func TestIndexerMissFallsBackToDHT(t *testing.T) {
	tn := buildCleanNet(t, 120, 31)
	ctx := context.Background()

	// Publish through the plain DHT so the indexer never hears of it.
	publisher := tn.AddVantage("DE", 900)
	data := []byte("only on the dht")
	pub, err := publisher.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}

	ix := tn.AddIndexer("US", 901)
	getter := tn.AddVantage("US", 902)
	fb := &countingRouter{inner: routing.NewDHT(getter.DHT())}
	r := routing.NewIndexerRouter(getter.Swarm(), []wire.PeerInfo{ix.Info()}, fb,
		routing.IndexerRouterConfig{Base: tn.Base})

	providers, info, err := routing.FindProviders(ctx, r, pub.Cid)
	if err != nil {
		t.Fatalf("FindProviders after indexer miss: %v", err)
	}
	if len(providers) == 0 || providers[0].ID != publisher.ID() {
		t.Fatalf("providers = %v, want the DHT publisher", providers)
	}
	if fb.finds.Load() != 1 {
		t.Errorf("fallback consulted %d times, want exactly 1", fb.finds.Load())
	}
	// The reported message count must include both the wasted indexer
	// RPC and the fallback walk.
	if got := routing.LookupMessages(info); got < 2 {
		t.Errorf("lookup reports %d messages, want the indexer miss plus the walk", got)
	}
}

func TestAcceleratedOneHopLookup(t *testing.T) {
	tn := buildCleanNet(t, 120, 33)
	ctx := context.Background()

	publisher := tn.AddVantageRouting("DE", 910, routing.KindAccelerated, nil)
	getter := tn.AddVantageRouting("US", 911, routing.KindAccelerated, nil)
	if _, err := publisher.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("publisher refresh: %v", err)
	}
	if n, err := getter.RefreshRoutingSnapshot(ctx); err != nil || n < 100 {
		t.Fatalf("getter refresh: snapshot %d peers, err %v", n, err)
	}

	data := []byte("one hop away")
	pub, err := publisher.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	// One-hop publication: no walk phase at all.
	if pub.Walk.Queried != 0 || pub.WalkDuration != 0 {
		t.Errorf("accelerated publish ran a walk: %+v", pub.ProvideResult)
	}
	if pub.StoreOK == 0 {
		t.Fatal("no records stored")
	}

	providers, info, err := routing.FindProviders(ctx, getter.Router(), pub.Cid)
	if err != nil {
		t.Fatalf("FindProviders: %v", err)
	}
	if len(providers) == 0 || providers[0].ID != publisher.ID() {
		t.Fatalf("providers = %v, want publisher", providers)
	}
	if got := routing.LookupMessages(info); got > 6 {
		t.Errorf("accelerated lookup used %d messages, want a single small wave", got)
	}

	// End-to-end retrieval through the node API.
	got, rres, err := getter.Retrieve(ctx, pub.Cid)
	if err != nil || string(got) != string(data) {
		t.Fatalf("retrieve: %v", err)
	}
	if rres.LookupMsgs > 6 {
		t.Errorf("retrieval lookup used %d messages, want one-hop", rres.LookupMsgs)
	}
}

func TestAcceleratedSurvivesStaleSnapshotUnderChurn(t *testing.T) {
	tn := buildCleanNet(t, 150, 35)
	ctx := context.Background()

	publisher := tn.AddVantageRouting("DE", 920, routing.KindAccelerated, nil)
	getter := tn.AddVantageRouting("US", 921, routing.KindAccelerated, nil)
	if _, err := publisher.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if _, err := getter.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	// A third of the network departs after the snapshot was taken: both
	// clients now operate on a stale view.
	for i := 0; i < 50; i++ {
		tn.SetOnline(tn.Nodes[i].ID(), false)
	}

	data := []byte("published against a stale snapshot")
	pub, err := publisher.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatalf("publish with stale snapshot: %v", err)
	}
	if pub.StoreOK == 0 {
		t.Fatal("no records stored despite live majority")
	}

	got, rres, err := getter.Retrieve(ctx, pub.Cid)
	if err != nil || string(got) != string(data) {
		t.Fatalf("retrieve with stale snapshot: %v", err)
	}
	if rres.Provider != publisher.ID() {
		t.Errorf("provider = %s, want publisher", rres.Provider.Short())
	}
}

func TestConfigRoutingSelector(t *testing.T) {
	tn := buildCleanNet(t, 60, 37)
	ix := tn.AddIndexer("US", 930)
	cases := []struct {
		kind routing.Kind
		want string
	}{
		{routing.KindDHT, "dht"},
		{routing.KindAccelerated, "accelerated"},
		{routing.KindIndexer, "indexer"},
		{routing.KindParallel, "parallel(dht+accelerated+indexer)"},
	}
	for i, tc := range cases {
		node := tn.AddVantageRouting("DE", int64(940+i), tc.kind, []wire.PeerInfo{ix.Info()})
		if got := node.Router().Name(); got != tc.want {
			t.Errorf("kind %q built router %q, want %q", tc.kind, got, tc.want)
		}
		if tc.kind == routing.KindAccelerated && node.Accelerated() == nil {
			t.Error("accelerated node lost its Accelerated() accessor")
		}
	}
	// The default is the DHT baseline.
	node := tn.AddVantage("DE", 950)
	if got := node.Router().Name(); got != "dht" {
		t.Errorf("default router = %q, want dht", got)
	}
	if !strings.HasPrefix(routing.NewParallel(routing.NewDHT(node.DHT())).Name(), "parallel(") {
		t.Error("parallel name should list members")
	}
}

func TestDHTRouterDeclinesSessionPeers(t *testing.T) {
	tn := buildCleanNet(t, 30, 41)
	r := routing.NewDHT(tn.AddVantage("DE", 960).DHT())
	peers, msgs, err := r.SessionPeers(context.Background(), testCid("x"), 3)
	if !errors.Is(err, routing.ErrNoSessionPeers) || len(peers) != 0 || msgs != 0 {
		t.Errorf("dht session peers = (%v, %d, %v), want a free decline", peers, msgs, err)
	}
	if !r.WantBroadcast() {
		t.Error("dht router must keep the opportunistic broadcast")
	}
}

func TestAcceleratedSessionPeersOneHop(t *testing.T) {
	tn := buildCleanNet(t, 120, 43)
	ctx := context.Background()

	publisher := tn.AddVantageRouting("DE", 970, routing.KindAccelerated, nil)
	getter := tn.AddVantageRouting("US", 971, routing.KindAccelerated, nil)
	for _, n := range []interface {
		RefreshRoutingSnapshot(context.Context) (int, error)
	}{publisher, getter} {
		if _, err := n.RefreshRoutingSnapshot(ctx); err != nil {
			t.Fatalf("refresh: %v", err)
		}
	}
	pub, err := publisher.AddAndPublish(ctx, []byte("session candidate content"))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}

	r := getter.Router()
	if r.WantBroadcast() {
		t.Error("accelerated router should skip the broadcast")
	}
	peers, msgs, err := r.SessionPeers(ctx, pub.Cid, 3)
	if err != nil {
		t.Fatalf("SessionPeers: %v", err)
	}
	if len(peers) == 0 || peers[0].ID != publisher.ID() {
		t.Fatalf("session peers = %v, want the publisher", peers)
	}
	if len(peers) > 3 {
		t.Errorf("session peers not capped: %d", len(peers))
	}
	if msgs == 0 || msgs > 6 {
		t.Errorf("session lookup spent %d RPCs, want a single small wave", msgs)
	}

	// An unpublished key must decline without walking.
	if _, _, err := r.SessionPeers(ctx, testCid("never published"), 3); !errors.Is(err, routing.ErrNoSessionPeers) {
		t.Errorf("miss err = %v, want ErrNoSessionPeers", err)
	}
}

func TestIndexerSessionPeersNoDHTFallback(t *testing.T) {
	tn := buildCleanNet(t, 60, 45)
	ctx := context.Background()
	ix := tn.AddIndexer("US", 980)

	publisher := tn.AddVantage("DE", 981)
	pubR := routing.NewIndexerRouter(publisher.Swarm(), []wire.PeerInfo{ix.Info()}, nil,
		routing.IndexerRouterConfig{Base: tn.Base})
	pub, err := publisher.AddAndPublish(ctx, []byte("indexed session content"))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := pubR.Provide(ctx, pub.Cid); err != nil {
		t.Fatalf("indexer provide: %v", err)
	}

	getter := tn.AddVantage("US", 982)
	fb := &countingRouter{inner: routing.NewDHT(getter.DHT())}
	r := routing.NewIndexerRouter(getter.Swarm(), []wire.PeerInfo{ix.Info()}, fb,
		routing.IndexerRouterConfig{Base: tn.Base})

	peers, msgs, err := r.SessionPeers(ctx, pub.Cid, 2)
	if err != nil || len(peers) == 0 || peers[0].ID != publisher.ID() {
		t.Fatalf("session peers = (%v, %v), want the publisher", peers, err)
	}
	if msgs != 1 {
		t.Errorf("session lookup spent %d RPCs, want exactly 1", msgs)
	}
	// A miss must decline instead of walking the DHT: session candidates
	// are advisory, the broadcast/walk fallback belongs to the caller.
	if _, _, err := r.SessionPeers(ctx, testCid("not indexed"), 2); !errors.Is(err, routing.ErrNoSessionPeers) {
		t.Errorf("miss err = %v, want ErrNoSessionPeers", err)
	}
	if fb.finds.Load() != 0 || fb.sessions.Load() != 0 {
		t.Error("session peer miss must not consult the DHT fallback")
	}
}

func TestParallelSessionPeersRaceAndPolicy(t *testing.T) {
	fast := &fakeRouter{name: "fast", delay: time.Millisecond, provider: peer.ID("winner")}
	slow := &fakeRouter{name: "slow", delay: time.Minute, provider: peer.ID("loser")}
	decline := &fakeRouter{name: "decline", delay: time.Millisecond, broadcast: true}
	r := routing.NewParallel(decline, fast, slow)

	peers, msgs, err := r.SessionPeers(context.Background(), testCid("race"), 3)
	if err != nil {
		t.Fatalf("SessionPeers: %v", err)
	}
	if len(peers) != 1 || peers[0].ID != peer.ID("winner") {
		t.Fatalf("peers = %v, want the fast member's", peers)
	}
	if msgs < 1 {
		t.Errorf("msgs = %d, want the winner's RPC charged", msgs)
	}
	deadline := time.After(2 * time.Second)
	for !slow.cancelled.Load() {
		select {
		case <-deadline:
			t.Fatal("slow member was not cancelled after the fast one won")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Broadcast policy: any member wanting the broadcast keeps it.
	if !r.WantBroadcast() {
		t.Error("composite with a broadcasting member must broadcast")
	}
	if routing.NewParallel(fast, slow).WantBroadcast() {
		t.Error("composite of one-hop members must skip the broadcast")
	}

	// All members declining yields ErrNoSessionPeers.
	d2 := &fakeRouter{name: "d2", delay: time.Millisecond}
	if _, _, err := routing.NewParallel(d2).SessionPeers(context.Background(), testCid("none"), 3); !errors.Is(err, routing.ErrNoSessionPeers) {
		t.Errorf("all-decline err = %v, want ErrNoSessionPeers", err)
	}
}

// TestSessionMissHandoffSkipsDirectProbe is the regression test for the
// consult-result handoff: a FindProviders carrying a session-consult
// miss for the same CID must not re-probe the one-hop neighbourhood —
// the whole direct RPC wave is saved and only the fallback runs.
func TestSessionMissHandoffSkipsDirectProbe(t *testing.T) {
	tn := buildCleanNet(t, 60, 51)
	ctx := context.Background()
	node := tn.AddVantage("US", 990)
	fb := &countingRouter{inner: &fakeRouter{name: "stub", delay: time.Millisecond, err: routing.ErrNoProviders}}
	accel := routing.NewAccelerated(node.Swarm(), fb, routing.AcceleratedConfig{Base: tn.Base})
	var infos []wire.PeerInfo
	for _, n := range tn.Nodes {
		infos = append(infos, n.Info())
	}
	accel.SetSnapshot(infos)

	c := testCid("unpublished content")
	// Plain miss: the direct one-hop wave probes the K closest snapshot
	// peers before the fallback runs.
	before, _, _ := tn.Net.Stats()
	if _, _, err := routing.FindProviders(ctx, accel, c); !errors.Is(err, routing.ErrNoProviders) {
		t.Fatalf("plain miss err = %v, want ErrNoProviders", err)
	}
	mid, _, _ := tn.Net.Stats()
	probed := mid - before
	if probed == 0 {
		t.Fatal("direct path issued no RPCs; test setup broken")
	}
	if fb.finds.Load() != 1 {
		t.Fatalf("fallback consulted %d times, want 1", fb.finds.Load())
	}

	// The same lookup under WithSessionMiss goes straight to the
	// fallback: zero duplicate direct RPCs — the saved wave.
	if _, _, err := routing.FindProviders(routing.WithSessionMiss(ctx, c), accel, c); !errors.Is(err, routing.ErrNoProviders) {
		t.Fatalf("handoff miss err = %v, want ErrNoProviders", err)
	}
	after, _, _ := tn.Net.Stats()
	if d := after - mid; d != 0 {
		t.Errorf("handoff lookup issued %d RPCs, want 0 (the consult already probed the neighbourhood; plain miss cost %d)", d, probed)
	}
	if fb.finds.Load() != 2 {
		t.Fatalf("fallback consulted %d times, want 2", fb.finds.Load())
	}

	// The hint is keyed to the CID: lookups for other keys still probe
	// the snapshot directly.
	b3, _, _ := tn.Net.Stats()
	routing.FindProviders(routing.WithSessionMiss(ctx, c), accel, testCid("different key"))
	a3, _, _ := tn.Net.Stats()
	if a3 == b3 {
		t.Error("a hint for one CID suppressed the direct probe of another")
	}

	// Without a fallback, a hinted one-hop router declines instantly
	// instead of re-probing.
	bare := routing.NewAccelerated(node.Swarm(), nil, routing.AcceleratedConfig{Base: tn.Base})
	bare.SetSnapshot(infos)
	b4, _, _ := tn.Net.Stats()
	if _, _, err := routing.FindProviders(routing.WithSessionMiss(ctx, c), bare, c); !errors.Is(err, routing.ErrNoProviders) {
		t.Fatalf("bare handoff err = %v, want ErrNoProviders", err)
	}
	a4, _, _ := tn.Net.Stats()
	if a4 != b4 {
		t.Errorf("fallback-less handoff lookup issued %d RPCs, want 0", a4-b4)
	}
}
