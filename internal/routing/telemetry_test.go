package routing_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// rpcRouter wraps a fakeRouter so its provider stream reports one
// in-flight lookup RPC through the context as it winds down — the
// transport-level RPC a cancelled racer still charges must attribute
// to the parent trace via the race span it ran under.
type rpcRouter struct{ *fakeRouter }

func (r *rpcRouter) FindProvidersStream(ctx context.Context, c cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	seq, st := r.fakeRouter.FindProvidersStream(ctx, c)
	wrapped := func(yield func([]wire.PeerInfo) bool) {
		seq(yield)
		telemetry.RPC(ctx, "GET_PROVIDERS", "lookup", string(r.provider), time.Millisecond, "cancelled")
	}
	return wrapped, st
}

// TestParallelStreamClosesCancelledRacerSpans races a fast and a slow
// member under a trace, stops the stream after the first batch, and
// asserts the cancelled loser's race span still closed (no leaked open
// spans) with its in-flight RPC attributed to the parent trace.
func TestParallelStreamClosesCancelledRacerSpans(t *testing.T) {
	rec := telemetry.NewRecorder(simtime.NewBaseSource(simtime.Realtime, nil))
	ctx, root := rec.StartTrace(context.Background(), "retrieve")
	tr := telemetry.TraceFrom(ctx)
	if tr == nil {
		t.Fatal("StartTrace did not put the trace on the context")
	}

	fast := &fakeRouter{name: "fast", delay: time.Millisecond, provider: peer.ID("winner")}
	slow := &rpcRouter{&fakeRouter{name: "slow", delay: time.Minute, provider: peer.ID("loser")}}
	r := routing.NewParallel(fast, slow)

	seq, st := r.FindProvidersStream(ctx, testCid("race"))
	var got []wire.PeerInfo
	seq(func(batch []wire.PeerInfo) bool {
		got = append(got, batch...)
		return false // stop after the winner's batch — cancels the loser
	})
	if err := st.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(got) != 1 || got[0].ID != peer.ID("winner") {
		t.Fatalf("providers = %v, want the fast member's", got)
	}
	if !slow.cancelled.Load() {
		t.Error("slow member did not observe cancellation")
	}

	// Both racers got a span; the cancelled loser's must be closed once
	// the stream returns — only the root may remain open.
	for _, name := range []string{"race:fast", "race:slow"} {
		sp := tr.FindSpan(name)
		if sp == nil {
			t.Fatalf("span %q missing from trace", name)
		}
		if sp.Stop.IsZero() {
			t.Errorf("span %q leaked open after the stream returned", name)
		}
	}
	if open := tr.OpenSpans(); open != 1 {
		t.Errorf("OpenSpans = %d after stream, want 1 (just the root)", open)
	}
	root.End()
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans = %d after root.End, want 0", open)
	}

	// The loser's wind-down RPC must have attached to its race span —
	// i.e. to the parent trace, not been dropped with the cancellation.
	sp := tr.FindSpan("race:slow")
	found := false
	for _, ev := range sp.Events {
		if ev.Name != "rpc" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "cat" && a.Value == "lookup" {
				found = true
			}
		}
	}
	if !found {
		t.Error("cancelled racer's RPC did not attribute to its race span")
	}
}

// TestParallelSessionPeersRaceSpansClose covers the SessionPeers race:
// the loser is cancelled and its span must close before the call
// returns.
func TestParallelSessionPeersRaceSpansClose(t *testing.T) {
	rec := telemetry.NewRecorder(simtime.NewBaseSource(simtime.Realtime, nil))
	ctx, root := rec.StartTrace(context.Background(), "retrieve")
	tr := telemetry.TraceFrom(ctx)

	fast := &fakeRouter{name: "fast", delay: time.Millisecond, provider: peer.ID("winner")}
	slow := &fakeRouter{name: "slow", delay: time.Minute, provider: peer.ID("loser")}
	peers, _, err := routing.NewParallel(fast, slow).SessionPeers(ctx, testCid("sess"), 2)
	if err != nil {
		t.Fatalf("SessionPeers: %v", err)
	}
	if len(peers) != 1 || peers[0].ID != peer.ID("winner") {
		t.Fatalf("peers = %v, want the fast member's", peers)
	}
	for _, name := range []string{"race:fast", "race:slow"} {
		sp := tr.FindSpan(name)
		if sp == nil {
			t.Fatalf("span %q missing from trace", name)
		}
		if sp.Stop.IsZero() {
			t.Errorf("span %q leaked open after SessionPeers returned", name)
		}
	}
	root.End()
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans = %d after root.End, want 0", open)
	}
}

// TestStreamFallbackHandoffKeepsTrace drives an accelerated router
// with an empty snapshot so the direct path misses and hands off to
// the fallback, and asserts the hand-off event and the fallback's work
// all land on the same parent trace span.
func TestStreamFallbackHandoffKeepsTrace(t *testing.T) {
	rec := telemetry.NewRecorder(simtime.NewBaseSource(simtime.Realtime, nil))
	ctx, root := rec.StartTrace(context.Background(), "retrieve")
	tr := telemetry.TraceFrom(ctx)
	dctx, dsp := telemetry.StartSpan(ctx, "discover")

	fb := &fakeRouter{name: "walkfb", delay: time.Millisecond, provider: peer.ID("via-fallback")}
	accel := routing.NewAccelerated(nil, fb, routing.AcceleratedConfig{})

	seq, st := accel.FindProvidersStream(dctx, testCid("handoff"))
	var got []wire.PeerInfo
	seq(func(batch []wire.PeerInfo) bool {
		got = append(got, batch...)
		return true
	})
	if err := st.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(got) != 1 || got[0].ID != peer.ID("via-fallback") {
		t.Fatalf("providers = %v, want the fallback's", got)
	}
	if fb.calls.Load() == 0 {
		t.Fatal("fallback was never consulted")
	}

	// The direct probe opened (and closed) its span under the discover
	// span of the same trace.
	direct := tr.FindSpan("accel-direct")
	if direct == nil {
		t.Fatal("accel-direct span missing — direct probe did not attribute to the parent trace")
	}
	if direct.Stop.IsZero() {
		t.Error("accel-direct span leaked open across the fallback hand-off")
	}

	// The hand-off itself is marked on the span carried by the caller's
	// context, naming the fallback router.
	found := false
	for _, ev := range dsp.Events {
		if ev.Name != "fallback" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "to" && a.Value == fb.Name() {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("discover span missing fallback hand-off event; events = %+v", dsp.Events)
	}

	dsp.End()
	root.End()
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans = %d after ending discover+root, want 0", open)
	}
}
