// Package swarm manages a peer's live connections: dialing with
// identity verification, connection reuse, the address book of up to
// 900 recently seen peers (§3.2), and the AutoNAT reachability check
// that decides whether a peer joins the DHT as a server or a client
// (§2.3).
package swarm

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// AddressBookCapacity is the paper's address-book bound: "each IPFS
// node maintains an address book of up to 900 recently seen peers".
const AddressBookCapacity = 900

// AddressBook is an LRU-bounded map from PeerID to known addresses.
type AddressBook struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently seen
	entries map[peer.ID]*bookEntry
}

type bookEntry struct {
	addrs []multiaddr.Multiaddr
	elem  *list.Element
}

// NewAddressBook creates a book bounded to capacity (<=0 selects 900).
func NewAddressBook(capacity int) *AddressBook {
	if capacity <= 0 {
		capacity = AddressBookCapacity
	}
	return &AddressBook{cap: capacity, order: list.New(), entries: make(map[peer.ID]*bookEntry)}
}

// Add records addresses for a peer, refreshing recency and evicting the
// least recently seen peer when full.
func (b *AddressBook) Add(id peer.ID, addrs []multiaddr.Multiaddr) {
	if len(addrs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[id]; ok {
		e.addrs = append([]multiaddr.Multiaddr(nil), addrs...)
		b.order.MoveToFront(e.elem)
		return
	}
	for len(b.entries) >= b.cap {
		oldest := b.order.Back()
		if oldest == nil {
			break
		}
		delete(b.entries, oldest.Value.(peer.ID))
		b.order.Remove(oldest)
	}
	elem := b.order.PushFront(id)
	b.entries[id] = &bookEntry{addrs: append([]multiaddr.Multiaddr(nil), addrs...), elem: elem}
}

// Get returns known addresses for id, refreshing recency. The §3.2
// optimization: "nodes check whether they already have an address for
// the PeerID they have discovered before performing any further
// lookups".
func (b *AddressBook) Get(id peer.ID) ([]multiaddr.Multiaddr, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[id]
	if !ok {
		return nil, false
	}
	b.order.MoveToFront(e.elem)
	return append([]multiaddr.Multiaddr(nil), e.addrs...), true
}

// Clear empties the book. The §4.3 experiments flush it between
// retrievals so every retrieval pays the full discovery cost.
func (b *AddressBook) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.order.Init()
	b.entries = make(map[peer.ID]*bookEntry)
}

// Len returns the number of peers in the book.
func (b *AddressBook) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Swarm multiplexes connections over a transport endpoint.
type Swarm struct {
	ident peer.Identity
	ep    transport.Endpoint
	src   simtime.Source

	mu    sync.Mutex
	conns map[peer.ID]transport.Conn
	book  *AddressBook

	relayOnce sync.Once
	relay     *relayState
}

// New creates a swarm over the endpoint. src is the unified time
// source dial measurement and RPC timeouts run on; nil selects the
// real clock.
func New(ident peer.Identity, ep transport.Endpoint, src simtime.Source) *Swarm {
	if src == nil {
		src = simtime.NewBaseSource(simtime.Realtime, nil)
	}
	return &Swarm{
		ident: ident,
		ep:    ep,
		src:   src,
		conns: make(map[peer.ID]transport.Conn),
		book:  NewAddressBook(0),
	}
}

// Time returns the swarm's time source.
func (s *Swarm) Time() simtime.Source { return s.src }

// Local returns the local peer ID.
func (s *Swarm) Local() peer.ID { return s.ident.ID }

// Addrs returns the endpoint's listen addresses.
func (s *Swarm) Addrs() []multiaddr.Multiaddr { return s.ep.Addrs() }

// Book returns the address book.
func (s *Swarm) Book() *AddressBook { return s.book }

// Connected reports whether a live connection to id exists.
func (s *Swarm) Connected(id peer.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.conns[id]
	return ok
}

// ConnectedPeers lists peers with live connections — the neighbours
// Bitswap asks opportunistically (§3.2 step 4).
func (s *Swarm) ConnectedPeers() []peer.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]peer.ID, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	return out
}

// Connect returns an existing connection to id or dials one, consulting
// the address book when addrs is empty. The returned duration is the
// dial+negotiate time (zero for reused connections), the denominator
// terms of the paper's stretch metric (Eq 2).
func (s *Swarm) Connect(ctx context.Context, id peer.ID, addrs []multiaddr.Multiaddr) (transport.Conn, time.Duration, error) {
	s.mu.Lock()
	if c, ok := s.conns[id]; ok {
		s.mu.Unlock()
		return c, 0, nil
	}
	s.mu.Unlock()

	if len(addrs) == 0 {
		if known, ok := s.book.Get(id); ok {
			addrs = known
		}
	}
	start := s.src.Stamp()
	c, err := s.ep.Dial(ctx, id, addrs)
	if err != nil {
		return nil, s.src.Since(start), err
	}
	dialDur := s.src.Since(start)
	s.book.Add(id, addrs)

	s.mu.Lock()
	if existing, ok := s.conns[id]; ok {
		s.mu.Unlock()
		c.Close()
		return existing, dialDur, nil
	}
	s.conns[id] = c
	s.mu.Unlock()
	return c, dialDur, nil
}

// Request connects (or reuses) and performs one RPC.
func (s *Swarm) Request(ctx context.Context, id peer.ID, addrs []multiaddr.Multiaddr, req wire.Message) (wire.Message, error) {
	c, _, err := s.Connect(ctx, id, addrs)
	if err != nil {
		return wire.Message{}, err
	}
	resp, err := c.Request(ctx, req)
	if err != nil {
		// Drop the broken connection so future attempts redial.
		s.Disconnect(id)
		return wire.Message{}, err
	}
	return resp, nil
}

// Disconnect closes and forgets the connection to id.
func (s *Swarm) Disconnect(id peer.ID) {
	s.mu.Lock()
	c, ok := s.conns[id]
	delete(s.conns, id)
	s.mu.Unlock()
	if ok {
		c.Close()
	}
}

// DisconnectAll closes every connection; the §4.3 experiment does this
// between retrievals so Bitswap cannot shortcut the next lookup.
func (s *Swarm) DisconnectAll() {
	s.mu.Lock()
	conns := s.conns
	s.conns = make(map[peer.ID]transport.Conn)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close shuts down the swarm and its endpoint.
func (s *Swarm) Close() error {
	s.DisconnectAll()
	return s.ep.Close()
}

// NATStatus is the outcome of an AutoNAT check.
type NATStatus int

// AutoNAT outcomes (§2.3).
const (
	// NATUnknown means not enough peers answered to decide.
	NATUnknown NATStatus = iota
	// NATPublic means more than three peers dialed us back: the peer
	// upgrades to DHT server.
	NATPublic
	// NATPrivate means dial-backs failed: the peer stays a DHT client.
	NATPrivate
)

// AutoNATThreshold is the §2.3 rule: "if more than three peers can
// connect to the newly joining peer, then the new peer upgrades its
// participation to act as a server node".
const AutoNATThreshold = 3

// CheckNAT runs the Autonat protocol against up to maxProbes already
// connected peers: each is asked to initiate a connection back to us.
func (s *Swarm) CheckNAT(ctx context.Context, maxProbes int) NATStatus {
	peers := s.ConnectedPeers()
	if maxProbes <= 0 {
		maxProbes = 2 * AutoNATThreshold
	}
	if len(peers) > maxProbes {
		peers = peers[:maxProbes]
	}
	successes, failures := 0, 0
	for _, id := range peers {
		resp, err := s.Request(ctx, id, nil, wire.Message{
			Type:  wire.TDialBack,
			Peers: []wire.PeerInfo{{ID: s.ident.ID, Addrs: s.Addrs()}},
		})
		switch {
		case err == nil && resp.Type == wire.TAck:
			successes++
		default:
			failures++
		}
		if successes > AutoNATThreshold {
			return NATPublic
		}
	}
	if successes > AutoNATThreshold {
		return NATPublic
	}
	if failures > AutoNATThreshold {
		return NATPrivate
	}
	if successes+failures == 0 {
		return NATUnknown
	}
	if successes > failures {
		return NATPublic
	}
	return NATPrivate
}

// HandleDialBack serves an inbound TDialBack request: try to dial the
// requestor back at the addresses it supplied.
func (s *Swarm) HandleDialBack(ctx context.Context, req wire.Message) wire.Message {
	if len(req.Peers) == 0 {
		return wire.ErrorMessage("dial-back: no addresses supplied")
	}
	target := req.Peers[0]
	// Use a fresh short-lived connection from a fresh path; reusing an
	// existing conn or NAT mapping would defeat the reachability test.
	dialCtx, cancel := s.src.WithTimeout(transport.WithFreshDial(ctx), 10*time.Second)
	defer cancel()
	c, err := s.ep.Dial(dialCtx, target.ID, target.Addrs)
	if err != nil {
		return wire.ErrorMessage("dial-back failed: %v", err)
	}
	c.Close()
	return wire.Message{Type: wire.TAck}
}
