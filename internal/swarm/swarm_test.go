package swarm

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func newPair(t *testing.T) (*Swarm, *Swarm, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.Config{Base: simtime.New(0.001), Seed: 1})
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, simnet.NodeOpts{Region: geo.UsWest1, Dialable: true})
	sa, sb := New(a, ea, simtime.NewBaseSource(net.Base(), nil)), New(b, eb, simtime.NewBaseSource(net.Base(), nil))
	ea.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
		if req.Type == wire.TDialBack {
			return sa.HandleDialBack(ctx, req)
		}
		return wire.Message{Type: wire.TAck}
	})
	eb.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
		if req.Type == wire.TDialBack {
			return sb.HandleDialBack(ctx, req)
		}
		return wire.Message{Type: wire.TAck}
	})
	return sa, sb, net
}

func TestAddressBookLRU(t *testing.T) {
	b := NewAddressBook(3)
	addr := func(i int) []multiaddr.Multiaddr {
		return []multiaddr.Multiaddr{multiaddr.ForPeer("1.2.3.4", 4000+i, "QmX")}
	}
	ids := make([]peer.ID, 5)
	for i := range ids {
		ids[i] = testIdentity(int64(i + 10)).ID
	}
	b.Add(ids[0], addr(0))
	b.Add(ids[1], addr(1))
	b.Add(ids[2], addr(2))
	// Touch ids[0] so ids[1] is the eviction candidate.
	if _, ok := b.Get(ids[0]); !ok {
		t.Fatal("Get(ids[0]) missing")
	}
	b.Add(ids[3], addr(3))
	if _, ok := b.Get(ids[1]); ok {
		t.Error("LRU eviction should have removed ids[1]")
	}
	if _, ok := b.Get(ids[0]); !ok {
		t.Error("recently used entry evicted")
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
	// Empty address lists are ignored.
	b.Add(ids[4], nil)
	if _, ok := b.Get(ids[4]); ok {
		t.Error("empty addrs should not be stored")
	}
}

func TestAddressBookDefaultCapacity(t *testing.T) {
	b := NewAddressBook(0)
	for i := 0; i < 1000; i++ {
		id := peer.ID(fmt.Sprintf("peer-%04d", i))
		b.Add(id, []multiaddr.Multiaddr{multiaddr.ForPeer("1.1.1.1", 4001, "Qm")})
	}
	if b.Len() != AddressBookCapacity {
		t.Errorf("Len = %d, want %d (the paper's 900-peer bound)", b.Len(), AddressBookCapacity)
	}
}

func TestConnectReuse(t *testing.T) {
	sa, sb, _ := newPair(t)
	ctx := context.Background()
	c1, d1, err := sa.Connect(ctx, sb.Local(), sb.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Error("first connect should report a dial duration")
	}
	c2, d2, err := sa.Connect(ctx, sb.Local(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second Connect should reuse the connection")
	}
	if d2 != 0 {
		t.Errorf("reused connection dial duration = %v, want 0", d2)
	}
	if !sa.Connected(sb.Local()) {
		t.Error("Connected should be true")
	}
}

func TestConnectUsesAddressBook(t *testing.T) {
	sa, sb, _ := newPair(t)
	ctx := context.Background()
	if _, _, err := sa.Connect(ctx, sb.Local(), sb.Addrs()); err != nil {
		t.Fatal(err)
	}
	sa.Disconnect(sb.Local())
	if sa.Connected(sb.Local()) {
		t.Fatal("Disconnect failed")
	}
	// No addresses supplied: the book must provide them.
	if _, _, err := sa.Connect(ctx, sb.Local(), nil); err != nil {
		t.Errorf("Connect from address book: %v", err)
	}
}

func TestRequest(t *testing.T) {
	sa, sb, _ := newPair(t)
	resp, err := sa.Request(context.Background(), sb.Local(), sb.Addrs(), wire.Message{Type: wire.TPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TAck {
		t.Errorf("resp = %+v", resp)
	}
}

func TestRequestToVanishedPeerDropsConn(t *testing.T) {
	sa, sb, net := newPair(t)
	ctx := context.Background()
	if _, _, err := sa.Connect(ctx, sb.Local(), sb.Addrs()); err != nil {
		t.Fatal(err)
	}
	net.SetOnline(sb.Local(), false)
	if _, err := sa.Request(ctx, sb.Local(), nil, wire.Message{Type: wire.TPing}); err == nil {
		t.Fatal("request to offline peer should fail")
	}
	if sa.Connected(sb.Local()) {
		t.Error("failed request should drop the connection")
	}
}

func TestDisconnectAll(t *testing.T) {
	sa, sb, _ := newPair(t)
	ctx := context.Background()
	if _, _, err := sa.Connect(ctx, sb.Local(), sb.Addrs()); err != nil {
		t.Fatal(err)
	}
	sa.DisconnectAll()
	if len(sa.ConnectedPeers()) != 0 {
		t.Error("DisconnectAll left connections")
	}
}

func TestAutoNATPublic(t *testing.T) {
	// A dialable peer surrounded by cooperative peers upgrades to
	// server once more than three dial-backs succeed.
	net := simnet.New(simnet.Config{Base: simtime.New(0.001), Seed: 2})
	self := testIdentity(100)
	eSelf := net.AddNode(self.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: true})
	sSelf := New(self, eSelf, simtime.NewBaseSource(net.Base(), nil))
	eSelf.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
		return wire.Message{Type: wire.TAck}
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		other := testIdentity(int64(200 + i))
		eo := net.AddNode(other.ID, simnet.NodeOpts{Region: geo.UsWest1, Dialable: true})
		so := New(other, eo, simtime.NewBaseSource(net.Base(), nil))
		eo.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
			if req.Type == wire.TDialBack {
				return so.HandleDialBack(ctx, req)
			}
			return wire.Message{Type: wire.TAck}
		})
		if _, _, err := sSelf.Connect(ctx, other.ID, eo.Addrs()); err != nil {
			t.Fatal(err)
		}
	}
	if got := sSelf.CheckNAT(ctx, 5); got != NATPublic {
		t.Errorf("CheckNAT = %v, want NATPublic", got)
	}
}

func TestAutoNATPrivate(t *testing.T) {
	// An undialable (NAT'd) peer stays a client: dial-backs fail.
	net := simnet.New(simnet.Config{Base: simtime.New(0.001), Seed: 3})
	self := testIdentity(100)
	eSelf := net.AddNode(self.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: false})
	sSelf := New(self, eSelf, simtime.NewBaseSource(net.Base(), nil))
	eSelf.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
		return wire.Message{Type: wire.TAck}
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		other := testIdentity(int64(300 + i))
		eo := net.AddNode(other.ID, simnet.NodeOpts{Region: geo.UsWest1, Dialable: true})
		so := New(other, eo, simtime.NewBaseSource(net.Base(), nil))
		eo.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
			if req.Type == wire.TDialBack {
				return so.HandleDialBack(ctx, req)
			}
			return wire.Message{Type: wire.TAck}
		})
		if _, _, err := sSelf.Connect(ctx, other.ID, eo.Addrs()); err != nil {
			t.Fatal(err)
		}
	}
	if got := sSelf.CheckNAT(ctx, 5); got != NATPrivate {
		t.Errorf("CheckNAT = %v, want NATPrivate", got)
	}
}

func TestCheckNATNoPeers(t *testing.T) {
	net := simnet.New(simnet.Config{Base: simtime.New(0.001), Seed: 4})
	self := testIdentity(1)
	eSelf := net.AddNode(self.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: true})
	sSelf := New(self, eSelf, simtime.NewBaseSource(net.Base(), nil))
	if got := sSelf.CheckNAT(context.Background(), 5); got != NATUnknown {
		t.Errorf("CheckNAT with no peers = %v, want NATUnknown", got)
	}
}

func TestHandleDialBackNoAddrs(t *testing.T) {
	sa, _, _ := newPair(t)
	resp := sa.HandleDialBack(context.Background(), wire.Message{Type: wire.TDialBack})
	if resp.Type != wire.TError {
		t.Errorf("resp = %+v, want error", resp)
	}
}
