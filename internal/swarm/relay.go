package swarm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/wire"
)

// Relaying implements the §2.2 use of Multiaddress prefixing:
// "the extensible syntax of Multiaddresses allows for intermediate
// relaying of communication through prefixing peer addresses. This is
// used to proxy messages to in-browser nodes that cannot be directly
// contacted."
//
// A NAT'd peer reserves a slot at a publicly reachable relay (keeping
// its NAT mapping open by dialing out), then advertises
// /<relay-addrs>/p2p-circuit/p2p/<self>. Peers that cannot dial it
// directly send the relay a TRelay envelope; the relay forwards the
// inner message over its return path to the reserved peer.

// relayState tracks reservations this swarm is serving as a relay.
type relayState struct {
	mu           sync.Mutex
	reservations map[peer.ID][]multiaddr.Multiaddr
}

func (s *Swarm) relayInit() *relayState {
	s.relayOnce.Do(func() {
		s.relay = &relayState{reservations: make(map[peer.ID][]multiaddr.Multiaddr)}
	})
	return s.relay
}

// Reserve asks relay to forward traffic to us and returns the relayed
// multiaddress to advertise. The outbound connection both registers
// the reservation and holds the NAT mapping open.
func (s *Swarm) Reserve(ctx context.Context, relay wire.PeerInfo) (multiaddr.Multiaddr, error) {
	resp, err := s.Request(ctx, relay.ID, relay.Addrs, wire.Message{
		Type:  wire.TRelayReserve,
		Peers: []wire.PeerInfo{{ID: s.ident.ID, Addrs: s.Addrs()}},
	})
	if err != nil {
		return multiaddr.Multiaddr{}, fmt.Errorf("swarm: reserve at %s: %w", relay.ID.Short(), err)
	}
	if resp.Type != wire.TAck {
		return multiaddr.Multiaddr{}, fmt.Errorf("swarm: reserve rejected: %s", resp.ErrMsg)
	}
	if len(resp.Peers) == 0 || len(resp.Peers[0].Addrs) == 0 {
		return multiaddr.Multiaddr{}, fmt.Errorf("swarm: relay returned no addresses")
	}
	return multiaddr.Relay(resp.Peers[0].Addrs[0], s.ident.ID.String()), nil
}

// HandleRelayReserve serves an inbound reservation: record the
// requestor so TRelay envelopes for it are forwarded.
func (s *Swarm) HandleRelayReserve(from peer.ID, req wire.Message) wire.Message {
	if len(req.Peers) == 0 || req.Peers[0].ID != from {
		return wire.ErrorMessage("relay: reservation must carry the requestor's info")
	}
	st := s.relayInit()
	st.mu.Lock()
	st.reservations[from] = req.Peers[0].Addrs
	st.mu.Unlock()
	// Return our public addresses so the client can build its relayed
	// multiaddress.
	return wire.Message{Type: wire.TAck, Peers: []wire.PeerInfo{{ID: s.ident.ID, Addrs: s.Addrs()}}}
}

// HandleRelay forwards an envelope to a reserved peer and returns the
// inner response.
func (s *Swarm) HandleRelay(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
	target := peer.ID(req.Key)
	st := s.relayInit()
	st.mu.Lock()
	addrs, ok := st.reservations[target]
	st.mu.Unlock()
	if !ok {
		return wire.ErrorMessage("relay: no reservation for %s", target.Short())
	}
	inner, err := wire.Unmarshal(req.BlockData)
	if err != nil {
		return wire.ErrorMessage("relay: bad inner message: %v", err)
	}
	fctx, cancel := s.src.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	resp, err := s.Request(fctx, target, addrs, inner)
	if err != nil {
		return wire.ErrorMessage("relay: forward to %s failed: %v", target.Short(), err)
	}
	return resp
}

// RequestVia sends req to target through the relay encoded in a
// /p2p-circuit multiaddress.
func (s *Swarm) RequestVia(ctx context.Context, relayed multiaddr.Multiaddr, target peer.ID, req wire.Message) (wire.Message, error) {
	relayAddr, relayID, err := splitRelay(relayed)
	if err != nil {
		return wire.Message{}, err
	}
	resp, err := s.Request(ctx, relayID, []multiaddr.Multiaddr{relayAddr}, wire.Message{
		Type:      wire.TRelay,
		Key:       []byte(target),
		BlockData: req.Marshal(),
	})
	if err != nil {
		return wire.Message{}, err
	}
	if resp.Type == wire.TError {
		return resp, fmt.Errorf("swarm: relayed request: %s", resp.ErrMsg)
	}
	return resp, nil
}

// splitRelay decomposes /<relay>/p2p-circuit/p2p/<target> into the
// relay's dialable address+identity.
func splitRelay(m multiaddr.Multiaddr) (relayAddr multiaddr.Multiaddr, relayID peer.ID, err error) {
	if !m.IsRelay() {
		return multiaddr.Multiaddr{}, "", fmt.Errorf("swarm: %s is not a relay address", m)
	}
	comps := m.Components()
	cut := -1
	for i, c := range comps {
		if c.Name == "p2p-circuit" {
			cut = i
			break
		}
	}
	if cut <= 0 {
		return multiaddr.Multiaddr{}, "", fmt.Errorf("swarm: malformed relay address %s", m)
	}
	prefix := m
	// Rebuild the prefix address from its components.
	prefixStr := ""
	for _, c := range comps[:cut] {
		prefixStr += "/" + c.Name
		if c.Value != "" {
			prefixStr += "/" + c.Value
		}
	}
	prefix, err = multiaddr.Parse(prefixStr)
	if err != nil {
		return multiaddr.Multiaddr{}, "", err
	}
	idStr, ok := prefix.PeerID()
	if !ok {
		return multiaddr.Multiaddr{}, "", fmt.Errorf("swarm: relay address %s lacks the relay's /p2p id", m)
	}
	id, err := peer.ParseID(idStr)
	if err != nil {
		return multiaddr.Multiaddr{}, "", err
	}
	return prefix, id, nil
}
