package swarm

import (
	"context"
	"testing"

	"repro/internal/geo"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// relayNet builds: a public relay, a NAT'd (undialable) peer, and a
// public requester.
func relayNet(t *testing.T) (relay, natted, requester *Swarm, net *simnet.Network) {
	t.Helper()
	net = simnet.New(simnet.Config{Base: simtime.New(0.001), Seed: 6})
	mk := func(seed int64, dialable bool) *Swarm {
		ident := testIdentity(seed)
		ep := net.AddNode(ident.ID, simnet.NodeOpts{Region: geo.EuCentral1, Dialable: dialable})
		sw := New(ident, ep, simtime.NewBaseSource(net.Base(), nil))
		ep.SetHandler(func(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
			switch req.Type {
			case wire.TRelayReserve:
				return sw.HandleRelayReserve(from, req)
			case wire.TRelay:
				return sw.HandleRelay(ctx, from, req)
			case wire.TPing:
				return wire.Message{Type: wire.TAck, ErrMsg: "pong from " + sw.Local().Short()}
			}
			return wire.ErrorMessage("unhandled")
		})
		return sw
	}
	return mk(1, true), mk(2, false), mk(3, true), net
}

func TestRelayedRequestReachesNattedPeer(t *testing.T) {
	relay, natted, requester, _ := relayNet(t)
	ctx := context.Background()

	// Direct dialing the NAT'd peer fails.
	if _, _, err := requester.Connect(ctx, natted.Local(), natted.Addrs()); err == nil {
		t.Fatal("direct dial to NAT'd peer should fail")
	}

	// The NAT'd peer reserves a slot (outbound dial opens its mapping).
	relayedAddr, err := natted.Reserve(ctx, wire.PeerInfo{ID: relay.Local(), Addrs: relay.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	if !relayedAddr.IsRelay() {
		t.Fatalf("reserved address %s is not a relay address", relayedAddr)
	}

	// The requester reaches it through the relay.
	resp, err := requester.RequestVia(ctx, relayedAddr, natted.Local(), wire.Message{Type: wire.TPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TAck || resp.ErrMsg != "pong from "+natted.Local().Short() {
		t.Errorf("relayed response = %+v", resp)
	}
}

func TestRelayRejectsUnreservedTargets(t *testing.T) {
	relay, natted, requester, _ := relayNet(t)
	ctx := context.Background()
	fake := multiaddr.Relay(relay.Addrs()[0], natted.Local().String())
	if _, err := requester.RequestVia(ctx, fake, natted.Local(), wire.Message{Type: wire.TPing}); err == nil {
		t.Error("relaying without a reservation should fail")
	}
}

func TestReserveRequiresReachableRelay(t *testing.T) {
	_, natted, _, _ := relayNet(t)
	ghost := testIdentity(99)
	if _, err := natted.Reserve(context.Background(), wire.PeerInfo{ID: ghost.ID}); err == nil {
		t.Error("reserving at an unreachable relay should fail")
	}
}

func TestHandleRelayReserveValidation(t *testing.T) {
	relay, _, requester, _ := relayNet(t)
	// Reservation must carry the requestor's own info.
	resp := relay.HandleRelayReserve(requester.Local(), wire.Message{Type: wire.TRelayReserve})
	if resp.Type != wire.TError {
		t.Error("reservation without info should be rejected")
	}
	other := testIdentity(55)
	resp = relay.HandleRelayReserve(requester.Local(), wire.Message{
		Type:  wire.TRelayReserve,
		Peers: []wire.PeerInfo{{ID: other.ID}},
	})
	if resp.Type != wire.TError {
		t.Error("reservation claiming another identity should be rejected")
	}
}

func TestSplitRelayErrors(t *testing.T) {
	if _, _, err := splitRelay(multiaddr.MustParse("/ip4/1.2.3.4/tcp/1")); err == nil {
		t.Error("non-relay address should fail")
	}
	// Relay prefix without a /p2p id.
	m := multiaddr.MustParse("/ip4/1.2.3.4/tcp/1/p2p-circuit/p2p/QmX")
	if _, _, err := splitRelay(m); err == nil {
		t.Error("relay prefix without relay id should fail")
	}
}

func TestRequestViaBadInner(t *testing.T) {
	relay, natted, requester, _ := relayNet(t)
	ctx := context.Background()
	if _, err := natted.Reserve(ctx, wire.PeerInfo{ID: relay.Local(), Addrs: relay.Addrs()}); err != nil {
		t.Fatal(err)
	}
	// Send a TRelay with a corrupt envelope directly.
	resp, err := requester.Request(ctx, relay.Local(), relay.Addrs(), wire.Message{
		Type:      wire.TRelay,
		Key:       []byte(natted.Local()),
		BlockData: []byte("not a message"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TError {
		t.Errorf("corrupt envelope resp = %+v", resp)
	}
}
