package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(xs ...float64) *Sample {
	s := NewSample()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestPercentiles(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := s.Median(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("Median = %v, want 5.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(90); math.Abs(got-9.1) > 1e-9 {
		t.Errorf("P90 = %v, want 9.1", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(NewSample().Percentile(50)) {
		t.Error("empty sample percentile should be NaN")
	}
	if !math.IsNaN(NewSample().Mean()) {
		t.Error("empty sample mean should be NaN")
	}
}

func TestMeanMinMax(t *testing.T) {
	s := sampleOf(2, 4, 9)
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestFractionBelow(t *testing.T) {
	s := sampleOf(1, 2, 2, 3)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	s := sampleOf(5, 1, 4, 2, 3, 9, 7, 8, 6, 10)
	pts := s.CDF(5)
	if len(pts) != 5 {
		t.Fatalf("CDF points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Errorf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("CDF should end at 1, got %v", pts[len(pts)-1].F)
	}
}

func TestFromDurations(t *testing.T) {
	s := FromDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean() != 2 {
		t.Errorf("Mean = %v, want 2 seconds", s.Mean())
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Region", "P50", "P90")
	tab.AddRow("eu_central_1", 1.81, 2.28)
	tab.AddRow("af_south_1", 3.75, 4.88)
	out := tab.String()
	if !strings.Contains(out, "eu_central_1") || !strings.Contains(out, "3.75") {
		t.Errorf("table output:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("table should have 4 lines, got %d:\n%s", lines, out)
	}
}

func TestFormatCDF(t *testing.T) {
	out := FormatCDF("fig9a", []CDFPoint{{1, 0.5}, {2, 1}})
	if !strings.HasPrefix(out, "# fig9a\n") || !strings.Contains(out, "2.0000 1.0000") {
		t.Errorf("FormatCDF:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	h.Observe(1, 1)
	h.Observe(4.9, 1)
	h.Observe(5, 2)
	h.Observe(12, 1)
	bins := h.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if !sort.IntsAreSorted(bins) {
		t.Error("Bins must be sorted")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(xs []float64, p uint8) bool {
		if len(xs) == 0 {
			return true
		}
		s := NewSample()
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		got := s.Percentile(float64(p % 101))
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFractionBelowMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s := NewSample()
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
			s.Add(x)
		}
		if a > b {
			a, b = b, a
		}
		return s.FractionBelow(a) <= s.FractionBelow(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
