// Package stats provides the small statistics toolkit used by the
// evaluation harness: empirical CDFs, percentiles, Pearson correlation
// and text renderers for the tables and figure series of §5–§6.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a mutable collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// FromDurations builds a sample of seconds from durations.
func FromDurations(ds []time.Duration) *Sample {
	s := NewSample()
	for _, d := range ds {
		s.Add(d.Seconds())
	}
	return s
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns NaN for empty samples.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean, or NaN for empty samples.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// FractionBelow returns the empirical CDF at x: the fraction of
// observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, x)
	for i < len(s.xs) && s.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns up to points evenly-spaced points of the empirical CDF,
// suitable for plotting the figure series.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.ensureSorted()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(s.xs) / points
		if idx > len(s.xs) {
			idx = len(s.xs)
		}
		out = append(out, CDFPoint{X: s.xs[idx-1], F: float64(idx) / float64(len(s.xs))})
	}
	return out
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return append([]float64(nil), s.xs...)
}

// Pearson returns the Pearson correlation coefficient of paired samples,
// used by §6.3 to show object size and latency are uncorrelated. It
// returns NaN when the inputs differ in length, are shorter than 2, or
// have zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Table is a simple fixed-column text table renderer for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatCDF renders a CDF series as "x f" lines for the figure outputs.
func FormatCDF(name string, pts []CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", name)
	for _, p := range pts {
		fmt.Fprintf(&b, "%.4f %.4f\n", p.X, p.F)
	}
	return b.String()
}

// Histogram counts observations into fixed-width bins, used for the
// diurnal request series of Figure 4b / 11b.
type Histogram struct {
	BinWidth float64
	Counts   map[int]float64
}

// NewHistogram creates a histogram with the given bin width.
func NewHistogram(binWidth float64) *Histogram {
	return &Histogram{BinWidth: binWidth, Counts: make(map[int]float64)}
}

// Observe adds weight to the bin containing x.
func (h *Histogram) Observe(x, weight float64) {
	h.Counts[int(math.Floor(x/h.BinWidth))] += weight
}

// Bins returns the bin indices in ascending order.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Total returns the summed weight across every bin.
func (h *Histogram) Total() float64 {
	var sum float64
	for _, w := range h.Counts {
		sum += w
	}
	return sum
}

// Render formats the histogram as text: one "[lo,hi) count bar" line
// per bin from the lowest to the highest occupied bin (empty bins in
// between render as zero), bars scaled so the fullest bin spans width
// characters. The latency registry's debug renders use it.
func (h *Histogram) Render(width int) string {
	bins := h.Bins()
	if len(bins) == 0 {
		return "(empty)\n"
	}
	if width <= 0 {
		width = 40
	}
	var maxW float64
	for _, w := range h.Counts {
		if w > maxW {
			maxW = w
		}
	}
	var b strings.Builder
	for bin := bins[0]; bin <= bins[len(bins)-1]; bin++ {
		lo := float64(bin) * h.BinWidth
		w := h.Counts[bin]
		bar := ""
		if maxW > 0 {
			bar = strings.Repeat("#", int(math.Round(w/maxW*float64(width))))
		}
		fmt.Fprintf(&b, "[%8.3f, %8.3f) %8.0f %s\n", lo, lo+h.BinWidth, w, bar)
	}
	return b.String()
}
