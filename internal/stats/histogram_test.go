package stats

import (
	"strings"
	"testing"
)

func TestHistogramObserveAndBins(t *testing.T) {
	h := NewHistogram(0.5)
	h.Observe(0.1, 1)
	h.Observe(0.4, 2)
	h.Observe(1.2, 1)
	h.Observe(-0.3, 1) // negative values land in bin -1

	if got := h.Total(); got != 5 {
		t.Errorf("Total = %v, want 5", got)
	}
	if got := h.Bins(); len(got) != 3 || got[0] != -1 || got[1] != 0 || got[2] != 2 {
		t.Errorf("Bins = %v, want [-1 0 2]", got)
	}
	if h.Counts[0] != 3 {
		t.Errorf("bin 0 weight = %v, want 3", h.Counts[0])
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(0.5, 4)
	h.Observe(2.5, 2)

	out := h.Render(8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render spans %d lines, want 3 (bin 1 renders empty):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "[   0.000,    1.000)") || !strings.Contains(lines[0], "########") {
		t.Errorf("fullest bin line = %q, want full-width bar", lines[0])
	}
	if !strings.Contains(lines[1], "0 ") && !strings.HasSuffix(lines[1], "0") {
		t.Errorf("empty middle bin line = %q, want zero count", lines[1])
	}
	if !strings.Contains(lines[2], "####") || strings.Contains(lines[2], "#####") {
		t.Errorf("half-weight bin line = %q, want a half-width bar", lines[2])
	}

	if got := NewHistogram(1).Render(8); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}
