// Package chunker splits content into fixed-size chunks before DAG
// construction. "When content is added to IPFS, it is split into chunks
// (default 256 kB), each of which is assigned its own CID" (§2.1).
package chunker

import (
	"fmt"
	"io"
)

// DefaultChunkSize is the network default of 256 KiB.
const DefaultChunkSize = 256 * 1024

// Chunker yields consecutive chunks of an input stream.
type Chunker struct {
	r    io.Reader
	size int
	done bool
}

// New returns a fixed-size chunker over r. size <= 0 selects the
// default 256 KiB.
func New(r io.Reader, size int) *Chunker {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &Chunker{r: r, size: size}
}

// Next returns the next chunk, or io.EOF after the final chunk has been
// returned. The final chunk may be shorter than the chunk size; an
// empty input yields a single empty chunk so empty files still receive
// a CID.
func (c *Chunker) Next() ([]byte, error) {
	if c.done {
		return nil, io.EOF
	}
	buf := make([]byte, c.size)
	n, err := io.ReadFull(c.r, buf)
	switch err {
	case nil:
		return buf, nil
	case io.ErrUnexpectedEOF:
		c.done = true
		return buf[:n], nil
	case io.EOF:
		c.done = true
		if n == 0 {
			// Distinguish "empty input" (first call: return one empty
			// chunk) from "input length was an exact multiple of the
			// chunk size" — but ReadFull returning (0, EOF) on the very
			// first read means empty input only if we haven't emitted
			// anything; callers use Split for the common path, which
			// handles this uniformly.
			return buf[:0], nil
		}
		return buf[:n], nil
	default:
		return nil, fmt.Errorf("chunker: %w", err)
	}
}

// Split chunks data fully in memory, returning at least one chunk
// (possibly empty for empty input).
func Split(data []byte, size int) [][]byte {
	if size <= 0 {
		size = DefaultChunkSize
	}
	if len(data) == 0 {
		return [][]byte{{}}
	}
	var chunks [][]byte
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	return chunks
}

// NumChunks returns how many chunks Split would produce for n bytes.
func NumChunks(n, size int) int {
	if size <= 0 {
		size = DefaultChunkSize
	}
	if n == 0 {
		return 1
	}
	return (n + size - 1) / size
}
