package chunker

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestSplitExactMultiple(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 1024)
	chunks := Split(data, 256)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	for i, c := range chunks {
		if len(c) != 256 {
			t.Errorf("chunk %d length = %d", i, len(c))
		}
	}
}

func TestSplitRemainder(t *testing.T) {
	data := bytes.Repeat([]byte{2}, 1000)
	chunks := Split(data, 256)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	if len(chunks[3]) != 1000-3*256 {
		t.Errorf("last chunk = %d bytes", len(chunks[3]))
	}
}

func TestSplitEmpty(t *testing.T) {
	chunks := Split(nil, 256)
	if len(chunks) != 1 || len(chunks[0]) != 0 {
		t.Errorf("empty input should produce one empty chunk, got %d chunks", len(chunks))
	}
}

func TestSplitDefaultSize(t *testing.T) {
	data := make([]byte, DefaultChunkSize+1)
	chunks := Split(data, 0)
	if len(chunks) != 2 {
		t.Errorf("default-size split = %d chunks, want 2", len(chunks))
	}
	if len(chunks[0]) != DefaultChunkSize {
		t.Errorf("first chunk = %d, want %d", len(chunks[0]), DefaultChunkSize)
	}
}

func TestStreamingMatchesSplit(t *testing.T) {
	data := bytes.Repeat([]byte{3, 1, 4, 1, 5}, 777)
	want := Split(data, 512)
	c := New(bytes.NewReader(data), 512)
	var got [][]byte
	for {
		chunk, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk)
	}
	if len(got) != len(want) {
		t.Fatalf("streaming chunks = %d, split chunks = %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("chunk %d differs", i)
		}
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 256, 1},
		{1, 256, 1},
		{256, 256, 1},
		{257, 256, 2},
		{1024, 256, 4},
		{DefaultChunkSize * 3, 0, 3},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.size); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

func TestQuickSplitReassembles(t *testing.T) {
	f := func(data []byte, sz uint16) bool {
		size := int(sz%2048) + 1
		var buf bytes.Buffer
		for _, c := range Split(data, size) {
			buf.Write(c)
		}
		return bytes.Equal(buf.Bytes(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickChunkSizesBounded(t *testing.T) {
	f := func(data []byte, sz uint16) bool {
		size := int(sz%2048) + 1
		chunks := Split(data, size)
		if len(chunks) != NumChunks(len(data), size) {
			return false
		}
		for i, c := range chunks {
			if len(c) > size {
				return false
			}
			if i < len(chunks)-1 && len(c) != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
