package bitswap

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/geo"
	"repro/internal/merkledag"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

type testPeer struct {
	ident peer.Identity
	sw    *swarm.Swarm
	store *block.MemStore
	bs    *Bitswap
	info  wire.PeerInfo
}

func buildPeers(t *testing.T, n int) (*simnet.Network, []*testPeer) {
	t.Helper()
	base := simtime.New(0.001)
	net := simnet.New(simnet.Config{Base: base, Seed: 3})
	rng := rand.New(rand.NewSource(8))
	peers := make([]*testPeer, n)
	for i := range peers {
		ident := peer.MustNewIdentity(rng)
		ep := net.AddNode(ident.ID, simnet.NodeOpts{Region: "US", Dialable: true})
		sw := swarm.New(ident, ep, base)
		store := block.NewMemStore()
		bs := New(sw, store, Config{Base: base})
		ep.SetHandler(bs.HandleMessage)
		peers[i] = &testPeer{ident: ident, sw: sw, store: store, bs: bs, info: wire.PeerInfo{ID: ident.ID, Addrs: ep.Addrs()}}
	}
	return net, peers
}

func TestHandleWantHave(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder := ps[0]
	blk := block.New(multicodec.Raw, []byte("held"))
	holder.store.Put(blk)
	ctx := context.Background()

	resp := holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: blk.Cid().Bytes()})
	if resp.Type != wire.THave {
		t.Errorf("resp = %s, want HAVE", resp.Type)
	}
	missing := cid.Sum(multicodec.Raw, []byte("missing"))
	resp = holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: missing.Bytes()})
	if resp.Type != wire.TDontHave {
		t.Errorf("resp = %s, want DONT_HAVE", resp.Type)
	}
	if resp := holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: []byte("junk")}); resp.Type != wire.TError {
		t.Errorf("bad cid resp = %s", resp.Type)
	}
}

func TestFetchBlockFullExchange(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	blk := block.New(multicodec.Raw, []byte("wanted block"))
	holder.store.Put(blk)

	got, err := requester.bs.FetchBlock(context.Background(), holder.info, blk.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), blk.Data()) {
		t.Error("data mismatch")
	}
	// The block is now stored locally: requester becomes a holder.
	if !requester.store.Has(blk.Cid()) {
		t.Error("fetched block not stored")
	}
	sent, recv, bytesSent, bytesRecv := holder.bs.Stats()
	if sent != 1 || bytesSent != int64(blk.Size()) {
		t.Errorf("holder stats: sent=%d bytes=%d", sent, bytesSent)
	}
	_, recv, _, bytesRecv = requester.bs.Stats()
	if recv != 1 || bytesRecv != int64(blk.Size()) {
		t.Errorf("requester stats: recv=%d bytes=%d", recv, bytesRecv)
	}
}

func TestFetchBlockNotHeld(t *testing.T) {
	_, ps := buildPeers(t, 2)
	missing := cid.Sum(multicodec.Raw, []byte("nope"))
	if _, err := ps[1].bs.FetchBlock(context.Background(), ps[0].info, missing); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestAskConnectedFindsHolder(t *testing.T) {
	_, ps := buildPeers(t, 4)
	requester := ps[0]
	holder := ps[2]
	blk := block.New(multicodec.Raw, []byte("neighbourhood content"))
	holder.store.Put(blk)
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	id, dur, err := requester.bs.AskConnected(ctx, blk.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if id != holder.ident.ID {
		t.Errorf("holder = %s", id.Short())
	}
	if dur <= 0 || dur > 500*time.Millisecond {
		t.Errorf("opportunistic hit took %v", dur)
	}
}

func TestAskConnectedTimesOut(t *testing.T) {
	_, ps := buildPeers(t, 3)
	requester := ps[0]
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	missing := cid.Sum(multicodec.Raw, []byte("nobody has this"))
	_, dur, err := requester.bs.AskConnected(ctx, missing)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The full 1 s opportunistic timeout must elapse (§3.2).
	if dur < 900*time.Millisecond || dur > 2*time.Second {
		t.Errorf("timeout took %v simulated, want ~1s", dur)
	}
}

func TestAskConnectedNoPeers(t *testing.T) {
	_, ps := buildPeers(t, 1)
	missing := cid.Sum(multicodec.Raw, []byte("x"))
	if _, _, err := ps[0].bs.AskConnected(context.Background(), missing); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestSessionAssemblesDAG(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	data := bytes.Repeat([]byte("dag content "), 3000)
	root, err := merkledag.NewBuilder(holder.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	session := requester.bs.NewSession(context.Background(), holder.info)
	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	// All blocks should now be local; a second assemble needs no network.
	if _, err := merkledag.Assemble(requester.store, root); err != nil {
		t.Errorf("blocks not stored locally: %v", err)
	}
}

func TestCorruptBlockRejected(t *testing.T) {
	// A peer serving bytes that do not match the CID must be caught by
	// self-certification (§2.1).
	base := simtime.New(0.001)
	net := simnet.New(simnet.Config{Base: base, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	evil := peer.MustNewIdentity(rng)
	victim := peer.MustNewIdentity(rng)

	evilEp := net.AddNode(evil.ID, simnet.NodeOpts{Region: geo.Region("US"), Dialable: true})
	evilEp.SetHandler(func(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
		switch req.Type {
		case wire.TWantHave:
			return wire.Message{Type: wire.THave, Key: req.Key}
		case wire.TWantBlock:
			return wire.Message{Type: wire.TBlock, Key: req.Key, BlockData: []byte("corrupted data")}
		}
		return wire.ErrorMessage("?")
	})

	vEp := net.AddNode(victim.ID, simnet.NodeOpts{Region: geo.Region("US"), Dialable: true})
	vSw := swarm.New(victim, vEp, base)
	vBs := New(vSw, block.NewMemStore(), Config{Base: base})

	want := cid.Sum(multicodec.Raw, []byte("the real content"))
	_, err := vBs.FetchBlock(context.Background(), wire.PeerInfo{ID: evil.ID, Addrs: evilEp.Addrs()}, want)
	if err == nil {
		t.Fatal("corrupt block accepted")
	}
}

func TestWantlistTracking(t *testing.T) {
	_, ps := buildPeers(t, 2)
	if len(ps[0].bs.Wantlist()) != 0 {
		t.Error("wantlist should start empty")
	}
	blk := block.New(multicodec.Raw, []byte("tracked"))
	ps[1].store.Put(blk)
	if _, err := ps[0].bs.FetchBlock(context.Background(), ps[1].info, blk.Cid()); err != nil {
		t.Fatal(err)
	}
	if len(ps[0].bs.Wantlist()) != 0 {
		t.Error("wantlist should be empty after a completed fetch")
	}
}
