package bitswap

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/geo"
	"repro/internal/merkledag"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

type testPeer struct {
	ident peer.Identity
	sw    *swarm.Swarm
	store *block.MemStore
	bs    *Bitswap
	info  wire.PeerInfo
}

func buildPeers(t *testing.T, n int) (*simnet.Network, []*testPeer) {
	t.Helper()
	base := simtime.New(0.001)
	net := simnet.New(simnet.Config{Base: base, Seed: 3})
	rng := rand.New(rand.NewSource(8))
	peers := make([]*testPeer, n)
	for i := range peers {
		ident := peer.MustNewIdentity(rng)
		ep := net.AddNode(ident.ID, simnet.NodeOpts{Region: "US", Dialable: true})
		sw := swarm.New(ident, ep, simtime.NewBaseSource(base, nil))
		store := block.NewMemStore()
		bs := New(sw, store, Config{Base: base})
		ep.SetHandler(bs.HandleMessage)
		peers[i] = &testPeer{ident: ident, sw: sw, store: store, bs: bs, info: wire.PeerInfo{ID: ident.ID, Addrs: ep.Addrs()}}
	}
	return net, peers
}

func TestHandleWantHave(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder := ps[0]
	blk := block.New(multicodec.Raw, []byte("held"))
	holder.store.Put(blk)
	ctx := context.Background()

	resp := holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: blk.Cid().Bytes()})
	if resp.Type != wire.THave {
		t.Errorf("resp = %s, want HAVE", resp.Type)
	}
	missing := cid.Sum(multicodec.Raw, []byte("missing"))
	resp = holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: missing.Bytes()})
	if resp.Type != wire.TDontHave {
		t.Errorf("resp = %s, want DONT_HAVE", resp.Type)
	}
	if resp := holder.bs.HandleMessage(ctx, ps[1].ident.ID, wire.Message{Type: wire.TWantHave, Key: []byte("junk")}); resp.Type != wire.TError {
		t.Errorf("bad cid resp = %s", resp.Type)
	}
}

func TestFetchBlockFullExchange(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	blk := block.New(multicodec.Raw, []byte("wanted block"))
	holder.store.Put(blk)

	got, err := requester.bs.FetchBlock(context.Background(), holder.info, blk.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), blk.Data()) {
		t.Error("data mismatch")
	}
	// The block is now stored locally: requester becomes a holder.
	if !requester.store.Has(blk.Cid()) {
		t.Error("fetched block not stored")
	}
	sent, recv, bytesSent, bytesRecv := holder.bs.Stats()
	if sent != 1 || bytesSent != int64(blk.Size()) {
		t.Errorf("holder stats: sent=%d bytes=%d", sent, bytesSent)
	}
	_, recv, _, bytesRecv = requester.bs.Stats()
	if recv != 1 || bytesRecv != int64(blk.Size()) {
		t.Errorf("requester stats: recv=%d bytes=%d", recv, bytesRecv)
	}
}

func TestFetchBlockNotHeld(t *testing.T) {
	_, ps := buildPeers(t, 2)
	missing := cid.Sum(multicodec.Raw, []byte("nope"))
	if _, err := ps[1].bs.FetchBlock(context.Background(), ps[0].info, missing); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestAskConnectedFindsHolder(t *testing.T) {
	_, ps := buildPeers(t, 4)
	requester := ps[0]
	holder := ps[2]
	blk := block.New(multicodec.Raw, []byte("neighbourhood content"))
	holder.store.Put(blk)
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	info, st, err := requester.bs.AskConnected(ctx, blk.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != holder.ident.ID {
		t.Errorf("holder = %s", info.ID.Short())
	}
	if st.Duration <= 0 || st.Duration > 500*time.Millisecond {
		t.Errorf("opportunistic hit took %v", st.Duration)
	}
	if !st.Broadcast || st.Routed {
		t.Errorf("stats = %+v, want a broadcast hit", st)
	}
	if st.WantHaves != 3 {
		t.Errorf("broadcast sent %d WANT-HAVEs, want one per connected peer (3)", st.WantHaves)
	}
}

func TestAskConnectedTimesOut(t *testing.T) {
	_, ps := buildPeers(t, 3)
	requester := ps[0]
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	missing := cid.Sum(multicodec.Raw, []byte("nobody has this"))
	_, st, err := requester.bs.AskConnected(ctx, missing)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The full 1 s opportunistic timeout must elapse (§3.2).
	if st.Duration < 900*time.Millisecond || st.Duration > 2*time.Second {
		t.Errorf("timeout took %v simulated, want ~1s", st.Duration)
	}
}

func TestAskConnectedNoPeers(t *testing.T) {
	_, ps := buildPeers(t, 1)
	missing := cid.Sum(multicodec.Raw, []byte("x"))
	if _, _, err := ps[0].bs.AskConnected(context.Background(), missing); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestSessionAssemblesDAG(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	data := bytes.Repeat([]byte("dag content "), 3000)
	root, err := merkledag.NewBuilder(holder.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	session := requester.bs.NewSession(context.Background(), holder.info)
	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	// All blocks should now be local; a second assemble needs no network.
	if _, err := merkledag.Assemble(requester.store, root); err != nil {
		t.Errorf("blocks not stored locally: %v", err)
	}
}

func TestCorruptBlockRejected(t *testing.T) {
	// A peer serving bytes that do not match the CID must be caught by
	// self-certification (§2.1).
	base := simtime.New(0.001)
	net := simnet.New(simnet.Config{Base: base, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	evil := peer.MustNewIdentity(rng)
	victim := peer.MustNewIdentity(rng)

	evilEp := net.AddNode(evil.ID, simnet.NodeOpts{Region: geo.Region("US"), Dialable: true})
	evilEp.SetHandler(func(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
		switch req.Type {
		case wire.TWantHave:
			return wire.Message{Type: wire.THave, Key: req.Key}
		case wire.TWantBlock:
			return wire.Message{Type: wire.TBlock, Key: req.Key, BlockData: []byte("corrupted data")}
		}
		return wire.ErrorMessage("?")
	})

	vEp := net.AddNode(victim.ID, simnet.NodeOpts{Region: geo.Region("US"), Dialable: true})
	vSw := swarm.New(victim, vEp, simtime.NewBaseSource(base, nil))
	vBs := New(vSw, block.NewMemStore(), Config{Base: base})

	want := cid.Sum(multicodec.Raw, []byte("the real content"))
	_, err := vBs.FetchBlock(context.Background(), wire.PeerInfo{ID: evil.ID, Addrs: evilEp.Addrs()}, want)
	if err == nil {
		t.Fatal("corrupt block accepted")
	}
}

// fakeRouting scripts a SessionRouting for ask/session tests.
type fakeRouting struct {
	mu        sync.Mutex
	peers     []wire.PeerInfo
	msgs      int
	err       error
	broadcast bool
	onlyKey   string // when set, only this CID key has session peers
	consults  int
}

func (f *fakeRouting) SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.consults++
	if f.err != nil {
		return nil, f.msgs, f.err
	}
	if f.onlyKey != "" && c.Key() != f.onlyKey {
		return nil, f.msgs, errors.New("fakeRouting: no session peers for that cid")
	}
	peers := f.peers
	if n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	return peers, f.msgs, nil
}

func (f *fakeRouting) WantBroadcast() bool { return f.broadcast }

func (f *fakeRouting) setPeers(peers []wire.PeerInfo) {
	f.mu.Lock()
	f.peers = peers
	f.mu.Unlock()
}

// slowAskEngine builds a second engine over a peer's swarm/store with a
// generous simulated opportunistic window: at scale 0.001 the 1 s
// default is only ~1 ms of real time, which race-detector scheduling
// overhead can blow.
func slowAskEngine(p *testPeer) *Bitswap {
	return New(p.sw, p.store, Config{Base: p.bs.cfg.Base, OpportunisticTimeout: 30 * time.Second})
}

func TestAskConnectedRoutedSkipsBroadcast(t *testing.T) {
	_, ps := buildPeers(t, 4)
	requester, holder := ps[0], ps[3]
	blk := block.New(multicodec.Raw, []byte("routed content"))
	holder.store.Put(blk)
	ctx := context.Background()
	// Connected bystanders that would receive the blind broadcast.
	for _, p := range ps[1:3] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	// The router knows the (unconnected) holder; policy skips broadcast.
	bs := slowAskEngine(requester)
	bs.SetRouting(&fakeRouting{peers: []wire.PeerInfo{holder.info}, msgs: 1})

	info, st, err := bs.AskConnected(ctx, blk.Cid())
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != holder.ident.ID {
		t.Errorf("session peer = %s, want the routed holder", info.ID.Short())
	}
	if !st.Routed || st.Broadcast {
		t.Errorf("stats = %+v, want routed hit without broadcast", st)
	}
	if st.WantHaves != 1 {
		t.Errorf("routed ask sent %d WANT-HAVEs, want exactly 1 (the candidate)", st.WantHaves)
	}
	if st.RoutingMsgs != 1 {
		t.Errorf("routing msgs = %d, want the consult's RPC", st.RoutingMsgs)
	}
}

func TestAskConnectedZeroRoutedPeersFallsBackToBroadcast(t *testing.T) {
	// Satellite: a routed session whose router returns zero peers must
	// fall back to the opportunistic broadcast rather than erroring.
	_, ps := buildPeers(t, 3)
	requester, holder := ps[0], ps[2]
	blk := block.New(multicodec.Raw, []byte("broadcast fallback"))
	holder.store.Put(blk)
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	bs := slowAskEngine(requester)
	bs.SetRouting(&fakeRouting{}) // zero candidates, skip-broadcast policy

	info, st, err := bs.AskConnected(ctx, blk.Cid())
	if err != nil {
		t.Fatalf("zero routed peers must not fail discovery: %v", err)
	}
	if info.ID != holder.ident.ID {
		t.Errorf("holder = %s", info.ID.Short())
	}
	if !st.Broadcast || st.Routed {
		t.Errorf("stats = %+v, want a broadcast fallback hit", st)
	}
}

func TestAskConnectedStaleRoutedPeersFallBackToBroadcast(t *testing.T) {
	net, ps := buildPeers(t, 3)
	requester, stale, holder := ps[0], ps[1], ps[2]
	blk := block.New(multicodec.Raw, []byte("stale candidate"))
	holder.store.Put(blk)
	ctx := context.Background()
	if _, _, err := requester.sw.Connect(ctx, holder.ident.ID, holder.info.Addrs); err != nil {
		t.Fatal(err)
	}
	// The router's only candidate has departed (churn).
	net.SetOnline(stale.ident.ID, false)
	bs := slowAskEngine(requester)
	bs.SetRouting(&fakeRouting{peers: []wire.PeerInfo{stale.info}, msgs: 1})

	info, st, err := bs.AskConnected(ctx, blk.Cid())
	if err != nil {
		t.Fatalf("stale routed candidate must fail open into the broadcast: %v", err)
	}
	if info.ID != holder.ident.ID {
		t.Errorf("holder = %s", info.ID.Short())
	}
	if !st.Broadcast {
		t.Error("fallback broadcast should have run")
	}
}

func TestAskConnectedDeduplicatesConcurrentBroadcasts(t *testing.T) {
	_, ps := buildPeers(t, 4)
	requester := ps[0]
	ctx := context.Background()
	for _, p := range ps[1:] {
		if _, _, err := requester.sw.Connect(ctx, p.ident.ID, p.info.Addrs); err != nil {
			t.Fatal(err)
		}
	}
	// A dedicated engine with a long opportunistic window keeps the
	// leader in flight while the duplicate callers arrive.
	bs := slowAskEngine(requester)
	missing := cid.Sum(multicodec.Raw, []byte("wanted twice at once"))

	var wg sync.WaitGroup
	var suppressed atomic.Int32
	askOnce := func() {
		defer wg.Done()
		_, st, err := bs.AskConnected(ctx, missing)
		if err != ErrTimeout {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		suppressed.Add(int32(st.Suppressed))
	}
	// The leader first; the duplicates launch only once its flight is
	// registered, so every one of them joins deterministically.
	wg.Add(1)
	go askOnce()
	for {
		bs.askMu.Lock()
		inFlight := len(bs.asks)
		bs.askMu.Unlock()
		if inFlight == 1 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go askOnce()
	}
	wg.Wait()

	sent, supp := bs.MsgStats()
	if sent != 3 {
		t.Errorf("sent %d WANT-HAVEs, want one broadcast of 3 with duplicates joined", sent)
	}
	if supp == 0 || int32(supp) != suppressed.Load() {
		t.Errorf("suppressed = %d (per-call sum %d), want the joined callers' fan-out counted", supp, suppressed.Load())
	}

	// A later ask for the same CID broadcasts again: deduplication is
	// per-in-flight ask, not a cache.
	if _, _, err := bs.AskConnected(ctx, missing); err != ErrTimeout {
		t.Errorf("follow-up ask err = %v", err)
	}
	if sent2, _ := bs.MsgStats(); sent2 != 6 {
		t.Errorf("follow-up ask sent %d total WANT-HAVEs, want 6", sent2)
	}
}

func TestConfirmedSessionSkipsHandshake(t *testing.T) {
	_, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	data := bytes.Repeat([]byte("confirmed dag "), 2000)
	root, err := merkledag.NewBuilder(holder.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	session := requester.bs.NewSession(context.Background(), holder.info).Confirm()
	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	st := session.Stats()
	if st.WantHaves != 0 {
		t.Errorf("confirmed session sent %d WANT-HAVEs, want 0 (discovery already shook hands)", st.WantHaves)
	}
	if st.WantBlocks == 0 {
		t.Error("session should count its WANT-BLOCK transfers")
	}
}

func TestSessionFailsOverViaRouter(t *testing.T) {
	net, ps := buildPeers(t, 3)
	primary, backup, requester := ps[0], ps[1], ps[2]
	data := bytes.Repeat([]byte("replicated dag "), 3000)
	root, err := merkledag.NewBuilder(primary.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merkledag.NewBuilder(backup.store, 4096, 8).Add(data); err != nil {
		t.Fatal(err)
	}
	requester.bs.SetRouting(&fakeRouting{peers: []wire.PeerInfo{primary.info, backup.info}})

	session := requester.bs.NewSession(context.Background(), primary.info)
	// Fetch the root from the primary, then churn it away mid-session.
	if _, err := session.Get(root); err != nil {
		t.Fatalf("first block: %v", err)
	}
	net.SetOnline(primary.ident.ID, false)

	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatalf("assemble after provider churn: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	st := session.Stats()
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want exactly 1 switch to the backup", st.Failovers)
	}
	if len(requester.bs.Wantlist()) != 0 {
		t.Error("wantlist should drain after the session completes")
	}
}

func TestSessionFailoverAnchorsOnRoot(t *testing.T) {
	// Provider records exist for DAG roots only. With the root block
	// already local (a partial earlier retrieval), the first network
	// fetch is a mid-DAG block — fail-over must still look up providers
	// by the root the session was created for.
	net, ps := buildPeers(t, 3)
	primary, backup, requester := ps[0], ps[1], ps[2]
	data := bytes.Repeat([]byte("anchored dag "), 3000)
	root, err := merkledag.NewBuilder(primary.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merkledag.NewBuilder(backup.store, 4096, 8).Add(data); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The root block is already local; its children are not.
	if _, err := requester.bs.FetchBlock(ctx, primary.info, root); err != nil {
		t.Fatal(err)
	}
	// The router only knows providers for the root CID.
	requester.bs.SetRouting(&fakeRouting{peers: []wire.PeerInfo{backup.info}, onlyKey: root.Key()})
	net.SetOnline(primary.ident.ID, false)

	session := requester.bs.NewSession(ctx, primary.info).ForRoot(root)
	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatalf("assemble with root-anchored fail-over: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	if st := session.Stats(); st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
}

func TestSessionFailoverWithoutRouterStillFails(t *testing.T) {
	net, ps := buildPeers(t, 2)
	holder, requester := ps[0], ps[1]
	blk := block.New(multicodec.Raw, []byte("gone"))
	holder.store.Put(blk)
	net.SetOnline(holder.ident.ID, false)
	session := requester.bs.NewSession(context.Background(), holder.info)
	if _, err := session.Get(blk.Cid()); err == nil {
		t.Error("session with no router and a dead provider must fail")
	}
}

func TestWantlistTracking(t *testing.T) {
	_, ps := buildPeers(t, 2)
	if len(ps[0].bs.Wantlist()) != 0 {
		t.Error("wantlist should start empty")
	}
	blk := block.New(multicodec.Raw, []byte("tracked"))
	ps[1].store.Put(blk)
	if _, err := ps[0].bs.FetchBlock(context.Background(), ps[1].info, blk.Cid()); err != nil {
		t.Fatal(err)
	}
	if len(ps[0].bs.Wantlist()) != 0 {
		t.Error("wantlist should be empty after a completed fetch")
	}
}

// TestAskStatsConsultMiss checks the consult-outcome flag callers hand
// forward to skip the duplicate one-hop FindProviders probe: set on a
// consult miss (error or zero candidates), clear when the router fed
// candidates, clear with no router at all.
func TestAskStatsConsultMiss(t *testing.T) {
	_, ps := buildPeers(t, 2)
	requester, holder := ps[0], ps[1]
	blk := block.New(multicodec.Raw, []byte("consult miss flag"))
	holder.store.Put(blk)
	ctx := context.Background()
	if _, _, err := requester.sw.Connect(ctx, holder.ident.ID, holder.info.Addrs); err != nil {
		t.Fatal(err)
	}

	// Router declines: miss recorded, broadcast still finds the holder.
	bs := slowAskEngine(requester)
	bs.SetRouting(&fakeRouting{err: errors.New("no candidates")})
	if _, st, err := bs.AskConnected(ctx, blk.Cid()); err != nil || !st.ConsultMiss {
		t.Errorf("declining router: err=%v stats=%+v, want a hit with ConsultMiss", err, st)
	}

	// Router answers zero peers: also a miss.
	bs.SetRouting(&fakeRouting{})
	if _, st, err := bs.AskConnected(ctx, blk.Cid()); err != nil || !st.ConsultMiss {
		t.Errorf("empty router: err=%v stats=%+v, want a hit with ConsultMiss", err, st)
	}

	// Router feeds the holder: no miss.
	bs.SetRouting(&fakeRouting{peers: []wire.PeerInfo{holder.info}, msgs: 1})
	if _, st, err := bs.AskConnected(ctx, blk.Cid()); err != nil || st.ConsultMiss {
		t.Errorf("feeding router: err=%v stats=%+v, want a routed hit without ConsultMiss", err, st)
	}

	// No router configured: nothing was consulted, nothing missed.
	bs.SetRouting(nil)
	if _, st, err := bs.AskConnected(ctx, blk.Cid()); err != nil || st.ConsultMiss {
		t.Errorf("routerless: err=%v stats=%+v, want a broadcast hit without ConsultMiss", err, st)
	}
}

func TestSessionFailsOverViaStreamedCandidates(t *testing.T) {
	// Fail-over candidates supplied by the streaming provider lookup are
	// tried before (and here, instead of) a router consult: no session
	// routing is installed at all, and the switch must cost zero routing
	// RPCs.
	net, ps := buildPeers(t, 3)
	primary, backup, requester := ps[0], ps[1], ps[2]
	data := bytes.Repeat([]byte("streamed dag "), 3000)
	root, err := merkledag.NewBuilder(primary.store, 4096, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merkledag.NewBuilder(backup.store, 4096, 8).Add(data); err != nil {
		t.Fatal(err)
	}

	session := requester.bs.NewSession(context.Background(), primary.info).
		WithCandidates(func() []wire.PeerInfo { return []wire.PeerInfo{backup.info} })
	if _, err := session.Get(root); err != nil {
		t.Fatalf("first block: %v", err)
	}
	net.SetOnline(primary.ident.ID, false)

	got, err := merkledag.Assemble(session, root)
	if err != nil {
		t.Fatalf("assemble with streamed candidates: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("assembled content mismatch")
	}
	st := session.Stats()
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1 switch to the streamed candidate", st.Failovers)
	}
	if st.RoutingMsgs != 0 {
		t.Errorf("routing msgs = %d, want 0 — the candidate was already paid for", st.RoutingMsgs)
	}
}
