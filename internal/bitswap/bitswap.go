// Package bitswap implements the chunk-exchange protocol of §3.2:
// requests travel as WANT-HAVE messages, holders answer HAVE (IHAVE),
// the requestor follows with WANT-BLOCK and the block terminates the
// exchange. Bitswap is also used opportunistically before any DHT
// lookup: the requestor asks all already-connected peers for the CID
// and falls back to the DHT after a 1 s timeout.
package bitswap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/wire"
)

// DefaultOpportunisticTimeout is the §3.2 Bitswap broadcast timeout
// before falling back to the DHT.
const DefaultOpportunisticTimeout = time.Second

// Config tunes the protocol.
type Config struct {
	// OpportunisticTimeout bounds the ask-connected-peers phase.
	OpportunisticTimeout time.Duration
	// Base compresses simulated time.
	Base simtime.Base
}

func (c Config) withDefaults() Config {
	if c.OpportunisticTimeout <= 0 {
		c.OpportunisticTimeout = DefaultOpportunisticTimeout
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	return c
}

// Bitswap serves and fetches blocks for one peer.
type Bitswap struct {
	cfg   Config
	sw    *swarm.Swarm
	store block.Store

	mu       sync.Mutex
	wantlist map[string]struct{} // CID keys currently wanted

	statsMu     sync.Mutex
	blocksSent  int
	blocksRecv  int
	bytesSent   int64
	bytesRecv   int64
	havesServed int
}

// Errors returned by this package.
var (
	ErrNotFound = errors.New("bitswap: peer does not have the block")
	ErrTimeout  = errors.New("bitswap: opportunistic discovery timed out")
)

// New creates a Bitswap engine over the swarm and blockstore.
func New(sw *swarm.Swarm, store block.Store, cfg Config) *Bitswap {
	return &Bitswap{
		cfg:      cfg.withDefaults(),
		sw:       sw,
		store:    store,
		wantlist: make(map[string]struct{}),
	}
}

// Wantlist returns the CID keys currently wanted, for diagnostics.
func (b *Bitswap) Wantlist() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.wantlist))
	for k := range b.wantlist {
		out = append(out, k)
	}
	return out
}

func (b *Bitswap) addWant(c cid.Cid) {
	b.mu.Lock()
	b.wantlist[c.Key()] = struct{}{}
	b.mu.Unlock()
}

func (b *Bitswap) dropWant(c cid.Cid) {
	b.mu.Lock()
	delete(b.wantlist, c.Key())
	b.mu.Unlock()
}

// Stats reports cumulative exchange counters.
func (b *Bitswap) Stats() (blocksSent, blocksRecv int, bytesSent, bytesRecv int64) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.blocksSent, b.blocksRecv, b.bytesSent, b.bytesRecv
}

// HandleMessage serves inbound Bitswap requests (the provider side of
// Figure 3 step 6).
func (b *Bitswap) HandleMessage(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
	c, err := cid.FromBytes(req.Key)
	if err != nil {
		return wire.ErrorMessage("bitswap: bad cid: %v", err)
	}
	switch req.Type {
	case wire.TWantHave:
		if b.store.Has(c) {
			b.statsMu.Lock()
			b.havesServed++
			b.statsMu.Unlock()
			return wire.Message{Type: wire.THave, Key: req.Key}
		}
		return wire.Message{Type: wire.TDontHave, Key: req.Key}
	case wire.TWantBlock:
		blk, err := b.store.Get(c)
		if err != nil {
			return wire.Message{Type: wire.TDontHave, Key: req.Key}
		}
		b.statsMu.Lock()
		b.blocksSent++
		b.bytesSent += int64(blk.Size())
		b.statsMu.Unlock()
		return wire.Message{Type: wire.TBlock, Key: req.Key, BlockData: blk.Data()}
	}
	return wire.ErrorMessage("bitswap: unhandled %s", req.Type)
}

// AskConnected broadcasts WANT-HAVE for c to all connected peers and
// returns the first peer that answers HAVE within the opportunistic
// timeout — step 4 of Figure 3. The returned duration is the simulated
// time spent (the full timeout on failure, the §6.2 "extra 1 s").
func (b *Bitswap) AskConnected(ctx context.Context, c cid.Cid) (peer.ID, time.Duration, error) {
	start := time.Now()
	peers := b.sw.ConnectedPeers()
	if len(peers) == 0 {
		// Nobody to ask: still honour the timeout semantics by waiting
		// nothing — the DHT fallback proceeds immediately.
		return "", 0, ErrTimeout
	}
	actx, cancel := b.cfg.Base.WithTimeout(ctx, b.cfg.OpportunisticTimeout)
	defer cancel()

	found := make(chan peer.ID, len(peers))
	for _, id := range peers {
		id := id
		go func() {
			resp, err := b.sw.Request(actx, id, nil, wire.Message{Type: wire.TWantHave, Key: c.Bytes()})
			if err == nil && resp.Type == wire.THave {
				found <- id
			}
		}()
	}
	select {
	case id := <-found:
		return id, b.cfg.Base.SimSince(start), nil
	case <-actx.Done():
		return "", b.cfg.Base.SimSince(start), ErrTimeout
	}
}

// FetchBlock retrieves one block from a specific peer using the full
// WANT-HAVE / IHAVE / WANT-BLOCK / BLOCK exchange, verifies it against
// its CID and stores it locally.
func (b *Bitswap) FetchBlock(ctx context.Context, from wire.PeerInfo, c cid.Cid) (block.Block, error) {
	b.addWant(c)
	defer b.dropWant(c)

	resp, err := b.sw.Request(ctx, from.ID, from.Addrs, wire.Message{Type: wire.TWantHave, Key: c.Bytes()})
	if err != nil {
		return block.Block{}, err
	}
	if resp.Type != wire.THave {
		return block.Block{}, ErrNotFound
	}
	return b.fetchDirect(ctx, from, c)
}

// fetchDirect sends WANT-BLOCK without the preceding WANT-HAVE, used
// for the remaining blocks of a DAG once the session is established.
func (b *Bitswap) fetchDirect(ctx context.Context, from wire.PeerInfo, c cid.Cid) (block.Block, error) {
	resp, err := b.sw.Request(ctx, from.ID, from.Addrs, wire.Message{Type: wire.TWantBlock, Key: c.Bytes()})
	if err != nil {
		return block.Block{}, err
	}
	if resp.Type != wire.TBlock {
		return block.Block{}, ErrNotFound
	}
	blk, err := block.NewWithCid(c, resp.BlockData)
	if err != nil {
		// Self-certification (§2.1): data not matching the CID is
		// discarded, whoever served it.
		return block.Block{}, fmt.Errorf("bitswap: peer %s served corrupt block: %w", from.ID.Short(), err)
	}
	if err := b.store.Put(blk); err != nil {
		return block.Block{}, err
	}
	b.statsMu.Lock()
	b.blocksRecv++
	b.bytesRecv += int64(blk.Size())
	b.statsMu.Unlock()
	return blk, nil
}

// Session binds Bitswap to one providing peer and implements
// merkledag.Fetcher, so a whole DAG can be assembled from that peer
// while populating the local store (making this node a future provider,
// §3.1).
type Session struct {
	bs   *Bitswap
	from wire.PeerInfo
	ctx  context.Context

	mu      sync.Mutex
	started bool
}

// NewSession creates a fetch session bound to the providing peer.
func (b *Bitswap) NewSession(ctx context.Context, from wire.PeerInfo) *Session {
	return &Session{bs: b, from: from, ctx: ctx}
}

// Get implements merkledag.Fetcher: local store first, then the remote
// peer. The first remote fetch performs the full WANT-HAVE handshake;
// Get is safe for the concurrent sibling fetches of
// merkledag.AssembleConcurrent.
func (s *Session) Get(c cid.Cid) (block.Block, error) {
	if blk, err := s.bs.store.Get(c); err == nil {
		return blk, nil
	}
	s.mu.Lock()
	first := !s.started
	s.started = true
	s.mu.Unlock()
	if first {
		return s.bs.FetchBlock(s.ctx, s.from, c)
	}
	return s.bs.fetchDirect(s.ctx, s.from, c)
}
