// Package bitswap implements the chunk-exchange protocol of §3.2:
// requests travel as WANT-HAVE messages, holders answer HAVE (IHAVE),
// the requestor follows with WANT-BLOCK and the block terminates the
// exchange. Bitswap is also used opportunistically before any DHT
// lookup: the requestor asks already-connected peers for the CID and
// falls back to the DHT after a 1 s timeout — unless a session router
// (internal/routing) supplies known providers, in which case the
// WANT-HAVEs go to those candidates directly and the blind broadcast
// is skipped.
package bitswap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// DefaultOpportunisticTimeout is the §3.2 Bitswap broadcast timeout
// before falling back to the DHT.
const DefaultOpportunisticTimeout = time.Second

// DefaultSessionPeerTarget bounds how many routed candidates one
// session-peer consult asks for (matching the walk's α so targeted
// WANT-HAVE counts compare fairly with lookup RPC counts).
const DefaultSessionPeerTarget = 3

// SessionRouting is the session-facing slice of the routing.Router
// surface (internal/routing implementations satisfy it structurally):
// SessionPeers supplies candidate holders for a CID without a
// multi-hop walk, and WantBroadcast is the policy deciding whether the
// opportunistic broadcast still runs alongside routed candidates.
type SessionRouting interface {
	SessionPeers(ctx context.Context, c cid.Cid, n int) ([]wire.PeerInfo, int, error)
	WantBroadcast() bool
}

// Config tunes the protocol.
type Config struct {
	// OpportunisticTimeout bounds the ask-connected-peers phase.
	OpportunisticTimeout time.Duration
	// SessionPeerTarget bounds routed candidates per consult (default 3).
	SessionPeerTarget int
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Time is the unified time surface the ask waves run on; nil
	// derives it from Base.
	Time simtime.Source
}

func (c Config) withDefaults() Config {
	if c.OpportunisticTimeout <= 0 {
		c.OpportunisticTimeout = DefaultOpportunisticTimeout
	}
	if c.SessionPeerTarget <= 0 {
		c.SessionPeerTarget = DefaultSessionPeerTarget
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, nil)
	}
	return c
}

// Bitswap serves and fetches blocks for one peer.
type Bitswap struct {
	cfg   Config
	sw    *swarm.Swarm
	store block.Store

	mu       sync.Mutex
	wantlist map[string]struct{} // CID keys currently wanted

	routingMu sync.RWMutex
	routing   SessionRouting

	askMu sync.Mutex
	asks  map[string]*askFlight // CID key -> in-flight discovery

	statsMu        sync.Mutex
	blocksSent     int
	blocksRecv     int
	bytesSent      int64
	bytesRecv      int64
	havesServed    int
	wantHavesSent  int
	dupsSuppressed int
}

// Errors returned by this package.
var (
	ErrNotFound = errors.New("bitswap: peer does not have the block")
	ErrTimeout  = errors.New("bitswap: opportunistic discovery timed out")
)

// New creates a Bitswap engine over the swarm and blockstore.
func New(sw *swarm.Swarm, store block.Store, cfg Config) *Bitswap {
	return &Bitswap{
		cfg:      cfg.withDefaults(),
		sw:       sw,
		store:    store,
		wantlist: make(map[string]struct{}),
		asks:     make(map[string]*askFlight),
	}
}

// SessionPeerTarget reports how many candidate providers one session
// consult (or fail-over) asks for — callers sizing fail-over candidate
// pools match it.
func (b *Bitswap) SessionPeerTarget() int { return b.cfg.SessionPeerTarget }

// SetRouting installs the session router consulted by AskConnected and
// session fail-over. Passing nil restores the pure broadcast behaviour.
func (b *Bitswap) SetRouting(r SessionRouting) {
	b.routingMu.Lock()
	b.routing = r
	b.routingMu.Unlock()
}

func (b *Bitswap) sessionRouting() SessionRouting {
	b.routingMu.RLock()
	defer b.routingMu.RUnlock()
	return b.routing
}

// Wantlist returns the CID keys currently wanted, for diagnostics.
func (b *Bitswap) Wantlist() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.wantlist))
	for k := range b.wantlist {
		out = append(out, k)
	}
	return out
}

func (b *Bitswap) addWant(c cid.Cid) {
	b.mu.Lock()
	b.wantlist[c.Key()] = struct{}{}
	b.mu.Unlock()
}

func (b *Bitswap) dropWant(c cid.Cid) {
	b.mu.Lock()
	delete(b.wantlist, c.Key())
	b.mu.Unlock()
}

// Stats reports cumulative exchange counters.
func (b *Bitswap) Stats() (blocksSent, blocksRecv int, bytesSent, bytesRecv int64) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.blocksSent, b.blocksRecv, b.bytesSent, b.bytesRecv
}

// MsgStats reports cumulative WANT-HAVE accounting: messages actually
// sent and the duplicate broadcast fan-out suppressed by the in-flight
// ask deduplication.
func (b *Bitswap) MsgStats() (wantHavesSent, dupsSuppressed int) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.wantHavesSent, b.dupsSuppressed
}

func (b *Bitswap) countWantHaves(n int) {
	b.statsMu.Lock()
	b.wantHavesSent += n
	b.statsMu.Unlock()
}

// HandleMessage serves inbound Bitswap requests (the provider side of
// Figure 3 step 6).
func (b *Bitswap) HandleMessage(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
	c, err := cid.FromBytes(req.Key)
	if err != nil {
		return wire.ErrorMessage("bitswap: bad cid: %v", err)
	}
	switch req.Type {
	case wire.TWantHave:
		if b.store.Has(c) {
			b.statsMu.Lock()
			b.havesServed++
			b.statsMu.Unlock()
			return wire.Message{Type: wire.THave, Key: req.Key}
		}
		return wire.Message{Type: wire.TDontHave, Key: req.Key}
	case wire.TWantBlock:
		blk, err := b.store.Get(c)
		if err != nil {
			return wire.Message{Type: wire.TDontHave, Key: req.Key}
		}
		b.statsMu.Lock()
		b.blocksSent++
		b.bytesSent += int64(blk.Size())
		b.statsMu.Unlock()
		return wire.Message{Type: wire.TBlock, Key: req.Key, BlockData: blk.Data()}
	}
	return wire.ErrorMessage("bitswap: unhandled %s", req.Type)
}

// AskStats instruments one session-peer discovery (AskConnected).
type AskStats struct {
	// Duration is the simulated time the discovery took (the full
	// opportunistic timeout on a broadcast miss, the §6.2 "extra 1 s").
	Duration time.Duration
	// Routed reports that the winning peer came from the session
	// router's candidates rather than the blind broadcast.
	Routed bool
	// Broadcast reports that the opportunistic broadcast ran.
	Broadcast bool
	// RoutingMsgs counts the routing RPCs the SessionPeers consult
	// issued (0 for the walk-based baseline, which declines for free).
	RoutingMsgs int
	// WantHaves counts WANT-HAVE messages this discovery sent.
	WantHaves int
	// Suppressed counts the duplicate broadcast fan-out this call
	// avoided by joining an in-flight ask for the same CID.
	Suppressed int
	// ConsultMiss reports that the session router was consulted and had
	// no candidates. Callers hand it forward (routing.WithSessionMiss)
	// so a follow-up FindProviders skips re-probing the same one-hop
	// neighbourhood.
	ConsultMiss bool
}

// askFlight is one in-flight AskConnected, shared by duplicate callers.
type askFlight struct {
	done      chan struct{}
	info      wire.PeerInfo
	st        AskStats
	err       error
	cancelled bool // the leader's caller cancelled mid-flight
}

// AskConnected discovers a session peer for c — step 4 of Figure 3,
// routed through the configured session router. Routed candidates get
// targeted WANT-HAVEs (skipping the blind broadcast when the router's
// policy says so); without candidates, or when they all turn out
// stale, the opportunistic broadcast to connected peers runs as
// deployed. Concurrent asks for the same CID join the in-flight
// discovery instead of broadcasting twice.
func (b *Bitswap) AskConnected(ctx context.Context, c cid.Cid) (wire.PeerInfo, AskStats, error) {
	start := b.cfg.Time.Stamp()
	key := c.Key()
	b.askMu.Lock()
	if fl, ok := b.asks[key]; ok {
		b.askMu.Unlock()
		return b.joinAsk(ctx, c, fl, start)
	}
	fl := &askFlight{done: make(chan struct{})}
	b.asks[key] = fl
	b.askMu.Unlock()

	fl.info, fl.st, fl.err = b.ask(ctx, c)
	fl.cancelled = fl.err != nil && ctx.Err() != nil
	b.askMu.Lock()
	delete(b.asks, key)
	b.askMu.Unlock()
	close(fl.done)
	return fl.info, fl.st, fl.err
}

// joinAsk waits on an in-flight discovery for the same CID instead of
// launching a duplicate. The suppressed count is the fan-out the
// duplicate would have sent — what the leader actually sent, targeted
// or broadcast — so the accounting stays honest in routed setups.
func (b *Bitswap) joinAsk(ctx context.Context, c cid.Cid, fl *askFlight, start time.Time) (wire.PeerInfo, AskStats, error) {
	src := b.cfg.Time
	if err := simtime.AwaitClosed(ctx, src, fl.done); err != nil {
		return wire.PeerInfo{}, AskStats{Duration: src.Since(start)}, err
	}
	if fl.cancelled && ctx.Err() == nil {
		// The leader's caller cancelled mid-flight; this caller is
		// still live, so rerun the discovery rather than inheriting
		// the cancellation.
		return b.AskConnected(ctx, c)
	}
	suppressed := fl.st.WantHaves
	if suppressed == 0 {
		suppressed = 1 // at minimum the duplicate ask itself
	}
	b.statsMu.Lock()
	b.dupsSuppressed += suppressed
	b.statsMu.Unlock()
	st := AskStats{
		Duration:    src.Since(start),
		Routed:      fl.st.Routed,
		Broadcast:   fl.st.Broadcast,
		Suppressed:  suppressed,
		ConsultMiss: fl.st.ConsultMiss,
	}
	return fl.info, st, fl.err
}

// ask runs one deduplicated session-peer discovery.
func (b *Bitswap) ask(ctx context.Context, c cid.Cid) (wire.PeerInfo, AskStats, error) {
	start := b.cfg.Time.Stamp()
	var st AskStats
	ctx, asp := telemetry.StartSpan(ctx, "bitswap-ask")
	defer func() {
		asp.Annotate("routed", fmt.Sprint(st.Routed))
		asp.Annotate("consult-miss", fmt.Sprint(st.ConsultMiss))
		asp.End()
	}()

	var routed []wire.PeerInfo
	broadcast := true
	if r := b.sessionRouting(); r != nil {
		peers, msgs, err := r.SessionPeers(ctx, c, b.cfg.SessionPeerTarget)
		st.RoutingMsgs = msgs
		if err == nil && len(peers) > 0 {
			routed = peers
			broadcast = r.WantBroadcast()
		} else {
			st.ConsultMiss = true
		}
	}

	info, asked, ok := b.askWave(ctx, c, routed, broadcast, nil, &st)
	if ok {
		st.Duration = b.cfg.Time.Since(start)
		return info, st, nil
	}
	// Routed candidates all stale and the broadcast was skipped: fail
	// open into the opportunistic broadcast before giving up, so a
	// router answering with dead (or zero) peers never makes retrieval
	// worse than the deployed behaviour. Peers the first wave already
	// asked are excluded — they answered once.
	if len(routed) > 0 && !broadcast {
		if info, _, ok := b.askWave(ctx, c, nil, true, asked, &st); ok {
			st.Duration = b.cfg.Time.Since(start)
			return info, st, nil
		}
	}
	st.Duration = b.cfg.Time.Since(start)
	return wire.PeerInfo{}, st, ErrTimeout
}

// askWave sends WANT-HAVE to the routed candidates plus (when broadcast
// is set) every connected peer, returning the first that answers HAVE
// along with the set of peers asked so far (for chaining a fallback
// wave without duplicate sends). A routed-candidates-only wave returns
// as soon as every target has answered; a broadcast miss waits out the
// full opportunistic timeout, preserving the deployed fallback
// semantics (§6.2).
func (b *Bitswap) askWave(ctx context.Context, c cid.Cid, routed []wire.PeerInfo, broadcast bool, seen map[peer.ID]bool, st *AskStats) (wire.PeerInfo, map[peer.ID]bool, bool) {
	targets := make([]wire.PeerInfo, 0, len(routed))
	if seen == nil {
		seen = make(map[peer.ID]bool, len(routed))
	}
	fromRouter := make(map[peer.ID]bool, len(routed))
	for _, pi := range routed {
		if pi.ID == b.sw.Local() || seen[pi.ID] {
			continue
		}
		seen[pi.ID] = true
		fromRouter[pi.ID] = true
		targets = append(targets, pi)
	}
	broadcastRan := false
	if broadcast {
		for _, id := range b.sw.ConnectedPeers() {
			if seen[id] {
				continue
			}
			seen[id] = true
			targets = append(targets, wire.PeerInfo{ID: id})
			broadcastRan = true
		}
		st.Broadcast = st.Broadcast || broadcastRan
	}
	if len(targets) == 0 {
		return wire.PeerInfo{}, seen, false
	}
	st.WantHaves += len(targets)
	b.countWantHaves(len(targets))

	// The wave is one trace phase; the per-target WANT-HAVE RPCs attach
	// as events through the derived contexts.
	wctx, wsp := telemetry.StartSpan(ctx, "want-wave",
		telemetry.A("targets", fmt.Sprint(len(targets))),
		telemetry.A("broadcast", fmt.Sprint(broadcastRan)))
	defer wsp.End()
	src := b.cfg.Time
	actx, cancel := src.WithTimeout(wctx, b.cfg.OpportunisticTimeout)
	defer cancel()
	found := make(chan wire.PeerInfo, len(targets))
	g := simtime.NewGroup(src)
	for _, pi := range targets {
		pi := pi
		g.Go(actx, func(gctx context.Context) {
			resp, err := b.sw.Request(gctx, pi.ID, pi.Addrs, wire.Message{Type: wire.TWantHave, Key: c.Bytes()})
			if err == nil && resp.Type == wire.THave {
				found <- pi
			}
		})
	}

	win := func(pi wire.PeerInfo) (wire.PeerInfo, map[peer.ID]bool, bool) {
		st.Routed = fromRouter[pi.ID]
		wsp.Event("have", telemetry.A("peer", pi.ID.String()),
			telemetry.A("routed", fmt.Sprint(fromRouter[pi.ID])))
		return pi, seen, true
	}
	if s := simtime.SchedulerOf(src); s != nil {
		// Event-driven wait: wake on the first HAVE, on every target
		// having answered, or on the opportunistic timeout.
		err := s.Await(actx, func() bool { return len(found) > 0 || g.Idle() })
		select {
		case pi := <-found:
			return win(pi)
		default:
		}
		if err == nil && broadcastRan && ctx.Err() == nil {
			// The deployed client has no all-answered signal: a
			// broadcast miss pays the full opportunistic timeout
			// before the DHT fallback (§3.2, §6.2).
			s.Await(actx, func() bool { return false })
		}
		return wire.PeerInfo{}, seen, false
	}
	allDone := make(chan struct{})
	go func() { g.Wait(context.Background()); close(allDone) }()
	select {
	case pi := <-found:
		return win(pi)
	case <-allDone:
		// Every target answered; a HAVE may still sit in the buffer.
		select {
		case pi := <-found:
			return win(pi)
		default:
		}
		if broadcastRan && ctx.Err() == nil {
			// The deployed client has no all-answered signal: a
			// broadcast miss pays the full opportunistic timeout
			// before the DHT fallback (§3.2, §6.2).
			<-actx.Done()
		}
		return wire.PeerInfo{}, seen, false
	case <-actx.Done():
		select {
		case pi := <-found:
			return win(pi)
		default:
		}
		return wire.PeerInfo{}, seen, false
	}
}

// FetchBlock retrieves one block from a specific peer using the full
// WANT-HAVE / IHAVE / WANT-BLOCK / BLOCK exchange, verifies it against
// its CID and stores it locally.
func (b *Bitswap) FetchBlock(ctx context.Context, from wire.PeerInfo, c cid.Cid) (block.Block, error) {
	b.addWant(c)
	defer b.dropWant(c)

	if err := b.wantHave(ctx, from, c); err != nil {
		return block.Block{}, err
	}
	return b.fetchDirect(ctx, from, c)
}

// wantHave runs the WANT-HAVE handshake against one peer: ErrNotFound
// unless it answers HAVE. Shared by FetchBlock and session fetches so
// the protocol sequence and the message counting live in one place.
func (b *Bitswap) wantHave(ctx context.Context, from wire.PeerInfo, c cid.Cid) error {
	b.countWantHaves(1)
	resp, err := b.sw.Request(ctx, from.ID, from.Addrs, wire.Message{Type: wire.TWantHave, Key: c.Bytes()})
	if err != nil {
		return err
	}
	if resp.Type != wire.THave {
		return ErrNotFound
	}
	return nil
}

// fetchDirect sends WANT-BLOCK without the preceding WANT-HAVE, used
// for the remaining blocks of a DAG once the session is established.
func (b *Bitswap) fetchDirect(ctx context.Context, from wire.PeerInfo, c cid.Cid) (block.Block, error) {
	resp, err := b.sw.Request(ctx, from.ID, from.Addrs, wire.Message{Type: wire.TWantBlock, Key: c.Bytes()})
	if err != nil {
		return block.Block{}, err
	}
	if resp.Type != wire.TBlock {
		return block.Block{}, ErrNotFound
	}
	blk, err := block.NewWithCid(c, resp.BlockData)
	if err != nil {
		// Self-certification (§2.1): data not matching the CID is
		// discarded, whoever served it.
		return block.Block{}, fmt.Errorf("bitswap: peer %s served corrupt block: %w", from.ID.Short(), err)
	}
	if err := b.store.Put(blk); err != nil {
		return block.Block{}, err
	}
	b.statsMu.Lock()
	b.blocksRecv++
	b.bytesRecv += int64(blk.Size())
	b.statsMu.Unlock()
	return blk, nil
}

// SessionStats counts one session's Bitswap message usage, the
// per-session accounting core.RetrieveResult surfaces next to the
// routing lookup messages.
type SessionStats struct {
	WantHaves   int // WANT-HAVE handshakes this session sent
	WantBlocks  int // WANT-BLOCK transfer messages
	RoutingMsgs int // routing RPCs spent discovering fail-over providers
	Failovers   int // provider switches after mid-session failures
}

// Session binds Bitswap to one providing peer and implements
// merkledag.Fetcher, so a whole DAG can be assembled from that peer
// while populating the local store (making this node a future provider,
// §3.1). When the bound provider fails mid-session — churn — the
// session consults the configured router for an alternate provider and
// fails over instead of aborting the DAG.
type Session struct {
	bs  *Bitswap
	ctx context.Context

	mu        sync.Mutex
	from      wire.PeerInfo
	anchor    cid.Cid // first-requested CID: the DAG root provider records point at
	anchorSet bool
	started   bool
	confirmed bool
	tried     map[peer.ID]bool
	stats     SessionStats
	// candidates supplies alternate providers discovered by the
	// streaming lookup (core.Retrieve drains the provider stream into
	// it while the fetch runs); fail-over tries them before spending
	// routing RPCs on a fresh consult.
	candidates func() []wire.PeerInfo

	foMu sync.Mutex // serializes fail-over provider switches
}

// NewSession creates a fetch session bound to the providing peer.
func (b *Bitswap) NewSession(ctx context.Context, from wire.PeerInfo) *Session {
	return &Session{bs: b, from: from, ctx: ctx, tried: make(map[peer.ID]bool)}
}

// Confirm records that the provider already answered HAVE during
// discovery (a routed or broadcast hit), so the session skips the
// redundant WANT-HAVE handshake and starts with WANT-BLOCK directly.
func (s *Session) Confirm() *Session {
	s.mu.Lock()
	s.confirmed = true
	s.mu.Unlock()
	return s
}

// WithCandidates installs a supplier of alternate providers — the
// fail-over candidates a streaming provider lookup keeps yielding
// after the first provider won. It is consulted at fail-over time (not
// copied), so candidates that arrive while the DAG fetch is already
// running still count.
func (s *Session) WithCandidates(fn func() []wire.PeerInfo) *Session {
	s.mu.Lock()
	s.candidates = fn
	s.mu.Unlock()
	return s
}

// ForRoot pins the session's fail-over anchor to the DAG root being
// assembled — the CID provider records exist for. Without it the
// anchor defaults to the first CID that misses the local store, which
// is a mid-DAG block when a partial earlier retrieval left the root
// cached.
func (s *Session) ForRoot(root cid.Cid) *Session {
	s.mu.Lock()
	s.anchor, s.anchorSet = root, true
	s.mu.Unlock()
	return s
}

// Stats returns the session's message accounting so far.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Session) addStats(d SessionStats) {
	s.mu.Lock()
	s.stats.WantHaves += d.WantHaves
	s.stats.WantBlocks += d.WantBlocks
	s.stats.RoutingMsgs += d.RoutingMsgs
	s.stats.Failovers += d.Failovers
	s.mu.Unlock()
}

// Get implements merkledag.Fetcher: local store first, then the remote
// peer. The first remote fetch performs the WANT-HAVE handshake unless
// discovery already confirmed the provider; Get is safe for the
// concurrent sibling fetches of merkledag.AssembleConcurrent.
func (s *Session) Get(c cid.Cid) (block.Block, error) {
	if blk, err := s.bs.store.Get(c); err == nil {
		return blk, nil
	}
	s.bs.addWant(c)
	defer s.bs.dropWant(c)

	s.mu.Lock()
	if !s.anchorSet {
		s.anchor, s.anchorSet = c, true
	}
	from := s.from
	handshake := !s.started && !s.confirmed
	s.started = true
	s.mu.Unlock()

	blk, err := s.fetch(s.ctx, from, c, handshake)
	if err == nil {
		return blk, nil
	}
	return s.failover(c, from, err)
}

// fetch runs one block exchange against a specific provider, counting
// the session's messages.
func (s *Session) fetch(ctx context.Context, from wire.PeerInfo, c cid.Cid, handshake bool) (block.Block, error) {
	if handshake {
		s.addStats(SessionStats{WantHaves: 1})
		if err := s.bs.wantHave(ctx, from, c); err != nil {
			return block.Block{}, err
		}
	}
	s.addStats(SessionStats{WantBlocks: 1})
	return s.bs.fetchDirect(ctx, from, c)
}

// failover retries a block against an alternate provider after a
// mid-session failure (churn taking the bound provider offline is the
// common cause): first the fail-over candidates the streaming lookup
// already discovered — they cost zero extra RPCs — then a session
// router consult. Provider records exist for DAG roots, so alternates
// are looked up by the session's anchor CID rather than the failed
// block.
func (s *Session) failover(c cid.Cid, failed wire.PeerInfo, cause error) (block.Block, error) {
	if s.ctx.Err() != nil {
		return block.Block{}, cause
	}
	s.foMu.Lock()
	defer s.foMu.Unlock()
	fctx, fsp := telemetry.StartSpan(s.ctx, "session-failover",
		telemetry.A("failed", failed.ID.String()))
	defer fsp.End()

	s.mu.Lock()
	s.tried[failed.ID] = true
	cur := s.from
	anchor := s.anchor
	candFn := s.candidates
	s.mu.Unlock()
	// Another goroutine may have already switched providers; retry the
	// block against the new binding before spending routing RPCs.
	if cur.ID != failed.ID {
		if blk, err := s.fetch(fctx, cur, c, false); err == nil {
			return blk, nil
		}
		s.mu.Lock()
		s.tried[cur.ID] = true
		s.mu.Unlock()
	}

	// Streamed candidates first: providers the lookup yielded after the
	// winner, already paid for.
	if candFn != nil {
		if blk, err := s.tryAlternates(fctx, c, candFn()); err == nil {
			return blk, nil
		}
	}

	r := s.bs.sessionRouting()
	if r == nil {
		return block.Block{}, cause
	}
	peers, msgs, err := r.SessionPeers(fctx, anchor, s.bs.cfg.SessionPeerTarget)
	s.addStats(SessionStats{RoutingMsgs: msgs})
	if err != nil {
		return block.Block{}, cause
	}
	if blk, err := s.tryAlternates(fctx, c, peers); err == nil {
		return blk, nil
	}
	return block.Block{}, cause
}

// tryAlternates fetches c from the first not-yet-tried peer that
// serves it, rebinding the session on success.
func (s *Session) tryAlternates(ctx context.Context, c cid.Cid, peers []wire.PeerInfo) (block.Block, error) {
	for _, pi := range peers {
		s.mu.Lock()
		dup := s.tried[pi.ID]
		s.mu.Unlock()
		if dup || pi.ID == s.bs.sw.Local() {
			continue
		}
		blk, err := s.fetch(ctx, pi, c, true)
		if err != nil {
			s.mu.Lock()
			s.tried[pi.ID] = true
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.from = pi
		s.stats.Failovers++
		s.mu.Unlock()
		return blk, nil
	}
	return block.Block{}, ErrNotFound
}
