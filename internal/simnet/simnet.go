// Package simnet is the in-process network simulator standing in for
// the live IPFS network and the AWS testbed of §4.3. Peers attach as
// endpoints with a geographic region; message latency follows the
// speed-of-light model of internal/geo plus jitter, processing delay
// and a bandwidth term for block transfers.
//
// Peer behaviour classes reproduce the pathologies the paper measures:
// dead routing-table entries that eat the 5 s dial timeout, and
// websocket-only peers whose handshakes hang for 45 s — the spike
// structure of Figure 9c. A time base (internal/simtime) compresses
// simulated seconds into real milliseconds so experiments replay fast.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Class is a peer behaviour class.
type Class int

// Behaviour classes.
const (
	// Normal peers respond within RTT plus small processing jitter.
	Normal Class = iota
	// Slow peers respond, but each RPC takes seconds — the long
	// responses §6.1 attributes to "less responsive peers".
	Slow
	// DeadDial peers appear in routing tables but are gone: dials eat
	// the 5 s transport timeout (Fig 9c's spike at 5 s).
	DeadDial
	// WSBroken peers accept only websocket transports and their
	// handshake hangs until the 45 s timeout (Fig 9c's spike at 45 s).
	WSBroken
)

// Config tunes the simulator.
type Config struct {
	// Time is the simulator's time source. Under a simtime.Scheduler
	// every dial handshake and RPC becomes a scheduled delivery event —
	// the requester parks on the queue and virtual time jumps to the
	// delivery instant — and jitter is drawn from a deterministic hash
	// instead of the shared rng, so seeded runs replay bit-for-bit
	// regardless of goroutine interleaving. When nil it is derived from
	// Base (legacy real-scaled sleeps).
	Time simtime.Source
	// Base compresses simulated time; simtime.New(0.002) runs 500x
	// faster than real time. Superseded by Time, kept for callers that
	// still think in scale factors.
	Base simtime.Base
	// Seed makes jitter and bandwidth assignment reproducible.
	Seed int64
	// DialTimeout is the simulated TCP/QUIC dial timeout (default 5 s).
	DialTimeout time.Duration
	// WSHandshakeTimeout is the simulated websocket handshake timeout
	// (default 45 s).
	WSHandshakeTimeout time.Duration
	// MeanBandwidth is the mean per-peer upload bandwidth in bytes per
	// simulated second (default 3 MiB/s).
	MeanBandwidth float64
	// Faults is the initial network-wide link-fault profile (loss
	// probability, extra latency, jitter). Adjustable mid-run via
	// Network.SetFaults / SetLinkFaults / Partition.
	Faults FaultProfile
	// DropTimeout is how long a requester waits before concluding a
	// message was lost to link faults — the simulated loss-detection /
	// retransmission timeout (default 5 s, matching the dial timeout).
	DropTimeout time.Duration
	// Retries is the number of automatic retransmits after a detected
	// drop before the request fails with ErrMessageDropped (default 0:
	// the loss surfaces immediately, callers own their retry policy).
	Retries int
}

func (c Config) withDefaults() Config {
	if c.Base.Scale() == 1 && c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WSHandshakeTimeout <= 0 {
		c.WSHandshakeTimeout = 45 * time.Second
	}
	if c.MeanBandwidth <= 0 {
		c.MeanBandwidth = 3 << 20
	}
	if c.DropTimeout <= 0 {
		c.DropTimeout = 5 * time.Second
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, nil)
	}
	return c
}

// Network is a simulated network holding all attached endpoints.
type Network struct {
	cfg Config
	// det selects hash-derived jitter over the shared rng: set when the
	// time source is a discrete-event scheduler, where draw order must
	// not depend on which goroutine reaches the rng first.
	det bool

	mu    sync.RWMutex
	nodes map[peer.ID]*node
	rngMu sync.Mutex
	rng   *rand.Rand

	// Fault state: the network default profile, per-link overrides and
	// the current regional partition. Mutable mid-run (the scenario
	// engine schedules transitions as simtime events).
	faultMu    sync.RWMutex
	faults     FaultProfile
	linkFaults map[linkKey]FaultProfile
	partition  map[geo.Region]bool

	// Stats counters (atomic under mu for simplicity).
	statsMu      sync.Mutex
	requests     int64
	dials        int64
	failures     int64
	dropped      int64
	retried      int64
	byCategory   map[transport.RPCCategory]int64
	droppedByCat map[transport.RPCCategory]int64
}

type node struct {
	id       peer.ID
	region   geo.Region
	class    Class
	addr     multiaddr.Multiaddr
	bwBps    float64
	online   bool
	dialable bool

	mu      sync.RWMutex
	handler transport.Handler
	closed  bool
	// allowFrom holds peers whose dials succeed despite this node being
	// undialable: when a NAT'd node dials out, the NAT mapping lets the
	// remote end connect back (the mechanism relays and AutoNAT rely
	// on, §2.2–2.3).
	allowFrom map[peer.ID]bool
}

// New creates an empty simulated network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:          cfg,
		det:          simtime.SchedulerOf(cfg.Time) != nil,
		nodes:        make(map[peer.ID]*node),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		faults:       cfg.Faults,
		byCategory:   make(map[transport.RPCCategory]int64),
		droppedByCat: make(map[transport.RPCCategory]int64),
	}
}

// Base returns the simulator's time base.
func (n *Network) Base() simtime.Base { return n.cfg.Base }

// Time returns the simulator's time source.
func (n *Network) Time() simtime.Source { return n.cfg.Time }

// NodeOpts configures one attached peer.
type NodeOpts struct {
	Region   geo.Region
	Class    Class
	Dialable bool
	// BandwidthBps overrides the sampled upload bandwidth when > 0.
	BandwidthBps float64
}

// AddNode attaches a peer and returns its endpoint. The synthetic
// multiaddress encodes a unique simulated IP.
func (n *Network) AddNode(id peer.ID, opts NodeOpts) transport.Endpoint {
	n.rngMu.Lock()
	jbw := n.cfg.MeanBandwidth * (0.4 + 1.2*n.rng.Float64())
	ipA, ipB, ipC := 10+n.rng.Intn(200), n.rng.Intn(256), n.rng.Intn(256)
	n.rngMu.Unlock()
	if opts.BandwidthBps > 0 {
		jbw = opts.BandwidthBps
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	port := 4001
	addr := multiaddr.ForPeer(fmt.Sprintf("%d.%d.%d.%d", ipA, ipB, ipC, 1+len(n.nodes)%250), port, id.String())
	nd := &node{
		id:       id,
		region:   opts.Region,
		class:    opts.Class,
		addr:     addr,
		bwBps:    jbw,
		online:   true,
		dialable: opts.Dialable,
	}
	n.nodes[id] = nd
	return &endpoint{net: n, node: nd}
}

// SetOnline toggles a peer's liveness; offline peers fail all dials and
// in-flight requests. The churn scheduler drives this.
func (n *Network) SetOnline(id peer.ID, online bool) {
	n.mu.RLock()
	nd := n.nodes[id]
	n.mu.RUnlock()
	if nd != nil {
		nd.mu.Lock()
		nd.online = online
		nd.mu.Unlock()
	}
}

// Online reports a peer's current liveness.
func (n *Network) Online(id peer.ID) bool {
	n.mu.RLock()
	nd := n.nodes[id]
	n.mu.RUnlock()
	if nd == nil {
		return false
	}
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.online
}

// Len returns the number of attached peers.
func (n *Network) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Stats returns cumulative counters: total requests, dials, failures.
func (n *Network) Stats() (requests, dials, failures int64) {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.requests, n.dials, n.failures
}

// BudgetCategories is the render order of the budget breakdown.
var BudgetCategories = []transport.RPCCategory{
	transport.CatLookup, transport.CatPublish, transport.CatRepublish,
	transport.CatRefresh, transport.CatWant, transport.CatGossip,
	transport.CatOther,
}

// Budget is the simulator's network-wide RPC budget: every request any
// peer carried, broken down by activity, so background traffic
// (republish cycles, refresh crawls) is visible next to the per-lookup
// accounting the experiments already report.
type Budget struct {
	Requests     int64 // all RPCs; always the sum over ByCategory
	Dials        int64
	DialFailures int64
	ByCategory   map[transport.RPCCategory]int64
	// Dropped counts requests lost to link faults or partitions (each
	// such request is also in Requests/ByCategory — the loss is a
	// failure mode, not extra traffic). Retried counts the automatic
	// retransmits the transport performed after detected drops.
	Dropped           int64
	Retried           int64
	DroppedByCategory map[transport.RPCCategory]int64
}

// Category returns one category's request count.
func (b Budget) Category(cat transport.RPCCategory) int64 { return b.ByCategory[cat] }

// DroppedCategory returns one category's fault-dropped request count.
func (b Budget) DroppedCategory(cat transport.RPCCategory) int64 {
	return b.DroppedByCategory[cat]
}

// Sub returns the budget spent since prev — the per-phase delta a
// scenario engine samples between workload phases.
func (b Budget) Sub(prev Budget) Budget {
	d := Budget{
		Requests:          b.Requests - prev.Requests,
		Dials:             b.Dials - prev.Dials,
		DialFailures:      b.DialFailures - prev.DialFailures,
		Dropped:           b.Dropped - prev.Dropped,
		Retried:           b.Retried - prev.Retried,
		ByCategory:        make(map[transport.RPCCategory]int64, len(b.ByCategory)),
		DroppedByCategory: make(map[transport.RPCCategory]int64, len(b.DroppedByCategory)),
	}
	for cat, v := range b.ByCategory {
		if delta := v - prev.ByCategory[cat]; delta != 0 {
			d.ByCategory[cat] = delta
		}
	}
	for cat, v := range b.DroppedByCategory {
		if delta := v - prev.DroppedByCategory[cat]; delta != 0 {
			d.DroppedByCategory[cat] = delta
		}
	}
	return d
}

// String renders the budget on one line, categories in fixed order.
func (b Budget) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d requests (", b.Requests)
	first := true
	for _, cat := range BudgetCategories {
		if b.ByCategory[cat] == 0 {
			continue
		}
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%s %d", cat, b.ByCategory[cat])
	}
	if first {
		sb.WriteString("none")
	}
	fmt.Fprintf(&sb, "), %d dials (%d failed)", b.Dials, b.DialFailures)
	// Fault counters render only when the run injected faults, so the
	// clean-network report is unchanged.
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, ", %d dropped (", b.Dropped)
		first = true
		for _, cat := range BudgetCategories {
			if b.DroppedByCategory[cat] == 0 {
				continue
			}
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "%s %d", cat, b.DroppedByCategory[cat])
		}
		sb.WriteString(")")
	}
	if b.Retried > 0 {
		fmt.Fprintf(&sb, ", %d retried", b.Retried)
	}
	return sb.String()
}

// Budget returns a snapshot of the cumulative network-wide RPC budget.
func (n *Network) Budget() Budget {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	b := Budget{
		Requests:          n.requests,
		Dials:             n.dials,
		DialFailures:      n.failures,
		Dropped:           n.dropped,
		Retried:           n.retried,
		ByCategory:        make(map[transport.RPCCategory]int64, len(n.byCategory)),
		DroppedByCategory: make(map[transport.RPCCategory]int64, len(n.droppedByCat)),
	}
	for cat, v := range n.byCategory {
		b.ByCategory[cat] = v
	}
	for cat, v := range n.droppedByCat {
		b.DroppedByCategory[cat] = v
	}
	return b
}

// categorize attributes one request: an explicit context tag wins (so
// a republish cycle's walk and store RPCs all land under "republish"),
// untagged requests classify by message type. The mapping itself lives
// in transport so the TCP path and the attribution tests share it.
func categorize(ctx context.Context, t wire.Type) transport.RPCCategory {
	return transport.CategorizeRPC(ctx, t)
}

func (n *Network) countRequest(cat transport.RPCCategory) {
	n.statsMu.Lock()
	n.requests++
	n.byCategory[cat]++
	n.statsMu.Unlock()
}

func (n *Network) countDial(failed bool) {
	n.statsMu.Lock()
	n.dials++
	if failed {
		n.failures++
	}
	n.statsMu.Unlock()
}

func (n *Network) countDropped(cat transport.RPCCategory) {
	n.statsMu.Lock()
	n.dropped++
	n.droppedByCat[cat]++
	n.statsMu.Unlock()
}

func (n *Network) countRetry() {
	n.statsMu.Lock()
	n.retried++
	n.statsMu.Unlock()
}

// jitter returns a jitter duration in [0, max) for one interaction
// between a and b. Under the discrete-event scheduler the draw is a
// hash of (seed, endpoints, kind, virtual instant): the value depends
// only on who talks to whom and when in *simulated* time, never on
// which goroutine reached a shared rng first, so seeded runs replay
// bit-for-bit. On the legacy real-scaled path it is the shared rng.
func (n *Network) jitter(a, b peer.ID, kind string, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	if n.det {
		return hashDur(n.cfg.Seed, a, b, kind, n.cfg.Time.Now().UnixNano(), max)
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(max)))
}

// slowDelay samples the processing delay of a Slow peer: 2–20 s.
func (n *Network) slowDelay(a, b peer.ID) time.Duration {
	return 2*time.Second + n.jitter(a, b, "slow", 18*time.Second)
}

// hashDur derives a duration in [0, max) from an FNV-1a hash of the
// interaction key.
func hashDur(seed int64, a, b peer.ID, kind string, at int64, max time.Duration) time.Duration {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mixInt := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixInt(uint64(seed))
	mix(string(a))
	mix(string(b))
	mix(kind)
	mixInt(uint64(at))
	return time.Duration(h % uint64(max))
}

// endpoint implements transport.Endpoint on the simulator.
type endpoint struct {
	net  *Network
	node *node
}

func (e *endpoint) LocalPeer() peer.ID { return e.node.id }

func (e *endpoint) Addrs() []multiaddr.Multiaddr {
	return []multiaddr.Multiaddr{e.node.addr}
}

func (e *endpoint) SetHandler(h transport.Handler) {
	e.node.mu.Lock()
	e.node.handler = h
	e.node.mu.Unlock()
}

func (e *endpoint) Close() error {
	e.node.mu.Lock()
	e.node.closed = true
	e.node.online = false
	e.node.mu.Unlock()
	return nil
}

// Dial simulates connection establishment: two RTTs (transport + secure
// channel negotiation, the paper's Dial + Negotiate) on success, the
// class-specific timeout on failure.
func (e *endpoint) Dial(ctx context.Context, target peer.ID, addrs []multiaddr.Multiaddr) (transport.Conn, error) {
	src := e.net.cfg.Time
	e.net.mu.RLock()
	remote := e.net.nodes[target]
	e.net.mu.RUnlock()

	e.node.mu.RLock()
	selfClosed := e.node.closed
	e.node.mu.RUnlock()
	if selfClosed {
		return nil, transport.ErrClosed
	}

	if remote == nil {
		e.net.countDial(true)
		if err := src.Sleep(ctx, e.net.cfg.DialTimeout); err != nil {
			return nil, err
		}
		return nil, transport.ErrPeerUnreachable
	}

	// A regional partition cuts the link in both directions: the SYN is
	// never answered and the dial burns its full timeout.
	if e.net.partitioned(e.node.region, remote.region) {
		e.net.countDial(true)
		if err := src.Sleep(ctx, e.net.cfg.DialTimeout); err != nil {
			return nil, err
		}
		return nil, transport.ErrPartitioned
	}

	remote.mu.RLock()
	online, dialable, class := remote.online, remote.dialable, remote.class
	if !dialable && remote.allowFrom[e.node.id] && !transport.IsFreshDial(ctx) {
		dialable = true // NAT mapping held open by a prior outbound dial
	}
	remote.mu.RUnlock()

	switch {
	case class == WSBroken:
		e.net.countDial(true)
		if err := src.Sleep(ctx, e.net.cfg.WSHandshakeTimeout); err != nil {
			return nil, err
		}
		return nil, transport.ErrHandshakeTimeout
	case !online, !dialable, class == DeadDial:
		e.net.countDial(true)
		if err := src.Sleep(ctx, e.net.cfg.DialTimeout); err != nil {
			return nil, err
		}
		return nil, transport.ErrDialTimeout
	}

	rtt := geo.RTT(e.node.region, remote.region)
	handshake := 2*rtt + e.net.jitter(e.node.id, remote.id, "dial", rtt/4+time.Millisecond)
	// A faulty link taxes the handshake with its extra latency/jitter
	// (twice: the handshake is two round trips). Loss draws do not apply
	// to dials — the transport's own SYN retransmission absorbs them
	// within the handshake budget.
	if prof := e.net.linkProfile(e.node.region, remote.region); !prof.zero() {
		handshake += 2 * e.net.faultDelay(e.node.id, remote.id, prof)
	}
	if err := src.Sleep(ctx, handshake); err != nil {
		return nil, err
	}
	e.net.countDial(false)
	// Our outbound connection opens a NAT mapping: the remote may now
	// dial us back even if we are otherwise unreachable.
	e.node.mu.Lock()
	if e.node.allowFrom == nil {
		e.node.allowFrom = make(map[peer.ID]bool)
	}
	e.node.allowFrom[remote.id] = true
	e.node.mu.Unlock()
	return &conn{net: e.net, local: e.node, remote: remote, rtt: rtt}, nil
}

// conn is a live simulated connection.
type conn struct {
	net    *Network
	local  *node
	remote *node
	rtt    time.Duration

	mu     sync.Mutex
	closed bool
}

func (c *conn) RemotePeer() peer.ID { return c.remote.id }

func (c *conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// Request performs one RPC: the request travels half an RTT, the remote
// processes it (class-dependent), and the response travels back with a
// bandwidth term proportional to its size. Link faults intervene per
// transit: a partition eats the message outright, a lossy link drops
// the request or response leg with the profile's probability (each
// drop costs the caller one DropTimeout, optionally retransmitted
// Config.Retries times), and extra latency/jitter taxes every
// successful exchange.
func (c *conn) Request(ctx context.Context, req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return wire.Message{}, transport.ErrClosed
	}
	src := c.net.cfg.Time
	cat := categorize(ctx, req.Type)
	c.net.countRequest(cat)

	// A partition between the two regions silently eats the message: no
	// retransmit helps until it heals, so the loss surfaces immediately
	// after one loss-detection wait.
	if c.net.partitioned(c.local.region, c.remote.region) {
		return wire.Message{}, c.drop(ctx, req, cat, 0, transport.ErrPartitioned)
	}

	c.remote.mu.RLock()
	online, handler, class := c.remote.online, c.remote.handler, c.remote.class
	c.remote.mu.RUnlock()
	if !online || handler == nil {
		// The peer vanished mid-connection: the request hangs until the
		// dial timeout. Deliberately NOT a fault drop — the link worked,
		// the peer is gone — so Budget.Dropped separates lossy links
		// from dead peers.
		if err := src.Sleep(ctx, c.net.cfg.DialTimeout); err != nil {
			telemetry.RPC(ctx, req.Type.String(), string(cat), c.remote.id.String(), 0, err.Error())
			return wire.Message{}, err
		}
		telemetry.RPC(ctx, req.Type.String(), string(cat), c.remote.id.String(), c.net.cfg.DialTimeout, transport.ErrPeerUnreachable.Error())
		return wire.Message{}, transport.ErrPeerUnreachable
	}

	prof := c.net.linkProfile(c.local.region, c.remote.region)
	for attempt := 0; ; attempt++ {
		// Request leg: lost before the handler ever sees it.
		if c.net.lossDraw(c.local.id, c.remote.id, "loss-req", prof.LossRate) {
			if err := c.drop(ctx, req, cat, attempt, transport.ErrMessageDropped); err != transport.ErrMessageDropped {
				return wire.Message{}, err // ctx cancelled mid-wait
			}
			if attempt < c.net.cfg.Retries {
				c.net.countRetry()
				continue
			}
			return wire.Message{}, transport.ErrMessageDropped
		}

		proc := c.net.jitter(c.local.id, c.remote.id, "proc", 5*time.Millisecond) + time.Millisecond
		if class == Slow {
			proc += c.net.slowDelay(c.local.id, c.remote.id)
		}

		resp := handler(ctx, c.local.id, req)

		// Response leg: the handler ran but the reply is lost — a
		// retransmit re-executes it (at-least-once, like real RPC
		// retries over UDP-style transports).
		if c.net.lossDraw(c.local.id, c.remote.id, "loss-resp", prof.LossRate) {
			if err := c.drop(ctx, req, cat, attempt, transport.ErrMessageDropped); err != transport.ErrMessageDropped {
				return wire.Message{}, err
			}
			if attempt < c.net.cfg.Retries {
				c.net.countRetry()
				continue
			}
			return wire.Message{}, transport.ErrMessageDropped
		}

		// One combined sleep covers the request leg, processing and the
		// response leg with its bandwidth term. On the real-scaled path a
		// single sleep keeps the scheduler-granularity error per RPC
		// minimal; on the event-driven path it is one delivery event — the
		// requester parks and virtual time jumps to the delivery instant.
		transfer := time.Duration(float64(len(resp.BlockData)+256) / c.remote.bwBps * float64(time.Second))
		latency := c.rtt + proc + transfer + c.net.faultDelay(c.local.id, c.remote.id, prof)
		if err := src.Sleep(ctx, latency); err != nil {
			telemetry.RPC(ctx, req.Type.String(), string(cat), c.remote.id.String(), 0, err.Error())
			return wire.Message{}, err
		}
		// The simulated latency is exact: the RTT, the processing delay,
		// the bandwidth term and the link's fault tax the single sleep
		// just charged.
		telemetry.RPC(ctx, req.Type.String(), string(cat), c.remote.id.String(), latency, "")
		return resp, nil
	}
}

// drop charges one lost transit: it bumps the dropped budget counters,
// burns the loss-detection timeout in simulated time, records a
// telemetry "rpc-drop" event attributed to the request's category and
// attempt, and returns cause (or the context error if the caller gave
// up mid-wait — the drop is still counted: the message was lost either
// way).
func (c *conn) drop(ctx context.Context, req wire.Message, cat transport.RPCCategory, attempt int, cause error) error {
	c.net.countDropped(cat)
	wait := c.net.cfg.DropTimeout
	if err := c.net.cfg.Time.Sleep(ctx, wait); err != nil {
		telemetry.RPCDrop(ctx, req.Type.String(), string(cat), c.remote.id.String(), 0, attempt, err.Error())
		return err
	}
	telemetry.RPCDrop(ctx, req.Type.String(), string(cat), c.remote.id.String(), wait, attempt, cause.Error())
	return cause
}
