package simnet

import (
	"context"
	"strings"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// catOtherAllowlist names the request types whose RPCs legitimately
// land in CatOther: the connection machinery (ping, identify, AutoNAT
// dial-backs, relays) belongs to no background duty. Every other
// request type must map to a real budget category — a new message
// type added without a mapping fails this test instead of silently
// polluting the "other" column of every budget report.
var catOtherAllowlist = map[wire.Type]bool{
	wire.TPing:         true,
	wire.TIdentify:     true,
	wire.TDialBack:     true,
	wire.TRelayReserve: true,
	wire.TRelay:        true,
}

func TestEveryRequestTypeHasACategory(t *testing.T) {
	for typ := wire.Type(1); typ < wire.TAck; typ++ {
		name := typ.String()
		if strings.HasPrefix(name, "TYPE(") {
			continue // a gap in the request enum, not a defined type
		}
		cat := transport.CategoryForType(typ)
		switch {
		case cat == transport.CatOther && !catOtherAllowlist[typ]:
			t.Errorf("%s maps to CatOther: add it to transport.CategoryForType or, if it is pure connection machinery, to the allowlist here", name)
		case cat != transport.CatOther && catOtherAllowlist[typ]:
			t.Errorf("%s is allowlisted as CatOther but maps to %q: drop it from the allowlist", name, cat)
		}
	}
}

func TestCategorizeContextTagWins(t *testing.T) {
	ctx := context.Background()
	if got := categorize(ctx, wire.TFindNode); got != transport.CatLookup {
		t.Errorf("untagged TFindNode = %q, want lookup", got)
	}
	tagged := transport.WithRPCCategory(ctx, transport.CatRepublish)
	if got := categorize(tagged, wire.TFindNode); got != transport.CatRepublish {
		t.Errorf("tagged TFindNode = %q, want republish", got)
	}
	// The shared mapping and the simulator's classifier must agree on
	// untagged requests.
	for typ := wire.Type(1); typ < wire.TAck; typ++ {
		if got, want := categorize(ctx, typ), transport.CategoryForType(typ); got != want {
			t.Errorf("categorize(%s) = %q, CategoryForType = %q", typ, got, want)
		}
	}
}
