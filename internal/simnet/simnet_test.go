package simnet

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/peer"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fastCfg compresses time 1000x so simulated 5s timeouts take 5ms.
func fastCfg() Config {
	return Config{Base: simtime.New(0.001), Seed: 1}
}

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func echoHandler(id string) transport.Handler {
	return func(_ context.Context, from peer.ID, req wire.Message) wire.Message {
		return wire.Message{Type: wire.TAck, ErrMsg: id}
	}
}

func TestDialAndRequest(t *testing.T) {
	net := New(fastCfg())
	a := testIdentity(1)
	b := testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	ea.SetHandler(echoHandler("a"))
	eb.SetHandler(echoHandler("b"))

	conn, err := ea.Dial(context.Background(), b.ID, eb.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if conn.RemotePeer() != b.ID {
		t.Error("RemotePeer mismatch")
	}
	resp, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TAck || resp.ErrMsg != "b" {
		t.Errorf("resp = %+v", resp)
	}
	reqs, dials, failures := net.Stats()
	if reqs != 1 || dials != 1 || failures != 0 {
		t.Errorf("stats = %d/%d/%d", reqs, dials, failures)
	}
}

func TestDialUnknownPeerTimesOut(t *testing.T) {
	net := New(fastCfg())
	a := testIdentity(1)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	ghost := testIdentity(99)
	start := time.Now()
	_, err := ea.Dial(context.Background(), ghost.ID, nil)
	if err != transport.ErrPeerUnreachable {
		t.Errorf("err = %v", err)
	}
	// 5 simulated seconds at scale 0.001 = 5ms real.
	if el := time.Since(start); el < 3*time.Millisecond || el > 500*time.Millisecond {
		t.Errorf("dial timeout took %v real", el)
	}
}

func TestDeadDialClassEatsDialTimeout(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true, Class: DeadDial})
	start := time.Now()
	_, err := ea.Dial(context.Background(), b.ID, nil)
	if err != transport.ErrDialTimeout {
		t.Errorf("err = %v, want ErrDialTimeout", err)
	}
	sim := net.Base().Sim(time.Since(start))
	if sim < 4*time.Second || sim > 8*time.Second {
		t.Errorf("dead dial took %v simulated, want ~5s", sim)
	}
}

func TestWSBrokenClassEatsHandshakeTimeout(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true, Class: WSBroken})
	start := time.Now()
	_, err := ea.Dial(context.Background(), b.ID, nil)
	if err != transport.ErrHandshakeTimeout {
		t.Errorf("err = %v, want ErrHandshakeTimeout", err)
	}
	sim := net.Base().Sim(time.Since(start))
	if sim < 40*time.Second || sim > 55*time.Second {
		t.Errorf("ws-broken dial took %v simulated, want ~45s", sim)
	}
}

func TestUndialablePeer(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: false})
	if _, err := ea.Dial(context.Background(), b.ID, nil); err != transport.ErrDialTimeout {
		t.Errorf("NAT'd peer dial err = %v", err)
	}
}

func TestOfflinePeer(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb.SetHandler(echoHandler("b"))
	net.SetOnline(b.ID, false)
	if net.Online(b.ID) {
		t.Error("SetOnline(false) ignored")
	}
	if _, err := ea.Dial(context.Background(), b.ID, nil); err == nil {
		t.Error("dialing an offline peer should fail")
	}
	net.SetOnline(b.ID, true)
	if _, err := ea.Dial(context.Background(), b.ID, nil); err != nil {
		t.Errorf("dial after coming back online: %v", err)
	}
}

func TestPeerVanishesMidConnection(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb.SetHandler(echoHandler("b"))
	conn, err := ea.Dial(context.Background(), b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.SetOnline(b.ID, false)
	if _, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing}); err == nil {
		t.Error("request to vanished peer should fail")
	}
}

func TestLatencyReflectsGeography(t *testing.T) {
	net := New(Config{Base: simtime.New(0.01), Seed: 2})
	frankfurt := testIdentity(1)
	paris := testIdentity(2)
	sydney := testIdentity(3)
	ef := net.AddNode(frankfurt.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	ep := net.AddNode(paris.ID, NodeOpts{Region: "FR", Dialable: true})
	es := net.AddNode(sydney.ID, NodeOpts{Region: geo.ApSoutheast2, Dialable: true})
	ep.SetHandler(echoHandler("p"))
	es.SetHandler(echoHandler("s"))

	ctx := context.Background()
	measure := func(target peer.ID) time.Duration {
		start := time.Now()
		conn, err := ef.Dial(ctx, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Request(ctx, wire.Message{Type: wire.TPing}); err != nil {
			t.Fatal(err)
		}
		_ = ef
		return net.Base().Sim(time.Since(start))
	}
	near := measure(paris.ID)
	far := measure(sydney.ID)
	if near >= far {
		t.Errorf("Frankfurt->Paris (%v) should be faster than Frankfurt->Sydney (%v)", near, far)
	}
}

func TestSlowClassDelaysRequests(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true, Class: Slow})
	eb.SetHandler(echoHandler("b"))
	conn, err := ea.Dial(context.Background(), b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing}); err != nil {
		t.Fatal(err)
	}
	sim := net.Base().Sim(time.Since(start))
	if sim < 2*time.Second {
		t.Errorf("slow peer request took %v simulated, want >= 2s", sim)
	}
}

func TestContextCancellation(t *testing.T) {
	net := New(Config{Base: simtime.New(0.05), Seed: 3})
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true, Class: DeadDial})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ea.Dial(ctx, b.ID, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("context cancellation did not cut the dial short")
	}
}

func TestClosedEndpoint(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb.SetHandler(echoHandler("b"))
	conn, err := ea.Dial(context.Background(), b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Request(context.Background(), wire.Message{}); err != transport.ErrClosed {
		t.Errorf("request on closed conn: %v", err)
	}
	ea.Close()
	if _, err := ea.Dial(context.Background(), b.ID, nil); err != transport.ErrClosed {
		t.Errorf("dial from closed endpoint: %v", err)
	}
}

func TestBandwidthAffectsBlockTransfer(t *testing.T) {
	cfg := fastCfg()
	cfg.MeanBandwidth = 1 << 20 // 1 MiB/s mean
	net := New(cfg)
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true, BandwidthBps: 1 << 20})
	big := make([]byte, 1<<20)
	eb.SetHandler(func(_ context.Context, _ peer.ID, req wire.Message) wire.Message {
		if req.Type == wire.TWantBlock {
			return wire.Message{Type: wire.TBlock, BlockData: big}
		}
		return wire.Message{Type: wire.TAck}
	})
	conn, err := ea.Dial(context.Background(), b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	if _, err := conn.Request(ctx, wire.Message{Type: wire.TAck}); err != nil {
		t.Fatal(err)
	}
	small := net.Base().Sim(time.Since(start))
	start = time.Now()
	if _, err := conn.Request(ctx, wire.Message{Type: wire.TWantBlock}); err != nil {
		t.Fatal(err)
	}
	blockDur := net.Base().Sim(time.Since(start))
	// 1 MiB at 1 MiB/s should add roughly a simulated second.
	if blockDur < small+500*time.Millisecond {
		t.Errorf("block transfer %v not slower than control %v", blockDur, small)
	}
}

// TestBudgetCategoriesSumUnderConcurrentLoad hammers one connection
// pair from many goroutines with a mix of tagged and untagged requests
// and asserts the per-category budget counters always sum to the
// legacy requests total (run under -race in CI).
func TestBudgetCategoriesSumUnderConcurrentLoad(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	ea.SetHandler(echoHandler("a"))
	eb.SetHandler(echoHandler("b"))

	conn, err := ea.Dial(context.Background(), b.ID, eb.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	kinds := []struct {
		ctx context.Context
		typ wire.Type
		cat transport.RPCCategory
	}{
		{context.Background(), wire.TWantHave, transport.CatWant},
		{context.Background(), wire.TWantBlock, transport.CatWant},
		{context.Background(), wire.TFindNode, transport.CatLookup},
		{context.Background(), wire.TGetProviders, transport.CatLookup},
		{context.Background(), wire.TAddProvider, transport.CatPublish},
		{context.Background(), wire.TCrawl, transport.CatRefresh},
		{context.Background(), wire.TIdentify, transport.CatOther},
		// Explicit tags override the message-type default.
		{transport.WithRPCCategory(context.Background(), transport.CatRepublish), wire.TAddProvider, transport.CatRepublish},
		{transport.WithRPCCategory(context.Background(), transport.CatRefresh), wire.TFindNode, transport.CatRefresh},
	}
	const perKind = 40
	var wg sync.WaitGroup
	for _, k := range kinds {
		for i := 0; i < perKind; i++ {
			k := k
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn.Request(k.ctx, wire.Message{Type: k.typ})
			}()
		}
	}
	wg.Wait()

	budget := net.Budget()
	reqs, _, _ := net.Stats()
	if budget.Requests != int64(len(kinds)*perKind) {
		t.Fatalf("budget.Requests = %d, want %d", budget.Requests, len(kinds)*perKind)
	}
	if budget.Requests != reqs {
		t.Fatalf("budget total %d != legacy stats total %d", budget.Requests, reqs)
	}
	var sum int64
	for _, v := range budget.ByCategory {
		sum += v
	}
	if sum != budget.Requests {
		t.Fatalf("category sum %d != requests %d", sum, budget.Requests)
	}
	want := map[transport.RPCCategory]int64{
		transport.CatWant:      2 * perKind,
		transport.CatLookup:    2 * perKind,
		transport.CatPublish:   perKind,
		transport.CatRefresh:   2 * perKind,
		transport.CatOther:     perKind,
		transport.CatRepublish: perKind,
	}
	for cat, n := range want {
		if got := budget.Category(cat); got != n {
			t.Errorf("category %s = %d, want %d", cat, got, n)
		}
	}
	// Delta arithmetic: spending one more tagged request moves exactly
	// one counter.
	before := net.Budget()
	conn.Request(transport.WithRPCCategory(context.Background(), transport.CatRepublish), wire.Message{Type: wire.TPing})
	d := net.Budget().Sub(before)
	if d.Requests != 1 || d.Category(transport.CatRepublish) != 1 || len(d.ByCategory) != 1 {
		t.Errorf("delta = %+v, want exactly one republish request", d)
	}
	if s := net.Budget().String(); !strings.Contains(s, "republish") || !strings.Contains(s, "requests") {
		t.Errorf("budget render missing fields: %s", s)
	}
}
