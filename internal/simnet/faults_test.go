package simnet

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestLossyLinkDropsRequests(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{LossRate: 1}
	net := New(cfg)
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	eb.SetHandler(echoHandler("b"))

	conn, err := ea.Dial(context.Background(), b.ID, eb.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.Request(context.Background(), wire.Message{Type: wire.TFindNode})
	if err != transport.ErrMessageDropped {
		t.Fatalf("err = %v, want ErrMessageDropped", err)
	}
	// The caller burns the loss-detection timeout (default 5s) waiting.
	sim := net.Base().Sim(time.Since(start))
	if sim < 4*time.Second || sim > 8*time.Second {
		t.Errorf("drop detection took %v simulated, want ~5s", sim)
	}
	budget := net.Budget()
	if budget.Dropped != 1 || budget.DroppedCategory(transport.CatLookup) != 1 {
		t.Errorf("dropped = %d (lookup %d), want 1/1", budget.Dropped, budget.DroppedCategory(transport.CatLookup))
	}
	// The drop is a failure mode of a counted request, not extra traffic.
	if budget.Requests != 1 {
		t.Errorf("requests = %d, want 1", budget.Requests)
	}
	if s := budget.String(); !strings.Contains(s, "1 dropped (lookup 1)") {
		t.Errorf("budget render missing drop counter: %s", s)
	}
}

func TestRetriesAreCountedAndBounded(t *testing.T) {
	cfg := fastCfg()
	cfg.Retries = 3
	net := New(cfg)
	a, b := testIdentity(1), testIdentity(2)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	eb.SetHandler(echoHandler("b"))
	net.SetLinkFaults(geo.EuCentral1, geo.UsWest1, FaultProfile{LossRate: 1})

	conn, err := ea.Dial(context.Background(), b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing}); err != transport.ErrMessageDropped {
		t.Fatalf("err = %v, want ErrMessageDropped", err)
	}
	budget := net.Budget()
	// 1 original + 3 retransmits all lost: 4 drops, 3 retries, 1 request.
	if budget.Dropped != 4 || budget.Retried != 3 || budget.Requests != 1 {
		t.Errorf("dropped/retried/requests = %d/%d/%d, want 4/3/1", budget.Dropped, budget.Retried, budget.Requests)
	}
	if s := budget.String(); !strings.Contains(s, "3 retried") {
		t.Errorf("budget render missing retry counter: %s", s)
	}
}

func TestLinkFaultOverrideIsPerRegionPair(t *testing.T) {
	net := New(fastCfg())
	a, b, c := testIdentity(1), testIdentity(2), testIdentity(3)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	ec := net.AddNode(c.ID, NodeOpts{Region: "FR", Dialable: true})
	eb.SetHandler(echoHandler("b"))
	ec.SetHandler(echoHandler("c"))
	net.SetLinkFaults(geo.UsWest1, geo.EuCentral1, FaultProfile{LossRate: 1})

	ctx := context.Background()
	lossy, err := ea.Dial(ctx, b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ea.Dial(ctx, c.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lossy.Request(ctx, wire.Message{Type: wire.TPing}); err != transport.ErrMessageDropped {
		t.Errorf("overridden link err = %v, want ErrMessageDropped", err)
	}
	if _, err := clean.Request(ctx, wire.Message{Type: wire.TPing}); err != nil {
		t.Errorf("clean link err = %v", err)
	}
}

func TestExtraLatencyTaxesRequests(t *testing.T) {
	measure := func(p FaultProfile) time.Duration {
		cfg := fastCfg()
		cfg.Faults = p
		net := New(cfg)
		a, b := testIdentity(1), testIdentity(2)
		ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
		eb := net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
		eb.SetHandler(echoHandler("b"))
		conn, err := ea.Dial(context.Background(), b.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := conn.Request(context.Background(), wire.Message{Type: wire.TPing}); err != nil {
			t.Fatal(err)
		}
		return net.Base().Sim(time.Since(start))
	}
	clean := measure(FaultProfile{})
	taxed := measure(FaultProfile{ExtraLatency: 2 * time.Second, Jitter: time.Second})
	if taxed < clean+2*time.Second {
		t.Errorf("faulty link request %v not >= clean %v + 2s extra latency", taxed, clean)
	}
}

func TestPartitionCutsAndHealRestores(t *testing.T) {
	net := New(fastCfg())
	a, b, c := testIdentity(1), testIdentity(2), testIdentity(3)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	ec := net.AddNode(c.ID, NodeOpts{Region: "US", Dialable: true})
	eb.SetHandler(echoHandler("b"))
	ec.SetHandler(echoHandler("c"))

	ctx := context.Background()
	conn, err := ea.Dial(ctx, b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}

	net.Partition(geo.UsWest1, "US")
	if got := net.PartitionedRegions(); len(got) != 2 || got[0] != "US" || got[1] != geo.UsWest1 {
		t.Errorf("PartitionedRegions = %v", got)
	}
	// Traffic across the cut fails in both forms: established connections
	// drop in-flight requests, new dials time out.
	if _, err := conn.Request(ctx, wire.Message{Type: wire.TPing}); err != transport.ErrPartitioned {
		t.Errorf("request across partition err = %v, want ErrPartitioned", err)
	}
	if _, err := ea.Dial(ctx, b.ID, nil); err != transport.ErrPartitioned {
		t.Errorf("dial across partition err = %v, want ErrPartitioned", err)
	}
	// Two peers on the same side keep talking.
	sameSide, err := eb.Dial(ctx, c.ID, nil)
	if err != nil {
		t.Fatalf("dial within partition: %v", err)
	}
	if _, err := sameSide.Request(ctx, wire.Message{Type: wire.TPing}); err != nil {
		t.Errorf("request within partition err = %v", err)
	}
	if net.Budget().Dropped == 0 {
		t.Error("partitioned request not counted as dropped")
	}

	net.Heal()
	if net.PartitionedRegions() != nil {
		t.Error("Heal left regions partitioned")
	}
	if _, err := conn.Request(ctx, wire.Message{Type: wire.TPing}); err != nil {
		t.Errorf("request after heal err = %v", err)
	}
}

// TestDropVsTimeoutAttribution pins the satellite fix: link-fault drops
// and dead-peer timeouts are different failure modes with different
// errors and different budget counters. Hammered concurrently so -race
// exercises the fault state and the new counters.
func TestDropVsTimeoutAttribution(t *testing.T) {
	cfg := fastCfg()
	net := New(cfg)
	a, b, c := testIdentity(1), testIdentity(2), testIdentity(3)
	ea := net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	eb := net.AddNode(b.ID, NodeOpts{Region: geo.UsWest1, Dialable: true})
	ec := net.AddNode(c.ID, NodeOpts{Region: "FR", Dialable: true})
	eb.SetHandler(echoHandler("b"))
	ec.SetHandler(echoHandler("c"))
	// b sits behind a fully lossy link; c will vanish mid-connection.
	net.SetLinkFaults(geo.EuCentral1, geo.UsWest1, FaultProfile{LossRate: 1})

	ctx := context.Background()
	lossyConn, err := ea.Dial(ctx, b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadConn, err := ea.Dial(ctx, c.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.SetOnline(c.ID, false)

	const per = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(map[error]int)
	record := func(err error) {
		mu.Lock()
		errs[err]++
		mu.Unlock()
	}
	for i := 0; i < per; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := lossyConn.Request(ctx, wire.Message{Type: wire.TFindNode})
			record(err)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := deadConn.Request(transport.WithRPCCategory(ctx, transport.CatRefresh), wire.Message{Type: wire.TFindNode})
			record(err)
		}()
	}
	wg.Wait()

	if errs[transport.ErrMessageDropped] != per {
		t.Errorf("ErrMessageDropped count = %d, want %d", errs[transport.ErrMessageDropped], per)
	}
	if errs[transport.ErrPeerUnreachable] != per {
		t.Errorf("ErrPeerUnreachable count = %d, want %d", errs[transport.ErrPeerUnreachable], per)
	}
	budget := net.Budget()
	// Only the lossy link's requests are drops; dead-peer timeouts are
	// requests that failed, never fault drops.
	if budget.Dropped != per {
		t.Errorf("budget.Dropped = %d, want %d", budget.Dropped, per)
	}
	if budget.DroppedCategory(transport.CatLookup) != per || budget.DroppedCategory(transport.CatRefresh) != 0 {
		t.Errorf("dropped by category = %v", budget.DroppedByCategory)
	}
	if budget.Requests != 2*per {
		t.Errorf("budget.Requests = %d, want %d", budget.Requests, 2*per)
	}
	// Delta arithmetic covers the new counters too.
	before := net.Budget()
	lossyConn.Request(ctx, wire.Message{Type: wire.TPing})
	d := net.Budget().Sub(before)
	if d.Dropped != 1 || d.DroppedCategory(transport.CatOther) != 1 {
		t.Errorf("drop delta = %+v, want exactly one 'other' drop", d)
	}
}

func TestHashFloatDeterministicUniform(t *testing.T) {
	a, b := testIdentity(1).ID, testIdentity(2).ID
	v := hashFloat(42, a, b, "loss-req", 12345)
	if v != hashFloat(42, a, b, "loss-req", 12345) {
		t.Error("hashFloat not deterministic for identical keys")
	}
	if v == hashFloat(42, a, b, "loss-resp", 12345) {
		t.Error("kind does not separate draws")
	}
	if v == hashFloat(42, a, b, "loss-req", 12346) {
		t.Error("instant does not separate draws")
	}
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		u := hashFloat(42, a, b, "loss-req", int64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("hashFloat out of [0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("hashFloat mean = %v, want ~0.5", mean)
	}
}

// TestLossDrawDeterministicUnderScheduler pins that on the event-driven
// path the loss decision depends only on (seed, endpoints, kind,
// virtual instant) — two networks with the same seed agree draw for
// draw, which is what makes lossy replays bit-for-bit.
func TestLossDrawDeterministicUnderScheduler(t *testing.T) {
	epoch := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	build := func() *Network {
		sched := simtime.NewScheduler(simtime.NewClock(epoch), simtime.SchedulerOpts{Workers: 1})
		return New(Config{Time: sched, Seed: 7, Faults: FaultProfile{LossRate: 0.3}})
	}
	n1, n2 := build(), build()
	if !n1.det || !n2.det {
		t.Fatal("scheduler-backed network did not select deterministic draws")
	}
	a, b := testIdentity(1).ID, testIdentity(2).ID
	for i := 0; i < 200; i++ {
		if n1.lossDraw(a, b, "loss-req", 0.3) != n2.lossDraw(a, b, "loss-req", 0.3) {
			t.Fatalf("draw %d diverged between same-seed networks", i)
		}
	}
}

func TestDialableAccessor(t *testing.T) {
	net := New(fastCfg())
	a, b := testIdentity(1), testIdentity(2)
	net.AddNode(a.ID, NodeOpts{Region: geo.EuCentral1, Dialable: true})
	net.AddNode(b.ID, NodeOpts{Region: geo.EuCentral1, Dialable: false})
	if !net.Dialable(a.ID) || net.Dialable(b.ID) {
		t.Error("Dialable accessor disagrees with NodeOpts")
	}
	if net.Dialable(testIdentity(9).ID) {
		t.Error("unknown peer reported dialable")
	}
}
