// Link-fault model: per-link loss probability, extra latency/jitter,
// and region-level partitions, all adjustable mid-run. The scenario
// engine schedules SetFaults / Partition / Heal calls as simtime events
// to replay the paper's imperfect-network conditions (lossy links,
// unreachable cohorts, regional outages) deterministically: on the
// event-driven path every loss decision is a hash of the seed, the two
// endpoints and the virtual instant, never a shared-rng race.
package simnet

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/peer"
)

// FaultProfile describes the fault behaviour of a link (or, as the
// network default, of every link).
type FaultProfile struct {
	// LossRate is the probability in [0,1] that one message transit —
	// request leg or response leg, drawn independently — is lost. The
	// caller waits out Config.DropTimeout before detecting the loss.
	LossRate float64
	// ExtraLatency is added to every transit on the link: a congested
	// or long-haul path beyond the speed-of-light model.
	ExtraLatency time.Duration
	// Jitter adds a uniformly drawn [0, Jitter) term per transit on top
	// of ExtraLatency (deterministic under the seeded hash).
	Jitter time.Duration
}

// zero reports whether the profile injects no faults at all.
func (p FaultProfile) zero() bool {
	return p.LossRate <= 0 && p.ExtraLatency <= 0 && p.Jitter <= 0
}

// linkKey identifies an unordered region pair for per-link overrides.
type linkKey struct{ a, b geo.Region }

func mkLinkKey(a, b geo.Region) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// SetFaults replaces the network-wide default fault profile. Links
// with a SetLinkFaults override keep their override. Safe to call
// mid-run; the scenario engine schedules it as a simtime event.
func (n *Network) SetFaults(p FaultProfile) {
	n.faultMu.Lock()
	n.faults = p
	n.faultMu.Unlock()
}

// Faults returns the current network-wide default fault profile.
func (n *Network) Faults() FaultProfile {
	n.faultMu.RLock()
	defer n.faultMu.RUnlock()
	return n.faults
}

// SetLinkFaults overrides the fault profile for the (unordered) region
// pair a–b, taking precedence over the network default.
func (n *Network) SetLinkFaults(a, b geo.Region, p FaultProfile) {
	n.faultMu.Lock()
	if n.linkFaults == nil {
		n.linkFaults = make(map[linkKey]FaultProfile)
	}
	n.linkFaults[mkLinkKey(a, b)] = p
	n.faultMu.Unlock()
}

// linkProfile resolves the fault profile for traffic between regions a
// and b: an exact per-link override wins, else the network default.
func (n *Network) linkProfile(a, b geo.Region) FaultProfile {
	n.faultMu.RLock()
	defer n.faultMu.RUnlock()
	if p, ok := n.linkFaults[mkLinkKey(a, b)]; ok {
		return p
	}
	return n.faults
}

// Partition installs a regional partition: traffic between a peer
// inside the named regions and a peer outside them is cut in both
// directions (dials time out, in-flight requests drop) until Heal.
// Calling Partition again replaces the previous partition set.
func (n *Network) Partition(regions ...geo.Region) {
	set := make(map[geo.Region]bool, len(regions))
	for _, r := range regions {
		set[r] = true
	}
	n.faultMu.Lock()
	n.partition = set
	n.faultMu.Unlock()
}

// Heal removes the regional partition.
func (n *Network) Heal() {
	n.faultMu.Lock()
	n.partition = nil
	n.faultMu.Unlock()
}

// PartitionedRegions returns the currently partitioned regions, sorted,
// or nil when the network is whole.
func (n *Network) PartitionedRegions() []geo.Region {
	n.faultMu.RLock()
	defer n.faultMu.RUnlock()
	if len(n.partition) == 0 {
		return nil
	}
	out := make([]geo.Region, 0, len(n.partition))
	for r := range n.partition {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// partitioned reports whether regions a and b sit on opposite sides of
// the installed partition.
func (n *Network) partitioned(a, b geo.Region) bool {
	n.faultMu.RLock()
	defer n.faultMu.RUnlock()
	if len(n.partition) == 0 {
		return false
	}
	return n.partition[a] != n.partition[b]
}

// Dialable reports whether a peer accepts inbound dials (independent of
// NAT mappings held open by its own outbound dials).
func (n *Network) Dialable(id peer.ID) bool {
	n.mu.RLock()
	nd := n.nodes[id]
	n.mu.RUnlock()
	return nd != nil && nd.dialable
}

// lossDraw decides whether one message transit between a and b is lost
// under rate. Under the discrete-event scheduler the decision is a hash
// of (seed, endpoints, kind, virtual instant) — deterministic across
// replays like jitter draws; kind separates the request leg from the
// response leg so the two are independent. On the legacy path it is the
// shared rng.
func (n *Network) lossDraw(a, b peer.ID, kind string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	if n.det {
		return hashFloat(n.cfg.Seed, a, b, kind, n.cfg.Time.Now().UnixNano()) < rate
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < rate
}

// faultDelay is the per-transit latency tax of a fault profile: the
// fixed ExtraLatency plus a deterministic jitter draw.
func (n *Network) faultDelay(a, b peer.ID, p FaultProfile) time.Duration {
	if p.ExtraLatency <= 0 && p.Jitter <= 0 {
		return 0
	}
	return p.ExtraLatency + n.jitter(a, b, "fault", p.Jitter)
}

// hashFloat derives a uniform float64 in [0,1) from an FNV-1a hash of
// the interaction key — the loss-model sibling of hashDur.
func hashFloat(seed int64, a, b peer.ID, kind string, at int64) float64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mixInt := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixInt(uint64(seed))
	mix(string(a))
	mix(string(b))
	mix(kind)
	mixInt(uint64(at))
	return float64(h>>11) / float64(1<<53)
}
