package record

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/multiaddr"
	"repro/internal/multicodec"
	"repro/internal/peer"
)

var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func testIdentity(seed int64) peer.Identity {
	return peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
}

func TestProviderRecordExpiry(t *testing.T) {
	r := ProviderRecord{
		Cid:       cid.Sum(multicodec.Raw, []byte("content")),
		Provider:  testIdentity(1).ID,
		Published: epoch,
	}
	if r.Expired(epoch.Add(23*time.Hour), 0) {
		t.Error("record should be live at 23h (24h default expiry)")
	}
	if !r.Expired(epoch.Add(25*time.Hour), 0) {
		t.Error("record should expire after 24h")
	}
	if r.Expired(epoch.Add(2*time.Hour), time.Hour) == false {
		t.Error("custom ttl should apply")
	}
}

func TestPeerRecordSignVerify(t *testing.T) {
	ident := testIdentity(2)
	addrs := []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/1.2.3.4/tcp/4001")}
	r := NewPeerRecord(ident, addrs, 1, epoch)
	if err := r.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Tamper with the addresses.
	r2 := r
	r2.Addrs = []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/6.6.6.6/tcp/4001")}
	if err := r2.Verify(); err == nil {
		t.Error("tampered record should fail verification")
	}
	// Claim someone else's ID.
	r3 := r
	r3.ID = testIdentity(3).ID
	if err := r3.Verify(); err == nil {
		t.Error("record with mismatched ID should fail")
	}
}

func TestProviderStore(t *testing.T) {
	now := epoch
	clock := func() time.Time { return now }
	s := NewProviderStore(0, clock)
	c := cid.Sum(multicodec.Raw, []byte("x"))
	p1, p2 := testIdentity(4).ID, testIdentity(5).ID
	s.Add(ProviderRecord{Cid: c, Provider: p1, Published: now})
	s.Add(ProviderRecord{Cid: c, Provider: p2, Published: now})
	if got := s.Get(c); len(got) != 2 {
		t.Fatalf("Get = %d records, want 2", len(got))
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	// Re-adding the same provider refreshes rather than duplicates.
	s.Add(ProviderRecord{Cid: c, Provider: p1, Published: now.Add(time.Hour)})
	if got := s.Get(c); len(got) != 2 {
		t.Errorf("refresh duplicated: %d records", len(got))
	}
}

func TestProviderStoreExpiryAndGC(t *testing.T) {
	now := epoch
	clock := func() time.Time { return now }
	s := NewProviderStore(0, clock)
	c := cid.Sum(multicodec.Raw, []byte("y"))
	s.Add(ProviderRecord{Cid: c, Provider: testIdentity(6).ID, Published: epoch})
	now = epoch.Add(25 * time.Hour)
	if got := s.Get(c); len(got) != 0 {
		t.Errorf("expired records served: %d", len(got))
	}
	if dropped := s.GC(); dropped != 1 {
		t.Errorf("GC dropped %d, want 1", dropped)
	}
	if s.Len() != 0 {
		t.Errorf("Len after GC = %d", s.Len())
	}
}

func TestPeerStorePutGet(t *testing.T) {
	now := epoch
	clock := func() time.Time { return now }
	s := NewPeerStore(0, clock)
	ident := testIdentity(7)
	r := NewPeerRecord(ident, []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/1.1.1.1/tcp/1")}, 1, epoch)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ident.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || len(got.Addrs) != 1 {
		t.Errorf("Get = %+v", got)
	}
	if _, err := s.Get(testIdentity(8).ID); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestPeerStoreSequenceOrdering(t *testing.T) {
	s := NewPeerStore(0, func() time.Time { return epoch })
	ident := testIdentity(9)
	newer := NewPeerRecord(ident, []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/2.2.2.2/tcp/2")}, 5, epoch)
	older := NewPeerRecord(ident, []multiaddr.Multiaddr{multiaddr.MustParse("/ip4/1.1.1.1/tcp/1")}, 3, epoch)
	if err := s.Put(newer); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(older); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ident.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 5 {
		t.Errorf("stale record replaced newer one: seq = %d", got.Seq)
	}
}

func TestPeerStoreRejectsForged(t *testing.T) {
	s := NewPeerStore(0, nil)
	ident := testIdentity(10)
	r := NewPeerRecord(ident, nil, 1, epoch)
	r.ID = testIdentity(11).ID // forge ownership
	if err := s.Put(r); err == nil {
		t.Error("forged record should be rejected")
	}
}

func TestPeerStoreExpiry(t *testing.T) {
	now := epoch
	s := NewPeerStore(0, func() time.Time { return now })
	ident := testIdentity(12)
	if err := s.Put(NewPeerRecord(ident, nil, 1, epoch)); err != nil {
		t.Fatal(err)
	}
	now = epoch.Add(30 * time.Hour)
	if _, err := s.Get(ident.ID); err != ErrExpired {
		t.Errorf("err = %v, want ErrExpired", err)
	}
}

func TestDefaultIntervalsMatchPaper(t *testing.T) {
	if DefaultRepublishInterval != 12*time.Hour {
		t.Error("republish interval should be 12h (§3.1)")
	}
	if DefaultExpireInterval != 24*time.Hour {
		t.Error("expiry interval should be 24h (§3.1)")
	}
}
