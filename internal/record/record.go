// Package record implements the two record types the DHT stores
// (§3.1): provider records, which map a CID to the PeerID of a peer
// holding the content, and signed peer records, which map a PeerID to
// its Multiaddresses. Both carry the timers of §3.1: records are
// republished every 12 h and expire after 24 h so the system never
// serves stale mappings.
package record

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/varint"
)

// Default intervals from §3.1.
const (
	DefaultRepublishInterval = 12 * time.Hour
	DefaultExpireInterval    = 24 * time.Hour
)

// ProviderRecord states that Provider held the content identified by
// Cid at time Published.
type ProviderRecord struct {
	Cid       cid.Cid
	Provider  peer.ID
	Published time.Time
}

// Expired reports whether the record has passed the expiry interval at
// time now.
func (r ProviderRecord) Expired(now time.Time, ttl time.Duration) bool {
	if ttl <= 0 {
		ttl = DefaultExpireInterval
	}
	return now.Sub(r.Published) > ttl
}

// PeerRecord maps a PeerID to its Multiaddresses, signed by the peer's
// key so that requestors can authenticate the mapping.
type PeerRecord struct {
	ID        peer.ID
	Addrs     []multiaddr.Multiaddr
	Seq       uint64 // monotonically increasing per publisher
	PublicKey ed25519.PublicKey
	Signature []byte
	Published time.Time
}

// Errors returned by this package.
var (
	ErrBadRecord = errors.New("record: malformed")
	ErrExpired   = errors.New("record: expired")
)

// signablePeerRecord returns the canonical byte string covered by the
// peer-record signature.
func signablePeerRecord(id peer.ID, addrs []multiaddr.Multiaddr, seq uint64) []byte {
	out := []byte("ipfs-peer-record:")
	out = append(out, id...)
	out = varint.Append(out, seq)
	for _, a := range addrs {
		ab := a.Bytes()
		out = varint.Append(out, uint64(len(ab)))
		out = append(out, ab...)
	}
	return out
}

// NewPeerRecord builds and signs a peer record for the identity.
func NewPeerRecord(ident peer.Identity, addrs []multiaddr.Multiaddr, seq uint64, now time.Time) PeerRecord {
	return PeerRecord{
		ID:        ident.ID,
		Addrs:     append([]multiaddr.Multiaddr(nil), addrs...),
		Seq:       seq,
		PublicKey: ident.Public,
		Signature: ident.Sign(signablePeerRecord(ident.ID, addrs, seq)),
		Published: now,
	}
}

// Verify checks the record's signature and that the embedded key
// matches the claimed PeerID.
func (r PeerRecord) Verify() error {
	return peer.Verify(r.ID, r.PublicKey, signablePeerRecord(r.ID, r.Addrs, r.Seq), r.Signature)
}

// Expired reports whether the record is older than ttl at now.
func (r PeerRecord) Expired(now time.Time, ttl time.Duration) bool {
	if ttl <= 0 {
		ttl = DefaultExpireInterval
	}
	return now.Sub(r.Published) > ttl
}

// ProviderStore holds the provider records a DHT server is responsible
// for. It enforces the expiry interval on read.
type ProviderStore struct {
	mu      sync.RWMutex
	ttl     time.Duration
	records map[string]map[peer.ID]ProviderRecord // cid key -> provider -> record
	now     func() time.Time
}

// NewProviderStore creates a store with the given TTL (<=0 selects the
// 24 h default). now overrides the clock for tests and simulation; nil
// uses time.Now.
func NewProviderStore(ttl time.Duration, now func() time.Time) *ProviderStore {
	if ttl <= 0 {
		ttl = DefaultExpireInterval
	}
	if now == nil {
		now = time.Now
	}
	return &ProviderStore{ttl: ttl, records: make(map[string]map[peer.ID]ProviderRecord), now: now}
}

// Add stores (or refreshes) a provider record.
func (s *ProviderStore) Add(r ProviderRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := r.Cid.Key()
	m, ok := s.records[key]
	if !ok {
		m = make(map[peer.ID]ProviderRecord)
		s.records[key] = m
	}
	m[r.Provider] = r
}

// Get returns the unexpired provider records for c.
func (s *ProviderStore) Get(c cid.Cid) []ProviderRecord {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ProviderRecord
	for _, r := range s.records[c.Key()] {
		if !r.Expired(now, s.ttl) {
			out = append(out, r)
		}
	}
	return out
}

// Records returns a snapshot of every unexpired provider record — the
// enumeration an indexer's anti-entropy gossip round pushes to its
// replica group.
func (s *ProviderStore) Records() []ProviderRecord {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ProviderRecord
	for _, m := range s.records {
		for _, r := range m {
			if !r.Expired(now, s.ttl) {
				out = append(out, r)
			}
		}
	}
	return out
}

// GC removes expired records and returns how many were dropped.
func (s *ProviderStore) GC() int {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for key, m := range s.records {
		for p, r := range m {
			if r.Expired(now, s.ttl) {
				delete(m, p)
				dropped++
			}
		}
		if len(m) == 0 {
			delete(s.records, key)
		}
	}
	return dropped
}

// Len returns the number of live (possibly expired, not yet GC'd)
// records.
func (s *ProviderStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.records {
		n += len(m)
	}
	return n
}

// PeerStore holds signed peer records keyed by PeerID, retaining the
// highest sequence number seen for each peer.
type PeerStore struct {
	mu      sync.RWMutex
	ttl     time.Duration
	records map[peer.ID]PeerRecord
	now     func() time.Time
}

// NewPeerStore creates a peer-record store with the given TTL.
func NewPeerStore(ttl time.Duration, now func() time.Time) *PeerStore {
	if ttl <= 0 {
		ttl = DefaultExpireInterval
	}
	if now == nil {
		now = time.Now
	}
	return &PeerStore{ttl: ttl, records: make(map[peer.ID]PeerRecord), now: now}
}

// Put stores a verified record, rejecting invalid signatures and stale
// sequence numbers.
func (s *PeerStore) Put(r PeerRecord) error {
	if err := r.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.records[r.ID]; ok && cur.Seq >= r.Seq {
		return nil // keep the newer (or equal) record we already have
	}
	s.records[r.ID] = r
	return nil
}

// Get returns the record for id if present and unexpired.
func (s *PeerStore) Get(id peer.ID) (PeerRecord, error) {
	s.mu.RLock()
	r, ok := s.records[id]
	s.mu.RUnlock()
	if !ok {
		return PeerRecord{}, fmt.Errorf("%w: no record for %s", ErrBadRecord, id.Short())
	}
	if r.Expired(s.now(), s.ttl) {
		return PeerRecord{}, ErrExpired
	}
	return r, nil
}

// Len returns the number of stored records.
func (s *PeerStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}
