package merkledag

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/multicodec"
)

func TestNodeEncodeDecodeLeaf(t *testing.T) {
	n := &Node{Data: []byte("leaf payload")}
	back, err := DecodeNode(n.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, n.Data) || len(back.Links) != 0 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestNodeEncodeDecodeInner(t *testing.T) {
	c1 := cid.Sum(multicodec.DagPB, []byte("a"))
	c2 := cid.Sum(multicodec.DagPB, []byte("b"))
	n := &Node{Links: []Link{{Cid: c1, Size: 10}, {Cid: c2, Size: 20}}}
	back, err := DecodeNode(n.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Links) != 2 || !back.Links[0].Cid.Equal(c1) || back.Links[1].Size != 20 {
		t.Errorf("round trip = %+v", back)
	}
	if back.TotalSize() != 30 {
		t.Errorf("TotalSize = %d", back.TotalSize())
	}
}

func TestDecodeNodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x00},
		{0xDA, 0x99, 0x00},
		{0xDA, 0x00, 0x05, 0x01},       // claims 5 data bytes, has 1
		{0xDA, 0x01, 0x01, 0x02, 0x01}, // truncated link cid
	}
	for i, raw := range bad {
		if _, err := DecodeNode(raw); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAddSingleChunk(t *testing.T) {
	store := block.NewMemStore()
	b := NewBuilder(store, 1024, 4)
	data := []byte("fits in one chunk")
	root, err := b.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Errorf("store has %d blocks, want 1", store.Len())
	}
	got, err := Assemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("Assemble mismatch")
	}
}

func TestAddMultiLevel(t *testing.T) {
	store := block.NewMemStore()
	b := NewBuilder(store, 16, 2)                        // tiny params force a deep tree
	data := bytes.Repeat([]byte("0123456789abcdef"), 16) // 16 chunks
	root, err := b.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("Assemble mismatch on multi-level DAG")
	}
	st, err := Statistics(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leaves != 16 {
		t.Errorf("Leaves = %d, want 16", st.Leaves)
	}
	if st.ContentSize != uint64(len(data)) {
		t.Errorf("ContentSize = %d, want %d", st.ContentSize, len(data))
	}
	// 16 leaves with fanout 2: depth = 1 + ceil(log2(16)) = 5.
	if st.Depth != 5 {
		t.Errorf("Depth = %d, want 5", st.Depth)
	}
}

func TestDeduplication(t *testing.T) {
	// The same chunk appearing many times is stored once: the dedup
	// property §2.1 attributes to Merkle DAGs.
	store := block.NewMemStore()
	b := NewBuilder(store, 16, 4)
	repeated := bytes.Repeat([]byte("samechunk16bytes"), 8) // 8 identical chunks
	root, err := b.Add(repeated)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Statistics(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leaves != 8 {
		t.Errorf("logical leaves = %d, want 8", st.Leaves)
	}
	// Physically: 1 unique leaf + interior nodes. 8 links/fanout 4 = 2
	// inner (identical → dedup to... they have identical links so also 1)
	// + root. Just assert far fewer blocks than logical nodes.
	if store.Len() >= st.Blocks {
		t.Errorf("store holds %d blocks for %d logical nodes; expected de-duplication", store.Len(), st.Blocks)
	}
	got, err := Assemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, repeated) {
		t.Error("Assemble mismatch after dedup")
	}
}

func TestSameContentSameRoot(t *testing.T) {
	s1, s2 := block.NewMemStore(), block.NewMemStore()
	data := []byte("location independence")
	r1, _ := NewBuilder(s1, 8, 2).Add(data)
	r2, _ := NewBuilder(s2, 8, 2).Add(data)
	if !r1.Equal(r2) {
		t.Error("same content and parameters must produce the same root CID")
	}
	r3, _ := NewBuilder(block.NewMemStore(), 4, 2).Add(data)
	if r1.Equal(r3) {
		t.Error("different chunk size should change the root CID")
	}
}

func TestAssembleMissingBlock(t *testing.T) {
	store := block.NewMemStore()
	b := NewBuilder(store, 8, 2)
	data := bytes.Repeat([]byte{7}, 64)
	root, err := b.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one leaf.
	cids, err := AllCids(store, root)
	if err != nil {
		t.Fatal(err)
	}
	store.Delete(cids[len(cids)-1])
	if _, err := Assemble(store, root); err == nil {
		t.Error("Assemble with missing block should fail")
	}
}

func TestEmptyContent(t *testing.T) {
	store := block.NewMemStore()
	root, err := NewBuilder(store, 0, 0).Add(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty content reassembled to %d bytes", len(got))
	}
}

func TestAllCidsRootFirst(t *testing.T) {
	store := block.NewMemStore()
	root, err := NewBuilder(store, 8, 2).Add(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	cids, err := AllCids(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(cids) == 0 || !cids[0].Equal(root) {
		t.Error("AllCids should list the root first")
	}
}

func TestQuickAddAssembleRoundTrip(t *testing.T) {
	f := func(data []byte, chunkSz, fanout uint8) bool {
		store := block.NewMemStore()
		b := NewBuilder(store, int(chunkSz%64)+1, int(fanout%8)+2)
		root, err := b.Add(data)
		if err != nil {
			return false
		}
		got, err := Assemble(store, root)
		return err == nil && bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNodeRoundTrip(t *testing.T) {
	f := func(data []byte, nlinks uint8) bool {
		n := &Node{Data: data}
		for i := 0; i < int(nlinks%5); i++ {
			n.Links = append(n.Links, Link{Cid: cid.Sum(multicodec.Raw, []byte{byte(i)}), Size: uint64(i) * 7})
		}
		back, err := DecodeNode(n.Encode())
		if err != nil {
			return false
		}
		if !bytes.Equal(back.Data, n.Data) || len(back.Links) != len(n.Links) {
			return false
		}
		for i := range n.Links {
			if !back.Links[i].Cid.Equal(n.Links[i].Cid) || back.Links[i].Size != n.Links[i].Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
