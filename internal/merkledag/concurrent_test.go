package merkledag

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/cid"
)

func TestAssembleConcurrentMatchesSequential(t *testing.T) {
	store := block.NewMemStore()
	data := bytes.Repeat([]byte("concurrent assembly test "), 4000)
	root, err := NewBuilder(store, 512, 4).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := AssembleConcurrent(store, root, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("workers=%d: output differs from input", workers)
		}
	}
}

// countingFetcher counts concurrent Get calls to verify the semaphore.
type countingFetcher struct {
	inner   Fetcher
	cur     int64
	maxSeen int64
}

func (c *countingFetcher) Get(id cid.Cid) (block.Block, error) {
	n := atomic.AddInt64(&c.cur, 1)
	for {
		m := atomic.LoadInt64(&c.maxSeen)
		if n <= m || atomic.CompareAndSwapInt64(&c.maxSeen, m, n) {
			break
		}
	}
	defer atomic.AddInt64(&c.cur, -1)
	return c.inner.Get(id)
}

func TestAssembleConcurrentRespectsWorkerBound(t *testing.T) {
	store := block.NewMemStore()
	data := bytes.Repeat([]byte{9}, 64*1024)
	root, err := NewBuilder(store, 256, 8).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	cf := &countingFetcher{inner: store}
	if _, err := AssembleConcurrent(cf, root, 4); err != nil {
		t.Fatal(err)
	}
	if cf.maxSeen > 4 {
		t.Errorf("max concurrent fetches = %d, bound was 4", cf.maxSeen)
	}
}

type failingFetcher struct {
	inner Fetcher
	fail  cid.Cid
}

func (f *failingFetcher) Get(c cid.Cid) (block.Block, error) {
	if c.Equal(f.fail) {
		return block.Block{}, errors.New("injected failure")
	}
	return f.inner.Get(c)
}

func TestAssembleConcurrentPropagatesErrors(t *testing.T) {
	store := block.NewMemStore()
	root, err := NewBuilder(store, 64, 4).Add(bytes.Repeat([]byte{1}, 2048))
	if err != nil {
		t.Fatal(err)
	}
	cids, err := AllCids(store, root)
	if err != nil {
		t.Fatal(err)
	}
	ff := &failingFetcher{inner: store, fail: cids[len(cids)-1]}
	if _, err := AssembleConcurrent(ff, root, 8); err == nil {
		t.Error("injected failure should propagate")
	}
}

func TestNamedLinksRoundTrip(t *testing.T) {
	c1 := cid.Sum(0x55, []byte("child"))
	n := &Node{Links: []Link{{Cid: c1, Size: 5, Name: "réadme.md"}}}
	back, err := DecodeNode(n.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Links[0].Name != "réadme.md" {
		t.Errorf("name = %q", back.Links[0].Name)
	}
}

func TestQuickConcurrentAssembleRoundTrip(t *testing.T) {
	f := func(data []byte, chunkSz uint8) bool {
		store := block.NewMemStore()
		root, err := NewBuilder(store, int(chunkSz%64)+1, 3).Add(data)
		if err != nil {
			return false
		}
		got, err := AssembleConcurrent(store, root, 6)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
