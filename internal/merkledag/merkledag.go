// Package merkledag implements the Merkle DAG of §2.1: after chunking,
// IPFS builds a DAG whose root node combines the CIDs of its
// descendants to form the final content CID. Merkle DAGs permit
// multiple parents per node, enabling chunk de-duplication, and are
// location-agnostic: replicating or deleting a file somewhere in the
// network never changes the DAG.
//
// Nodes are encoded with a compact deterministic binary format standing
// in for dag-pb: it is self-describing via the CID codec and framed
// with unsigned varints.
package merkledag

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/chunker"
	"repro/internal/cid"
	"repro/internal/multicodec"
	"repro/internal/varint"
)

// DefaultFanout is the maximum number of links per interior node,
// matching the go-ipfs balanced layout default.
const DefaultFanout = 174

// Link points from a DAG node to a child. Name is empty for the
// anonymous links of file DAGs and carries the entry name in
// directories (see internal/unixfs).
type Link struct {
	Cid  cid.Cid
	Size uint64 // cumulative size of the subtree under the child
	Name string
}

// Node is a Merkle DAG node: leaf nodes carry data, interior nodes carry
// links.
type Node struct {
	Links []Link
	Data  []byte
}

// Errors returned by this package.
var (
	ErrMalformed = errors.New("merkledag: malformed node")
	ErrMissing   = errors.New("merkledag: block missing from store")
)

const (
	nodeMagic   = 0xDA
	leafMarker  = 0x00
	innerMarker = 0x01
)

// Encode serializes a node deterministically.
func (n *Node) Encode() []byte {
	out := []byte{nodeMagic}
	if len(n.Links) == 0 {
		out = append(out, leafMarker)
		out = varint.Append(out, uint64(len(n.Data)))
		return append(out, n.Data...)
	}
	out = append(out, innerMarker)
	out = varint.Append(out, uint64(len(n.Links)))
	for _, l := range n.Links {
		raw := l.Cid.Bytes()
		out = varint.Append(out, uint64(len(raw)))
		out = append(out, raw...)
		out = varint.Append(out, l.Size)
		out = varint.Append(out, uint64(len(l.Name)))
		out = append(out, l.Name...)
	}
	out = varint.Append(out, uint64(len(n.Data)))
	return append(out, n.Data...)
}

// DecodeNode parses a serialized node.
func DecodeNode(raw []byte) (*Node, error) {
	if len(raw) < 2 || raw[0] != nodeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	marker := raw[1]
	raw = raw[2:]
	n := &Node{}
	switch marker {
	case leafMarker:
		dlen, used, err := varint.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		raw = raw[used:]
		if uint64(len(raw)) != dlen {
			return nil, fmt.Errorf("%w: data length mismatch", ErrMalformed)
		}
		n.Data = raw
		return n, nil
	case innerMarker:
		nlinks, used, err := varint.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		raw = raw[used:]
		for i := uint64(0); i < nlinks; i++ {
			clen, used, err := varint.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: link %d cid len: %v", ErrMalformed, i, err)
			}
			raw = raw[used:]
			if uint64(len(raw)) < clen {
				return nil, fmt.Errorf("%w: link %d truncated cid", ErrMalformed, i)
			}
			c, err := cid.FromBytes(raw[:clen])
			if err != nil {
				return nil, fmt.Errorf("%w: link %d: %v", ErrMalformed, i, err)
			}
			raw = raw[clen:]
			size, used, err := varint.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: link %d size: %v", ErrMalformed, i, err)
			}
			raw = raw[used:]
			nlen, used, err := varint.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: link %d name: %v", ErrMalformed, i, err)
			}
			raw = raw[used:]
			if uint64(len(raw)) < nlen {
				return nil, fmt.Errorf("%w: link %d truncated name", ErrMalformed, i)
			}
			name := string(raw[:nlen])
			raw = raw[nlen:]
			n.Links = append(n.Links, Link{Cid: c, Size: size, Name: name})
		}
		dlen, used, err := varint.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		raw = raw[used:]
		if uint64(len(raw)) != dlen {
			return nil, fmt.Errorf("%w: data length mismatch", ErrMalformed)
		}
		n.Data = raw
		return n, nil
	}
	return nil, fmt.Errorf("%w: unknown marker 0x%x", ErrMalformed, marker)
}

// TotalSize returns the cumulative payload size the node covers: its own
// data plus all linked subtrees.
func (n *Node) TotalSize() uint64 {
	s := uint64(len(n.Data))
	for _, l := range n.Links {
		s += l.Size
	}
	return s
}

// Builder assembles balanced Merkle DAGs into a blockstore.
type Builder struct {
	store     block.Store
	chunkSize int
	fanout    int
}

// NewBuilder returns a DAG builder writing into store. chunkSize and
// fanout fall back to the network defaults (256 KiB, 174) when <= 0.
func NewBuilder(store block.Store, chunkSize, fanout int) *Builder {
	if chunkSize <= 0 {
		chunkSize = chunker.DefaultChunkSize
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	return &Builder{store: store, chunkSize: chunkSize, fanout: fanout}
}

// Add imports data: it chunks, builds the balanced DAG bottom-up, stores
// every block (step 1 of Figure 3) and returns the root CID.
func (b *Builder) Add(data []byte) (cid.Cid, error) {
	chunks := chunker.Split(data, b.chunkSize)

	// Layer 0: leaves.
	level := make([]Link, 0, len(chunks))
	for _, c := range chunks {
		leaf := &Node{Data: c}
		blk := block.New(multicodec.DagPB, leaf.Encode())
		if err := b.store.Put(blk); err != nil {
			return cid.Cid{}, fmt.Errorf("merkledag: storing leaf: %w", err)
		}
		level = append(level, Link{Cid: blk.Cid(), Size: uint64(len(c))})
	}

	// Single chunk: the leaf is the root.
	for len(level) > 1 {
		next := make([]Link, 0, (len(level)+b.fanout-1)/b.fanout)
		for off := 0; off < len(level); off += b.fanout {
			end := off + b.fanout
			if end > len(level) {
				end = len(level)
			}
			inner := &Node{Links: append([]Link(nil), level[off:end]...)}
			blk := block.New(multicodec.DagPB, inner.Encode())
			if err := b.store.Put(blk); err != nil {
				return cid.Cid{}, fmt.Errorf("merkledag: storing inner node: %w", err)
			}
			next = append(next, Link{Cid: blk.Cid(), Size: inner.TotalSize()})
		}
		level = next
	}
	return level[0].Cid, nil
}

// Fetcher retrieves blocks by CID; both local stores and the Bitswap
// session type satisfy it.
type Fetcher interface {
	Get(c cid.Cid) (block.Block, error)
}

// Assemble walks the DAG rooted at root depth-first, verifying every
// block against its CID, and returns the reassembled content.
func Assemble(f Fetcher, root cid.Cid) ([]byte, error) {
	var out []byte
	err := Walk(f, root, func(c cid.Cid, n *Node) error {
		if len(n.Links) == 0 {
			out = append(out, n.Data...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Walk visits every node of the DAG rooted at root in depth-first
// pre-order, invoking fn for each. Blocks are verified against their
// CIDs as they are fetched.
func Walk(f Fetcher, root cid.Cid, fn func(cid.Cid, *Node) error) error {
	blk, err := f.Get(root)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrMissing, root, err)
	}
	if !root.Verify(blk.Data()) {
		return fmt.Errorf("merkledag: block %s failed verification", root)
	}
	n, err := DecodeNode(blk.Data())
	if err != nil {
		return err
	}
	if err := fn(root, n); err != nil {
		return err
	}
	for _, l := range n.Links {
		if err := Walk(f, l.Cid, fn); err != nil {
			return err
		}
	}
	return nil
}

// AllCids returns every CID in the DAG rooted at root, root first.
func AllCids(f Fetcher, root cid.Cid) ([]cid.Cid, error) {
	var out []cid.Cid
	err := Walk(f, root, func(c cid.Cid, _ *Node) error {
		out = append(out, c)
		return nil
	})
	return out, err
}

// Stat summarizes a DAG.
type Stat struct {
	Blocks      int    // total DAG nodes
	Leaves      int    // leaf nodes
	ContentSize uint64 // reassembled payload bytes
	Depth       int    // tree height (1 for a single leaf)
}

// Statistics walks the DAG and reports its shape.
func Statistics(f Fetcher, root cid.Cid) (Stat, error) {
	var st Stat
	var depth func(c cid.Cid) (int, error)
	depth = func(c cid.Cid) (int, error) {
		blk, err := f.Get(c)
		if err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrMissing, c, err)
		}
		n, err := DecodeNode(blk.Data())
		if err != nil {
			return 0, err
		}
		st.Blocks++
		if len(n.Links) == 0 {
			st.Leaves++
			st.ContentSize += uint64(len(n.Data))
			return 1, nil
		}
		max := 0
		for _, l := range n.Links {
			d, err := depth(l.Cid)
			if err != nil {
				return 0, err
			}
			if d > max {
				max = d
			}
		}
		return max + 1, nil
	}
	d, err := depth(root)
	if err != nil {
		return Stat{}, err
	}
	st.Depth = d
	return st, nil
}
