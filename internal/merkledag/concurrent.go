package merkledag

import (
	"fmt"
	"sync"

	"repro/internal/cid"
)

// AssembleConcurrent reassembles the DAG rooted at root like Assemble,
// but fetches sibling subtrees with up to workers concurrent fetches —
// how Bitswap sessions overlap block requests in practice. Output
// ordering is preserved; every block is verified against its CID.
func AssembleConcurrent(f Fetcher, root cid.Cid, workers int) ([]byte, error) {
	if workers <= 1 {
		return Assemble(f, root)
	}
	// The semaphore bounds concurrent Get calls only; it is never held
	// across the recursive descent, so ancestors waiting on descendants
	// cannot starve them of slots.
	sem := make(chan struct{}, workers)
	var fetch func(c cid.Cid) ([]byte, error)
	fetch = func(c cid.Cid) ([]byte, error) {
		sem <- struct{}{}
		blk, err := f.Get(c)
		<-sem
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrMissing, c, err)
		}
		if !c.Verify(blk.Data()) {
			return nil, fmt.Errorf("merkledag: block %s failed verification", c)
		}
		n, err := DecodeNode(blk.Data())
		if err != nil {
			return nil, err
		}
		if len(n.Links) == 0 {
			return n.Data, nil
		}
		parts := make([][]byte, len(n.Links))
		errs := make([]error, len(n.Links))
		var wg sync.WaitGroup
		for i, l := range n.Links {
			i, l := i, l
			wg.Add(1)
			go func() {
				defer wg.Done()
				parts[i], errs[i] = fetch(l.Cid)
			}()
		}
		wg.Wait()
		var out []byte
		for i := range parts {
			if errs[i] != nil {
				return nil, errs[i]
			}
			out = append(out, parts[i]...)
		}
		return out, nil
	}
	return fetch(root)
}
