package merkledag

import (
	"context"
	"fmt"

	"repro/internal/cid"
	"repro/internal/simtime"
)

// AssembleConcurrent reassembles the DAG rooted at root like Assemble,
// but fetches sibling subtrees with up to workers concurrent fetches —
// how Bitswap sessions overlap block requests in practice. Output
// ordering is preserved; every block is verified against its CID.
func AssembleConcurrent(f Fetcher, root cid.Cid, workers int) ([]byte, error) {
	return AssembleConcurrentOn(context.Background(), nil, f, root, workers)
}

// AssembleConcurrentOn is AssembleConcurrent running its fetches on the
// given time source: workers spawn through src.Go and both the
// worker-slot waits and the sibling joins are instrumented, so a
// discrete-event scheduler can advance virtual time while fetches park
// inside simulated RPCs. ctx must be the caller's (it carries the
// scheduler lease in event-driven runs); a nil src selects the
// real-time adapter, reproducing the plain-goroutine behaviour.
func AssembleConcurrentOn(ctx context.Context, src simtime.Source, f Fetcher, root cid.Cid, workers int) ([]byte, error) {
	if workers <= 1 {
		return Assemble(f, root)
	}
	if src == nil {
		src = simtime.NewBaseSource(simtime.Realtime, nil)
	}
	// The semaphore bounds concurrent Get calls only; it is never held
	// across the recursive descent, so ancestors waiting on descendants
	// cannot starve them of slots. Slots are prefilled tokens: acquiring
	// is a receive (instrumented under the scheduler) and releasing a
	// deposit into the freed capacity, which never blocks.
	sem := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		sem <- struct{}{}
	}
	var fetch func(ctx context.Context, c cid.Cid) ([]byte, error)
	fetch = func(ctx context.Context, c cid.Cid) ([]byte, error) {
		if _, ok := simtime.Recv(ctx, src, sem); !ok {
			return nil, ctx.Err()
		}
		blk, err := f.Get(c)
		sem <- struct{}{}
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrMissing, c, err)
		}
		if !c.Verify(blk.Data()) {
			return nil, fmt.Errorf("merkledag: block %s failed verification", c)
		}
		n, err := DecodeNode(blk.Data())
		if err != nil {
			return nil, err
		}
		if len(n.Links) == 0 {
			return n.Data, nil
		}
		parts := make([][]byte, len(n.Links))
		errs := make([]error, len(n.Links))
		g := simtime.NewGroup(src)
		for i, l := range n.Links {
			i, l := i, l
			g.Go(ctx, func(gctx context.Context) {
				parts[i], errs[i] = fetch(gctx, l.Cid)
			})
		}
		g.Wait(ctx)
		var out []byte
		for i := range parts {
			if errs[i] != nil {
				return nil, errs[i]
			}
			out = append(out, parts[i]...)
		}
		return out, nil
	}
	return fetch(ctx, root)
}
