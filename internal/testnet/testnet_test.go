package testnet

import (
	"context"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/geo"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

func TestBuildTopology(t *testing.T) {
	tn := Build(Config{N: 120, Seed: 5, Scale: 0.0005})
	if len(tn.Nodes) != 120 || len(tn.Classes) != 120 {
		t.Fatalf("nodes=%d classes=%d", len(tn.Nodes), len(tn.Classes))
	}
	// Every routing table is seeded with neighbours + random links.
	for i, node := range tn.Nodes {
		if node.DHT().Table().Len() < 2*tn.Cfg.NeighborLinks/2 {
			t.Errorf("node %d table has only %d peers", i, node.DHT().Table().Len())
		}
	}
	// Population attributes align with nodes.
	if len(tn.Pop.Peers) != 120 {
		t.Errorf("population = %d", len(tn.Pop.Peers))
	}
}

func TestClassMix(t *testing.T) {
	tn := Build(Config{N: 600, Seed: 6, Scale: 0.0005, FracDead: 0.2, FracSlow: 0.1, FracWSBroken: 0.05})
	counts := map[simnet.Class]int{}
	for _, c := range tn.Classes {
		counts[c]++
	}
	n := float64(len(tn.Classes))
	if f := float64(counts[simnet.DeadDial]) / n; f < 0.14 || f > 0.27 {
		t.Errorf("dead fraction = %.2f, want ~0.2", f)
	}
	if f := float64(counts[simnet.Slow]) / n; f < 0.05 || f > 0.16 {
		t.Errorf("slow fraction = %.2f, want ~0.1", f)
	}
	if len(tn.LiveNodes()) != counts[simnet.Normal] {
		t.Error("LiveNodes should match the Normal class count")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build(Config{N: 40, Seed: 7, Scale: 0.0005})
	b := Build(Config{N: 40, Seed: 7, Scale: 0.0005})
	for i := range a.Nodes {
		if a.Nodes[i].ID() != b.Nodes[i].ID() {
			t.Fatal("builds with the same seed must be identical")
		}
		if a.Classes[i] != b.Classes[i] {
			t.Fatal("class assignment must be deterministic")
		}
	}
}

func TestVantageOperates(t *testing.T) {
	tn := Build(Config{N: 60, Seed: 8, Scale: 0.0005, FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9})
	v := tn.AddVantage(geo.EuCentral1, 99)
	if v.Region() != geo.EuCentral1 {
		t.Error("region not set")
	}
	if v.DHT().Table().Len() == 0 {
		t.Error("vantage table not seeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pub, err := v.AddAndPublish(ctx, []byte("vantage content"))
	if err != nil {
		t.Fatal(err)
	}
	if pub.StoreOK == 0 {
		t.Error("no records stored")
	}
	// FlushVantage clears connections and the address book.
	FlushVantage(v)
	if len(v.Swarm().ConnectedPeers()) != 0 || v.Swarm().Book().Len() != 0 {
		t.Error("FlushVantage left state behind")
	}
}

func TestLookupsConvergeAcrossKeyspace(t *testing.T) {
	// The neighbour+random topology must let any node find the true
	// closest peers for arbitrary keys.
	tn := Build(Config{N: 150, Seed: 9, Scale: 0.0003, FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9})
	ctx := context.Background()
	payloads := [][]byte{[]byte("k1"), []byte("k2"), []byte("k3")}
	for i, p := range payloads {
		publisher := tn.Nodes[(i*37)%len(tn.Nodes)]
		pub, err := publisher.AddAndPublish(ctx, p)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		requester := tn.Nodes[(i*53+11)%len(tn.Nodes)]
		provs, _, err := requester.DHT().FindProviders(ctx, pub.Cid)
		if err != nil {
			t.Fatalf("find %d: %v", i, err)
		}
		if len(provs) == 0 {
			t.Fatalf("no providers for key %d", i)
		}
	}
}

// TestApplyTimeline checks the churn-timeline liveness lever: every
// server node's simulated liveness must match its timeline at the
// applied instant, vantages stay online, and re-applying at a later
// tick moves the network to the new state.
func TestApplyTimeline(t *testing.T) {
	clock := simtime.NewClock(DefaultEpoch)
	tn := Build(Config{N: 80, Seed: 3, Scale: 0.0005, Clock: clock,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9})
	tl := churn.GenerateTimeline(tn.Pop, churn.TimelineConfig{
		Start: DefaultEpoch, Duration: 13 * time.Hour, Seed: 7,
	})
	vantage := tn.AddVantage("DE", 99)

	for _, off := range []time.Duration{0, 6 * time.Hour, 12 * time.Hour} {
		at := DefaultEpoch.Add(off)
		clock.Set(at)
		online := tn.ApplyTimeline(tl, at)
		if online <= 0 || online >= 80 {
			t.Fatalf("offset %v: online = %d, want within (0, 80) under churn", off, online)
		}
		count := 0
		for i, node := range tn.Nodes {
			want := tl.Peers[i].OnlineAt(at)
			if got := tn.Net.Online(node.ID()); got != want {
				t.Fatalf("offset %v: node %d online = %v, timeline says %v", off, i, got, want)
			}
			if want {
				count++
			}
		}
		if count != online {
			t.Errorf("offset %v: ApplyTimeline returned %d, recount says %d", off, online, count)
		}
		if !tn.Net.Online(vantage.ID()) {
			t.Error("vantage went offline; timelines must only govern server nodes")
		}
	}
}

// TestClockDrivesNow checks that a testnet built with a Clock threads
// it into record timestamps via Config.Now.
func TestClockDrivesNow(t *testing.T) {
	clock := simtime.NewClock(DefaultEpoch)
	tn := Build(Config{N: 10, Seed: 4, Scale: 0.0005, Clock: clock})
	if got := tn.Cfg.Now(); !got.Equal(DefaultEpoch) {
		t.Fatalf("Now = %v, want the clock's epoch", got)
	}
	clock.Advance(3 * time.Hour)
	if got := tn.Cfg.Now(); !got.Equal(DefaultEpoch.Add(3 * time.Hour)) {
		t.Fatalf("Now did not follow the clock: %v", got)
	}
	if tn.Clock != clock {
		t.Error("testnet did not retain its clock")
	}
}

// TestAddIndexerSetWiring checks the fleet builder: shards×replicas
// indexers attached, one replica group per shard with gossip
// neighbours wired (self excluded), and a topology whose flattened
// membership matches the built nodes.
func TestAddIndexerSetWiring(t *testing.T) {
	tn := Build(Config{N: 10, Seed: 4, Scale: 0.0005})
	fleet := tn.AddIndexerSet(700, 3, 2, time.Hour)
	if fleet.Set.Shards() != 3 || len(fleet.Groups) != 3 {
		t.Fatalf("shards = %d/%d, want 3", fleet.Set.Shards(), len(fleet.Groups))
	}
	if got := len(fleet.Nodes()); got != 6 {
		t.Fatalf("fleet has %d nodes, want 6", got)
	}
	all := fleet.Set.All()
	if len(all) != 6 {
		t.Fatalf("topology lists %d indexers, want 6", len(all))
	}
	for s, group := range fleet.Groups {
		if len(group) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", s, len(group))
		}
		for i, ix := range group {
			if fleet.Replica(s, i) != ix {
				t.Errorf("Replica(%d,%d) mismatch", s, i)
			}
			neighbours := ix.ReplicaGroup()
			if len(neighbours) != 1 {
				t.Fatalf("replica %d/%d has %d gossip neighbours, want 1", s, i, len(neighbours))
			}
			if neighbours[0].ID != group[1-i].ID() {
				t.Errorf("replica %d/%d gossips to %s, want its group peer", s, i, neighbours[0].ID.Short())
			}
		}
	}
	// The replicas of one shard own the same CIDs: the set's partition
	// maps each indexer to exactly one shard.
	for s := range fleet.Groups {
		for _, pi := range fleet.Set.Replicas(s) {
			if got := fleet.Set.Group(pi.ID); len(got) != 1 {
				t.Errorf("Group(%s) = %d peers, want 1", pi.ID.Short(), len(got))
			}
		}
	}
}
