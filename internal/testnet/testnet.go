// Package testnet builds simulated IPFS networks: a geo-distributed
// peer population attached to the simulator, DHT servers with seeded
// routing tables (modelling a converged, long-running network with its
// share of stale entries), and vantage nodes standing in for the six
// AWS measurement VMs of §4.3.
package testnet

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/block"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/geo"
	"repro/internal/kbucket"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Config tunes the built network.
type Config struct {
	// N is the number of DHT server peers.
	N int
	// Seed drives all randomness.
	Seed int64
	// Scale compresses simulated time (e.g. 0.001 = 1000x faster).
	Scale float64

	// Behaviour-class fractions among the population. Dead peers model
	// stale routing-table entries (5 s dial timeouts); slow peers take
	// seconds per RPC; ws-broken peers hang for the 45 s handshake
	// timeout. The remainder behave normally.
	FracDead     float64
	FracSlow     float64
	FracWSBroken float64

	// NeighborLinks seeds each routing table with this many keyspace
	// neighbours on each side (gives lookup convergence); RandomLinks
	// adds long-range contacts.
	NeighborLinks int
	RandomLinks   int

	// Node behaviour knobs passed through to core.Config.
	K                 int
	Alpha             int
	QueryTimeout      time.Duration
	BitswapTimeout    time.Duration
	OmitProviderAddrs bool
	ParallelDiscovery bool
	// Routing selects the content router for every built node (vantage
	// routers can be overridden per node with AddVantageRouting).
	Routing routing.Kind
	// Indexers configures the delegated-routing indexer set, typically
	// from AddIndexer.
	Indexers []wire.PeerInfo
	// IndexerSet, when non-nil, installs a sharded indexer topology
	// (typically from AddIndexerSet) on every built node's indexer
	// router.
	IndexerSet *routing.IndexerSet

	// Now anchors record timestamps.
	Now func() time.Time
	// Clock, when set, supplies Now from a movable simulated wall clock
	// — the churn-scenario engine advances it between workload phases so
	// record TTLs and timeline liveness agree on the current instant.
	// Ignored when Now is set explicitly.
	Clock *simtime.Clock
	// EventDriven builds the network on a discrete-event scheduler over
	// Clock (one is created at DefaultEpoch when nil): every sleep, RPC
	// latency and maintenance loop becomes an event on one priority
	// queue and virtual time jumps between events, so paper-scale
	// populations replay a simulated day in seconds of wall clock.
	EventDriven bool
	// Workers bounds concurrent dispatch in EventDriven mode; 0 or 1
	// selects deterministic lockstep (seeded runs replay bit-for-bit).
	Workers int
	// Time overrides the derived time source (tests).
	Time simtime.Source

	// Faults is the initial link-fault profile installed on the
	// simulator (loss probability, extra latency, jitter). Scenario
	// engines adjust it mid-run via Net.SetFaults / Partition / Heal.
	Faults simnet.FaultProfile
	// ReachabilityMix attaches server peers with their population's
	// sampled dialability (Fig 7's mix: roughly a third of peers are
	// NAT'd and accept no inbound dials) instead of the default
	// everyone-dialable network. Pair with churn.TimelineConfig's
	// NATSessions so those peers still hold ordinary online sessions.
	ReachabilityMix bool
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 200
	}
	if c.Scale <= 0 {
		c.Scale = 0.001
	}
	if c.FracDead == 0 && c.FracSlow == 0 && c.FracWSBroken == 0 {
		c.FracDead, c.FracSlow, c.FracWSBroken = 0.15, 0.08, 0.02
	}
	if c.NeighborLinks <= 0 {
		c.NeighborLinks = 24
	}
	if c.RandomLinks <= 0 {
		c.RandomLinks = 40
	}
	if c.Now == nil {
		if c.Clock != nil {
			c.Now = c.Clock.Now
		} else {
			base := DefaultEpoch
			c.Now = func() time.Time { return base }
		}
	}
	return c
}

// DefaultEpoch anchors simulated wall-clock time (the start of the
// paper's measurement campaign week used throughout the experiments).
var DefaultEpoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

// Testnet is a built simulated network.
type Testnet struct {
	Cfg     Config
	Net     *simnet.Network
	Base    simtime.Base
	Clock   *simtime.Clock     // non-nil when built with Config.Clock or EventDriven
	Time    simtime.Source     // the unified time surface every node shares
	Sched   *simtime.Scheduler // non-nil in EventDriven mode (== Time)
	Nodes   []*core.Node       // all server peers, index-aligned with Classes
	Classes []simnet.Class     // behaviour class per node
	Pop     *geo.Population
}

// Build constructs the network.
func Build(cfg Config) *Testnet {
	if cfg.EventDriven && cfg.Clock == nil {
		cfg.Clock = simtime.NewClock(DefaultEpoch)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := simtime.New(cfg.Scale)
	src := cfg.Time
	var sched *simtime.Scheduler
	if src == nil {
		if cfg.EventDriven {
			sched = simtime.NewScheduler(cfg.Clock, simtime.SchedulerOpts{Workers: cfg.Workers})
			src = sched
		} else {
			src = simtime.NewBaseSource(base, cfg.Now)
		}
	} else {
		sched = simtime.SchedulerOf(src)
	}
	net := simnet.New(simnet.Config{Base: base, Seed: cfg.Seed + 1, Time: src, Faults: cfg.Faults})

	popCfg := geo.DefaultPopulationConfig(cfg.N)
	popCfg.Seed = cfg.Seed + 2
	pop := geo.GeneratePopulation(popCfg)

	tn := &Testnet{Cfg: cfg, Net: net, Base: base, Clock: cfg.Clock, Time: src, Sched: sched, Pop: pop}

	infos := make([]wire.PeerInfo, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ident := peer.MustNewIdentity(rng)
		class := simnet.Normal
		switch x := rng.Float64(); {
		case x < cfg.FracDead:
			class = simnet.DeadDial
		case x < cfg.FracDead+cfg.FracSlow:
			class = simnet.Slow
		case x < cfg.FracDead+cfg.FracSlow+cfg.FracWSBroken:
			class = simnet.WSBroken
		}
		// By default every server is dialable and reachability is
		// expressed through the behaviour class; ReachabilityMix instead
		// honours the population's sampled NAT status (Fig 7's mix).
		ep := net.AddNode(ident.ID, simnet.NodeOpts{
			Region:   pop.Peers[i].Country,
			Dialable: !cfg.ReachabilityMix || pop.Peers[i].Dialable,
			Class:    class,
		})
		node := core.New(ident, ep, core.Config{
			Mode:              dht.ModeServer,
			Region:            pop.Peers[i].Country,
			K:                 cfg.K,
			Alpha:             cfg.Alpha,
			QueryTimeout:      cfg.QueryTimeout,
			BitswapTimeout:    cfg.BitswapTimeout,
			OmitProviderAddrs: cfg.OmitProviderAddrs,
			ParallelDiscovery: cfg.ParallelDiscovery,
			Routing:           cfg.Routing,
			Indexers:          cfg.Indexers,
			IndexerSet:        cfg.IndexerSet,
			Base:              base,
			Now:               cfg.Now,
			Time:              src,
		})
		tn.Nodes = append(tn.Nodes, node)
		tn.Classes = append(tn.Classes, class)
		infos[i] = node.Info()
	}

	tn.seedTables(rng, infos)
	return tn
}

// seedTables wires the routing topology: each node learns its keyspace
// neighbours (so lookups converge on the true k closest) plus random
// long-range contacts (so lookups make exponential progress), the shape
// a converged Kademlia network has. Dead peers are seeded like everyone
// else: they are exactly the stale entries real tables accumulate.
func (tn *Testnet) seedTables(rng *rand.Rand, infos []wire.PeerInfo) {
	n := len(tn.Nodes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	keys := make([]kbucket.Key, n)
	for i, node := range tn.Nodes {
		keys[i] = kbucket.KeyForPeer(node.ID())
	}
	sort.Slice(order, func(a, b int) bool {
		return kbucket.Less(keys[order[a]], keys[order[b]])
	})
	pos := make([]int, n) // node index -> position in sorted order
	for p, idx := range order {
		pos[idx] = p
	}

	for i, node := range tn.Nodes {
		p := pos[i]
		for d := 1; d <= tn.Cfg.NeighborLinks; d++ {
			succ := order[(p+d)%n]
			pred := order[(p-d%n+n)%n]
			node.DHT().Seed(infos[succ])
			node.DHT().Seed(infos[pred])
		}
		for r := 0; r < tn.Cfg.RandomLinks; r++ {
			node.DHT().Seed(infos[rng.Intn(n)])
		}
	}
}

// LiveNodes returns the nodes whose class responds normally.
func (tn *Testnet) LiveNodes() []*core.Node {
	var out []*core.Node
	for i, node := range tn.Nodes {
		if tn.Classes[i] == simnet.Normal {
			out = append(out, node)
		}
	}
	return out
}

// OnlineNodes returns the live nodes currently online — the bystander
// pool the churn experiments draw Bitswap neighbours from, so every
// router's opportunistic phase faces the same live neighbourhood.
func (tn *Testnet) OnlineNodes() []*core.Node {
	var out []*core.Node
	for _, node := range tn.LiveNodes() {
		if tn.Net.Online(node.ID()) {
			out = append(out, node)
		}
	}
	return out
}

// AddVantage attaches an instrumented measurement node in the given
// region (one of the §4.3 AWS VMs) with a seeded routing table.
func (tn *Testnet) AddVantage(region geo.Region, seed int64) *core.Node {
	return tn.addVantage(region, seed, tn.Cfg.Routing, tn.Cfg.Indexers, tn.Cfg.IndexerSet, nil)
}

// AddVantageStore attaches a vantage node backed by a specific block
// store (e.g. a PackStore) instead of the default in-memory store.
func (tn *Testnet) AddVantageStore(region geo.Region, seed int64, store block.Store) *core.Node {
	return tn.addVantage(region, seed, tn.Cfg.Routing, tn.Cfg.Indexers, tn.Cfg.IndexerSet, store)
}

// AddVantageRouting attaches a vantage node using a specific content
// router — the routing-comparison experiment puts vantages with
// different routers on the same network.
func (tn *Testnet) AddVantageRouting(region geo.Region, seed int64, kind routing.Kind, indexers []wire.PeerInfo) *core.Node {
	return tn.addVantage(region, seed, kind, indexers, nil, nil)
}

// AddVantageSharded attaches a vantage node whose indexer router
// routes through a sharded indexer topology (from AddIndexerSet).
func (tn *Testnet) AddVantageSharded(region geo.Region, seed int64, kind routing.Kind, set *routing.IndexerSet) *core.Node {
	return tn.addVantage(region, seed, kind, set.All(), set, nil)
}

func (tn *Testnet) addVantage(region geo.Region, seed int64, kind routing.Kind, indexers []wire.PeerInfo, set *routing.IndexerSet, store block.Store) *core.Node {
	rng := rand.New(rand.NewSource(seed))
	ident := peer.MustNewIdentity(rng)
	ep := tn.Net.AddNode(ident.ID, simnet.NodeOpts{
		Region:   region,
		Dialable: true,
		Class:    simnet.Normal,
	})
	node := core.New(ident, ep, core.Config{
		Mode:              dht.ModeServer,
		Region:            region,
		K:                 tn.Cfg.K,
		Alpha:             tn.Cfg.Alpha,
		QueryTimeout:      tn.Cfg.QueryTimeout,
		BitswapTimeout:    tn.Cfg.BitswapTimeout,
		OmitProviderAddrs: tn.Cfg.OmitProviderAddrs,
		ParallelDiscovery: tn.Cfg.ParallelDiscovery,
		Routing:           kind,
		Indexers:          indexers,
		IndexerSet:        set,
		Store:             store,
		Base:              tn.Base,
		Now:               tn.Cfg.Now,
		Time:              tn.Time,
	})
	// Seed with keyspace-spread contacts like a bootstrapped node.
	for r := 0; r < tn.Cfg.NeighborLinks+tn.Cfg.RandomLinks; r++ {
		node.DHT().Seed(tn.Nodes[rng.Intn(len(tn.Nodes))].Info())
	}
	return node
}

// AddGatewayFleet attaches n gateway vantage nodes spread round-robin
// across the AWS regions (the fleet points of presence). stores, when
// non-nil, supplies each instance's block store — typically a bounded
// block.LRUStore per edge instance, so the fleet's shared cache tier
// sits between small edges and the origin; nil keeps the default
// in-memory store. The builder consumes seeds seed..seed+n-1.
func (tn *Testnet) AddGatewayFleet(n int, seed int64, stores func(i int) block.Store) []*core.Node {
	nodes := make([]*core.Node, n)
	for i := range nodes {
		region := geo.AWSRegions[i%len(geo.AWSRegions)]
		var store block.Store
		if stores != nil {
			store = stores(i)
		}
		nodes[i] = tn.AddVantageStore(region, seed+int64(i), store)
	}
	return nodes
}

// AddIndexer attaches a delegated-routing indexer node to the network
// and returns it; pass its Info to indexer-routed nodes.
func (tn *Testnet) AddIndexer(region geo.Region, seed int64) *routing.Indexer {
	return tn.AddIndexerTTL(region, seed, 0)
}

// AddIndexerTTL attaches an indexer with a custom provider-record TTL
// (<= 0 selects the 24 h default) — churn-scenario tests shrink it so
// record expiry crosses the simulated window.
func (tn *Testnet) AddIndexerTTL(region geo.Region, seed int64, ttl time.Duration) *routing.Indexer {
	rng := rand.New(rand.NewSource(seed))
	ident := peer.MustNewIdentity(rng)
	ep := tn.Net.AddNode(ident.ID, simnet.NodeOpts{
		Region:   region,
		Dialable: true,
		Class:    simnet.Normal,
	})
	return routing.NewIndexer(ident, ep, routing.IndexerConfig{
		RecordTTL: ttl,
		Base:      tn.Base,
		Now:       tn.Cfg.Now,
		Time:      tn.Time,
	})
}

// IndexerFleet is a built sharded indexer deployment: the shard
// topology clients route by, plus the live indexer nodes grouped per
// shard (replica order matches the topology's).
type IndexerFleet struct {
	Set    *routing.IndexerSet
	Groups [][]*routing.Indexer // one replica group per shard
}

// Nodes returns every indexer in the fleet, shard-major.
func (f *IndexerFleet) Nodes() []*routing.Indexer {
	var out []*routing.Indexer
	for _, g := range f.Groups {
		out = append(out, g...)
	}
	return out
}

// Replica returns shard s's i-th replica (0 = the primary lookups try
// first).
func (f *IndexerFleet) Replica(s, i int) *routing.Indexer { return f.Groups[s][i] }

// AddIndexerSet attaches shards×replicas indexer nodes spread across
// the AWS regions, wires each shard's replica group for gossip, and
// returns the fleet. ttl <= 0 selects the 24 h record TTL default.
// Pass fleet.Set into Config.IndexerSet / AddVantageSharded so clients
// route by the same shard map the indexers replicate within. The
// builder consumes seeds seed..seed+shards×replicas-1 (identities
// derive from the seed, and a reused seed silently replaces the
// earlier peer on the simulator) — keep later vantage seeds outside
// that range.
func (tn *Testnet) AddIndexerSet(seed int64, shards, replicas int, ttl time.Duration) *IndexerFleet {
	if shards <= 0 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = 1
	}
	fleet := &IndexerFleet{}
	groups := make([][]wire.PeerInfo, shards)
	for s := 0; s < shards; s++ {
		var group []*routing.Indexer
		for i := 0; i < replicas; i++ {
			region := geo.AWSRegions[(s*replicas+i)%len(geo.AWSRegions)]
			ix := tn.AddIndexerTTL(region, seed+int64(s*replicas+i), ttl)
			group = append(group, ix)
			groups[s] = append(groups[s], ix.Info())
		}
		fleet.Groups = append(fleet.Groups, group)
	}
	fleet.Set = routing.NewIndexerSet(groups)
	for s, group := range fleet.Groups {
		for _, ix := range group {
			ix.SetReplicaGroup(groups[s])
		}
	}
	return fleet
}

// SetOnline toggles a peer's simulated liveness — the one-shot churn
// lever; timeline-driven experiments use ApplyTimeline (sweep mode) or
// ScheduleTimeline (event-driven mode) instead. Addressing by PeerID
// replaces the old index-based variant: vantages and indexers are not
// in Nodes, so indices could not name every togglable peer.
func (tn *Testnet) SetOnline(id peer.ID, online bool) {
	tn.Net.SetOnline(id, online)
}

// ApplyTimeline sets every server node's simulated liveness from its
// churn timeline at instant t, so publishes, refresh crawls,
// republishes and Bitswap sessions all face whichever peers the
// diurnal session model has online. Timelines are index-aligned with
// Nodes (both derive from Pop); vantages and indexers are not in Nodes
// and stay online. It returns how many server nodes are online.
func (tn *Testnet) ApplyTimeline(tl *churn.Timeline, t time.Time) int {
	online := 0
	for i, node := range tn.Nodes {
		if i >= len(tl.Peers) {
			break
		}
		up := tl.Peers[i].OnlineAt(t)
		tn.Net.SetOnline(node.ID(), up)
		if up {
			online++
		}
	}
	return online
}

// ScheduleTimeline is ApplyTimeline's event-driven form: it applies
// every server node's liveness at instant from, then registers one
// chained transition event per peer on the scheduler — each firing
// flips the peer at its exact session boundary and re-arms for the
// next, so churn costs one queue event per transition instead of a
// full-population sweep per tick. Transitions are capped at until.
// It returns how many server nodes are online at from, and falls back
// to a plain ApplyTimeline when the testnet has no scheduler.
func (tn *Testnet) ScheduleTimeline(tl *churn.Timeline, from, until time.Time) int {
	online := tn.ApplyTimeline(tl, from)
	if tn.Sched == nil {
		return online
	}
	for i := range tn.Nodes {
		if i >= len(tl.Peers) {
			break
		}
		pt := &tl.Peers[i]
		id := tn.Nodes[i].ID()
		var arm func(t time.Time)
		arm = func(t time.Time) {
			next, ok := pt.NextTransition(t)
			if !ok || next.After(until) {
				return
			}
			tn.Sched.At(next, func() {
				tn.Net.SetOnline(id, pt.OnlineAt(next))
				arm(next)
			})
		}
		arm(from)
	}
	return online
}

// FlushVantage resets a vantage node's connections and address book so
// the next retrieval pays the full discovery cost, as the §4.3
// experiment does between iterations.
func FlushVantage(n *core.Node) {
	n.Swarm().DisconnectAll()
	n.Swarm().Book().Clear()
}
