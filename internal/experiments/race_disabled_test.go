//go:build !race

package experiments

// raceEnabled is false in uninstrumented builds: seeded event-driven
// runs replay bit-for-bit, so tests assert full-output equality and pin
// complete fault-scenario time series as goldens.
const raceEnabled = false
