package experiments

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/testnet"
	"repro/internal/wire"
)

// The three canned fault scenarios are read-only after Run, and several
// tests render different views of each (degradation assertions, golden
// pins, budget checks) — one seeded execution serves them all.
var (
	lossOnce sync.Once
	lossRes  *RoutingResults

	partOnce sync.Once
	partRes  *RoutingResults

	mixOnce sync.Once
	mixRes  *RoutingResults
)

func lossSweepResults() *RoutingResults {
	lossOnce.Do(func() { lossRes = LossSweepScenario(42) })
	return lossRes
}

func partitionHealResults() *RoutingResults {
	partOnce.Do(func() { partRes = PartitionHealScenario(42) })
	return partRes
}

func reachabilityMixResults() *RoutingResults {
	mixOnce.Do(func() { mixRes = ReachabilityMixScenario(42) })
	return mixRes
}

// TestLossSweepDegradesHitRateMonotonically runs scenario (a) and
// asserts every router's hit rate is a monotone (within per-tick draw
// slack) non-increasing function of the link-loss rate, with the sweep
// endpoints decisively separated — the degradation curve the paper's
// adversarial conditions predict. The drops must also be visible in the
// budget: lost requests surface as a distinct counter, not as silence.
func TestLossSweepDegradesHitRateMonotonically(t *testing.T) {
	res := lossSweepResults()
	if res.SchedStalls != 0 {
		t.Fatalf("scheduler stalled %d times: the lossy run left a wait uninstrumented", res.SchedStalls)
	}
	for _, rp := range res.Routers {
		if len(rp.Ticks) != len(LossSweepRates) {
			t.Fatalf("%s: %d ticks, want one per sweep rate (%d)", rp.Kind, len(rp.Ticks), len(LossSweepRates))
		}
		for i, tick := range rp.Ticks {
			if tick.LossRate != LossSweepRates[i] {
				t.Errorf("%s tick %d: loss rate in force = %.2f, want %.2f (transition phase did not land)",
					rp.Kind, i, tick.LossRate, LossSweepRates[i])
			}
			if math.IsNaN(tick.HitRate()) {
				t.Fatalf("%s tick %d: no retrievals ran", rp.Kind, i)
			}
		}
		first := rp.Ticks[0].HitRate()
		last := rp.Ticks[len(rp.Ticks)-1].HitRate()
		if first < 0.9 {
			t.Errorf("%s: clean-link baseline hit rate = %.2f, want ≥ 0.9", rp.Kind, first)
		}
		if raceEnabled {
			// The race runtime reorders same-instant events, which moves
			// individual loss draws; the curve's exact shape is only
			// contractual in uninstrumented builds.
			continue
		}
		for i := 1; i < len(rp.Ticks); i++ {
			prev, cur := rp.Ticks[i-1].HitRate(), rp.Ticks[i].HitRate()
			// A hair of slack between adjacent rates (per-object draw
			// noise); the trend must stay downward.
			if cur > prev+0.1 {
				t.Errorf("%s: hit rate rose from %.2f (loss %.0f%%) to %.2f (loss %.0f%%)",
					rp.Kind, prev, 100*rp.Ticks[i-1].LossRate, cur, 100*rp.Ticks[i].LossRate)
			}
		}
		if first-last < 0.3 {
			t.Errorf("%s: hit rate barely degraded: %.2f at 0%% loss vs %.2f at %.0f%% loss",
				rp.Kind, first, last, 100*LossSweepRates[len(LossSweepRates)-1])
		}
	}
	if res.Budget.Dropped == 0 {
		t.Error("a 0→30% loss sweep dropped no requests: the fault model is not wired to the budget")
	}
	var catSum int64
	for cat, v := range res.Budget.DroppedByCategory {
		if v < 0 {
			t.Errorf("negative drop count for category %s", cat)
		}
		catSum += v
	}
	if catSum != res.Budget.Dropped {
		t.Errorf("per-category drops sum to %d, total is %d", catSum, res.Budget.Dropped)
	}
	for _, name := range []string{"loss->0%", "loss->10%", "loss->20%", "loss->30%"} {
		if res.Phase(name) == nil {
			t.Errorf("loss sweep scheduled no %q transition phase", name)
		}
	}
	if ps := res.Phase("loss->30%"); ps != nil && ps.LossRate != 0.30 {
		t.Errorf("loss->30%% phase row reports rate %.2f, want the state it installed", ps.LossRate)
	}
}

// TestPartitionHealRestoresHitRate runs scenario (b): the vantage
// regions are cut off at 3h and healed at 5h of a 12h window. The tick
// before the cut must be clean, the tick inside the partition must fail
// outright with the partition state on its row, and the first tick
// after the heal — which follows the mid-window snapshot refresh — must
// be fully recovered: healing restores the hit rate within one refresh
// interval.
func TestPartitionHealRestoresHitRate(t *testing.T) {
	res := partitionHealResults()
	if res.SchedStalls != 0 {
		t.Fatalf("scheduler stalled %d times", res.SchedStalls)
	}
	pp := res.Phase("partition")
	if pp == nil {
		t.Fatal("no partition phase ran")
	}
	if pp.Partitioned != 2 {
		t.Errorf("partition phase row covers %d regions, want 2", pp.Partitioned)
	}
	hp := res.Phase("heal")
	if hp == nil {
		t.Fatal("no heal phase ran")
	}
	if hp.Partitioned != 0 {
		t.Errorf("heal phase row still shows %d partitioned regions", hp.Partitioned)
	}
	for _, rp := range res.Routers {
		if len(rp.Ticks) != 6 {
			t.Fatalf("%s: %d ticks, want 6", rp.Kind, len(rp.Ticks))
		}
		pre, cut, rec := rp.Ticks[0], rp.Ticks[1], rp.Ticks[2]
		if pre.Partitioned != 0 || pre.HitRate() < 0.99 {
			t.Errorf("%s at +2h (before the cut): hit %.2f with %d partitioned regions, want clean 1.00",
				rp.Kind, pre.HitRate(), pre.Partitioned)
		}
		if cut.Partitioned != 2 {
			t.Errorf("%s at +4h: tick does not carry the partition state (%d regions)", rp.Kind, cut.Partitioned)
		}
		if cut.HitRate() > 0.01 {
			t.Errorf("%s at +4h (inside the partition): hit %.2f, want total failure — the vantages' regions are cut off",
				rp.Kind, cut.HitRate())
		}
		if rec.Partitioned != 0 {
			t.Errorf("%s at +6h: partition state lingers after the heal (%d regions)", rp.Kind, rec.Partitioned)
		}
		// Full recovery is the uninstrumented-build contract; the race
		// runtime's event reordering can leave a straggler session.
		recovered := 0.99
		if raceEnabled {
			recovered = 0.5
		}
		if rec.HitRate() < recovered {
			t.Errorf("%s at +6h (first tick after heal+refresh): hit %.2f, want recovery ≥ %.2f within one refresh interval",
				rp.Kind, rec.HitRate(), recovered)
		}
	}
	if res.Budget.DialFailures == 0 {
		t.Error("a mid-window partition caused no dial failures")
	}
}

// TestReachabilityMixBurnsDialBudget runs scenario (c) against a
// control run that differs only in the reachability mix: with roughly a
// third of the population NAT'd — online, originating traffic, refusing
// inbound dials — routers must burn strictly more failed dials to move
// the same workload.
func TestReachabilityMixBurnsDialBudget(t *testing.T) {
	res := reachabilityMixResults()
	if res.SchedStalls != 0 {
		t.Fatalf("scheduler stalled %d times", res.SchedStalls)
	}
	for _, rp := range res.Routers {
		if len(rp.Ticks) != 4 {
			t.Fatalf("%s: %d ticks, want 4", rp.Kind, len(rp.Ticks))
		}
		if rp.Retrievals == 0 {
			t.Fatalf("%s: no retrievals ran", rp.Kind)
		}
	}
	cfg := faultScenarioDefaults(42)
	cfg.Window = 12 * time.Hour
	cfg.Ticks = 4
	cfg.ChurnAmplitude = 1
	control := RunRoutingComparison(cfg)
	if res.Budget.DialFailures <= control.Budget.DialFailures {
		t.Errorf("NAT'd cohort burned %d failed dials vs %d without the mix, want strictly more",
			res.Budget.DialFailures, control.Budget.DialFailures)
	}
}

// TestAcceleratedFallbackCarriesUnreachableSnapshot pins the
// stale-snapshot fallback under an unreachable cohort deterministically:
// a getter whose one-hop snapshot holds only NAT'd (undialable) peers
// cannot route a session — every direct RPC dies on the dial — but the
// retrieval must still succeed through the iterative-walk fallback. The
// control retrieval with a freshly crawled snapshot routes its session.
func TestAcceleratedFallbackCarriesUnreachableSnapshot(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 80, Seed: 21, Scale: 0.002, K: 4,
		QueryTimeout: 30 * time.Second, BitswapTimeout: 30 * time.Second,
		ReachabilityMix: true,
		FracDead:        1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	ctx := context.Background()
	pub := tn.AddVantageRouting(geo.EuCentral1, 301, routing.KindAccelerated, nil)
	get := tn.AddVantageRouting(geo.UsWest1, 302, routing.KindAccelerated, nil)
	if _, err := pub.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("publisher crawl: %v", err)
	}
	if _, err := get.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("getter crawl: %v", err)
	}
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	pubRes, err := pub.AddAndPublish(ctx, payload)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}

	testnet.FlushVantage(get)
	data, rres, err := get.Retrieve(ctx, pubRes.Cid)
	if err != nil || len(data) != len(payload) {
		t.Fatalf("control retrieval failed: %v (%d bytes)", err, len(data))
	}
	if !rres.RoutedSession {
		t.Fatal("control retrieval with a fresh snapshot did not route its session")
	}
	get.ClearStore()

	var nat []wire.PeerInfo
	for _, node := range tn.Nodes {
		if !tn.Net.Dialable(node.ID()) {
			nat = append(nat, node.Info())
		}
	}
	if len(nat) < 4 {
		t.Fatalf("reachability mix produced only %d NAT'd peers in an 80-peer population", len(nat))
	}
	get.Accelerated().SetSnapshot(nat)

	testnet.FlushVantage(get)
	data, rres, err = get.Retrieve(ctx, pubRes.Cid)
	if err != nil || len(data) != len(payload) {
		t.Fatalf("retrieval with an undialable-only snapshot failed outright: %v (%d bytes) — the walk fallback did not engage", err, len(data))
	}
	if rres.RoutedSession {
		t.Error("session routed through a snapshot of exclusively undialable peers")
	}
}

// faultDeterminismConfig is the lossy, partitioned, NAT-mixed
// event-driven scenario the determinism tests replay: every fault lever
// at once, on the lockstep scheduler, so the seeded jitter hash — not a
// shared rng race — must carry all loss and delay draws.
func faultDeterminismConfig(n int) RoutingConfig {
	return RoutingConfig{
		NetworkSize:      n,
		Objects:          2,
		Ticks:            2,
		Window:           8 * time.Hour,
		ChurnAmplitude:   2,
		Kinds:            []routing.Kind{routing.KindDHT, routing.KindIndexer},
		LinkLoss:         0.15,
		LinkJitter:       200 * time.Millisecond,
		PartitionRegions: []geo.Region{geo.UsWest1, "US"},
		PartitionAt:      3 * time.Hour,
		HealAt:           5 * time.Hour,
		ReachabilityMix:  true,
		NoRefresh:        true,
		EventDriven:      true,
		Workers:          1,
		Seed:             88,
	}
}

func checkFaultDeterminism(t *testing.T, cfg RoutingConfig) {
	t.Helper()
	a := RunRoutingComparison(cfg)
	b := RunRoutingComparison(cfg)
	for _, res := range []*RoutingResults{a, b} {
		if res.SchedStalls != 0 {
			t.Fatalf("scheduler stalled %d times: an uninstrumented wait forfeits deterministic fault replay", res.SchedStalls)
		}
	}
	if a.Budget.Dropped == 0 {
		t.Error("the lossy run dropped nothing: loss draws never fired")
	}
	if raceEnabled {
		// The race runtime reorders same-virtual-instant events, which
		// shifts the instants the loss-draw hash keys on; bit-for-bit
		// replay is the uninstrumented-build contract. This build still
		// verified the run completes the schedule without stalls.
		t.Log("race build: skipping bit-for-bit replay equality")
		return
	}
	if as, bs := a.TimeSeries(), b.TimeSeries(); as != bs {
		t.Errorf("seeded lossy runs diverged in the phase time series\nrun A:\n%s\nrun B:\n%s", as, bs)
	}
	if a.Budget.String() != b.Budget.String() {
		t.Errorf("seeded lossy runs diverged in the cumulative budget:\n%v\nvs\n%v", a.Budget, b.Budget)
	}
	if at, bt := a.Table(), b.Table(); at != bt {
		t.Errorf("seeded lossy runs diverged in the router comparison\nrun A:\n%s\nrun B:\n%s", at, bt)
	}
	if a.SchedEvents != b.SchedEvents {
		t.Errorf("seeded lossy runs dispatched different event counts: %d vs %d", a.SchedEvents, b.SchedEvents)
	}
}

// TestEventDrivenFaultDeterminism replays a small seeded run with every
// fault lever engaged — 15% link loss, 200ms jitter, a partition cut
// and healed mid-window, the NAT'd reachability mix — twice on the
// lockstep scheduler and demands bit-for-bit identical output, drops
// and all.
func TestEventDrivenFaultDeterminism(t *testing.T) {
	checkFaultDeterminism(t, faultDeterminismConfig(300))
}

// TestEventDrivenFaultDeterminism20k is the same contract at paper
// scale: two seeded event-driven 20k-peer lossy runs must agree on the
// full time series, every budget row, and the event count, with zero
// stalls.
func TestEventDrivenFaultDeterminism20k(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-peer scenario skipped in -short mode")
	}
	checkFaultDeterminism(t, faultDeterminismConfig(20000))
}

// TestLossSweepTimeSeriesGolden pins scenario (a)'s full rendered
// output — the time series with the new Loss/Part/drop columns and the
// per-tick degradation table — as a golden. The run is event-driven
// lockstep, so every column (including exact RPC and drop counts) is
// deterministic and the golden can pin all of it.
func TestLossSweepTimeSeriesGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("full-series fault goldens are pinned for the uninstrumented build")
	}
	res := lossSweepResults()
	goldenCompare(t, "loss_sweep.golden", res.TimeSeries()+"\n"+res.DegradationTable())
}

// TestPartitionHealTimeSeriesGolden pins scenario (b)'s time series:
// the partition and heal transition rows, the partition-state column
// flipping 0 → 2 → 0, and the hit-rate collapse and recovery around
// them.
func TestPartitionHealTimeSeriesGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("full-series fault goldens are pinned for the uninstrumented build")
	}
	goldenCompare(t, "partition_heal.golden", partitionHealResults().TimeSeries())
}

// TestReachabilityMixDegradationGolden pins scenario (c)'s summary
// table: the per-tick hit rates every router sustains when a third of
// the population refuses inbound dials under the paper's churn model.
func TestReachabilityMixDegradationGolden(t *testing.T) {
	goldenCompare(t, "reachability_mix.golden", reachabilityMixResults().DegradationTable())
}
