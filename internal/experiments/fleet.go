package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/gateway"
	"repro/internal/gwfleet"
	"repro/internal/gwload"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// FleetScenarioConfig tunes the viral-CID flash-crowd scenario: a
// gateway fleet with consistent-hash placement, a shared cache tier
// and admission control, hit first by a steady Zipf workload and then
// by one CID at Multiplier times the steady request rate.
type FleetScenarioConfig struct {
	NetworkSize int // DHT servers backing the origin (default 120)
	Gateways    int // fleet size (default 4)
	Objects     int // catalog size (default 150)
	MaxObject   int // object size cap (default 128 KiB)

	// SteadyRPS is the steady-state fleet-wide arrival rate; SteadyLen
	// and BurstLen bound the measured phases; Multiplier scales the
	// viral CID's arrival rate (defaults 1 rps, 3 min, 40 s, 100x).
	SteadyRPS  float64
	SteadyLen  time.Duration
	BurstLen   time.Duration
	Multiplier float64

	// OriginDir, when non-empty, backs the origin content host with a
	// pack-engine PackStore rooted there instead of an in-memory store.
	OriginDir string
	// LocalCacheBytes and GatewayStoreBytes bound each edge instance's
	// nginx cache and LRU block store (defaults 256 KiB / 512 KiB — small
	// edges, so repeat traffic demonstrably falls through to the
	// fleet-shared tier instead of being absorbed per instance).
	LocalCacheBytes   int64
	GatewayStoreBytes int64

	// Admission control per gateway instance (defaults 4 / 4 / 1 — a
	// deliberately small inflight bound so the 100x burst visibly sheds
	// instead of herding the origin).
	MaxInflight, QueueHigh, QueueLow int

	// Workers bounds concurrent event dispatch; 0 keeps deterministic
	// lockstep.
	Workers int
	Seed    int64
}

func (c FleetScenarioConfig) withDefaults() FleetScenarioConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 120
	}
	if c.Gateways <= 0 {
		c.Gateways = 4
	}
	if c.Objects <= 0 {
		c.Objects = 150
	}
	if c.MaxObject <= 0 {
		c.MaxObject = 128 << 10
	}
	if c.SteadyRPS <= 0 {
		c.SteadyRPS = 1
	}
	if c.SteadyLen <= 0 {
		c.SteadyLen = 3 * time.Minute
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 40 * time.Second
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 100
	}
	if c.LocalCacheBytes <= 0 {
		c.LocalCacheBytes = 256 << 10
	}
	if c.GatewayStoreBytes <= 0 {
		c.GatewayStoreBytes = 512 << 10
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 4
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 1
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// FleetPhase is one measured phase of the flash-crowd scenario: the
// fleet tally delta, the replayer's sim-accurate TTFB sample, and the
// origin RPC spend (Bitswap wants + routing lookups) from the
// network-wide budget.
type FleetPhase struct {
	Name       string
	Stats      gwfleet.Stats
	TTFB       *stats.Sample // seconds, successful requests only
	OriginRPCs int64
}

// FleetScenarioResults holds the scenario outcome.
type FleetScenarioResults struct {
	Cfg    FleetScenarioConfig
	Phases []FleetPhase // steady, viral, cooldown
	Fleet  *gwfleet.Fleet
	Stats  gwfleet.Stats // whole-run tally

	// RequestAmp is the viral phase's request-rate multiple of the
	// steady phase; OriginRPCAmp is the same ratio for origin RPCs.
	// Sub-linear amplification — the fleet's job — is OriginRPCAmp well
	// under RequestAmp.
	RequestAmp   float64
	OriginRPCAmp float64

	SchedStalls int64
	SchedEvents int64
	Samples     []PhaseSample
}

// errFleetFetch marks a request the fleet could not answer with
// content (shed or origin failure) for the replayer's failure count.
var errFleetFetch = errors.New("experiments: fleet request not served")

// RunFleetScenario builds an event-driven testnet, publishes a catalog
// from a pack-engine origin host, stands up a gateway fleet over a
// shared block cache, and replays a steady phase, a 100x viral-CID
// burst and a cooldown through the fleet — measuring per-phase TTFB,
// cache-tier hits and origin RPC amplification.
func RunFleetScenario(cfg FleetScenarioConfig) *FleetScenarioResults {
	cfg = cfg.withDefaults()

	cat := gwload.NewCatalog(gwload.CatalogConfig{
		NumObjects: cfg.Objects, Seed: cfg.Seed, MaxSize: cfg.MaxObject,
	})

	tn := testnet.Build(testnet.Config{
		N: cfg.NetworkSize, Seed: cfg.Seed + 1,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
		EventDriven: true, Workers: cfg.Workers,
	})

	// The origin content host: every catalog object lives here, served
	// from a pack-engine store when OriginDir is set.
	var originStore block.Store
	if cfg.OriginDir != "" {
		ps, err := block.NewPackStore(cfg.OriginDir, block.PackConfig{})
		if err != nil {
			panic(err)
		}
		defer ps.Close()
		originStore = ps
	}
	origin := tn.AddVantageStore("US", cfg.Seed+2, originStore)

	// The fleet: small edge instances (bounded nginx cache + bounded LRU
	// block store each) over the big fleet-shared tier.
	gwNodes := tn.AddGatewayFleet(cfg.Gateways, cfg.Seed+10, func(int) block.Store {
		return block.NewLRUStore(cfg.GatewayStoreBytes)
	})
	reg := telemetry.NewRegistry()
	fleet := gwfleet.New(gwNodes, gwfleet.Config{
		LocalCacheBytes: cfg.LocalCacheBytes,
		MaxInflight:     cfg.MaxInflight,
		QueueHigh:       cfg.QueueHigh,
		QueueLow:        cfg.QueueLow,
		Time:            tn.Time,
		Registry:        reg,
	})

	res := &FleetScenarioResults{Cfg: cfg, Fleet: fleet}
	cids := make([]cid.Cid, cfg.Objects)

	sc := NewScenarioRunner(tn, ScenarioConfig{
		Window: 20 * time.Minute,
		// A flash crowd is a fleet problem, not a churn problem: keep
		// the origin network quiet so amplification is attributable to
		// the caches and admission control alone.
		Amplitude: 0.01,
		Seed:      cfg.Seed + 3,
	})

	// Phase 0: the origin host materializes and publishes the catalog.
	sc.Schedule("publish", 0, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
		var out PhaseOutcome
		rng := rand.New(rand.NewSource(cfg.Seed + 4))
		origin.DHT().PublishPeerRecord(transport.WithRPCCategory(ctx, transport.CatPublish))
		for i, obj := range cat.Objects {
			data := make([]byte, obj.Size)
			rng.Read(data)
			pub, err := origin.AddAndPublish(ctx, data)
			out.Ops++
			if err != nil {
				out.Failures++
				continue
			}
			cids[i] = pub.Cid
		}
		return out
	})

	// The replayed workload: every request goes through the fleet's
	// consistent-hash front door on the scheduler's virtual clock.
	do := func(ctx context.Context, r gwload.Request) error {
		resp := fleet.Fetch(ctx, gateway.Request{
			Cid:      cids[r.Object],
			Time:     tn.Time.Now(),
			Country:  r.Country,
			UserID:   r.UserID,
			Referrer: r.Referrer,
		})
		if resp.Shed || resp.Err != nil {
			return errFleetFetch
		}
		return nil
	}
	viral := gwload.ViralObject(cat)
	measure := func(name string, offset time.Duration, gen func(start time.Time) []gwload.Request) {
		sc.Schedule(name, offset, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
			before := fleet.Stats()
			budgetBefore := tn.Net.Budget()
			// Anchor the trace on the actual clock, not the nominal phase
			// offset: when an earlier phase overran its slot, nominal
			// timestamps would all be in the past and the whole trace
			// would fire at once instead of at its arrival rate.
			rs := gwload.Replay(ctx, tn.Time, gen(tn.Time.Now()), do)
			budget := tn.Net.Budget().Sub(budgetBefore)
			res.Phases = append(res.Phases, FleetPhase{
				Name:       name,
				Stats:      fleet.Stats().Sub(before),
				TTFB:       rs.TTFB(),
				OriginRPCs: budget.Category(transport.CatWant) + budget.Category(transport.CatLookup),
			})
			return PhaseOutcome{Ops: rs.Requests(), Failures: rs.Failures()}
		})
	}

	// Phase 1, +2m: steady-state Zipf traffic warms the cache tiers.
	measure("steady", 2*time.Minute, func(start time.Time) []gwload.Request {
		return gwload.GenerateFlashCrowd(cat, gwload.FlashCrowdConfig{
			Start: start, Duration: cfg.SteadyLen, SteadyRPS: cfg.SteadyRPS,
			BurstMultiplier: 1, Seed: cfg.Seed + 5,
		})
	})

	// Phase 2: one CID at Multiplier x the steady fleet-wide rate, on
	// top of the steady background.
	measure("viral", 2*time.Minute+cfg.SteadyLen+time.Minute, func(start time.Time) []gwload.Request {
		return gwload.GenerateFlashCrowd(cat, gwload.FlashCrowdConfig{
			Start: start, Duration: cfg.BurstLen, SteadyRPS: cfg.SteadyRPS,
			BurstStart: time.Second, BurstDuration: cfg.BurstLen - time.Second,
			BurstMultiplier: cfg.Multiplier, ViralObject: viral,
			Seed: cfg.Seed + 6,
		})
	})

	// Phase 3: steady traffic again — the crowd is gone, the caches are
	// hot.
	measure("cooldown", 2*time.Minute+cfg.SteadyLen+time.Minute+cfg.BurstLen+time.Minute,
		func(start time.Time) []gwload.Request {
			return gwload.GenerateFlashCrowd(cat, gwload.FlashCrowdConfig{
				Start: start, Duration: cfg.SteadyLen / 3, SteadyRPS: cfg.SteadyRPS,
				BurstMultiplier: 1, Seed: cfg.Seed + 7,
			})
		})

	res.Samples = sc.Run(context.Background())
	res.Stats = fleet.Stats()
	res.SchedStalls = tn.Sched.Stalls()
	res.SchedEvents = tn.Sched.Dispatched()

	if len(res.Phases) >= 2 {
		steady, burst := res.Phases[0], res.Phases[1]
		steadySecs := cfg.SteadyLen.Seconds()
		burstSecs := cfg.BurstLen.Seconds()
		if steady.Stats.Requests > 0 && steadySecs > 0 && burstSecs > 0 {
			res.RequestAmp = (float64(burst.Stats.Requests) / burstSecs) /
				(float64(steady.Stats.Requests) / steadySecs)
		}
		if steady.OriginRPCs > 0 {
			res.OriginRPCAmp = (float64(burst.OriginRPCs) / burstSecs) /
				(float64(steady.OriginRPCs) / steadySecs)
		}
	}
	return res
}

// Report renders the scenario as a stable table: per-phase request and
// tier tallies with sim-accurate TTFB, then the fleet-level verdicts
// the acceptance gates pin (cache hit rate, amplification, stalls).
func (r *FleetScenarioResults) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Viral-CID flash crowd: %d gateways, consistent-hash placement, shared cache tier\n",
		r.Cfg.Gateways)
	t := stats.NewTable("Phase", "Reqs", "Shed", "Spill", "Nginx", "Shared", "Store", "Origin", "p50 TTFB", "p99 TTFB", "Origin RPCs")
	for _, ph := range r.Phases {
		s := ph.Stats
		t.AddRow(ph.Name, s.Requests, s.Shed, s.Spilled, s.LocalHits, s.SharedHits,
			s.NodeStore, s.OriginFetch,
			fmt.Sprintf("%.3fs", ph.TTFB.Percentile(50)),
			fmt.Sprintf("%.3fs", ph.TTFB.Percentile(99)),
			ph.OriginRPCs)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "fleet cache hit rate: %.3f\n", r.Stats.CacheHitRate())
	fmt.Fprintf(&b, "request amplification: %.1fx, origin RPC amplification: %.1fx\n",
		r.RequestAmp, r.OriginRPCAmp)
	fmt.Fprintf(&b, "scheduler stalls: %d\n", r.SchedStalls)
	return b.String()
}
