package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cid"
	"repro/internal/gateway"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/testnet"
)

// AblationConfig tunes the design-choice sweeps of DESIGN.md §5.
type AblationConfig struct {
	NetworkSize int
	Iterations  int
	Scale       float64
	Seed        int64
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 300
	}
	if c.Iterations <= 0 {
		c.Iterations = 6
	}
	if c.Scale <= 0 {
		c.Scale = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// ReplicationPoint is one row of the k-sweep.
type ReplicationPoint struct {
	K              int
	PubMedian      time.Duration
	SurvivalRate   float64 // records still resolvable after churn
	StoreSuccesses float64 // average records stored per publish
}

// RunReplicationSweep varies the replication factor k and measures the
// §3.1 trade-off: publication cost vs record survival under churn.
func RunReplicationSweep(cfg AblationConfig, ks []int, churnFraction float64) []ReplicationPoint {
	cfg = cfg.withDefaults()
	if len(ks) == 0 {
		ks = []int{5, 10, 20, 40}
	}
	if churnFraction <= 0 {
		churnFraction = 0.45
	}
	var out []ReplicationPoint
	for _, k := range ks {
		tn := testnet.Build(testnet.Config{
			N: cfg.NetworkSize, Seed: cfg.Seed, Scale: cfg.Scale, K: k,
			FracDead: 0.10, FracSlow: 0.05, FracWSBroken: 0.01,
		})
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		pub := tn.AddVantage(geo.EuCentral1, cfg.Seed+int64(100+k))
		get := tn.AddVantage(geo.UsWest1, cfg.Seed+int64(200+k))
		ctx := context.Background()
		pub.DHT().PublishPeerRecord(ctx)

		pubDur := stats.NewSample()
		var stored float64
		payload := make([]byte, 64*1024)
		var roots []cid.Cid
		for i := 0; i < cfg.Iterations; i++ {
			rng.Read(payload)
			res, err := pub.AddAndPublish(ctx, payload)
			if err != nil {
				continue
			}
			pubDur.AddDuration(res.TotalDuration)
			stored += float64(res.StoreOK)
			roots = append(roots, res.Cid)
		}

		// Churn: a fraction of the network departs.
		perm := rng.Perm(len(tn.Nodes))
		for _, idx := range perm[:int(churnFraction*float64(len(tn.Nodes)))] {
			tn.Net.SetOnline(tn.Nodes[idx].ID(), false)
		}

		survived := 0
		for _, root := range roots {
			testnet.FlushVantage(get)
			rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			if _, _, err := get.Retrieve(rctx, root); err == nil {
				survived++
			}
			cancel()
			get.ClearStore()
		}
		point := ReplicationPoint{K: k}
		if pubDur.Len() > 0 {
			point.PubMedian = time.Duration(pubDur.Median() * float64(time.Second))
			point.StoreSuccesses = stored / float64(pubDur.Len())
		}
		if len(roots) > 0 {
			point.SurvivalRate = float64(survived) / float64(len(roots))
		}
		out = append(out, point)
	}
	return out
}

// AlphaPoint is one row of the α-sweep.
type AlphaPoint struct {
	Alpha      int
	RetrMedian time.Duration
	PubMedian  time.Duration
}

// RunAlphaSweep varies lookup concurrency α (§3.2 uses 3).
func RunAlphaSweep(cfg AblationConfig, alphas []int) []AlphaPoint {
	cfg = cfg.withDefaults()
	if len(alphas) == 0 {
		alphas = []int{1, 3, 5, 10}
	}
	var out []AlphaPoint
	for _, a := range alphas {
		res := RunPerformance(PerfConfig{
			NetworkSize:   cfg.NetworkSize,
			IterationsPer: cfg.Iterations / 3,
			Scale:         cfg.Scale,
			Seed:          cfg.Seed,
			Alpha:         a,
		})
		retr := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.RetrOverall })
		pub := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.PubOverall })
		pt := AlphaPoint{Alpha: a}
		if retr.Len() > 0 {
			pt.RetrMedian = time.Duration(retr.Median() * float64(time.Second))
		}
		if pub.Len() > 0 {
			pt.PubMedian = time.Duration(pub.Median() * float64(time.Second))
		}
		out = append(out, pt)
	}
	return out
}

// DiscoveryPoint compares serial vs parallel discovery (§6.2).
type DiscoveryPoint struct {
	Parallel   bool
	RetrMedian time.Duration
	StretchP50 float64
}

// RunParallelDiscovery compares the deployed serial Bitswap-then-DHT
// flow against the proposed parallel one.
func RunParallelDiscovery(cfg AblationConfig) []DiscoveryPoint {
	cfg = cfg.withDefaults()
	var out []DiscoveryPoint
	for _, parallel := range []bool{false, true} {
		res := RunPerformance(PerfConfig{
			NetworkSize:       cfg.NetworkSize,
			IterationsPer:     cfg.Iterations / 2,
			Scale:             cfg.Scale,
			Seed:              cfg.Seed,
			ParallelDiscovery: parallel,
		})
		retr := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.RetrOverall })
		st := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.Stretch })
		pt := DiscoveryPoint{Parallel: parallel}
		if retr.Len() > 0 {
			pt.RetrMedian = time.Duration(retr.Median() * float64(time.Second))
		}
		if st.Len() > 0 {
			pt.StretchP50 = st.Median()
		}
		out = append(out, pt)
	}
	return out
}

// ClientServerPoint compares walk latency with and without unreachable
// peers polluting routing tables (§6.4: the v0.5 client/server split).
type ClientServerPoint struct {
	SplitEnabled bool
	PubMedian    time.Duration
	RetrMedian   time.Duration
}

// RunClientServerSplit compares the post-v0.5 behaviour (NAT'd peers
// excluded from routing tables: low dead fraction) against the pre-v0.5
// world where unreachable peers pollute tables.
func RunClientServerSplit(cfg AblationConfig) []ClientServerPoint {
	cfg = cfg.withDefaults()
	var out []ClientServerPoint
	for _, split := range []bool{true, false} {
		dead := 0.12 // stale entries only
		if !split {
			dead = 0.45 // NAT'd peers join tables too (§2.3's motivation)
		}
		tn := testnet.Build(testnet.Config{
			N: cfg.NetworkSize, Seed: cfg.Seed, Scale: cfg.Scale,
			FracDead: dead, FracSlow: 0.05, FracWSBroken: 0.01,
			OmitProviderAddrs: true,
		})
		pub := tn.AddVantage(geo.EuCentral1, cfg.Seed+1)
		get := tn.AddVantage(geo.UsWest1, cfg.Seed+2)
		ctx := context.Background()
		pub.DHT().PublishPeerRecord(ctx)
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		payload := make([]byte, 64*1024)
		pubS, retrS := stats.NewSample(), stats.NewSample()
		for i := 0; i < cfg.Iterations; i++ {
			rng.Read(payload)
			res, err := pub.AddAndPublish(ctx, payload)
			if err != nil {
				continue
			}
			pubS.AddDuration(res.TotalDuration)
			testnet.FlushVantage(get)
			if _, rres, err := get.Retrieve(ctx, res.Cid); err == nil {
				retrS.AddDuration(rres.Total)
			}
			get.ClearStore()
		}
		pt := ClientServerPoint{SplitEnabled: split}
		if pubS.Len() > 0 {
			pt.PubMedian = time.Duration(pubS.Median() * float64(time.Second))
		}
		if retrS.Len() > 0 {
			pt.RetrMedian = time.Duration(retrS.Median() * float64(time.Second))
		}
		out = append(out, pt)
	}
	return out
}

// CachePoint is one row of the gateway cache-size sweep.
type CachePoint struct {
	CacheBytes int64
	NginxHit   float64
	Combined   float64 // nginx + node store
}

// RunGatewayCacheSweep varies the nginx cache size and measures hit
// rates, the §6.3 knob.
func RunGatewayCacheSweep(cfg AblationConfig, sizes []int64) []CachePoint {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int64{4 << 20, 16 << 20, 64 << 20}
	}
	var out []CachePoint
	for _, size := range sizes {
		res := RunGateway(GatewayConfig{
			NetworkSize: 40, Objects: 150, Requests: 1500,
			CacheBytes: size, Scale: cfg.Scale, Seed: cfg.Seed,
		})
		var total, nginx, node int
		for tier, s := range res.Tiers {
			total += s.Requests
			switch tier {
			case gateway.TierNginx:
				nginx = s.Requests
			case gateway.TierNodeStore:
				node = s.Requests
			}
		}
		pt := CachePoint{CacheBytes: size}
		if total > 0 {
			pt.NginxHit = float64(nginx) / float64(total)
			pt.Combined = float64(nginx+node) / float64(total)
		}
		out = append(out, pt)
	}
	return out
}

// RenderAblations formats sweep results for the harness.
func RenderAblations(reps []ReplicationPoint, alphas []AlphaPoint, disc []DiscoveryPoint, cs []ClientServerPoint, caches []CachePoint) string {
	var b strings.Builder
	if len(reps) > 0 {
		t := stats.NewTable("k", "Pub median", "Records stored", "Survival after churn")
		for _, p := range reps {
			t.AddRow(p.K, p.PubMedian, fmt.Sprintf("%.1f", p.StoreSuccesses), fmt.Sprintf("%.0f%%", 100*p.SurvivalRate))
		}
		b.WriteString("Ablation: replication factor k (paper default 20)\n" + t.String() + "\n")
	}
	if len(alphas) > 0 {
		t := stats.NewTable("alpha", "Retrieval median", "Publication median")
		for _, p := range alphas {
			t.AddRow(p.Alpha, p.RetrMedian, p.PubMedian)
		}
		b.WriteString("Ablation: lookup concurrency alpha (paper default 3)\n" + t.String() + "\n")
	}
	if len(disc) > 0 {
		t := stats.NewTable("Parallel discovery", "Retrieval median", "Stretch p50")
		for _, p := range disc {
			t.AddRow(p.Parallel, p.RetrMedian, fmt.Sprintf("%.2f", p.StretchP50))
		}
		b.WriteString("Ablation: Bitswap/DHT parallel discovery (§6.2 proposal)\n" + t.String() + "\n")
	}
	if len(cs) > 0 {
		t := stats.NewTable("Client/server split", "Pub median", "Retrieval median")
		for _, p := range cs {
			t.AddRow(p.SplitEnabled, p.PubMedian, p.RetrMedian)
		}
		b.WriteString("Ablation: DHT client/server split (§6.4)\n" + t.String() + "\n")
	}
	if len(caches) > 0 {
		t := stats.NewTable("Cache size", "nginx hit rate", "combined hit rate")
		for _, p := range caches {
			t.AddRow(fmt.Sprintf("%dMiB", p.CacheBytes>>20), fmt.Sprintf("%.1f%%", 100*p.NginxHit), fmt.Sprintf("%.1f%%", 100*p.Combined))
		}
		b.WriteString("Ablation: gateway nginx cache size\n" + t.String() + "\n")
	}
	return b.String()
}
