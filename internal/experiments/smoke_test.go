package experiments

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestSmokePerformance is a development smoke test printing the main
// perf tables; kept small so the suite stays fast.
func TestSmokePerformance(t *testing.T) {
	if os.Getenv("SMOKE") == "" {
		t.Skip("set SMOKE=1 to run the perf smoke hook")
	}
	start := time.Now()
	res := RunPerformance(PerfConfig{NetworkSize: 400, IterationsPer: 3, Scale: 0.002})
	fmt.Println(res.Table1())
	fmt.Println(res.Table4())
	fmt.Println(res.Summary())
	fmt.Println("wall time:", time.Since(start))
}
