package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/cid"
	"repro/internal/gateway"
	"repro/internal/geo"
	"repro/internal/gwload"
	"repro/internal/stats"
	"repro/internal/testnet"
)

// GatewayConfig tunes the §6.3 gateway experiment.
type GatewayConfig struct {
	NetworkSize int     // DHT servers backing unpinned content (default 60)
	Objects     int     // catalog size (default 1000)
	Requests    int     // requests replayed through the gateway (default 4000)
	TraceOnly   int     // extra statistical trace size for Figs 4b/6 (default 200000)
	CacheBytes  int64   // nginx cache size (default 64 MiB)
	MaxObject   int     // object size cap (default 1 MiB)
	ZipfS       float64 // popularity skew (default 0.9)
	PinnedFrac  float64 // pinned-object fraction (default 0.5)
	Scale       float64
	Seed        int64
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 60
	}
	if c.Objects <= 0 {
		c.Objects = 1000
	}
	if c.Requests <= 0 {
		c.Requests = 4000
	}
	if c.TraceOnly <= 0 {
		c.TraceOnly = 200000
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.9
	}
	if c.PinnedFrac == 0 {
		c.PinnedFrac = 0.5
	}
	if c.MaxObject <= 0 {
		c.MaxObject = 1 << 20
	}
	if c.Scale <= 0 {
		c.Scale = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// GatewayResults holds the gateway experiment outcome.
type GatewayResults struct {
	Cfg     GatewayConfig
	Log     []gateway.LogEntry
	Tiers   map[gateway.Tier]gateway.TierStats
	Trace   []gwload.Request // large statistical trace for Figs 4b/6
	Catalog *gwload.Catalog
	Day     time.Time
}

// RunGateway publishes a catalog into a simulated network (pinned
// objects into the gateway's node store, the rest via regular DHT
// publication), replays a diurnal one-day trace through the gateway,
// and aggregates the access log.
func RunGateway(cfg GatewayConfig) *GatewayResults {
	cfg = cfg.withDefaults()
	day := time.Date(2022, 1, 2, 0, 0, 0, 0, time.UTC)

	cat := gwload.NewCatalog(gwload.CatalogConfig{
		NumObjects: cfg.Objects, Seed: cfg.Seed, MaxSize: cfg.MaxObject,
		ZipfS: cfg.ZipfS, PinnedFraction: cfg.PinnedFrac,
	})

	tn := testnet.Build(testnet.Config{
		N: cfg.NetworkSize, Seed: cfg.Seed + 1, Scale: cfg.Scale,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	gwNode := tn.AddVantage("US", cfg.Seed+2) // the sampled gateway is US-located (§4.2)
	gw := gateway.New(gwNode, cfg.CacheBytes, tn.Base)

	// Materialize and publish the catalog.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	cids := make([]cid.Cid, cfg.Objects)
	live := tn.LiveNodes()
	for i, obj := range cat.Objects {
		data := make([]byte, obj.Size)
		rng.Read(data)
		if obj.Pinned {
			c, err := gw.Pin(data)
			if err != nil {
				panic(err)
			}
			cids[i] = c
		} else {
			host := live[rng.Intn(len(live))]
			pub, err := host.AddAndPublish(ctx, data)
			if err != nil {
				panic(err)
			}
			host.PublishPeerRecord(ctx)
			cids[i] = pub.Cid
		}
	}

	// Replay the request trace through the gateway.
	reqs := gwload.GenerateTrace(cat, gwload.TraceConfig{
		NumRequests: cfg.Requests, Day: day, Seed: cfg.Seed + 4,
	})
	for _, r := range reqs {
		gw.Fetch(ctx, gateway.Request{
			Cid:      cids[r.Object],
			Time:     r.Time,
			Country:  r.Country,
			UserID:   r.UserID,
			Referrer: r.Referrer,
		})
	}

	// A bigger trace for the purely statistical figures.
	bigTrace := gwload.GenerateTrace(cat, gwload.TraceConfig{
		NumRequests: cfg.TraceOnly, Day: day, Seed: cfg.Seed + 5,
	})

	log := gw.Log()
	return &GatewayResults{
		Cfg:     cfg,
		Log:     log,
		Tiers:   gateway.Summarize(log),
		Trace:   bigTrace,
		Catalog: cat,
		Day:     day,
	}
}

// Table5 renders the per-tier latency and traffic shares.
func (r *GatewayResults) Table5() string {
	var totalReq int
	var totalBytes int64
	for _, s := range r.Tiers {
		totalReq += s.Requests
		totalBytes += s.Bytes
	}
	t := stats.NewTable("Tier", "Latency (median)", "Traffic served", "Requests served")
	order := []gateway.Tier{gateway.TierNginx, gateway.TierNodeStore, gateway.TierNetwork}
	for _, tier := range order {
		s := r.Tiers[tier]
		t.AddRow(tier.String(),
			fmt.Sprintf("%.3fs", s.MedianLatency.Seconds()),
			fmt.Sprintf("%.1f%%", 100*float64(s.Bytes)/float64(totalBytes)),
			fmt.Sprintf("%.1f%%", 100*float64(s.Requests)/float64(totalReq)))
	}
	head := "Table 5: gateway traffic and latency by serving tier\n" +
		"(paper: nginx 0s/46.4%/46.0%, node store 8ms/38.0%/40.2%, non-cached 4.04s/15.6%/13.8%)\n"
	return head + t.String()
}

// Fig4b renders the diurnal request count (5-minute bins).
func (r *GatewayResults) Fig4b() string {
	h := stats.NewHistogram(5 * 60) // seconds
	for _, req := range r.Trace {
		h.Observe(req.Time.Sub(r.Day).Seconds(), 1)
	}
	var b strings.Builder
	b.WriteString("Figure 4b: gateway request count by time of day (5-min bins, gateway timezone)\n")
	for _, bin := range h.Bins() {
		b.WriteString(fmt.Sprintf("%02d:%02d %d\n", bin*5/60, (bin*5)%60, int(h.Counts[bin])))
	}
	return b.String()
}

// Fig6 renders the geographic distribution of gateway users.
func (r *GatewayResults) Fig6() string {
	counts := make(map[geo.Region]int)
	for _, req := range r.Trace {
		counts[req.Country]++
	}
	type kv struct {
		c geo.Region
		n int
	}
	var list []kv
	for c, n := range counts {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	t := stats.NewTable("Country", "Requests", "Share")
	for i, e := range list {
		if i >= 8 {
			break
		}
		t.AddRow(string(e.c), e.n, fmt.Sprintf("%.1f%%", 100*float64(e.n)/float64(len(r.Trace))))
	}
	return "Figure 6: geographical distribution of gateway users (paper: US 50.4%, CN 31.9%, HK 6.6%)\n" + t.String()
}

// Fig11a renders the latency and object-size distributions.
func (r *GatewayResults) Fig11a(points int) string {
	lat := stats.NewSample()
	size := stats.NewSample()
	for _, e := range r.Log {
		if e.Err() {
			continue
		}
		lat.Add(e.Latency.Seconds())
		size.Add(float64(e.Bytes) / 1024)
	}
	var b strings.Builder
	b.WriteString("Figure 11a: gateway response latency and object size distributions\n")
	b.WriteString(fmt.Sprintf("# object size: median=%.1fKB above100KB=%.3f (paper: 664.6KB / 0.791)\n",
		size.Median(), 1-size.FractionBelow(100)))
	b.WriteString(fmt.Sprintf("# under 250ms: %.3f (paper: 0.76)\n", lat.FractionBelow(0.25)))
	sizes, lats := size.Values(), lat.Values()
	if len(sizes) == len(lats) {
		b.WriteString(fmt.Sprintf("# size-latency Pearson r=%.3f (paper: 0.13)\n", sizeLatencyCorrelation(r.Log)))
	}
	b.WriteString(stats.FormatCDF("fig11a latency seconds", lat.CDF(points)))
	b.WriteString(stats.FormatCDF("fig11a size KB", size.CDF(points)))
	return b.String()
}

func sizeLatencyCorrelation(log []gateway.LogEntry) float64 {
	var xs, ys []float64
	for _, e := range log {
		if e.Err() {
			continue
		}
		xs = append(xs, float64(e.Bytes))
		ys = append(ys, e.Latency.Seconds())
	}
	return stats.Pearson(xs, ys)
}

// Fig11b renders cached vs non-cached traffic per 30-minute bin.
func (r *GatewayResults) Fig11b() string {
	type bin struct{ cached, total float64 }
	bins := make(map[int]*bin)
	for _, e := range r.Log {
		if e.Err() {
			continue
		}
		k := int(e.Time.Sub(r.Day).Minutes()) / 30
		bn := bins[k]
		if bn == nil {
			bn = &bin{}
			bins[k] = bn
		}
		bn.total += float64(e.Bytes)
		if e.Tier != gateway.TierNetwork {
			bn.cached += float64(e.Bytes)
		}
	}
	keys := make([]int, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	b.WriteString("Figure 11b: cached vs non-cached traffic share per 30-min bin\n")
	for _, k := range keys {
		bn := bins[k]
		frac := 0.0
		if bn.total > 0 {
			frac = bn.cached / bn.total
		}
		b.WriteString(fmt.Sprintf("%02d:%02d cached=%.3f\n", k/2, (k%2)*30, frac))
	}
	return b.String()
}
