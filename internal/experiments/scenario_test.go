package experiments

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// TestChurnScenarioFallbackRisesWithAmplitude sweeps the timeline churn
// amplitude with a deliberately small replication factor and asserts
// the accelerated router's fallback rate (retrievals its stale snapshot
// could not feed a session for) rises with churn: the Fig 8-style
// session dynamics the scenario engine exists to stress.
func TestChurnScenarioFallbackRisesWithAmplitude(t *testing.T) {
	cases := []struct {
		name string
		amp  float64
	}{
		{"calm", 0.25},
		{"paper", 1},
		{"stormy", 3},
		{"extreme", 6},
	}
	if testing.Short() {
		// Keep the endpoints of the sweep in -short (race) CI runs.
		cases = []struct {
			name string
			amp  float64
		}{{"calm", 0.25}, {"extreme", 6}}
	}
	rates := make([]float64, len(cases))
	ran := 0
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ran++
			res := RunRoutingComparison(RoutingConfig{
				NetworkSize: 120, Objects: 3, Ticks: 2, Window: 8 * time.Hour,
				K: 4, ChurnAmplitude: tc.amp,
				Kinds:       []routing.Kind{routing.KindAccelerated},
				NoRepublish: true, NoRefresh: true,
				// Generous sim-time windows so race-detector scheduling
				// noise cannot flip a session outcome (determinism).
				BitswapTimeout: 30 * time.Second, QueryTimeout: 30 * time.Second,
				Scale: 0.002, Seed: 33,
			})
			rp := res.Router(routing.KindAccelerated)
			if rp == nil || rp.Retrievals == 0 {
				t.Fatal("no accelerated retrievals ran")
			}
			if len(rp.Ticks) != 2 {
				t.Fatalf("per-tick series has %d entries, want 2", len(rp.Ticks))
			}
			rates[i] = rp.FallbackRate()
			if math.IsNaN(rates[i]) {
				t.Fatal("fallback rate is NaN")
			}
		})
	}
	if ran != len(cases) || t.Failed() {
		// A -run filter (or an already-failed subtest) left placeholder
		// zeros in rates; cross-amplitude comparisons would misfire.
		t.Logf("skipping cross-amplitude assertions: %d/%d subtests ran", ran, len(cases))
		return
	}
	for i := 1; i < len(rates); i++ {
		// Allow a hair of slack between adjacent amplitudes; the sweep
		// endpoints must separate decisively.
		if rates[i] < rates[i-1]-0.01 {
			t.Errorf("fallback rate fell from %.2f (amp %.2f) to %.2f (amp %.2f), want non-decreasing",
				rates[i-1], cases[i-1].amp, rates[i], cases[i].amp)
		}
	}
	if last, first := rates[len(rates)-1], rates[0]; last < first+0.25 {
		t.Errorf("fallback rate barely moved: %.2f at amp %.2f vs %.2f at amp %.2f",
			first, cases[0].amp, last, cases[len(cases)-1].amp)
	}
}

// TestChurnScenarioIndexerHitDegradesWithStaleness runs the indexer
// router across ticks that cross its record TTL with no republish
// cycle: the sampled hit rate must degrade monotonically as the
// staleness window grows, and retrievals past expiry must stop being
// router-fed.
func TestChurnScenarioIndexerHitDegradesWithStaleness(t *testing.T) {
	res := RunRoutingComparison(RoutingConfig{
		NetworkSize: 100, Objects: 3, Ticks: 3, Window: 9 * time.Hour,
		IndexerTTL:  4 * time.Hour,
		Kinds:       []routing.Kind{routing.KindIndexer},
		NoRepublish: true, NoRefresh: true,
		BitswapTimeout: 30 * time.Second, QueryTimeout: 30 * time.Second,
		Scale: 0.002, Seed: 44,
	})
	rp := res.Router(routing.KindIndexer)
	if rp == nil || len(rp.Ticks) != 3 {
		t.Fatalf("indexer tick series = %+v, want 3 ticks", rp)
	}
	for i, tk := range rp.Ticks {
		if math.IsNaN(tk.IndexerHit) {
			t.Fatalf("tick %d: indexer hit rate not sampled", i)
		}
		if i > 0 && tk.IndexerHit > rp.Ticks[i-1].IndexerHit {
			t.Errorf("hit rate rose from %.2f to %.2f at tick %d despite no republish",
				rp.Ticks[i-1].IndexerHit, tk.IndexerHit, i)
		}
	}
	first, last := rp.Ticks[0], rp.Ticks[len(rp.Ticks)-1]
	if first.IndexerHit != 1 {
		t.Errorf("hit rate before expiry = %.2f, want 1.0 (TTL 4h, first tick 3h)", first.IndexerHit)
	}
	if last.IndexerHit != 0 {
		t.Errorf("hit rate after expiry = %.2f, want 0.0 (TTL 4h, last tick 9h)", last.IndexerHit)
	}
	if first.RoutedSessions == 0 {
		t.Error("no routed sessions while records were fresh")
	}
	if last.RoutedSessions != 0 {
		t.Errorf("%d routed sessions after every record expired", last.RoutedSessions)
	}
}

// TestScenarioRunnerScheduleAndBudget unit-tests the engine itself:
// phases run in offset order regardless of insertion order, each phase
// sees timeline liveness applied before its workload, and the sampled
// per-phase budgets carry the spend of exactly that phase.
func TestScenarioRunnerScheduleAndBudget(t *testing.T) {
	clock := simtime.NewClock(testnet.DefaultEpoch)
	tn := testnet.Build(testnet.Config{
		N: 40, Seed: 5, Scale: 0.0005, Clock: clock,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	sc := NewScenarioRunner(tn, ScenarioConfig{Window: 6 * time.Hour, Seed: 9})

	vantage := tn.AddVantage("DE", 77)
	var order []string
	noop := func(name string) func(context.Context, PhaseInfo) PhaseOutcome {
		return func(ctx context.Context, info PhaseInfo) PhaseOutcome {
			order = append(order, name)
			if got := clock.Now(); !got.Equal(info.Now) {
				t.Errorf("phase %s: clock %v != phase instant %v", name, got, info.Now)
			}
			if info.Online <= 0 {
				t.Errorf("phase %s: liveness not applied before the workload", name)
			}
			return PhaseOutcome{Ops: 1}
		}
	}
	// Insert out of order; Run must sort by offset.
	sc.Schedule("late", 6*time.Hour, noop("late"))
	sc.Schedule("early", 0, noop("early"))
	sc.Schedule("mid", 3*time.Hour, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
		order = append(order, "mid")
		// Spend some budget so the per-phase delta is observable.
		vantage.DHT().PublishPeerRecord(ctx)
		return PhaseOutcome{Ops: 1}
	})

	samples := sc.Run(context.Background())
	if want := []string{"early", "mid", "late"}; strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("phase order = %v, want %v", order, want)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	for i, ps := range samples {
		if ps.Online <= 0 || ps.Online > 40 {
			t.Errorf("sample %d: online = %d, want within (0, 40]", i, ps.Online)
		}
		if !math.IsNaN(ps.SnapshotStale) || !math.IsNaN(ps.IndexerHit) {
			t.Errorf("sample %d: health should be NaN with no observed routers", i)
		}
	}
	if samples[1].Budget.Requests == 0 {
		t.Error("mid phase published a peer record but its budget delta is empty")
	}
	if samples[0].Budget.Requests != 0 || samples[2].Budget.Requests != 0 {
		t.Errorf("idle phases charged a budget: %v / %v", samples[0].Budget, samples[2].Budget)
	}
	// Per-phase deltas must sum to the network's cumulative budget.
	var sum int64
	for _, ps := range samples {
		sum += ps.Budget.Requests
	}
	if total := tn.Net.Budget().Requests; sum != total {
		t.Errorf("phase budget deltas sum to %d, network total is %d", sum, total)
	}
}

// goldenCompare diffs got against the golden file, regenerating it when
// UPDATE_GOLDEN=1 is set.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s (rerun with UPDATE_GOLDEN=1 after reviewing):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenScenarioResults is the seeded run the golden test renders: two
// one-hop routers over a sharded two-by-two indexer fleet, a record
// TTL crossed mid-window, and the default mid-window refresh/republish
// phases — expiry at +6h, republish recovery at +8h, re-expiry at
// +12h — so the per-shard hit-rate and replica-availability columns
// carry real data.
var (
	goldenOnce sync.Once
	goldenRes  *RoutingResults
)

func goldenScenarioResults() *RoutingResults {
	// Three tests render different views of the same seeded run; it is
	// read-only after Run, so one execution serves them all.
	goldenOnce.Do(func() {
		goldenRes = RunRoutingComparison(RoutingConfig{
			NetworkSize: 90, Objects: 2, Ticks: 3, Window: 12 * time.Hour,
			IndexerTTL:    5 * time.Hour,
			IndexerShards: 2, IndexerReplicas: 2,
			Kinds: []routing.Kind{routing.KindAccelerated, routing.KindIndexer},
			// Generous sim-time windows keep the rendered columns identical
			// under race-detector and CI-load scheduling noise.
			BitswapTimeout: 30 * time.Second, QueryTimeout: 30 * time.Second,
			Scale: 0.002, Seed: 99,
		})
	})
	return goldenRes
}

// TestRoutingTimeSeriesGolden pins the experiment's time-series output
// so CLI formatting changes show up as reviewable golden diffs. The
// seeded run covers the deterministic columns; the budget-column layout
// is pinned separately by TestRoutingTimeSeriesFormatGolden, since
// exact RPC counts drift by a few requests with walk scheduling.
func TestRoutingTimeSeriesGolden(t *testing.T) {
	goldenCompare(t, "routing_timeseries.golden", goldenScenarioResults().StableTimeSeries())
}

// TestRoutingTimeSeriesFormatGolden pins the full time-series and
// budget-report layout against synthetic fixed samples.
func TestRoutingTimeSeriesFormatGolden(t *testing.T) {
	res := &RoutingResults{
		Cfg:     RoutingConfig{NetworkSize: 100, Window: 12 * time.Hour, ChurnAmplitude: 1.5}.withDefaults(),
		Routers: []*RouterPerf{newRouterPerf(routing.KindAccelerated), newRouterPerf(routing.KindIndexer)},
		Phases: []PhaseSample{
			{
				Phase: "publish", Offset: 0, Online: 47,
				SnapshotStale: math.NaN(), IndexerHit: math.NaN(), ReplicaUp: 1,
				DiscoverP99: math.NaN(), FirstHopShare: math.NaN(), TracedOps: 4,
				Budget: simnet.Budget{Requests: 410, Dials: 600, DialFailures: 120,
					ByCategory: map[transport.RPCCategory]int64{
						transport.CatLookup: 90, transport.CatPublish: 140, transport.CatRefresh: 180,
					}},
				PhaseOutcome: PhaseOutcome{Ops: 4},
			},
			{
				// A tick during a one-replica-per-shard outage: shard 1 lost
				// its primary's records, availability sits at half, and the
				// surviving replicas' gossip shows in the budget breakdown.
				// The link fault model is also engaged — 20% loss, a
				// two-region partition — so the Loss/Part columns and the
				// drop counter render real values.
				Phase: "retrieve+6h", Offset: 6 * time.Hour, Online: 42,
				SnapshotStale: 0.25, IndexerHit: 1,
				ShardHits: []float64{1, 0.5}, ReplicaUp: 0.5,
				LossRate: 0.2, Partitioned: 2,
				DiscoverP99: 0.84, FirstHopShare: 0.75, TracedOps: 4,
				Budget: simnet.Budget{Requests: 41, Dials: 24, DialFailures: 5,
					ByCategory: map[transport.RPCCategory]int64{
						transport.CatLookup: 11, transport.CatWant: 26, transport.CatGossip: 4,
					},
					Dropped: 7, Retried: 2,
					DroppedByCategory: map[transport.RPCCategory]int64{
						transport.CatLookup: 5, transport.CatWant: 2,
					}},
				PhaseOutcome: PhaseOutcome{Ops: 4, Failures: 1, Routed: 3},
			},
			{
				// A batched republish cycle: 10 CIDs plus the peer record
				// refreshed with fewer republish-category RPCs than CIDs —
				// the per-target-peer grouping the budget columns must keep
				// showing.
				Phase: "republish", Offset: 6*time.Hour + time.Minute, Online: 41,
				SnapshotStale: 0.3, IndexerHit: 0,
				ShardHits: []float64{0, 0}, ReplicaUp: 0.5,
				DiscoverP99: math.NaN(), FirstHopShare: math.NaN(), TracedOps: 1,
				Budget: simnet.Budget{Requests: 9, Dials: 9, DialFailures: 2,
					ByCategory: map[transport.RPCCategory]int64{transport.CatRepublish: 9}},
				PhaseOutcome: PhaseOutcome{Ops: 11},
			},
		},
		Budget: simnet.Budget{Requests: 460, Dials: 633, DialFailures: 127,
			ByCategory: map[transport.RPCCategory]int64{
				transport.CatLookup: 101, transport.CatPublish: 140, transport.CatRepublish: 9,
				transport.CatRefresh: 180, transport.CatWant: 26, transport.CatGossip: 4,
			},
			Dropped: 7, Retried: 2,
			DroppedByCategory: map[transport.RPCCategory]int64{
				transport.CatLookup: 5, transport.CatWant: 2,
			}},
	}
	goldenCompare(t, "routing_timeseries_format.golden", res.TimeSeries()+"\n"+res.BudgetReport())
}

// TestRetrieveTraceGolden pins one seeded retrieval's span tree. The
// indexer router's routed-session path is fully serial — session
// consult, targeted want wave, address-book connect, block fetch — so
// span IDs, event counts and the discover/first-provider/fetch
// decomposition are identical run to run, and the golden diff shows
// exactly how a code change reshapes the delay decomposition.
func TestRetrieveTraceGolden(t *testing.T) {
	res := goldenScenarioResults()
	var tr *telemetry.Trace
	for _, cand := range res.Traces {
		if cand.Op != "retrieve" || cand.FindSpan("discover") == nil {
			continue
		}
		router := ""
		for _, a := range cand.Root().Attrs {
			if a.Key == "router" {
				router = a.Value
			}
		}
		if strings.HasPrefix(router, string(routing.KindIndexer)) {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Fatal("golden run produced no indexer retrieve trace with a discover span")
	}
	goldenCompare(t, "retrieve_trace.golden", tr.StableTree()+"\n"+tr.StableJSONL())
}

// TestRoutingTimeSeriesStructure asserts the live experiment output
// carries what the golden cannot pin: every scheduled phase, per-phase
// budgets that sum to the cumulative report, and category totals that
// add up to the request total.
func TestRoutingTimeSeriesStructure(t *testing.T) {
	res := goldenScenarioResults()
	if len(res.Phases) != 6 { // publish + 3 retrieves + refresh + republish
		t.Fatalf("phases = %d, want 6", len(res.Phases))
	}
	var phaseSum int64
	for _, ps := range res.Phases {
		phaseSum += ps.Budget.Requests
	}
	if phaseSum != res.Budget.Requests {
		t.Errorf("per-phase budgets sum to %d, cumulative reports %d", phaseSum, res.Budget.Requests)
	}
	var catSum int64
	for _, cat := range simnet.BudgetCategories {
		catSum += res.Budget.Category(cat)
	}
	if catSum != res.Budget.Requests {
		t.Errorf("category counts sum to %d, total is %d", catSum, res.Budget.Requests)
	}
	// The observed recorders' traces surface on the results and their
	// per-phase counts tie out; the retrieval ticks carry span-derived
	// discover percentiles.
	if len(res.Traces) == 0 {
		t.Fatal("no traces collected from the vantage recorders")
	}
	traced := 0
	for _, ps := range res.Phases {
		traced += ps.TracedOps
	}
	if traced != len(res.Traces) {
		t.Errorf("per-phase TracedOps sum to %d, results carry %d traces", traced, len(res.Traces))
	}
	for _, ps := range res.Phases {
		if !strings.HasPrefix(ps.Phase, "retrieve") {
			continue
		}
		if math.IsNaN(ps.DiscoverP99) || ps.DiscoverP99 < 0 {
			t.Errorf("phase %s: discover p99 = %v, want a sampled value", ps.Phase, ps.DiscoverP99)
		}
		if math.IsNaN(ps.FirstHopShare) {
			t.Errorf("phase %s: first-hop share not sampled", ps.Phase)
		}
	}
	if res.Metrics.Counters[`retrieves_total{router=indexer}`] == 0 {
		t.Errorf("aggregated metrics missing indexer retrieves: %v", res.Metrics.Counters)
	}
	ts := res.TimeSeries()
	for _, want := range []string{"publish", "refresh", "republish", "retrieve+4h", "retrieve+8h", "retrieve+12h", "lookup", "want", "ShardHit", "IxUp", "Disc99", "FirstHop", "gossip"} {
		if !strings.Contains(ts, want) {
			t.Errorf("time series missing %q:\n%s", want, ts)
		}
	}
	// The golden run observes a 2×2 fleet: replica gossip must show up
	// in the budget and every post-publish sample must carry per-shard
	// hit rates.
	if res.Budget.Category(transport.CatGossip) == 0 {
		t.Error("no gossip traffic in the sharded golden run")
	}
	for _, ps := range res.Phases[1:] {
		if len(ps.ShardHits) != 2 {
			t.Errorf("phase %s: per-shard hit rates = %v, want 2 shards", ps.Phase, ps.ShardHits)
		}
		if math.IsNaN(ps.ReplicaUp) {
			t.Errorf("phase %s: replica availability not sampled", ps.Phase)
		}
	}
	if br := res.BudgetReport(); !strings.Contains(br, "requests") || !strings.Contains(br, "refresh") {
		t.Errorf("budget report incomplete: %s", br)
	}
}
