package experiments

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/multicodec"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// TestIndexerShardFailoverKeepsHitRate is the availability contract of
// the sharded deployment, table-driven against the single-indexer
// baseline: with one replica per shard taken offline mid-window under
// the same churn amplitude, the replica groups keep answering — the
// per-tick hit rate stays up and sessions stay router-fed — while the
// single indexer's coverage collapses to zero.
func TestIndexerShardFailoverKeepsHitRate(t *testing.T) {
	cases := []struct {
		name     string
		shards   int
		replicas int
	}{
		{"single", 1, 1},
		{"sharded", 2, 2},
	}
	lastHit := make(map[string]float64)
	lastRouted := make(map[string]int)
	failures := make(map[string]int)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := RunRoutingComparison(RoutingConfig{
				NetworkSize: 100, Objects: 4, Ticks: 2, Window: 8 * time.Hour,
				Kinds:         []routing.Kind{routing.KindIndexer},
				IndexerShards: tc.shards, IndexerReplicas: tc.replicas,
				IndexerOutageAt: 2 * time.Hour,
				NoRepublish:     true, NoRefresh: true,
				BitswapTimeout: 30 * time.Second, QueryTimeout: 30 * time.Second,
				Scale: 0.002, Seed: 55,
			})
			rp := res.Router(routing.KindIndexer)
			if rp == nil || len(rp.Ticks) != 2 {
				t.Fatalf("indexer tick series = %+v, want 2 ticks", rp)
			}
			last := rp.Ticks[len(rp.Ticks)-1]
			if math.IsNaN(last.IndexerHit) {
				t.Fatal("indexer hit rate not sampled")
			}
			lastHit[tc.name] = last.IndexerHit
			lastRouted[tc.name] = last.RoutedSessions
			failures[tc.name] = rp.Failures

			if tc.shards > 1 || tc.replicas > 1 {
				if res.Budget.Category(transport.CatGossip) == 0 {
					t.Error("sharded run produced no gossip traffic")
				}
				var sawShardHits bool
				for _, ps := range res.Phases {
					if len(ps.ShardHits) == tc.shards {
						sawShardHits = true
					}
					if ps.Offset > 2*time.Hour && !math.IsNaN(ps.ReplicaUp) && ps.ReplicaUp > 0.5 {
						t.Errorf("phase %s: replica availability %.2f despite one replica per shard down",
							ps.Phase, ps.ReplicaUp)
					}
				}
				if !sawShardHits {
					t.Error("no phase sample carried per-shard hit rates")
				}
			}
		})
	}
	if t.Failed() || len(lastHit) != len(cases) {
		t.Logf("skipping cross-case assertions: %v", lastHit)
		return
	}
	if lastHit["single"] != 0 {
		t.Errorf("single indexer hit rate = %.2f after its only indexer went down, want 0", lastHit["single"])
	}
	if lastHit["sharded"] < lastHit["single"]+0.5 {
		t.Errorf("sharded hit rate %.2f does not clear the single-indexer baseline %.2f",
			lastHit["sharded"], lastHit["single"])
	}
	if lastRouted["sharded"] == 0 {
		t.Error("no router-fed sessions after the outage: fail-over to replicas did not happen")
	}
	if lastRouted["single"] != 0 {
		t.Errorf("%d router-fed sessions with the only indexer down", lastRouted["single"])
	}
	if failures["sharded"] > failures["single"] {
		t.Errorf("sharded deployment failed more retrievals (%d) than the single indexer (%d)",
			failures["sharded"], failures["single"])
	}
}

// TestScenarioTickGCBoundsIndexerStore pins the GC hook: with expired
// records dropped at every scenario tick, a sustained publish stream
// leaves the ProviderStore holding only the records inside one TTL
// window instead of growing without bound.
func TestScenarioTickGCBoundsIndexerStore(t *testing.T) {
	clock := simtime.NewClock(testnet.DefaultEpoch)
	tn := testnet.Build(testnet.Config{
		N: 30, Seed: 6, Scale: 0.0005, Clock: clock,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	ttl := 2 * time.Hour
	fleet := tn.AddIndexerSet(77, 1, 1, ttl)
	ix := fleet.Replica(0, 0)

	sc := NewScenarioRunner(tn, ScenarioConfig{Window: 8 * time.Hour, Seed: 11})
	sc.ObserveIndexer(ix)

	vantage := tn.AddVantageRouting("DE", 5, routing.KindIndexer, fleet.Set.All())
	const perTick, ticks = 20, 9
	published := 0
	for i := 0; i < ticks; i++ {
		i := i
		sc.Schedule(fmt.Sprintf("publish%d", i), time.Duration(i)*time.Hour,
			func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
				var out PhaseOutcome
				for j := 0; j < perTick; j++ {
					c := cid.Sum(multicodec.Raw, []byte(fmt.Sprintf("sustained %d/%d", i, j)))
					if _, err := vantage.Router().Provide(ctx, c); err != nil {
						out.Failures++
					}
					published++
					out.Ops++
				}
				return out
			})
	}
	sc.Run(context.Background())

	if published != perTick*ticks {
		t.Fatalf("published %d records, want %d", published, perTick*ticks)
	}
	// GC runs before each tick's publishes: at the final tick only the
	// records younger than the TTL survive — two past ticks plus the
	// tick's own batch.
	ceiling := 3 * perTick
	if got := ix.Len(); got > ceiling || got == 0 {
		t.Errorf("store holds %d records after the window, want (0, %d] — GC not bounding it", got, ceiling)
	}
	if ix.Len() >= published {
		t.Errorf("store grew to the full publish stream (%d records): GC never ran", ix.Len())
	}
}
