//go:build race

package experiments

// raceEnabled reports that the race detector instruments this build.
// The race runtime perturbs goroutine wake order inside same-virtual-
// instant event groups, which shifts walk fan-out — and with it the
// virtual instants the deterministic loss-draw hash keys on — so
// bit-for-bit replay and full-series fault goldens are contractual only
// in uninstrumented builds. Tests gate their exact-equality assertions
// on this, keeping the structural ones in both build modes.
const raceEnabled = true
