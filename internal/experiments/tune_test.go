package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestTuneGateway prints Table 5 for the current defaults; used during
// calibration and kept as a convenient inspection hook.
func TestTuneGateway(t *testing.T) {
	if os.Getenv("TUNE") == "" {
		t.Skip("set TUNE=1 to run the calibration hook")
	}
	res := RunGateway(GatewayConfig{})
	fmt.Println(res.Table5())
}
