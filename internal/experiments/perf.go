// Package experiments regenerates every table and figure of the
// paper's evaluation (§5–§6) against the simulated network. Each
// experiment returns a results object with a Render method that prints
// the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/testnet"
)

// PerfConfig tunes the §4.3 performance experiment: six vantage nodes
// publish 0.5 MB objects and retrieve each other's publications.
type PerfConfig struct {
	NetworkSize     int     // DHT servers in the simulated network (default 600)
	IterationsPer   int     // publications per region (paper: ~547; default 8)
	ObjectSizeBytes int     // 0.5 MB
	Scale           float64 // time compression (default 0.002)
	Seed            int64
	// Ablation knobs.
	K                 int
	Alpha             int
	ParallelDiscovery bool
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 600
	}
	if c.IterationsPer <= 0 {
		c.IterationsPer = 8
	}
	if c.ObjectSizeBytes <= 0 {
		c.ObjectSizeBytes = 512 * 1024
	}
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RegionPerf aggregates one vantage region's measurements.
type RegionPerf struct {
	Publications int
	Retrievals   int

	PubOverall *stats.Sample // Fig 9a
	PubWalk    *stats.Sample // Fig 9b
	PubBatch   *stats.Sample // Fig 9c

	RetrOverall *stats.Sample // Fig 9d
	RetrWalks   *stats.Sample // Fig 9e (both walks combined)
	RetrFetch   *stats.Sample // Fig 9f

	Stretch          *stats.Sample // Fig 10a
	StretchNoBitswap *stats.Sample // Fig 10b
}

func newRegionPerf() *RegionPerf {
	return &RegionPerf{
		PubOverall: stats.NewSample(), PubWalk: stats.NewSample(), PubBatch: stats.NewSample(),
		RetrOverall: stats.NewSample(), RetrWalks: stats.NewSample(), RetrFetch: stats.NewSample(),
		Stretch: stats.NewSample(), StretchNoBitswap: stats.NewSample(),
	}
}

// PerfResults holds the full experiment outcome.
type PerfResults struct {
	Cfg       PerfConfig
	Regions   map[geo.Region]*RegionPerf
	Successes int
	Failures  int
}

// RunPerformance executes the §4.3 protocol: per iteration, one
// vantage node announces a fresh 0.5 MB object, all others retrieve it,
// then disconnect so the next retrieval cannot shortcut via Bitswap.
func RunPerformance(cfg PerfConfig) *PerfResults {
	cfg = cfg.withDefaults()
	tn := testnet.Build(testnet.Config{
		N:     cfg.NetworkSize,
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
		K:     cfg.K,
		Alpha: cfg.Alpha,
		// The live network keeps stale entries, slow peers and broken
		// websocket transports (Fig 9c's spikes).
		FracDead: 0.15, FracSlow: 0.08, FracWSBroken: 0.02,
		OmitProviderAddrs: true,
		ParallelDiscovery: cfg.ParallelDiscovery,
	})
	rng := rand.New(rand.NewSource(cfg.Seed + 100))

	res := &PerfResults{Cfg: cfg, Regions: make(map[geo.Region]*RegionPerf)}
	vantages := make(map[geo.Region]*core.Node, len(geo.AWSRegions))
	ctx := context.Background()
	for i, r := range geo.AWSRegions {
		vantages[r] = tn.AddVantage(r, cfg.Seed+int64(1000+i))
		res.Regions[r] = newRegionPerf()
		// Each vantage publishes its peer record once, as a node
		// joining the network does.
		if _, err := vantages[r].DHT().PublishPeerRecord(ctx); err != nil {
			res.Failures++
		}
	}
	live := tn.LiveNodes()

	payload := make([]byte, cfg.ObjectSizeBytes)
	for iter := 0; iter < cfg.IterationsPer; iter++ {
		for _, pubRegion := range geo.AWSRegions {
			publisher := vantages[pubRegion]
			rng.Read(payload)
			// Publish: Fig 9a–c phases.
			pub, err := publisher.AddAndPublish(ctx, payload)
			rp := res.Regions[pubRegion]
			rp.Publications++
			if err != nil {
				res.Failures++
				continue
			}
			res.Successes++
			rp.PubOverall.AddDuration(pub.TotalDuration)
			rp.PubWalk.AddDuration(pub.WalkDuration)
			rp.PubBatch.AddDuration(pub.BatchDuration)

			// All other regions retrieve.
			for _, getRegion := range geo.AWSRegions {
				if getRegion == pubRegion {
					continue
				}
				getter := vantages[getRegion]
				// Fresh state per retrieval, then connect to a few
				// bystanders so the Bitswap phase runs (and misses) as
				// in the paper's setup.
				testnet.FlushVantage(getter)
				for i := 0; i < 3; i++ {
					b := live[rng.Intn(len(live))]
					getter.Swarm().Connect(ctx, b.ID(), b.Addrs())
				}
				gr := res.Regions[getRegion]
				gr.Retrievals++
				data, rres, err := getter.Retrieve(ctx, pub.Cid)
				if err != nil || len(data) != cfg.ObjectSizeBytes {
					res.Failures++
					continue
				}
				res.Successes++
				gr.RetrOverall.AddDuration(rres.Total)
				gr.RetrWalks.AddDuration(rres.ProviderWalk + rres.PeerWalk)
				gr.RetrFetch.AddDuration(rres.Dial + rres.Fetch)
				gr.Stretch.Add(rres.Stretch())
				gr.StretchNoBitswap.Add(rres.StretchWithoutBitswap())
				// Drop the fetched blocks so the next iteration's
				// retrieval is never satisfied locally.
				getter.ClearStore()
			}
		}
	}
	return res
}

// Table1 renders the publication/retrieval counts per region.
func (r *PerfResults) Table1() string {
	t := stats.NewTable("AWS Region", "Publications", "Retrievals")
	totalP, totalR := 0, 0
	for _, region := range geo.AWSRegions {
		rp := r.Regions[region]
		t.AddRow(string(region), rp.Publications, rp.Retrievals)
		totalP += rp.Publications
		totalR += rp.Retrievals
	}
	t.AddRow("Total", totalP, totalR)
	return "Table 1: publication and retrieval operations per region\n" + t.String()
}

// Table4 renders latency percentiles per region.
func (r *PerfResults) Table4() string {
	t := stats.NewTable("AWS Region", "Pub p50", "Pub p90", "Pub p95", "Retr p50", "Retr p90", "Retr p95")
	for _, region := range geo.AWSRegions {
		rp := r.Regions[region]
		t.AddRow(string(region),
			fmt.Sprintf("%.2fs", rp.PubOverall.Percentile(50)),
			fmt.Sprintf("%.2fs", rp.PubOverall.Percentile(90)),
			fmt.Sprintf("%.2fs", rp.PubOverall.Percentile(95)),
			fmt.Sprintf("%.2fs", rp.RetrOverall.Percentile(50)),
			fmt.Sprintf("%.2fs", rp.RetrOverall.Percentile(90)),
			fmt.Sprintf("%.2fs", rp.RetrOverall.Percentile(95)))
	}
	return "Table 4: DHT publication and retrieval latency percentiles\n" + t.String()
}

// combined merges a per-region sample across regions.
func (r *PerfResults) combined(pick func(*RegionPerf) *stats.Sample) *stats.Sample {
	all := stats.NewSample()
	for _, rp := range r.Regions {
		for _, v := range pick(rp).Values() {
			all.Add(v)
		}
	}
	return all
}

// Fig9 renders the six CDF panels.
func (r *PerfResults) Fig9(points int) string {
	var b strings.Builder
	b.WriteString("Figure 9: content publication (a-c) and retrieval (d-f) CDFs, seconds\n")
	panels := []struct {
		name string
		pick func(*RegionPerf) *stats.Sample
	}{
		{"fig9a overall publication", func(rp *RegionPerf) *stats.Sample { return rp.PubOverall }},
		{"fig9b publication DHT walk", func(rp *RegionPerf) *stats.Sample { return rp.PubWalk }},
		{"fig9c provider record RPC batch", func(rp *RegionPerf) *stats.Sample { return rp.PubBatch }},
		{"fig9d overall retrieval", func(rp *RegionPerf) *stats.Sample { return rp.RetrOverall }},
		{"fig9e retrieval DHT walks", func(rp *RegionPerf) *stats.Sample { return rp.RetrWalks }},
		{"fig9f content fetch", func(rp *RegionPerf) *stats.Sample { return rp.RetrFetch }},
	}
	for _, p := range panels {
		for _, region := range geo.AWSRegions {
			s := p.pick(r.Regions[region])
			if s.Len() == 0 {
				continue
			}
			b.WriteString(stats.FormatCDF(fmt.Sprintf("%s [%s]", p.name, region), s.CDF(points)))
		}
	}
	return b.String()
}

// Fig10 renders the stretch CDFs with and without the Bitswap timeout.
func (r *PerfResults) Fig10(points int) string {
	var b strings.Builder
	b.WriteString("Figure 10: retrieval stretch CDFs (Eq 2)\n")
	for _, region := range geo.AWSRegions {
		rp := r.Regions[region]
		if rp.Stretch.Len() == 0 {
			continue
		}
		b.WriteString(stats.FormatCDF(fmt.Sprintf("fig10a stretch [%s]", region), rp.Stretch.CDF(points)))
	}
	for _, region := range geo.AWSRegions {
		rp := r.Regions[region]
		if rp.StretchNoBitswap.Len() == 0 {
			continue
		}
		b.WriteString(stats.FormatCDF(fmt.Sprintf("fig10b stretch w/o bitswap [%s]", region), rp.StretchNoBitswap.CDF(points)))
	}
	return b.String()
}

// Summary prints the headline comparisons of §6.1–6.2.
func (r *PerfResults) Summary() string {
	pub := r.combined(func(rp *RegionPerf) *stats.Sample { return rp.PubOverall })
	walk := r.combined(func(rp *RegionPerf) *stats.Sample { return rp.PubWalk })
	retr := r.combined(func(rp *RegionPerf) *stats.Sample { return rp.RetrOverall })
	rwalks := r.combined(func(rp *RegionPerf) *stats.Sample { return rp.RetrWalks })
	stretch := r.combined(func(rp *RegionPerf) *stats.Sample { return rp.Stretch })

	var b strings.Builder
	fmt.Fprintf(&b, "publication: p50=%.1fs p90=%.1fs p95=%.1fs (paper: 33.8 / 112.3 / 138.1)\n",
		pub.Percentile(50), pub.Percentile(90), pub.Percentile(95))
	if pub.Mean() > 0 {
		fmt.Fprintf(&b, "walk share of publication delay: %.1f%% (paper: 87.9%%)\n", 100*walk.Mean()/pub.Mean())
	}
	fmt.Fprintf(&b, "retrieval: p50=%.2fs p90=%.2fs p95=%.2fs (paper: 2.90 / 4.34 / 4.74)\n",
		retr.Percentile(50), retr.Percentile(90), retr.Percentile(95))
	fmt.Fprintf(&b, "retrieval both-walks p50=%.2fs (paper: <2s for 50%%; single walk median 0.62s)\n",
		rwalks.Percentile(50))
	fmt.Fprintf(&b, "stretch p50=%.1f (paper: ~4.3)\n", stretch.Percentile(50))
	fmt.Fprintf(&b, "operations: %d ok, %d failed (paper reports 100%% retrieval success)\n",
		r.Successes, r.Failures)
	return b.String()
}

// elapsedSanity guards against misconfigured time bases in tests.
var _ = time.Second
