package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cid"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// RoutingConfig tunes the content-routing comparison: the same
// simulated network serves one publisher/getter vantage pair per router
// implementation, with liveness driven by a diurnal churn timeline
// (internal/churn) instead of a one-shot offline slice — publishes,
// refresh crawls, republishes and routed Bitswap sessions all face the
// same session arrivals and departures.
type RoutingConfig struct {
	NetworkSize     int // DHT servers (default 300)
	Objects         int // publications per router (default 5)
	ObjectSizeBytes int // default 64 KiB, small so routing dominates

	// Window is the simulated span the churn timeline covers (default
	// 24 h); Ticks spreads that many retrieval/sampling phases evenly
	// across it (default 4).
	Window time.Duration
	Ticks  int
	// ChurnAmplitude scales the timeline's churn intensity: 1 is the
	// paper's Fig 8 model, >1 shortens sessions and lengthens absences.
	ChurnAmplitude float64

	// Kinds selects which routers compete (default all four).
	Kinds []routing.Kind
	// K overrides the replication / direct-query breadth (default 20);
	// churn tests shrink it so store sets actually die.
	K int
	// IndexerTTL overrides the indexer's record TTL (default 24 h);
	// staleness tests shrink it so expiry crosses the window.
	IndexerTTL time.Duration
	// IndexerShards / IndexerReplicas select the sharded indexer
	// topology: R shards partitioning the CID keyspace by XOR distance,
	// each served by a gossiping replica group. Defaults of 1/1 keep
	// the single-indexer deployment.
	IndexerShards   int
	IndexerReplicas int
	// IndexerOutageAt, when > 0, schedules an "ix-outage" phase at that
	// offset taking each shard's primary replica offline for the rest
	// of the window — the availability stress the replica groups exist
	// to absorb.
	IndexerOutageAt time.Duration
	// NoRepublish / NoRefresh drop the background phases scheduled at
	// mid-window, isolating pure decay for the monotonicity tests.
	NoRepublish bool
	NoRefresh   bool

	// QueryTimeout / BitswapTimeout pass through to every node.
	// Deterministic tests raise them so heavily-loaded (race-detector)
	// runs cannot blow a scaled sub-millisecond window and flip a
	// session outcome.
	QueryTimeout   time.Duration
	BitswapTimeout time.Duration

	// LinkLoss installs a network-wide per-transit loss probability from
	// the window start; LinkExtraLatency / LinkJitter tax every transit
	// (the Pumba-style delay injection of the paper's adversarial
	// conditions). LossSweep instead schedules one retrieval tick per
	// entry, raising the loss rate to that entry one minute before the
	// tick — the sustained packet-loss sweep scenario. A non-empty
	// LossSweep overrides Ticks.
	LinkLoss         float64
	LossSweep        []float64
	LinkExtraLatency time.Duration
	LinkJitter       time.Duration
	// PartitionRegions, with PartitionAt > 0, schedules a "partition"
	// phase cutting the named regions off from the rest of the network
	// at that offset; HealAt > 0 schedules the matching "heal" phase.
	PartitionRegions []geo.Region
	PartitionAt      time.Duration
	HealAt           time.Duration
	// ReachabilityMix builds the network with the population's sampled
	// dialability (Fig 7's mix: ~1/3 of peers NAT'd, online but refusing
	// inbound dials) instead of the default everyone-dialable servers.
	ReachabilityMix bool

	// EventDriven runs the comparison on the discrete-event scheduler:
	// sleeps, RPC latencies, churn transitions and phase boundaries all
	// become events on one priority queue and virtual time jumps
	// between them, so paper-scale populations (20k+ peers) replay a
	// full churn window in seconds of wall clock. Workers bounds
	// concurrent event dispatch; 0 or 1 keeps deterministic lockstep
	// (seeded runs replay bit-for-bit), larger values are the -race
	// stress mode.
	EventDriven bool
	Workers     int

	Scale float64 // time compression (default 0.001)
	Seed  int64
}

func (c RoutingConfig) withDefaults() RoutingConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 300
	}
	if c.Objects <= 0 {
		c.Objects = 5
	}
	if c.ObjectSizeBytes <= 0 {
		c.ObjectSizeBytes = 64 * 1024
	}
	if c.Window <= 0 {
		c.Window = 24 * time.Hour
	}
	if len(c.LossSweep) > 0 {
		// One retrieval tick per sweep entry: tick i runs under loss
		// rate LossSweep[i-1].
		c.Ticks = len(c.LossSweep)
	}
	if c.Ticks <= 0 {
		c.Ticks = 4
	}
	if c.ChurnAmplitude <= 0 {
		c.ChurnAmplitude = 1
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []routing.Kind{routing.KindDHT, routing.KindAccelerated, routing.KindIndexer, routing.KindParallel}
	}
	if c.IndexerShards <= 0 {
		c.IndexerShards = 1
	}
	if c.IndexerReplicas <= 0 {
		c.IndexerReplicas = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RouterTick is one router's outcome at one retrieval tick, paired with
// the health the scenario sampled at that instant.
type RouterTick struct {
	Offset         time.Duration
	Retrievals     int
	Failures       int
	RoutedSessions int
	SnapshotStale  float64 // accelerated snapshot staleness at the tick
	IndexerHit     float64 // indexer record coverage at the tick
	LossRate       float64 // link-loss probability in force at the tick
	Partitioned    int     // regions the partition covered at the tick
}

// HitRate is the tick's retrieval success fraction (NaN before any
// retrievals) — the degradation scenarios' headline metric.
func (t RouterTick) HitRate() float64 {
	if t.Retrievals == 0 {
		return math.NaN()
	}
	return 1 - float64(t.Failures)/float64(t.Retrievals)
}

// RouterPerf aggregates one router implementation's measurements.
type RouterPerf struct {
	Kind routing.Kind
	Name string // the router's self-reported name (parallel lists members)

	Publications int
	Retrievals   int
	Failures     int

	// RoutedSessions counts retrievals whose Bitswap session peer came
	// from the router (the WANT-HAVE broadcast was skipped entirely).
	RoutedSessions int
	// Failovers counts mid-session provider switches under churn.
	Failovers int
	// RepubCIDs is the CID count of the last republish cycle, the
	// denominator for the batched RPCs-per-cycle comparison.
	RepubCIDs int

	// Ticks is the per-retrieval-tick time series.
	Ticks []RouterTick

	PubLatency    *stats.Sample // seconds per publish
	PubMsgs       *stats.Sample // routing RPCs per publish
	RetrLatency   *stats.Sample // seconds per retrieval
	RetrMsgs      *stats.Sample // routing RPCs per retrieval (discovery + session consults + fail-over)
	RetrWantHaves *stats.Sample // Bitswap WANT-HAVE messages per retrieval
	// RetrTTFP is the time-to-first-provider per retrieval: start to
	// the first provider known (Bitswap hit or first streamed batch).
	RetrTTFP *stats.Sample
	// RetrLookupFull is the provider stream's full duration per
	// retrieval — the wait the old blocking lookup would have put on
	// the critical path; TTFP sitting below it is the streaming win.
	RetrLookupFull *stats.Sample
	// RepubRPCs is the routing RPCs per republish cycle: with batched
	// ProvideMany this stays at or below the distinct target-peer
	// count, instead of CIDs × (walk + store fan-out).
	RepubRPCs *stats.Sample
}

func newRouterPerf(kind routing.Kind) *RouterPerf {
	return &RouterPerf{
		Kind:           kind,
		PubLatency:     stats.NewSample(),
		PubMsgs:        stats.NewSample(),
		RetrLatency:    stats.NewSample(),
		RetrMsgs:       stats.NewSample(),
		RetrWantHaves:  stats.NewSample(),
		RetrTTFP:       stats.NewSample(),
		RetrLookupFull: stats.NewSample(),
		RepubRPCs:      stats.NewSample(),
	}
}

// FallbackRate is the fraction of retrievals whose session peer did
// NOT come from the router: the broadcast/walk fallback carried them,
// or they failed outright. It rises as churn leaves the one-hop view
// stale. NaN before any retrievals.
func (rp *RouterPerf) FallbackRate() float64 {
	if rp.Retrievals == 0 {
		return math.NaN()
	}
	return 1 - float64(rp.RoutedSessions)/float64(rp.Retrievals)
}

// RoutingResults is the outcome of the comparison.
type RoutingResults struct {
	Cfg     RoutingConfig
	Routers []*RouterPerf
	// Phases is the scenario time series: one row per scheduled phase
	// (publish, each retrieval tick, mid-window refresh/republish).
	Phases []PhaseSample
	// Budget is the cumulative network-wide RPC budget of the whole
	// experiment, by category.
	Budget simnet.Budget
	// Traces is every span tree the vantage nodes recorded during the
	// scheduled phases, in phase order — the raw material for the delay
	// decomposition and for -trace-out JSONL export.
	Traces []*telemetry.Trace
	// Metrics aggregates the vantage nodes' labeled metric registries
	// network-wide (raw samples merged, so percentiles are exact).
	Metrics telemetry.MetricsSnapshot

	// SchedStalls / SchedEvents report the discrete-event scheduler in
	// EventDriven runs: SchedEvents is how many queue events fired, and
	// SchedStalls how often the dispatcher fell back to its real-time
	// grace timer — non-zero means some wait on the workload path
	// escaped instrumentation, which forfeits deterministic replay.
	// Both are zero in sweep mode.
	SchedStalls int64
	SchedEvents int64
}

// routerPair is one router's publisher/getter vantage pair plus its
// published roots.
type routerPair struct {
	rp        *RouterPerf
	kind      routing.Kind
	publisher *core.Node
	getter    *core.Node
	prng      *rand.Rand
	roots     []cid.Cid
}

// RunRoutingComparison measures publish/retrieve latency and routing
// message counts for the DHT walk, the accelerated one-hop client, the
// delegated indexer, and the parallel composite on one simulated
// network whose liveness follows a diurnal churn timeline. Every router
// faces the same timeline, the same tick schedule, and the same object
// sizes; snapshots are taken at the publish tick, so later retrievals
// run against an increasingly stale one-hop view — the hard case.
func RunRoutingComparison(cfg RoutingConfig) *RoutingResults {
	cfg = cfg.withDefaults()
	clock := simtime.NewClock(testnet.DefaultEpoch)
	tn := testnet.Build(testnet.Config{
		N:              cfg.NetworkSize,
		Seed:           cfg.Seed,
		Scale:          cfg.Scale,
		K:              cfg.K,
		QueryTimeout:   cfg.QueryTimeout,
		BitswapTimeout: cfg.BitswapTimeout,
		Clock:          clock,
		EventDriven:    cfg.EventDriven,
		Workers:        cfg.Workers,
		// Fault injection: the initial loss/latency profile (the loss
		// sweep raises LossRate later via scheduled phases) and the Fig 7
		// reachability mix.
		Faults: simnet.FaultProfile{
			LossRate:     cfg.LinkLoss,
			ExtraLatency: cfg.LinkExtraLatency,
			Jitter:       cfg.LinkJitter,
		},
		ReachabilityMix: cfg.ReachabilityMix,
		// The timeline is the only churn lever: behaviour classes stay
		// near zero so stale entries come from real departures.
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	// One indexer keeps the classic deployment; shards/replicas > 1
	// build a gossiping fleet the scenario engine observes per shard.
	fleet := tn.AddIndexerSet(cfg.Seed+7, cfg.IndexerShards, cfg.IndexerReplicas, cfg.IndexerTTL)
	sharded := cfg.IndexerShards > 1 || cfg.IndexerReplicas > 1

	sc := NewScenarioRunner(tn, ScenarioConfig{
		Window:    cfg.Window,
		Amplitude: cfg.ChurnAmplitude,
		Seed:      cfg.Seed + 13,
		// NAT'd peers hold ordinary sessions under the reachability mix;
		// the transport enforces their unreachability.
		NATSessions: cfg.ReachabilityMix,
	})
	if sharded {
		sc.ObserveIndexerFleet(fleet.Set, fleet.Nodes()...)
	} else {
		sc.ObserveIndexer(fleet.Replica(0, 0))
	}
	addVantage := func(region geo.Region, seed int64, kind routing.Kind) *core.Node {
		if sharded {
			return tn.AddVantageSharded(region, seed, kind, fleet.Set)
		}
		return tn.AddVantageRouting(region, seed, kind, fleet.Set.All())
	}

	res := &RoutingResults{Cfg: cfg}
	var pairs []*routerPair
	for i, kind := range cfg.Kinds {
		rp := newRouterPerf(kind)
		res.Routers = append(res.Routers, rp)
		p := &routerPair{
			rp:        rp,
			kind:      kind,
			publisher: addVantage(geo.EuCentral1, cfg.Seed+int64(100+i), kind),
			getter:    addVantage(geo.UsWest1, cfg.Seed+int64(200+i), kind),
			prng:      rand.New(rand.NewSource(cfg.Seed + int64(1000*i))),
		}
		rp.Name = p.publisher.Router().Name()
		sc.ObserveAccelerated(p.publisher.Accelerated(), p.getter.Accelerated())
		sc.ObserveTelemetry(p.publisher.Telemetry(), p.getter.Telemetry())
		pairs = append(pairs, p)
	}

	// The outage lever: each shard's primary replica goes dark at the
	// scheduled offset and stays dark — lookups must fail over to the
	// surviving replicas, and gossip must have already replicated the
	// primary's records for them to answer.
	if cfg.IndexerOutageAt > 0 {
		sc.Schedule("ix-outage", cfg.IndexerOutageAt, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
			for _, group := range fleet.Groups {
				tn.Net.SetOnline(group[0].ID(), false)
			}
			return PhaseOutcome{}
		})
	}

	// The partition lever: the named regions are cut off from the rest
	// of the network at PartitionAt and — when HealAt is scheduled —
	// rejoined mid-window, so the ticks in between measure a split brain
	// and the ticks after measure recovery.
	if cfg.PartitionAt > 0 && len(cfg.PartitionRegions) > 0 {
		sc.Schedule("partition", cfg.PartitionAt, func(context.Context, PhaseInfo) PhaseOutcome {
			tn.Net.Partition(cfg.PartitionRegions...)
			return PhaseOutcome{}
		})
		if cfg.HealAt > cfg.PartitionAt {
			sc.Schedule("heal", cfg.HealAt, func(context.Context, PhaseInfo) PhaseOutcome {
				tn.Net.Heal()
				return PhaseOutcome{}
			})
		}
	}

	// The loss-sweep lever: one transition phase per sweep entry, a
	// minute ahead of its retrieval tick, raising the network-wide loss
	// rate while keeping the configured extra latency/jitter.
	for i, rate := range cfg.LossSweep {
		rate := rate
		off := time.Duration(i+1)*cfg.Window/time.Duration(cfg.Ticks) - time.Minute
		sc.Schedule(fmt.Sprintf("loss->%.0f%%", 100*rate), off, func(context.Context, PhaseInfo) PhaseOutcome {
			tn.Net.SetFaults(simnet.FaultProfile{
				LossRate:     rate,
				ExtraLatency: cfg.LinkExtraLatency,
				Jitter:       cfg.LinkJitter,
			})
			return PhaseOutcome{}
		})
	}

	// Phase 1, tick 0: snapshot crawls and publications against
	// whatever the timeline has online at the window start.
	sc.Schedule("publish", 0, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
		var out PhaseOutcome
		payload := make([]byte, cfg.ObjectSizeBytes)
		for _, p := range pairs {
			// The peer record is part of publication traffic; tag it so
			// the budget does not misfile it under foreground lookups
			// (Node.Publish tags its own provide tree the same way).
			p.publisher.DHT().PublishPeerRecord(transport.WithRPCCategory(ctx, transport.CatPublish))
			p.publisher.RefreshRoutingSnapshot(ctx)
			p.getter.RefreshRoutingSnapshot(ctx)
			for j := 0; j < cfg.Objects; j++ {
				p.prng.Read(payload)
				pub, err := p.publisher.AddAndPublish(ctx, payload)
				p.rp.Publications++
				out.Ops++
				if err != nil {
					p.rp.Failures++
					out.Failures++
					continue
				}
				p.roots = append(p.roots, pub.Cid)
				p.rp.PubLatency.AddDuration(pub.TotalDuration)
				p.rp.PubMsgs.Add(float64(routing.ProvideMessages(pub.ProvideResult)))
				if p.kind == routing.KindIndexer {
					sc.TrackRoots(pub.Cid)
				}
			}
		}
		return out
	})

	// Background phases at mid-window: the snapshot re-crawl and the
	// §3.1 republish cycle, so their traffic shows up in the budget
	// next to foreground lookups.
	if !cfg.NoRefresh {
		sc.Schedule("refresh", cfg.Window/2, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
			var out PhaseOutcome
			for _, p := range pairs {
				for _, n := range []*core.Node{p.publisher, p.getter} {
					if n.Accelerated() == nil {
						continue
					}
					out.Ops++
					if _, err := n.RefreshRoutingSnapshot(ctx); err != nil {
						out.Failures++
					}
				}
			}
			return out
		})
	}
	if !cfg.NoRepublish {
		sc.Schedule("republish", cfg.Window/2+time.Minute, func(ctx context.Context, _ PhaseInfo) PhaseOutcome {
			var out PhaseOutcome
			for _, p := range pairs {
				st := p.publisher.Republish(ctx)
				out.Ops += st.Batch.CIDs + 1 // + the peer record
				out.Failures += st.Batch.CIDs - st.Batch.Provided
				if !st.PeerRecordOK {
					out.Failures++
				}
				p.rp.RepubCIDs = st.Batch.CIDs
				p.rp.RepubRPCs.Add(float64(st.Batch.Msgs()))
			}
			return out
		})
	}

	// Retrieval ticks: every router retrieves every object against the
	// liveness the timeline dictates at that instant. Bystanders are
	// drawn from peers currently online so every router's opportunistic
	// Bitswap phase faces the same live neighbourhood.
	for i := 1; i <= cfg.Ticks; i++ {
		off := time.Duration(i) * cfg.Window / time.Duration(cfg.Ticks)
		sc.Schedule("retrieve"+fmtOffset(off), off, func(ctx context.Context, info PhaseInfo) PhaseOutcome {
			var out PhaseOutcome
			live := tn.OnlineNodes()
			for _, p := range pairs {
				tick := RouterTick{Offset: off, SnapshotStale: info.SnapshotStale, IndexerHit: info.IndexerHit,
					LossRate: info.LossRate, Partitioned: info.Partitioned}
				for _, root := range p.roots {
					testnet.FlushVantage(p.getter)
					for k := 0; k < 2 && len(live) > 0; k++ {
						b := live[p.prng.Intn(len(live))]
						p.getter.Swarm().Connect(ctx, b.ID(), b.Addrs())
					}
					p.rp.Retrievals++
					tick.Retrievals++
					out.Ops++
					data, rres, err := p.getter.Retrieve(ctx, root)
					if err != nil || len(data) != cfg.ObjectSizeBytes {
						p.rp.Failures++
						tick.Failures++
						out.Failures++
						p.getter.ClearStore()
						continue
					}
					p.rp.RetrLatency.AddDuration(rres.Total)
					p.rp.RetrMsgs.Add(float64(rres.LookupMsgs))
					p.rp.RetrWantHaves.Add(float64(rres.WantHaves))
					p.rp.RetrTTFP.AddDuration(rres.FirstProvider)
					// The blocking-wait equivalent: Bitswap phase plus the
					// full lookup (what retrieval used to wait on).
					p.rp.RetrLookupFull.AddDuration(rres.BitswapPhase + rres.LookupFull)
					if rres.RoutedSession {
						p.rp.RoutedSessions++
						tick.RoutedSessions++
						out.Routed++
					}
					p.rp.Failovers += rres.SessionFailovers
					p.getter.ClearStore()
				}
				p.rp.Ticks = append(p.rp.Ticks, tick)
			}
			return out
		})
	}

	res.Phases = sc.Run(context.Background())
	res.Budget = tn.Net.Budget()
	if tn.Sched != nil {
		res.SchedStalls = tn.Sched.Stalls()
		res.SchedEvents = tn.Sched.Dispatched()
	}
	res.Traces = sc.Traces()
	var regs []*telemetry.Registry
	for _, p := range pairs {
		regs = append(regs, p.publisher.Telemetry().Registry(), p.getter.Telemetry().Registry())
	}
	res.Metrics = telemetry.AggregateRegistries(regs...)
	return res
}

// Table renders the side-by-side router comparison: latency, message
// counts, time-to-first-provider (the streaming-discovery metric), and
// the batched republish cost per cycle.
func (r *RoutingResults) Table() string {
	t := stats.NewTable("Router", "Pub p50", "Pub msgs", "Retr p50", "TTFP p50", "Retr msgs", "WANT-HAVEs", "Repub RPC/cyc", "Routed", "OK", "Fail")
	for _, rp := range r.Routers {
		ok := rp.Publications + rp.Retrievals - rp.Failures
		repub := "-"
		if rp.RepubRPCs.Len() > 0 {
			repub = fmt.Sprintf("%.0f (%d cids)", rp.RepubRPCs.Mean(), rp.RepubCIDs)
		}
		t.AddRow(string(rp.Kind),
			fmt.Sprintf("%.2fs", rp.PubLatency.Percentile(50)),
			fmt.Sprintf("%.1f", rp.PubMsgs.Mean()),
			fmt.Sprintf("%.2fs", rp.RetrLatency.Percentile(50)),
			fmt.Sprintf("%.2fs", rp.RetrTTFP.Percentile(50)),
			fmt.Sprintf("%.1f", rp.RetrMsgs.Mean()),
			fmt.Sprintf("%.1f", rp.RetrWantHaves.Mean()),
			repub,
			fmt.Sprintf("%d/%d", rp.RoutedSessions, rp.Retrievals),
			ok, rp.Failures)
	}
	return fmt.Sprintf("Routing comparison: %d-peer network, %d objects/router, %d retrieval ticks over %s, churn amplitude %.1f\n",
		r.Cfg.NetworkSize, r.Cfg.Objects, r.Cfg.Ticks, r.Cfg.Window, r.Cfg.ChurnAmplitude) + t.String()
}

// TimeSeries renders the per-phase scenario series: the timeline-driven
// liveness, the routers' health (snapshot staleness, indexer record
// coverage), the workload outcome, and the RPC budget each phase spent
// by category.
func (r *RoutingResults) TimeSeries() string {
	return r.timeSeries(true)
}

// StableTimeSeries renders the deterministic columns of the scenario
// time series — phase schedule, timeline liveness, router health and
// workload outcome. Exact RPC counts shift by a few requests with walk
// goroutine scheduling, so the golden-file test diffs this render; the
// full TimeSeries with budget columns is for the CLI.
func (r *RoutingResults) StableTimeSeries() string {
	return r.timeSeries(false)
}

// timeSeries is the shared renderer: the deterministic columns, plus —
// when includeBudget is set — one column per budget category in
// simnet.BudgetCategories order, so every row's categories sum to its
// RPCs column.
func (r *RoutingResults) timeSeries(includeBudget bool) string {
	head := fmt.Sprintf("Churn-scenario time series: %d peers, %d routers, window %s, amplitude %.1f\n",
		r.Cfg.NetworkSize, len(r.Routers), r.Cfg.Window, r.Cfg.ChurnAmplitude)
	cols := []string{"Phase", "At", "Online", "SnapStale", "IxHit", "ShardHit", "IxUp", "Loss", "Part", "Ops", "Fail", "Routed"}
	if includeBudget {
		// The span-derived columns ride with the budget variant: they
		// carry measured sim-time, which drifts with scheduling the same
		// way exact RPC counts do, so the stable golden omits both.
		cols = append(cols, "Disc99", "FirstHop", "RPCs", "drop")
		for _, cat := range simnet.BudgetCategories {
			cols = append(cols, string(cat))
		}
	}
	t := stats.NewTable(cols...)
	for _, ps := range r.Phases {
		row := []interface{}{ps.Phase, fmtOffset(ps.Offset), ps.Online,
			fmtHealth(ps.SnapshotStale), fmtHealth(ps.IndexerHit),
			fmtHealth(ps.ShardHitMean()), fmtHealth(ps.ReplicaUp),
			fmtHealth(ps.LossRate), ps.Partitioned,
			ps.Ops, ps.Failures, ps.Routed}
		if includeBudget {
			row = append(row, fmtSecs(ps.DiscoverP99), fmtHealth(ps.FirstHopShare), ps.Budget.Requests, ps.Budget.Dropped)
			for _, cat := range simnet.BudgetCategories {
				row = append(row, ps.Budget.Category(cat))
			}
		}
		t.AddRow(row...)
	}
	return head + t.String()
}

// BudgetReport renders the cumulative network-wide RPC budget.
func (r *RoutingResults) BudgetReport() string {
	return "Network-wide RPC budget: " + r.Budget.String() + "\n"
}

// Router returns the stats for one kind, or nil.
func (r *RoutingResults) Router(kind routing.Kind) *RouterPerf {
	for _, rp := range r.Routers {
		if rp.Kind == kind {
			return rp
		}
	}
	return nil
}

// Summary prints the headline comparisons: how much of the multi-hop
// walk each alternative removes.
func (r *RoutingResults) Summary() string {
	var b strings.Builder
	base := r.Router(routing.KindDHT)
	if base == nil || base.RetrMsgs.Len() == 0 {
		return "no baseline measurements\n"
	}
	fmt.Fprintf(&b, "dht baseline: %.1f routing msgs and %.1f WANT-HAVEs per retrieval, retr p50 %.2fs, pub p50 %.2fs\n",
		base.RetrMsgs.Mean(), base.RetrWantHaves.Mean(),
		base.RetrLatency.Percentile(50), base.PubLatency.Percentile(50))
	if base.RetrTTFP.Len() > 0 {
		fmt.Fprintf(&b, "dht streaming discovery: time-to-first-provider p50 %.2fs vs %.2fs blocking-lookup wait\n",
			base.RetrTTFP.Percentile(50), base.RetrLookupFull.Percentile(50))
	}
	for _, rp := range r.Routers {
		if rp.RepubRPCs.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s batched republish: %.0f RPCs/cycle for %d cids\n",
			rp.Kind, rp.RepubRPCs.Mean(), rp.RepubCIDs)
	}
	for _, rp := range r.Routers {
		if rp.Kind == routing.KindDHT || rp.RetrMsgs.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: %.1f msgs (%.1fx) and %.1f WANT-HAVEs (%.1fx) per retrieval, %d/%d routed sessions, retr p50 %.2fs, pub p50 %.2fs\n",
			rp.Kind, rp.RetrMsgs.Mean(), rp.RetrMsgs.Mean()/base.RetrMsgs.Mean(),
			rp.RetrWantHaves.Mean(), rp.RetrWantHaves.Mean()/base.RetrWantHaves.Mean(),
			rp.RoutedSessions, rp.Retrievals,
			rp.RetrLatency.Percentile(50), rp.PubLatency.Percentile(50))
	}
	return b.String()
}
