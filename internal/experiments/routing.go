package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cid"
	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/testnet"
	"repro/internal/wire"
)

// RoutingConfig tunes the content-routing comparison: the same
// simulated network serves one publisher/getter vantage pair per router
// implementation, with a slice of the network churned offline between
// publish and retrieve so stale state is part of the measurement.
type RoutingConfig struct {
	NetworkSize     int     // DHT servers (default 300)
	Objects         int     // publications per router (default 6)
	ObjectSizeBytes int     // default 64 KiB, small so routing dominates
	ChurnFraction   float64 // nodes taken offline before retrievals (default 0.2)
	Scale           float64 // time compression (default 0.001)
	Seed            int64
}

func (c RoutingConfig) withDefaults() RoutingConfig {
	if c.NetworkSize <= 0 {
		c.NetworkSize = 300
	}
	if c.Objects <= 0 {
		c.Objects = 6
	}
	if c.ObjectSizeBytes <= 0 {
		c.ObjectSizeBytes = 64 * 1024
	}
	if c.ChurnFraction <= 0 {
		c.ChurnFraction = 0.2
	}
	if c.ChurnFraction > 1 {
		c.ChurnFraction = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RouterPerf aggregates one router implementation's measurements.
type RouterPerf struct {
	Kind routing.Kind
	Name string // the router's self-reported name (parallel lists members)

	Publications int
	Retrievals   int
	Failures     int

	// RoutedSessions counts retrievals whose Bitswap session peer came
	// from the router (the WANT-HAVE broadcast was skipped entirely).
	RoutedSessions int
	// Failovers counts mid-session provider switches under churn.
	Failovers int

	PubLatency    *stats.Sample // seconds per publish
	PubMsgs       *stats.Sample // routing RPCs per publish
	RetrLatency   *stats.Sample // seconds per retrieval
	RetrMsgs      *stats.Sample // routing RPCs per retrieval (discovery + session consults + fail-over)
	RetrWantHaves *stats.Sample // Bitswap WANT-HAVE messages per retrieval
}

func newRouterPerf(kind routing.Kind) *RouterPerf {
	return &RouterPerf{
		Kind:          kind,
		PubLatency:    stats.NewSample(),
		PubMsgs:       stats.NewSample(),
		RetrLatency:   stats.NewSample(),
		RetrMsgs:      stats.NewSample(),
		RetrWantHaves: stats.NewSample(),
	}
}

// RoutingResults is the outcome of the comparison.
type RoutingResults struct {
	Cfg     RoutingConfig
	Routers []*RouterPerf
}

// RunRoutingComparison measures publish/retrieve latency and routing
// message counts for the DHT walk, the accelerated one-hop client, the
// delegated indexer, and the parallel composite on one simulated
// network under churn. Every router faces the same network, the same
// churn set, and the same object schedule.
func RunRoutingComparison(cfg RoutingConfig) *RoutingResults {
	cfg = cfg.withDefaults()
	tn := testnet.Build(testnet.Config{
		N:     cfg.NetworkSize,
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
		// A small dead fraction keeps tables realistically stale; the
		// heavier churn lever is SetOnline below.
		FracDead: 0.05, FracSlow: 0.02, FracWSBroken: 1e-9,
	})
	ix := tn.AddIndexer(geo.EuCentral1, cfg.Seed+7)
	indexers := []wire.PeerInfo{ix.Info()}

	// The churn set is fixed up front so every router sees the same
	// departures.
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	churned := rng.Perm(cfg.NetworkSize)[:int(float64(cfg.NetworkSize)*cfg.ChurnFraction)]

	res := &RoutingResults{Cfg: cfg}
	ctx := context.Background()
	kinds := []routing.Kind{routing.KindDHT, routing.KindAccelerated, routing.KindIndexer, routing.KindParallel}
	for i, kind := range kinds {
		rp := newRouterPerf(kind)
		res.Routers = append(res.Routers, rp)

		publisher := tn.AddVantageRouting(geo.EuCentral1, cfg.Seed+int64(100+i), kind, indexers)
		getter := tn.AddVantageRouting(geo.UsWest1, cfg.Seed+int64(200+i), kind, indexers)
		rp.Name = publisher.Router().Name()
		publisher.DHT().PublishPeerRecord(ctx)
		// Accelerated clients snapshot the network before churn hits,
		// so retrievals run against a stale view — the hard case.
		publisher.RefreshRoutingSnapshot(ctx)
		getter.RefreshRoutingSnapshot(ctx)

		payload := make([]byte, cfg.ObjectSizeBytes)
		prng := rand.New(rand.NewSource(cfg.Seed + int64(1000*i)))
		var roots []cid.Cid
		for j := 0; j < cfg.Objects; j++ {
			prng.Read(payload)
			pub, err := publisher.AddAndPublish(ctx, payload)
			rp.Publications++
			if err != nil {
				rp.Failures++
				continue
			}
			roots = append(roots, pub.Cid)
			rp.PubLatency.AddDuration(pub.TotalDuration)
			rp.PubMsgs.Add(float64(routing.ProvideMessages(pub.ProvideResult)))
		}

		// Churn: the chosen slice departs, then every object is
		// retrieved against the degraded network. Bystanders are drawn
		// from peers still online so every router's Bitswap phase faces
		// the same live neighbourhood.
		for _, idx := range churned {
			tn.SetOnline(idx, false)
		}
		live := tn.OnlineNodes()
		for _, root := range roots {
			testnet.FlushVantage(getter)
			// Connect to a few bystanders so the opportunistic Bitswap
			// phase runs (and misses) as in the §4.3 setup.
			for k := 0; k < 2; k++ {
				b := live[prng.Intn(len(live))]
				getter.Swarm().Connect(ctx, b.ID(), b.Addrs())
			}
			rp.Retrievals++
			data, rres, err := getter.Retrieve(ctx, root)
			if err != nil || len(data) != cfg.ObjectSizeBytes {
				rp.Failures++
				continue
			}
			rp.RetrLatency.AddDuration(rres.Total)
			rp.RetrMsgs.Add(float64(rres.LookupMsgs))
			rp.RetrWantHaves.Add(float64(rres.WantHaves))
			if rres.RoutedSession {
				rp.RoutedSessions++
			}
			rp.Failovers += rres.SessionFailovers
			getter.Store().Clear()
		}
		// Departed peers return before the next router's turn.
		for _, idx := range churned {
			tn.SetOnline(idx, true)
		}
	}
	return res
}

// Table renders the side-by-side router comparison.
func (r *RoutingResults) Table() string {
	t := stats.NewTable("Router", "Pub p50", "Pub msgs", "Retr p50", "Retr msgs", "WANT-HAVEs", "Routed", "OK", "Fail")
	for _, rp := range r.Routers {
		ok := rp.Publications + rp.Retrievals - rp.Failures
		t.AddRow(string(rp.Kind),
			fmt.Sprintf("%.2fs", rp.PubLatency.Percentile(50)),
			fmt.Sprintf("%.1f", rp.PubMsgs.Mean()),
			fmt.Sprintf("%.2fs", rp.RetrLatency.Percentile(50)),
			fmt.Sprintf("%.1f", rp.RetrMsgs.Mean()),
			fmt.Sprintf("%.1f", rp.RetrWantHaves.Mean()),
			fmt.Sprintf("%d/%d", rp.RoutedSessions, rp.Retrievals),
			ok, rp.Failures)
	}
	return fmt.Sprintf("Routing comparison: %d-peer network, %d objects/router, %.0f%% churn before retrievals\n",
		r.Cfg.NetworkSize, r.Cfg.Objects, 100*r.Cfg.ChurnFraction) + t.String()
}

// Router returns the stats for one kind, or nil.
func (r *RoutingResults) Router(kind routing.Kind) *RouterPerf {
	for _, rp := range r.Routers {
		if rp.Kind == kind {
			return rp
		}
	}
	return nil
}

// Summary prints the headline comparisons: how much of the multi-hop
// walk each alternative removes.
func (r *RoutingResults) Summary() string {
	var b strings.Builder
	base := r.Router(routing.KindDHT)
	if base == nil || base.RetrMsgs.Len() == 0 {
		return "no baseline measurements\n"
	}
	fmt.Fprintf(&b, "dht baseline: %.1f routing msgs and %.1f WANT-HAVEs per retrieval, retr p50 %.2fs, pub p50 %.2fs\n",
		base.RetrMsgs.Mean(), base.RetrWantHaves.Mean(),
		base.RetrLatency.Percentile(50), base.PubLatency.Percentile(50))
	for _, rp := range r.Routers {
		if rp.Kind == routing.KindDHT || rp.RetrMsgs.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: %.1f msgs (%.1fx) and %.1f WANT-HAVEs (%.1fx) per retrieval, %d/%d routed sessions, retr p50 %.2fs, pub p50 %.2fs\n",
			rp.Kind, rp.RetrMsgs.Mean(), rp.RetrMsgs.Mean()/base.RetrMsgs.Mean(),
			rp.RetrWantHaves.Mean(), rp.RetrWantHaves.Mean()/base.RetrWantHaves.Mean(),
			rp.RoutedSessions, rp.Retrievals,
			rp.RetrLatency.Percentile(50), rp.PubLatency.Percentile(50))
	}
	return b.String()
}
