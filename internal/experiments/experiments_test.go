package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/stats"
)

// small perf run shared across assertions.
var perfOnce *PerfResults

func perfResults(t *testing.T) *PerfResults {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping the full performance experiment in -short mode")
	}
	if perfOnce == nil {
		perfOnce = RunPerformance(PerfConfig{NetworkSize: 300, IterationsPer: 2, Scale: 0.0015, Seed: 42})
	}
	return perfOnce
}

func TestPerformanceShapes(t *testing.T) {
	res := perfResults(t)
	if res.Failures > res.Successes/10 {
		t.Fatalf("too many failures: %d ok %d failed", res.Successes, res.Failures)
	}
	pub := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.PubOverall })
	retr := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.RetrOverall })
	// Publication is an order of magnitude slower than retrieval
	// (paper: 33.8s vs 2.90s medians).
	if pub.Median() < 3*retr.Median() {
		t.Errorf("publication median %.1fs should dwarf retrieval %.1fs", pub.Median(), retr.Median())
	}
	// Retrieval medians are seconds, not minutes (§6.2 headline).
	if retr.Median() < 1 || retr.Median() > 15 {
		t.Errorf("retrieval median %.2fs out of plausible band", retr.Median())
	}
	// The Bitswap timeout sets a 1s floor on retrievals.
	if retr.Min() < 1 {
		t.Errorf("retrieval min %.2fs below the 1s Bitswap floor", retr.Min())
	}
	// Stretch must exceed 1 and drop when the Bitswap timeout is removed.
	st := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.Stretch })
	stNB := res.combined(func(rp *RegionPerf) *stats.Sample { return rp.StretchNoBitswap })
	if st.Median() <= 1.2 {
		t.Errorf("stretch median %.2f too low", st.Median())
	}
	if stNB.Median() >= st.Median() {
		t.Errorf("stretch without Bitswap (%.2f) should be below stretch (%.2f)", stNB.Median(), st.Median())
	}
}

func TestPerformanceRenderers(t *testing.T) {
	res := perfResults(t)
	for _, out := range []string{res.Table1(), res.Table4(), res.Fig9(10), res.Fig10(10), res.Summary()} {
		if len(out) < 50 {
			t.Errorf("renderer output too short:\n%s", out)
		}
	}
	if !strings.Contains(res.Table1(), "Total") {
		t.Error("Table1 missing Total row")
	}
	if !strings.Contains(res.Fig9(10), "fig9a") || !strings.Contains(res.Fig9(10), "fig9f") {
		t.Error("Fig9 missing panels")
	}
}

func TestDeploymentShapes(t *testing.T) {
	res := RunDeployment(DeployConfig{
		PopulationSize: 8000, CrawlNetworkSize: 250, CrawlEpochs: 4,
		Scale: 0.0005, Seed: 7,
	})
	if len(res.Epochs) != 4 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.Total == 0 || e.Dialable == 0 {
			t.Errorf("epoch %v: total=%d dialable=%d", e.Time, e.Total, e.Dialable)
		}
		if e.Dialable+e.Undialable != e.Total {
			t.Error("dialable + undialable != total")
		}
		// A sizeable undialable fraction, as in Fig 4a.
		if float64(e.Undialable)/float64(e.Total) < 0.05 {
			t.Errorf("undialable fraction suspiciously low: %d/%d", e.Undialable, e.Total)
		}
	}
	for _, out := range []string{res.Fig4a(), res.Fig5(), res.Table2(), res.Table3(),
		res.Fig7a(), res.Fig7b(), res.Fig7c(), res.Fig7d(), res.Fig8(10)} {
		if len(out) < 40 {
			t.Errorf("deployment renderer too short:\n%s", out)
		}
	}
	// Fig 5 must be headed by the US and CN.
	fig5 := res.Fig5()
	usIdx, cnIdx := strings.Index(fig5, "US"), strings.Index(fig5, "CN")
	if usIdx < 0 || cnIdx < 0 || usIdx > cnIdx {
		t.Errorf("Fig5 should rank US before CN:\n%s", fig5)
	}
	if !strings.Contains(res.Table2(), "CHINANET") {
		t.Errorf("Table2 should name CHINANET first:\n%s", res.Table2())
	}
}

func TestGatewayShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the gateway experiment in -short mode")
	}
	res := RunGateway(GatewayConfig{
		NetworkSize: 40, Objects: 120, Requests: 1200, TraceOnly: 30000,
		Scale: 0.0008, Seed: 17,
	})
	var total int
	for _, s := range res.Tiers {
		total += s.Requests
	}
	if total != 1200 {
		t.Fatalf("logged requests = %d", total)
	}
	nginx := res.Tiers[gateway.TierNginx]
	node := res.Tiers[gateway.TierNodeStore]
	network := res.Tiers[gateway.TierNetwork]
	// Tier ordering of Table 5: the caches dominate; non-cached is the
	// smallest slice.
	if nginx.Requests < network.Requests {
		t.Errorf("nginx (%d) should serve more requests than the network (%d)", nginx.Requests, network.Requests)
	}
	combined := float64(nginx.Requests+node.Requests) / float64(total)
	if combined < 0.6 {
		t.Errorf("combined cache hit rate %.2f, paper reports >0.8", combined)
	}
	// Latency ordering: nginx 0 < node store 8ms < network seconds.
	if nginx.MedianLatency != 0 {
		t.Error("nginx median latency should be 0")
	}
	if node.MedianLatency != gateway.NodeStoreLatency {
		t.Errorf("node store median = %v", node.MedianLatency)
	}
	if network.Requests > 0 && network.MedianLatency < 500*time.Millisecond {
		t.Errorf("network median = %v, want seconds", network.MedianLatency)
	}
	for _, out := range []string{res.Table5(), res.Fig4b(), res.Fig6(), res.Fig11a(10), res.Fig11b()} {
		if len(out) < 40 {
			t.Errorf("gateway renderer too short:\n%s", out)
		}
	}
}

func TestGatewayCacheSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the gateway cache sweep in -short mode")
	}
	pts := RunGatewayCacheSweep(AblationConfig{Scale: 0.0008, Seed: 23}, []int64{2 << 20, 32 << 20})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].NginxHit < pts[0].NginxHit {
		t.Errorf("bigger cache should not hit less: %.2f -> %.2f", pts[0].NginxHit, pts[1].NginxHit)
	}
}

func TestClientServerSplitAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the churned client/server ablation in -short mode")
	}
	pts := RunClientServerSplit(AblationConfig{NetworkSize: 200, Iterations: 3, Scale: 0.001, Seed: 23})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var with, without ClientServerPoint
	for _, p := range pts {
		if p.SplitEnabled {
			with = p
		} else {
			without = p
		}
	}
	// Polluted routing tables slow publications (§6.4's claim).
	if without.PubMedian <= with.PubMedian {
		t.Errorf("pre-v0.5 world should be slower: with=%v without=%v", with.PubMedian, without.PubMedian)
	}
}

func TestReplicationSweep(t *testing.T) {
	pts := RunReplicationSweep(AblationConfig{NetworkSize: 200, Iterations: 4, Scale: 0.001, Seed: 23}, []int{4, 20}, 0.5)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].StoreSuccesses <= pts[0].StoreSuccesses {
		t.Errorf("k=20 should store more records than k=4: %.1f vs %.1f", pts[1].StoreSuccesses, pts[0].StoreSuccesses)
	}
	if pts[1].SurvivalRate < pts[0].SurvivalRate {
		t.Errorf("k=20 survival (%.2f) should be >= k=4 (%.2f)", pts[1].SurvivalRate, pts[0].SurvivalRate)
	}
	out := RenderAblations(pts, nil, nil, nil, nil)
	if !strings.Contains(out, "replication factor") {
		t.Error("RenderAblations missing replication table")
	}
}
