package experiments

import (
	"testing"
	"time"

	"repro/internal/routing"
)

// eventDrivenConfig is the shared event-driven scenario the determinism
// and stress tests replay: a DHT-vs-indexer comparison under a churning
// 8 h window. The accelerated router (and its full-population refresh
// crawl) is deliberately absent so the run stays dominated by the
// discrete-event machinery under test, not by crawl fan-out.
func eventDrivenConfig(n, workers int) RoutingConfig {
	return RoutingConfig{
		NetworkSize:    n,
		Objects:        2,
		Ticks:          2,
		Window:         8 * time.Hour,
		ChurnAmplitude: 2,
		Kinds:          []routing.Kind{routing.KindDHT, routing.KindIndexer},
		NoRefresh:      true,
		EventDriven:    true,
		Workers:        workers,
		Seed:           77,
	}
}

func TestEventDrivenScenarioSmoke(t *testing.T) {
	res := RunRoutingComparison(eventDrivenConfig(300, 1))
	if res.SchedStalls != 0 {
		t.Errorf("scheduler stalled %d times: an uninstrumented wait is on the workload path", res.SchedStalls)
	}
	if len(res.Phases) != 4 { // publish, republish, 2 retrieval ticks
		t.Fatalf("got %d phases, want 4", len(res.Phases))
	}
	if res.Budget.Requests == 0 {
		t.Fatal("no RPCs spent: the scenario did not run")
	}
	if res.SchedEvents == 0 {
		t.Fatal("no scheduler events dispatched: the run did not go through the event queue")
	}
}

// TestEventDrivenScenarioDeterminism20k replays the same seeded
// 20k-peer churn scenario twice on the lockstep scheduler and demands
// bit-for-bit identical results: the full phase time series including
// every per-phase Budget row, and the per-router latency/message
// aggregates. The rendered TimeSeries carries the span-derived and
// exact-RPC columns the stable goldens omit, so string equality here is
// the strongest cross-run check the engine offers. Zero stalls is part
// of the contract — a stall means a wait escaped instrumentation, and
// with it determinism.
func TestEventDrivenScenarioDeterminism20k(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-peer scenario skipped in -short mode")
	}
	cfg := eventDrivenConfig(20000, 1)
	a := RunRoutingComparison(cfg)
	b := RunRoutingComparison(cfg)
	for _, res := range []*RoutingResults{a, b} {
		if res.SchedStalls != 0 {
			t.Fatalf("scheduler stalled %d times: an uninstrumented wait forfeits deterministic replay", res.SchedStalls)
		}
	}
	if as, bs := a.TimeSeries(), b.TimeSeries(); as != bs {
		t.Errorf("seeded runs diverged in the phase time series\nrun A:\n%s\nrun B:\n%s", as, bs)
	}
	if a.Budget.String() != b.Budget.String() {
		t.Errorf("seeded runs diverged in the cumulative budget: %v vs %v", a.Budget, b.Budget)
	}
	if at, bt := a.Table(), b.Table(); at != bt {
		t.Errorf("seeded runs diverged in the router comparison\nrun A:\n%s\nrun B:\n%s", at, bt)
	}
	if a.SchedEvents != b.SchedEvents {
		t.Errorf("seeded runs dispatched different event counts: %d vs %d", a.SchedEvents, b.SchedEvents)
	}
	if len(a.Phases) == 0 {
		t.Fatal("no phases ran")
	}
}

// TestEventDrivenScenarioRaceStress runs the scenario with a multi-slot
// worker pool, so same-instant events dispatch concurrently — the mode
// the race detector interrogates. Determinism is explicitly not
// asserted (concurrent dispatch trades tie-order stability away); the
// run must merely complete the schedule with the event machinery
// engaged and without stalling on uninstrumented waits.
func TestEventDrivenScenarioRaceStress(t *testing.T) {
	res := RunRoutingComparison(eventDrivenConfig(500, 8))
	if res.SchedStalls != 0 {
		t.Errorf("scheduler stalled %d times under concurrent dispatch", res.SchedStalls)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("got %d phases, want 4", len(res.Phases))
	}
	if res.SchedEvents == 0 {
		t.Fatal("no scheduler events dispatched")
	}
}
