// Adversarial & lossy-network scenario pack: canned fault-injection
// runs of the routing comparison — a sustained packet-loss sweep, a
// regional partition that heals mid-window, and a Fig-7-style
// reachability cohort mix — each pinning how the routers' hit rates and
// RPC budgets degrade under imperfect conditions. All three run on the
// event-driven scheduler in deterministic lockstep, so seeded runs
// replay bit-for-bit and golden files can pin the full time series.

package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/stats"
)

// LossSweepRates is the default sustained packet-loss sweep: a clean
// baseline tick, then 10/20/30 % per-transit loss.
var LossSweepRates = []float64{0, 0.10, 0.20, 0.30}

// faultScenarioDefaults are shared across the pack: a population small
// enough for tests, low behaviour-class noise, raised timeouts so
// race-detector runs cannot flip a session outcome, and deterministic
// lockstep on the event-driven path.
func faultScenarioDefaults(seed int64) RoutingConfig {
	return RoutingConfig{
		NetworkSize:    120,
		Objects:        3,
		K:              4,
		QueryTimeout:   30 * time.Second,
		BitswapTimeout: 30 * time.Second,
		EventDriven:    true,
		Workers:        1,
		Scale:          0.002,
		Seed:           seed,
	}
}

// LossSweepScenario runs scenario (a): publish over clean links, then
// raise the network-wide loss rate tick by tick through LossSweepRates
// (0 → 30 %). Churn is all but disabled and the background phases are
// dropped, so the loss rate is the only lever moving between ticks and
// each router's hit-rate curve is a pure function of link loss.
func LossSweepScenario(seed int64) *RoutingResults {
	cfg := faultScenarioDefaults(seed)
	cfg.Window = 8 * time.Hour
	cfg.LossSweep = LossSweepRates
	cfg.ChurnAmplitude = 0.01
	// Enough retrievals per tick that the hit-rate curve reflects the
	// loss rate rather than per-object draw noise.
	cfg.Objects = 10
	cfg.NoRefresh = true
	cfg.NoRepublish = true
	return RunRoutingComparison(cfg)
}

// PartitionHealScenario runs scenario (b): the getter vantages' regions
// (UsWest1 plus the US server population) are partitioned off at 3 h
// and healed at 5 h of a 12 h window with six retrieval ticks — the
// tick at 4 h measures the split brain, the tick at 6 h (right after
// the mid-window snapshot refresh) measures recovery.
func PartitionHealScenario(seed int64) *RoutingResults {
	cfg := faultScenarioDefaults(seed)
	cfg.Window = 12 * time.Hour
	cfg.Ticks = 6
	cfg.PartitionRegions = []geo.Region{geo.UsWest1, "US"}
	cfg.PartitionAt = 3 * time.Hour
	cfg.HealAt = 5 * time.Hour
	cfg.ChurnAmplitude = 0.01
	return RunRoutingComparison(cfg)
}

// ReachabilityMixScenario runs scenario (c): the Fig-7 reachability
// cohort mix — roughly a third of the server population is NAT'd
// (online, originating traffic, refusing inbound dials) — under the
// paper's full churn model, so routers pay dial timeouts for
// unreachable providers and the accelerated router's stale-snapshot
// fallback has to carry retrievals.
func ReachabilityMixScenario(seed int64) *RoutingResults {
	cfg := faultScenarioDefaults(seed)
	cfg.Window = 12 * time.Hour
	cfg.Ticks = 4
	cfg.ChurnAmplitude = 1
	cfg.ReachabilityMix = true
	return RunRoutingComparison(cfg)
}

// Phase returns the first phase sample with the given name, or nil.
func (r *RoutingResults) Phase(name string) *PhaseSample {
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// TickHitRate returns router kind's hit rate at retrieval tick i (in
// tick order), or NaN when the router or tick is missing.
func (r *RoutingResults) TickHitRate(kind routing.Kind, i int) float64 {
	rp := r.Router(kind)
	if rp == nil || i < 0 || i >= len(rp.Ticks) {
		return math.NaN()
	}
	return rp.Ticks[i].HitRate()
}

// DegradationTable renders the scenario pack's headline view: one row
// per retrieval tick with the fault state in force (loss rate,
// partition extent) and every router's hit rate at that tick — the
// degradation curves the goldens pin.
func (r *RoutingResults) DegradationTable() string {
	cols := []string{"Tick", "Loss", "Part"}
	for _, rp := range r.Routers {
		cols = append(cols, string(rp.Kind))
	}
	t := stats.NewTable(cols...)
	if len(r.Routers) > 0 {
		for i, tick := range r.Routers[0].Ticks {
			row := []interface{}{fmtOffset(tick.Offset), fmtHealth(tick.LossRate), tick.Partitioned}
			for _, rp := range r.Routers {
				if i < len(rp.Ticks) {
					row = append(row, fmtHealth(rp.Ticks[i].HitRate()))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	head := fmt.Sprintf("Degradation: per-tick hit rate, %d-peer network, window %s, %d dropped / %d retried RPCs total\n",
		r.Cfg.NetworkSize, r.Cfg.Window, r.Budget.Dropped, r.Budget.Retried)
	return head + t.String()
}
